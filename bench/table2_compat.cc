// Reproduces Table 2: comparison of compatibility relations — percentage of
// compatible user pairs, percentage of compatible skill pairs, and average
// distance between compatible users, for SPA / SPM / SPO / SBPH / SBP / NNE
// on each dataset. SBP (exact) runs on Slashdot-scale graphs, as in the
// paper; on large graphs pair statistics are estimated from sampled sources
// (--sources, --sbp_sources to tune; --sources=0 for exact).
//
// --threads=N computes rows on N workers sharing one row cache (0 =
// hardware concurrency / TFSN_THREADS); --threads=1,2,4 additionally
// sweeps the listed counts and prints per-count wall clock plus speedup
// over the first entry. --cache-mb (or --cache_mb) bounds the shared row
// cache.
//
// --json=<path> writes a BENCH_*.json trajectory file: one object per
// (dataset, relation) cell with wall clock and rows/sec, plus one per
// thread-sweep entry (format: README, "Bench JSON output").
//
// Paper reference (Slashdot): comp.users 44.72 / 55.72 / 72.45 / 97.85 /
// 99.38 / 99.64; avg distance 4.13 / 4.37 / 4.57 / 4.95 / 4.97 / 4.53.
// Expected shape: monotone growth along the relaxation chain, SBP ≈ NNE,
// distance grows with relaxation except NNE dips, SBP-SBPH gap small.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "src/exp/experiments.h"
#include "src/util/table.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  auto datasets = tfsn::bench::LoadDatasets(
      flags, /*default_scale=*/1.0, "slashdot,epinions,wikipedia");

  tfsn::Table2Options options;
  options.sample_sources =
      static_cast<uint32_t>(flags.GetInt("sources", 300));
  options.sbp_sample_sources =
      static_cast<uint32_t>(flags.GetInt("sbp_sources", 40));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  // Accept both spellings so the bench and tfsn_cli share one knob name.
  options.cache_bytes =
      static_cast<size_t>(flags.Has("cache-mb") ? flags.GetInt("cache-mb", 256)
                                                : flags.GetInt("cache_mb", 256))
      << 20;
  if (flags.Has("include_sbp")) {
    options.include_sbp = flags.GetBool("include_sbp");
  }
  options.oracle.sbp.max_depth =
      static_cast<uint32_t>(flags.GetInt("sbp_depth", 14));
  options.oracle.sbp.expansion_budget =
      static_cast<uint64_t>(flags.GetInt("sbp_budget", 200000));

  std::vector<uint32_t> thread_counts = tfsn::bench::ThreadSweepOf(flags);
  options.threads = thread_counts[0];

  const std::string json_path = flags.GetString("json");
  tfsn::bench::JsonArrayWriter json;
  auto emit_cell = [&](const std::string& dataset, uint32_t n, uint64_t m,
                       const tfsn::Table2Cell& c, uint32_t threads) {
    if (json_path.empty()) return;
    json.BeginObject();
    json.Field("bench", "table2_compat");
    json.Field("dataset", dataset);
    json.Field("n", n);
    json.Field("edges", m);
    json.Field("kind", tfsn::CompatKindName(c.kind));
    json.Field("threads", threads);
    json.Field("sources", c.sources_used);
    json.Field("seconds", c.seconds);
    json.Field("rows_per_sec",
               c.seconds > 0 ? c.sources_used / c.seconds : 0.0);
    json.Field("comp_users_pct", c.comp_users_pct);
    json.Field("comp_skills_pct", c.comp_skills_pct);
    json.Field("avg_distance", c.avg_distance);
    json.Field("rows_saturated", c.rows_saturated);
    json.EndObject();
  };

  tfsn::bench::PrintHeader("Table 2: Comparison of compatibility relations");
  for (const tfsn::Dataset& ds : datasets) {
    std::printf("\n--- %s (%u users, %llu edges) ---\n", ds.name.c_str(),
                ds.graph.num_nodes(),
                static_cast<unsigned long long>(ds.graph.num_edges()));
    tfsn::Timer run_timer;
    auto cells = tfsn::RunTable2(ds, options);
    double baseline_seconds = run_timer.Seconds();
    tfsn::TextTable table(
        {"metric", "SPA", "SPM", "SPO", "SBPH", "SBP", "NNE"});
    auto find = [&cells](tfsn::CompatKind kind) -> const tfsn::Table2Cell* {
      for (const auto& c : cells) {
        if (c.kind == kind) return &c;
      }
      return nullptr;
    };
    auto row_of = [&](const char* label, auto getter) {
      std::vector<std::string> row{label};
      for (tfsn::CompatKind kind :
           {tfsn::CompatKind::kSPA, tfsn::CompatKind::kSPM,
            tfsn::CompatKind::kSPO, tfsn::CompatKind::kSBPH,
            tfsn::CompatKind::kSBP, tfsn::CompatKind::kNNE}) {
        const tfsn::Table2Cell* cell = find(kind);
        row.push_back(cell ? tfsn::TextTable::Fmt(getter(*cell)) : "-");
      }
      return row;
    };
    table.AddRow(row_of("comp. users %",
                        [](const tfsn::Table2Cell& c) { return c.comp_users_pct; }));
    table.AddRow(row_of("comp. skills %", [](const tfsn::Table2Cell& c) {
      return c.comp_skills_pct;
    }));
    table.AddRow(row_of("avg distance",
                        [](const tfsn::Table2Cell& c) { return c.avg_distance; }));
    std::fputs(table.ToString().c_str(), stdout);
    if (flags.GetBool("csv")) std::fputs(table.ToCsv().c_str(), stdout);
    for (const auto& c : cells) {
      emit_cell(ds.name, ds.graph.num_nodes(), ds.graph.num_edges(), c,
                thread_counts[0]);
    }
    for (const auto& c : cells) {
      std::printf("  %-4s: %u sources, %.2fs", tfsn::CompatKindName(c.kind),
                  c.sources_used, c.seconds);
      if (c.rows_saturated > 0) {
        std::printf("  [%llu saturated rows]",
                    static_cast<unsigned long long>(c.rows_saturated));
      }
      std::printf("\n");
    }
    // SBP vs SBPH gap (the paper reports ~2.5% on Slashdot).
    const tfsn::Table2Cell* sbp = find(tfsn::CompatKind::kSBP);
    const tfsn::Table2Cell* sbph = find(tfsn::CompatKind::kSBPH);
    if (sbp != nullptr && sbph != nullptr) {
      std::printf("  SBP vs SBPH compatible-pair gap: %.2f%% (paper: ~2.5%%)\n",
                  sbp->comp_users_pct - sbph->comp_users_pct);
    }
    if (thread_counts.size() > 1) {
      std::printf("  thread sweep (speedup vs --threads=%u):\n",
                  thread_counts[0]);
      std::printf("    threads=%-3u %6.2fs   1.00x\n", thread_counts[0],
                  baseline_seconds);
      for (size_t i = 1; i < thread_counts.size(); ++i) {
        tfsn::Table2Options sweep_options = options;
        sweep_options.threads = thread_counts[i];
        tfsn::Timer sweep_timer;
        auto sweep_cells = tfsn::RunTable2(ds, sweep_options);
        double seconds = sweep_timer.Seconds();
        for (const auto& c : sweep_cells) {
          emit_cell(ds.name, ds.graph.num_nodes(), ds.graph.num_edges(), c,
                    thread_counts[i]);
        }
        std::printf("    threads=%-3u %6.2fs   %.2fx\n", thread_counts[i],
                    seconds,
                    seconds > 0 ? baseline_seconds / seconds : 0.0);
      }
    }
  }
  if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
  return 0;
}
