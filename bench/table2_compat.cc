// Reproduces Table 2: comparison of compatibility relations — percentage of
// compatible user pairs, percentage of compatible skill pairs, and average
// distance between compatible users, for SPA / SPM / SPO / SBPH / SBP / NNE
// on each dataset. SBP (exact) runs on Slashdot-scale graphs, as in the
// paper; on large graphs pair statistics are estimated from sampled sources
// (--sources, --sbp_sources to tune; --sources=0 for exact).
//
// Paper reference (Slashdot): comp.users 44.72 / 55.72 / 72.45 / 97.85 /
// 99.38 / 99.64; avg distance 4.13 / 4.37 / 4.57 / 4.95 / 4.97 / 4.53.
// Expected shape: monotone growth along the relaxation chain, SBP ≈ NNE,
// distance grows with relaxation except NNE dips, SBP-SBPH gap small.

#include <cstdio>

#include "bench_common.h"
#include "src/exp/experiments.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  auto datasets = tfsn::bench::LoadDatasets(
      flags, /*default_scale=*/1.0, "slashdot,epinions,wikipedia");

  tfsn::Table2Options options;
  options.sample_sources =
      static_cast<uint32_t>(flags.GetInt("sources", 300));
  options.sbp_sample_sources =
      static_cast<uint32_t>(flags.GetInt("sbp_sources", 40));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  options.threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  if (flags.Has("include_sbp")) {
    options.include_sbp = flags.GetBool("include_sbp");
  }
  options.oracle.sbp.max_depth =
      static_cast<uint32_t>(flags.GetInt("sbp_depth", 14));
  options.oracle.sbp.expansion_budget =
      static_cast<uint64_t>(flags.GetInt("sbp_budget", 200000));

  tfsn::bench::PrintHeader("Table 2: Comparison of compatibility relations");
  for (const tfsn::Dataset& ds : datasets) {
    std::printf("\n--- %s (%u users, %llu edges) ---\n", ds.name.c_str(),
                ds.graph.num_nodes(),
                static_cast<unsigned long long>(ds.graph.num_edges()));
    auto cells = tfsn::RunTable2(ds, options);
    tfsn::TextTable table(
        {"metric", "SPA", "SPM", "SPO", "SBPH", "SBP", "NNE"});
    auto find = [&cells](tfsn::CompatKind kind) -> const tfsn::Table2Cell* {
      for (const auto& c : cells) {
        if (c.kind == kind) return &c;
      }
      return nullptr;
    };
    auto row_of = [&](const char* label, auto getter) {
      std::vector<std::string> row{label};
      for (tfsn::CompatKind kind :
           {tfsn::CompatKind::kSPA, tfsn::CompatKind::kSPM,
            tfsn::CompatKind::kSPO, tfsn::CompatKind::kSBPH,
            tfsn::CompatKind::kSBP, tfsn::CompatKind::kNNE}) {
        const tfsn::Table2Cell* cell = find(kind);
        row.push_back(cell ? tfsn::TextTable::Fmt(getter(*cell)) : "-");
      }
      return row;
    };
    table.AddRow(row_of("comp. users %",
                        [](const tfsn::Table2Cell& c) { return c.comp_users_pct; }));
    table.AddRow(row_of("comp. skills %", [](const tfsn::Table2Cell& c) {
      return c.comp_skills_pct;
    }));
    table.AddRow(row_of("avg distance",
                        [](const tfsn::Table2Cell& c) { return c.avg_distance; }));
    std::fputs(table.ToString().c_str(), stdout);
    if (flags.GetBool("csv")) std::fputs(table.ToCsv().c_str(), stdout);
    for (const auto& c : cells) {
      std::printf("  %-4s: %u sources, %.2fs\n",
                  tfsn::CompatKindName(c.kind), c.sources_used, c.seconds);
    }
    // SBP vs SBPH gap (the paper reports ~2.5% on Slashdot).
    const tfsn::Table2Cell* sbp = find(tfsn::CompatKind::kSBP);
    const tfsn::Table2Cell* sbph = find(tfsn::CompatKind::kSBPH);
    if (sbp != nullptr && sbph != nullptr) {
      std::printf("  SBP vs SBPH compatible-pair gap: %.2f%% (paper: ~2.5%%)\n",
                  sbp->comp_users_pct - sbph->comp_users_pct);
    }
  }
  return 0;
}
