// Microbenchmarks for team formation.
//
// Two modes:
//
//  1. View-vs-oracle greedy formation (always available):
//       micro_team --quick [--json=BENCH_micro_team.json]
//       micro_team [--tasks=N] [--max_seeds=N] [--json=...]
//     measures GreedyTeamFormer::Form on the Epinions-scale fixture with
//     the task-local dense view (task_view.h) against the pair-by-pair
//     oracle path, asserting bit-identical results while timing, then
//     sweeps seed_threads on the view path (again asserting identical
//     teams). One JSON object per measurement lands in the BENCH_*.json
//     trajectory file (format: README, "Bench JSON output"). --quick trims
//     the sweep for CI smoke runs and skips the Google-Benchmark suite.
//
//  2. The Google-Benchmark suite (when the library is available): the
//     greedy former per policy, the exact solver on small instances, the
//     unsigned RarestFirst baseline, and the skill-index build. Run with
//     --benchmark_filter=... to narrow.

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "src/compat/skill_index.h"
#include "src/data/datasets.h"
#include "src/gen/generators.h"
#include "src/skills/skill_generator.h"
#include "src/team/exact.h"
#include "src/team/greedy.h"
#include "src/team/unsigned_tf.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

#ifdef TFSN_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

namespace tfsn {
namespace {

struct Fixture {
  Dataset ds;
  std::shared_ptr<RowCache> cache;
  std::unique_ptr<CompatibilityOracle> oracle;
  std::unique_ptr<SkillCompatibilityIndex> index;

  explicit Fixture(double scale, CompatKind kind) {
    DatasetOptions options;
    options.scale = scale;
    ds = MakeEpinions(options);
    RowCacheOptions cache_options;
    cache_options.max_bytes = 512ull << 20;
    cache = std::make_shared<RowCache>(cache_options);
    oracle = MakeOracle(ds.graph, kind, OracleParams{}, cache);
    Rng rng(9);
    index = std::make_unique<SkillCompatibilityIndex>(oracle.get(), ds.skills,
                                                      200, &rng);
  }
};

// Epinions scale of the shared fixture; settable once via --scale before
// the first SharedFixture call (0.12 ≈ 3.5k users, 25k edges).
double g_fixture_scale = 0.12;

Fixture& SharedFixture(CompatKind kind) {
  static auto* cache = new std::map<CompatKind, std::unique_ptr<Fixture>>();
  auto it = cache->find(kind);
  if (it == cache->end()) {
    it = cache->emplace(kind, std::make_unique<Fixture>(g_fixture_scale, kind))
             .first;
  }
  return *it->second;
}

// ---------------------------------------------------------------------------
// View vs oracle greedy formation (the PR's headline measurement)
// ---------------------------------------------------------------------------

// Throughput guarded against a zero-rounded timer so JSON stays parseable.
double Rate(size_t tasks, double seconds) {
  return seconds > 0 ? tasks / seconds : 0.0;
}

bool SameResult(const TeamResult& a, const TeamResult& b) {
  return a.found == b.found && a.members == b.members && a.cost == b.cost &&
         a.objective == b.objective;
}

GreedyParams EvalParams(UserPolicy up, GreedyEvalPath path,
                        uint32_t max_seeds, uint32_t seed_threads) {
  GreedyParams params;
  params.skill_policy = SkillPolicy::kLeastCompatible;
  params.user_policy = up;
  params.max_seeds = max_seeds;
  params.eval_path = path;
  params.seed_threads = seed_threads;
  return params;
}

// Tasks drawn from the `top_pool` most-held skills: the dense regime where
// the paper iterates every holder as a seed and the oracle path's
// O(seeds × |team| × |holders|) pair lookups dominate. (Uniform sampling
// over Zipf skills mostly yields rare skills and trivial seed loops.)
std::vector<Task> DenseTasks(const SkillAssignment& sa, uint32_t k,
                             uint32_t count, uint32_t top_pool, Rng* rng) {
  std::vector<SkillId> by_freq;
  for (SkillId s = 0; s < sa.num_skills(); ++s) {
    if (sa.Frequency(s) > 0) by_freq.push_back(s);
  }
  std::stable_sort(by_freq.begin(), by_freq.end(),
                   [&](SkillId a, SkillId b) {
                     return sa.Frequency(a) > sa.Frequency(b);
                   });
  if (by_freq.size() > top_pool) by_freq.resize(top_pool);
  std::vector<Task> tasks;
  tasks.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
        static_cast<uint32_t>(by_freq.size()), k);
    std::vector<SkillId> skills;
    skills.reserve(k);
    for (uint32_t p : picks) skills.push_back(by_freq[p]);
    tasks.emplace_back(std::move(skills));
  }
  return tasks;
}

// Forms every task with `params` against the shared fixture, recording
// wall time and results. Each run re-seeds its own Rng so paths and
// thread counts see identical random streams.
double RunFormPass(Fixture& fx, const std::vector<Task>& tasks,
                   const GreedyParams& params,
                   std::vector<TeamResult>* results) {
  GreedyTeamFormer former(fx.oracle.get(), fx.ds.skills, fx.index.get(),
                          params);
  results->clear();
  results->reserve(tasks.size());
  Timer timer;
  for (size_t t = 0; t < tasks.size(); ++t) {
    Rng rng(100 + static_cast<uint64_t>(t));
    results->push_back(former.Form(tasks[t], &rng));
  }
  return timer.Seconds();
}

void RunViewVsOracle(bool quick, uint32_t num_tasks, uint32_t task_size,
                     uint32_t max_seeds, uint32_t top_pool,
                     bench::JsonArrayWriter* json) {
  const std::vector<CompatKind> kinds =
      quick ? std::vector<CompatKind>{CompatKind::kSPM}
            : std::vector<CompatKind>{CompatKind::kSPM, CompatKind::kNNE};
  const std::vector<UserPolicy> policies =
      quick ? std::vector<UserPolicy>{UserPolicy::kMinDistance}
            : std::vector<UserPolicy>{UserPolicy::kMinDistance,
                                      UserPolicy::kMostCompatible};

  std::printf(
      "greedy Form: task-local dense view vs oracle path "
      "(%u dense-skill tasks of size %u, max_seeds=%u, single thread)\n"
      "%5s %15s %12s %12s %9s %9s\n",
      num_tasks, task_size, max_seeds, "kind", "policy", "oracle t/s",
      "view t/s", "speedup", "solved");
  for (CompatKind kind : kinds) {
    Fixture& fx = SharedFixture(kind);
    Rng task_rng(11);
    const std::vector<Task> tasks = DenseTasks(
        fx.ds.skills, task_size, num_tasks, top_pool, &task_rng);
    for (UserPolicy up : policies) {
      // Warm-up pass: pays the row-production cost once so both timed
      // passes measure query evaluation on a hot shared row cache.
      std::vector<TeamResult> warm;
      RunFormPass(fx, tasks, EvalParams(up, GreedyEvalPath::kView, max_seeds, 1),
                  &warm);

      std::vector<TeamResult> via_oracle, via_view;
      const double oracle_seconds = RunFormPass(
          fx, tasks, EvalParams(up, GreedyEvalPath::kOracle, max_seeds, 1),
          &via_oracle);
      const double view_seconds = RunFormPass(
          fx, tasks, EvalParams(up, GreedyEvalPath::kView, max_seeds, 1),
          &via_view);

      uint32_t solved = 0;
      for (size_t t = 0; t < tasks.size(); ++t) {
        solved += via_view[t].found;
        if (!SameResult(via_oracle[t], via_view[t])) {
          std::fprintf(stderr,
                       "FATAL: view/oracle mismatch on task %zu (%s)\n", t,
                       UserPolicyName(up));
          std::abort();
        }
      }
      const double speedup =
          view_seconds > 0 ? oracle_seconds / view_seconds : 0.0;
      std::printf("%5s %15s %12.2f %12.2f %8.2fx %6u/%u\n",
                  CompatKindName(kind), UserPolicyName(up),
                  Rate(tasks.size(), oracle_seconds),
                  Rate(tasks.size(), view_seconds), speedup, solved,
                  num_tasks);
      if (json != nullptr) {
        json->BeginObject();
        json->Field("bench", "micro_team");
        json->Field("experiment", "view_vs_oracle");
        json->Field("workload", "dense_skills");
        json->Field("n", fx.ds.graph.num_nodes());
        json->Field("edges", fx.ds.graph.num_edges());
        json->Field("kind", CompatKindName(kind));
        json->Field("policy", UserPolicyName(up));
        json->Field("tasks", static_cast<uint64_t>(tasks.size()));
        json->Field("task_size", task_size);
        json->Field("max_seeds", max_seeds);
        json->Field("threads", 1);
        json->Field("scalar_seconds", oracle_seconds);
        json->Field("view_seconds", view_seconds);
        json->Field("scalar_tasks_per_sec", Rate(tasks.size(), oracle_seconds));
        json->Field("view_tasks_per_sec", Rate(tasks.size(), view_seconds));
        json->Field("speedup", speedup);
        json->Field("identical", true);
        json->EndObject();
      }

      // Seed-loop thread sweep on the view path: results must stay
      // bit-identical while the wall clock (on multi-core hosts) drops.
      for (uint32_t seed_threads : {2u, 8u}) {
        std::vector<TeamResult> threaded;
        const double seconds = RunFormPass(
            fx, tasks,
            EvalParams(up, GreedyEvalPath::kView, max_seeds, seed_threads),
            &threaded);
        for (size_t t = 0; t < tasks.size(); ++t) {
          if (!SameResult(threaded[t], via_view[t])) {
            std::fprintf(stderr,
                         "FATAL: seed_threads=%u mismatch on task %zu\n",
                         seed_threads, t);
            std::abort();
          }
        }
        std::printf("%5s %15s   seed_threads=%u: %.2f tasks/s\n",
                    CompatKindName(kind), UserPolicyName(up), seed_threads,
                    Rate(tasks.size(), seconds));
        if (json != nullptr) {
          json->BeginObject();
          json->Field("bench", "micro_team");
          json->Field("experiment", "view_seed_threads");
          json->Field("kind", CompatKindName(kind));
          json->Field("policy", UserPolicyName(up));
          json->Field("tasks", static_cast<uint64_t>(tasks.size()));
          json->Field("task_size", task_size);
          json->Field("max_seeds", max_seeds);
          json->Field("seed_threads", seed_threads);
          json->Field("view_seconds", seconds);
          json->Field("view_tasks_per_sec", Rate(tasks.size(), seconds));
          json->Field("identical", true);
          json->EndObject();
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Google-Benchmark suite
// ---------------------------------------------------------------------------

#ifdef TFSN_HAVE_GBENCH

void BM_GreedyForm(benchmark::State& state) {
  auto kind = static_cast<CompatKind>(state.range(0));
  auto user_policy = static_cast<UserPolicy>(state.range(1));
  auto path = static_cast<GreedyEvalPath>(state.range(2));
  Fixture& fx = SharedFixture(kind);
  GreedyTeamFormer former(fx.oracle.get(), fx.ds.skills, fx.index.get(),
                          EvalParams(user_policy, path, 10, 1));
  Rng rng(11);
  uint64_t solved = 0, total = 0;
  for (auto _ : state) {
    Task task = RandomTask(fx.ds.skills, 5, &rng);
    TeamResult r = former.Form(task, &rng);
    solved += r.found;
    ++total;
    benchmark::DoNotOptimize(r);
  }
  state.counters["solved_frac"] =
      total == 0 ? 0.0 : static_cast<double>(solved) / total;
}
BENCHMARK(BM_GreedyForm)
    ->ArgNames({"kind", "policy", "path"})
    ->Args({static_cast<int>(CompatKind::kSPM),
            static_cast<int>(UserPolicy::kMinDistance),
            static_cast<int>(GreedyEvalPath::kView)})
    ->Args({static_cast<int>(CompatKind::kSPM),
            static_cast<int>(UserPolicy::kMinDistance),
            static_cast<int>(GreedyEvalPath::kOracle)})
    ->Args({static_cast<int>(CompatKind::kSPM),
            static_cast<int>(UserPolicy::kMostCompatible),
            static_cast<int>(GreedyEvalPath::kView)})
    ->Args({static_cast<int>(CompatKind::kSPM),
            static_cast<int>(UserPolicy::kRandom),
            static_cast<int>(GreedyEvalPath::kView)})
    ->Args({static_cast<int>(CompatKind::kNNE),
            static_cast<int>(UserPolicy::kMinDistance),
            static_cast<int>(GreedyEvalPath::kView)})
    ->Args({static_cast<int>(CompatKind::kSBPH),
            static_cast<int>(UserPolicy::kMinDistance),
            static_cast<int>(GreedyEvalPath::kView)});

void BM_ExactSolver(benchmark::State& state) {
  Rng graph_rng(13);
  SignedGraph g =
      RandomConnectedGnm(static_cast<uint32_t>(state.range(0)),
                         static_cast<uint64_t>(state.range(0)) * 3, 0.25,
                         &graph_rng);
  ZipfSkillParams sp;
  sp.num_skills = 12;
  SkillAssignment sa = ZipfSkills(static_cast<uint32_t>(state.range(0)), sp,
                                  &graph_rng);
  auto oracle = MakeOracle(g, CompatKind::kSPM);
  Rng rng(15);
  for (auto _ : state) {
    Task task = RandomTask(sa, 3, &rng);
    benchmark::DoNotOptimize(SolveExact(oracle.get(), sa, task));
  }
}
BENCHMARK(BM_ExactSolver)->Arg(20)->Arg(40)->Arg(80);

void BM_RarestFirst(benchmark::State& state) {
  Fixture& fx = SharedFixture(CompatKind::kNNE);
  Rng rng(17);
  for (auto _ : state) {
    Task task = RandomTask(fx.ds.skills, 5, &rng);
    benchmark::DoNotOptimize(RarestFirst(fx.ds.graph, fx.ds.skills, task));
  }
}
BENCHMARK(BM_RarestFirst);

void BM_SkillIndexBuild(benchmark::State& state) {
  Fixture& fx = SharedFixture(CompatKind::kSPM);
  for (auto _ : state) {
    Rng rng(19);
    SkillCompatibilityIndex index(fx.oracle.get(), fx.ds.skills,
                                  static_cast<uint32_t>(state.range(0)), &rng);
    benchmark::DoNotOptimize(index.Degree(0));
  }
}
BENCHMARK(BM_SkillIndexBuild)->Arg(50)->Arg(200);

#endif  // TFSN_HAVE_GBENCH

}  // namespace
}  // namespace tfsn

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const std::string json_path = flags.GetString("json");
#ifdef TFSN_HAVE_GBENCH
  const bool view = flags.GetBool("view") || quick || !json_path.empty();
#else
  // Without Google Benchmark the view-vs-oracle sweep is the whole suite.
  const bool view = true;
#endif
  tfsn::g_fixture_scale = flags.GetDouble("scale", quick ? 0.08 : 0.12);

  if (view) {
    tfsn::bench::JsonArrayWriter json;
    tfsn::RunViewVsOracle(
        quick, static_cast<uint32_t>(flags.GetInt("tasks", quick ? 15 : 25)),
        static_cast<uint32_t>(flags.GetInt("task_size", 5)),
        static_cast<uint32_t>(flags.GetInt("max_seeds", 0)),
        static_cast<uint32_t>(flags.GetInt("top_pool", 10)),
        json_path.empty() ? nullptr : &json);
    if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
    if (quick) return 0;
  }

#ifdef TFSN_HAVE_GBENCH
  // Strip the custom flags; Google Benchmark rejects unknown --flags.
  auto is_custom = [](const char* a) {
    for (const char* name : {"--json", "--quick", "--view", "--tasks",
                             "--task_size", "--max_seeds", "--scale", "--top_pool"}) {
      const size_t len = std::strlen(name);
      if (std::strncmp(a, name, len) == 0 && (a[len] == '\0' || a[len] == '=')) {
        return true;
      }
    }
    return false;
  };
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (is_custom(argv[i])) {
      // Flags also accepts the "--name value" form: drop the value token
      // along with the flag.
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc &&
          std::strncmp(argv[i + 1], "--", 2) != 0) {
        ++i;
      }
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
#endif
  return 0;
}
