// Microbenchmarks for team formation: the greedy former per policy, the
// exact solver on small instances, and the unsigned RarestFirst baseline.

#include <benchmark/benchmark.h>

#include "src/compat/skill_index.h"
#include "src/data/datasets.h"
#include "src/gen/generators.h"
#include "src/skills/skill_generator.h"
#include "src/team/exact.h"
#include "src/team/greedy.h"
#include "src/team/unsigned_tf.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

struct Fixture {
  Dataset ds;
  std::unique_ptr<CompatibilityOracle> oracle;
  std::unique_ptr<SkillCompatibilityIndex> index;

  explicit Fixture(double scale, CompatKind kind) {
    DatasetOptions options;
    options.scale = scale;
    ds = MakeEpinions(options);
    oracle = MakeOracle(ds.graph, kind);
    Rng rng(9);
    index = std::make_unique<SkillCompatibilityIndex>(oracle.get(), ds.skills,
                                                      200, &rng);
  }
};

Fixture& SharedFixture(CompatKind kind) {
  static auto* cache = new std::map<CompatKind, std::unique_ptr<Fixture>>();
  auto it = cache->find(kind);
  if (it == cache->end()) {
    it = cache->emplace(kind, std::make_unique<Fixture>(0.08, kind)).first;
  }
  return *it->second;
}

void BM_GreedyForm(benchmark::State& state) {
  auto kind = static_cast<CompatKind>(state.range(0));
  auto user_policy = static_cast<UserPolicy>(state.range(1));
  Fixture& fx = SharedFixture(kind);
  GreedyParams params;
  params.skill_policy = SkillPolicy::kLeastCompatible;
  params.user_policy = user_policy;
  params.max_seeds = 10;
  GreedyTeamFormer former(fx.oracle.get(), fx.ds.skills, fx.index.get(),
                          params);
  Rng rng(11);
  uint64_t solved = 0, total = 0;
  for (auto _ : state) {
    Task task = RandomTask(fx.ds.skills, 5, &rng);
    TeamResult r = former.Form(task, &rng);
    solved += r.found;
    ++total;
    benchmark::DoNotOptimize(r);
  }
  state.counters["solved_frac"] =
      total == 0 ? 0.0 : static_cast<double>(solved) / total;
}
BENCHMARK(BM_GreedyForm)
    ->Args({static_cast<int>(CompatKind::kSPM),
            static_cast<int>(UserPolicy::kMinDistance)})
    ->Args({static_cast<int>(CompatKind::kSPM),
            static_cast<int>(UserPolicy::kMostCompatible)})
    ->Args({static_cast<int>(CompatKind::kSPM),
            static_cast<int>(UserPolicy::kRandom)})
    ->Args({static_cast<int>(CompatKind::kNNE),
            static_cast<int>(UserPolicy::kMinDistance)})
    ->Args({static_cast<int>(CompatKind::kSBPH),
            static_cast<int>(UserPolicy::kMinDistance)});

void BM_ExactSolver(benchmark::State& state) {
  Rng graph_rng(13);
  SignedGraph g =
      RandomConnectedGnm(static_cast<uint32_t>(state.range(0)),
                         static_cast<uint64_t>(state.range(0)) * 3, 0.25,
                         &graph_rng);
  ZipfSkillParams sp;
  sp.num_skills = 12;
  SkillAssignment sa = ZipfSkills(static_cast<uint32_t>(state.range(0)), sp,
                                  &graph_rng);
  auto oracle = MakeOracle(g, CompatKind::kSPM);
  Rng rng(15);
  for (auto _ : state) {
    Task task = RandomTask(sa, 3, &rng);
    benchmark::DoNotOptimize(SolveExact(oracle.get(), sa, task));
  }
}
BENCHMARK(BM_ExactSolver)->Arg(20)->Arg(40)->Arg(80);

void BM_RarestFirst(benchmark::State& state) {
  Fixture& fx = SharedFixture(CompatKind::kNNE);
  Rng rng(17);
  for (auto _ : state) {
    Task task = RandomTask(fx.ds.skills, 5, &rng);
    benchmark::DoNotOptimize(RarestFirst(fx.ds.graph, fx.ds.skills, task));
  }
}
BENCHMARK(BM_RarestFirst);

void BM_SkillIndexBuild(benchmark::State& state) {
  Fixture& fx = SharedFixture(CompatKind::kSPM);
  for (auto _ : state) {
    Rng rng(19);
    SkillCompatibilityIndex index(fx.oracle.get(), fx.ds.skills,
                                  static_cast<uint32_t>(state.range(0)), &rng);
    benchmark::DoNotOptimize(index.Degree(0));
  }
}
BENCHMARK(BM_SkillIndexBuild)->Arg(50)->Arg(200);

}  // namespace
}  // namespace tfsn

BENCHMARK_MAIN();
