// Microbenchmarks for the compatibility machinery: Algorithm 1 (signed
// BFS), SBPH label-setting, exact SBP queries, plain BFS baseline, and
// oracle row caching. Run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include "src/compat/compatibility.h"
#include "src/compat/sbp.h"
#include "src/compat/signed_bfs.h"
#include "src/data/datasets.h"
#include "src/gen/generators.h"
#include "src/graph/bfs.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

// Shared graphs, built once.
const SignedGraph& GraphOfSize(int64_t n) {
  static auto* cache = new std::map<int64_t, SignedGraph>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Rng rng(42 + static_cast<uint64_t>(n));
    it = cache->emplace(n, RandomPreferentialAttachment(
                               static_cast<uint32_t>(n),
                               static_cast<uint64_t>(n) * 7, 0.2, &rng))
             .first;
  }
  return it->second;
}

void BM_PlainBfs(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    NodeId q = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(BfsDistances(g, q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_PlainBfs)->Arg(1000)->Arg(10000)->Arg(30000);

void BM_SignedShortestPathCount(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    NodeId q = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(SignedShortestPathCount(g, q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_SignedShortestPathCount)->Arg(1000)->Arg(10000)->Arg(30000);

void BM_SbphFromSource(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    NodeId q = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(SbphFromSource(g, q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_SbphFromSource)->Arg(1000)->Arg(10000)->Arg(30000);

void BM_SbpExactPair(benchmark::State& state) {
  // Slashdot-scale graph: the regime the paper computes SBP on.
  Rng graph_rng(7);
  SignedGraph g = RandomConnectedGnm(214, 304, 0.29, &graph_rng);
  SbpExactParams params;
  params.max_depth = static_cast<uint32_t>(state.range(0));
  SbpExactSearch search(g, params);
  Rng rng(4);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    if (u == v) v = (v + 1) % g.num_nodes();
    benchmark::DoNotOptimize(search.ShortestBalancedPath(u, v, Sign::kPositive));
  }
}
BENCHMARK(BM_SbpExactPair)->Arg(8)->Arg(12)->Arg(16);

void BM_OracleRowCached(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(10000);
  auto kind = static_cast<CompatKind>(state.range(0));
  auto oracle = MakeOracle(g, kind);
  oracle->GetRow(0);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle->Compatible(0, 123));
  }
}
BENCHMARK(BM_OracleRowCached)
    ->Arg(static_cast<int>(CompatKind::kSPM))
    ->Arg(static_cast<int>(CompatKind::kSBPH))
    ->Arg(static_cast<int>(CompatKind::kNNE));

void BM_OracleRowCold(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(10000);
  auto kind = static_cast<CompatKind>(state.range(0));
  OracleParams params;
  params.max_cached_rows = 1;  // force misses
  auto oracle = MakeOracle(g, kind, params);
  Rng rng(5);
  NodeId q = 0;
  for (auto _ : state) {
    q = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(oracle->GetRow(q));
  }
}
BENCHMARK(BM_OracleRowCold)
    ->Arg(static_cast<int>(CompatKind::kSPA))
    ->Arg(static_cast<int>(CompatKind::kSPM))
    ->Arg(static_cast<int>(CompatKind::kSBPH))
    ->Arg(static_cast<int>(CompatKind::kNNE));

}  // namespace
}  // namespace tfsn

BENCHMARK_MAIN();
