// Microbenchmarks for the compatibility machinery.
//
// Two modes:
//
//  1. Batch-vs-scalar row construction (always available):
//       micro_compat --quick [--json=BENCH_micro_compat.json]
//       micro_compat --batch [--sources=N] [--json=...]
//     measures the bit-parallel 64-source engine (ms_signed_bfs.h) against
//     the scalar per-row kernels for SPA/SPO on preferential-attachment
//     graphs, printing rows/sec and the batch speedup, and optionally
//     writing a BENCH_*.json trajectory file (format: README, "Bench JSON
//     output"). --quick trims the sweep for CI smoke runs and skips the
//     Google-Benchmark suite.
//
//  2. The Google-Benchmark suite (when the library is available): signed
//     BFS (Algorithm 1), SBPH label-setting, exact SBP queries, plain BFS
//     baseline, oracle row caching, and the batched block engine. Run with
//     --benchmark_filter=... to narrow.

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "src/compat/compatibility.h"
#include "src/compat/ms_signed_bfs.h"
#include "src/compat/row_kernels.h"
#include "src/compat/sbp.h"
#include "src/compat/signed_bfs.h"
#include "src/gen/generators.h"
#include "src/graph/bfs.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

#ifdef TFSN_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

namespace tfsn {
namespace {

// Shared graphs, built once.
const SignedGraph& GraphOfSize(int64_t n) {
  static auto* cache = new std::map<int64_t, SignedGraph>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    Rng rng(42 + static_cast<uint64_t>(n));
    it = cache->emplace(n, RandomPreferentialAttachment(
                               static_cast<uint32_t>(n),
                               static_cast<uint64_t>(n) * 7, 0.2, &rng))
             .first;
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Batch vs scalar row construction (the PR's headline measurement)
// ---------------------------------------------------------------------------

struct BatchMeasurement {
  uint32_t n = 0;
  uint64_t edges = 0;
  CompatKind kind = CompatKind::kSPA;
  uint32_t sources = 0;
  double scalar_seconds = 0.0;
  double batch_seconds = 0.0;

  double scalar_rows_per_sec() const {
    return scalar_seconds > 0 ? sources / scalar_seconds : 0.0;
  }
  double batch_rows_per_sec() const {
    return batch_seconds > 0 ? sources / batch_seconds : 0.0;
  }
  double speedup() const {
    return batch_seconds > 0 ? scalar_seconds / batch_seconds : 0.0;
  }
};

BatchMeasurement MeasureBatchVsScalar(const SignedGraph& g, CompatKind kind,
                                      uint32_t num_sources) {
  BatchMeasurement m;
  m.n = g.num_nodes();
  m.edges = g.num_edges();
  m.kind = kind;

  Rng rng(19 + static_cast<uint64_t>(kind));
  std::vector<NodeId> sources =
      rng.SampleWithoutReplacement(g.num_nodes(),
                                   std::min(num_sources, g.num_nodes()));
  m.sources = static_cast<uint32_t>(sources.size());

  const RowKernelParams params;
  Timer scalar_timer;
  for (NodeId q : sources) {
    CompatRow row = ComputeCompatRow(g, kind, params, q);
    // Keep the optimizer honest without Google Benchmark helpers.
    if (row.comp.empty()) std::abort();
  }
  m.scalar_seconds = scalar_timer.Seconds();

  Timer batch_timer;
  for (size_t off = 0; off < sources.size(); off += kMsBfsBatchSize) {
    const size_t len = std::min(kMsBfsBatchSize, sources.size() - off);
    auto rows = ComputeCompatRowBlock(
        g, kind, std::span<const NodeId>(sources.data() + off, len));
    if (rows.size() != len) std::abort();
  }
  m.batch_seconds = batch_timer.Seconds();
  return m;
}

// Runs the batch-vs-scalar sweep, prints a table, and appends one JSON
// object per measurement. Single-threaded by construction: the speedup is
// pure bit-parallelism, not thread parallelism.
void RunBatchSweep(bool quick, uint32_t num_sources, bench::JsonArrayWriter* json) {
  std::vector<int64_t> sizes = quick ? std::vector<int64_t>{1000, 10000}
                                     : std::vector<int64_t>{1000, 10000, 30000};
  std::printf(
      "batch vs scalar row construction (single thread, %u sources)\n"
      "%8s %9s %5s %14s %14s %9s\n",
      num_sources, "n", "edges", "kind", "scalar rows/s", "batch rows/s",
      "speedup");
  for (int64_t n : sizes) {
    const SignedGraph& g = GraphOfSize(n);
    for (CompatKind kind : {CompatKind::kSPA, CompatKind::kSPO}) {
      BatchMeasurement m = MeasureBatchVsScalar(g, kind, num_sources);
      std::printf("%8u %9llu %5s %14.1f %14.1f %8.2fx\n", m.n,
                  static_cast<unsigned long long>(m.edges),
                  CompatKindName(m.kind), m.scalar_rows_per_sec(),
                  m.batch_rows_per_sec(), m.speedup());
      if (json != nullptr) {
        json->BeginObject();
        json->Field("bench", "micro_compat");
        json->Field("experiment", "batch_vs_scalar");
        json->Field("n", m.n);
        json->Field("edges", m.edges);
        json->Field("kind", CompatKindName(m.kind));
        json->Field("sources", m.sources);
        json->Field("threads", 1);
        json->Field("scalar_seconds", m.scalar_seconds);
        json->Field("batch_seconds", m.batch_seconds);
        json->Field("scalar_rows_per_sec", m.scalar_rows_per_sec());
        json->Field("batch_rows_per_sec", m.batch_rows_per_sec());
        json->Field("speedup", m.speedup());
        json->EndObject();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Google-Benchmark suite
// ---------------------------------------------------------------------------

#ifdef TFSN_HAVE_GBENCH

void BM_PlainBfs(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    NodeId q = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(BfsDistances(g, q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_PlainBfs)->Arg(1000)->Arg(10000)->Arg(30000);

void BM_SignedShortestPathCount(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    NodeId q = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(SignedShortestPathCount(g, q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_SignedShortestPathCount)->Arg(1000)->Arg(10000)->Arg(30000);

void BM_BatchedRowBlock64(benchmark::State& state) {
  // One full 64-source bit-parallel block; items = rows produced.
  const SignedGraph& g = GraphOfSize(state.range(0));
  Rng rng(6);
  std::vector<NodeId> sources = rng.SampleWithoutReplacement(g.num_nodes(), 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeCompatRowBlock(g, CompatKind::kSPA, sources));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BatchedRowBlock64)->Arg(1000)->Arg(10000)->Arg(30000);

void BM_SbphFromSource(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    NodeId q = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(SbphFromSource(g, q));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_SbphFromSource)->Arg(1000)->Arg(10000)->Arg(30000);

void BM_SbpExactPair(benchmark::State& state) {
  // Slashdot-scale graph: the regime the paper computes SBP on.
  Rng graph_rng(7);
  SignedGraph g = RandomConnectedGnm(214, 304, 0.29, &graph_rng);
  SbpExactParams params;
  params.max_depth = static_cast<uint32_t>(state.range(0));
  SbpExactSearch search(g, params);
  Rng rng(4);
  for (auto _ : state) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    if (u == v) v = (v + 1) % g.num_nodes();
    benchmark::DoNotOptimize(search.ShortestBalancedPath(u, v, Sign::kPositive));
  }
}
BENCHMARK(BM_SbpExactPair)->Arg(8)->Arg(12)->Arg(16);

void BM_OracleRowCached(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(10000);
  auto kind = static_cast<CompatKind>(state.range(0));
  auto oracle = MakeOracle(g, kind);
  oracle->GetRow(0);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle->Compatible(0, 123));
  }
}
BENCHMARK(BM_OracleRowCached)
    ->Arg(static_cast<int>(CompatKind::kSPM))
    ->Arg(static_cast<int>(CompatKind::kSBPH))
    ->Arg(static_cast<int>(CompatKind::kNNE));

void BM_OracleRowCold(benchmark::State& state) {
  const SignedGraph& g = GraphOfSize(10000);
  auto kind = static_cast<CompatKind>(state.range(0));
  OracleParams params;
  params.max_cached_rows = 1;  // force misses
  auto oracle = MakeOracle(g, kind, params);
  Rng rng(5);
  NodeId q = 0;
  for (auto _ : state) {
    q = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
    benchmark::DoNotOptimize(oracle->GetRow(q));
  }
}
BENCHMARK(BM_OracleRowCold)
    ->Arg(static_cast<int>(CompatKind::kSPA))
    ->Arg(static_cast<int>(CompatKind::kSPM))
    ->Arg(static_cast<int>(CompatKind::kSBPH))
    ->Arg(static_cast<int>(CompatKind::kNNE));

#endif  // TFSN_HAVE_GBENCH

}  // namespace
}  // namespace tfsn

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  const std::string json_path = flags.GetString("json");
  const bool batch = flags.GetBool("batch") || quick || !json_path.empty();

  if (batch) {
    tfsn::bench::JsonArrayWriter json;
    tfsn::RunBatchSweep(
        quick, static_cast<uint32_t>(flags.GetInt("sources", 128)),
        json_path.empty() ? nullptr : &json);
    if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
    if (quick) return 0;
  }

#ifdef TFSN_HAVE_GBENCH
  // Strip the custom flags; Google Benchmark rejects unknown --flags.
  auto is_custom = [](const char* a) {
    for (const char* name : {"--json", "--quick", "--batch", "--sources"}) {
      const size_t len = std::strlen(name);
      if (std::strncmp(a, name, len) == 0 && (a[len] == '\0' || a[len] == '=')) {
        return true;
      }
    }
    return false;
  };
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (is_custom(argv[i])) {
      // Flags also accepts the "--name value" form: drop the value token
      // along with the flag.
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc &&
          std::strncmp(argv[i + 1], "--", 2) != 0) {
        ++i;
      }
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
#else
  if (!batch) {
    // Without Google Benchmark the batch sweep is the whole suite.
    tfsn::RunBatchSweep(quick,
                        static_cast<uint32_t>(flags.GetInt("sources", 128)),
                        nullptr);
  }
#endif
  return 0;
}
