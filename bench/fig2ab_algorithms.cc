// Reproduces Figure 2(a) and 2(b): team-formation algorithm comparison at
// fixed task size k=5 on the Epinions-like dataset.
//   (a) percentage of tasks solved by LCMD / LCMC / RANDOM per relation,
//       plus the MAX skill-compatibility upper bound;
//   (b) average team diameter per algorithm and relation.
//
// Expected shape (paper): LCMD ≈ LCMC success, both below MAX for strict
// relations; RANDOM trails; LCMD yields the smallest diameters.

#include <cstdio>

#include "bench_common.h"
#include "src/exp/experiments.h"
#include "src/util/table.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  auto datasets =
      tfsn::bench::LoadDatasets(flags, /*default_scale=*/0.12, "epinions");

  tfsn::TeamExperimentOptions options;
  options.task_size = static_cast<uint32_t>(flags.GetInt("k", 5));
  options.num_tasks = static_cast<uint32_t>(flags.GetInt("tasks", 50));
  options.max_seeds = static_cast<uint32_t>(flags.GetInt("max_seeds", 10));
  options.index_sample_sources =
      static_cast<uint32_t>(flags.GetInt("index_sources", 200));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  // Row-production and seed-loop workers (results are thread-count
  // independent either way).
  options.threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  options.seed_threads =
      static_cast<uint32_t>(flags.GetInt("seed-threads", 1));

  tfsn::bench::PrintHeader(
      "Figure 2(a)/(b): team formation algorithms, k=" +
      std::to_string(options.task_size));
  for (const tfsn::Dataset& ds : datasets) {
    std::printf("\n--- %s (%u users, %llu edges; %u tasks) ---\n",
                ds.name.c_str(), ds.graph.num_nodes(),
                static_cast<unsigned long long>(ds.graph.num_edges()),
                options.num_tasks);
    tfsn::Timer timer;
    auto rows = tfsn::RunFig2ab(ds, options);

    tfsn::TextTable solved({"compat", "LCMD", "LCMC", "RANDOM", "MAX"});
    tfsn::TextTable diameter({"compat", "LCMD", "LCMC", "RANDOM"});
    for (const auto& row : rows) {
      std::vector<std::string> s{tfsn::CompatKindName(row.kind)};
      std::vector<std::string> d{tfsn::CompatKindName(row.kind)};
      for (const auto& outcome : row.outcomes) {
        s.push_back(tfsn::TextTable::Fmt(outcome.solved_pct, 0) + "%");
        d.push_back(tfsn::TextTable::Fmt(outcome.avg_diameter, 2));
      }
      s.push_back(tfsn::TextTable::Fmt(row.max_bound_pct, 0) + "%");
      solved.AddRow(s);
      diameter.AddRow(d);
    }
    std::printf("(a) solutions found\n%s", solved.ToString().c_str());
    std::printf("(b) average team diameter\n%s", diameter.ToString().c_str());
    if (flags.GetBool("csv")) {
      std::fputs(solved.ToCsv().c_str(), stdout);
      std::fputs(diameter.ToCsv().c_str(), stdout);
    }
    std::printf("(%.1fs)\n", timer.Seconds());
  }
  return 0;
}
