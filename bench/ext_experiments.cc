// Extension experiments beyond the paper's evaluation (its Section 7 names
// these as future work):
//   E1. edge-sign prediction from compatibility structure — leave-one-out
//       accuracy of three predictors per dataset;
//   E2. balance-based two-faction clustering — frustration/polarization of
//       each dataset;
//   E3. threshold sweep — how the fraction of compatible pairs decays as
//       the positive-path-score threshold θ tightens from SPO to SPA.

#include <cstdio>

#include "bench_common.h"
#include "src/compat/stats.h"
#include "src/compat/threshold.h"
#include "src/ext/balance_clustering.h"
#include "src/ext/sign_prediction.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace tfsn {
namespace {

void SignPredictionExperiment(const Dataset& ds, uint32_t samples,
                              uint64_t seed) {
  std::printf("\n[E1] sign prediction on %s (%u hidden edges)\n",
              ds.name.c_str(), samples);
  TextTable table(
      {"predictor", "accuracy %", "coverage %", "evaluated", "abstained"});
  for (SignPredictor p :
       {SignPredictor::kTriadBalance, SignPredictor::kMajorityShortestPath,
        SignPredictor::kSbph}) {
    Rng rng(seed);
    SignPredictionReport report = EvaluateSignPredictor(ds.graph, p, samples,
                                                        &rng);
    double coverage =
        100.0 * report.evaluated / (report.evaluated + report.abstained);
    table.AddRow({SignPredictorName(p),
                  TextTable::Fmt(report.accuracy() * 100.0, 1),
                  TextTable::Fmt(coverage, 1),
                  std::to_string(report.evaluated),
                  std::to_string(report.abstained)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("  baseline: always-positive = %.1f%% accuracy\n",
              (1.0 - ds.graph.negative_fraction()) * 100.0);
}

void ClusteringExperiment(const Dataset& ds, uint64_t seed) {
  std::printf("\n[E2] two-faction clustering on %s\n", ds.name.c_str());
  ClusteringOptions options;
  options.seed = seed;
  Timer timer;
  FactionClustering c = ClusterFactions(ds.graph);
  std::printf(
      "  frustration %llu / %llu edges, polarization %.3f, imbalance %.2f, "
      "exact: %s (%.2fs)\n",
      static_cast<unsigned long long>(c.frustration),
      static_cast<unsigned long long>(ds.graph.num_edges()),
      PolarizationScore(ds.graph, c), FactionImbalance(c),
      c.exact ? "yes" : "no", timer.Seconds());
}

void ThresholdSweep(const Dataset& ds, uint32_t sources, uint64_t seed) {
  std::printf("\n[E3] threshold sweep on %s (θ: SPO -> SPA)\n",
              ds.name.c_str());
  TextTable table({"theta", "comp. users %", "avg distance"});
  for (double theta : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    auto oracle = MakeThresholdOracle(ds.graph, theta);
    Rng rng(seed);
    CompatPairStats stats = ComputeCompatPairStats(oracle.get(), sources, &rng);
    table.AddRow({TextTable::Fmt(theta, 2),
                  TextTable::Fmt(stats.compatible_fraction * 100.0, 2),
                  TextTable::Fmt(stats.avg_distance, 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);
}

}  // namespace
}  // namespace tfsn

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  auto datasets = tfsn::bench::LoadDatasets(flags, /*default_scale=*/0.1,
                                            "slashdot,epinions");
  uint32_t samples = static_cast<uint32_t>(flags.GetInt("samples", 120));
  uint32_t sources = static_cast<uint32_t>(flags.GetInt("sources", 150));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  tfsn::bench::PrintHeader("Extension experiments (paper future work)");
  for (const tfsn::Dataset& ds : datasets) {
    tfsn::SignPredictionExperiment(ds, samples, seed);
    tfsn::ClusteringExperiment(ds, seed);
    tfsn::ThresholdSweep(ds, sources, seed);
  }
  return 0;
}
