// Shared helpers for the table/figure reproduction binaries.
//
// Every binary accepts:
//   --datasets=slashdot,epinions,wikipedia   which datasets to run
//   --scale=<0..1>       scale factor for the large synthetic datasets
//   --seed=<n>           dataset + experiment seed
//   --graph=<path>       use a real signed edge list instead (with
//                        --num_skills=<n> Zipf skills)
//   --csv                additionally emit CSV rows

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/data/datasets.h"
#include "src/util/flags.h"

namespace tfsn::bench {

/// Splits a comma-separated list.
inline std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Resolves the datasets requested on the command line. `default_scale`
/// applies to epinions/wikipedia only — slashdot is tiny and always full
/// size — unless --scale overrides it.
inline std::vector<Dataset> LoadDatasets(const Flags& flags,
                                         double default_scale,
                                         const std::string& default_names) {
  std::vector<Dataset> out;
  DatasetOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2020));

  if (flags.Has("graph")) {
    auto ds = LoadDatasetFromEdgeList(
        flags.GetString("graph"),
        static_cast<uint32_t>(flags.GetInt("num_skills", 500)), options);
    ds.status().CheckOK();
    out.push_back(std::move(ds).ValueOrDie());
    return out;
  }

  double scale = flags.GetDouble("scale", default_scale);
  for (const std::string& name :
       SplitCsv(flags.GetString("datasets", default_names))) {
    DatasetOptions opt = options;
    opt.scale = name == "slashdot" ? 1.0 : scale;
    auto ds = MakeDatasetByName(name, opt);
    ds.status().CheckOK();
    out.push_back(std::move(ds).ValueOrDie());
  }
  return out;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Parses --threads as a comma-separated list of worker counts (a sweep);
/// malformed or empty entries fall back to {1} with a warning rather than
/// throwing out of main.
inline std::vector<uint32_t> ThreadSweepOf(const Flags& flags) {
  std::vector<uint32_t> counts;
  for (const std::string& tok : SplitCsv(flags.GetString("threads", "1"))) {
    char* end = nullptr;
    unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v > 1024) {
      std::fprintf(stderr, "ignoring bad --threads entry '%s'\n", tok.c_str());
      continue;
    }
    counts.push_back(static_cast<uint32_t>(v));
  }
  if (counts.empty()) counts.push_back(1);
  return counts;
}

}  // namespace tfsn::bench
