// Shared helpers for the table/figure reproduction binaries.
//
// Every binary accepts:
//   --datasets=slashdot,epinions,wikipedia   which datasets to run
//   --scale=<0..1>       scale factor for the large synthetic datasets
//   --seed=<n>           dataset + experiment seed
//   --graph=<path>       use a real signed edge list instead (with
//                        --num_skills=<n> Zipf skills)
//   --csv                additionally emit CSV rows

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/data/datasets.h"
#include "src/util/flags.h"

namespace tfsn::bench {

/// Minimal writer for the repo's BENCH_*.json trajectory files: a JSON
/// array of flat objects, one object per measurement (see README, "Bench
/// JSON output"). Usage:
///   JsonArrayWriter json;
///   json.BeginObject();
///   json.Field("bench", "micro_compat");
///   json.Field("rows_per_sec", 1234.5);
///   json.EndObject();
///   json.WriteFile(path);
class JsonArrayWriter {
 public:
  void BeginObject() {
    out_ += first_object_ ? "\n  {" : ",\n  {";
    first_object_ = false;
    first_field_ = true;
  }
  void EndObject() { out_ += "}"; }

  void Field(const std::string& key, const std::string& value) {
    std::string quoted;
    quoted += '"';
    quoted += Escaped(value);
    quoted += '"';
    Raw(key, quoted);
  }
  void Field(const std::string& key, const char* value) {
    Field(key, std::string(value));
  }
  void Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    Raw(key, buf);
  }
  void Field(const std::string& key, uint64_t value) {
    Raw(key, std::to_string(value));
  }
  void Field(const std::string& key, uint32_t value) {
    Raw(key, std::to_string(value));
  }
  void Field(const std::string& key, int value) {
    Raw(key, std::to_string(value));
  }
  void Field(const std::string& key, bool value) {
    Raw(key, value ? "true" : "false");
  }

  std::string ToString() const { return "[" + out_ + "\n]\n"; }

  /// Writes the array to `path`; reports and returns false on IO failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON to %s\n", path.c_str());
      return false;
    }
    const std::string text = ToString();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  void Raw(const std::string& key, const std::string& value) {
    if (!first_field_) out_ += ", ";
    first_field_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\": ";
    out_ += value;
  }
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string out_;
  bool first_object_ = true;
  bool first_field_ = true;
};

/// Splits a comma-separated list.
inline std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Resolves the datasets requested on the command line. `default_scale`
/// applies to epinions/wikipedia only — slashdot is tiny and always full
/// size — unless --scale overrides it.
inline std::vector<Dataset> LoadDatasets(const Flags& flags,
                                         double default_scale,
                                         const std::string& default_names) {
  std::vector<Dataset> out;
  DatasetOptions options;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2020));

  if (flags.Has("graph")) {
    auto ds = LoadDatasetFromEdgeList(
        flags.GetString("graph"),
        static_cast<uint32_t>(flags.GetInt("num_skills", 500)), options);
    ds.status().CheckOK();
    out.push_back(std::move(ds).ValueOrDie());
    return out;
  }

  double scale = flags.GetDouble("scale", default_scale);
  for (const std::string& name :
       SplitCsv(flags.GetString("datasets", default_names))) {
    DatasetOptions opt = options;
    opt.scale = name == "slashdot" ? 1.0 : scale;
    auto ds = MakeDatasetByName(name, opt);
    ds.status().CheckOK();
    out.push_back(std::move(ds).ValueOrDie());
  }
  return out;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Parses --threads as a comma-separated list of worker counts (a sweep);
/// malformed or empty entries fall back to {1} with a warning rather than
/// throwing out of main.
inline std::vector<uint32_t> ThreadSweepOf(const Flags& flags) {
  std::vector<uint32_t> counts;
  for (const std::string& tok : SplitCsv(flags.GetString("threads", "1"))) {
    char* end = nullptr;
    unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v > 1024) {
      std::fprintf(stderr, "ignoring bad --threads entry '%s'\n", tok.c_str());
      continue;
    }
    counts.push_back(static_cast<uint32_t>(v));
  }
  if (counts.empty()) counts.push_back(1);
  return counts;
}

}  // namespace tfsn::bench
