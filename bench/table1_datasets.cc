// Reproduces Table 1: dataset statistics (#users, #edges, #neg edges,
// diameter, #skills) for the three synthetic dataset stand-ins.
//
// --threads=N runs the exact all-sources diameter sweep on N workers
// (0 = hardware concurrency / TFSN_THREADS); --threads=1,2,4 sweeps the
// listed counts and prints per-count wall clock plus speedup over the
// first entry, so thread scaling is directly measurable.
//
// Paper reference values:
//            Slashdot  Epinions  Wikipedia
//   #users       214    28,854      7,066
//   #edges       304   208,778    100,790
//   #neg       29.2%     16.7%      21.5%
//   diameter       9        11          7
//   #skills    1,024       523        500

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "src/exp/experiments.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace {

// One full Table 1 pass; returns wall-clock seconds.
double RunOnce(const std::vector<tfsn::Dataset>& datasets,
               const tfsn::Flags& flags, uint32_t threads, bool print) {
  tfsn::TextTable table({"dataset", "#users", "#edges", "#neg edges",
                         "%neg", "diameter", "#skills"});
  tfsn::Timer timer;
  for (const tfsn::Dataset& ds : datasets) {
    tfsn::Table1Row row = tfsn::ComputeTable1Row(
        ds, /*exact_diameter_limit=*/2000,
        static_cast<uint64_t>(flags.GetInt("seed", 2020)), threads);
    table.AddRow({row.dataset, std::to_string(row.users),
                  std::to_string(row.edges), std::to_string(row.neg_edges),
                  tfsn::TextTable::Pct(row.neg_fraction, 1),
                  std::to_string(row.diameter) +
                      (row.diameter_exact ? "" : "~"),
                  std::to_string(row.skills)});
  }
  double seconds = timer.Seconds();
  if (print) {
    std::fputs(table.ToString().c_str(), stdout);
    if (flags.GetBool("csv")) std::fputs(table.ToCsv().c_str(), stdout);
    std::printf("(~ marks double-sweep diameter estimates; %.1fs total)\n",
                seconds);
  }
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  auto datasets = tfsn::bench::LoadDatasets(
      flags, /*default_scale=*/1.0, "slashdot,epinions,wikipedia");

  tfsn::bench::PrintHeader("Table 1: Dataset Statistics");
  std::vector<uint32_t> thread_counts = tfsn::bench::ThreadSweepOf(flags);

  double baseline = 0.0;
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    double seconds = RunOnce(datasets, flags, thread_counts[i], i == 0);
    if (i == 0) {
      baseline = seconds;
      if (thread_counts.size() > 1) {
        std::printf("\nthread sweep (speedup vs --threads=%u):\n",
                    thread_counts[0]);
        std::printf("  threads=%-3u %6.2fs   1.00x\n", thread_counts[0],
                    seconds);
      }
    } else {
      std::printf("  threads=%-3u %6.2fs   %.2fx\n", thread_counts[i],
                  seconds, seconds > 0 ? baseline / seconds : 0.0);
    }
  }
  std::printf(
      "Paper: Slashdot 214/304/29.2%%/diam 9; Epinions 28854/208778/16.7%%/"
      "diam 11; Wikipedia 7066/100790/21.5%%/diam 7.\n");
  return 0;
}
