// Reproduces Table 3: comparison with unsigned team formation. RarestFirst
// [Lappas et al. 2009] runs on two unsigned versions of the network —
// signs ignored and negative edges deleted — and we report the percentage
// of returned teams that satisfy each compatibility relation.
//
// Paper reference (Epinions, k=5):
//                    SPA  SPM  SPO  SBP  NNE
//   Ignore sign       0%   2%   2%  26%  30%
//   Delete negative   0%   2%  18%  66%  76%
//
// Expected shape: most unsigned teams are incompatible under strict
// relations (0% for SPA); delete-negative dominates ignore-sign.

#include <cstdio>

#include "bench_common.h"
#include "src/exp/experiments.h"
#include "src/util/table.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  // The paper reports Epinions only; run a scaled version by default.
  auto datasets =
      tfsn::bench::LoadDatasets(flags, /*default_scale=*/0.15, "epinions");

  tfsn::Table3Options options;
  options.task_size = static_cast<uint32_t>(flags.GetInt("k", 5));
  options.num_tasks = static_cast<uint32_t>(flags.GetInt("tasks", 50));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  tfsn::bench::PrintHeader("Table 3: Comparison with unsigned team formation");
  for (const tfsn::Dataset& ds : datasets) {
    std::printf("\n--- %s (%u users, %llu edges; k=%u, %u tasks) ---\n",
                ds.name.c_str(), ds.graph.num_nodes(),
                static_cast<unsigned long long>(ds.graph.num_edges()),
                options.task_size, options.num_tasks);
    tfsn::Timer timer;
    auto rows = tfsn::RunTable3(ds, options);
    std::vector<std::string> header{"network"};
    for (tfsn::CompatKind kind : options.kinds) {
      header.push_back(tfsn::CompatKindName(kind));
    }
    header.push_back("#teams");
    tfsn::TextTable table(header);
    for (const auto& row : rows) {
      std::vector<std::string> cells{row.network};
      for (const auto& [kind, pct] : row.compatible_pct) {
        cells.push_back(tfsn::TextTable::Fmt(pct, 0) + "%");
      }
      cells.push_back(std::to_string(row.teams_returned));
      table.AddRow(cells);
    }
    std::fputs(table.ToString().c_str(), stdout);
    if (flags.GetBool("csv")) std::fputs(table.ToCsv().c_str(), stdout);
    std::printf("(%.1fs; paper row: ignore 0/2/2/26/30, delete 0/2/18/66/76;"
                " SBPH stands in for SBP at this scale)\n",
                timer.Seconds());
  }
  return 0;
}
