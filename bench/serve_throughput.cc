// Serving-layer throughput harness: batched scheduler vs the
// one-task-per-view baseline.
//
//   serve_throughput --quick [--json=BENCH_serve_throughput.json]
//   serve_throughput [--scale=0.12] [--workers=2] [--batch-cap=16]
//                    [--requests=400] [--task-size=3] [--zipf=1.0]
//                    [--max-seeds=16] [--min-jaccard=0.05] [--qps=0]
//                    [--seed=1] [--json=...] [--sweep]
//                    [--spill-dir=D] [--prewarm-frac=1.0]
//                    [--deadline-ms=0]
//
// Beyond the batched-vs-unbatched comparison, the harness measures the
// tiered row store (row_cache.h): a "batched_tiered" burst runs the same
// stream on a fresh cache with the same byte budget but compressed rows,
// a disk spill tier (under --spill-dir, or a private temp dir removed on
// exit), and a Zipf prewarm in place of the flat warm pass; a
// "compression" experiment reports the measured dense-vs-encoded ratio
// over the stream's row working set; and --sweep runs a hit-rate-vs-
// budget curve (10/30/100% of the working set × {flat, tiered}).
//
// Both modes serve the *same* deterministic Zipf request stream on the
// Epinions-scale fixture with equal worker counts over one shared,
// budget-constrained row cache brought to its LRU steady state by a warm
// pass (the cache budget is a fraction of the stream's row working set —
// see HarnessConfig::cache_fraction — and the runs execute sequentially
// on that same steady-state cache); the only configuration difference is
// BatchPolicy::max_batch (grouping on vs one view per request). Every
// response is checked bit-identical against the direct GreedyTeamFormer
// path before any number is reported — the speedup never comes from
// changing answers. A final open-loop pass (Poisson arrivals at --qps,
// default 60% of the measured batched throughput) records latency
// percentiles under partial load.
//
// JSON schema: README, "Bench JSON output".

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "src/compat/row_codec.h"
#include "src/compat/row_spill.h"
#include "src/compat/skill_index.h"
#include "src/data/datasets.h"
#include "src/serve/server.h"
#include "src/serve/workload.h"
#include "src/team/greedy.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace tfsn {
namespace {

using serve::ServerMetrics;
using serve::ServerOptions;
using serve::TeamFormationServer;
using serve::TeamRequest;
using serve::WorkloadResult;

struct HarnessConfig {
  double scale = 0.12;
  uint32_t workers = 2;
  uint32_t batch_cap = 16;
  uint32_t requests = 400;
  uint32_t task_size = 3;
  double zipf = 1.0;
  uint32_t max_seeds = 16;
  double min_jaccard = 0.05;
  double qps = 0;  // 0 = auto (60% of measured batched throughput)
  /// Shared row-cache budget as a fraction of the stream's row working
  /// set. At full Epinions scale the working set (~29k rows × ~145 KB)
  /// dwarfs any realistic cache, so the scaled-down fixture must scale
  /// the cache budget down with it to preserve the serving economics —
  /// an unconstrained cache at toy scale would measure nothing but
  /// allocator noise. Override with --cache-mb for an absolute budget.
  double cache_fraction = 0.3;
  size_t cache_mb = 0;  // 0 = use cache_fraction
  uint64_t seed = 1;
  /// Holder fraction PrewarmZipfHead computes for the tiered burst mode.
  double prewarm_frac = 1.0;
  /// Spill-tier directory ("" = private temp dir, removed on exit).
  std::string spill_dir;
  /// Also run the hit-rate-vs-budget sweep (6 extra burst runs).
  bool sweep = false;
  /// SLO budget for the overload experiment, in milliseconds. 0 = auto:
  /// sized so only ~a quarter of the burst fits inside the budget at the
  /// measured batched throughput — overload by construction.
  double deadline_ms = 0;
};

GreedyParams ServeGreedyParams(const HarnessConfig& config) {
  GreedyParams params;
  params.skill_policy = SkillPolicy::kLeastCompatible;
  params.user_policy = UserPolicy::kMinDistance;
  params.max_seeds = config.max_seeds;
  return params;
}

ServerOptions MakeServerOptions(const HarnessConfig& config,
                                uint32_t max_batch) {
  ServerOptions options;
  options.workers = config.workers;
  // Sized for the whole stream: the burst experiment submits every
  // request up front to measure peak service throughput.
  options.queue_capacity = config.requests + 1;
  options.batch.max_batch = max_batch;
  options.batch.min_jaccard = config.min_jaccard;
  options.batch.max_view_bytes = 64ull << 20;
  options.greedy = ServeGreedyParams(config);
  return options;
}

double MsOf(uint64_t us) { return static_cast<double>(us) / 1000.0; }

// "1:3;2:5;16:12" — batch size : batch count, sizes ascending, zero
// counts omitted.
std::string BatchSizeDist(const ServerMetrics& metrics) {
  std::string out;
  for (size_t b = 1; b < metrics.batch_size_counts.size(); ++b) {
    if (metrics.batch_size_counts[b] == 0) continue;
    if (!out.empty()) out += ';';
    out += std::to_string(b) + ":" +
           std::to_string(metrics.batch_size_counts[b]);
  }
  return out;
}

// Bit-identity check against the direct former. Shed (DeadlineExceeded)
// and degraded responses are exempt by contract — degradation may trade
// quality for latency — but every successful full-path response must
// match exactly. `expect_all` additionally requires that every request
// was served successfully (the deadline-free runs).
void VerifyAgainstReference(const std::vector<TeamResult>& reference,
                            const WorkloadResult& run, const char* mode,
                            bool expect_all = true) {
  if (expect_all && run.completed != reference.size()) {
    std::fprintf(stderr, "FATAL: %s served %llu of %zu requests\n", mode,
                 static_cast<unsigned long long>(run.completed),
                 reference.size());
    std::abort();
  }
  for (const serve::TeamResponse& resp : run.responses) {
    if (!resp.status.ok() || resp.degraded) continue;
    const TeamResult& want = reference[resp.id];
    const TeamResult& got = resp.result;
    if (got.found != want.found || got.members != want.members ||
        got.cost != want.cost || got.objective != want.objective) {
      std::fprintf(stderr,
                   "FATAL: %s diverged from the direct former on request "
                   "%llu\n",
                   mode, static_cast<unsigned long long>(resp.id));
      std::abort();
    }
  }
}

void EmitCommon(bench::JsonArrayWriter* json, const Dataset& ds,
                const HarnessConfig& config) {
  json->Field("bench", "serve_throughput");
  json->Field("n", ds.graph.num_nodes());
  json->Field("edges", ds.graph.num_edges());
  json->Field("kind", "SPM");
  json->Field("workers", config.workers);
  json->Field("requests", config.requests);
  json->Field("task_size", config.task_size);
  json->Field("zipf", config.zipf);
  json->Field("max_seeds", config.max_seeds);
}

void EmitCacheShape(bench::JsonArrayWriter* json, size_t working_set_bytes,
                    size_t cache_budget_bytes) {
  json->Field("working_set_mb",
              static_cast<double>(working_set_bytes) / (1 << 20));
  json->Field("cache_budget_mb",
              static_cast<double>(cache_budget_bytes) / (1 << 20));
}

void EmitLatency(bench::JsonArrayWriter* json, const ServerMetrics& metrics) {
  json->Field("p50_ms", MsOf(metrics.total_us.ValueAtQuantile(0.50)));
  json->Field("p95_ms", MsOf(metrics.total_us.ValueAtQuantile(0.95)));
  json->Field("p99_ms", MsOf(metrics.total_us.ValueAtQuantile(0.99)));
  json->Field("mean_ms", metrics.total_us.Mean() / 1000.0);
  json->Field("service_p50_ms", MsOf(metrics.service_us.ValueAtQuantile(0.50)));
  json->Field("queue_p50_ms", MsOf(metrics.queue_us.ValueAtQuantile(0.50)));
}

void EmitBatching(bench::JsonArrayWriter* json, const ServerMetrics& metrics,
                  const RowCache::StatsSnapshot& cache_window) {
  json->Field("batches", metrics.batches);
  json->Field("mean_batch_size", metrics.MeanBatchSize());
  json->Field("shared_view_batches", metrics.shared_view_batches);
  json->Field("fallback_batches", metrics.fallback_batches);
  json->Field("batch_size_dist", BatchSizeDist(metrics));
  json->Field("cache_hit_rate", cache_window.HitRate());
  json->Field("cache_lookups", cache_window.lookups());
  // Tier counters (all zero on a flat cache; see README schema notes).
  json->Field("compressed_mb",
              static_cast<double>(cache_window.compressed_bytes) / (1 << 20));
  json->Field("decodes", cache_window.decodes);
  json->Field("decode_ms", static_cast<double>(cache_window.decode_ns) / 1e6);
  json->Field("spill_reads", cache_window.spill_reads);
  json->Field("spill_writes", cache_window.spill_writes);
}

int Run(const HarnessConfig& config, bench::JsonArrayWriter* json) {
  DatasetOptions ds_options;
  ds_options.scale = config.scale;
  ds_options.seed = 2020;
  Dataset ds = MakeEpinions(ds_options);
  std::printf("fixture: %s n=%u edges=%llu\n", ds.name.c_str(),
              ds.graph.num_nodes(),
              static_cast<unsigned long long>(ds.graph.num_edges()));

  // The skill index is shared by every mode (it only drives the
  // LeastCompatible skill order and is deterministic in its seed).
  auto index_cache = std::make_shared<RowCache>();
  auto index_oracle =
      MakeOracle(ds.graph, CompatKind::kSPM, OracleParams{}, index_cache);
  Rng index_rng(9);
  SkillCompatibilityIndex index(index_oracle.get(), ds.skills, 200, &index_rng);

  serve::WorkloadOptions wl;
  wl.task_size = config.task_size;
  wl.zipf_exponent = config.zipf;
  wl.seed = config.seed;
  wl.num_requests = config.requests;
  const std::vector<TeamRequest> requests = GenerateRequests(ds.skills, wl);

  // The row working set of the stream: every holder of every requested
  // skill (each row costs ~5 bytes per graph node in the cache).
  std::vector<NodeId> touched;
  for (const TeamRequest& req : requests) {
    const std::vector<NodeId> universe =
        HolderUniverse(ds.skills, req.task.skills());
    touched.insert(touched.end(), universe.begin(), universe.end());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  const size_t row_bytes = static_cast<size_t>(ds.graph.num_nodes()) * 5;
  const size_t working_set_bytes = touched.size() * row_bytes;

  // One shared, *budget-constrained* row cache serves every mode (see
  // HarnessConfig::cache_fraction: serving heavy traffic means the row
  // working set does not fit — SPM rows are counting BFS traversals of
  // ~100 µs each, and recomputing them on eviction-driven misses is the
  // dominant steady-state cost). The unbatched baseline prewarms one
  // holder universe per request; the batched scheduler prewarms once per
  // group — that row-production amortization is what this harness
  // measures. A warm pass first brings the LRU to its steady state so
  // neither mode pays one-time cold-start costs inside its window;
  // per-window hit rates come from lock-free snapshot deltas.
  RowCacheOptions cache_options;
  cache_options.max_bytes =
      config.cache_mb > 0
          ? config.cache_mb << 20
          : std::max<size_t>(
                row_bytes * 8,
                static_cast<size_t>(static_cast<double>(working_set_bytes) *
                                    config.cache_fraction));
  auto warm_cache = std::make_shared<RowCache>(cache_options);
  {
    auto oracle =
        MakeOracle(ds.graph, CompatKind::kSPM, OracleParams{}, warm_cache);
    Timer warm_timer;
    oracle->StreamRows(touched, /*threads=*/0,
                       [](size_t, const CompatibilityOracle::Row&) {});
    std::printf(
        "working set %zu rows (%.1f MB), cache budget %.1f MB, "
        "prewarmed in %.2f s\n",
        touched.size(),
        static_cast<double>(working_set_bytes) / (1 << 20),
        static_cast<double>(cache_options.max_bytes) / (1 << 20),
        warm_timer.Seconds());
  }

  // Spill-tier root for the tiered runs: per-run subdirectories so each
  // experiment starts from an empty store. A private temp dir (removed
  // below) keeps the default hermetic; CI passes an explicit --spill-dir.
  std::string spill_root = config.spill_dir;
  bool owns_spill_root = false;
  if (spill_root.empty()) {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "tfsn-serve-spill-XXXXXX")
            .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      std::fprintf(stderr, "FATAL: cannot create a spill temp dir\n");
      return 1;
    }
    spill_root.assign(buf.data());
    owns_spill_root = true;
  }

  // Measured compression over the stream's working set: stream every
  // touched row and compare the dense in-memory footprint against the
  // encoded blob. (Runs on the shared warm cache — in effect a second
  // warm pass, so the LRU steady state the burst runs inherit is
  // unchanged.)
  {
    auto oracle =
        MakeOracle(ds.graph, CompatKind::kSPM, OracleParams{}, warm_cache);
    size_t dense_bytes = 0;
    size_t encoded_bytes = 0;
    oracle->StreamRows(
        touched, /*threads=*/0,
        [&dense_bytes, &encoded_bytes](size_t, const CompatibilityOracle::Row&
                                                   row) {
          dense_bytes += DenseRowBytes(row);
          encoded_bytes += EncodeRow(row).size();
        });
    const double ratio =
        encoded_bytes > 0 ? static_cast<double>(dense_bytes) / encoded_bytes
                          : 0;
    std::printf("compression: dense %.1f MB -> encoded %.1f MB (%.1fx)\n",
                static_cast<double>(dense_bytes) / (1 << 20),
                static_cast<double>(encoded_bytes) / (1 << 20), ratio);
    if (json != nullptr) {
      json->BeginObject();
      json->Field("experiment", "compression");
      EmitCommon(json, ds, config);
      json->Field("rows", touched.size());
      json->Field("dense_mb", static_cast<double>(dense_bytes) / (1 << 20));
      json->Field("encoded_mb",
                  static_cast<double>(encoded_bytes) / (1 << 20));
      json->Field("compression_ratio", ratio);
      json->EndObject();
    }
  }

  // Direct reference pass: every served response must match this bit for
  // bit, whatever the batching.
  std::vector<TeamResult> reference;
  {
    auto oracle =
        MakeOracle(ds.graph, CompatKind::kSPM, OracleParams{}, warm_cache);
    GreedyTeamFormer former(oracle.get(), ds.skills, &index,
                            ServeGreedyParams(config));
    reference.reserve(requests.size());
    for (const TeamRequest& req : requests) {
      Rng rng(req.rng_seed);
      reference.push_back(former.Form(req.task, &rng));
    }
  }

  // Saturated throughput, batched vs one-task-per-view, equal workers,
  // both on the shared steady-state cache (each run inherits the LRU mix
  // the previous pass left — approximately the same stationary state
  // either way, since the stream is identical). The burst submits the
  // whole stream up front, so the admission queue stays deep and the
  // scheduler sees its full grouping window — peak service rate, no
  // client-thread scheduling noise.
  // The third mode is the tiered row store at the *same* byte budget:
  // compressed tier 0 (so the budget holds ~5-10x more rows), disk spill
  // for the overflow, and a Zipf-aware prewarm in place of the flat warm
  // pass. Bit-identity against the direct former is still enforced — the
  // tiers only change where a row's bytes live.
  double throughput[3] = {0, 0, 0};
  double hit_rate[3] = {0, 0, 0};
  const char* mode_names[3] = {"one_task_per_view", "batched",
                               "batched_tiered"};
  for (int mode = 0; mode < 3; ++mode) {
    const uint32_t max_batch = mode == 0 ? 1 : config.batch_cap;
    std::shared_ptr<RowCache> cache = warm_cache;
    serve::PrewarmReport prewarm;
    if (mode == 2) {
      RowCacheOptions tiered_options = cache_options;
      tiered_options.compress = true;
      tiered_options.spill =
          std::make_shared<RowSpillStore>(spill_root + "/burst");
      cache = std::make_shared<RowCache>(tiered_options);
      auto oracle =
          MakeOracle(ds.graph, CompatKind::kSPM, OracleParams{}, cache);
      serve::PrewarmOptions pw;
      pw.fraction = config.prewarm_frac;
      pw.zipf_exponent = config.zipf;
      pw.threads = 0;
      prewarm = serve::PrewarmZipfHead(oracle.get(), ds.skills, pw);
      std::printf("tiered prewarm: %llu/%llu holders in %.2f s\n",
                  static_cast<unsigned long long>(prewarm.rows_prewarmed),
                  static_cast<unsigned long long>(prewarm.holders_ranked),
                  prewarm.seconds);
    }
    const RowCache::StatsSnapshot before = cache->SnapshotCounters();
    TeamFormationServer server(ds.graph, ds.skills, &index, CompatKind::kSPM,
                               cache, MakeServerOptions(config, max_batch));
    WorkloadResult run = RunBurst(&server, requests);
    server.Shutdown();
    const ServerMetrics metrics = server.Metrics();
    const RowCache::StatsSnapshot cache_window = metrics.cache - before;
    VerifyAgainstReference(reference, run, mode_names[mode]);
    throughput[mode] =
        run.seconds > 0 ? static_cast<double>(run.completed) / run.seconds : 0;
    hit_rate[mode] = cache_window.HitRate();
    std::printf(
        "%-18s %6.1f req/s  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  "
        "batches %llu (mean size %.2f)  cache hit %.1f%%\n",
        mode_names[mode], throughput[mode],
        MsOf(metrics.total_us.ValueAtQuantile(0.50)),
        MsOf(metrics.total_us.ValueAtQuantile(0.95)),
        MsOf(metrics.total_us.ValueAtQuantile(0.99)),
        static_cast<unsigned long long>(metrics.batches),
        metrics.MeanBatchSize(), cache_window.HitRate() * 100.0);
    if (mode == 2) {
      std::printf(
          "                   compressed %.2f MB resident, %llu spill reads, "
          "%llu writes, %llu decodes (%.1f ms)\n",
          static_cast<double>(cache_window.compressed_bytes) / (1 << 20),
          static_cast<unsigned long long>(cache_window.spill_reads),
          static_cast<unsigned long long>(cache_window.spill_writes),
          static_cast<unsigned long long>(cache_window.decodes),
          static_cast<double>(cache_window.decode_ns) / 1e6);
    }
    if (json != nullptr) {
      json->BeginObject();
      json->Field("experiment", "burst");
      json->Field("mode", mode_names[mode]);
      EmitCommon(json, ds, config);
      json->Field("batch_cap", max_batch);
      json->Field("min_jaccard", config.min_jaccard);
      json->Field("tiered", mode == 2);
      EmitCacheShape(json, working_set_bytes, cache_options.max_bytes);
      json->Field("seconds", run.seconds);
      json->Field("throughput_rps", throughput[mode]);
      EmitLatency(json, metrics);
      EmitBatching(json, metrics, cache_window);
      if (mode == 2) {
        json->Field("prewarm_frac", config.prewarm_frac);
        json->Field("prewarm_rows", prewarm.rows_prewarmed);
        json->Field("prewarm_seconds", prewarm.seconds);
      }
      json->Field("identical", true);
      json->EndObject();
    }
  }

  const double speedup =
      throughput[0] > 0 ? throughput[1] / throughput[0] : 0;
  std::printf("batched vs one-task-per-view speedup: %.2fx\n", speedup);
  if (json != nullptr) {
    json->BeginObject();
    json->Field("experiment", "batched_speedup");
    EmitCommon(json, ds, config);
    json->Field("batch_cap", config.batch_cap);
    json->Field("baseline_rps", throughput[0]);
    json->Field("batched_rps", throughput[1]);
    json->Field("speedup", speedup);
    json->EndObject();
  }

  const double tiered_speedup =
      throughput[1] > 0 ? throughput[2] / throughput[1] : 0;
  std::printf(
      "tiered vs flat batched speedup: %.2fx (hit rate %.1f%% -> %.1f%%)\n",
      tiered_speedup, hit_rate[1] * 100.0, hit_rate[2] * 100.0);
  if (json != nullptr) {
    json->BeginObject();
    json->Field("experiment", "tiered_speedup");
    EmitCommon(json, ds, config);
    EmitCacheShape(json, working_set_bytes, cache_options.max_bytes);
    json->Field("flat_rps", throughput[1]);
    json->Field("tiered_rps", throughput[2]);
    json->Field("speedup", tiered_speedup);
    json->Field("flat_hit_rate", hit_rate[1]);
    json->Field("tiered_hit_rate", hit_rate[2]);
    json->EndObject();
  }

  // Open-loop latency under partial load (batched mode): Poisson arrivals
  // below saturation, so the percentiles reflect queueing + service
  // rather than closed-loop pushback.
  const double qps =
      config.qps > 0 ? config.qps : std::max(1.0, throughput[1] * 0.6);
  {
    const RowCache::StatsSnapshot before = warm_cache->SnapshotCounters();
    TeamFormationServer server(ds.graph, ds.skills, &index, CompatKind::kSPM,
                               warm_cache,
                               MakeServerOptions(config, config.batch_cap));
    Rng arrivals(config.seed + 1);
    WorkloadResult run = RunOpenLoop(&server, requests, qps, &arrivals);
    server.Shutdown();
    const ServerMetrics metrics = server.Metrics();
    const RowCache::StatsSnapshot cache_window = metrics.cache - before;
    std::printf(
        "open loop @ %.1f req/s: %llu served, %llu dropped, p50 %.2f ms  "
        "p95 %.2f ms  p99 %.2f ms\n",
        qps, static_cast<unsigned long long>(run.completed),
        static_cast<unsigned long long>(run.dropped),
        MsOf(metrics.total_us.ValueAtQuantile(0.50)),
        MsOf(metrics.total_us.ValueAtQuantile(0.95)),
        MsOf(metrics.total_us.ValueAtQuantile(0.99)));
    if (json != nullptr) {
      json->BeginObject();
      json->Field("experiment", "open_loop");
      json->Field("mode", "batched");
      EmitCommon(json, ds, config);
      json->Field("batch_cap", config.batch_cap);
      json->Field("qps_target", qps);
      json->Field("submitted", run.submitted);
      json->Field("dropped", run.dropped);
      json->Field("rejected", run.rejected);
      json->Field("completed", run.completed);
      json->Field("shed", run.shed);
      json->Field("degraded", run.degraded);
      json->Field("seconds", run.seconds);
      EmitLatency(json, metrics);
      EmitBatching(json, metrics, cache_window);
      json->EndObject();
    }
  }

  // Overload under a deadline SLO: the whole stream lands at once —
  // far more work than the budget can absorb — with per-request deadlines
  // and queue-tier shedding on. The server's job is to keep the accepted
  // requests inside the budget (EDF + expiry shed + degradation ladder)
  // while the excess is shed with a typed DeadlineExceeded instead of
  // silently queueing toward timeout. The regression contract recorded in
  // the JSON: p99 total latency of *accepted* requests within the budget,
  // nonzero shed, and bit-identity for every successful full-path answer.
  {
    // Auto budget: bracket the overload transition. A budget the
    // degradation ladder absorbs entirely (nothing shed) is too loose and
    // halves; one that sheds the entire burst (nothing accepted) is too
    // tight and bisects back toward the last too-loose bound. The
    // recorded experiment is the first run where accepted and shed
    // traffic coexist — a server genuinely at its SLO boundary. An
    // explicit --deadline-ms pins the budget and runs exactly once.
    double budget_ms =
        config.deadline_ms > 0
            ? config.deadline_ms
            : std::max(5.0, 1000.0 * static_cast<double>(config.requests) /
                                (4.0 * std::max(1.0, throughput[1])));
    double loose_ms = 0;  // known-too-loose upper bound (0 = none yet)
    WorkloadResult run;
    ServerMetrics metrics;
    RowCache::StatsSnapshot cache_window;
    for (int attempt = 0;; ++attempt) {
      std::vector<TeamRequest> deadlined = requests;
      for (TeamRequest& req : deadlined) {
        req.deadline_us = static_cast<uint64_t>(budget_ms * 1000.0);
      }
      ServerOptions options = MakeServerOptions(config, config.batch_cap);
      options.deadline.shed = serve::ShedMode::kQueue;
      options.deadline.degrade = true;
      // 2% SLO headroom: estimates are EWMAs, and an EDF queue serves the
      // tail just-in-time, so zero slack parks p99 exactly on the budget
      // boundary (see DeadlinePolicy::slack_us).
      options.deadline.slack_us =
          static_cast<uint64_t>(budget_ms * 1000.0 / 50.0);
      const RowCache::StatsSnapshot before = warm_cache->SnapshotCounters();
      TeamFormationServer server(ds.graph, ds.skills, &index, CompatKind::kSPM,
                                 warm_cache, options);
      run = RunBurst(&server, std::move(deadlined));
      server.Shutdown();
      metrics = server.Metrics();
      cache_window = metrics.cache - before;
      const bool overloaded = run.shed + run.rejected > 0;
      const bool alive = run.completed > 0;
      if ((overloaded && alive) || config.deadline_ms > 0 || attempt >= 9) {
        break;
      }
      if (!overloaded) {
        std::printf(
            "overload @ %.1f ms budget absorbed the whole burst; "
            "tightening\n",
            budget_ms);
        loose_ms = budget_ms;
        budget_ms /= 2;
      } else {
        std::printf(
            "overload @ %.1f ms budget shed the whole burst; loosening\n",
            budget_ms);
        budget_ms =
            loose_ms > 0 ? (budget_ms + loose_ms) / 2 : budget_ms * 1.5;
      }
    }
    VerifyAgainstReference(reference, run, "overload_deadline",
                           /*expect_all=*/false);
    // Exact accepted-tail percentile from the raw responses: the metrics
    // histogram is log-bucketed (~6% quantization), too coarse to judge
    // "within budget" at the boundary.
    std::vector<uint64_t> accepted_total;
    for (const serve::TeamResponse& resp : run.responses) {
      if (resp.status.ok()) accepted_total.push_back(resp.total_us);
    }
    std::sort(accepted_total.begin(), accepted_total.end());
    const double accepted_p99_ms =
        accepted_total.empty()
            ? 0
            : MsOf(accepted_total[std::min(accepted_total.size() - 1,
                                           (accepted_total.size() * 99) /
                                               100)]);
    std::printf(
        "overload @ %.1f ms budget: %llu accepted (%llu degraded), "
        "%llu shed, %llu rejected, accepted p99 %.2f ms (%s budget)\n",
        budget_ms, static_cast<unsigned long long>(run.completed),
        static_cast<unsigned long long>(run.degraded),
        static_cast<unsigned long long>(run.shed),
        static_cast<unsigned long long>(run.rejected), accepted_p99_ms,
        accepted_p99_ms <= budget_ms ? "within" : "OVER");
    if (json != nullptr) {
      json->BeginObject();
      json->Field("experiment", "overload_deadline");
      json->Field("mode", "batched");
      EmitCommon(json, ds, config);
      json->Field("batch_cap", config.batch_cap);
      json->Field("deadline_ms", budget_ms);
      json->Field("shed_mode", "queue");
      json->Field("submitted", run.submitted);
      json->Field("completed", run.completed);
      json->Field("shed", run.shed);
      json->Field("degraded", run.degraded);
      json->Field("rejected", run.rejected);
      json->Field("dropped", run.dropped);
      json->Field("seconds", run.seconds);
      json->Field("accepted_p99_ms", accepted_p99_ms);
      json->Field("p99_within_budget", accepted_p99_ms <= budget_ms);
      EmitLatency(json, metrics);
      EmitBatching(json, metrics, cache_window);
      json->Field("identical", true);
      json->EndObject();
    }
  }

  // Hit-rate-vs-budget curve: the same batched burst at 10/30/100% of the
  // working set, flat vs tiered, each on a fresh cache warmed by one pass
  // over the touched rows (the tiered variants also start from an empty
  // spill store). This is the curve that shows *why* compression moves
  // the throughput needle: at a given budget the tiered cache simply
  // holds more of the working set.
  if (config.sweep) {
    const double budget_fracs[3] = {0.1, 0.3, 1.0};
    for (int tiered = 0; tiered < 2; ++tiered) {
      for (double frac : budget_fracs) {
        RowCacheOptions sweep_options;
        sweep_options.max_bytes = std::max<size_t>(
            row_bytes * 8,
            static_cast<size_t>(static_cast<double>(working_set_bytes) *
                                frac));
        if (tiered == 1) {
          sweep_options.compress = true;
          sweep_options.spill = std::make_shared<RowSpillStore>(
              spill_root + "/sweep-" +
              std::to_string(static_cast<int>(frac * 100)));
        }
        auto cache = std::make_shared<RowCache>(sweep_options);
        {
          auto oracle =
              MakeOracle(ds.graph, CompatKind::kSPM, OracleParams{}, cache);
          oracle->StreamRows(touched, /*threads=*/0,
                             [](size_t, const CompatibilityOracle::Row&) {});
        }
        const RowCache::StatsSnapshot before = cache->SnapshotCounters();
        TeamFormationServer server(ds.graph, ds.skills, &index,
                                   CompatKind::kSPM, cache,
                                   MakeServerOptions(config, config.batch_cap));
        WorkloadResult run = RunBurst(&server, requests);
        server.Shutdown();
        const ServerMetrics metrics = server.Metrics();
        const RowCache::StatsSnapshot cache_window = metrics.cache - before;
        VerifyAgainstReference(reference, run,
                               tiered == 1 ? "sweep_tiered" : "sweep_flat");
        const double rps =
            run.seconds > 0 ? static_cast<double>(run.completed) / run.seconds
                            : 0;
        std::printf(
            "sweep %-6s budget %3.0f%%: %6.1f req/s  cache hit %.1f%%\n",
            tiered == 1 ? "tiered" : "flat", frac * 100.0, rps,
            cache_window.HitRate() * 100.0);
        if (json != nullptr) {
          json->BeginObject();
          json->Field("experiment", "budget_sweep");
          json->Field("mode", "batched");
          EmitCommon(json, ds, config);
          json->Field("tiered", tiered == 1);
          json->Field("budget_frac", frac);
          EmitCacheShape(json, working_set_bytes, sweep_options.max_bytes);
          json->Field("seconds", run.seconds);
          json->Field("throughput_rps", rps);
          EmitBatching(json, metrics, cache_window);
          json->Field("identical", true);
          json->EndObject();
        }
      }
    }
  }

  if (owns_spill_root) {
    std::error_code ec;
    std::filesystem::remove_all(spill_root, ec);
  }
  return 0;
}

}  // namespace
}  // namespace tfsn

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  const bool quick = flags.GetBool("quick");
  tfsn::HarnessConfig config;
  config.scale = flags.GetDouble("scale", quick ? 0.08 : 0.12);
  config.workers = static_cast<uint32_t>(flags.GetInt("workers", 2));
  config.batch_cap = static_cast<uint32_t>(flags.GetInt("batch_cap", 16));
  config.requests =
      static_cast<uint32_t>(flags.GetInt("requests", quick ? 150 : 400));
  config.task_size = static_cast<uint32_t>(flags.GetInt("task_size", 3));
  config.zipf = flags.GetDouble("zipf", 1.0);
  config.max_seeds = static_cast<uint32_t>(flags.GetInt("max_seeds", 16));
  config.min_jaccard = flags.GetDouble("min_jaccard", 0.05);
  config.qps = flags.GetDouble("qps", 0);
  config.cache_fraction = flags.GetDouble("cache_frac", 0.3);
  config.cache_mb = static_cast<size_t>(flags.GetInt("cache_mb", 0));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.prewarm_frac = flags.GetDouble("prewarm_frac", 1.0);
  config.spill_dir = flags.GetString("spill_dir");
  config.sweep = flags.GetBool("sweep");
  config.deadline_ms = flags.GetDouble("deadline_ms", 0);

  const std::string json_path = flags.GetString("json");
  tfsn::bench::JsonArrayWriter json;
  const int rc =
      tfsn::Run(config, json_path.empty() ? nullptr : &json);
  if (rc == 0 && !json_path.empty() && !json.WriteFile(json_path)) return 1;
  return rc;
}
