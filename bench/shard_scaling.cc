// Sharded-formation scaling harness: coordinator traffic, data-plane
// traffic, and wall-clock vs shard count.
//
//   shard_scaling --quick [--json=BENCH_shard_scaling.json]
//   shard_scaling [--nodes=1500,6000] [--shards=1,2,4,8]
//                 [--strategies=hash,range] [--tasks=20] [--task-size=4]
//                 [--num-skills=20] [--seed=1] [--json=...]
//
// For every graph size the harness first runs the single-node
// GreedyTeamFormer over a fixed task stream and digests every result
// (FNV-1a over found/members/cost/objective/seeds). Each (shards,
// strategy) configuration then replays the identical stream through
// DistributedFormer and must reproduce the digest bit for bit — the run
// aborts with exit 1 on any mismatch, so a scaling number can never come
// from a diverging answer.
//
// The harness also enforces the protocol's central scaling claim: the
// per-step *control-plane* traffic (everything through the coordinator —
// broadcasts, per-shard bests, cost gathers) is O(shards * team_size) and
// independent of the universe size n. Growing n by 4x must leave
// control bytes/step flat (ratio bound below); only the worker-to-worker
// row-slice data plane may grow with n. Violation exits 1.
//
// JSON schema: README, "Bench JSON output".

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "src/dist/distributed_former.h"
#include "src/gen/generators.h"
#include "src/skills/skill_generator.h"
#include "src/team/greedy.h"
#include "src/util/fnv1a.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace tfsn {
namespace {

struct Config {
  std::vector<uint32_t> nodes;
  std::vector<uint32_t> shards;
  std::vector<ShardStrategy> strategies;
  uint32_t tasks = 20;
  uint32_t task_size = 4;
  uint32_t num_skills = 20;
  uint64_t seed = 1;
  std::string json;
};

struct Instance {
  SignedGraph graph;
  SkillAssignment skills;
};

Instance MakeInstance(uint32_t n, uint32_t num_skills, uint64_t seed) {
  Rng rng(seed);
  Instance inst{RandomConnectedGnm(n, uint64_t{n} * 3, 0.2, &rng), {}};
  ZipfSkillParams sp;
  sp.num_skills = num_skills;
  inst.skills = ZipfSkills(n, sp, &rng);
  return inst;
}

GreedyParams BenchParams() {
  // kRarest needs no index and kMinDistance needs no rank-resolution
  // rounds, so every measured byte is the core per-step protocol.
  GreedyParams params;
  params.skill_policy = SkillPolicy::kRarest;
  params.user_policy = UserPolicy::kMinDistance;
  return params;
}

void MixResult(Fnv1a* digest, const TeamResult& r) {
  digest->Mix(r.found ? 1 : 0);
  digest->Mix(r.cost);
  digest->Mix(r.objective);
  digest->Mix(r.seeds_tried);
  digest->Mix(r.seeds_succeeded);
  for (NodeId m : r.members) digest->Mix(m);
}

std::string HexDigest(uint64_t digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
  return buf;
}

std::vector<uint32_t> ParseU32List(const std::string& csv,
                                   const std::vector<uint32_t>& fallback) {
  std::vector<uint32_t> out;
  for (const std::string& tok : bench::SplitCsv(csv)) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v == 0 || v > 10'000'000) {
      std::fprintf(stderr, "ignoring bad list entry '%s'\n", tok.c_str());
      continue;
    }
    out.push_back(static_cast<uint32_t>(v));
  }
  return out.empty() ? fallback : out;
}

int Run(const Config& config) {
  bench::JsonArrayWriter json;
  bool scaling_ok = true;

  // control bytes/step keyed by (strategy, shards), across graph sizes in
  // --nodes order; the flatness assertion compares first vs last.
  std::map<std::pair<std::string, uint32_t>, std::vector<double>> per_step;

  for (const uint32_t n : config.nodes) {
    bench::PrintHeader("shard scaling, n=" + std::to_string(n));
    Instance inst = MakeInstance(n, config.num_skills, config.seed);

    Rng task_rng(config.seed + 17);
    std::vector<Task> tasks;
    tasks.reserve(config.tasks);
    for (uint32_t t = 0; t < config.tasks; ++t) {
      tasks.push_back(RandomTask(inst.skills, config.task_size, &task_rng));
    }

    // Single-node reference digest.
    auto oracle = MakeOracle(inst.graph, CompatKind::kSPM);
    GreedyTeamFormer reference(oracle.get(), inst.skills, nullptr,
                               BenchParams());
    Fnv1a want;
    Timer single_timer;
    for (size_t t = 0; t < tasks.size(); ++t) {
      Rng rng(config.seed + 1000 + t);
      MixResult(&want, reference.Form(tasks[t], &rng));
    }
    const double single_wall = single_timer.Seconds();
    std::printf("  single-node: %.3fs, digest %s\n", single_wall,
                HexDigest(want.digest()).c_str());

    for (const ShardStrategy strategy : config.strategies) {
      for (const uint32_t shards : config.shards) {
        DistOptions options;
        options.num_shards = shards;
        options.strategy = strategy;
        options.oracle_factory = OracleFactoryFor(CompatKind::kSPM);
        DistributedFormer dist(inst.graph, inst.skills, nullptr,
                               BenchParams(), options);

        Fnv1a got;
        uint64_t steps = 0, rounds = 0;
        CommStats comm;
        Timer timer;
        for (size_t t = 0; t < tasks.size(); ++t) {
          Rng rng(config.seed + 1000 + t);
          FormCommStats form_comm;
          const Result<TeamResult> r = dist.Form(tasks[t], &rng, &form_comm);
          if (!r.ok()) {
            std::fprintf(stderr, "dist.Form failed: %s\n",
                         r.status().ToString().c_str());
            return 1;
          }
          MixResult(&got, *r);
          steps += form_comm.steps;
          rounds += form_comm.rounds;
        }
        const double wall = timer.Seconds();
        comm = dist.comm_stats();

        if (got.digest() != want.digest()) {
          std::fprintf(stderr,
                       "DIGEST MISMATCH: n=%u shards=%u strategy=%s: "
                       "%s != %s\n",
                       n, shards, ShardStrategyName(strategy),
                       HexDigest(got.digest()).c_str(),
                       HexDigest(want.digest()).c_str());
          return 1;
        }

        const double control_per_step =
            steps == 0 ? 0.0
                       : static_cast<double>(comm.control_bytes) /
                             static_cast<double>(steps);
        per_step[{ShardStrategyName(strategy), shards}].push_back(
            control_per_step);

        std::printf(
            "  %-5s S=%u: %.3fs  comm: %" PRIu64 " msgs, %" PRIu64
            " ctrl B (%.1f B/step), %" PRIu64 " data B, %" PRIu64
            " steps, %" PRIu64 " rounds\n",
            ShardStrategyName(strategy), shards, wall, comm.messages_sent,
            comm.control_bytes, control_per_step, comm.data_bytes, steps,
            rounds);

        json.BeginObject();
        json.Field("bench", "shard_scaling");
        json.Field("strategy", ShardStrategyName(strategy));
        json.Field("n", n);
        json.Field("shards", shards);
        json.Field("tasks", static_cast<uint64_t>(tasks.size()));
        json.Field("steps", steps);
        json.Field("rounds", rounds);
        json.Field("messages", comm.messages_sent);
        json.Field("control_bytes", comm.control_bytes);
        json.Field("control_bytes_per_step", control_per_step);
        json.Field("data_bytes", comm.data_bytes);
        json.Field("wall_s", wall);
        json.Field("single_node_wall_s", single_wall);
        json.Field("digest", HexDigest(got.digest()));
        json.EndObject();
      }
    }
  }

  // The scaling assertion: per-step coordinator traffic must not grow
  // with n. The stream and protocol are deterministic, so the only
  // variation between sizes is team composition; 1.75x headroom is far
  // below the ~(n_max / n_min)x a universe-sized control plane would show.
  if (config.nodes.size() >= 2) {
    for (const auto& [key, series] : per_step) {
      const double smallest = series.front();
      const double largest = series.back();
      if (smallest > 0 && largest > smallest * 1.75) {
        std::fprintf(stderr,
                     "CONTROL TRAFFIC SCALES WITH n: strategy=%s shards=%u: "
                     "%.1f -> %.1f bytes/step\n",
                     key.first.c_str(), key.second, smallest, largest);
        scaling_ok = false;
      }
    }
  }

  if (!config.json.empty() && !json.WriteFile(config.json)) return 1;
  if (!scaling_ok) return 1;
  std::printf("\nall digests identical; control traffic flat in n\n");
  return 0;
}

}  // namespace
}  // namespace tfsn

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  tfsn::Config config;
  const bool quick = flags.GetBool("quick");
  config.nodes = tfsn::ParseU32List(flags.GetString("nodes"),
                                    quick ? std::vector<uint32_t>{300, 1200}
                                          : std::vector<uint32_t>{1500, 6000});
  config.shards = tfsn::ParseU32List(flags.GetString("shards"),
                                     quick ? std::vector<uint32_t>{1, 2, 4}
                                           : std::vector<uint32_t>{1, 2, 4, 8});
  config.strategies.clear();
  for (const std::string& name : tfsn::bench::SplitCsv(
           flags.GetString("strategies", "hash,range"))) {
    tfsn::ShardStrategy strategy;
    if (tfsn::ParseShardStrategy(name, &strategy)) {
      config.strategies.push_back(strategy);
    } else {
      std::fprintf(stderr, "unknown strategy '%s'\n", name.c_str());
      return 2;
    }
  }
  config.tasks = static_cast<uint32_t>(flags.GetInt("tasks", quick ? 6 : 20));
  config.task_size = static_cast<uint32_t>(flags.GetInt("task-size", 4));
  config.num_skills =
      static_cast<uint32_t>(flags.GetInt("num-skills", 20));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.json = flags.GetString("json");
  return tfsn::Run(config);
}
