// Reproduces Figure 2(c) and 2(d): LCMD success rate and average team
// diameter as the task size k grows (paper: k in 2..20 on Epinions).
//
// Expected shape: solved% falls with k — steeply for strict relations,
// roughly flat for NNE and SBPH; diameter grows with k.

#include <cstdio>

#include "bench_common.h"
#include "src/exp/experiments.h"
#include "src/util/table.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  auto datasets =
      tfsn::bench::LoadDatasets(flags, /*default_scale=*/0.12, "epinions");

  tfsn::TeamExperimentOptions options;
  options.num_tasks = static_cast<uint32_t>(flags.GetInt("tasks", 50));
  options.max_seeds = static_cast<uint32_t>(flags.GetInt("max_seeds", 10));
  options.index_sample_sources =
      static_cast<uint32_t>(flags.GetInt("index_sources", 200));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  // Row-production and seed-loop workers (results are thread-count
  // independent either way).
  options.threads = static_cast<uint32_t>(flags.GetInt("threads", 1));
  options.seed_threads =
      static_cast<uint32_t>(flags.GetInt("seed-threads", 1));

  std::vector<uint32_t> task_sizes;
  for (const std::string& k :
       tfsn::bench::SplitCsv(flags.GetString("sizes", "2,5,10,15,20"))) {
    task_sizes.push_back(static_cast<uint32_t>(std::stoul(k)));
  }

  tfsn::bench::PrintHeader("Figure 2(c)/(d): LCMD across task sizes");
  for (const tfsn::Dataset& ds : datasets) {
    std::printf("\n--- %s (%u users, %llu edges; %u tasks per size) ---\n",
                ds.name.c_str(), ds.graph.num_nodes(),
                static_cast<unsigned long long>(ds.graph.num_edges()),
                options.num_tasks);
    tfsn::Timer timer;
    auto points = tfsn::RunFig2cd(ds, task_sizes, options);

    std::vector<std::string> header{"compat"};
    for (uint32_t k : task_sizes) header.push_back("k=" + std::to_string(k));
    tfsn::TextTable solved(header);
    tfsn::TextTable diameter(header);
    for (tfsn::CompatKind kind : options.kinds) {
      std::vector<std::string> s{tfsn::CompatKindName(kind)};
      std::vector<std::string> d{tfsn::CompatKindName(kind)};
      for (uint32_t k : task_sizes) {
        for (const auto& p : points) {
          if (p.kind == kind && p.task_size == k) {
            s.push_back(tfsn::TextTable::Fmt(p.solved_pct, 0) + "%");
            d.push_back(tfsn::TextTable::Fmt(p.avg_diameter, 2));
          }
        }
      }
      solved.AddRow(s);
      diameter.AddRow(d);
    }
    std::printf("(c) solutions found vs task size\n%s",
                solved.ToString().c_str());
    std::printf("(d) average team diameter vs task size\n%s",
                diameter.ToString().c_str());
    if (flags.GetBool("csv")) {
      std::fputs(solved.ToCsv().c_str(), stdout);
      std::fputs(diameter.ToCsv().c_str(), stdout);
    }
    std::printf("(%.1fs)\n", timer.Seconds());
  }
  return 0;
}
