// Ablation studies for the design choices called out in DESIGN.md:
//   A1. skill policy (rarest vs least-compatible) x user policy grid —
//       extends the paper's "the two best algorithms select the least
//       compatible skill" claim with the full 2x3 grid;
//   A2. seed-cap sweep — how many seed users Algorithm 2 needs before
//       success saturates;
//   A3. SBPH depth cap — how path-length bounding trades compatibility
//       recall for runtime;
//   A4. greedy vs exact optimality gap on small instances.

#include <cstdio>

#include "bench_common.h"
#include "src/compat/skill_index.h"
#include "src/compat/stats.h"
#include "src/exp/experiments.h"
#include "src/gen/generators.h"
#include "src/skills/skill_generator.h"
#include "src/team/cost.h"
#include "src/team/exact.h"
#include "src/team/greedy.h"
#include "src/team/refine.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace tfsn {
namespace {

struct Accumulator {
  uint32_t solved = 0;
  uint32_t total = 0;
  double diameter_sum = 0;
  void Record(bool found, uint32_t cost) {
    ++total;
    if (found) {
      ++solved;
      if (cost != kUnreachable) diameter_sum += cost;
    }
  }
  double pct() const { return total ? 100.0 * solved / total : 0; }
  double avg_diameter() const { return solved ? diameter_sum / solved : 0; }
};

void PolicyGrid(const Dataset& ds, CompatKind kind, uint32_t num_tasks,
                uint64_t seed) {
  std::printf("\n[A1] policy grid on %s under %s (k=5, %u tasks)\n",
              ds.name.c_str(), CompatKindName(kind), num_tasks);
  auto oracle = MakeOracle(ds.graph, kind);
  Rng index_rng(seed);
  SkillCompatibilityIndex index(oracle.get(), ds.skills, 200, &index_rng);
  Rng task_rng(seed + 1);
  auto tasks = RandomTasks(ds.skills, 5, num_tasks, &task_rng);

  TextTable table({"skill policy", "user policy", "solved %", "avg diam"});
  for (SkillPolicy sp : {SkillPolicy::kRarest, SkillPolicy::kLeastCompatible}) {
    for (UserPolicy up : {UserPolicy::kMinDistance, UserPolicy::kMostCompatible,
                          UserPolicy::kRandom}) {
      GreedyParams params;
      params.skill_policy = sp;
      params.user_policy = up;
      params.max_seeds = 10;
      GreedyTeamFormer former(oracle.get(), ds.skills, &index, params);
      Accumulator acc;
      Rng rng(seed + 2);
      for (const Task& task : tasks) {
        TeamResult r = former.Form(task, &rng);
        acc.Record(r.found, r.cost);
      }
      table.AddRow({SkillPolicyName(sp), UserPolicyName(up),
                    TextTable::Fmt(acc.pct(), 0),
                    TextTable::Fmt(acc.avg_diameter(), 2)});
    }
  }
  std::fputs(table.ToString().c_str(), stdout);
}

void SeedCapSweep(const Dataset& ds, CompatKind kind, uint32_t num_tasks,
                  uint64_t seed) {
  std::printf("\n[A2] seed-cap sweep on %s under %s (LCMD, k=5)\n",
              ds.name.c_str(), CompatKindName(kind));
  auto oracle = MakeOracle(ds.graph, kind);
  Rng index_rng(seed);
  SkillCompatibilityIndex index(oracle.get(), ds.skills, 200, &index_rng);
  Rng task_rng(seed + 1);
  auto tasks = RandomTasks(ds.skills, 5, num_tasks, &task_rng);

  TextTable table({"max seeds", "solved %", "avg diam", "seconds"});
  for (uint32_t cap : {1u, 2u, 5u, 10u, 25u}) {
    GreedyParams params;
    params.skill_policy = SkillPolicy::kLeastCompatible;
    params.user_policy = UserPolicy::kMinDistance;
    params.max_seeds = cap;
    GreedyTeamFormer former(oracle.get(), ds.skills, &index, params);
    Accumulator acc;
    Rng rng(seed + 2);
    Timer timer;
    for (const Task& task : tasks) {
      TeamResult r = former.Form(task, &rng);
      acc.Record(r.found, r.cost);
    }
    table.AddRow({std::to_string(cap), TextTable::Fmt(acc.pct(), 0),
                  TextTable::Fmt(acc.avg_diameter(), 2),
                  TextTable::Fmt(timer.Seconds(), 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);
}

void SbphDepthSweep(const Dataset& ds, uint64_t seed) {
  std::printf("\n[A3] SBPH depth cap on %s: compatible pairs found\n",
              ds.name.c_str());
  TextTable table({"depth cap", "comp. users %", "avg distance", "seconds"});
  for (uint32_t depth : {2u, 4u, 6u, 8u, 1000u}) {
    OracleParams params;
    params.sbph_max_depth = depth;
    auto oracle = MakeOracle(ds.graph, CompatKind::kSBPH, params);
    Rng rng(seed);
    Timer timer;
    CompatPairStats stats = ComputeCompatPairStats(oracle.get(), 150, &rng);
    table.AddRow({depth >= 1000 ? std::string("inf") : std::to_string(depth),
                  TextTable::Fmt(stats.compatible_fraction * 100.0, 2),
                  TextTable::Fmt(stats.avg_distance, 2),
                  TextTable::Fmt(timer.Seconds(), 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);
}

void RefinementAblation(const Dataset& ds, CompatKind kind,
                        uint32_t num_tasks, uint64_t seed) {
  std::printf(
      "\n[A5] team refinement on %s under %s (k=5, sum-of-pairs cost)\n",
      ds.name.c_str(), CompatKindName(kind));
  auto oracle = MakeOracle(ds.graph, kind);
  Rng index_rng(seed);
  SkillCompatibilityIndex index(oracle.get(), ds.skills, 200, &index_rng);
  Rng task_rng(seed + 1);
  auto tasks = RandomTasks(ds.skills, 5, num_tasks, &task_rng);

  TextTable table({"base algorithm", "teams", "cost before", "cost after",
                   "removals", "swaps"});
  for (UserPolicy up : {UserPolicy::kMinDistance, UserPolicy::kRandom}) {
    GreedyParams params;
    params.skill_policy = SkillPolicy::kLeastCompatible;
    params.user_policy = up;
    params.max_seeds = 10;
    params.cost_kind = CostKind::kSumOfPairs;
    GreedyTeamFormer former(oracle.get(), ds.skills, &index, params);
    RefineOptions refine;
    refine.cost_kind = CostKind::kSumOfPairs;
    Rng rng(seed + 2);
    double before = 0, after = 0;
    uint32_t solved = 0, removed = 0, swapped = 0;
    for (const Task& task : tasks) {
      TeamResult team = former.Form(task, &rng);
      if (!team.found) continue;
      ++solved;
      RefinementResult refined =
          RefineTeam(oracle.get(), ds.skills, task, team.members, refine);
      before += static_cast<double>(refined.cost_before);
      after += static_cast<double>(refined.cost_after);
      removed += refined.members_removed;
      swapped += refined.swaps_applied;
    }
    if (solved == 0) continue;
    table.AddRow({UserPolicyName(up), std::to_string(solved),
                  TextTable::Fmt(before / solved, 2),
                  TextTable::Fmt(after / solved, 2), std::to_string(removed),
                  std::to_string(swapped)});
  }
  std::fputs(table.ToString().c_str(), stdout);
}

void GreedyVsExact(uint64_t seed) {
  std::printf(
      "\n[A4] greedy vs exact optimality gap (random 40-node instances)\n");
  Rng master(seed);
  uint32_t greedy_solved = 0, exact_solved = 0, optimal_hits = 0;
  double gap_sum = 0;
  uint32_t both = 0;
  const uint32_t kTrials = 40;
  for (uint32_t t = 0; t < kTrials; ++t) {
    Rng graph_rng = master.Fork();
    SignedGraph g = RandomConnectedGnm(40, 110, 0.25, &graph_rng);
    ZipfSkillParams sp;
    sp.num_skills = 10;
    SkillAssignment sa = ZipfSkills(40, sp, &graph_rng);
    auto oracle = MakeOracle(g, CompatKind::kSPM);
    Rng rng = master.Fork();
    SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
    GreedyParams params;
    params.skill_policy = SkillPolicy::kLeastCompatible;
    params.user_policy = UserPolicy::kMinDistance;
    GreedyTeamFormer former(oracle.get(), sa, &index, params);
    Task task = RandomTask(sa, 4, &rng);
    TeamResult greedy = former.Form(task, &rng);
    ExactResult exact = SolveExact(oracle.get(), sa, task);
    greedy_solved += greedy.found;
    exact_solved += exact.found;
    if (greedy.found && exact.found) {
      ++both;
      gap_sum += static_cast<double>(greedy.cost) -
                 static_cast<double>(exact.cost);
      optimal_hits += greedy.cost == exact.cost;
    }
  }
  std::printf("  greedy solved %u/%u, exact solved %u/%u\n", greedy_solved,
              kTrials, exact_solved, kTrials);
  if (both > 0) {
    std::printf("  greedy matches optimum %u/%u; mean diameter gap %.2f\n",
                optimal_hits, both, gap_sum / both);
  }
}

}  // namespace
}  // namespace tfsn

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  auto datasets =
      tfsn::bench::LoadDatasets(flags, /*default_scale=*/0.08, "epinions");
  uint32_t tasks = static_cast<uint32_t>(flags.GetInt("tasks", 40));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  tfsn::bench::PrintHeader("Ablations");
  for (const tfsn::Dataset& ds : datasets) {
    tfsn::PolicyGrid(ds, tfsn::CompatKind::kSPM, tasks, seed);
    tfsn::SeedCapSweep(ds, tfsn::CompatKind::kSPM, tasks, seed);
    tfsn::SbphDepthSweep(ds, seed);
    tfsn::RefinementAblation(ds, tfsn::CompatKind::kSPM, tasks, seed);
  }
  tfsn::GreedyVsExact(seed);
  return 0;
}
