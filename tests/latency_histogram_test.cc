#include "src/util/latency_histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace tfsn {
namespace {

TEST(LatencyHistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values below kSubBucketCount get one bucket each, so every quantile
  // is exact.
  LatencyHistogram h;
  for (uint64_t v = 0; v < LatencyHistogram::kSubBucketCount; ++v) h.Record(v);
  EXPECT_EQ(h.count(), uint64_t{LatencyHistogram::kSubBucketCount});
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LatencyHistogram::kSubBucketCount - 1);
  // rank = ceil(0.5 * 32) = 16 -> the 16th smallest sample, value 15.
  EXPECT_EQ(h.ValueAtQuantile(0.5), 15u);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), LatencyHistogram::kSubBucketCount - 1);
}

TEST(LatencyHistogramTest, SingleSample) {
  LatencyHistogram h;
  h.Record(123456);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.ValueAtQuantile(q), 123456u) << q;
  }
  EXPECT_EQ(h.min(), 123456u);
  EXPECT_EQ(h.max(), 123456u);
  EXPECT_DOUBLE_EQ(h.Mean(), 123456.0);
}

TEST(LatencyHistogramTest, RelativeErrorBound) {
  // The reported quantile may be bucket-quantized but never off by more
  // than one sub-bucket width, which is at most 2^-(kSubBucketBits-1) of
  // the value itself.
  const double max_rel = 2.0 / LatencyHistogram::kSubBucketCount;
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t v = rng.Next() >> (trial % 40);
    LatencyHistogram h;
    h.Record(v);
    const uint64_t reported = h.ValueAtQuantile(0.5);
    // Clamping to max() makes single-sample histograms exact; re-check the
    // raw bound through a two-sample histogram where v is not the max.
    EXPECT_EQ(reported, v);
    LatencyHistogram h2;
    h2.Record(v);
    h2.Record(~uint64_t{0});
    const uint64_t mid = h2.ValueAtQuantile(0.5);
    EXPECT_GE(mid, v);
    EXPECT_LE(static_cast<double>(mid) - static_cast<double>(v),
              static_cast<double>(v) * max_rel + 1.0);
  }
}

TEST(LatencyHistogramTest, QuantilesOnUniformRange) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const double max_rel = 2.0 / LatencyHistogram::kSubBucketCount;
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = q * 10000;
    const double got = static_cast<double>(h.ValueAtQuantile(q));
    EXPECT_GE(got, exact - 1) << q;
    EXPECT_LE(got, exact * (1 + max_rel) + 1) << q;
  }
  EXPECT_EQ(h.ValueAtQuantile(1.0), 10000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 5000.5);
}

TEST(LatencyHistogramTest, MergeEqualsCombinedRecording) {
  Rng rng(7);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Next() >> (i % 50);
    combined.Record(v);
    (i % 3 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.ValueAtQuantile(q), combined.ValueAtQuantile(q)) << q;
  }
}

TEST(LatencyHistogramTest, MergeWithEmpty) {
  LatencyHistogram a, empty;
  a.Record(5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 5u);

  LatencyHistogram b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.ValueAtQuantile(0.5), 5u);
}

TEST(LatencyHistogramTest, ClearResets) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(1u << 20);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0u);
  h.Record(3);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 3u);
}

TEST(LatencyHistogramTest, ExtremeValues) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~uint64_t{0});
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), ~uint64_t{0});
}

}  // namespace
}  // namespace tfsn
