// Tests for Algorithm 1 (signed shortest-path counting).

#include "src/compat/signed_bfs.h"

#include <gtest/gtest.h>

#include "paper_figures.h"
#include "src/gen/generators.h"
#include "src/graph/graph_builder.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

TEST(SignedBfsTest, SingleEdgeCounts) {
  SignedGraphBuilder b(2);
  b.AddEdge(0, 1, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SignedBfsResult r = SignedShortestPathCount(g, 0);
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.num_pos[0], 1u);
  EXPECT_EQ(r.num_neg[0], 0u);
  EXPECT_EQ(r.dist[1], 1u);
  EXPECT_EQ(r.num_pos[1], 0u);
  EXPECT_EQ(r.num_neg[1], 1u);
}

TEST(SignedBfsTest, TwoParallelRoutesSplitBySign) {
  // 0 -> 1 -> 3 (both +) and 0 -> 2 -> 3 (one -): two shortest paths of
  // length 2, one positive one negative.
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 3, Sign::kPositive).CheckOK();
  b.AddEdge(0, 2, Sign::kNegative).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SignedBfsResult r = SignedShortestPathCount(g, 0);
  EXPECT_EQ(r.dist[3], 2u);
  EXPECT_EQ(r.num_pos[3], 1u);
  EXPECT_EQ(r.num_neg[3], 1u);
}

TEST(SignedBfsTest, NegativeTimesNegativeIsPositive) {
  // 0 -(-)- 1 -(-)- 2: the double negative path is positive.
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kNegative).CheckOK();
  b.AddEdge(1, 2, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SignedBfsResult r = SignedShortestPathCount(g, 0);
  EXPECT_EQ(r.num_pos[2], 1u);
  EXPECT_EQ(r.num_neg[2], 0u);
}

TEST(SignedBfsTest, CountsMultiplyAcrossLayers) {
  // Diamond chain: 0 -> {1,2} -> 3 -> {4,5} -> 6, all positive:
  // 4 shortest paths 0..6, all positive.
  SignedGraphBuilder b(7);
  for (auto [u, v] : {std::pair{0, 1}, {0, 2}, {1, 3}, {2, 3},
                      {3, 4}, {3, 5}, {4, 6}, {5, 6}}) {
    b.AddEdge(u, v, Sign::kPositive).CheckOK();
  }
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SignedBfsResult r = SignedShortestPathCount(g, 0);
  EXPECT_EQ(r.dist[6], 4u);
  EXPECT_EQ(r.num_pos[6], 4u);
  EXPECT_EQ(r.num_neg[6], 0u);
}

TEST(SignedBfsTest, MixedDiamond) {
  // 0 -> 1 (+) -> 3 (+); 0 -> 2 (-) -> 3 (-): both paths positive or
  // positive? (-)*(-) = + so both are positive.
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 3, Sign::kPositive).CheckOK();
  b.AddEdge(0, 2, Sign::kNegative).CheckOK();
  b.AddEdge(2, 3, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SignedBfsResult r = SignedShortestPathCount(g, 0);
  EXPECT_EQ(r.num_pos[3], 2u);
  EXPECT_EQ(r.num_neg[3], 0u);
}

TEST(SignedBfsTest, LongerPathsNotCounted) {
  // Triangle 0-1-2 plus direct edge 0-2: shortest 0->2 is the edge; the
  // 2-hop path through 1 must not contribute.
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  b.AddEdge(0, 2, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SignedBfsResult r = SignedShortestPathCount(g, 0);
  EXPECT_EQ(r.dist[2], 1u);
  EXPECT_EQ(r.num_pos[2], 0u);
  EXPECT_EQ(r.num_neg[2], 1u);
}

TEST(SignedBfsTest, UnreachableNodesUntouched) {
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SignedBfsResult r = SignedShortestPathCount(g, 0);
  EXPECT_EQ(r.dist[2], kUnreachable);
  EXPECT_EQ(r.num_pos[2], 0u);
  EXPECT_EQ(r.num_neg[2], 0u);
}

TEST(SignedBfsTest, Figure1aShortestPathIsNegative) {
  SignedGraph g = testgraphs::Figure1a();
  using namespace testgraphs;
  SignedBfsResult r = SignedShortestPathCount(g, kU);
  // Only shortest u-v path is (u,x1,v): length 2, negative.
  EXPECT_EQ(r.dist[kV], 2u);
  EXPECT_EQ(r.num_pos[kV], 0u);
  EXPECT_EQ(r.num_neg[kV], 1u);
}

TEST(SignedBfsTest, TotalCountsMatchUnsignedPathCounts) {
  // Property: N+ + N- equals the plain number of shortest paths, checked
  // against an independent unsigned count.
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    SignedGraph g = RandomConnectedGnm(40, 100, 0.4, &rng);
    SignedBfsResult r = SignedShortestPathCount(g, 0);
    // Independent count: BFS layer DP ignoring signs.
    std::vector<uint64_t> count(g.num_nodes(), 0);
    count[0] = 1;
    for (uint32_t level = 0; level < g.num_nodes(); ++level) {
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (r.dist[u] != level) continue;
        for (const Neighbor& nb : g.Neighbors(u)) {
          if (r.dist[nb.to] == level + 1) count[nb.to] += count[u];
        }
      }
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(r.num_pos[v] + r.num_neg[v], count[v]) << "node " << v;
    }
  }
}

TEST(SignedBfsTest, SymmetryOfPairPredicates) {
  Rng rng(103);
  SignedGraph g = RandomConnectedGnm(30, 70, 0.4, &rng);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      EXPECT_EQ(IsSpaCompatible(g, u, v), IsSpaCompatible(g, v, u));
      EXPECT_EQ(IsSpmCompatible(g, u, v), IsSpmCompatible(g, v, u));
      EXPECT_EQ(IsSpoCompatible(g, u, v), IsSpoCompatible(g, v, u));
    }
  }
}

TEST(SignedBfsTest, ReflexiveConveniencepredicates) {
  SignedGraph g = testgraphs::Figure1a();
  EXPECT_TRUE(IsSpaCompatible(g, 2, 2));
  EXPECT_TRUE(IsSpmCompatible(g, 2, 2));
  EXPECT_TRUE(IsSpoCompatible(g, 2, 2));
}

}  // namespace
}  // namespace tfsn
