// End-to-end fault matrix (built only with -DTFSN_FAULTS=ON, ctest label
// "faults"): replays one burst workload through the tiered serving stack
// under every registered fault schedule and asserts the robustness
// contract the injection points exist to prove:
//
//   1. no crash — every run completes;
//   2. no abandoned promise — every admitted request gets a response;
//   3. no silent corruption — every successful, non-degraded response is
//      digest-identical to the fault-free run (faults may only cost
//      recomputation, never change an answer).
//
// The cache is sized to starve (8 resident rows over a spill store), so
// burst traffic continuously exercises insert, eviction/append, spill
// read/promote, and mmap paths — each fault point fires many times per
// run (asserted via FireCount). The spill reopen scan is a separate case:
// it only runs at store construction, so it gets its own test.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/compat/row_spill.h"
#include "src/compat/skill_index.h"
#include "src/gen/generators.h"
#include "src/serve/server.h"
#include "src/serve/workload.h"
#include "src/skills/skill_generator.h"
#include "src/util/fault_injection.h"
#include "src/util/fnv1a.h"
#include "src/util/rng.h"

namespace tfsn::serve {
namespace {

static_assert(kFaultsEnabled,
              "fault_matrix_test must be built with -DTFSN_FAULTS=ON");

struct Instance {
  SignedGraph graph;
  SkillAssignment skills;
};

Instance MakeInstance() {
  Rng rng(21);
  Instance inst{RandomConnectedGnm(80, 200, 0.25, &rng), {}};
  ZipfSkillParams sp;
  sp.num_skills = 15;
  inst.skills = ZipfSkills(80, sp, &rng);
  return inst;
}

// Digest over successful, non-degraded responses — the CLI's replay
// digest. Shed/unavailable/degraded responses are excluded by contract.
uint64_t ExactDigest(const std::vector<TeamResponse>& responses) {
  Fnv1a digest;
  for (const TeamResponse& resp : responses) {
    if (!resp.status.ok() || resp.degraded) continue;
    digest.Mix(resp.id);
    digest.Mix(resp.result.found ? resp.result.cost : ~uint64_t{0});
    for (NodeId member : resp.result.members) digest.Mix(member);
  }
  return digest.digest();
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().Reset(); }
  void TearDown() override { FaultRegistry::Instance().Reset(); }

  // One burst of 60 requests through a fresh tiered stack (starved cache
  // over a fresh spill dir). Fresh state per run keeps runs independent:
  // a fault in run k must not leak state into run k+1.
  WorkloadResult RunOnce(const std::string& tag) {
    const std::string spill_dir =
        (std::filesystem::path(::testing::TempDir()) / ("fault-" + tag))
            .string();
    std::filesystem::remove_all(spill_dir);
    auto spill = std::make_shared<RowSpillStore>(spill_dir);
    EXPECT_TRUE(spill->ok());
    RowCacheOptions copts;
    copts.compress = true;
    copts.spill = spill;
    copts.max_rows = 8;  // starve tier 0: rows churn through disk
    copts.shards = 2;
    auto cache = std::make_shared<RowCache>(copts);
    auto oracle =
        MakeOracle(inst_.graph, CompatKind::kSPM, OracleParams{}, cache);
    Rng idx_rng(3);
    SkillCompatibilityIndex index(oracle.get(), inst_.skills, 0, &idx_rng);

    ServerOptions options;
    options.workers = 2;
    options.batch.max_batch = 8;
    TeamFormationServer server(inst_.graph, inst_.skills, &index,
                               CompatKind::kSPM, cache, options);
    WorkloadOptions wopts;
    wopts.num_requests = 60;
    wopts.seed = 77;
    WorkloadResult run =
        RunBurst(&server, GenerateRequests(inst_.skills, wopts));
    server.Shutdown();
    std::filesystem::remove_all(spill_dir);
    return run;
  }

  Instance inst_ = MakeInstance();
};

TEST_F(FaultMatrixTest, EveryFaultScheduleKeepsAnswersDigestIdentical) {
  const WorkloadResult reference = RunOnce("reference");
  ASSERT_EQ(reference.completed, 60u);
  const uint64_t want = ExactDigest(reference.responses);

  // The matrix: every fault point the burst path can reach, with a
  // schedule aggressive enough to fire repeatedly. (scan_corrupt only
  // runs at store reopen — see SpillReopenScanCorruption below.)
  const std::vector<std::pair<std::string, std::string>> matrix = {
      {"row_cache.insert_drop", "every:3"},
      {"row_cache.promote_fail", "every:2"},
      {"row_spill.append_enospc", "every:2"},
      {"row_spill.append_short_write", "every:3"},
      {"row_spill.read_crc_flip", "every:2"},
      {"row_spill.mmap_fail", "every:2"},
      {"task_view.build_fail", "every:2"},
      {"serve.shared_view_drop", "every:2"},
      {"row_cache.insert_drop", "p:0.3:7"},
      {"row_spill.append_enospc", "always"},
      {"task_view.build_fail", "always"},
  };
  for (const auto& [point, schedule_text] : matrix) {
    SCOPED_TRACE(point + ":" + schedule_text);
    auto& reg = FaultRegistry::Instance();
    reg.Reset();
    FaultSchedule schedule;
    ASSERT_TRUE(FaultRegistry::ParseSchedule(schedule_text, &schedule));
    reg.Arm(point, schedule);

    const WorkloadResult run = RunOnce(point + "-" + schedule_text);
    // Contract 2: every admitted promise fulfilled.
    ASSERT_EQ(run.responses.size(), run.submitted);
    ASSERT_EQ(run.completed, 60u) << "faults must never shed or drop "
                                     "deadline-free requests";
    // The point was actually exercised, or the matrix is testing nothing.
    EXPECT_GT(reg.FireCount(point), 0u) << "fault never fired";
    // Contract 3: answers are bit-identical (faults cost recomputation
    // only — every injected failure path recovers exactly).
    EXPECT_EQ(ExactDigest(run.responses), want) << "answers diverged";
  }
}

TEST_F(FaultMatrixTest, ShutdownMidFaultFulfillsEveryPromise) {
  // Aggressive view loss + a concurrent shutdown: whatever the races, no
  // admitted future may block forever and no successful answer may
  // diverge.
  auto& reg = FaultRegistry::Instance();
  FaultSchedule schedule;
  ASSERT_TRUE(FaultRegistry::ParseSchedule("always", &schedule));
  reg.Arm("serve.shared_view_drop", schedule);
  reg.Arm("row_cache.insert_drop", schedule);

  auto cache = std::make_shared<RowCache>();
  auto oracle =
      MakeOracle(inst_.graph, CompatKind::kSPM, OracleParams{}, cache);
  Rng idx_rng(3);
  SkillCompatibilityIndex index(oracle.get(), inst_.skills, 0, &idx_rng);
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 2048;
  TeamFormationServer server(inst_.graph, inst_.skills, &index,
                             CompatKind::kSPM, cache, options);

  WorkloadOptions wopts;
  wopts.num_requests = 200;
  wopts.seed = 77;
  auto requests = GenerateRequests(inst_.skills, wopts);
  std::vector<std::future<TeamResponse>> futures;
  for (TeamRequest& req : requests) {
    std::future<TeamResponse> fut;
    const Status st = server.Submit(std::move(req), &fut);
    if (st.IsUnavailable()) break;
    ASSERT_TRUE(st.ok());
    futures.push_back(std::move(fut));
  }
  std::thread closer([&server] { server.Shutdown(); });
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "future " << i << " blocked through shutdown under faults";
    const TeamResponse resp = futures[i].get();
    EXPECT_TRUE(resp.status.ok() || resp.status.IsUnavailable())
        << resp.status.ToString();
  }
  closer.join();
}

TEST_F(FaultMatrixTest, SpillReopenScanCorruption) {
  // scan_corrupt fires in the reopen scan: records whose CRC check is
  // forced to fail are dropped (counted, never served), the store stays
  // usable, and re-reading a dropped key degrades to a miss.
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "fault-reopen").string();
  std::filesystem::remove_all(dir);
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  {
    RowSpillStore store(dir);
    ASSERT_TRUE(store.ok());
    for (uint64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(store.Append(k, payload));
    }
  }
  auto& reg = FaultRegistry::Instance();
  FaultSchedule schedule;
  ASSERT_TRUE(FaultRegistry::ParseSchedule("every:2", &schedule));
  reg.Arm("row_spill.scan_corrupt", schedule);
  {
    RowSpillStore store(dir);
    ASSERT_TRUE(store.ok());
    EXPECT_GT(reg.FireCount("row_spill.scan_corrupt"), 0u);
    EXPECT_GT(store.stats().corrupt_dropped, 0u);
    EXPECT_LT(store.stats().records, 10u);
    // Surviving records still read back intact; dropped ones are misses.
    reg.Reset();
    size_t readable = 0;
    for (uint64_t k = 0; k < 10; ++k) {
      std::vector<uint8_t> got;
      if (store.Read(k, &got)) {
        EXPECT_EQ(got, payload);
        ++readable;
      }
    }
    EXPECT_EQ(readable, store.stats().records);
    // The store keeps accepting appends after a corrupted scan.
    EXPECT_TRUE(store.Append(99, payload));
    std::vector<uint8_t> got;
    EXPECT_TRUE(store.Read(99, &got));
    EXPECT_EQ(got, payload);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tfsn::serve
