// Tests for the sharded formation engine (src/dist/): the partition plan,
// the wire codec, the transport ledger, and the engine's core contract —
// DistributedFormer::Form is bit-identical to GreedyTeamFormer::Form for
// every SkillPolicy x UserPolicy x CompatKind at every shard count, with
// identical rng stream consumption, or it fails with a typed Status (never
// a different team). Fault-matrix rows for the three dist.* injection
// points run only in -DTFSN_FAULTS=ON builds (ctest label "faults" via the
// dist_fault_matrix registration); the transport hammer is the suite's
// TSan target.

#include "src/dist/distributed_former.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/compat/skill_index.h"
#include "src/compat/threshold.h"
#include "src/gen/generators.h"
#include "src/skills/skill_generator.h"
#include "src/util/fault_injection.h"
#include "src/util/fnv1a.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

struct Instance {
  SignedGraph graph;
  SkillAssignment skills;
};

Instance MakeInstance(uint32_t n, uint64_t edges, double neg_fraction,
                      uint32_t num_skills, uint64_t seed) {
  Rng rng(seed);
  Instance inst{RandomConnectedGnm(n, edges, neg_fraction, &rng), {}};
  ZipfSkillParams sp;
  sp.num_skills = num_skills;
  inst.skills = ZipfSkills(n, sp, &rng);
  return inst;
}

void ExpectSameResult(const TeamResult& a, const TeamResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_EQ(a.members, b.members) << what;
  EXPECT_EQ(a.cost, b.cost) << what;
  EXPECT_EQ(a.objective, b.objective) << what;
  EXPECT_EQ(a.seeds_tried, b.seeds_tried) << what;
  EXPECT_EQ(a.seeds_succeeded, b.seeds_succeeded) << what;
}

/// The identity the bench also checks: one FNV-1a digest over everything
/// observable in a result.
uint64_t ResultDigest(const TeamResult& r) {
  Fnv1a digest;
  digest.Mix(r.found ? 1 : 0);
  digest.Mix(r.cost);
  digest.Mix(r.objective);
  digest.Mix(r.seeds_tried);
  digest.Mix(r.seeds_succeeded);
  for (NodeId m : r.members) digest.Mix(m);
  return digest.digest();
}

// ---------------------------------------------------------------------------
// ShardPlan
// ---------------------------------------------------------------------------

TEST(ShardPlanTest, PartitionsEveryNodeExactlyOnce) {
  for (ShardStrategy strategy : {ShardStrategy::kHash, ShardStrategy::kRange}) {
    for (uint32_t num_shards : {1u, 3u, 8u, 13u}) {
      ShardPlan plan(strategy, 100, num_shards);
      std::vector<uint32_t> owner_count(100, 0);
      for (uint32_t s = 0; s < num_shards; ++s) {
        std::vector<NodeId> owned = plan.OwnedNodes(s);
        EXPECT_TRUE(std::is_sorted(owned.begin(), owned.end()));
        for (NodeId u : owned) {
          ASSERT_LT(u, 100u);
          EXPECT_EQ(plan.ShardOf(u), s);
          ++owner_count[u];
        }
      }
      for (NodeId u = 0; u < 100; ++u) {
        EXPECT_EQ(owner_count[u], 1u)
            << ShardStrategyName(strategy) << " S=" << num_shards
            << " node " << u;
      }
      // Pure function of the inputs: an independently built plan agrees.
      ShardPlan replica(strategy, 100, num_shards);
      for (NodeId u = 0; u < 100; ++u) {
        EXPECT_EQ(replica.ShardOf(u), plan.ShardOf(u));
      }
    }
  }
}

TEST(ShardPlanTest, RangeBlocksAreContiguousAndIdOrdered) {
  ShardPlan plan(ShardStrategy::kRange, 10, 4);
  EXPECT_TRUE(plan.IdOrderedByShard());
  NodeId next = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    for (NodeId u : plan.OwnedNodes(s)) {
      EXPECT_EQ(u, next) << "shard " << s;
      ++next;
    }
  }
  EXPECT_EQ(next, 10u);
  EXPECT_FALSE(ShardPlan(ShardStrategy::kHash, 10, 4).IdOrderedByShard());
}

TEST(ShardPlanTest, MoreShardsThanNodesLeavesTrailingShardsEmpty) {
  for (ShardStrategy strategy : {ShardStrategy::kHash, ShardStrategy::kRange}) {
    ShardPlan plan(strategy, 3, 8);
    size_t total = 0;
    for (uint32_t s = 0; s < 8; ++s) total += plan.OwnedNodes(s).size();
    EXPECT_EQ(total, 3u) << ShardStrategyName(strategy);
  }
}

TEST(ShardPlanTest, StrategyNamesRoundTrip) {
  for (ShardStrategy strategy : {ShardStrategy::kHash, ShardStrategy::kRange}) {
    ShardStrategy parsed;
    ASSERT_TRUE(ParseShardStrategy(ShardStrategyName(strategy), &parsed));
    EXPECT_EQ(parsed, strategy);
  }
  ShardStrategy out;
  EXPECT_FALSE(ParseShardStrategy("mesh", &out));
}

// ---------------------------------------------------------------------------
// Message codec
// ---------------------------------------------------------------------------

std::vector<Message> SampleMessages() {
  std::vector<Message> msgs;
  {
    Message m;
    m.type = MsgType::kFormBegin;
    m.src = 4;
    m.run = 7;
    m.task_skills = {3, 1, 9};
    m.user_policy = 2;
    m.pool_cap = 256;
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kEvalStep;
    m.src = 4;
    m.run = 7;
    m.seed = 2;
    m.step = 5;
    m.new_member = 42;
    m.skill = 3;
    m.rest = {1, 9};
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kCandidateReply;
    m.src = 1;
    m.run = 7;
    m.seed = 2;
    m.step = 5;
    m.count = 11;
    m.has_best = 1;
    m.best_id = 17;
    m.best_score = 3;
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kRowSlice;
    m.src = 0;
    m.run = 7;
    m.seed = 2;
    m.step = 5;
    m.new_member = 42;
    m.slice_comp = {0xdeadbeefULL, 0x1ULL};
    m.slice_dist = {1, 2, kUnreachable, 0};
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kCountLe;
    m.src = 4;
    m.run = 7;
    m.arg = 63;
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kCostReply;
    m.src = 2;
    m.run = 7;
    m.members = {5, 9};
    m.dists = {0, 1, 3, 1, 0, 2};
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kCandidateReply;
    m.src = 3;
    m.run = 7;
    m.status = StatusCode::kDeadlineExceeded;
    m.error = "row slice from shard 1 never arrived";
    msgs.push_back(m);
  }
  return msgs;
}

TEST(MessageCodecTest, RoundTripsEveryType) {
  for (const Message& m : SampleMessages()) {
    const std::vector<uint8_t> bytes = EncodeMessage(m);
    Message got;
    ASSERT_TRUE(DecodeMessage(bytes, &got)) << MsgTypeName(m.type);
    EXPECT_EQ(got.type, m.type);
    EXPECT_EQ(got.src, m.src);
    EXPECT_EQ(got.run, m.run);
    EXPECT_EQ(got.seed, m.seed);
    EXPECT_EQ(got.step, m.step);
    EXPECT_EQ(got.status, m.status);
    EXPECT_EQ(got.error, m.error);
    EXPECT_EQ(got.task_skills, m.task_skills);
    EXPECT_EQ(got.user_policy, m.user_policy);
    EXPECT_EQ(got.pool_cap, m.pool_cap);
    EXPECT_EQ(got.new_member, m.new_member);
    EXPECT_EQ(got.skill, m.skill);
    EXPECT_EQ(got.rest, m.rest);
    EXPECT_EQ(got.count, m.count);
    EXPECT_EQ(got.has_best, m.has_best);
    EXPECT_EQ(got.best_id, m.best_id);
    EXPECT_EQ(got.best_score, m.best_score);
    EXPECT_EQ(got.slice_comp, m.slice_comp);
    EXPECT_EQ(got.slice_dist, m.slice_dist);
    EXPECT_EQ(got.arg, m.arg);
    EXPECT_EQ(got.team, m.team);
    EXPECT_EQ(got.members, m.members);
    EXPECT_EQ(got.dists, m.dists);
  }
}

TEST(MessageCodecTest, TruncationAndGarbageNeverCrash) {
  for (const Message& m : SampleMessages()) {
    const std::vector<uint8_t> bytes = EncodeMessage(m);
    for (size_t len = 0; len < bytes.size(); ++len) {
      Message got;
      EXPECT_FALSE(DecodeMessage(std::span(bytes.data(), len), &got))
          << MsgTypeName(m.type) << " prefix " << len;
    }
    // Trailing garbage is malformed too: a frame is exactly one message.
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0xff);
    Message got;
    EXPECT_FALSE(DecodeMessage(padded, &got));
  }
  // Fuzz-ish: deterministic garbage of every small length.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.NextBounded(64));
    for (uint8_t& b : junk) b = static_cast<uint8_t>(rng.NextBounded(256));
    Message got;
    DecodeMessage(junk, &got);  // any result is fine; no crash, no UB
  }
}

// ---------------------------------------------------------------------------
// Bit-identity vs the single-node former
// ---------------------------------------------------------------------------

GreedyParams PolicyParams(SkillPolicy sp, UserPolicy up) {
  GreedyParams p;
  p.skill_policy = sp;
  p.user_policy = up;
  return p;
}

DistOptions Options(uint32_t shards, ShardStrategy strategy, CompatKind kind,
                    OracleParams oracle_params = {}) {
  DistOptions o;
  o.num_shards = shards;
  o.strategy = strategy;
  o.oracle_factory = OracleFactoryFor(kind, oracle_params);
  return o;
}

TEST(DistIdentityTest, BitIdenticalAcrossShardCountsPoliciesAndStrategies) {
  Instance inst = MakeInstance(60, 170, 0.25, 10, 101);
  for (CompatKind kind :
       {CompatKind::kSPM, CompatKind::kSBPH, CompatKind::kNNE}) {
    auto oracle = MakeOracle(inst.graph, kind);
    Rng index_rng(3);
    SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
    for (SkillPolicy sp :
         {SkillPolicy::kRarest, SkillPolicy::kLeastCompatible}) {
      for (UserPolicy up :
           {UserPolicy::kMinDistance, UserPolicy::kMostCompatible,
            UserPolicy::kRandom}) {
        GreedyTeamFormer reference(oracle.get(), inst.skills, &index,
                                   PolicyParams(sp, up));
        for (uint32_t shards : {1u, 2u, 3u, 8u}) {
          for (ShardStrategy strategy :
               {ShardStrategy::kHash, ShardStrategy::kRange}) {
            DistributedFormer dist(inst.graph, inst.skills, &index,
                                   PolicyParams(sp, up),
                                   Options(shards, strategy, kind));
            Rng task_rng(17);
            for (int trial = 0; trial < 3; ++trial) {
              Task task = RandomTask(inst.skills, 4, &task_rng);
              Rng rng_a(1000 + trial), rng_b(1000 + trial);
              const TeamResult want = reference.Form(task, &rng_a);
              const Result<TeamResult> got = dist.Form(task, &rng_b);
              ASSERT_TRUE(got.ok()) << got.status().ToString();
              const std::string what =
                  std::string(CompatKindName(kind)) + "/" +
                  SkillPolicyName(sp) + "/" + UserPolicyName(up) + "/S=" +
                  std::to_string(shards) + "/" + ShardStrategyName(strategy);
              ExpectSameResult(*got, want, what);
              EXPECT_EQ(ResultDigest(*got), ResultDigest(want)) << what;
              // Identical rng stream consumption, not just identical teams.
              EXPECT_EQ(rng_a.Next(), rng_b.Next()) << what;
            }
          }
        }
      }
    }
  }
}

TEST(DistIdentityTest, BitIdenticalForEveryCompatKind) {
  // The full relation sweep at one shard configuration (the policy x
  // shard-count sweep above covers the rest). kSBP gets a depth bound and
  // a sampled index to stay affordable, exactly like the view-path tests.
  Instance inst = MakeInstance(42, 116, 0.25, 12, 131);
  for (CompatKind kind : AllCompatKinds()) {
    OracleParams oracle_params;
    oracle_params.sbp.max_depth = 6;
    auto oracle = MakeOracle(inst.graph, kind, oracle_params);
    Rng index_rng(3);
    SkillCompatibilityIndex index(oracle.get(), inst.skills,
                                  kind == CompatKind::kSBP ? 12 : 0,
                                  &index_rng);
    GreedyTeamFormer reference(
        oracle.get(), inst.skills, &index,
        PolicyParams(SkillPolicy::kLeastCompatible, UserPolicy::kMinDistance));
    DistributedFormer dist(
        inst.graph, inst.skills, &index,
        PolicyParams(SkillPolicy::kLeastCompatible, UserPolicy::kMinDistance),
        Options(3, ShardStrategy::kHash, kind, oracle_params));
    Rng task_rng(19);
    for (int trial = 0; trial < 3; ++trial) {
      Task task = RandomTask(inst.skills, 4, &task_rng);
      Rng rng_a(2000 + trial), rng_b(2000 + trial);
      const TeamResult want = reference.Form(task, &rng_a);
      const Result<TeamResult> got = dist.Form(task, &rng_b);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameResult(*got, want, CompatKindName(kind));
    }
  }
}

TEST(DistIdentityTest, ThresholdOracleFactorySupported) {
  Instance inst = MakeInstance(36, 90, 0.3, 8, 43);
  auto oracle = MakeThresholdOracle(inst.graph, 0.75);
  Rng index_rng(5);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
  GreedyParams params =
      PolicyParams(SkillPolicy::kRarest, UserPolicy::kMinDistance);
  GreedyTeamFormer reference(oracle.get(), inst.skills, &index, params);
  DistOptions options;
  options.num_shards = 3;
  options.strategy = ShardStrategy::kRange;
  options.oracle_factory = [](const SignedGraph& g) {
    return MakeThresholdOracle(g, 0.75);
  };
  DistributedFormer dist(inst.graph, inst.skills, &index, params, options);
  Rng task_rng(9);
  for (int trial = 0; trial < 4; ++trial) {
    Task task = RandomTask(inst.skills, 4, &task_rng);
    Rng rng_a(3000 + trial), rng_b(3000 + trial);
    const Result<TeamResult> got = dist.Form(task, &rng_b);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameResult(*got, reference.Form(task, &rng_a), "threshold");
  }
}

TEST(DistIdentityTest, SeedCapCostKindsAndPoolThinning) {
  Instance inst = MakeInstance(60, 170, 0.2, 8, 111);
  auto oracle = MakeOracle(inst.graph, CompatKind::kSPM);
  Rng index_rng(4);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
  for (CostKind cost_kind : {CostKind::kDiameter, CostKind::kSumOfPairs,
                             CostKind::kCenterStar}) {
    GreedyParams params = PolicyParams(SkillPolicy::kLeastCompatible,
                                       UserPolicy::kMostCompatible);
    params.max_seeds = 4;  // exercises coordinator-side seed sampling
    params.cost_kind = cost_kind;
    params.most_compatible_pool_cap = 5;  // forces the thinning branch
    GreedyTeamFormer reference(oracle.get(), inst.skills, &index, params);
    DistributedFormer dist(inst.graph, inst.skills, &index, params,
                           Options(3, ShardStrategy::kHash, CompatKind::kSPM));
    Rng task_rng(23);
    for (int trial = 0; trial < 4; ++trial) {
      Task task = RandomTask(inst.skills, 5, &task_rng);
      Rng rng_a(4000 + trial), rng_b(4000 + trial);
      const Result<TeamResult> got = dist.Form(task, &rng_b);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameResult(*got, reference.Form(task, &rng_a),
                       CostKindName(cost_kind));
      EXPECT_EQ(rng_a.Next(), rng_b.Next()) << CostKindName(cost_kind);
    }
  }
}

TEST(DistIdentityTest, RaggedAndEmptyShardsStayIdentical) {
  // More shards than nodes: most workers own nothing (range) or a couple
  // of interleaved ids (hash); the merge must not care.
  Instance inst = MakeInstance(10, 24, 0.2, 4, 77);
  auto oracle = MakeOracle(inst.graph, CompatKind::kNNE);
  Rng index_rng(6);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
  GreedyParams params =
      PolicyParams(SkillPolicy::kRarest, UserPolicy::kMinDistance);
  GreedyTeamFormer reference(oracle.get(), inst.skills, &index, params);
  for (uint32_t shards : {8u, 16u}) {
    for (ShardStrategy strategy :
         {ShardStrategy::kHash, ShardStrategy::kRange}) {
      DistributedFormer dist(inst.graph, inst.skills, &index, params,
                             Options(shards, strategy, CompatKind::kNNE));
      Rng task_rng(13);
      for (int trial = 0; trial < 3; ++trial) {
        Task task = RandomTask(inst.skills, 3, &task_rng);
        Rng rng_a(5000 + trial), rng_b(5000 + trial);
        const Result<TeamResult> got = dist.Form(task, &rng_b);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectSameResult(*got, reference.Form(task, &rng_a),
                         "S=" + std::to_string(shards));
      }
    }
  }
}

TEST(DistIdentityTest, EmptyTaskReturnsEmptyFoundTeam) {
  Instance inst = MakeInstance(20, 50, 0.2, 5, 31);
  GreedyParams params =
      PolicyParams(SkillPolicy::kRarest, UserPolicy::kMinDistance);
  DistributedFormer dist(inst.graph, inst.skills, nullptr, params,
                         Options(2, ShardStrategy::kHash, CompatKind::kSPM));
  Rng rng(1);
  FormCommStats comm;
  const Result<TeamResult> got = dist.Form(Task(std::vector<SkillId>{}),
                                           &rng, &comm);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->found);
  EXPECT_TRUE(got->members.empty());
  EXPECT_EQ(comm.steps, 0u);
  EXPECT_EQ(comm.comm.messages_sent, 0u);
}

// ---------------------------------------------------------------------------
// Determinism and communication accounting
// ---------------------------------------------------------------------------

TEST(DistCommTest, RepeatedRunsAreDeterministicIncludingTraffic) {
  Instance inst = MakeInstance(50, 140, 0.25, 8, 121);
  auto oracle = MakeOracle(inst.graph, CompatKind::kSPM);
  Rng index_rng(7);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
  GreedyParams params =
      PolicyParams(SkillPolicy::kLeastCompatible, UserPolicy::kRandom);
  DistributedFormer dist(inst.graph, inst.skills, &index, params,
                         Options(3, ShardStrategy::kHash, CompatKind::kSPM));
  Rng task_rng(11);
  Task task = RandomTask(inst.skills, 4, &task_rng);

  TeamResult first;
  FormCommStats first_comm;
  for (int round = 0; round < 3; ++round) {
    Rng rng(42);
    FormCommStats comm;
    const Result<TeamResult> got = dist.Form(task, &rng, &comm);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (round == 0) {
      first = *got;
      first_comm = comm;
      EXPECT_GT(comm.steps, 0u);
      EXPECT_GT(comm.comm.control_bytes, 0u);
    } else {
      ExpectSameResult(*got, first, "round " + std::to_string(round));
      // The whole protocol replays byte-for-byte: same rounds, same
      // control and data traffic.
      EXPECT_EQ(comm.steps, first_comm.steps);
      EXPECT_EQ(comm.rounds, first_comm.rounds);
      EXPECT_EQ(comm.comm.messages_sent, first_comm.comm.messages_sent);
      EXPECT_EQ(comm.comm.control_bytes, first_comm.comm.control_bytes);
      EXPECT_EQ(comm.comm.data_bytes, first_comm.comm.data_bytes);
    }
  }
  // Quiescent accounting identity on the cumulative ledger.
  const CommStats total = dist.comm_stats();
  EXPECT_EQ(total.messages_sent,
            total.messages_delivered + dist.pending_messages());
  EXPECT_EQ(total.messages_dropped, 0u);
  EXPECT_EQ(total.messages_sent, total.control_messages + total.data_messages);
  EXPECT_EQ(total.bytes_sent, total.control_bytes + total.data_bytes);
}

TEST(DistCommTest, PerStepControlTrafficIndependentOfUniverseSize) {
  // The bench asserts this at scale; here the cheap version: quadrupling
  // the graph must not move per-step control bytes more than noise (the
  // data plane — row slices — is allowed to grow).
  GreedyParams params =
      PolicyParams(SkillPolicy::kRarest, UserPolicy::kMinDistance);
  double per_step_small = 0, per_step_large = 0;
  uint64_t data_small = 0, data_large = 0;
  for (const uint32_t n : {200u, 800u}) {
    Instance inst = MakeInstance(n, n * 3, 0.2, 10, 161);
    DistributedFormer dist(inst.graph, inst.skills, nullptr, params,
                           Options(4, ShardStrategy::kHash, CompatKind::kSPM));
    Rng task_rng(29);
    FormCommStats acc;
    uint64_t steps = 0, control = 0, data = 0;
    for (int trial = 0; trial < 4; ++trial) {
      Task task = RandomTask(inst.skills, 4, &task_rng);
      Rng rng(6000 + trial);
      FormCommStats comm;
      const Result<TeamResult> got = dist.Form(task, &rng, &comm);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      steps += comm.steps;
      control += comm.comm.control_bytes;
      data += comm.comm.data_bytes;
    }
    ASSERT_GT(steps, 0u);
    if (n == 200) {
      per_step_small = double(control) / double(steps);
      data_small = data;
    } else {
      per_step_large = double(control) / double(steps);
      data_large = data;
    }
  }
  EXPECT_LT(per_step_large, per_step_small * 1.5)
      << "coordinator traffic grew with n: " << per_step_small << " -> "
      << per_step_large << " bytes/step";
  // Sanity that the measurement isn't vacuous: the data plane does grow.
  EXPECT_GT(data_large, data_small);
}

// ---------------------------------------------------------------------------
// Transport hammer (the suite's TSan target)
// ---------------------------------------------------------------------------

TEST(TransportHammerTest, ConcurrentSendRecvKeepsLedgerConsistent) {
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kProducers = 6;
  constexpr uint32_t kPerProducer = 400;
  InProcessTransport transport(kShards);

  std::vector<std::atomic<uint64_t>> received(kShards + 1);
  for (auto& r : received) r = 0;
  std::vector<std::thread> consumers;
  for (uint32_t d = 0; d <= kShards; ++d) {
    consumers.emplace_back([&transport, &received, d] {
      Message m;
      while (transport.Recv(d, -1, &m).ok()) {
        received[d].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&transport, p] {
      for (uint32_t i = 0; i < kPerProducer; ++i) {
        Message m;
        m.type = MsgType::kCountLe;
        m.src = p % (kShards + 1);
        m.arg = uint64_t{p} << 32 | i;
        ASSERT_TRUE(transport.Send(m.src, (p + i) % (kShards + 1), m).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  transport.Close();
  for (std::thread& t : consumers) t.join();

  uint64_t total_received = 0;
  for (const auto& r : received) total_received += r.load();
  EXPECT_EQ(total_received, uint64_t{kProducers} * kPerProducer);
  const CommStats stats = transport.stats();
  EXPECT_EQ(stats.messages_sent, uint64_t{kProducers} * kPerProducer);
  EXPECT_EQ(stats.messages_delivered, stats.messages_sent);
  EXPECT_EQ(transport.PendingMessages(), 0u);
  EXPECT_EQ(stats.messages_dropped, 0u);
  EXPECT_EQ(stats.bytes_delivered, stats.bytes_sent);
}

TEST(TransportHammerTest, RecvTimesOutAndCloseDrainsBeforeUnavailable) {
  InProcessTransport transport(2);
  Message m;
  EXPECT_TRUE(transport.Recv(0, 30, &m).IsDeadlineExceeded());
  Message ping;
  ping.type = MsgType::kAbort;
  ping.src = 2;
  ASSERT_TRUE(transport.Send(2, 0, ping).ok());
  transport.Close();
  // The queued message is still delivered after Close; only then does the
  // mailbox report Unavailable. Sends fail once closed.
  EXPECT_TRUE(transport.Recv(0, -1, &m).ok());
  EXPECT_EQ(m.type, MsgType::kAbort);
  EXPECT_TRUE(transport.Recv(0, -1, &m).IsUnavailable());
  EXPECT_TRUE(transport.Send(2, 0, ping).IsUnavailable());
}

// ---------------------------------------------------------------------------
// Fault matrix: dist.send_drop / dist.recv_timeout / dist.worker_stall
// (live only in -DTFSN_FAULTS=ON builds; ctest label "faults")
// ---------------------------------------------------------------------------

class DistFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultsEnabled) {
      GTEST_SKIP() << "built without -DTFSN_FAULTS=ON";
    }
    FaultRegistry::Instance().Reset();
  }
  void TearDown() override { FaultRegistry::Instance().Reset(); }
};

TEST_F(DistFaultTest, EveryFaultDegradesToTypedErrorOrIdenticalTeam) {
  Instance inst = MakeInstance(40, 110, 0.25, 8, 171);
  auto oracle = MakeOracle(inst.graph, CompatKind::kSPM);
  Rng index_rng(3);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
  GreedyParams params =
      PolicyParams(SkillPolicy::kLeastCompatible, UserPolicy::kMinDistance);
  GreedyTeamFormer reference(oracle.get(), inst.skills, &index, params);
  Rng task_rng(37);
  const Task task = RandomTask(inst.skills, 4, &task_rng);
  Rng ref_rng(7);
  const TeamResult want = reference.Form(task, &ref_rng);

  const std::vector<std::pair<std::string, std::string>> matrix = {
      {"dist.send_drop", "always"},
      {"dist.send_drop", "every:5"},
      {"dist.send_drop", "p:0.3:7"},
      {"dist.recv_timeout", "always"},
      {"dist.recv_timeout", "every:4"},
      {"dist.worker_stall", "always"},
      {"dist.worker_stall", "every:7"},
  };
  for (const auto& [point, schedule_text] : matrix) {
    SCOPED_TRACE(point + ":" + schedule_text);
    auto& reg = FaultRegistry::Instance();
    reg.Reset();
    FaultSchedule schedule;
    ASSERT_TRUE(FaultRegistry::ParseSchedule(schedule_text, &schedule));
    reg.Arm(point, schedule);

    // A fresh engine per row: a faulted run must not poison later runs of
    // the same engine either, which the disarmed re-run below checks.
    DistOptions options = Options(3, ShardStrategy::kHash, CompatKind::kSPM);
    options.recv_timeout_ms = 250;  // keep injected timeouts fast
    DistributedFormer dist(inst.graph, inst.skills, &index, params, options);
    {
      Rng rng(7);
      const Result<TeamResult> got = dist.Form(task, &rng);
      EXPECT_GT(reg.FireCount(point), 0u) << "fault never fired";
      if (got.ok()) {
        // Contract: a fault may cost retries/time, never change the team.
        ExpectSameResult(*got, want, "faulted-but-ok");
      } else {
        EXPECT_TRUE(got.status().IsUnavailable() ||
                    got.status().IsDeadlineExceeded() ||
                    got.status().IsInternal())
            << got.status().ToString();
      }
    }
    // Disarmed, the same engine instance recovers completely and the
    // ledger still balances (dropped counted apart from sent).
    reg.Reset();
    Rng rng(7);
    const Result<TeamResult> got = dist.Form(task, &rng);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameResult(*got, want, "recovered");
    const CommStats total = dist.comm_stats();
    EXPECT_EQ(total.messages_sent,
              total.messages_delivered + dist.pending_messages());
  }
}

}  // namespace
}  // namespace tfsn
