// Tests for the utility layer: Status/Result, Flags, TextTable.

#include <gtest/gtest.h>

#include "src/util/flags.h"
#include "src/util/result.h"
#include "src/util/status.h"
#include "src/util/table.h"

namespace tfsn {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoriesAndPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Infeasible("x").IsInfeasible());
  EXPECT_FALSE(Status::IOError("x").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status st = Status::NotFound("missing widget");
  EXPECT_EQ(st.ToString(), "NotFound: missing widget");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::IOError("disk");
  Status copy = st;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_EQ(copy.message(), "disk");
  EXPECT_TRUE(st.IsIOError());  // source untouched by copy
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsIOError());
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    TFSN_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    TFSN_RETURN_NOT_OK(succeeds());
    return Status::AlreadyExists("end");
  };
  EXPECT_TRUE(wrapper2().IsAlreadyExists());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::OutOfRange("bad");
  };
  auto use = [&](bool ok) -> Status {
    TFSN_ASSIGN_OR_RETURN(int v, make(ok));
    return v == 5 ? Status::OK() : Status::Internal("wrong value");
  };
  EXPECT_TRUE(use(true).ok());
  EXPECT_TRUE(use(false).IsOutOfRange());
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

Flags MakeFlags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> ptrs;
  ptrs.clear();
  ptrs.push_back(const_cast<char*>("prog"));
  for (auto& a : storage) ptrs.push_back(a.data());
  return Flags(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(FlagsTest, EqualsForm) {
  Flags f = MakeFlags({"--name=value", "--num=42", "--ratio=0.5"});
  EXPECT_EQ(f.GetString("name"), "value");
  EXPECT_EQ(f.GetInt("num", 0), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("ratio", 0), 0.5);
}

TEST(FlagsTest, SpaceSeparatedForm) {
  Flags f = MakeFlags({"--name", "value", "--num", "7"});
  EXPECT_EQ(f.GetString("name"), "value");
  EXPECT_EQ(f.GetInt("num", 0), 7);
}

TEST(FlagsTest, BareBooleans) {
  Flags f = MakeFlags({"--verbose", "--quiet=false", "--zero=0"});
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_FALSE(f.GetBool("quiet", true));
  EXPECT_FALSE(f.GetBool("zero", true));
  EXPECT_TRUE(f.GetBool("missing", true));
  EXPECT_FALSE(f.GetBool("missing", false));
}

TEST(FlagsTest, DefaultsAndHas) {
  Flags f = MakeFlags({"--present=1"});
  EXPECT_TRUE(f.Has("present"));
  EXPECT_FALSE(f.Has("absent"));
  EXPECT_EQ(f.GetString("absent", "dflt"), "dflt");
  EXPECT_EQ(f.GetInt("absent", -3), -3);
}

TEST(FlagsTest, PassthroughPositional) {
  Flags f = MakeFlags({"team", "--k=5", "extra"});
  ASSERT_EQ(f.passthrough().size(), 2u);
  EXPECT_EQ(f.passthrough()[0], "team");
  EXPECT_EQ(f.passthrough()[1], "extra");
  EXPECT_EQ(f.GetInt("k", 0), 5);
}

// ---------------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------------

TEST(TextTableTest, AlignedOutput) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"x"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| x |   |   |"), std::string::npos);
}

TEST(TextTableTest, CsvEscaping) {
  TextTable t({"k", "v"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"quote\"inside", "line\nbreak"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TextTableTest, Formatters) {
  EXPECT_EQ(TextTable::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::Pct(0.4567, 1), "45.7");
}

TEST(TextTableTest, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace tfsn
