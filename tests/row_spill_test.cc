// Tests for the on-disk spill tier (row_spill.h): record round-trips,
// per-kind segment files, index rebuild on reopen, crash consistency
// (truncated tails and CRC-corrupt payloads detected, never served), and
// the RowCache integration — evicted rows come back from disk, and a
// corrupted spill record degrades to a recompute, not corrupt data.

#include "src/compat/row_spill.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "src/compat/compatibility.h"
#include "src/compat/row_cache.h"
#include "src/compat/row_codec.h"
#include "src/gen/generators.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

std::string SpillDir(const char* name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<uint8_t> Payload(uint8_t fill, size_t size) {
  std::vector<uint8_t> out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(fill + i);
  }
  return out;
}

constexpr uint64_t KindA = 0x11110000'00000000ull;
constexpr uint64_t KindB = 0x22220000'00000000ull;

TEST(RowSpillTest, AppendReadRoundTripAcrossSegments) {
  const std::string dir = SpillDir("spill-roundtrip");
  RowSpillStore store(dir);
  ASSERT_TRUE(store.ok());

  ASSERT_TRUE(store.Append(KindA | 1, Payload(1, 100)));
  ASSERT_TRUE(store.Append(KindA | 2, Payload(2, 1)));
  ASSERT_TRUE(store.Append(KindB | 1, Payload(3, 5000)));

  std::vector<uint8_t> got;
  ASSERT_TRUE(store.Read(KindA | 1, &got));
  EXPECT_EQ(got, Payload(1, 100));
  ASSERT_TRUE(store.Read(KindA | 2, &got));
  EXPECT_EQ(got, Payload(2, 1));
  ASSERT_TRUE(store.Read(KindB | 1, &got));
  EXPECT_EQ(got, Payload(3, 5000));
  EXPECT_FALSE(store.Read(KindA | 9, &got));
  EXPECT_TRUE(store.Contains(KindA | 1));
  EXPECT_FALSE(store.Contains(KindB | 2));

  // One segment file per key kind (the high 32 bits).
  const RowSpillStats stats = store.stats();
  EXPECT_EQ(stats.segments, 2u);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_EQ(stats.corrupt_dropped, 0u);
}

TEST(RowSpillTest, ReAppendSupersedesAndReopenRebuildsIndex) {
  const std::string dir = SpillDir("spill-reopen");
  {
    RowSpillStore store(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store.Append(KindA | 7, Payload(1, 64)));
    ASSERT_TRUE(store.Append(KindA | 8, Payload(2, 64)));
    // Later record for the same key wins.
    ASSERT_TRUE(store.Append(KindA | 7, Payload(9, 32)));
    std::vector<uint8_t> got;
    ASSERT_TRUE(store.Read(KindA | 7, &got));
    EXPECT_EQ(got, Payload(9, 32));
    EXPECT_EQ(store.stats().records, 2u);
  }
  // A fresh store over the same directory rebuilds the index by scanning
  // the segments — and still serves the latest version per key.
  RowSpillStore reopened(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.stats().records, 2u);
  std::vector<uint8_t> got;
  ASSERT_TRUE(reopened.Read(KindA | 7, &got));
  EXPECT_EQ(got, Payload(9, 32));
  ASSERT_TRUE(reopened.Read(KindA | 8, &got));
  EXPECT_EQ(got, Payload(2, 64));
}

TEST(RowSpillTest, TruncatedTailDetectedAndDropped) {
  const std::string dir = SpillDir("spill-truncated");
  std::string segment_path;
  {
    RowSpillStore store(dir);
    ASSERT_TRUE(store.Append(KindA | 1, Payload(1, 200)));
    ASSERT_TRUE(store.Append(KindA | 2, Payload(2, 200)));
    segment_path =
        (std::filesystem::directory_iterator(dir)->path()).string();
  }
  // Chop the last record mid-payload — the shape a crash mid-append
  // leaves behind.
  const auto full = std::filesystem::file_size(segment_path);
  std::filesystem::resize_file(segment_path, full - 150);

  RowSpillStore store(dir);
  ASSERT_TRUE(store.ok());
  const RowSpillStats stats = store.stats();
  EXPECT_EQ(stats.records, 1u);
  EXPECT_GE(stats.corrupt_dropped, 1u);
  std::vector<uint8_t> got;
  ASSERT_TRUE(store.Read(KindA | 1, &got));
  EXPECT_EQ(got, Payload(1, 200));
  EXPECT_FALSE(store.Read(KindA | 2, &got));
  // The broken tail was truncated away: appends produce a clean stream
  // that a further reopen scans fully.
  ASSERT_TRUE(store.Append(KindA | 3, Payload(3, 50)));
  RowSpillStore again(dir);
  EXPECT_EQ(again.stats().records, 2u);
  ASSERT_TRUE(again.Read(KindA | 3, &got));
  EXPECT_EQ(got, Payload(3, 50));
}

TEST(RowSpillTest, CrcCorruptRecordSkippedNotServed) {
  const std::string dir = SpillDir("spill-crc");
  std::string segment_path;
  uint64_t first_size = 0;
  {
    RowSpillStore store(dir);
    ASSERT_TRUE(store.Append(KindA | 1, Payload(1, 100)));
    first_size = store.stats().file_bytes;
    ASSERT_TRUE(store.Append(KindA | 2, Payload(2, 100)));
    segment_path =
        (std::filesystem::directory_iterator(dir)->path()).string();
  }
  // Flip one payload byte of the *first* record (shell stays intact).
  {
    std::FILE* f = std::fopen(segment_path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);  // inside record 1's payload
    std::fputc(0xEE, f);
    std::fclose(f);
    ASSERT_GT(first_size, 40u);
  }
  RowSpillStore store(dir);
  ASSERT_TRUE(store.ok());
  const RowSpillStats stats = store.stats();
  // The torn record is skipped — but records *after* it are still served:
  // an intact shell lets the scan stride over the bad payload.
  EXPECT_EQ(stats.records, 1u);
  EXPECT_GE(stats.corrupt_dropped, 1u);
  std::vector<uint8_t> got;
  EXPECT_FALSE(store.Read(KindA | 1, &got));
  ASSERT_TRUE(store.Read(KindA | 2, &got));
  EXPECT_EQ(got, Payload(2, 100));
}

TEST(RowSpillTest, ClearTruncatesSegments) {
  const std::string dir = SpillDir("spill-clear");
  RowSpillStore store(dir);
  ASSERT_TRUE(store.Append(KindA | 1, Payload(1, 100)));
  store.Clear();
  std::vector<uint8_t> got;
  EXPECT_FALSE(store.Read(KindA | 1, &got));
  EXPECT_EQ(store.stats().records, 0u);
  EXPECT_EQ(store.stats().file_bytes, 0u);
  // The store keeps working after a Clear.
  ASSERT_TRUE(store.Append(KindA | 1, Payload(5, 10)));
  ASSERT_TRUE(store.Read(KindA | 1, &got));
  EXPECT_EQ(got, Payload(5, 10));
}

// ---------------------------------------------------------------------------
// RowCache integration: the spill tier serves evictions back.
// ---------------------------------------------------------------------------

CompatRow SpillTestRow(uint32_t n, uint8_t fill) {
  CompatRow row;
  row.comp.assign(n, static_cast<uint8_t>(fill % 2));
  row.dist.assign(n, fill);
  return row;
}

TEST(RowSpillTest, CacheEvictionsComeBackFromDisk) {
  auto spill = std::make_shared<RowSpillStore>(SpillDir("spill-cache"));
  ASSERT_TRUE(spill->ok());
  RowCacheOptions options;
  options.max_rows = 2;
  options.max_bytes = 0;
  options.shards = 1;
  options.compress = true;
  options.spill = spill;
  RowCache cache(options);

  for (uint64_t key = 0; key < 8; ++key) {
    cache.Insert(key, SpillTestRow(64, static_cast<uint8_t>(key)));
  }
  EXPECT_EQ(cache.stats().rows_in_use, 2u);
  EXPECT_GT(spill->stats().appends, 0u);

  // Every evicted row is still served — promoted back from the spill
  // tier, counted as a hit plus a spill read.
  const RowCache::StatsSnapshot before = cache.SnapshotCounters();
  for (uint64_t key = 0; key < 8; ++key) {
    auto row = cache.Get(key);
    ASSERT_NE(row, nullptr) << key;
    EXPECT_EQ(row->dist[0], key) << key;
  }
  const RowCache::StatsSnapshot window = cache.SnapshotCounters() - before;
  EXPECT_EQ(window.hits, 8u);
  EXPECT_EQ(window.misses, 0u);
  EXPECT_GT(window.spill_reads, 0u);
  EXPECT_GT(window.spill_writes, 0u);

  // Clear() empties the spill tier too.
  cache.Clear();
  EXPECT_EQ(cache.Get(3), nullptr);
  EXPECT_EQ(spill->stats().records, 0u);
}

TEST(RowSpillTest, CorruptSpillRecordDegradesToRecompute) {
  // An oracle over a tiny tiered cache: rows are evicted to disk, the
  // spill store is then corrupted wholesale, and every row must still
  // come back correct — recomputed, never decoded from bad bytes.
  Rng rng(127);
  SignedGraph g = RandomConnectedGnm(40, 100, 0.3, &rng);
  const std::string dir = SpillDir("spill-corrupt");
  auto spill = std::make_shared<RowSpillStore>(dir);
  OracleParams params;
  params.max_cached_rows = 2;
  params.compress = true;
  params.spill = spill;
  auto oracle = MakeOracle(g, CompatKind::kSPM, params);
  auto flat = MakeOracle(g, CompatKind::kSPM, OracleParams{});

  for (NodeId q = 0; q < g.num_nodes(); ++q) oracle->GetRow(q);
  ASSERT_GT(spill->stats().records, 0u);

  // Wreck every indexed record in place while the store is open: reads
  // re-verify magic + CRC against the live mapping, so each corrupted
  // record degrades to a miss instead of serving garbage.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const auto size = std::filesystem::file_size(entry.path());
    std::FILE* f = std::fopen(entry.path().string().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const std::vector<uint8_t> junk(size, 0xEE);
    ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
    std::fclose(f);
  }
  const uint64_t computed_before = oracle->rows_computed();
  for (NodeId q = 0; q < g.num_nodes(); ++q) {
    const auto& row = oracle->GetRow(q);
    EXPECT_EQ(row.comp, flat->GetRow(q).comp) << q;
    EXPECT_EQ(row.dist, flat->GetRow(q).dist) << q;
  }
  // The poisoned spill tier forced real recomputes, not corrupt serves.
  EXPECT_GT(oracle->rows_computed(), computed_before);
}

}  // namespace
}  // namespace tfsn
