// Tests for the annotated mutex wrappers (src/util/mutex.h): MutexLock
// RAII + relocking, CondVar wait-with-predicate, and the TFSN_EXCLUDES
// "lock-then-call-into-locked-API" shape hammered across threads so TSan
// (the tsan preset runs this suite) checks the runtime side of the
// contracts the annotations state at compile time. The compile-time side
// itself is proven by tests/thread_safety_negative.cc (a WILL_FAIL
// negative-compile CTest).
//
// Annotations appear only on members of the helper classes below — Clang's
// analysis attaches capability attributes to data members, not locals or
// lambdas, so the test state lives in small annotated structs.

#include "src/util/mutex.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/thread_annotations.h"

namespace tfsn {
namespace {

// A guarded counter exercising the annotation idioms end to end:
// GUARDED_BY member, REQUIRES private helper, EXCLUDES entry points.
class GuardedCounter {
 public:
  void Add(uint64_t n) TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    AddLocked(n);
  }

  uint64_t Get() const TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  void AddLocked(uint64_t n) TFSN_REQUIRES(mu_) { value_ += n; }

  mutable Mutex mu_;
  uint64_t value_ TFSN_GUARDED_BY(mu_) = 0;
};

// Condition-variable rendezvous state shared by the CondVar tests.
class Gate {
 public:
  void Open() TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    open_ = true;
    lock.Unlock();  // notify outside the critical section
    cv_.NotifyAll();
  }

  /// Blocks until Open(); increments the wake tally before returning.
  void Await() TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!open_) cv_.Wait(&mu_);
    ++woke_;
  }

  int woke() const TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return woke_;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  bool open_ TFSN_GUARDED_BY(mu_) = false;
  int woke_ TFSN_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, LockUnlockTryLock) {
  Mutex mu;
  mu.Lock();
  // Non-recursive: a contending TryLock from another thread must fail
  // while we hold the lock.
  bool acquired = true;
  std::thread probe([&mu, &acquired]() {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  std::thread probe2([&mu, &acquired]() {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  probe2.join();
  EXPECT_TRUE(acquired);
}

TEST(MutexTest, MutexLockRaiiUnderContention) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter]() {
      for (int i = 0; i < kIters; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(counter.Get(), uint64_t{kThreads} * kIters);
}

TEST(MutexTest, MutexLockUnlockRelock) {
  Mutex mu;
  MutexLock lock(&mu);
  lock.Unlock();
  // The lock is genuinely free in this window.
  bool free = mu.TryLock();
  EXPECT_TRUE(free);
  if (free) mu.Unlock();
  lock.Lock();
  // Held again: a contending probe fails.
  bool contended_acquired = true;
  std::thread probe([&mu, &contended_acquired]() {
    contended_acquired = mu.TryLock();
    if (contended_acquired) mu.Unlock();
  });
  probe.join();
  EXPECT_FALSE(contended_acquired);
  // Destructor releases the relocked mutex; verified by the next test run
  // of this suite not deadlocking (and by TSan's lock bookkeeping).
}

TEST(MutexTest, CondVarWaitLoop) {
  Gate gate;
  constexpr int kWaiters = 4;
  std::vector<std::thread> pool;
  pool.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    pool.emplace_back([&gate]() { gate.Await(); });
  }
  gate.Open();
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(gate.woke(), kWaiters);
}

TEST(MutexTest, CondVarWaitWithPredicate) {
  // The flag is deliberately unannotated: the predicate lambda is
  // analyzed as a standalone function that cannot name the enclosing
  // scope's held capability (mu does protect it — Wait re-holds mu
  // around every predicate evaluation).
  struct {
    Mutex mu;
    CondVar cv;
    bool done = false;
  } s;
  std::thread setter([&s]() {
    MutexLock lock(&s.mu);
    s.done = true;
    lock.Unlock();
    s.cv.NotifyOne();
  });
  {
    MutexLock lock(&s.mu);
    s.cv.Wait(&s.mu, [&s] { return s.done; });
    EXPECT_TRUE(s.done);
  }
  setter.join();
}

// The EXCLUDES shape under load: entry points that take the lock
// themselves, called from many threads, with a reader mixing TryLock
// probes in — TSan verifies no lock-order or data-race defect in the
// wrappers themselves.
TEST(MutexTest, ExcludesShapeHammer) {
  GuardedCounter counter;
  GuardedCounter probes;
  constexpr int kWriters = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> pool;
  pool.reserve(kWriters + 1);
  for (int t = 0; t < kWriters; ++t) {
    pool.emplace_back([&counter]() {
      for (int i = 0; i < kIters; ++i) counter.Add(2);
    });
  }
  pool.emplace_back([&]() {
    for (int i = 0; i < kIters; ++i) {
      (void)counter.Get();
      probes.Add(1);
    }
  });
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(counter.Get(), uint64_t{2} * kWriters * kIters);
  EXPECT_EQ(probes.Get(), uint64_t{kIters});
}

}  // namespace
}  // namespace tfsn
