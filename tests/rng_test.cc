#include "src/util/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/util/zipf.h"

namespace tfsn {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextInt(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRoughlyUniform) {
  Rng rng(17);
  double sum = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(23);
  int hits = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    ASSERT_EQ(sample.size(), k);
    std::set<uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (uint32_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.Next() == child.Next();
  EXPECT_LT(equal, 4);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (uint32_t r = 0; r < 100; ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostLikely) {
  ZipfSampler zipf(50, 1.2);
  for (uint32_t r = 1; r < 50; ++r) {
    EXPECT_GT(zipf.Pmf(0), zipf.Pmf(r));
  }
}

TEST(ZipfTest, SamplesInRange) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 20u);
}

TEST(ZipfTest, EmpiricalHeadFrequencyMatchesPmf) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(47);
  const int kDraws = 50000;
  int head = 0;
  for (int i = 0; i < kDraws; ++i) head += zipf.Sample(&rng) == 0;
  EXPECT_NEAR(static_cast<double>(head) / kDraws, zipf.Pmf(0), 0.01);
}

TEST(ZipfTest, DegenerateSingleRank) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(53);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace tfsn
