// Cross-family property sweep: the compatibility axioms and the inclusion
// chain must hold on every graph family the generators produce — uniform
// G(n,m), preferential attachment, small-world, and planted partitions —
// not just the uniform graphs the per-module suites use.
//
// Graph sizes default to small-but-connected so the fast test tier stays
// fast; the `slow`-labeled CTest registration re-runs this binary with
// TFSN_SWEEP_NODES/TFSN_SWEEP_EDGES set to the paper-scale sizes.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>

#include "src/compat/compatibility.h"
#include "src/gen/generators.h"
#include "src/graph/components.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

uint32_t SizeFromEnv(const char* var, uint32_t fallback) {
  const char* s = std::getenv(var);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  // strtoull accepts a leading '-' (wrapping to a huge value), so reject
  // any sign explicitly; also bound to uint32_t to avoid truncation.
  if (s[0] == '-' || s[0] == '+' || end == s || *end != '\0' || v == 0 ||
      v > std::numeric_limits<uint32_t>::max()) {
    ADD_FAILURE() << var << "=\"" << s << "\" is not a positive 32-bit "
                  << "integer; using default " << fallback;
    return fallback;
  }
  return static_cast<uint32_t>(v);
}

uint32_t SweepNodes() {
  static const uint32_t n = SizeFromEnv("TFSN_SWEEP_NODES", 24);
  return n;
}

uint64_t SweepEdges() {
  static const uint64_t m = SizeFromEnv("TFSN_SWEEP_EDGES", 56);
  return m;
}

enum class Family { kGnm, kPreferential, kSmallWorld, kPlanted };

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kGnm: return "Gnm";
    case Family::kPreferential: return "PrefAttach";
    case Family::kSmallWorld: return "SmallWorld";
    case Family::kPlanted: return "Planted";
  }
  return "?";
}

SignedGraph MakeFamily(Family f, uint64_t seed) {
  const uint32_t n = SweepNodes();
  const uint64_t m = SweepEdges();
  Rng rng(seed);
  switch (f) {
    case Family::kGnm:
      return RandomConnectedGnm(n, m, 0.3, &rng);
    case Family::kPreferential:
      return RandomPreferentialAttachment(n, m, 0.3, &rng);
    case Family::kSmallWorld:
      return SmallWorldSigned(n, 4, 0.2, 0.3, &rng);
    case Family::kPlanted:
      return PlantedPartitionSigned(n, m, 0.15, &rng);
  }
  Rng fallback(seed);
  return RandomConnectedGnm(n, m, 0.3, &fallback);
}

struct SweepCase {
  Family family;
  uint64_t seed;
};

class GeneratorFamilyTest : public testing::TestWithParam<SweepCase> {};

TEST_P(GeneratorFamilyTest, GraphIsWellFormed) {
  SignedGraph g = MakeFamily(GetParam().family, GetParam().seed);
  EXPECT_EQ(g.num_nodes(), SweepNodes());
  EXPECT_GE(g.num_edges(), SweepNodes() - 1u);
  EXPECT_TRUE(IsConnected(g));
  // Adjacency symmetric with consistent signs.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Neighbor& nb : g.Neighbors(u)) {
      auto back = g.EdgeSign(nb.to, u);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, nb.sign);
    }
  }
}

TEST_P(GeneratorFamilyTest, AxiomsAcrossAllRelations) {
  SignedGraph g = MakeFamily(GetParam().family, GetParam().seed);
  for (CompatKind kind : AllCompatKinds()) {
    auto oracle = MakeOracle(g, kind);
    for (const SignedEdge& e : g.Edges()) {
      if (e.sign == Sign::kPositive) {
        EXPECT_TRUE(oracle->Compatible(e.u, e.v))
            << FamilyName(GetParam().family) << "/" << CompatKindName(kind);
      } else {
        EXPECT_FALSE(oracle->Compatible(e.u, e.v))
            << FamilyName(GetParam().family) << "/" << CompatKindName(kind);
      }
    }
  }
}

TEST_P(GeneratorFamilyTest, InclusionChainSpotChecks) {
  SignedGraph g = MakeFamily(GetParam().family, GetParam().seed);
  auto spa = MakeOracle(g, CompatKind::kSPA);
  auto spm = MakeOracle(g, CompatKind::kSPM);
  auto spo = MakeOracle(g, CompatKind::kSPO);
  auto nne = MakeOracle(g, CompatKind::kNNE);
  auto sbph = MakeOracle(g, CompatKind::kSBPH);
  auto sbp = MakeOracle(g, CompatKind::kSBP);
  for (NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (NodeId v = 0; v < g.num_nodes(); v += 3) {
      if (u == v) continue;
      EXPECT_LE(spa->Compatible(u, v), spm->Compatible(u, v));
      EXPECT_LE(spm->Compatible(u, v), spo->Compatible(u, v));
      EXPECT_LE(spo->Compatible(u, v), sbp->Compatible(u, v));
      EXPECT_LE(sbph->Compatible(u, v), sbp->Compatible(u, v));
      EXPECT_LE(sbp->Compatible(u, v), nne->Compatible(u, v));
    }
  }
}

std::vector<SweepCase> SweepCases() {
  std::vector<SweepCase> cases;
  for (Family f : {Family::kGnm, Family::kPreferential, Family::kSmallWorld,
                   Family::kPlanted}) {
    for (uint64_t seed : {1ULL, 2ULL}) cases.push_back({f, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratorFamilyTest, testing::ValuesIn(SweepCases()),
    [](const testing::TestParamInfo<SweepCase>& info) {
      return std::string(FamilyName(info.param.family)) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace tfsn
