// Cross-family property sweep: the compatibility axioms and the inclusion
// chain must hold on every graph family the generators produce — uniform
// G(n,m), preferential attachment, small-world, and planted partitions —
// not just the uniform graphs the per-module suites use.

#include <gtest/gtest.h>

#include "src/compat/compatibility.h"
#include "src/gen/generators.h"
#include "src/graph/components.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

enum class Family { kGnm, kPreferential, kSmallWorld, kPlanted };

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kGnm: return "Gnm";
    case Family::kPreferential: return "PrefAttach";
    case Family::kSmallWorld: return "SmallWorld";
    case Family::kPlanted: return "Planted";
  }
  return "?";
}

SignedGraph MakeFamily(Family f, uint64_t seed) {
  Rng rng(seed);
  switch (f) {
    case Family::kGnm:
      return RandomConnectedGnm(40, 100, 0.3, &rng);
    case Family::kPreferential:
      return RandomPreferentialAttachment(40, 100, 0.3, &rng);
    case Family::kSmallWorld:
      return SmallWorldSigned(40, 4, 0.2, 0.3, &rng);
    case Family::kPlanted:
      return PlantedPartitionSigned(40, 100, 0.15, &rng);
  }
  Rng fallback(seed);
  return RandomConnectedGnm(40, 100, 0.3, &fallback);
}

struct SweepCase {
  Family family;
  uint64_t seed;
};

class GeneratorFamilyTest : public testing::TestWithParam<SweepCase> {};

TEST_P(GeneratorFamilyTest, GraphIsWellFormed) {
  SignedGraph g = MakeFamily(GetParam().family, GetParam().seed);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_GE(g.num_edges(), 39u);
  EXPECT_TRUE(IsConnected(g));
  // Adjacency symmetric with consistent signs.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Neighbor& nb : g.Neighbors(u)) {
      auto back = g.EdgeSign(nb.to, u);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, nb.sign);
    }
  }
}

TEST_P(GeneratorFamilyTest, AxiomsAcrossAllRelations) {
  SignedGraph g = MakeFamily(GetParam().family, GetParam().seed);
  for (CompatKind kind : AllCompatKinds()) {
    auto oracle = MakeOracle(g, kind);
    for (const SignedEdge& e : g.Edges()) {
      if (e.sign == Sign::kPositive) {
        EXPECT_TRUE(oracle->Compatible(e.u, e.v))
            << FamilyName(GetParam().family) << "/" << CompatKindName(kind);
      } else {
        EXPECT_FALSE(oracle->Compatible(e.u, e.v))
            << FamilyName(GetParam().family) << "/" << CompatKindName(kind);
      }
    }
  }
}

TEST_P(GeneratorFamilyTest, InclusionChainSpotChecks) {
  SignedGraph g = MakeFamily(GetParam().family, GetParam().seed);
  auto spa = MakeOracle(g, CompatKind::kSPA);
  auto spm = MakeOracle(g, CompatKind::kSPM);
  auto spo = MakeOracle(g, CompatKind::kSPO);
  auto nne = MakeOracle(g, CompatKind::kNNE);
  auto sbph = MakeOracle(g, CompatKind::kSBPH);
  auto sbp = MakeOracle(g, CompatKind::kSBP);
  for (NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (NodeId v = 0; v < g.num_nodes(); v += 3) {
      if (u == v) continue;
      EXPECT_LE(spa->Compatible(u, v), spm->Compatible(u, v));
      EXPECT_LE(spm->Compatible(u, v), spo->Compatible(u, v));
      EXPECT_LE(spo->Compatible(u, v), sbp->Compatible(u, v));
      EXPECT_LE(sbph->Compatible(u, v), sbp->Compatible(u, v));
      EXPECT_LE(sbp->Compatible(u, v), nne->Compatible(u, v));
    }
  }
}

std::vector<SweepCase> SweepCases() {
  std::vector<SweepCase> cases;
  for (Family f : {Family::kGnm, Family::kPreferential, Family::kSmallWorld,
                   Family::kPlanted}) {
    for (uint64_t seed : {1ULL, 2ULL}) cases.push_back({f, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratorFamilyTest, testing::ValuesIn(SweepCases()),
    [](const testing::TestParamInfo<SweepCase>& info) {
      return std::string(FamilyName(info.param.family)) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace tfsn
