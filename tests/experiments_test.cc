// Integration tests over the experiment runners: the pipelines that
// regenerate the paper's tables and figures must produce well-formed rows
// with the qualitative properties the paper reports.

#include "src/exp/experiments.h"

#include <gtest/gtest.h>

namespace tfsn {
namespace {

Dataset SmallEpinions() {
  DatasetOptions options;
  options.scale = 0.02;  // ~577 users
  options.seed = 99;
  return MakeEpinions(options);
}

TEST(Table1Test, RowMatchesDataset) {
  Dataset ds = MakeSlashdot();
  Table1Row row = ComputeTable1Row(ds, /*exact_diameter_limit=*/1000, 1);
  EXPECT_EQ(row.dataset, "Slashdot");
  EXPECT_EQ(row.users, 214u);
  EXPECT_EQ(row.edges, 304u);
  EXPECT_TRUE(row.diameter_exact);
  EXPECT_GT(row.diameter, 3u);
  EXPECT_EQ(row.skills, 1024u);
  EXPECT_NEAR(row.neg_fraction,
              static_cast<double>(row.neg_edges) / row.edges, 1e-12);
}

TEST(Table1Test, EstimatedDiameterForLargeGraphs) {
  Dataset ds = SmallEpinions();
  Table1Row row = ComputeTable1Row(ds, /*exact_diameter_limit=*/10, 1);
  EXPECT_FALSE(row.diameter_exact);
  EXPECT_GT(row.diameter, 0u);
}

TEST(Table2Test, SlashdotIncludesSbpAndIsMonotone) {
  Dataset ds = MakeSlashdot();
  Table2Options options;
  auto cells = RunTable2(ds, options);
  // Small graph: all sources, SBP included -> 6 relations.
  ASSERT_EQ(cells.size(), 6u);
  // Relaxation order of the returned cells: SPA SPM SPO SBPH SBP NNE.
  EXPECT_EQ(cells[0].kind, CompatKind::kSPA);
  EXPECT_EQ(cells[4].kind, CompatKind::kSBP);
  EXPECT_EQ(cells[5].kind, CompatKind::kNNE);
  for (size_t i = 0; i + 1 < cells.size(); ++i) {
    EXPECT_LE(cells[i].comp_users_pct, cells[i + 1].comp_users_pct + 1e-9)
        << CompatKindName(cells[i].kind) << " -> "
        << CompatKindName(cells[i + 1].kind);
  }
  // Paper shape: SBP within a few percent of NNE; SBPH within a few
  // percent of SBP.
  EXPECT_NEAR(cells[4].comp_users_pct, cells[5].comp_users_pct, 5.0);
  EXPECT_NEAR(cells[3].comp_users_pct, cells[4].comp_users_pct, 5.0);
  // Distances: positive, and NNE below SBP (negative shortcuts allowed).
  for (const auto& c : cells) EXPECT_GT(c.avg_distance, 0.0);
  EXPECT_LE(cells[5].avg_distance, cells[4].avg_distance);
}

TEST(Table2Test, LargeGraphSkipsSbpAndSamples) {
  Dataset ds = SmallEpinions();
  Table2Options options;
  options.sample_sources = 50;
  options.small_graph_limit = 100;  // force the "large" path
  auto cells = RunTable2(ds, options);
  ASSERT_EQ(cells.size(), 5u);  // no SBP
  for (const auto& c : cells) {
    EXPECT_NE(c.kind, CompatKind::kSBP);
    EXPECT_EQ(c.sources_used, 50u);
  }
}

TEST(Fig2abTest, MaxBoundDominatesAndDiametersSane) {
  Dataset ds = SmallEpinions();
  TeamExperimentOptions options;
  options.num_tasks = 12;
  options.max_seeds = 5;
  options.kinds = {CompatKind::kSPM, CompatKind::kNNE};
  auto rows = RunFig2ab(ds, options);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    ASSERT_EQ(row.outcomes.size(), 3u);
    EXPECT_EQ(row.outcomes[0].algorithm, "LCMD");
    EXPECT_EQ(row.outcomes[1].algorithm, "LCMC");
    EXPECT_EQ(row.outcomes[2].algorithm, "RANDOM");
    for (const auto& outcome : row.outcomes) {
      EXPECT_GE(outcome.solved_pct, 0.0);
      EXPECT_LE(outcome.solved_pct, 100.0);
      // MAX is a necessary condition, so it upper-bounds every algorithm.
      EXPECT_LE(outcome.solved_pct, row.max_bound_pct + 1e-9)
          << CompatKindName(row.kind) << "/" << outcome.algorithm;
      if (outcome.solved_pct > 0) {
        EXPECT_GE(outcome.avg_diameter, 0.0);
      }
    }
  }
}

TEST(Fig2cdTest, SuccessFallsWithTaskSizeForStrictRelations) {
  Dataset ds = SmallEpinions();
  TeamExperimentOptions options;
  options.num_tasks = 15;
  options.max_seeds = 5;
  options.kinds = {CompatKind::kSPA, CompatKind::kNNE};
  auto points = RunFig2cd(ds, {2, 10}, options);
  ASSERT_EQ(points.size(), 4u);
  auto find = [&](CompatKind kind, uint32_t k) -> const Fig2cdPoint& {
    for (const auto& p : points) {
      if (p.kind == kind && p.task_size == k) return p;
    }
    ADD_FAILURE() << "missing point";
    return points[0];
  };
  // Strict relation: success at k=10 no better than at k=2.
  EXPECT_LE(find(CompatKind::kSPA, 10).solved_pct,
            find(CompatKind::kSPA, 2).solved_pct + 1e-9);
  // NNE stays near-perfect on a connected graph.
  EXPECT_GE(find(CompatKind::kNNE, 10).solved_pct, 90.0);
  // Diameter grows (weakly) with task size for NNE.
  EXPECT_GE(find(CompatKind::kNNE, 10).avg_diameter,
            find(CompatKind::kNNE, 2).avg_diameter - 1e-9);
}

TEST(Table3Test, StructureAndStrictZero) {
  Dataset ds = SmallEpinions();
  Table3Options options;
  options.num_tasks = 20;
  auto rows = RunTable3(ds, options);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].network, "Ignore sign");
  EXPECT_EQ(rows[1].network, "Delete negative");
  for (const auto& row : rows) {
    EXPECT_GT(row.teams_returned, 0u);
    ASSERT_EQ(row.compatible_pct.size(), options.kinds.size());
    for (const auto& [kind, pct] : row.compatible_pct) {
      EXPECT_GE(pct, 0.0);
      EXPECT_LE(pct, 100.0);
    }
    // Monotone along the relaxation chain (SPA <= SPM <= SPO <= SBPH <=
    // NNE): a team compatible under a strict relation stays compatible
    // under a relaxed one... except SBPH, whose heuristic is not a
    // superset of SPO in theory — but SPA <= SPM <= SPO must hold.
    EXPECT_LE(row.compatible_pct[0].second, row.compatible_pct[1].second);
    EXPECT_LE(row.compatible_pct[1].second, row.compatible_pct[2].second);
    EXPECT_LE(row.compatible_pct[3].second, row.compatible_pct[4].second);
  }
}

}  // namespace
}  // namespace tfsn
