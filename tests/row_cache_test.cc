// Tests for the kernel / cache / façade split: LRU eviction order, byte
// budgets, cross-thread hit counting, kernel-vs-façade row equality for
// every relation, the batched GetRows API under concurrency, and the
// propagation of SignedBfsResult::saturated through rows into
// CompatPairStats.

#include "src/compat/row_cache.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "src/compat/compatibility.h"
#include "src/compat/row_kernels.h"
#include "src/compat/stats.h"
#include "src/compat/threshold.h"
#include "src/gen/generators.h"
#include "src/graph/graph_builder.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

CompatRow TestRow(uint32_t n, uint8_t fill) {
  CompatRow row;
  row.comp.assign(n, fill);
  row.dist.assign(n, fill);
  return row;
}

// ---------------------------------------------------------------------------
// RowCache mechanics
// ---------------------------------------------------------------------------

TEST(RowCacheTest, HitMissAndCounters) {
  RowCache cache;
  EXPECT_EQ(cache.Get(1), nullptr);
  auto inserted = cache.Insert(1, TestRow(4, 7));
  ASSERT_NE(inserted, nullptr);
  auto hit = cache.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), inserted.get());
  RowCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.rows_in_use, 1u);
  EXPECT_GT(stats.bytes_in_use, 0u);
}

TEST(RowCacheTest, SnapshotCountersMatchStatsAndSubtract) {
  RowCache cache;
  cache.Insert(1, TestRow(4, 7));
  EXPECT_EQ(cache.Get(2), nullptr);  // miss
  cache.Get(1);                      // hit

  const RowCache::StatsSnapshot before = cache.SnapshotCounters();
  const RowCacheStats stats = cache.stats();
  EXPECT_EQ(before.hits, stats.hits);
  EXPECT_EQ(before.misses, stats.misses);
  EXPECT_EQ(before.evictions, stats.evictions);
  EXPECT_EQ(before.insertions, stats.insertions);
  EXPECT_DOUBLE_EQ(before.HitRate(), 0.5);

  // Window deltas via operator-: 3 hits, 1 miss in the window.
  cache.Get(1);
  cache.Get(1);
  cache.Get(1);
  cache.Get(3);
  const RowCache::StatsSnapshot window = cache.SnapshotCounters() - before;
  EXPECT_EQ(window.hits, 3u);
  EXPECT_EQ(window.misses, 1u);
  EXPECT_EQ(window.lookups(), 4u);
  EXPECT_DOUBLE_EQ(window.HitRate(), 0.75);
  EXPECT_DOUBLE_EQ((RowCache::StatsSnapshot{}).HitRate(), 0.0);
}

TEST(RowCacheTest, LruEvictionOrder) {
  RowCacheOptions options;
  options.max_rows = 2;
  options.max_bytes = 0;
  options.shards = 1;
  RowCache cache(options);
  cache.Insert(1, TestRow(4, 1));
  cache.Insert(2, TestRow(4, 2));
  ASSERT_NE(cache.Get(1), nullptr);  // refresh 1: now 2 is least recent
  cache.Insert(3, TestRow(4, 3));    // evicts 2, not 1
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().rows_in_use, 2u);
}

TEST(RowCacheTest, ByteBudgetEvicts) {
  const size_t row_bytes = TestRow(1000, 0).ByteSize();
  RowCacheOptions options;
  options.max_bytes = 3 * row_bytes;  // fits 3 rows, not 5
  options.shards = 1;
  RowCache cache(options);
  for (uint64_t key = 0; key < 5; ++key) {
    cache.Insert(key, TestRow(1000, 1));
  }
  RowCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_in_use, options.max_bytes);
  EXPECT_LE(stats.rows_in_use, 3u);
  // The most recent row always survives.
  EXPECT_NE(cache.Get(4), nullptr);
  EXPECT_EQ(cache.Get(0), nullptr);
}

TEST(RowCacheTest, EvictionNeverDropsTheOnlyRow) {
  RowCacheOptions options;
  options.max_bytes = 1;  // smaller than any row
  options.shards = 1;
  RowCache cache(options);
  auto row = cache.Insert(9, TestRow(100, 2));
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(cache.stats().rows_in_use, 1u);
  // A second insert evicts the first, keeping exactly the newest.
  cache.Insert(10, TestRow(100, 3));
  EXPECT_EQ(cache.stats().rows_in_use, 1u);
  EXPECT_EQ(cache.Get(9), nullptr);
  // The evicted row stays alive for holders of the shared_ptr.
  EXPECT_EQ(row->comp.size(), 100u);
}

TEST(RowCacheTest, InsertRaceKeepsFirstRow) {
  RowCache cache;
  auto first = cache.Insert(5, TestRow(8, 1));
  auto second = cache.Insert(5, TestRow(8, 2));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(second->comp[0], 1);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(RowCacheTest, ClearDropsRowsKeepsCounters) {
  RowCache cache;
  cache.Insert(1, TestRow(4, 1));
  cache.Get(1);
  cache.Clear();
  EXPECT_EQ(cache.Get(1), nullptr);
  RowCacheStats stats = cache.stats();
  EXPECT_EQ(stats.rows_in_use, 0u);
  EXPECT_EQ(stats.bytes_in_use, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(RowCacheTest, CrossThreadHitCounting) {
  RowCache cache;
  constexpr int kKeys = 16;
  for (uint64_t key = 0; key < kKeys; ++key) {
    cache.Insert(key, TestRow(32, static_cast<uint8_t>(key)));
  }
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 500;
  std::vector<std::thread> pool;
  std::atomic<int> wrong{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&cache, &wrong, t] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        uint64_t key = static_cast<uint64_t>((t + i) % kKeys);
        auto row = cache.Get(key);
        if (row == nullptr || row->comp[0] != static_cast<uint8_t>(key)) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(wrong.load(), 0);
  // No eviction pressure: every read is a hit and every hit is counted.
  EXPECT_EQ(cache.stats().hits,
            static_cast<uint64_t>(kThreads) * kReadsPerThread);
  EXPECT_EQ(cache.stats().misses, 0u);
}

// ---------------------------------------------------------------------------
// Tier 0 compression (see row_cache.h)
// ---------------------------------------------------------------------------

TEST(RowCacheTest, CompressedCacheKeepsIdentityWhilePinned) {
  RowCacheOptions options;
  options.compress = true;
  options.shards = 1;
  RowCache cache(options);
  auto inserted = cache.Insert(1, TestRow(64, 1));
  ASSERT_NE(inserted, nullptr);
  // While the insert's pointer is live, Get memoizes it — no decode.
  auto hit = cache.Get(1);
  EXPECT_EQ(hit.get(), inserted.get());
  EXPECT_EQ(cache.stats().decodes, 0u);

  // Drop every pin: the next Get must decode the blob — bit-identical
  // contents, a fresh allocation, and the decode counters move.
  const CompatRow dense = TestRow(64, 1);
  inserted.reset();
  hit.reset();
  auto decoded = cache.Get(1);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->comp, dense.comp);
  EXPECT_EQ(decoded->dist, dense.dist);
  const RowCacheStats stats = cache.stats();
  EXPECT_EQ(stats.decodes, 1u);
  EXPECT_GT(stats.decode_ns, 0u);
  // The resident form is the blob: the gauge is charged and far below
  // the dense footprint.
  EXPECT_GT(stats.compressed_bytes, 0u);
  EXPECT_LT(stats.compressed_bytes, dense.ByteSize());
  // Charged bytes = blob + a fixed per-entry overhead (well under 256).
  EXPECT_GE(stats.bytes_in_use, stats.compressed_bytes);
  EXPECT_LT(stats.bytes_in_use, stats.compressed_bytes + 256);
}

// The byte budget must govern what the cache actually holds resident —
// the satellite regression: with compression on, charged bytes are blob
// bytes (plus fixed entry overhead), and churn never overshoots the
// budget by more than the single-protected-row allowance.
TEST(RowCacheTest, CompressedByteBudgetHonoredUnderChurn) {
  RowCacheOptions options;
  options.compress = true;
  options.shards = 4;
  options.max_bytes = 64 * 1024;
  RowCache cache(options);
  Rng rng(131);
  for (int i = 0; i < 400; ++i) {
    // Ragged, incompressible-ish rows (random dist) of varying size.
    const uint32_t n = 50 + static_cast<uint32_t>(rng.Next() % 400);
    CompatRow row;
    row.comp.resize(n);
    row.dist.resize(n);
    for (uint32_t j = 0; j < n; ++j) {
      row.comp[j] = static_cast<uint8_t>(rng.Next() % 2);
      row.dist[j] = static_cast<uint32_t>(rng.Next() % 1000);
    }
    cache.Insert(static_cast<uint64_t>(i), std::move(row));
    if (i % 3 == 0) cache.Get(static_cast<uint64_t>(rng.Next() % (i + 1)));
    // Within 5% at every step: eviction runs to the budget, and the
    // "never evict the newest row" allowance cannot exceed one row per
    // shard.
    EXPECT_LE(cache.stats().bytes_in_use,
              static_cast<size_t>(options.max_bytes * 1.05))
        << "insert " << i;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(RowCacheTest, CompressedGaugeDrainsOnEvictionAndClear) {
  RowCacheOptions options;
  options.compress = true;
  options.shards = 1;
  options.max_rows = 2;
  options.max_bytes = 0;
  RowCache cache(options);
  for (uint64_t key = 0; key < 6; ++key) {
    cache.Insert(key, TestRow(128, 1));
  }
  const RowCacheStats mid = cache.stats();
  EXPECT_EQ(mid.rows_in_use, 2u);
  EXPECT_GT(mid.compressed_bytes, 0u);
  // The gauge tracks exactly the resident blobs — eviction released the
  // other four.
  EXPECT_GE(mid.bytes_in_use, mid.compressed_bytes);
  EXPECT_LT(mid.bytes_in_use, mid.compressed_bytes + 2 * 256);
  cache.Clear();
  EXPECT_EQ(cache.stats().compressed_bytes, 0u);
  EXPECT_EQ(cache.stats().bytes_in_use, 0u);
}

TEST(SharedCacheTest, OracleOverCompressedCacheMatchesFlat) {
  Rng rng(137);
  SignedGraph g = RandomConnectedGnm(36, 90, 0.3, &rng);
  RowCacheOptions options;
  options.compress = true;
  auto cache = std::make_shared<RowCache>(options);
  for (CompatKind kind : AllCompatKinds()) {
    auto tiered = MakeOracle(g, kind, {}, cache);
    auto flat = MakeOracle(g, kind, {});
    for (NodeId q = 0; q < g.num_nodes(); q += 4) {
      const auto& got = tiered->GetRow(q);
      const auto& want = flat->GetRow(q);
      EXPECT_EQ(got.comp, want.comp) << CompatKindName(kind) << " q=" << q;
      EXPECT_EQ(got.dist, want.dist) << CompatKindName(kind) << " q=" << q;
      EXPECT_EQ(got.saturated, want.saturated) << CompatKindName(kind);
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel vs façade equality — GetRow must be bit-identical to the kernels
// for every relation (the façade adds caching, never different rows).
// ---------------------------------------------------------------------------

TEST(RowKernelTest, KernelMatchesOracleRowForAllKinds) {
  Rng rng(61);
  SignedGraph g = RandomConnectedGnm(28, 64, 0.3, &rng);
  for (CompatKind kind : AllCompatKinds()) {
    OracleParams params;
    auto oracle = MakeOracle(g, kind, params);
    RowKernelParams kernel_params;
    kernel_params.sbp = params.sbp;
    kernel_params.sbph_max_depth = params.sbph_max_depth;
    for (NodeId q = 0; q < g.num_nodes(); q += 5) {
      CompatRow expected = ComputeCompatRow(g, kind, kernel_params, q);
      const auto& actual = oracle->GetRow(q);
      EXPECT_EQ(actual.comp, expected.comp) << CompatKindName(kind) << " q=" << q;
      EXPECT_EQ(actual.dist, expected.dist) << CompatKindName(kind) << " q=" << q;
      EXPECT_EQ(actual.saturated, expected.saturated) << CompatKindName(kind);
    }
  }
}

TEST(RowKernelTest, ThresholdKernelMatchesThresholdOracle) {
  Rng rng(67);
  SignedGraph g = RandomConnectedGnm(30, 80, 0.35, &rng);
  for (double theta : {0.0, 0.4, 1.0}) {
    auto oracle = MakeThresholdOracle(g, theta);
    RowKernelParams kernel_params;
    kernel_params.threshold_theta = theta;
    for (NodeId q = 0; q < g.num_nodes(); q += 7) {
      CompatRow expected = ComputeThresholdRow(g, kernel_params, q);
      const auto& actual = oracle->GetRow(q);
      EXPECT_EQ(actual.comp, expected.comp) << "theta=" << theta;
      EXPECT_EQ(actual.dist, expected.dist) << "theta=" << theta;
    }
  }
}

TEST(RowKernelTest, KernelsNormalizeReflexivity) {
  Rng rng(71);
  SignedGraph g = RandomConnectedGnm(20, 45, 0.4, &rng);
  RowKernelParams params;
  for (CompatKind kind : AllCompatKinds()) {
    CompatRow row = ComputeCompatRow(g, kind, params, 3);
    EXPECT_EQ(row.comp[3], 1) << CompatKindName(kind);
    EXPECT_EQ(row.dist[3], 0u) << CompatKindName(kind);
  }
}

// ---------------------------------------------------------------------------
// Façade over a shared cache
// ---------------------------------------------------------------------------

TEST(SharedCacheTest, OraclesShareRowsWithoutCrossKindCollisions) {
  Rng rng(73);
  SignedGraph g = RandomConnectedGnm(24, 50, 0.3, &rng);
  auto cache = std::make_shared<RowCache>();
  auto spm_a = MakeOracle(g, CompatKind::kSPM, {}, cache);
  auto spm_b = MakeOracle(g, CompatKind::kSPM, {}, cache);
  auto nne = MakeOracle(g, CompatKind::kNNE, {}, cache);

  const auto& row = spm_a->GetRow(2);
  EXPECT_EQ(spm_a->rows_computed(), 1u);
  // Same kind + params: the second oracle hits the shared row.
  EXPECT_EQ(spm_b->GetRow(2).comp, row.comp);
  EXPECT_EQ(spm_b->rows_computed(), 0u);
  // Different kind: distinct key space, must compute its own row.
  EXPECT_NE(nne->GetRow(2).comp, row.comp);
  EXPECT_EQ(nne->rows_computed(), 1u);
}

TEST(SharedCacheTest, GetRowReferenceSurvivesEviction) {
  Rng rng(79);
  SignedGraph g = RandomConnectedGnm(20, 40, 0.25, &rng);
  OracleParams params;
  params.max_cached_rows = 1;
  auto oracle = MakeOracle(g, CompatKind::kSPO, params);
  const auto& row0 = oracle->GetRow(0);
  std::vector<uint8_t> snapshot = row0.comp;
  oracle->GetRow(1);  // evicts row 0 from the cache
  oracle->GetRow(2);  // and again
  // The pinned reference is still readable and unchanged.
  EXPECT_EQ(row0.comp, snapshot);
}

TEST(SharedCacheTest, GetRowsBatchMatchesSerialAndDedupes) {
  Rng rng(83);
  SignedGraph g = RandomConnectedGnm(40, 100, 0.3, &rng);
  auto serial = MakeOracle(g, CompatKind::kSPA);
  auto batch = MakeOracle(g, CompatKind::kSPA);
  std::vector<NodeId> sources = {5, 9, 5, 13, 9, 0};
  auto rows = batch->GetRows(sources, /*threads=*/4);
  ASSERT_EQ(rows.size(), sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    ASSERT_NE(rows[i], nullptr);
    EXPECT_EQ(rows[i]->comp, serial->GetRow(sources[i]).comp) << i;
    EXPECT_EQ(rows[i]->dist, serial->GetRow(sources[i]).dist) << i;
  }
  // Duplicate sources resolve to the same row object, computed once.
  EXPECT_EQ(rows[0].get(), rows[2].get());
  EXPECT_EQ(rows[1].get(), rows[4].get());
  EXPECT_EQ(batch->rows_computed(), 4u);  // 4 distinct sources
  // A second batch is all hits.
  auto again = batch->GetRows(sources, /*threads=*/2);
  EXPECT_EQ(batch->rows_computed(), 4u);
  EXPECT_EQ(again[3]->comp, rows[3]->comp);
}

TEST(SharedCacheTest, ConcurrentGetRowsHammer) {
  Rng rng(89);
  SignedGraph g = RandomConnectedGnm(60, 150, 0.3, &rng);
  auto cache = std::make_shared<RowCache>();
  auto reference = MakeOracle(g, CompatKind::kSPM);

  std::vector<NodeId> all(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) all[u] = u;

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Each thread drives its own façade over the shared cache, batching
      // with a different internal worker count.
      CompatibilityOracle oracle(g, CompatKind::kSPM, {}, cache);
      auto rows = oracle.GetRows(all, /*threads=*/1 + (t % 3));
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (rows[u] == nullptr || rows[u]->comp.size() != g.num_nodes()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Every row agrees with a serial private-cache oracle.
  CompatibilityOracle check(g, CompatKind::kSPM, {}, cache);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(check.GetRow(u).comp, reference->GetRow(u).comp) << u;
  }
  // The cache holds one row per source; duplicated computes may happen
  // under racing (first insert wins) but hits must dominate.
  RowCacheStats stats = cache->stats();
  EXPECT_EQ(stats.rows_in_use, g.num_nodes());
  EXPECT_GT(stats.hits, 0u);
}

// ---------------------------------------------------------------------------
// Saturation propagation (satellite): rows -> CompatPairStats
// ---------------------------------------------------------------------------

// A ladder of positive diamonds: stage i doubles the number of shortest
// paths, so ~70 stages overflow the uint64 path counters.
SignedGraph DoublingLadder(uint32_t stages) {
  SignedGraphBuilder b(1 + 3 * stages);
  NodeId prev = 0;
  for (uint32_t i = 0; i < stages; ++i) {
    NodeId a = 1 + 3 * i, mid = a + 1, end = a + 2;
    b.AddEdge(prev, a, Sign::kPositive).CheckOK();
    b.AddEdge(prev, mid, Sign::kPositive).CheckOK();
    b.AddEdge(a, end, Sign::kPositive).CheckOK();
    b.AddEdge(mid, end, Sign::kPositive).CheckOK();
    prev = end;
  }
  return std::move(b.Build()).ValueOrDie();
}

TEST(SaturationTest, LadderSaturatesCountsAndPropagates) {
  SignedGraph g = DoublingLadder(70);
  RowKernelParams params;
  CompatRow row = ComputeSpaRow(g, params, 0);
  EXPECT_TRUE(row.saturated);
  // Short ladders stay exact.
  SignedGraph small = DoublingLadder(10);
  EXPECT_FALSE(ComputeSpaRow(small, params, 0).saturated);

  // End-to-end into the pair statistics.
  auto oracle = MakeOracle(g, CompatKind::kSPO);
  Rng rng(1);
  CompatPairStats stats = ComputeCompatPairStats(oracle.get(), 0, &rng);
  EXPECT_GT(stats.rows_saturated, 0u);
  EXPECT_LE(stats.rows_saturated, stats.sources_used);

  CompatPairStats parallel_stats = ComputeCompatPairStatsParallel(
      g, CompatKind::kSPO, OracleParams{}, 0, /*seed=*/1, /*threads=*/4);
  EXPECT_EQ(parallel_stats.rows_saturated, stats.rows_saturated);
}

TEST(SaturationTest, NonSpKernelsNeverSetSaturated) {
  Rng rng(97);
  SignedGraph g = RandomConnectedGnm(20, 40, 0.3, &rng);
  RowKernelParams params;
  for (CompatKind kind :
       {CompatKind::kDPE, CompatKind::kSBPH, CompatKind::kSBP,
        CompatKind::kNNE}) {
    EXPECT_FALSE(ComputeCompatRow(g, kind, params, 0).saturated)
        << CompatKindName(kind);
  }
}

}  // namespace
}  // namespace tfsn
