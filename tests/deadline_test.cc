// Deadline-aware serving under overload: admission control, EDF batch
// ordering, in-queue expiry shedding, the degradation ladder, and the
// shutdown promise guarantee.
//
// Determinism note: the tests that exercise *decisions* (admission,
// degradation) pin every live estimator through DeadlinePolicy's assume_*
// overrides, so they do not depend on machine speed. The overload test is
// the one timing-based test: it floods a single worker far past a small
// SLO and checks the contract the shedding exists for — accepted requests
// finish inside the budget (p99) while the excess is shed, not dropped.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/compat/skill_index.h"
#include "src/gen/generators.h"
#include "src/serve/admission_queue.h"
#include "src/serve/batcher.h"
#include "src/serve/server.h"
#include "src/serve/types.h"
#include "src/serve/workload.h"
#include "src/skills/skill_generator.h"
#include "src/team/greedy.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace tfsn::serve {
namespace {

constexpr auto kWatchdog = std::chrono::seconds(60);

struct Instance {
  SignedGraph graph;
  SkillAssignment skills;
};

Instance MakeInstance(uint64_t seed = 21) {
  Rng rng(seed);
  Instance inst{RandomConnectedGnm(80, 200, 0.25, &rng), {}};
  ZipfSkillParams sp;
  sp.num_skills = 15;
  inst.skills = ZipfSkills(80, sp, &rng);
  return inst;
}

struct Harness {
  Instance inst;
  std::shared_ptr<RowCache> cache;
  std::unique_ptr<CompatibilityOracle> oracle;  // index construction only
  std::unique_ptr<SkillCompatibilityIndex> index;

  Harness() : inst(MakeInstance()) {
    cache = std::make_shared<RowCache>();
    oracle = MakeOracle(inst.graph, CompatKind::kSPM, OracleParams{}, cache);
    Rng rng(3);
    index = std::make_unique<SkillCompatibilityIndex>(oracle.get(),
                                                      inst.skills, 0, &rng);
  }

  std::unique_ptr<TeamFormationServer> NewServer(ServerOptions options) {
    return std::make_unique<TeamFormationServer>(
        inst.graph, inst.skills, index.get(), CompatKind::kSPM, cache,
        std::move(options));
  }
};

std::vector<TeamRequest> MakeRequests(const Harness& h, uint32_t n,
                                      uint64_t deadline_us) {
  WorkloadOptions options;
  options.num_requests = n;
  options.task_size = 3;
  options.seed = 77;
  auto reqs = GenerateRequests(h.inst.skills, options);
  for (TeamRequest& req : reqs) req.deadline_us = deadline_us;
  return reqs;
}

// Forms every request directly — the exact reference.
std::vector<TeamResult> DirectReference(const Harness& h,
                                        const GreedyParams& params,
                                        const std::vector<TeamRequest>& reqs) {
  auto oracle = MakeOracle(h.inst.graph, CompatKind::kSPM);
  Rng idx_rng(3);
  SkillCompatibilityIndex index(oracle.get(), h.inst.skills, 0, &idx_rng);
  GreedyTeamFormer former(oracle.get(), h.inst.skills, &index, params);
  std::vector<TeamResult> out;
  out.reserve(reqs.size());
  for (const TeamRequest& req : reqs) {
    Rng rng(req.rng_seed);
    out.push_back(former.Form(req.task, &rng));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scheduler: EDF ordering and in-queue expiry shedding
// ---------------------------------------------------------------------------

ScheduledRequest Scheduled(uint64_t id, std::vector<SkillId> skills,
                           uint64_t seq, int64_t deadline_in_ms) {
  ScheduledRequest sr;
  sr.request.id = id;
  sr.request.task = Task(std::move(skills));
  sr.request.rng_seed = id;
  sr.admitted = std::chrono::steady_clock::now();
  sr.seq = seq;
  if (deadline_in_ms != 0) {
    sr.deadline = sr.admitted + std::chrono::milliseconds(deadline_in_ms);
  }
  return sr;
}

TEST(DeadlineSchedulerTest, EarliestDeadlineSeedsAndOrdersTheBatch) {
  // Six users holding skill 0: every request shares one footprint, so one
  // batch takes them all — ordered by deadline, not arrival.
  std::vector<std::vector<SkillId>> user_skills(6, std::vector<SkillId>{0});
  auto skills = SkillAssignment::Create(user_skills, 1);
  ASSERT_TRUE(skills.ok());

  BatchPolicy policy;
  policy.max_batch = 8;
  DeadlinePolicy deadline;
  deadline.shed = ShedMode::kQueue;
  BatchScheduler scheduler(*skills, false, policy, deadline);
  AdmissionQueue<ScheduledRequest> queue(16);
  // Arrival order 0,1,2 with deadlines 5s / 1s / 3s.
  ASSERT_TRUE(queue.Push(Scheduled(0, {0}, 0, 5000)).ok());
  ASSERT_TRUE(queue.Push(Scheduled(1, {0}, 1, 1000)).ok());
  ASSERT_TRUE(queue.Push(Scheduled(2, {0}, 2, 3000)).ok());
  queue.Close();

  RequestBatch batch;
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  ASSERT_EQ(batch.items.size(), 3u);
  EXPECT_EQ(batch.items[0].request.id, 1u);
  EXPECT_EQ(batch.items[1].request.id, 2u);
  EXPECT_EQ(batch.items[2].request.id, 0u);
  EXPECT_FALSE(scheduler.NextBatch(&queue, &batch));
}

TEST(DeadlineSchedulerTest, EarliestDeadlineWinsTheSeedAcrossFootprints) {
  // Two disjoint footprint clusters; the later arrival with the sooner
  // deadline must seed the first batch.
  std::vector<std::vector<SkillId>> user_skills(8);
  for (uint32_t u = 0; u < 4; ++u) user_skills[u] = {0};
  for (uint32_t u = 4; u < 8; ++u) user_skills[u] = {1};
  auto skills = SkillAssignment::Create(user_skills, 2);
  ASSERT_TRUE(skills.ok());

  BatchPolicy policy;
  policy.max_batch = 8;
  policy.min_jaccard = 0.3;
  BatchScheduler scheduler(*skills, false, policy,
                           DeadlinePolicy{.shed = ShedMode::kQueue});
  AdmissionQueue<ScheduledRequest> queue(16);
  ASSERT_TRUE(queue.Push(Scheduled(0, {0}, 0, 5000)).ok());
  ASSERT_TRUE(queue.Push(Scheduled(1, {1}, 1, 1000)).ok());
  queue.Close();

  RequestBatch batch;
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  ASSERT_EQ(batch.items.size(), 1u);
  EXPECT_EQ(batch.items[0].request.id, 1u);  // EDF beats FIFO
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(batch.items[0].request.id, 0u);
  EXPECT_FALSE(scheduler.NextBatch(&queue, &batch));
}

TEST(DeadlineSchedulerTest, DeadlineFreeTrafficKeepsFifoOrder) {
  // Without deadlines every request has deadline == +inf, so the seq
  // tie-break must reproduce the PR 5 FIFO anchor exactly.
  std::vector<std::vector<SkillId>> user_skills(6, std::vector<SkillId>{0});
  auto skills = SkillAssignment::Create(user_skills, 1);
  ASSERT_TRUE(skills.ok());
  BatchPolicy policy;
  policy.max_batch = 2;
  BatchScheduler scheduler(*skills, false, policy,
                           DeadlinePolicy{.shed = ShedMode::kQueue});
  AdmissionQueue<ScheduledRequest> queue(16);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.Push(Scheduled(i, {0}, i, 0)).ok());
  }
  queue.Close();
  RequestBatch batch;
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  ASSERT_EQ(batch.items.size(), 2u);
  EXPECT_EQ(batch.items[0].request.id, 0u);
  EXPECT_EQ(batch.items[1].request.id, 1u);
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(batch.items[0].request.id, 2u);
  EXPECT_EQ(batch.items[1].request.id, 3u);
}

TEST(DeadlineSchedulerTest, ExpiredInQueueIsShedWithTypedResponse) {
  std::vector<std::vector<SkillId>> user_skills(6, std::vector<SkillId>{0});
  auto skills = SkillAssignment::Create(user_skills, 1);
  ASSERT_TRUE(skills.ok());
  BatchPolicy policy;
  policy.max_batch = 8;
  BatchScheduler scheduler(*skills, false, policy,
                           DeadlinePolicy{.shed = ShedMode::kQueue});
  AdmissionQueue<ScheduledRequest> queue(16);

  ScheduledRequest expired = Scheduled(7, {0}, 0, -5);  // already past
  std::future<TeamResponse> expired_fut = expired.promise.get_future();
  ScheduledRequest live = Scheduled(8, {0}, 1, 5000);
  std::future<TeamResponse> live_fut = live.promise.get_future();
  ASSERT_TRUE(queue.Push(std::move(expired)).ok());
  ASSERT_TRUE(queue.Push(std::move(live)).ok());
  queue.Close();

  RequestBatch batch;
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  ASSERT_EQ(batch.items.size(), 1u);
  EXPECT_EQ(batch.items[0].request.id, 8u);
  EXPECT_EQ(scheduler.shed_count(), 1u);
  // The shed promise was fulfilled — typed, never dropped.
  ASSERT_EQ(expired_fut.wait_for(kWatchdog), std::future_status::ready);
  const TeamResponse resp = expired_fut.get();
  EXPECT_TRUE(resp.status.IsDeadlineExceeded());
  EXPECT_EQ(resp.id, 7u);
  EXPECT_FALSE(resp.result.found);
  (void)live_fut;  // never served here; its promise dies with the test
}

TEST(DeadlineSchedulerTest, ShedModeOffNeverSheds) {
  std::vector<std::vector<SkillId>> user_skills(6, std::vector<SkillId>{0});
  auto skills = SkillAssignment::Create(user_skills, 1);
  ASSERT_TRUE(skills.ok());
  BatchPolicy policy;
  policy.max_batch = 8;
  BatchScheduler scheduler(*skills, false, policy,
                           DeadlinePolicy{.shed = ShedMode::kOff});
  AdmissionQueue<ScheduledRequest> queue(16);
  ASSERT_TRUE(queue.Push(Scheduled(7, {0}, 0, -5)).ok());  // expired
  queue.Close();
  RequestBatch batch;
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  ASSERT_EQ(batch.items.size(), 1u);  // served exact-but-late, not shed
  EXPECT_EQ(scheduler.shed_count(), 0u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(DeadlineAdmissionTest, InfeasibleDeadlineRejectedWithRetryAfterHint) {
  Harness h;
  ServerOptions options;
  options.deadline.shed = ShedMode::kAdmission;
  options.deadline.assume_queue_us = 30000;
  options.deadline.assume_service_us = 20000;
  auto server = h.NewServer(options);

  TeamRequest req = MakeRequests(h, 1, /*deadline_us=*/10000)[0];
  std::future<TeamResponse> fut;
  const Status st = server->Submit(req, &fut);
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_NE(st.message().find("retry after"), std::string::npos)
      << st.ToString();
  // TrySubmit applies the same admission check.
  EXPECT_TRUE(server->TrySubmit(req, &fut).IsDeadlineExceeded());

  // A feasible budget (and a deadline-free request) both pass.
  req.deadline_us = 100000;
  EXPECT_TRUE(server->Submit(req, &fut).ok());
  EXPECT_TRUE(fut.get().status.ok());
  req.deadline_us = 0;
  EXPECT_TRUE(server->Submit(req, &fut).ok());
  EXPECT_TRUE(fut.get().status.ok());
  server->Shutdown();
}

TEST(DeadlineAdmissionTest, ShedModeOffAdmitsInfeasibleDeadlines) {
  Harness h;
  ServerOptions options;
  options.deadline.shed = ShedMode::kOff;
  options.deadline.assume_queue_us = 30000;
  options.deadline.assume_service_us = 20000;
  auto server = h.NewServer(options);
  TeamRequest req = MakeRequests(h, 1, /*deadline_us=*/10000)[0];
  std::future<TeamResponse> fut;
  EXPECT_TRUE(server->Submit(req, &fut).ok());  // advisory only
  EXPECT_TRUE(fut.get().status.ok());
  server->Shutdown();
}

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

TEST(DegradationTest, CompleteCacheOnlyViewStaysExactAndNonDegraded) {
  // Every row prewarmed + an unreachable full-path estimate: the worker
  // must take the cache-only tier for every request, find every row
  // resident, and return bit-identical, non-degraded teams.
  Harness h;
  {
    std::vector<NodeId> all;
    for (NodeId u = 0; u < h.inst.graph.num_nodes(); ++u) all.push_back(u);
    h.oracle->StreamRows(all, 2, [](size_t, const CompatRow&) {}, 64);
  }
  ServerOptions options;
  options.deadline.shed = ShedMode::kQueue;
  options.deadline.degrade = true;
  // Full path "costs" 2000s — everything degrades; budget is 1000s, so
  // nothing sheds and the oracle fallback (1µs estimate) is always funded.
  options.deadline.assume_build_us = 1000ull * 1000 * 1000;
  options.deadline.assume_service_us = 1;
  auto server = h.NewServer(options);

  const auto requests = MakeRequests(h, 40, /*deadline_us=*/1000ull * 1000 * 1000);
  WorkloadResult run = RunBurst(server.get(), requests);
  server->Shutdown();

  ASSERT_EQ(run.completed, requests.size());
  EXPECT_EQ(run.shed, 0u);
  EXPECT_EQ(run.degraded, 0u);  // complete views are exact
  const auto reference = DirectReference(h, server->options().greedy, requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(run.responses[i].status.ok());
    EXPECT_FALSE(run.responses[i].degraded);
    EXPECT_EQ(run.responses[i].result.members, reference[i].members)
        << "request " << i;
    EXPECT_EQ(run.responses[i].result.cost, reference[i].cost);
  }
  const ServerMetrics m = server->Metrics();
  EXPECT_EQ(m.degraded, 0u);
  EXPECT_EQ(m.shed, 0u);
}

TEST(DegradationTest, ColdCacheDegradesOrFallsBackButFulfillsEverything) {
  // Fresh, empty cache + unreachable full-path estimate: the cache-only
  // tier sees incomplete views. Every admitted promise must still be
  // fulfilled, degraded responses must be flagged and counted, and
  // responses that came out exact (oracle fallback) must match the
  // reference.
  Harness h;
  auto cold = std::make_shared<RowCache>();
  ServerOptions options;
  options.deadline.shed = ShedMode::kQueue;
  options.deadline.degrade = true;
  options.deadline.assume_build_us = 1000ull * 1000 * 1000;
  options.deadline.assume_service_us = 1;
  TeamFormationServer server(h.inst.graph, h.inst.skills, h.index.get(),
                             CompatKind::kSPM, cold, options);

  const auto requests = MakeRequests(h, 40, /*deadline_us=*/1000ull * 1000 * 1000);
  WorkloadResult run = RunBurst(&server, requests);
  server.Shutdown();

  ASSERT_EQ(run.responses.size(), requests.size());
  EXPECT_EQ(run.completed + run.shed + run.unavailable, run.submitted);
  uint64_t degraded_seen = 0;
  const auto reference = DirectReference(h, server.options().greedy, requests);
  for (const TeamResponse& resp : run.responses) {
    if (!resp.status.ok()) continue;
    if (resp.degraded) {
      ++degraded_seen;
      // Degraded teams are sound but need not match the exact answer;
      // they must at least be real teams.
      EXPECT_TRUE(resp.result.found);
    } else {
      // Exact tiers (complete cache-only view or oracle fallback) match
      // the direct former bit for bit.
      EXPECT_EQ(resp.result.members, reference[resp.id].members)
          << "request " << resp.id;
      EXPECT_EQ(resp.result.cost, reference[resp.id].cost);
    }
  }
  EXPECT_EQ(run.degraded, degraded_seen);
  EXPECT_EQ(server.Metrics().degraded, degraded_seen);
}

TEST(DegradationTest, DegradeOffShedsInsteadOfServingCheaperTiers) {
  // degrade = false with an unfundable full path: requests with deadlines
  // are shed, not served degraded.
  Harness h;
  ServerOptions options;
  options.deadline.shed = ShedMode::kQueue;
  options.deadline.degrade = false;
  auto server = h.NewServer(options);

  // Cost estimates start at zero (no assume_* overrides, empty EWMA), so
  // the front door admits everything; the 1µs budget then expires in the
  // queue before any worker can pick the request up, and with degrade
  // off there is no cheaper tier to fall back to — every request must
  // come back as a typed queue-tier shed.
  const auto requests = MakeRequests(h, 20, /*deadline_us=*/1);
  WorkloadResult run = RunBurst(server.get(), requests);
  server->Shutdown();
  ASSERT_EQ(run.responses.size(), requests.size());
  // With a 1µs budget every request expires before service.
  EXPECT_EQ(run.shed, requests.size());
  EXPECT_EQ(run.degraded, 0u);
  for (const TeamResponse& resp : run.responses) {
    EXPECT_TRUE(resp.status.IsDeadlineExceeded());
  }
}

// ---------------------------------------------------------------------------
// Overload regression: accepted requests meet the SLO, the excess sheds
// ---------------------------------------------------------------------------

TEST(OverloadTest, AcceptedP99WithinBudgetWhileShedAbsorbsExcess) {
  Harness h;
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 4096;
  options.batch.max_batch = 8;
  options.deadline.shed = ShedMode::kQueue;
  options.deadline.degrade = true;
  // TSan slows every lock/atomic op ~10x, which breaks the "assumed cost
  // is conservative vs real cost" premise below; scale the whole scenario
  // up under instrumentation so the premise holds again.
  constexpr uint64_t kSlowdown =
#if defined(__SANITIZE_THREAD__)
      10;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
      10;
#else
      1;
#endif
#else
      1;
#endif
  // Conservative tier estimates (well above the real per-request cost on
  // this 80-node instance): a request within 4ms of its deadline degrades,
  // within 2ms of it sheds — so nothing served can overshoot the budget
  // unless the machine stalls longer than the margin.
  options.deadline.assume_build_us = 2000 * kSlowdown;
  options.deadline.assume_service_us = 2000 * kSlowdown;
  auto server = h.NewServer(options);

  constexpr uint64_t kBudgetUs = 20000 * kSlowdown;  // 20ms SLO
  const auto requests = MakeRequests(h, 1500, kBudgetUs);
  WorkloadResult run = RunBurst(server.get(), requests);
  server->Shutdown();

  // Every admitted promise fulfilled; the stream overloads one worker far
  // past 20ms of queueing, so a nonzero tail must shed.
  ASSERT_EQ(run.responses.size(), requests.size());
  EXPECT_EQ(run.completed + run.shed + run.unavailable, run.submitted);
  EXPECT_GT(run.shed, 0u) << "burst did not overload the worker";
  EXPECT_GT(run.completed, 0u);

  // p99 of accepted-request TOTAL latency (queue + service) within SLO.
  std::vector<uint64_t> accepted_total;
  for (const TeamResponse& resp : run.responses) {
    if (resp.status.ok()) accepted_total.push_back(resp.total_us);
  }
  std::sort(accepted_total.begin(), accepted_total.end());
  const uint64_t p99 =
      accepted_total[(accepted_total.size() * 99) / 100 == accepted_total.size()
                         ? accepted_total.size() - 1
                         : (accepted_total.size() * 99) / 100];
  EXPECT_LE(p99, kBudgetUs) << "accepted requests violated their SLO";

  const ServerMetrics m = server->Metrics();
  EXPECT_EQ(m.shed, run.shed);
  EXPECT_EQ(m.completed, run.completed);
}

// ---------------------------------------------------------------------------
// Shutdown under load: every admitted promise resolves
// ---------------------------------------------------------------------------

TEST(ShutdownTest, ShutdownUnderLoadFulfillsEveryAdmittedPromise) {
  Harness h;
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 2048;
  options.deadline.shed = ShedMode::kQueue;
  auto server = h.NewServer(options);

  const auto requests = MakeRequests(h, 300, /*deadline_us=*/0);
  std::vector<std::future<TeamResponse>> futures;
  futures.reserve(requests.size());
  for (const TeamRequest& req : requests) {
    std::future<TeamResponse> fut;
    const Status st = server->Submit(req, &fut);
    if (st.IsUnavailable()) break;
    ASSERT_TRUE(st.ok());
    futures.push_back(std::move(fut));
  }
  // Shut down concurrently with service, from another thread.
  std::thread closer([&server] { server->Shutdown(); });
  // Watchdog: every admitted future must become ready — no promise may
  // block forever, whatever the shutdown raced with.
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(kWatchdog), std::future_status::ready)
        << "future " << i << " blocked through shutdown";
    const TeamResponse resp = futures[i].get();
    EXPECT_TRUE(resp.status.ok() || resp.status.IsUnavailable() ||
                resp.status.IsDeadlineExceeded())
        << resp.status.ToString();
  }
  closer.join();
  // After shutdown the front door refuses with the typed code.
  std::future<TeamResponse> fut;
  EXPECT_TRUE(server->Submit(requests[0], &fut).IsUnavailable());
}

}  // namespace
}  // namespace tfsn::serve
