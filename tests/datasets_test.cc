#include "src/data/datasets.h"

#include <gtest/gtest.h>

#include "src/graph/components.h"
#include "src/graph/graph_builder.h"
#include "src/graph/graph_io.h"

namespace tfsn {
namespace {

TEST(DatasetTest, SlashdotMatchesTable1) {
  Dataset ds = MakeSlashdot();
  EXPECT_EQ(ds.name, "Slashdot");
  EXPECT_EQ(ds.graph.num_nodes(), 214u);
  EXPECT_EQ(ds.graph.num_edges(), 304u);
  EXPECT_TRUE(IsConnected(ds.graph));
  EXPECT_NEAR(ds.graph.negative_fraction(), 0.292, 0.08);
  EXPECT_EQ(ds.skills.num_skills(), 1024u);
  EXPECT_EQ(ds.skills.num_users(), 214u);
}

TEST(DatasetTest, ScaledEpinionsShrinksProportionally) {
  DatasetOptions options;
  options.scale = 0.02;
  Dataset ds = MakeEpinions(options);
  EXPECT_EQ(ds.graph.num_nodes(), 577u);  // 28854 * 0.02
  EXPECT_NEAR(static_cast<double>(ds.graph.num_edges()), 208778 * 0.02, 5.0);
  EXPECT_TRUE(IsConnected(ds.graph));
  EXPECT_EQ(ds.skills.num_skills(), 523u);
}

TEST(DatasetTest, ScaledWikipediaConnected) {
  DatasetOptions options;
  options.scale = 0.05;
  Dataset ds = MakeWikipedia(options);
  EXPECT_TRUE(IsConnected(ds.graph));
  EXPECT_NEAR(ds.graph.negative_fraction(), 0.215, 0.05);
  EXPECT_EQ(ds.skills.num_skills(), 500u);
}

TEST(DatasetTest, ByNameLookup) {
  DatasetOptions options;
  options.scale = 0.02;
  auto ds = MakeDatasetByName("EPINIONS", options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->name, "Epinions");
  EXPECT_FALSE(MakeDatasetByName("bogus").ok());
  EXPECT_EQ(DatasetNames().size(), 3u);
}

TEST(DatasetTest, DeterministicAcrossCalls) {
  Dataset a = MakeSlashdot();
  Dataset b = MakeSlashdot();
  EXPECT_EQ(a.graph.Edges(), b.graph.Edges());
  EXPECT_EQ(a.skills.num_assignments(), b.skills.num_assignments());
}

TEST(DatasetTest, SeedChangesGraph) {
  DatasetOptions options;
  options.seed = 999;
  Dataset a = MakeSlashdot();
  Dataset b = MakeSlashdot(options);
  EXPECT_NE(a.graph.Edges(), b.graph.Edges());
}

TEST(DatasetTest, LoadFromEdgeListRestrictsToLcc) {
  std::string path = testing::TempDir() + "/tfsn_dataset.edges";
  // Two components: {0,1,2} and {3,4}.
  SignedGraphBuilder b(5);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kNegative).CheckOK();
  b.AddEdge(3, 4, Sign::kPositive).CheckOK();
  ASSERT_TRUE(WriteEdgeList(std::move(b.Build()).ValueOrDie(), path).ok());
  auto ds = LoadDatasetFromEdgeList(path, /*num_skills=*/10);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->graph.num_nodes(), 3u);
  EXPECT_EQ(ds->skills.num_users(), 3u);
  EXPECT_EQ(ds->skills.num_skills(), 10u);
}

TEST(DatasetTest, LoadFromMissingFileFails) {
  EXPECT_FALSE(LoadDatasetFromEdgeList("/no/such/file", 10).ok());
}

}  // namespace
}  // namespace tfsn
