// Tests for the exact SBP search and the SBPH heuristic, including both
// worked examples from Figure 1 of the paper.

#include "src/compat/sbp.h"

#include <gtest/gtest.h>

#include "paper_figures.h"
#include "src/gen/generators.h"
#include "src/graph/balance.h"
#include "src/graph/graph_builder.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

using testgraphs::Figure1a;
using testgraphs::Figure1b;

TEST(SbpExactTest, DirectPositiveEdgeIsCompatible) {
  SignedGraphBuilder b(2);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SbpExactSearch search(g);
  EXPECT_TRUE(search.Compatible(0, 1));
  auto r = search.ShortestBalancedPath(0, 1, Sign::kPositive);
  ASSERT_TRUE(r.length.has_value());
  EXPECT_EQ(*r.length, 1u);
}

TEST(SbpExactTest, DirectNegativeEdgeIsIncompatible) {
  // Even with a positive detour, the negative edge (0,1) is a chord of any
  // 0-1 path, so no positive balanced path can exist.
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kNegative).CheckOK();
  b.AddEdge(0, 2, Sign::kPositive).CheckOK();
  b.AddEdge(2, 1, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SbpExactSearch search(g);
  EXPECT_FALSE(search.Compatible(0, 1));
}

TEST(SbpExactTest, Figure1aCompatibleWithLength4) {
  SignedGraph g = Figure1a();
  using namespace testgraphs;
  SbpExactSearch search(g);
  EXPECT_TRUE(search.Compatible(kU, kV));
  auto r = search.ShortestBalancedPath(kU, kV, Sign::kPositive);
  ASSERT_TRUE(r.length.has_value());
  EXPECT_EQ(*r.length, 4u);  // (u,x2,x3,x4,v)
  EXPECT_EQ(r.witness.front(), kU);
  EXPECT_EQ(r.witness.back(), kV);
  EXPECT_TRUE(IsPathBalanced(g, r.witness));
  EXPECT_EQ(*g.PathSign(r.witness), Sign::kPositive);
}

TEST(SbpExactTest, Figure1bCompatibleViaNonPrefixPath) {
  SignedGraph g = Figure1b();
  using namespace testgraphs;
  SbpExactSearch search(g);
  EXPECT_TRUE(search.Compatible(kBU, kBV));
  auto r = search.ShortestBalancedPath(kBU, kBV, Sign::kPositive);
  ASSERT_TRUE(r.length.has_value());
  EXPECT_EQ(*r.length, 5u);  // (u,x1,x2,x4,x5,v)
  EXPECT_TRUE(IsPathBalanced(g, r.witness));
}

TEST(SbpExactTest, NegativeTargetSign) {
  SignedGraph g = Figure1a();
  using namespace testgraphs;
  SbpExactSearch search(g);
  auto r = search.ShortestBalancedPath(kU, kV, Sign::kNegative);
  ASSERT_TRUE(r.length.has_value());
  EXPECT_EQ(*r.length, 2u);  // (u,x1,v) is negative and balanced
  EXPECT_EQ(*g.PathSign(r.witness), Sign::kNegative);
}

TEST(SbpExactTest, DisconnectedPairNotFound) {
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SbpExactSearch search(g);
  auto r = search.ShortestBalancedPath(0, 3, Sign::kPositive);
  EXPECT_FALSE(r.length.has_value());
  EXPECT_FALSE(r.exhausted);
}

TEST(SbpExactTest, DepthCapBlocksLongPaths) {
  // 0-1-2-3-4 positive chain: the only 0-4 path has length 4.
  SignedGraphBuilder b(5);
  for (NodeId i = 0; i + 1 < 5; ++i) {
    b.AddEdge(i, i + 1, Sign::kPositive).CheckOK();
  }
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SbpExactParams params;
  params.max_depth = 3;
  SbpExactSearch search(g, params);
  EXPECT_FALSE(search.ShortestBalancedPath(0, 4, Sign::kPositive)
                   .length.has_value());
  params.max_depth = 4;
  SbpExactSearch deeper(g, params);
  EXPECT_TRUE(deeper.ShortestBalancedPath(0, 4, Sign::kPositive)
                  .length.has_value());
}

TEST(SbpExactTest, WitnessIsSimplePath) {
  Rng rng(41);
  SignedGraph g = RandomConnectedGnm(30, 70, 0.3, &rng);
  SbpExactSearch search(g);
  for (NodeId v = 1; v < 10; ++v) {
    auto r = search.ShortestBalancedPath(0, v, Sign::kPositive);
    if (!r.length.has_value()) continue;
    std::vector<NodeId> sorted = r.witness;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "witness revisits a node";
    EXPECT_TRUE(IsPathBalanced(g, r.witness));
    EXPECT_EQ(*g.PathSign(r.witness), Sign::kPositive);
  }
}

TEST(SbphTest, SourceDistZero) {
  SignedGraph g = Figure1a();
  SbphResult r = SbphFromSource(g, testgraphs::kU);
  EXPECT_EQ(r.pos_dist[testgraphs::kU], 0u);
  EXPECT_EQ(r.neg_dist[testgraphs::kU], kUnreachable);
}

TEST(SbphTest, Figure1aFindsTheBalancedPath) {
  SignedGraph g = Figure1a();
  using namespace testgraphs;
  SbphResult r = SbphFromSource(g, kU);
  // The heuristic reaches v positively via (u,x2,x3,x4,v)...
  EXPECT_EQ(r.pos_dist[kV], 4u);
  // ...and negatively via (u,x1,v).
  EXPECT_EQ(r.neg_dist[kV], 2u);
}

TEST(SbphTest, Figure1bHeuristicMissesWhatExactFinds) {
  // The paper's Figure 1(b): the balanced positive u-v path exists but does
  // not have the prefix property, so SBPH must miss it.
  SignedGraph g = Figure1b();
  using namespace testgraphs;
  SbphResult r = SbphFromSource(g, kBU);
  EXPECT_EQ(r.pos_dist[kBV], kUnreachable);  // heuristic miss
  SbpExactSearch exact(g);
  EXPECT_TRUE(exact.Compatible(kBU, kBV));   // exact hit
}

TEST(SbphTest, NeverClaimsMoreThanExact) {
  // Soundness: every pair SBPH reports compatible is SBP-compatible, and
  // the heuristic distance upper-bounds the exact distance.
  Rng rng(43);
  for (int trial = 0; trial < 8; ++trial) {
    SignedGraph g = RandomConnectedGnm(24, 50, 0.35, &rng);
    SbpExactSearch exact(g);
    for (NodeId q = 0; q < 4; ++q) {
      SbphResult h = SbphFromSource(g, q);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (v == q || h.pos_dist[v] == kUnreachable) continue;
        auto r = exact.ShortestBalancedPath(q, v, Sign::kPositive);
        ASSERT_TRUE(r.length.has_value())
            << "SBPH claims balanced positive path " << q << "->" << v
            << " that exact search cannot find";
        EXPECT_LE(*r.length, h.pos_dist[v]);
      }
    }
  }
}

TEST(SbphTest, DirectEdgesRespected) {
  Rng rng(47);
  SignedGraph g = RandomConnectedGnm(40, 120, 0.4, &rng);
  for (NodeId q = 0; q < 6; ++q) {
    SbphResult r = SbphFromSource(g, q);
    for (const Neighbor& nb : g.Neighbors(q)) {
      if (nb.sign == Sign::kPositive) {
        EXPECT_EQ(r.pos_dist[nb.to], 1u);
      } else {
        // Negative edge: no positive balanced path may exist at all.
        EXPECT_EQ(r.pos_dist[nb.to], kUnreachable);
      }
    }
  }
}

TEST(SbphTest, MaxDepthBounds) {
  SignedGraphBuilder b(5);
  for (NodeId i = 0; i + 1 < 5; ++i) {
    b.AddEdge(i, i + 1, Sign::kPositive).CheckOK();
  }
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SbphResult r = SbphFromSource(g, 0, /*max_depth=*/2);
  EXPECT_EQ(r.pos_dist[2], 2u);
  EXPECT_EQ(r.pos_dist[3], kUnreachable);
}

TEST(SbphTest, AllPositiveGraphMatchesBfs) {
  // With no negative edges every path is positive and balanced, so SBPH
  // distance equals plain BFS distance.
  Rng rng(53);
  SignedGraph g = RandomConnectedGnm(50, 120, 0.0, &rng);
  for (NodeId q = 0; q < 5; ++q) {
    SbphResult r = SbphFromSource(g, q);
    auto bfs = BfsDistances(g, q);
    EXPECT_EQ(r.pos_dist, bfs);
  }
}

TEST(SbpExactTest, AllPositiveGraphDistanceMatchesBfs) {
  Rng rng(59);
  SignedGraph g = RandomConnectedGnm(25, 60, 0.0, &rng);
  SbpExactSearch search(g);
  auto bfs = BfsDistances(g, 0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    auto r = search.ShortestBalancedPath(0, v, Sign::kPositive);
    ASSERT_TRUE(r.length.has_value());
    EXPECT_EQ(*r.length, bfs[v]);
  }
}

TEST(SbpExactTest, BalancedGraphAllSameFactionCompatible) {
  // In an exactly balanced graph, u and v in the same faction are always
  // SBP-compatible (any path staying consistent exists); cross-faction
  // pairs are never positively connected by a balanced path.
  Rng rng(61);
  SignedGraph g = RandomBalancedGraph(20, 60, &rng);
  BalanceCheck check = CheckBalance(g);
  ASSERT_TRUE(check.balanced);
  SbpExactSearch search(g);
  int same = 0, cross = 0;
  // Sample pairs across the whole graph so both factions are hit.
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      bool compatible = search.Compatible(u, v);
      if (check.side[u] == check.side[v]) {
        EXPECT_TRUE(compatible) << u << "," << v;
        ++same;
      } else {
        EXPECT_FALSE(compatible) << u << "," << v;
        ++cross;
      }
    }
  }
  EXPECT_GT(same, 0);
  EXPECT_GT(cross, 0);
}

}  // namespace
}  // namespace tfsn
