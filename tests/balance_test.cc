#include "src/graph/balance.h"

#include <gtest/gtest.h>

#include "paper_figures.h"
#include "src/gen/generators.h"
#include "src/graph/graph_builder.h"
#include "src/graph/transform.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

SignedGraph MakeTriangle(Sign a, Sign b, Sign c) {
  SignedGraphBuilder builder(3);
  builder.AddEdge(0, 1, a).CheckOK();
  builder.AddEdge(1, 2, b).CheckOK();
  builder.AddEdge(0, 2, c).CheckOK();
  return std::move(builder.Build()).ValueOrDie();
}

TEST(BalanceTest, AllPositiveTriangleIsBalanced) {
  auto g = MakeTriangle(Sign::kPositive, Sign::kPositive, Sign::kPositive);
  EXPECT_TRUE(CheckBalance(g).balanced);
}

TEST(BalanceTest, TwoNegativesTriangleIsBalanced) {
  auto g = MakeTriangle(Sign::kNegative, Sign::kNegative, Sign::kPositive);
  EXPECT_TRUE(CheckBalance(g).balanced);
}

TEST(BalanceTest, OneNegativeTriangleIsUnbalanced) {
  auto g = MakeTriangle(Sign::kPositive, Sign::kPositive, Sign::kNegative);
  EXPECT_FALSE(CheckBalance(g).balanced);
}

TEST(BalanceTest, AllNegativeTriangleIsUnbalanced) {
  auto g = MakeTriangle(Sign::kNegative, Sign::kNegative, Sign::kNegative);
  EXPECT_FALSE(CheckBalance(g).balanced);
}

TEST(BalanceTest, BalancedWitnessHasZeroFrustration) {
  Rng rng(5);
  SignedGraph g = RandomBalancedGraph(60, 150, &rng);
  BalanceCheck check = CheckBalance(g);
  ASSERT_TRUE(check.balanced);
  EXPECT_EQ(Frustration(g, check.side), 0u);
}

TEST(BalanceTest, PlantedPartitionWithNoiseUsuallyUnbalanced) {
  Rng rng(6);
  SignedGraph g = PlantedPartitionSigned(80, 300, /*noise=*/0.2, &rng);
  // With 300 edges and 20% flips, odd cycles are essentially certain.
  EXPECT_FALSE(CheckBalance(g).balanced);
}

TEST(BalanceTest, TreeIsAlwaysBalanced) {
  // Any tree is balanced regardless of signs (no cycles at all).
  Rng rng(7);
  SignedGraph g = RandomConnectedGnm(50, 49, 0.5, &rng);
  EXPECT_TRUE(CheckBalance(g).balanced);
}

TEST(BalanceTest, PathSidesFlipOnNegativeEdges) {
  SignedGraph g = testgraphs::Figure1a();
  using namespace testgraphs;
  std::vector<NodeId> path{kU, kX2, kX3, kX4, kV};
  auto sides = PathSides(g, path);
  // Signs along path: +, -, -, + => sides +1, +1, -1, +1, +1.
  EXPECT_EQ(sides, (std::vector<Side>{+1, +1, -1, +1, +1}));
}

TEST(BalanceTest, Figure1aBalancedPath) {
  SignedGraph g = testgraphs::Figure1a();
  using namespace testgraphs;
  std::vector<NodeId> good{kU, kX2, kX3, kX4, kV};
  EXPECT_TRUE(IsPathBalanced(g, good));
  // (u,x2,x1,v) is positive but unbalanced: chord (u,x1) is negative while
  // both endpoints are on the same side.
  std::vector<NodeId> bad{kU, kX2, kX1, kV};
  EXPECT_FALSE(IsPathBalanced(g, bad));
}

TEST(BalanceTest, Figure1bUnbalancedRoute) {
  SignedGraph g = testgraphs::Figure1b();
  using namespace testgraphs;
  std::vector<NodeId> bad{kBU, kBX3, kBX4, kBX5, kBV};
  EXPECT_FALSE(IsPathBalanced(g, bad));  // chord (x3,x5) is negative
  std::vector<NodeId> good{kBU, kBX1, kBX2, kBX4, kBX5, kBV};
  EXPECT_TRUE(IsPathBalanced(g, good));
  std::vector<NodeId> prefix{kBU, kBX3, kBX4};
  EXPECT_TRUE(IsPathBalanced(g, prefix));
}

TEST(BalanceTest, SingleEdgePathAlwaysBalanced) {
  SignedGraph g = MakeTriangle(Sign::kNegative, Sign::kNegative,
                               Sign::kNegative);
  std::vector<NodeId> path{0, 1};
  EXPECT_TRUE(IsPathBalanced(g, path));
}

TEST(TriangleCensusTest, CountsByPattern) {
  auto g = MakeTriangle(Sign::kPositive, Sign::kPositive, Sign::kNegative);
  TriangleCensus census = CountTriangles(g);
  EXPECT_EQ(census.total(), 1u);
  EXPECT_EQ(census.ppn, 1u);
  EXPECT_EQ(census.balanced(), 0u);
  EXPECT_DOUBLE_EQ(census.balance_ratio(), 0.0);
}

TEST(TriangleCensusTest, K4AllPositive) {
  SignedGraphBuilder b(4);
  for (NodeId i = 0; i < 4; ++i) {
    for (NodeId j = i + 1; j < 4; ++j) {
      b.AddEdge(i, j, Sign::kPositive).CheckOK();
    }
  }
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  TriangleCensus census = CountTriangles(g);
  EXPECT_EQ(census.total(), 4u);
  EXPECT_EQ(census.ppp, 4u);
  EXPECT_DOUBLE_EQ(census.balance_ratio(), 1.0);
}

TEST(TriangleCensusTest, NoTriangles) {
  Rng rng(8);
  SignedGraph g = RandomConnectedGnm(20, 19, 0.3, &rng);  // a tree
  EXPECT_EQ(CountTriangles(g).total(), 0u);
  EXPECT_DOUBLE_EQ(CountTriangles(g).balance_ratio(), 1.0);
}

TEST(TriangleCensusTest, BalancedGraphHasNoUnbalancedTriangles) {
  Rng rng(9);
  SignedGraph g = RandomBalancedGraph(40, 200, &rng);
  EXPECT_EQ(CountTriangles(g).unbalanced(), 0u);
}

TEST(FrustrationTest, FlippingOneNodeAddsItsCut) {
  Rng rng(10);
  SignedGraph g = RandomBalancedGraph(30, 80, &rng);
  BalanceCheck check = CheckBalance(g);
  ASSERT_TRUE(check.balanced);
  std::vector<Side> side = check.side;
  side[0] = static_cast<Side>(-side[0]);
  EXPECT_EQ(Frustration(g, side), g.Degree(0));
}

}  // namespace
}  // namespace tfsn
