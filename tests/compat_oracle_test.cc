// Property suite over all compatibility oracles: the Section 2 axioms
// (positive-edge compatibility, negative-edge incompatibility, reflexivity,
// symmetry) and the Proposition 3.5 inclusion chain, checked on a family
// of random signed graphs.

#include "src/compat/compatibility.h"

#include <gtest/gtest.h>

#include "paper_figures.h"
#include "src/compat/stats.h"
#include "src/gen/generators.h"
#include "src/graph/bfs.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

// ---------------------------------------------------------------------------
// Axioms, parameterized over (kind, graph seed)
// ---------------------------------------------------------------------------

struct AxiomCase {
  CompatKind kind;
  uint64_t seed;
  double neg_fraction;
};

class OracleAxiomTest : public testing::TestWithParam<AxiomCase> {};

TEST_P(OracleAxiomTest, SatisfiesCompatibilityAxioms) {
  const AxiomCase& param = GetParam();
  Rng rng(param.seed);
  SignedGraph g = RandomConnectedGnm(28, 64, param.neg_fraction, &rng);
  auto oracle = MakeOracle(g, param.kind);

  // Positive edge compatibility & negative edge incompatibility.
  for (const SignedEdge& e : g.Edges()) {
    if (e.sign == Sign::kPositive) {
      EXPECT_TRUE(oracle->Compatible(e.u, e.v))
          << CompatKindName(param.kind) << ": positive edge (" << e.u << ","
          << e.v << ") must be compatible";
    } else {
      EXPECT_FALSE(oracle->Compatible(e.u, e.v))
          << CompatKindName(param.kind) << ": negative edge (" << e.u << ","
          << e.v << ") must be incompatible";
    }
  }
  // Reflexivity and symmetry.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_TRUE(oracle->Compatible(u, u));
  }
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 3) {
      EXPECT_EQ(oracle->Compatible(u, v), oracle->Compatible(v, u))
          << CompatKindName(param.kind) << " symmetry at (" << u << "," << v
          << ")";
    }
  }
}

std::vector<AxiomCase> AxiomCases() {
  std::vector<AxiomCase> cases;
  for (CompatKind kind : AllCompatKinds()) {
    for (uint64_t seed : {11ULL, 22ULL, 33ULL}) {
      for (double neg : {0.15, 0.45}) {
        cases.push_back({kind, seed, neg});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, OracleAxiomTest, testing::ValuesIn(AxiomCases()),
    [](const testing::TestParamInfo<AxiomCase>& info) {
      return std::string(CompatKindName(info.param.kind)) + "_s" +
             std::to_string(info.param.seed) + "_n" +
             std::to_string(static_cast<int>(info.param.neg_fraction * 100));
    });

// ---------------------------------------------------------------------------
// Proposition 3.5 inclusion chain
// ---------------------------------------------------------------------------

class InclusionChainTest : public testing::TestWithParam<uint64_t> {};

TEST_P(InclusionChainTest, Proposition35Holds) {
  Rng rng(GetParam());
  SignedGraph g = RandomConnectedGnm(26, 60, 0.3, &rng);
  // DPE ⊆ SPA ⊆ SPM ⊆ SPO ⊆ SBP ⊆ NNE, plus SBPH ⊆ SBP.
  auto dpe = MakeOracle(g, CompatKind::kDPE);
  auto spa = MakeOracle(g, CompatKind::kSPA);
  auto spm = MakeOracle(g, CompatKind::kSPM);
  auto spo = MakeOracle(g, CompatKind::kSPO);
  auto sbph = MakeOracle(g, CompatKind::kSBPH);
  auto sbp = MakeOracle(g, CompatKind::kSBP);
  auto nne = MakeOracle(g, CompatKind::kNNE);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      bool in_dpe = dpe->Compatible(u, v);
      bool in_spa = spa->Compatible(u, v);
      bool in_spm = spm->Compatible(u, v);
      bool in_spo = spo->Compatible(u, v);
      bool in_sbph = sbph->Compatible(u, v);
      bool in_sbp = sbp->Compatible(u, v);
      bool in_nne = nne->Compatible(u, v);
      EXPECT_LE(in_dpe, in_spa) << "DPE ⊆ SPA at (" << u << "," << v << ")";
      EXPECT_LE(in_spa, in_spm) << "SPA ⊆ SPM at (" << u << "," << v << ")";
      EXPECT_LE(in_spm, in_spo) << "SPM ⊆ SPO at (" << u << "," << v << ")";
      EXPECT_LE(in_spo, in_sbp) << "SPO ⊆ SBP at (" << u << "," << v << ")";
      EXPECT_LE(in_sbph, in_sbp) << "SBPH ⊆ SBP at (" << u << "," << v << ")";
      EXPECT_LE(in_sbp, in_nne) << "SBP ⊆ NNE at (" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InclusionChainTest,
                         testing::Values(7ULL, 77ULL, 777ULL, 7777ULL));

// ---------------------------------------------------------------------------
// Targeted oracle behaviour
// ---------------------------------------------------------------------------

TEST(OracleTest, KindAndNames) {
  Rng rng(1);
  SignedGraph g = RandomConnectedGnm(10, 15, 0.2, &rng);
  for (CompatKind kind : AllCompatKinds()) {
    auto oracle = MakeOracle(g, kind);
    EXPECT_EQ(oracle->kind(), kind);
  }
  CompatKind parsed;
  EXPECT_TRUE(ParseCompatKind("spm", &parsed));
  EXPECT_EQ(parsed, CompatKind::kSPM);
  EXPECT_TRUE(ParseCompatKind("SBPH", &parsed));
  EXPECT_EQ(parsed, CompatKind::kSBPH);
  EXPECT_FALSE(ParseCompatKind("nope", &parsed));
}

TEST(OracleTest, Figure1aPerKind) {
  SignedGraph g = testgraphs::Figure1a();
  using namespace testgraphs;
  EXPECT_FALSE(MakeOracle(g, CompatKind::kDPE)->Compatible(kU, kV));
  EXPECT_FALSE(MakeOracle(g, CompatKind::kSPA)->Compatible(kU, kV));
  EXPECT_FALSE(MakeOracle(g, CompatKind::kSPM)->Compatible(kU, kV));
  EXPECT_FALSE(MakeOracle(g, CompatKind::kSPO)->Compatible(kU, kV));
  EXPECT_TRUE(MakeOracle(g, CompatKind::kSBPH)->Compatible(kU, kV));
  EXPECT_TRUE(MakeOracle(g, CompatKind::kSBP)->Compatible(kU, kV));
  EXPECT_TRUE(MakeOracle(g, CompatKind::kNNE)->Compatible(kU, kV));
}

TEST(OracleTest, Figure1bSbphRowIsDirectional) {
  // From u the heuristic misses the balanced path (the paper's point); from
  // v it happens to find one, which is why the SBPH *relation* is defined
  // as the symmetric closure of the directional search.
  SignedGraph g = testgraphs::Figure1b();
  using namespace testgraphs;
  auto sbph = MakeOracle(g, CompatKind::kSBPH);
  EXPECT_EQ(sbph->GetRow(kBU).comp[kBV], 0);
  EXPECT_NE(sbph->GetRow(kBV).comp[kBU], 0);
  EXPECT_TRUE(sbph->Compatible(kBU, kBV));
  EXPECT_TRUE(MakeOracle(g, CompatKind::kSBP)->Compatible(kBU, kBV));
}

TEST(OracleTest, TwoSidedTrapSbphStrictlyInsideSbp) {
  // With the trap on both endpoints the heuristic misses the pair from
  // either direction while exact SBP finds it: SBPH ⊊ SBP as a relation.
  SignedGraph g = testgraphs::TwoSidedPrefixTrap();
  using namespace testgraphs;
  auto sbph = MakeOracle(g, CompatKind::kSBPH);
  EXPECT_EQ(sbph->GetRow(kGU).comp[kGV], 0);
  EXPECT_EQ(sbph->GetRow(kGV).comp[kGU], 0);
  EXPECT_FALSE(sbph->Compatible(kGU, kGV));
  auto sbp = MakeOracle(g, CompatKind::kSBP);
  EXPECT_TRUE(sbp->Compatible(kGU, kGV));
  // The witness is the long all-positive chord-free path of length 7.
  EXPECT_EQ(sbp->Distance(kGU, kGV), 7u);
}

TEST(OracleTest, DistanceSemantics) {
  SignedGraph g = testgraphs::Figure1a();
  using namespace testgraphs;
  // SP-style distance is the plain shortest-path length.
  EXPECT_EQ(MakeOracle(g, CompatKind::kSPO)->Distance(kU, kV), 2u);
  EXPECT_EQ(MakeOracle(g, CompatKind::kNNE)->Distance(kU, kV), 2u);
  // SBP distance is the length of the shortest balanced positive path.
  EXPECT_EQ(MakeOracle(g, CompatKind::kSBP)->Distance(kU, kV), 4u);
  EXPECT_EQ(MakeOracle(g, CompatKind::kSBPH)->Distance(kU, kV), 4u);
  // Self distance is zero everywhere.
  for (CompatKind kind : AllCompatKinds()) {
    EXPECT_EQ(MakeOracle(g, kind)->Distance(kV, kV), 0u);
  }
}

TEST(OracleTest, SbpDistanceAtLeastShortestPath) {
  Rng rng(83);
  SignedGraph g = RandomConnectedGnm(24, 55, 0.3, &rng);
  auto sbp = MakeOracle(g, CompatKind::kSBP);
  auto dist0 = BfsDistances(g, 0);
  const auto& row = sbp->GetRow(0);
  for (NodeId v = 1; v < g.num_nodes(); ++v) {
    if (row.comp[v]) {
      EXPECT_GE(row.dist[v], dist0[v]);
    }
  }
}

TEST(OracleTest, RowCacheAvoidsRecomputation) {
  Rng rng(89);
  SignedGraph g = RandomConnectedGnm(30, 60, 0.3, &rng);
  auto oracle = MakeOracle(g, CompatKind::kSPM);
  oracle->GetRow(3);
  oracle->GetRow(3);
  oracle->Compatible(3, 7);
  oracle->Distance(3, 9);
  EXPECT_EQ(oracle->rows_computed(), 1u);
  oracle->GetRow(4);
  EXPECT_EQ(oracle->rows_computed(), 2u);
}

TEST(OracleTest, RowCacheEvictsWhenFull) {
  Rng rng(97);
  SignedGraph g = RandomConnectedGnm(30, 60, 0.3, &rng);
  OracleParams params;
  params.max_cached_rows = 2;
  auto oracle = MakeOracle(g, CompatKind::kSPO, params);
  oracle->GetRow(0);
  oracle->GetRow(1);
  oracle->GetRow(2);  // evicts 0
  EXPECT_EQ(oracle->rows_computed(), 3u);
  oracle->GetRow(1);  // still cached
  EXPECT_EQ(oracle->rows_computed(), 3u);
  oracle->GetRow(0);  // recomputed
  EXPECT_EQ(oracle->rows_computed(), 4u);
  // Results identical after eviction round-trips.
  const auto& row = oracle->GetRow(0);
  auto fresh = MakeOracle(g, CompatKind::kSPO);
  EXPECT_EQ(row.comp, fresh->GetRow(0).comp);
  EXPECT_EQ(row.dist, fresh->GetRow(0).dist);
}

TEST(OracleTest, AllPositiveGraphEverythingCompatible) {
  Rng rng(101);
  SignedGraph g = RandomConnectedGnm(20, 50, 0.0, &rng);
  for (CompatKind kind : AllCompatKinds()) {
    if (kind == CompatKind::kDPE) continue;  // DPE needs direct edges
    auto oracle = MakeOracle(g, kind);
    for (NodeId u = 0; u < 6; ++u) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_TRUE(oracle->Compatible(u, v))
            << CompatKindName(kind) << " (" << u << "," << v << ")";
      }
    }
  }
}

TEST(CompatStatsTest, FullVsSampledConsistent) {
  Rng rng(103);
  SignedGraph g = RandomConnectedGnm(60, 150, 0.3, &rng);
  auto oracle = MakeOracle(g, CompatKind::kSPM);
  Rng stats_rng(1);
  CompatPairStats full = ComputeCompatPairStats(oracle.get(), 0, &stats_rng);
  EXPECT_EQ(full.sources_used, 60u);
  EXPECT_EQ(full.pairs_seen, 60u * 59u);
  CompatPairStats sampled =
      ComputeCompatPairStats(oracle.get(), 20, &stats_rng);
  EXPECT_EQ(sampled.sources_used, 20u);
  EXPECT_NEAR(sampled.compatible_fraction, full.compatible_fraction, 0.2);
}

TEST(CompatStatsTest, StrictnessOrderOnRandomGraph) {
  // Table 2 shape: compatible fraction grows along the relaxation chain.
  Rng rng(107);
  SignedGraph g = RandomConnectedGnm(60, 180, 0.25, &rng);
  Rng stats_rng(2);
  double spa = ComputeCompatPairStats(MakeOracle(g, CompatKind::kSPA).get(),
                                      0, &stats_rng)
                   .compatible_fraction;
  double spm = ComputeCompatPairStats(MakeOracle(g, CompatKind::kSPM).get(),
                                      0, &stats_rng)
                   .compatible_fraction;
  double spo = ComputeCompatPairStats(MakeOracle(g, CompatKind::kSPO).get(),
                                      0, &stats_rng)
                   .compatible_fraction;
  double nne = ComputeCompatPairStats(MakeOracle(g, CompatKind::kNNE).get(),
                                      0, &stats_rng)
                   .compatible_fraction;
  EXPECT_LE(spa, spm);
  EXPECT_LE(spm, spo);
  EXPECT_LE(spo, nne + 1e-12);
}

}  // namespace
}  // namespace tfsn
