#include "src/graph/signed_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/gen/generators.h"
#include "src/graph/graph_builder.h"
#include "src/graph/graph_io.h"
#include "src/graph/transform.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

SignedGraph Triangle() {
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kNegative).CheckOK();
  b.AddEdge(0, 2, Sign::kNegative).CheckOK();
  return std::move(b.Build()).ValueOrDie();
}

TEST(SignedGraphTest, BasicCounts) {
  SignedGraph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_negative_edges(), 2u);
  EXPECT_EQ(g.num_positive_edges(), 1u);
  EXPECT_NEAR(g.negative_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(SignedGraphTest, EdgeSignLookup) {
  SignedGraph g = Triangle();
  EXPECT_EQ(g.EdgeSign(0, 1), Sign::kPositive);
  EXPECT_EQ(g.EdgeSign(1, 0), Sign::kPositive);
  EXPECT_EQ(g.EdgeSign(1, 2), Sign::kNegative);
  EXPECT_EQ(g.EdgeSign(0, 2), Sign::kNegative);
  EXPECT_FALSE(g.EdgeSign(0, 0).has_value());
  EXPECT_FALSE(g.EdgeSign(0, 99).has_value());
}

TEST(SignedGraphTest, NeighborsSorted) {
  SignedGraphBuilder b(5);
  b.AddEdge(2, 4, Sign::kPositive).CheckOK();
  b.AddEdge(2, 0, Sign::kNegative).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].to, 0u);
  EXPECT_EQ(nbrs[1].to, 3u);
  EXPECT_EQ(nbrs[2].to, 4u);
  EXPECT_EQ(nbrs[0].sign, Sign::kNegative);
}

TEST(SignedGraphTest, DegreeAndIsolatedNode) {
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(3), 0u);
  EXPECT_TRUE(g.Neighbors(3).empty());
}

TEST(SignedGraphTest, SoaAdjacencyStaysUnderFiveBytesPerDirectedEdge) {
  // The compact SoA CSR stores a directed edge as a 4-byte target id plus
  // one packed sign bit — versus the former 12 bytes (8-byte padded
  // {id, sign} Neighbor plus a redundant 4-byte target mirror).
  Rng rng(7);
  SignedGraph g = RandomConnectedGnm(500, 2000, 0.3, &rng);
  const uint64_t directed = 2 * g.num_edges();
  EXPECT_LE(g.AdjacencyBytes(), 5 * directed);
  // Exact accounting: targets array + sign bitset words.
  EXPECT_EQ(g.AdjacencyBytes(),
            directed * sizeof(uint32_t) + ((directed + 63) / 64) * 8);
  static_assert(sizeof(Neighbor) == 8, "padded AoS entry the SoA replaces");
}

TEST(SignedGraphTest, SignBitsetMatchesEdgeSigns) {
  Rng rng(9);
  SignedGraph g = RandomConnectedGnm(120, 400, 0.4, &rng);
  auto offsets = g.offsets();
  auto targets = g.adjacency_targets();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (uint64_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      Sign expected = g.EdgeNegative(e) ? Sign::kNegative : Sign::kPositive;
      EXPECT_EQ(g.EdgeSign(u, targets[e]), expected);
    }
  }
}

TEST(SignedGraphTest, NeighborRangeIsRandomAccess) {
  SignedGraphBuilder b(6);
  b.AddEdge(0, 5, Sign::kNegative).CheckOK();
  b.AddEdge(0, 2, Sign::kPositive).CheckOK();
  b.AddEdge(0, 4, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  NeighborRange nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs.front().to, 2u);
  EXPECT_EQ(nbrs.back().to, 5u);
  EXPECT_EQ(nbrs.end() - nbrs.begin(), 3);
  EXPECT_EQ((*(nbrs.begin() + 1)).sign, Sign::kNegative);
  // Binary search through the proxy iterators (the EdgeSign idiom).
  auto it = std::lower_bound(
      nbrs.begin(), nbrs.end(), NodeId{4},
      [](const Neighbor& nb, NodeId target) { return nb.to < target; });
  ASSERT_NE(it, nbrs.end());
  EXPECT_EQ((*it).to, 4u);
  EXPECT_EQ((*it).sign, Sign::kNegative);
}

TEST(SignedGraphTest, EdgesCanonicalOrder) {
  SignedGraph g = Triangle();
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  for (const SignedEdge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(SignedGraphTest, PathSign) {
  SignedGraph g = Triangle();
  std::vector<NodeId> path{0, 1, 2};  // + then - => negative
  EXPECT_EQ(*g.PathSign(path), Sign::kNegative);
  std::vector<NodeId> edge{0, 2};
  EXPECT_EQ(*g.PathSign(edge), Sign::kNegative);
  std::vector<NodeId> bad{0, 0};
  EXPECT_FALSE(g.PathSign(bad).ok());
  std::vector<NodeId> single{0};
  EXPECT_FALSE(g.PathSign(single).ok());
}

TEST(SignedGraphBuilderTest, RejectsSelfLoop) {
  SignedGraphBuilder b(3);
  EXPECT_FALSE(b.AddEdge(1, 1, Sign::kPositive).ok());
}

TEST(SignedGraphBuilderTest, RejectsConflictingDuplicate) {
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 0, Sign::kNegative).CheckOK();  // recorded; conflict at Build
  EXPECT_FALSE(b.Build().ok());
}

TEST(SignedGraphBuilderTest, MergesEqualDuplicates) {
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 0, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(SignedGraphBuilderTest, EnsureNodeGrows) {
  SignedGraphBuilder b(0);
  b.AddEdge(5, 9, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(SignedGraphBuilderTest, EmptyGraph) {
  SignedGraphBuilder b(0);
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.negative_fraction(), 0.0);
}

TEST(GraphIoTest, RoundTripThroughString) {
  SignedGraph g = Triangle();
  std::string text = ToEdgeListString(g);
  auto parsed = ParseEdgeList(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_nodes(), 3u);
  EXPECT_EQ(parsed->num_edges(), 3u);
  EXPECT_EQ(parsed->num_negative_edges(), 2u);
}

TEST(GraphIoTest, ParsesCommentsAndSkipsSelfLoops) {
  uint64_t skipped = 0;
  auto g = ParseEdgeList("# header\n0 1 1\n2 2 1\n1 2 -1\n", &skipped);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(skipped, 1u);
}

TEST(GraphIoTest, RejectsMalformedLine) {
  EXPECT_FALSE(ParseEdgeList("0 1\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 1 7\n").ok());
  EXPECT_FALSE(ParseEdgeList("a b 1\n").ok());
}

TEST(GraphIoTest, DensifiesSparseIds) {
  auto g = ParseEdgeList("100 200 1\n200 300 -1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3u);
}

TEST(GraphIoTest, ConflictingDuplicateSkipped) {
  uint64_t skipped = 0;
  auto g = ParseEdgeList("0 1 1\n1 0 -1\n", &skipped);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_EQ(skipped, 1u);
}

TEST(GraphIoTest, FileRoundTrip) {
  SignedGraph g = Triangle();
  std::string path = testing::TempDir() + "/tfsn_roundtrip.edges";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  EXPECT_EQ(loaded->num_negative_edges(), g.num_negative_edges());
}

TEST(GraphIoTest, MissingFileIsIOError) {
  auto result = LoadEdgeList("/nonexistent/file.edges");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(TransformTest, IgnoreSignsMakesAllPositive) {
  SignedGraph g = Triangle();
  SignedGraph u = IgnoreSigns(g);
  EXPECT_EQ(u.num_edges(), 3u);
  EXPECT_EQ(u.num_negative_edges(), 0u);
}

TEST(TransformTest, DeleteNegativeKeepsPositive) {
  SignedGraph g = Triangle();
  SignedGraph d = DeleteNegativeEdges(g);
  EXPECT_EQ(d.num_edges(), 1u);
  EXPECT_EQ(d.num_nodes(), 3u);  // node set unchanged
  EXPECT_EQ(d.EdgeSign(0, 1), Sign::kPositive);
  EXPECT_FALSE(d.HasEdge(1, 2));
}

TEST(TransformTest, FlipSignsInverts) {
  SignedGraph g = Triangle();
  SignedGraph f = FlipSigns(g);
  EXPECT_EQ(f.num_negative_edges(), 1u);
  EXPECT_EQ(f.EdgeSign(0, 1), Sign::kNegative);
  EXPECT_EQ(f.EdgeSign(1, 2), Sign::kPositive);
}

TEST(SignTest, Multiplication) {
  EXPECT_EQ(Sign::kPositive * Sign::kPositive, Sign::kPositive);
  EXPECT_EQ(Sign::kPositive * Sign::kNegative, Sign::kNegative);
  EXPECT_EQ(Sign::kNegative * Sign::kNegative, Sign::kPositive);
  EXPECT_EQ(Negate(Sign::kPositive), Sign::kNegative);
  EXPECT_EQ(Negate(Sign::kNegative), Sign::kPositive);
}

}  // namespace
}  // namespace tfsn
