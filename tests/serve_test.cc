// Tests for the serving layer (src/serve): the batching scheduler must
// group by skill-footprint overlap under its caps, and the server must
// return teams bit-identical to the direct GreedyTeamFormer path for
// every request — whatever the batching, worker count, or arrival order
// — because batching shares *state* (the union-task view), never the
// per-request computation semantics.

#include "src/serve/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "src/compat/row_spill.h"
#include "src/compat/skill_index.h"
#include "src/gen/generators.h"
#include "src/serve/batcher.h"
#include "src/serve/workload.h"
#include "src/skills/skill_generator.h"
#include "src/team/greedy.h"
#include "src/util/rng.h"

namespace tfsn::serve {
namespace {

struct Instance {
  SignedGraph graph;
  SkillAssignment skills;
};

Instance MakeInstance(uint32_t n, uint64_t edges, double neg_fraction,
                      uint32_t num_skills, uint64_t seed) {
  Rng rng(seed);
  Instance inst{RandomConnectedGnm(n, edges, neg_fraction, &rng), {}};
  ZipfSkillParams sp;
  sp.num_skills = num_skills;
  inst.skills = ZipfSkills(n, sp, &rng);
  return inst;
}

void ExpectSameTeam(const TeamResult& a, const TeamResult& b,
                    const std::string& what) {
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_EQ(a.members, b.members) << what;
  EXPECT_EQ(a.cost, b.cost) << what;
  EXPECT_EQ(a.objective, b.objective) << what;
  EXPECT_EQ(a.seeds_tried, b.seeds_tried) << what;
  EXPECT_EQ(a.seeds_succeeded, b.seeds_succeeded) << what;
}

// Forms every request directly (no server, no batching) with the given
// params — the reference the serving path must reproduce bit for bit.
std::vector<TeamResult> DirectReference(const Instance& inst, CompatKind kind,
                                        const GreedyParams& params,
                                        const std::vector<TeamRequest>& reqs) {
  auto oracle = MakeOracle(inst.graph, kind);
  Rng idx_rng(3);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &idx_rng);
  GreedyTeamFormer former(oracle.get(), inst.skills, &index, params);
  std::vector<TeamResult> out;
  out.reserve(reqs.size());
  for (const TeamRequest& req : reqs) {
    Rng rng(req.rng_seed);
    out.push_back(former.Form(req.task, &rng));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pure helpers
// ---------------------------------------------------------------------------

TEST(ServeHelpersTest, JaccardSorted) {
  using V = std::vector<NodeId>;
  EXPECT_DOUBLE_EQ(JaccardSorted(V{}, V{}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSorted(V{1, 2, 3}, V{1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSorted(V{1, 2}, V{3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSorted(V{1, 2, 3}, V{2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSorted(V{1}, V{1, 2, 3, 4}), 0.25);
}

TEST(ServeHelpersTest, UnionSorted) {
  using V = std::vector<NodeId>;
  EXPECT_EQ(UnionSorted(V{1, 3}, V{2, 3, 5}), (V{1, 2, 3, 5}));
  EXPECT_EQ(UnionSorted(V{}, V{7}), V{7});
}

TEST(ZipfTaskSamplerTest, ValidAndDeterministic) {
  Instance inst = MakeInstance(60, 140, 0.2, 15, 11);
  ZipfTaskSampler sampler(inst.skills, 1.0);
  Rng rng_a(5), rng_b(5);
  for (int i = 0; i < 20; ++i) {
    Task a = sampler.Sample(3, &rng_a);
    Task b = sampler.Sample(3, &rng_b);
    EXPECT_EQ(a, b);  // same stream, same tasks
    EXPECT_EQ(a.size(), 3u);
    for (SkillId s : a.skills()) {
      EXPECT_GT(inst.skills.Frequency(s), 0u) << "sampled an unheld skill";
    }
  }
}

TEST(WorkloadTest, GenerateRequestsDeterministic) {
  Instance inst = MakeInstance(60, 140, 0.2, 15, 11);
  WorkloadOptions options;
  options.num_requests = 30;
  options.seed = 77;
  const auto a = GenerateRequests(inst.skills, options);
  const auto b = GenerateRequests(inst.skills, options);
  ASSERT_EQ(a.size(), 30u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].task, b[i].task);
    EXPECT_EQ(a[i].rng_seed, b[i].rng_seed);
  }
}

// ---------------------------------------------------------------------------
// FormWithView: a superset-task view serves member tasks bit-identically
// ---------------------------------------------------------------------------

TEST(FormWithViewTest, SupersetViewMatchesDirectFormAllPoliciesAndKinds) {
  Instance inst = MakeInstance(60, 150, 0.25, 12, 21);
  Rng task_rng(9);
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(RandomTask(inst.skills, 3, &task_rng));
  }
  // The union task covers every sampled task — the shared view a batch
  // worker would build.
  std::vector<SkillId> union_skills;
  for (const Task& t : tasks) {
    union_skills.insert(union_skills.end(), t.skills().begin(),
                        t.skills().end());
  }
  Task union_task(union_skills);

  for (CompatKind kind :
       {CompatKind::kSPM, CompatKind::kNNE, CompatKind::kSBPH}) {
    auto oracle = MakeOracle(inst.graph, kind);
    Rng idx_rng(3);
    SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &idx_rng);
    auto view = TaskCompatView::Build(oracle.get(), inst.skills, union_task);
    ASSERT_NE(view, nullptr);
    for (UserPolicy up : {UserPolicy::kMinDistance, UserPolicy::kMostCompatible,
                          UserPolicy::kRandom}) {
      GreedyParams params;
      params.user_policy = up;
      params.max_seeds = 4;  // exercises rng-driven seed sampling too
      GreedyTeamFormer former(oracle.get(), inst.skills, &index, params);
      for (size_t t = 0; t < tasks.size(); ++t) {
        const uint64_t seed = 1000 + t;
        Rng rng_shared(seed);
        TeamResult via_shared =
            former.FormWithView(*view, tasks[t], &rng_shared);
        for (GreedyEvalPath path :
             {GreedyEvalPath::kView, GreedyEvalPath::kOracle}) {
          GreedyParams direct = params;
          direct.eval_path = path;
          GreedyTeamFormer ref(oracle.get(), inst.skills, &index, direct);
          Rng rng_direct(seed);
          TeamResult via_direct = ref.Form(tasks[t], &rng_direct);
          ExpectSameTeam(via_shared, via_direct,
                         std::string(CompatKindName(kind)) + "/" +
                             UserPolicyName(up) + "/task" + std::to_string(t));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batch scheduler
// ---------------------------------------------------------------------------

ScheduledRequest MakeScheduled(uint64_t id, std::vector<SkillId> skills) {
  ScheduledRequest sr;
  sr.request.id = id;
  sr.request.task = Task(std::move(skills));
  sr.request.rng_seed = id;
  return sr;
}

std::vector<uint64_t> Ids(const RequestBatch& batch) {
  std::vector<uint64_t> ids;
  for (const ScheduledRequest& sr : batch.items) {
    ids.push_back(sr.request.id);
  }
  return ids;
}

TEST(BatchSchedulerTest, GroupsOverlappingFootprintsOnly) {
  // Users 0..5 hold skills 0/1 (interleaved), users 6..11 hold skills 2/3:
  // two disjoint footprint clusters.
  std::vector<std::vector<SkillId>> user_skills(12);
  for (uint32_t u = 0; u < 6; ++u) user_skills[u] = {u % 2 == 0 ? 0u : 1u};
  for (uint32_t u = 6; u < 12; ++u) user_skills[u] = {u % 2 == 0 ? 2u : 3u};
  auto skills = SkillAssignment::Create(user_skills, 4);
  ASSERT_TRUE(skills.ok());

  BatchPolicy policy;
  policy.max_batch = 8;
  policy.min_jaccard = 0.3;
  BatchScheduler scheduler(*skills, /*sbph=*/false, policy);
  AdmissionQueue<ScheduledRequest> queue(16);

  ASSERT_TRUE(queue.Push(MakeScheduled(0, {0})).ok());
  ASSERT_TRUE(queue.Push(MakeScheduled(1, {2})).ok());
  ASSERT_TRUE(queue.Push(MakeScheduled(2, {1})).ok());
  ASSERT_TRUE(queue.Push(MakeScheduled(3, {3})).ok());
  ASSERT_TRUE(queue.Push(MakeScheduled(4, {0, 1})).ok());
  queue.Close();

  RequestBatch batch;
  // Seeded by request 0 = {skill 0}. The single greedy pass runs in
  // arrival order: request 2 = {skill 1} is tested against holders(0)
  // (Jaccard 0, stays pending) before request 4 = {0,1} joins and widens
  // the union; the skill-2/3 requests are disjoint throughout.
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{0, 4}));
  std::vector<SkillId> want_union{0, 1};
  EXPECT_EQ(std::vector<SkillId>(batch.union_task.skills().begin(),
                                 batch.union_task.skills().end()),
            want_union);
  // Union universe = holders(0) ∪ holders(1) = users 0..5.
  EXPECT_EQ(batch.universe, (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));

  // Next seed is request 1 (skill 2); request 3 = {3} is disjoint from
  // it, request 2 = {1} too — batch is {1} alone.
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{1}));

  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{2}));

  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{3}));

  // Queue closed and drained, pending empty: shutdown.
  EXPECT_FALSE(scheduler.NextBatch(&queue, &batch));
}

TEST(BatchSchedulerTest, IdenticalTasksBatchUpToMaxBatch) {
  std::vector<std::vector<SkillId>> user_skills(6, std::vector<SkillId>{0});
  auto skills = SkillAssignment::Create(user_skills, 1);
  ASSERT_TRUE(skills.ok());

  BatchPolicy policy;
  policy.max_batch = 2;
  policy.min_jaccard = 0.5;
  BatchScheduler scheduler(*skills, false, policy);
  AdmissionQueue<ScheduledRequest> queue(16);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Push(MakeScheduled(i, {0})).ok());
  }
  queue.Close();

  RequestBatch batch;
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{0, 1}));
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{2, 3}));
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{4}));
  EXPECT_FALSE(scheduler.NextBatch(&queue, &batch));
}

TEST(BatchSchedulerTest, ByteCapStopsUnionGrowth) {
  // Two overlapping skills with large holder sets; the byte cap admits a
  // single-skill universe but not the union.
  std::vector<std::vector<SkillId>> user_skills(80);
  for (uint32_t u = 0; u < 60; ++u) user_skills[u].push_back(0);
  for (uint32_t u = 20; u < 80; ++u) user_skills[u].push_back(1);
  auto skills = SkillAssignment::Create(user_skills, 2);
  ASSERT_TRUE(skills.ok());

  BatchPolicy policy;
  policy.max_batch = 8;
  policy.min_jaccard = 0.0;
  // A 60-holder universe fits; the 80-node union does not.
  policy.max_view_bytes = TaskCompatView::EstimateBytes(70, 2, false);
  BatchScheduler scheduler(*skills, false, policy);
  AdmissionQueue<ScheduledRequest> queue(16);
  ASSERT_TRUE(queue.Push(MakeScheduled(0, {0})).ok());
  ASSERT_TRUE(queue.Push(MakeScheduled(1, {1})).ok());
  ASSERT_TRUE(queue.Push(MakeScheduled(2, {0})).ok());  // duplicate: no growth
  queue.Close();

  RequestBatch batch;
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  // 1 would push the union to 80 holders (over cap); 2 adds nothing and
  // joins.
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{0, 2}));
  ASSERT_TRUE(scheduler.NextBatch(&queue, &batch));
  EXPECT_EQ(Ids(batch), (std::vector<uint64_t>{1}));
  EXPECT_FALSE(scheduler.NextBatch(&queue, &batch));
}

// ---------------------------------------------------------------------------
// Server end-to-end
// ---------------------------------------------------------------------------

struct ServerHarness {
  Instance inst;
  std::shared_ptr<RowCache> cache;
  std::unique_ptr<CompatibilityOracle> oracle;  // index construction only
  std::unique_ptr<SkillCompatibilityIndex> index;

  explicit ServerHarness(uint64_t seed = 21)
      : inst(MakeInstance(80, 200, 0.25, 15, seed)) {
    cache = std::make_shared<RowCache>();
    oracle = MakeOracle(inst.graph, CompatKind::kSPM, OracleParams{}, cache);
    Rng rng(3);
    index = std::make_unique<SkillCompatibilityIndex>(oracle.get(), inst.skills,
                                                      0, &rng);
  }

  ServerOptions Options(uint32_t workers, uint32_t max_batch) const {
    ServerOptions options;
    options.workers = workers;
    options.batch.max_batch = max_batch;
    options.batch.min_jaccard = 0.05;
    return options;
  }

  std::unique_ptr<TeamFormationServer> NewServer(uint32_t workers,
                                                 uint32_t max_batch) {
    return std::make_unique<TeamFormationServer>(inst.graph, inst.skills,
                                                 index.get(), CompatKind::kSPM,
                                                 cache,
                                                 Options(workers, max_batch));
  }
};

std::vector<TeamRequest> HarnessRequests(const ServerHarness& h, uint32_t n,
                                         uint64_t seed = 77) {
  WorkloadOptions options;
  options.num_requests = n;
  options.task_size = 3;
  options.zipf_exponent = 1.0;
  options.seed = seed;
  return GenerateRequests(h.inst.skills, options);
}

TEST(TeamFormationServerTest, BitIdenticalToDirectFormerPath) {
  ServerHarness h;
  const auto requests = HarnessRequests(h, 60);
  auto server = h.NewServer(/*workers=*/2, /*max_batch=*/8);
  WorkloadResult run = RunClosedLoop(server.get(), requests, /*clients=*/4);
  server->Shutdown();

  ASSERT_EQ(run.completed, requests.size());
  ASSERT_EQ(run.responses.size(), requests.size());
  const std::vector<TeamResult> reference = DirectReference(
      h.inst, CompatKind::kSPM, server->options().greedy, requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(run.responses[i].id, requests[i].id);
    EXPECT_GE(run.responses[i].batch_size, 1u);
    ExpectSameTeam(run.responses[i].result, reference[i],
                   "request " + std::to_string(i));
  }
}

TEST(TeamFormationServerTest, BatchedAndUnbatchedAgreeAndReplayIsStable) {
  ServerHarness h;
  const auto requests = HarnessRequests(h, 50);

  auto batched = h.NewServer(2, 8);
  WorkloadResult run_batched = RunClosedLoop(batched.get(), requests, 4);
  batched->Shutdown();
  const ServerMetrics batched_metrics = batched->Metrics();

  auto unbatched = h.NewServer(2, 1);
  WorkloadResult run_unbatched = RunClosedLoop(unbatched.get(), requests, 4);
  unbatched->Shutdown();
  const ServerMetrics unbatched_metrics = unbatched->Metrics();

  auto replay = h.NewServer(1, 8);
  WorkloadResult run_replay = RunClosedLoop(replay.get(), requests, 2);
  replay->Shutdown();

  ASSERT_EQ(run_batched.responses.size(), requests.size());
  ASSERT_EQ(run_unbatched.responses.size(), requests.size());
  ASSERT_EQ(run_replay.responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameTeam(run_batched.responses[i].result,
                   run_unbatched.responses[i].result,
                   "batched vs unbatched, request " + std::to_string(i));
    ExpectSameTeam(run_batched.responses[i].result,
                   run_replay.responses[i].result,
                   "replay, request " + std::to_string(i));
    EXPECT_EQ(run_unbatched.responses[i].batch_size, 1u);
  }
  // The unbatched server pays one batch (and one view) per request.
  EXPECT_EQ(unbatched_metrics.batches, requests.size());
  EXPECT_LE(batched_metrics.batches, unbatched_metrics.batches);
}

TEST(TeamFormationServerTest, TieredCacheServesBitIdenticalTeams) {
  // A server over the full tiered store — compressed rows, a starvation
  // row budget that forces churn through the disk spill, and a Zipf
  // prewarm before traffic — must still return teams bit-identical to
  // the flat direct path. Storage tiers change where a row lives, never
  // what it says.
  ServerHarness h;
  const std::string spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "serve-tiered-spill")
          .string();
  std::filesystem::remove_all(spill_dir);
  auto spill = std::make_shared<RowSpillStore>(spill_dir);
  ASSERT_TRUE(spill->ok());
  RowCacheOptions copts;
  copts.compress = true;
  copts.spill = spill;
  copts.max_rows = 8;  // most rows must round-trip through disk
  copts.shards = 2;
  auto tiered = std::make_shared<RowCache>(copts);
  auto oracle =
      MakeOracle(h.inst.graph, CompatKind::kSPM, OracleParams{}, tiered);
  Rng idx_rng(3);
  SkillCompatibilityIndex index(oracle.get(), h.inst.skills, 0, &idx_rng);

  PrewarmOptions popts;
  popts.fraction = 0.5;
  const PrewarmReport report =
      PrewarmZipfHead(oracle.get(), h.inst.skills, popts);
  EXPECT_GT(report.holders_ranked, 0u);
  EXPECT_GT(report.rows_prewarmed, 0u);

  const auto requests = HarnessRequests(h, 60);
  TeamFormationServer server(h.inst.graph, h.inst.skills, &index,
                             CompatKind::kSPM, tiered, h.Options(2, 8));
  WorkloadResult run = RunClosedLoop(&server, requests, /*clients=*/4);
  server.Shutdown();

  ASSERT_EQ(run.completed, requests.size());
  const std::vector<TeamResult> reference = DirectReference(
      h.inst, CompatKind::kSPM, server.options().greedy, requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(run.responses[i].id, requests[i].id);
    ExpectSameTeam(run.responses[i].result, reference[i],
                   "tiered, request " + std::to_string(i));
  }
  // The tiers actually engaged: blobs were decoded on pin, evictions hit
  // the spill store, and rows came back from it.
  const ServerMetrics m = server.Metrics();
  EXPECT_GT(m.cache.decodes, 0u);
  EXPECT_GT(m.cache.spill_writes, 0u);
  EXPECT_GT(m.cache.spill_reads, 0u);
  EXPECT_GT(m.cache.compressed_bytes, 0u);
  EXPECT_GT(spill->stats().records, 0u);
}

TEST(TeamFormationServerTest, RandomPolicyReplayDeterminism) {
  ServerHarness h;
  const auto requests = HarnessRequests(h, 30);
  ServerOptions options = h.Options(2, 8);
  options.greedy.user_policy = UserPolicy::kRandom;

  std::vector<WorkloadResult> runs;
  for (int r = 0; r < 2; ++r) {
    TeamFormationServer server(h.inst.graph, h.inst.skills, h.index.get(),
                               CompatKind::kSPM, h.cache, options);
    runs.push_back(RunClosedLoop(&server, requests, 4));
    server.Shutdown();
  }
  ASSERT_EQ(runs[0].responses.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ExpectSameTeam(runs[0].responses[i].result, runs[1].responses[i].result,
                   "RANDOM replay, request " + std::to_string(i));
  }
}

TEST(TeamFormationServerTest, MetricsAccounting) {
  ServerHarness h;
  const auto requests = HarnessRequests(h, 40);
  auto server = h.NewServer(2, 8);
  WorkloadResult run = RunClosedLoop(server.get(), requests, 4);
  server->Shutdown();
  const ServerMetrics m = server->Metrics();

  EXPECT_EQ(run.completed, requests.size());
  EXPECT_EQ(m.completed, requests.size());
  EXPECT_EQ(m.total_us.count(), requests.size());
  EXPECT_EQ(m.queue_us.count(), requests.size());
  EXPECT_EQ(m.service_us.count(), requests.size());
  EXPECT_GE(m.batches, 1u);
  EXPECT_EQ(m.batches, m.shared_view_batches + m.fallback_batches);
  uint64_t weighted = 0, batch_total = 0;
  ASSERT_EQ(m.batch_size_counts.size(),
            static_cast<size_t>(server->options().batch.max_batch) + 1);
  for (size_t b = 0; b < m.batch_size_counts.size(); ++b) {
    weighted += b * m.batch_size_counts[b];
    batch_total += m.batch_size_counts[b];
  }
  EXPECT_EQ(weighted, requests.size());
  EXPECT_EQ(batch_total, m.batches);
  EXPECT_GT(m.MeanBatchSize(), 0.0);
  EXPECT_GT(m.cache.lookups(), 0u);
  // Percentiles are well-defined and ordered.
  EXPECT_LE(m.total_us.ValueAtQuantile(0.5), m.total_us.ValueAtQuantile(0.99));
}

TEST(TeamFormationServerTest, ShutdownDrainsAndRefusesNewWork) {
  ServerHarness h;
  const auto requests = HarnessRequests(h, 20);
  auto server = h.NewServer(1, 4);
  std::vector<std::future<TeamResponse>> futures;
  for (const TeamRequest& req : requests) {
    std::future<TeamResponse> fut;
    ASSERT_TRUE(server->Submit(req, &fut).ok());
    futures.push_back(std::move(fut));
  }
  server->Shutdown();
  // Every admitted request was served before the workers exited.
  for (auto& fut : futures) {
    const TeamResponse resp = fut.get();
    EXPECT_GE(resp.batch_size, 1u);
  }
  std::future<TeamResponse> fut;
  EXPECT_TRUE(server->Submit(requests[0], &fut).IsUnavailable());
  EXPECT_TRUE(server->TrySubmit(requests[0], &fut).IsUnavailable());
  server->Shutdown();  // idempotent
}

TEST(TeamFormationServerTest, OpenLoopAccountsEveryArrival) {
  ServerHarness h;
  const auto requests = HarnessRequests(h, 30);
  ServerOptions options = h.Options(1, 4);
  options.queue_capacity = 4;  // tiny queue: drops are possible, not required
  TeamFormationServer server(h.inst.graph, h.inst.skills, h.index.get(),
                             CompatKind::kSPM, h.cache, options);
  Rng arrivals(5);
  WorkloadResult run =
      RunOpenLoop(&server, requests, /*qps=*/50000.0, &arrivals);
  server.Shutdown();
  EXPECT_EQ(run.submitted + run.dropped, requests.size());
  EXPECT_EQ(run.completed, run.submitted);
  EXPECT_EQ(run.responses.size(), run.completed);
  // Served requests still match the direct path.
  const std::vector<TeamResult> reference = DirectReference(
      h.inst, CompatKind::kSPM, server.options().greedy, requests);
  for (const TeamResponse& resp : run.responses) {
    ExpectSameTeam(resp.result, reference[resp.id],
                   "open loop, request " + std::to_string(resp.id));
  }
}

}  // namespace
}  // namespace tfsn::serve
