// Round-trip tests for the compressed row codec (row_codec.h): every
// relation plus the threshold kernel on random graphs, ragged hand-built
// rows, kUnreachable runs on fragmented graphs, the saturated flag, the
// raw fallbacks, the measured compression ratio, and rejection of
// malformed blobs.

#include "src/compat/row_codec.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/compat/row_kernels.h"
#include "src/compat/threshold.h"
#include "src/gen/generators.h"
#include "src/graph/bfs.h"
#include "src/graph/graph_builder.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

void ExpectRoundTrip(const CompatRow& row, const char* what) {
  const std::vector<uint8_t> blob = EncodeRow(row);
  CompatRow decoded;
  // Poison the output: DecodeRow must fully replace previous contents.
  decoded.comp.assign(3, 99);
  decoded.dist.assign(7, 99);
  decoded.saturated = !row.saturated;
  ASSERT_TRUE(DecodeRow(blob, &decoded)) << what;
  EXPECT_EQ(decoded.comp, row.comp) << what;
  EXPECT_EQ(decoded.dist, row.dist) << what;
  EXPECT_EQ(decoded.saturated, row.saturated) << what;
}

TEST(RowCodecTest, RoundTripAllKindsOnRandomGraphs) {
  Rng rng(101);
  for (uint32_t n : {17u, 48u}) {
    SignedGraph g = RandomConnectedGnm(n, n * 2 + 10, 0.3, &rng);
    RowKernelParams params;
    for (CompatKind kind : AllCompatKinds()) {
      for (NodeId q = 0; q < g.num_nodes(); q += 3) {
        CompatRow row = ComputeCompatRow(g, kind, params, q);
        ExpectRoundTrip(row, CompatKindName(kind));
      }
    }
  }
}

TEST(RowCodecTest, RoundTripThresholdRelation) {
  Rng rng(103);
  SignedGraph g = RandomConnectedGnm(30, 75, 0.35, &rng);
  for (double theta : {0.0, 0.4, 1.0}) {
    RowKernelParams params;
    params.threshold_theta = theta;
    for (NodeId q = 0; q < g.num_nodes(); q += 5) {
      ExpectRoundTrip(ComputeThresholdRow(g, params, q), "threshold");
    }
  }
}

TEST(RowCodecTest, RoundTripUnreachableRunsOnFragmentedGraph) {
  // Two components: BFS rows from the small one are almost all
  // kUnreachable — the RLE path's home turf.
  SignedGraphBuilder b(40);
  for (NodeId u = 0; u + 1 < 5; ++u) {
    b.AddEdge(u, u + 1, Sign::kPositive).CheckOK();
  }
  for (NodeId u = 5; u + 1 < 40; ++u) {
    b.AddEdge(u, u + 1, u % 3 == 0 ? Sign::kNegative : Sign::kPositive)
        .CheckOK();
  }
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  RowKernelParams params;
  for (CompatKind kind : AllCompatKinds()) {
    CompatRow row = ComputeCompatRow(g, kind, params, 2);
    EXPECT_NE(std::count(row.dist.begin(), row.dist.end(), kUnreachable), 0)
        << CompatKindName(kind);
    ExpectRoundTrip(row, CompatKindName(kind));
  }
}

TEST(RowCodecTest, RoundTripRaggedHandBuiltRows) {
  Rng rng(107);
  for (uint32_t n : {1u, 3u, 63u, 64u, 65u, 127u, 128u, 129u, 1000u}) {
    CompatRow row;
    row.comp.resize(n);
    row.dist.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      row.comp[i] = static_cast<uint8_t>(rng.Next() % 2);
      const uint64_t r = rng.Next() % 10;
      row.dist[i] = r == 0 ? kUnreachable : static_cast<uint32_t>(r);
    }
    row.saturated = (n % 2) == 0;
    ExpectRoundTrip(row, "ragged");
  }
}

TEST(RowCodecTest, RoundTripEmptyAndSaturatedRows) {
  CompatRow empty;
  ExpectRoundTrip(empty, "empty");
  CompatRow sat;
  sat.comp.assign(10, 1);
  sat.dist.assign(10, 2);
  sat.saturated = true;
  ExpectRoundTrip(sat, "saturated");
}

TEST(RowCodecTest, RawFallbacksKeepArbitraryRowsBitIdentical) {
  // comp values outside {0,1} force the raw comp path (hand-built rows in
  // the cache tests use these).
  CompatRow weird;
  weird.comp.assign(20, 7);
  weird.dist.assign(20, 7);
  ExpectRoundTrip(weird, "comp>1");

  // Huge, distinct finite distances exceed the bit-pack lane limit and
  // defeat RLE: the raw dist path must carry them exactly.
  Rng rng(109);
  CompatRow big;
  big.comp.assign(50, 1);
  big.dist.resize(50);
  for (uint32_t i = 0; i < 50; ++i) {
    big.dist[i] = static_cast<uint32_t>(rng.Next());
  }
  ExpectRoundTrip(big, "large-dist");
}

TEST(RowCodecTest, CompressesKernelRowsAtLeastFiveFold) {
  Rng rng(113);
  SignedGraph g = RandomConnectedGnm(400, 1200, 0.3, &rng);
  RowKernelParams params;
  size_t dense = 0;
  size_t encoded = 0;
  for (NodeId q = 0; q < g.num_nodes(); q += 13) {
    CompatRow row = ComputeCompatRow(g, CompatKind::kSPM, params, q);
    dense += DenseRowBytes(row);
    encoded += EncodeRow(row).size();
  }
  ASSERT_GT(encoded, 0u);
  EXPECT_GE(static_cast<double>(dense) / static_cast<double>(encoded), 5.0);
}

TEST(RowCodecTest, DecodeRejectsMalformedBlobs) {
  CompatRow row;
  row.comp.assign(32, 1);
  row.dist.assign(32, 3);
  const std::vector<uint8_t> blob = EncodeRow(row);
  CompatRow out;

  // Truncations at every prefix length must fail, never crash or succeed.
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(
        DecodeRow(std::span<const uint8_t>(blob.data(), len), &out))
        << "len=" << len;
  }
  // Trailing garbage is not a valid blob either.
  std::vector<uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(DecodeRow(padded, &out));
  // Unknown codec versions are rejected outright.
  std::vector<uint8_t> wrong_version = blob;
  wrong_version[0] = kRowCodecVersion + 1;
  EXPECT_FALSE(DecodeRow(wrong_version, &out));
  // An impossible element count cannot allocate its way to success.
  std::vector<uint8_t> huge = blob;
  huge[4] = huge[5] = huge[6] = huge[7] = 0xFF;
  EXPECT_FALSE(DecodeRow(huge, &out));
}

}  // namespace
}  // namespace tfsn
