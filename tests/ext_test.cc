// Tests for the extension modules: sign prediction and balance clustering
// (the paper's future-work directions), cost-kind variants and top-k teams.

#include <gtest/gtest.h>

#include "src/compat/skill_index.h"
#include "src/ext/balance_clustering.h"
#include "src/ext/sign_prediction.h"
#include "src/gen/generators.h"
#include "src/graph/graph_builder.h"
#include "src/skills/skill_generator.h"
#include "src/team/cost.h"
#include "src/team/greedy.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

// ---------------------------------------------------------------------------
// Sign prediction
// ---------------------------------------------------------------------------

TEST(SignPredictionTest, RemoveEdgeDropsExactlyOne) {
  Rng rng(1);
  SignedGraph g = RandomConnectedGnm(20, 50, 0.3, &rng);
  SignedGraph h = RemoveEdge(g, 0, g.Neighbors(0)[0].to);
  EXPECT_EQ(h.num_edges(), g.num_edges() - 1);
  EXPECT_FALSE(h.HasEdge(0, g.Neighbors(0)[0].to));
  // Removing a non-edge is a no-op.
  SignedGraph same = RemoveEdge(h, 0, g.Neighbors(0)[0].to);
  EXPECT_EQ(same.num_edges(), h.num_edges());
}

TEST(SignPredictionTest, TriadVoteOnBalancedTriangle) {
  // 0-1 +, 1-2 +: common neighbour 1 votes (+)(+) = positive for (0,2).
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto p = PredictSign(g, 0, 2, SignPredictor::kTriadBalance);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, Sign::kPositive);
}

TEST(SignPredictionTest, TriadVoteEnemyOfFriend) {
  // 0-1 +, 1-2 -: predict (0,2) negative ("enemy of my friend").
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto p = PredictSign(g, 0, 2, SignPredictor::kTriadBalance);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, Sign::kNegative);
}

TEST(SignPredictionTest, TriadAbstainsWithoutCommonNeighbours) {
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  EXPECT_FALSE(PredictSign(g, 0, 3, SignPredictor::kTriadBalance).has_value());
}

TEST(SignPredictionTest, MajoritySpOnPath) {
  // 0 -(+)- 1 -(+)- 2: the only path is positive.
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto p = PredictSign(g, 0, 2, SignPredictor::kMajorityShortestPath);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, Sign::kPositive);
}

TEST(SignPredictionTest, MajoritySpAbstainsOnTies) {
  // Two disjoint 2-hop routes with opposite signs: tie.
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 3, Sign::kPositive).CheckOK();
  b.AddEdge(0, 2, Sign::kNegative).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  EXPECT_FALSE(
      PredictSign(g, 0, 3, SignPredictor::kMajorityShortestPath).has_value());
}

TEST(SignPredictionTest, PredictorsBeatChanceOnBalancedGraph) {
  // On a noiseless two-faction graph every structural predictor should be
  // perfect: hidden-edge signs are fully determined by the factions.
  Rng rng(3);
  SignedGraph g = RandomBalancedGraph(60, 260, &rng);
  for (SignPredictor p :
       {SignPredictor::kMajorityShortestPath, SignPredictor::kTriadBalance,
        SignPredictor::kSbph}) {
    Rng eval_rng(17);
    SignPredictionReport report = EvaluateSignPredictor(g, p, 60, &eval_rng);
    EXPECT_GT(report.evaluated, 20u) << SignPredictorName(p);
    EXPECT_GE(report.accuracy(), 0.95) << SignPredictorName(p);
  }
}

TEST(SignPredictionTest, ReportCountsAreConsistent) {
  Rng rng(5);
  SignedGraph g = RandomConnectedGnm(40, 100, 0.3, &rng);
  Rng eval_rng(7);
  SignPredictionReport report = EvaluateSignPredictor(
      g, SignPredictor::kTriadBalance, 50, &eval_rng);
  EXPECT_LE(report.correct, report.evaluated);
  EXPECT_EQ(report.evaluated + report.abstained, 50u);
}

// ---------------------------------------------------------------------------
// Balance clustering
// ---------------------------------------------------------------------------

TEST(BalanceClusteringTest, ExactOnBalancedGraph) {
  Rng rng(9);
  SignedGraph g = RandomBalancedGraph(50, 180, &rng);
  FactionClustering c = ClusterFactions(g);
  EXPECT_TRUE(c.exact);
  EXPECT_EQ(c.frustration, 0u);
  EXPECT_EQ(Frustration(g, c.side), 0u);
  EXPECT_DOUBLE_EQ(PolarizationScore(g, c), 1.0);
}

TEST(BalanceClusteringTest, RecoversPlantedFactionsUnderNoise) {
  Rng rng(11);
  SignedGraph g = PlantedPartitionSigned(100, 600, /*noise=*/0.05, &rng);
  ClusteringOptions options;
  options.restarts = 12;
  FactionClustering c = ClusterFactions(g, options);
  EXPECT_FALSE(c.exact);
  // ~5% flipped edges: local search should land near the planted optimum.
  EXPECT_LT(static_cast<double>(c.frustration) / g.num_edges(), 0.10);
  EXPECT_GT(PolarizationScore(g, c), 0.90);
  // The planted split is half/half; recovered split must be near-balanced.
  EXPECT_LT(FactionImbalance(c), 0.65);
}

TEST(BalanceClusteringTest, FrustrationMatchesHelper) {
  Rng rng(13);
  SignedGraph g = RandomConnectedGnm(60, 200, 0.4, &rng);
  FactionClustering c = ClusterFactions(g);
  EXPECT_EQ(c.frustration, Frustration(g, c.side));
}

TEST(BalanceClusteringTest, MoreRestartsNeverWorse) {
  Rng rng(15);
  SignedGraph g = RandomConnectedGnm(80, 300, 0.5, &rng);
  ClusteringOptions one;
  one.restarts = 1;
  one.seed = 3;
  ClusteringOptions many;
  many.restarts = 16;
  many.seed = 3;
  // Same seed: the first restart of `many` replays `one`.
  EXPECT_LE(ClusterFactions(g, many).frustration,
            ClusterFactions(g, one).frustration);
}

TEST(BalanceClusteringTest, EmptyAndTinyGraphs) {
  SignedGraphBuilder b(1);
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  FactionClustering c = ClusterFactions(g);
  EXPECT_TRUE(c.exact);
  EXPECT_EQ(c.frustration, 0u);
}

// ---------------------------------------------------------------------------
// Cost kinds & top-k teams
// ---------------------------------------------------------------------------

SignedGraph CostPlayground() {
  // Path 0-1-2-3-4 all positive.
  SignedGraphBuilder b(5);
  for (NodeId i = 0; i + 1 < 5; ++i) {
    b.AddEdge(i, i + 1, Sign::kPositive).CheckOK();
  }
  return std::move(b.Build()).ValueOrDie();
}

TEST(CostKindTest, HandComputedValues) {
  SignedGraph g = CostPlayground();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  std::vector<NodeId> team{0, 2, 4};
  // Pairwise distances: (0,2)=2, (0,4)=4, (2,4)=2.
  EXPECT_EQ(TeamCost(oracle.get(), team, CostKind::kDiameter), 4u);
  EXPECT_EQ(TeamCost(oracle.get(), team, CostKind::kSumOfPairs), 8u);
  // Star costs: centre 0 -> 2+4=6, centre 2 -> 2+2=4, centre 4 -> 4+2=6.
  EXPECT_EQ(TeamCost(oracle.get(), team, CostKind::kCenterStar), 4u);
}

TEST(CostKindTest, SingletonAndPairTeams) {
  SignedGraph g = CostPlayground();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  std::vector<NodeId> solo{2};
  for (CostKind kind :
       {CostKind::kDiameter, CostKind::kSumOfPairs, CostKind::kCenterStar}) {
    EXPECT_EQ(TeamCost(oracle.get(), solo, kind), 0u) << CostKindName(kind);
  }
  std::vector<NodeId> pair{1, 3};
  EXPECT_EQ(TeamCost(oracle.get(), pair, CostKind::kDiameter), 2u);
  EXPECT_EQ(TeamCost(oracle.get(), pair, CostKind::kSumOfPairs), 2u);
  EXPECT_EQ(TeamCost(oracle.get(), pair, CostKind::kCenterStar), 2u);
}

TEST(CostKindTest, NamesStable) {
  EXPECT_STREQ(CostKindName(CostKind::kDiameter), "Diameter");
  EXPECT_STREQ(CostKindName(CostKind::kSumOfPairs), "SumOfPairs");
  EXPECT_STREQ(CostKindName(CostKind::kCenterStar), "CenterStar");
}

struct TopKFixture {
  SignedGraph g;
  SkillAssignment sa;
  std::unique_ptr<CompatibilityOracle> oracle;
  std::unique_ptr<SkillCompatibilityIndex> index;

  TopKFixture() {
    Rng rng(21);
    g = RandomConnectedGnm(50, 150, 0.15, &rng);
    ZipfSkillParams sp;
    sp.num_skills = 8;
    sa = ZipfSkills(50, sp, &rng);
    oracle = MakeOracle(g, CompatKind::kNNE);
    Rng index_rng(23);
    index = std::make_unique<SkillCompatibilityIndex>(oracle.get(), sa, 0,
                                                      &index_rng);
  }
};

TEST(TopKTest, SortedDistinctAndConsistentWithForm) {
  TopKFixture fx;
  GreedyParams params;
  GreedyTeamFormer former(fx.oracle.get(), fx.sa, fx.index.get(), params);
  Rng rng(25);
  Task task = RandomTask(fx.sa, 3, &rng);
  auto top = former.FormTopK(task, 5, &rng);
  ASSERT_FALSE(top.empty());
  for (size_t i = 0; i + 1 < top.size(); ++i) {
    EXPECT_LE(top[i].objective, top[i + 1].objective);
    EXPECT_NE(top[i].members, top[i + 1].members);
  }
  for (const TeamResult& t : top) {
    EXPECT_TRUE(TeamCoversTask(fx.sa, task, t.members));
    EXPECT_TRUE(TeamCompatible(fx.oracle.get(), t.members));
  }
  // The top-1 team matches Form's objective value.
  Rng rng2(25);
  TeamResult single = former.Form(task, &rng2);
  EXPECT_EQ(single.objective, top[0].objective);
}

TEST(TopKTest, RespectsK) {
  TopKFixture fx;
  GreedyParams params;
  GreedyTeamFormer former(fx.oracle.get(), fx.sa, fx.index.get(), params);
  Rng rng(27);
  Task task = RandomTask(fx.sa, 3, &rng);
  EXPECT_LE(former.FormTopK(task, 2, &rng).size(), 2u);
  EXPECT_TRUE(former.FormTopK(task, 0, &rng).empty());
  EXPECT_TRUE(former.FormTopK(Task(), 3, &rng).empty());
}

TEST(TopKTest, AlternativeObjectiveChangesSelection) {
  TopKFixture fx;
  Rng rng(29);
  Task task = RandomTask(fx.sa, 4, &rng);
  GreedyParams diameter_params;
  diameter_params.cost_kind = CostKind::kDiameter;
  GreedyParams sum_params;
  sum_params.cost_kind = CostKind::kSumOfPairs;
  GreedyTeamFormer by_diameter(fx.oracle.get(), fx.sa, fx.index.get(),
                               diameter_params);
  GreedyTeamFormer by_sum(fx.oracle.get(), fx.sa, fx.index.get(), sum_params);
  Rng r1(31), r2(31);
  TeamResult a = by_diameter.Form(task, &r1);
  TeamResult b = by_sum.Form(task, &r2);
  if (a.found && b.found) {
    // The sum-selected team's sum objective can never exceed the
    // diameter-selected team's sum (both argmin over the same candidates).
    EXPECT_LE(b.objective,
              TeamCost(fx.oracle.get(), a.members, CostKind::kSumOfPairs));
  }
}

}  // namespace
}  // namespace tfsn
