#include "src/skills/skills.h"

#include <gtest/gtest.h>

#include "src/skills/skill_generator.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

SkillAssignment SmallAssignment() {
  // user 0: {0, 2}; user 1: {1}; user 2: {0, 1, 2}; user 3: {}.
  return std::move(SkillAssignment::Create({{0, 2}, {1}, {0, 1, 2}, {}}, 4))
      .ValueOrDie();
}

TEST(SkillAssignmentTest, ForwardAndInvertedIndexAgree) {
  SkillAssignment sa = SmallAssignment();
  EXPECT_EQ(sa.num_users(), 4u);
  EXPECT_EQ(sa.num_skills(), 4u);
  EXPECT_EQ(sa.num_assignments(), 6u);
  ASSERT_EQ(sa.SkillsOf(0).size(), 2u);
  EXPECT_EQ(sa.SkillsOf(0)[0], 0u);
  EXPECT_EQ(sa.SkillsOf(0)[1], 2u);
  EXPECT_TRUE(sa.SkillsOf(3).empty());
  auto holders0 = sa.Holders(0);
  ASSERT_EQ(holders0.size(), 2u);
  EXPECT_EQ(holders0[0], 0u);
  EXPECT_EQ(holders0[1], 2u);
  EXPECT_TRUE(sa.Holders(3).empty());
  EXPECT_EQ(sa.Frequency(1), 2u);
  EXPECT_EQ(sa.Frequency(3), 0u);
}

TEST(SkillAssignmentTest, HasSkill) {
  SkillAssignment sa = SmallAssignment();
  EXPECT_TRUE(sa.HasSkill(0, 2));
  EXPECT_FALSE(sa.HasSkill(0, 1));
  EXPECT_FALSE(sa.HasSkill(3, 0));
}

TEST(SkillAssignmentTest, DeduplicatesInput) {
  auto sa = std::move(SkillAssignment::Create({{2, 2, 1, 1}}, 3)).ValueOrDie();
  EXPECT_EQ(sa.num_assignments(), 2u);
  EXPECT_EQ(sa.SkillsOf(0).size(), 2u);
}

TEST(SkillAssignmentTest, RejectsOutOfRangeSkill) {
  EXPECT_FALSE(SkillAssignment::Create({{5}}, 3).ok());
}

TEST(SkillAssignmentTest, InfersNumSkills) {
  auto sa = std::move(SkillAssignment::Create({{7}, {2}})).ValueOrDie();
  EXPECT_EQ(sa.num_skills(), 8u);
}

TEST(TaskTest, SortsAndDeduplicates) {
  Task t({3, 1, 3, 2});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.Contains(1));
  EXPECT_TRUE(t.Contains(3));
  EXPECT_FALSE(t.Contains(0));
}

TEST(TaskTest, EmptyTask) {
  Task t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Contains(0));
}

TEST(SkillCoverageTest, TracksProgress) {
  Task t({0, 1, 2});
  SkillCoverage cov(t);
  EXPECT_EQ(cov.remaining(), 3u);
  EXPECT_FALSE(cov.AllCovered());
  std::vector<SkillId> u0{0, 2};
  EXPECT_EQ(cov.Cover(u0), 2u);
  EXPECT_TRUE(cov.IsCovered(0));
  EXPECT_FALSE(cov.IsCovered(1));
  EXPECT_EQ(cov.Uncovered(), std::vector<SkillId>{1});
  std::vector<SkillId> u1{1, 2};  // 2 already covered
  EXPECT_EQ(cov.Cover(u1), 1u);
  EXPECT_TRUE(cov.AllCovered());
}

TEST(SkillCoverageTest, IrrelevantSkillsIgnored) {
  Task t({5});
  SkillCoverage cov(t);
  std::vector<SkillId> other{1, 2, 3};
  EXPECT_EQ(cov.Cover(other), 0u);
  EXPECT_EQ(cov.remaining(), 1u);
}

TEST(ZipfSkillsTest, EveryUserHasSkillWhenRequested) {
  Rng rng(7);
  ZipfSkillParams params;
  params.num_skills = 50;
  params.mean_skills_per_user = 0.2;  // sparse: guarantee matters
  SkillAssignment sa = ZipfSkills(100, params, &rng);
  for (uint32_t u = 0; u < sa.num_users(); ++u) {
    EXPECT_GE(sa.SkillsOf(u).size(), 1u);
  }
}

TEST(ZipfSkillsTest, FrequenciesRoughlyZipfOrdered) {
  Rng rng(11);
  ZipfSkillParams params;
  params.num_skills = 100;
  params.mean_skills_per_user = 5.0;
  SkillAssignment sa = ZipfSkills(2000, params, &rng);
  // Head skill must dominate deep-tail skills by a wide margin.
  uint32_t tail_max = 0;
  for (SkillId s = 50; s < 100; ++s) tail_max = std::max(tail_max, sa.Frequency(s));
  EXPECT_GT(sa.Frequency(0), tail_max * 2);
}

TEST(ZipfSkillsTest, MeanSkillsApproximatelyRespected) {
  Rng rng(13);
  ZipfSkillParams params;
  params.num_skills = 200;
  params.mean_skills_per_user = 3.0;
  params.every_user_has_skill = false;
  SkillAssignment sa = ZipfSkills(5000, params, &rng);
  double mean = static_cast<double>(sa.num_assignments()) / sa.num_users();
  // Duplicates (same user drawing the same skill twice) shave the mean.
  EXPECT_GT(mean, 2.0);
  EXPECT_LE(mean, 3.0);
}

TEST(RandomTaskTest, RequestedSizeDistinctNonEmptySkills) {
  Rng rng(17);
  ZipfSkillParams params;
  params.num_skills = 60;
  SkillAssignment sa = ZipfSkills(300, params, &rng);
  for (uint32_t k : {1u, 5u, 10u}) {
    Task t = RandomTask(sa, k, &rng);
    EXPECT_EQ(t.size(), k);
    for (SkillId s : t.skills()) EXPECT_GT(sa.Frequency(s), 0u);
  }
}

TEST(RandomTaskTest, BatchGeneration) {
  Rng rng(19);
  ZipfSkillParams params;
  params.num_skills = 40;
  SkillAssignment sa = ZipfSkills(200, params, &rng);
  auto tasks = RandomTasks(sa, 4, 25, &rng);
  EXPECT_EQ(tasks.size(), 25u);
  for (const Task& t : tasks) EXPECT_EQ(t.size(), 4u);
}

}  // namespace
}  // namespace tfsn
