// The two worked examples from Figure 1 of the paper, used as ground truth
// across test suites.

#pragma once

#include "src/graph/graph_builder.h"
#include "src/graph/signed_graph.h"

namespace tfsn::testgraphs {

// Node labels for Figure 1(a).
inline constexpr NodeId kU = 0, kX1 = 1, kX2 = 2, kX3 = 3, kX4 = 4, kV = 5;

/// Figure 1(a): u and v are SBP-compatible but not SP-compatible.
/// - only shortest u-v path is (u,x1,v), negative;
/// - (u,x2,x1,v) is positive but NOT balanced (chord (u,x1) makes the
///   unbalanced triangle (u,x1,x2));
/// - (u,x2,x3,x4,v) is positive and balanced.
inline SignedGraph Figure1a() {
  SignedGraphBuilder b(6);
  b.AddEdge(kU, kX1, Sign::kNegative).CheckOK();
  b.AddEdge(kX1, kV, Sign::kPositive).CheckOK();
  b.AddEdge(kU, kX2, Sign::kPositive).CheckOK();
  b.AddEdge(kX2, kX1, Sign::kPositive).CheckOK();
  b.AddEdge(kX2, kX3, Sign::kNegative).CheckOK();
  b.AddEdge(kX3, kX4, Sign::kNegative).CheckOK();
  b.AddEdge(kX4, kV, Sign::kPositive).CheckOK();
  return std::move(b.Build()).ValueOrDie();
}

// Node labels for Figure 1(b).
inline constexpr NodeId kBU = 0, kBX1 = 1, kBX2 = 2, kBX3 = 3, kBX4 = 4,
                        kBX5 = 5, kBV = 6;

/// Figure 1(b): the prefix property fails for balanced paths. The shortest
/// balanced path u->x4 is (u,x3,x4), but the shortest balanced u->v path
/// (u,x1,x2,x4,x5,v) does not extend it, because (u,x3,x4,x5,v) is
/// unbalanced (negative chord (x3,x5)). SBPH therefore misses (u,v) while
/// exact SBP finds it.
inline SignedGraph Figure1b() {
  SignedGraphBuilder b(7);
  b.AddEdge(kBU, kBX1, Sign::kPositive).CheckOK();
  b.AddEdge(kBX1, kBX2, Sign::kPositive).CheckOK();
  b.AddEdge(kBX2, kBX4, Sign::kPositive).CheckOK();
  b.AddEdge(kBU, kBX3, Sign::kPositive).CheckOK();
  b.AddEdge(kBX3, kBX4, Sign::kPositive).CheckOK();
  b.AddEdge(kBX3, kBX5, Sign::kNegative).CheckOK();
  b.AddEdge(kBX4, kBX5, Sign::kPositive).CheckOK();
  b.AddEdge(kBX5, kBV, Sign::kPositive).CheckOK();
  return std::move(b.Build()).ValueOrDie();
}

// Node labels for the two-sided prefix-trap gadget.
inline constexpr NodeId kGU = 0, kGX1 = 1, kGX2 = 2, kGX3 = 3, kGX4 = 4,
                        kGX5 = 5, kGY3 = 6, kGY2 = 7, kGY1 = 8, kGV = 9;

/// Figure 1(b) doubled: the prefix trap is installed on *both* endpoints,
/// so the SBPH label-setting heuristic misses the balanced positive u-v
/// path from either direction, while exact SBP finds
/// (u,x1,x2,x4,x5,y2,y1,v). Used to show SBPH ⊊ SBP even under the
/// symmetric closure.
inline SignedGraph TwoSidedPrefixTrap() {
  SignedGraphBuilder b(10);
  // Left clean route u -> x4 (length 3) and short trap route (length 2).
  b.AddEdge(kGU, kGX1, Sign::kPositive).CheckOK();
  b.AddEdge(kGX1, kGX2, Sign::kPositive).CheckOK();
  b.AddEdge(kGX2, kGX4, Sign::kPositive).CheckOK();
  b.AddEdge(kGU, kGX3, Sign::kPositive).CheckOK();
  b.AddEdge(kGX3, kGX4, Sign::kPositive).CheckOK();
  b.AddEdge(kGX3, kGX5, Sign::kNegative).CheckOK();  // left trap chord
  // Junction.
  b.AddEdge(kGX4, kGX5, Sign::kPositive).CheckOK();
  // Right short trap route v -> x5 (length 2) and clean route (length 3).
  b.AddEdge(kGX5, kGY3, Sign::kPositive).CheckOK();
  b.AddEdge(kGY3, kGV, Sign::kPositive).CheckOK();
  b.AddEdge(kGY3, kGX4, Sign::kNegative).CheckOK();  // right trap chord
  b.AddEdge(kGX5, kGY2, Sign::kPositive).CheckOK();
  b.AddEdge(kGY2, kGY1, Sign::kPositive).CheckOK();
  b.AddEdge(kGY1, kGV, Sign::kPositive).CheckOK();
  return std::move(b.Build()).ValueOrDie();
}

}  // namespace tfsn::testgraphs
