// Tests for Algorithm 2 (greedy team formation), the exact solver, the
// unsigned RarestFirst baseline, and the cost/validity helpers.

#include "src/team/greedy.h"

#include <gtest/gtest.h>

#include "src/compat/skill_index.h"
#include "src/gen/generators.h"
#include "src/graph/bfs.h"
#include "src/graph/graph_builder.h"
#include "src/graph/transform.h"
#include "src/skills/skill_generator.h"
#include "src/team/cost.h"
#include "src/team/exact.h"
#include "src/team/unsigned_tf.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

// A 6-node playground:
//   0 -(+)- 1 -(+)- 2 -(+)- 3,  0 -(-)- 4 -(+)- 5, 1 -(+)- 5
SignedGraph Playground() {
  SignedGraphBuilder b(6);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  b.AddEdge(0, 4, Sign::kNegative).CheckOK();
  b.AddEdge(4, 5, Sign::kPositive).CheckOK();
  b.AddEdge(1, 5, Sign::kPositive).CheckOK();
  return std::move(b.Build()).ValueOrDie();
}

SkillAssignment PlaygroundSkills() {
  // skills: 0:"a", 1:"b", 2:"c".
  // user0: a; user1: b; user2: a,c; user3: c; user4: b; user5: c.
  return std::move(SkillAssignment::Create(
                       {{0}, {1}, {0, 2}, {2}, {1}, {2}}, 3))
      .ValueOrDie();
}

GreedyParams LcmdParams() {
  GreedyParams p;
  p.skill_policy = SkillPolicy::kLeastCompatible;
  p.user_policy = UserPolicy::kMinDistance;
  return p;
}

TEST(CostTest, TeamDiameterAndCompatibility) {
  SignedGraph g = Playground();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  std::vector<NodeId> team{0, 1, 2};
  EXPECT_EQ(TeamDiameter(oracle.get(), team), 2u);
  EXPECT_TRUE(TeamCompatible(oracle.get(), team));
  std::vector<NodeId> foes{0, 4};
  EXPECT_FALSE(TeamCompatible(oracle.get(), foes));
  std::vector<NodeId> solo{3};
  EXPECT_EQ(TeamDiameter(oracle.get(), solo), 0u);
  EXPECT_TRUE(TeamCompatible(oracle.get(), solo));
}

TEST(CostTest, CoverageCheck) {
  SkillAssignment sa = PlaygroundSkills();
  Task task({0, 1, 2});
  std::vector<NodeId> covers{0, 1, 3};
  EXPECT_TRUE(TeamCoversTask(sa, task, covers));
  std::vector<NodeId> misses{0, 1};
  EXPECT_FALSE(TeamCoversTask(sa, task, misses));
}

TEST(GreedyTest, FindsValidTeamOnPlayground) {
  SignedGraph g = Playground();
  SkillAssignment sa = PlaygroundSkills();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  Rng rng(1);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  GreedyTeamFormer former(oracle.get(), sa, &index, LcmdParams());
  Task task({0, 1, 2});
  TeamResult result = former.Form(task, &rng);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(TeamCoversTask(sa, task, result.members));
  EXPECT_TRUE(TeamCompatible(oracle.get(), result.members));
  EXPECT_EQ(result.cost, TeamDiameter(oracle.get(), result.members));
}

TEST(GreedyTest, SingleUserCoversAll) {
  SignedGraph g = Playground();
  auto sa = std::move(SkillAssignment::Create(
                          {{0, 1, 2}, {}, {}, {}, {}, {}}, 3))
                .ValueOrDie();
  auto oracle = MakeOracle(g, CompatKind::kSPA);
  Rng rng(2);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  GreedyTeamFormer former(oracle.get(), sa, &index, LcmdParams());
  TeamResult result = former.Form(Task({0, 1, 2}), &rng);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.members, std::vector<NodeId>{0});
  EXPECT_EQ(result.cost, 0u);
}

TEST(GreedyTest, EmptyTaskTriviallySolved) {
  SignedGraph g = Playground();
  SkillAssignment sa = PlaygroundSkills();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  Rng rng(3);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  GreedyTeamFormer former(oracle.get(), sa, &index, LcmdParams());
  TeamResult result = former.Form(Task(), &rng);
  EXPECT_TRUE(result.found);
  EXPECT_TRUE(result.members.empty());
}

TEST(GreedyTest, InfeasibleWhenOnlyHoldersAreFoes) {
  // skill 0 only at user 0, skill 1 only at user 4; (0,4) is a negative
  // edge, so no compatible team exists under any relation.
  SignedGraph g = Playground();
  auto sa = std::move(SkillAssignment::Create(
                          {{0}, {}, {}, {}, {1}, {}}, 2))
                .ValueOrDie();
  for (CompatKind kind : AllCompatKinds()) {
    auto oracle = MakeOracle(g, kind);
    Rng rng(4);
    SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
    GreedyTeamFormer former(oracle.get(), sa, &index, LcmdParams());
    TeamResult result = former.Form(Task({0, 1}), &rng);
    EXPECT_FALSE(result.found) << CompatKindName(kind);
    // The exact solver agrees: this is a TFSNC "no".
    ExactResult exact = SolveExact(oracle.get(), sa, Task({0, 1}));
    EXPECT_FALSE(exact.found) << CompatKindName(kind);
  }
}

TEST(GreedyTest, AllPoliciesProduceValidTeams) {
  Rng graph_rng(5);
  SignedGraph g = RandomConnectedGnm(60, 180, 0.2, &graph_rng);
  ZipfSkillParams sp;
  sp.num_skills = 15;
  SkillAssignment sa = ZipfSkills(60, sp, &graph_rng);
  auto oracle = MakeOracle(g, CompatKind::kSPO);
  Rng rng(6);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  for (SkillPolicy skill_policy :
       {SkillPolicy::kRarest, SkillPolicy::kLeastCompatible}) {
    for (UserPolicy user_policy :
         {UserPolicy::kMinDistance, UserPolicy::kMostCompatible,
          UserPolicy::kRandom}) {
      GreedyParams params;
      params.skill_policy = skill_policy;
      params.user_policy = user_policy;
      GreedyTeamFormer former(oracle.get(), sa, &index, params);
      for (int trial = 0; trial < 5; ++trial) {
        Task task = RandomTask(sa, 4, &rng);
        TeamResult result = former.Form(task, &rng);
        if (!result.found) continue;
        EXPECT_TRUE(TeamCoversTask(sa, task, result.members))
            << SkillPolicyName(skill_policy) << "/"
            << UserPolicyName(user_policy);
        EXPECT_TRUE(TeamCompatible(oracle.get(), result.members));
      }
    }
  }
}

TEST(GreedyTest, SeedCapRespected) {
  Rng graph_rng(7);
  SignedGraph g = RandomConnectedGnm(80, 200, 0.1, &graph_rng);
  ZipfSkillParams sp;
  sp.num_skills = 5;  // dense skills -> many holders
  sp.mean_skills_per_user = 2.0;
  SkillAssignment sa = ZipfSkills(80, sp, &graph_rng);
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  Rng rng(8);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  GreedyParams params = LcmdParams();
  params.max_seeds = 3;
  GreedyTeamFormer former(oracle.get(), sa, &index, params);
  TeamResult result = former.Form(RandomTask(sa, 3, &rng), &rng);
  EXPECT_LE(result.seeds_tried, 3u);
}

TEST(GreedyTest, GreedyNeverBeatsExact) {
  // Property: on instances where both succeed, greedy cost >= exact cost;
  // and greedy success implies exact success.
  Rng master(9);
  for (int trial = 0; trial < 6; ++trial) {
    Rng graph_rng = master.Fork();
    SignedGraph g = RandomConnectedGnm(25, 60, 0.25, &graph_rng);
    ZipfSkillParams sp;
    sp.num_skills = 8;
    SkillAssignment sa = ZipfSkills(25, sp, &graph_rng);
    auto oracle = MakeOracle(g, CompatKind::kSPM);
    Rng rng = master.Fork();
    SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
    GreedyTeamFormer former(oracle.get(), sa, &index, LcmdParams());
    Task task = RandomTask(sa, 3, &rng);
    TeamResult greedy = former.Form(task, &rng);
    ExactResult exact = SolveExact(oracle.get(), sa, task);
    if (greedy.found) {
      ASSERT_TRUE(exact.found);
      EXPECT_GE(greedy.cost, exact.cost);
    }
  }
}

TEST(ExactTest, FeasibilityOnlyStopsEarly) {
  Rng graph_rng(10);
  SignedGraph g = RandomConnectedGnm(30, 80, 0.2, &graph_rng);
  ZipfSkillParams sp;
  sp.num_skills = 6;
  SkillAssignment sa = ZipfSkills(30, sp, &graph_rng);
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  Rng rng(11);
  Task task = RandomTask(sa, 3, &rng);
  ExactParams feasibility;
  feasibility.feasibility_only = true;
  ExactResult fast = SolveExact(oracle.get(), sa, task, feasibility);
  ExactResult full = SolveExact(oracle.get(), sa, task);
  EXPECT_EQ(fast.found, full.found);
  if (full.found) {
    EXPECT_LE(fast.expansions, full.expansions);
    EXPECT_GE(fast.cost, full.cost);
  }
}

TEST(ExactTest, OptimalTeamIsValid) {
  Rng graph_rng(12);
  SignedGraph g = RandomConnectedGnm(24, 60, 0.3, &graph_rng);
  ZipfSkillParams sp;
  sp.num_skills = 8;
  SkillAssignment sa = ZipfSkills(24, sp, &graph_rng);
  auto oracle = MakeOracle(g, CompatKind::kSPO);
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    Task task = RandomTask(sa, 3, &rng);
    ExactResult exact = SolveExact(oracle.get(), sa, task);
    if (!exact.found) continue;
    EXPECT_TRUE(TeamCoversTask(sa, task, exact.members));
    EXPECT_TRUE(TeamCompatible(oracle.get(), exact.members));
    EXPECT_EQ(exact.cost, TeamDiameter(oracle.get(), exact.members));
  }
}

TEST(ExactTest, BudgetExhaustionReported) {
  Rng graph_rng(14);
  SignedGraph g = RandomConnectedGnm(60, 200, 0.1, &graph_rng);
  ZipfSkillParams sp;
  sp.num_skills = 4;
  sp.mean_skills_per_user = 2.0;
  SkillAssignment sa = ZipfSkills(60, sp, &graph_rng);
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  Rng rng(15);
  ExactParams params;
  params.expansion_budget = 1;  // only the root call fits
  ExactResult r = SolveExact(oracle.get(), sa, RandomTask(sa, 4, &rng), params);
  EXPECT_TRUE(r.exhausted);
}

TEST(RarestFirstTest, CoversTaskIgnoringSigns) {
  SignedGraph g = Playground();
  SkillAssignment sa = PlaygroundSkills();
  UnsignedTeamResult r = RarestFirst(IgnoreSigns(g), sa, Task({0, 1, 2}));
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(TeamCoversTask(sa, Task({0, 1, 2}), r.members));
}

TEST(RarestFirstTest, MayReturnIncompatibleTeam) {
  // The Table 3 phenomenon: RarestFirst on the unsigned view can return
  // teams that violate compatibility in the signed graph.
  SignedGraphBuilder b(2);
  b.AddEdge(0, 1, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto sa = std::move(SkillAssignment::Create({{0}, {1}}, 2)).ValueOrDie();
  UnsignedTeamResult r = RarestFirst(IgnoreSigns(g), sa, Task({0, 1}));
  ASSERT_TRUE(r.found);
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  EXPECT_FALSE(TeamCompatible(oracle.get(), r.members));
}

TEST(RarestFirstTest, FailsOnDisconnectedDeleteNegative) {
  // Deleting the negative bridge makes skill 1's only holder unreachable.
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto sa = std::move(SkillAssignment::Create({{0}, {}, {1}}, 2)).ValueOrDie();
  UnsignedTeamResult r = RarestFirst(DeleteNegativeEdges(g), sa, Task({0, 1}));
  EXPECT_FALSE(r.found);
}

TEST(RarestFirstTest, EmptyTask) {
  SignedGraph g = Playground();
  SkillAssignment sa = PlaygroundSkills();
  UnsignedTeamResult r = RarestFirst(g, sa, Task());
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.members.empty());
}

TEST(RarestFirstTest, MissingSkillFails) {
  SignedGraph g = Playground();
  auto sa = std::move(SkillAssignment::Create(
                          {{0}, {}, {}, {}, {}, {}}, 2))
                .ValueOrDie();
  UnsignedTeamResult r = RarestFirst(g, sa, Task({0, 1}));
  EXPECT_FALSE(r.found);
}

TEST(MaxBoundTest, TaskSkillsCompatible) {
  SignedGraph g = Playground();
  SkillAssignment sa = PlaygroundSkills();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  Rng rng(16);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  EXPECT_TRUE(TaskSkillsCompatible(index, Task({0, 1, 2})));
  // The MAX bound dominates actual solvability: whenever the greedy former
  // finds a team, the bound must hold.
  GreedyTeamFormer former(oracle.get(), sa, &index, LcmdParams());
  TeamResult result = former.Form(Task({0, 1, 2}), &rng);
  if (result.found) {
    EXPECT_TRUE(TaskSkillsCompatible(index, Task({0, 1, 2})));
  }
}

TEST(PolicyNamesTest, Stable) {
  EXPECT_STREQ(SkillPolicyName(SkillPolicy::kRarest), "Rarest");
  EXPECT_STREQ(SkillPolicyName(SkillPolicy::kLeastCompatible),
               "LeastCompatible");
  EXPECT_STREQ(UserPolicyName(UserPolicy::kMinDistance), "MinDistance");
  EXPECT_STREQ(UserPolicyName(UserPolicy::kMostCompatible), "MostCompatible");
  EXPECT_STREQ(UserPolicyName(UserPolicy::kRandom), "Random");
}

}  // namespace
}  // namespace tfsn
