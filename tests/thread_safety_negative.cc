// Proof that Clang Thread Safety Analysis is live in this build system.
//
// Compiled two ways by tests/CMakeLists.txt (Clang only):
//
//   * tsa_positive_compile — without TFSN_TSA_NEGATIVE, part of the normal
//     build: the correctly-locked code below must compile cleanly under
//     -Wthread-safety -Werror.
//   * tsa_negative_compile — with -DTFSN_TSA_NEGATIVE, EXCLUDE_FROM_ALL,
//     driven by the `thread_safety_negative_compile` CTest (WILL_FAIL):
//     the same guarded member is touched WITHOUT the lock, so the build
//     must fail. If someone turns the analysis off — drops the warning
//     flag, breaks the macro expansion, un-annotates Mutex — that test
//     starts "succeeding" to compile and CTest reports the failure.
//
// Keep this file minimal: one guarded member, one correct access, one
// gated violation of each common kind (guarded write without the lock,
// REQUIRES call without the lock, EXCLUDES self-deadlock).

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace tfsn {
namespace {

class Account {
 public:
  void Deposit(int amount) TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    DepositLocked(amount);
  }

  int balance() const TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return balance_;
  }

#ifdef TFSN_TSA_NEGATIVE
  // VIOLATION 1: guarded member written without holding mu_.
  void DepositRacy(int amount) { balance_ += amount; }

  // VIOLATION 2: calling a TFSN_REQUIRES method without the lock.
  void DepositUnlockedCall(int amount) { DepositLocked(amount); }

  // VIOLATION 3: self-deadlock — calling an EXCLUDES entry point while
  // already holding the lock.
  void DepositTwice(int amount) {
    MutexLock lock(&mu_);
    Deposit(amount);
  }
#endif

 private:
  void DepositLocked(int amount) TFSN_REQUIRES(mu_) { balance_ += amount; }

  mutable Mutex mu_;
  int balance_ TFSN_GUARDED_BY(mu_) = 0;
};

// Anchor so the TU is never empty and the class is instantiated.
int Use() {
  Account account;
  account.Deposit(1);
#ifdef TFSN_TSA_NEGATIVE
  account.DepositRacy(1);
  account.DepositUnlockedCall(1);
  account.DepositTwice(1);
#endif
  return account.balance();
}

// Referenced via a volatile sink so -Wunused doesn't fire on Use().
volatile int tsa_anchor = 0;
struct Anchor {
  Anchor() { tsa_anchor = Use(); }
} anchor;

}  // namespace
}  // namespace tfsn
