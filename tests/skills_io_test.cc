#include "src/skills/skills_io.h"

#include <gtest/gtest.h>

#include "src/skills/skill_generator.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

TEST(SkillsIoTest, RoundTripThroughString) {
  Rng rng(3);
  ZipfSkillParams params;
  params.num_skills = 40;
  SkillAssignment sa = ZipfSkills(25, params, &rng);
  auto parsed = ParseSkills(ToSkillsString(sa));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_users(), sa.num_users());
  EXPECT_EQ(parsed->num_skills(), sa.num_skills());
  EXPECT_EQ(parsed->num_assignments(), sa.num_assignments());
  for (uint32_t u = 0; u < sa.num_users(); ++u) {
    ASSERT_EQ(parsed->SkillsOf(u).size(), sa.SkillsOf(u).size());
    for (size_t i = 0; i < sa.SkillsOf(u).size(); ++i) {
      EXPECT_EQ(parsed->SkillsOf(u)[i], sa.SkillsOf(u)[i]);
    }
  }
}

TEST(SkillsIoTest, EmptyLinesAreSkilllessUsers) {
  auto parsed = ParseSkills("!skills 5\n0 2\n\n4\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_users(), 3u);
  EXPECT_TRUE(parsed->SkillsOf(1).empty());
  EXPECT_EQ(parsed->num_skills(), 5u);
}

TEST(SkillsIoTest, CommentsIgnored) {
  auto parsed = ParseSkills("# hello\n!skills 3\n1\n# mid comment\n2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_users(), 2u);
}

TEST(SkillsIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseSkills("!skills x\n").ok());
  EXPECT_FALSE(ParseSkills("1 banana\n").ok());
  EXPECT_FALSE(ParseSkills("!skills 2\n7\n").ok());  // id out of range
}

TEST(SkillsIoTest, FileRoundTrip) {
  Rng rng(5);
  ZipfSkillParams params;
  params.num_skills = 16;
  SkillAssignment sa = ZipfSkills(12, params, &rng);
  std::string path = testing::TempDir() + "/tfsn_skills.txt";
  ASSERT_TRUE(WriteSkills(sa, path).ok());
  auto loaded = LoadSkills(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_assignments(), sa.num_assignments());
  EXPECT_EQ(loaded->num_skills(), sa.num_skills());
}

TEST(SkillsIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadSkills("/no/such/skills.txt").ok());
}

}  // namespace
}  // namespace tfsn
