// Tests for team refinement and the materialized compatibility matrix.

#include "src/team/refine.h"

#include <gtest/gtest.h>

#include "src/compat/compat_graph.h"
#include "src/compat/skill_index.h"
#include "src/gen/generators.h"
#include "src/graph/graph_builder.h"
#include "src/skills/skill_generator.h"
#include "src/team/greedy.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

TEST(RefineTest, DropsRedundantMember) {
  // Path 0-1-2 all positive; task {a}; team {0, 2} where both hold a.
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto sa = std::move(SkillAssignment::Create({{0}, {}, {0}}, 1)).ValueOrDie();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  RefinementResult r =
      RefineTeam(oracle.get(), sa, Task({0}), {0, 2});
  EXPECT_EQ(r.members.size(), 1u);
  EXPECT_EQ(r.members_removed, 1u);
  EXPECT_EQ(r.cost_after, 0u);
  EXPECT_LT(r.cost_after, r.cost_before);
}

TEST(RefineTest, SwapsDistantMemberForCloseOne) {
  // 0 needs skill 1 held by both 3 (distance 3) and 1 (distance 1).
  // Start with the bad team {0, 3}; refinement should swap 3 -> 1.
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto sa = std::move(SkillAssignment::Create({{0}, {1}, {}, {1}}, 2))
                .ValueOrDie();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  RefinementResult r = RefineTeam(oracle.get(), sa, Task({0, 1}), {0, 3});
  EXPECT_EQ(r.members, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(r.swaps_applied, 1u);
  EXPECT_EQ(r.cost_after, 1u);
  EXPECT_EQ(r.cost_before, 3u);
}

TEST(RefineTest, PreservesValidityOnRandomInstances) {
  Rng master(61);
  for (int trial = 0; trial < 8; ++trial) {
    Rng rng = master.Fork();
    SignedGraph g = RandomConnectedGnm(60, 180, 0.25, &rng);
    ZipfSkillParams sp;
    sp.num_skills = 12;
    SkillAssignment sa = ZipfSkills(60, sp, &rng);
    auto oracle = MakeOracle(g, CompatKind::kSPM);
    Rng index_rng = master.Fork();
    SkillCompatibilityIndex index(oracle.get(), sa, 0, &index_rng);
    GreedyParams params;
    GreedyTeamFormer former(oracle.get(), sa, &index, params);
    Task task = RandomTask(sa, 4, &rng);
    TeamResult team = former.Form(task, &rng);
    if (!team.found) continue;
    RefinementResult refined =
        RefineTeam(oracle.get(), sa, task, team.members);
    EXPECT_LE(refined.cost_after, refined.cost_before);
    EXPECT_TRUE(TeamCoversTask(sa, task, refined.members));
    EXPECT_TRUE(TeamCompatible(oracle.get(), refined.members));
    EXPECT_LE(refined.members.size(), team.members.size());
  }
}

TEST(RefineTest, DisabledPhasesAreNoOps) {
  Rng rng(67);
  SignedGraph g = RandomConnectedGnm(30, 80, 0.2, &rng);
  ZipfSkillParams sp;
  sp.num_skills = 6;
  SkillAssignment sa = ZipfSkills(30, sp, &rng);
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  Task task = RandomTask(sa, 3, &rng);
  // Build some covering team by brute force: all holders of each skill.
  std::vector<NodeId> team;
  for (SkillId s : task.skills()) {
    auto holders = sa.Holders(s);
    if (!holders.empty()) team.push_back(holders[0]);
  }
  RefineOptions off;
  off.prune_redundant = false;
  off.swap_members = false;
  RefinementResult r = RefineTeam(oracle.get(), sa, task, team, off);
  EXPECT_EQ(r.members_removed, 0u);
  EXPECT_EQ(r.swaps_applied, 0u);
  EXPECT_EQ(r.cost_after, r.cost_before);
}

TEST(RefineTest, SingletonTeamUntouched) {
  SignedGraphBuilder b(2);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto sa = std::move(SkillAssignment::Create({{0}, {}}, 1)).ValueOrDie();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  RefinementResult r = RefineTeam(oracle.get(), sa, Task({0}), {0});
  EXPECT_EQ(r.members, std::vector<NodeId>{0});
  EXPECT_EQ(r.cost_after, 0u);
}

// ---------------------------------------------------------------------------
// CompatibilityMatrix
// ---------------------------------------------------------------------------

TEST(CompatMatrixTest, AgreesWithOracle) {
  Rng rng(71);
  SignedGraph g = RandomConnectedGnm(40, 100, 0.3, &rng);
  for (CompatKind kind :
       {CompatKind::kSPA, CompatKind::kSBPH, CompatKind::kNNE}) {
    auto oracle = MakeOracle(g, kind);
    CompatibilityMatrix m = CompatibilityMatrix::Build(oracle.get());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(m.Compatible(u, v), oracle->Compatible(u, v))
            << CompatKindName(kind) << " (" << u << "," << v << ")";
      }
    }
  }
}

TEST(CompatMatrixTest, DensityAndDegrees) {
  // Triangle with one negative edge under NNE: pairs (0,1),(0,2) comp,
  // (1,2) not.
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kNegative).CheckOK();
  b.AddEdge(0, 2, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  CompatibilityMatrix m = CompatibilityMatrix::Build(oracle.get());
  EXPECT_EQ(m.num_compatible_pairs(), 2u);
  EXPECT_NEAR(m.density(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(m.CompatDegree(0), 2u);
  EXPECT_EQ(m.CompatDegree(1), 1u);
  EXPECT_TRUE(m.IsClique({0, 1}));
  EXPECT_FALSE(m.IsClique({0, 1, 2}));
}

TEST(CompatMatrixTest, GreedyCliqueIsMaximalClique) {
  Rng rng(73);
  SignedGraph g = RandomConnectedGnm(50, 160, 0.3, &rng);
  auto oracle = MakeOracle(g, CompatKind::kSPM);
  CompatibilityMatrix m = CompatibilityMatrix::Build(oracle.get());
  std::vector<NodeId> clique = m.GreedyMaximalClique(0);
  EXPECT_TRUE(m.IsClique(clique));
  EXPECT_TRUE(std::find(clique.begin(), clique.end(), 0u) != clique.end());
  // Maximality: no node outside extends the clique.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (std::find(clique.begin(), clique.end(), u) != clique.end()) continue;
    bool fits = true;
    for (NodeId member : clique) {
      if (!m.Compatible(u, member)) {
        fits = false;
        break;
      }
    }
    EXPECT_FALSE(fits) << "node " << u << " extends the 'maximal' clique";
  }
}

TEST(CompatMatrixTest, TeamsAreCliques) {
  // The clique view: every team Algorithm 2 outputs must be a clique of
  // the compatibility matrix.
  Rng rng(79);
  SignedGraph g = RandomConnectedGnm(50, 140, 0.2, &rng);
  ZipfSkillParams sp;
  sp.num_skills = 10;
  SkillAssignment sa = ZipfSkills(50, sp, &rng);
  auto oracle = MakeOracle(g, CompatKind::kSPO);
  CompatibilityMatrix m = CompatibilityMatrix::Build(oracle.get());
  Rng index_rng(83);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &index_rng);
  GreedyParams params;
  GreedyTeamFormer former(oracle.get(), sa, &index, params);
  for (int trial = 0; trial < 10; ++trial) {
    Task task = RandomTask(sa, 3, &rng);
    TeamResult team = former.Form(task, &rng);
    if (team.found) {
      EXPECT_TRUE(m.IsClique(team.members));
    }
  }
}

}  // namespace
}  // namespace tfsn
