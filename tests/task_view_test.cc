// Tests for the task-local dense compatibility view (task_view.h) and the
// greedy former's view fast path: the view must reproduce the oracle's
// pair semantics bit for bit, Form/FormTopK must return identical results
// on the view and oracle paths for every policy combination, and the
// parallel seed loop must be deterministic across thread counts.

#include "src/team/task_view.h"

#include <gtest/gtest.h>

#include "src/compat/skill_index.h"
#include "src/compat/threshold.h"
#include "src/gen/generators.h"
#include "src/graph/graph_builder.h"
#include "src/skills/skill_generator.h"
#include "src/team/cost.h"
#include "src/team/greedy.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

struct Instance {
  SignedGraph graph;
  SkillAssignment skills;
};

Instance MakeInstance(uint32_t n, uint64_t edges, double neg_fraction,
                      uint32_t num_skills, uint64_t seed) {
  Rng rng(seed);
  Instance inst{RandomConnectedGnm(n, edges, neg_fraction, &rng), {}};
  ZipfSkillParams sp;
  sp.num_skills = num_skills;
  inst.skills = ZipfSkills(n, sp, &rng);
  return inst;
}

void ExpectSameResult(const TeamResult& a, const TeamResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_EQ(a.members, b.members) << what;
  EXPECT_EQ(a.cost, b.cost) << what;
  EXPECT_EQ(a.objective, b.objective) << what;
  EXPECT_EQ(a.seeds_tried, b.seeds_tried) << what;
  EXPECT_EQ(a.seeds_succeeded, b.seeds_succeeded) << what;
}

TEST(TaskViewTest, MatchesOraclePairSemanticsForAllKinds) {
  Instance inst = MakeInstance(40, 100, 0.25, 10, 21);
  Rng task_rng(5);
  for (CompatKind kind : AllCompatKinds()) {
    auto oracle = MakeOracle(inst.graph, kind);
    Task task = RandomTask(inst.skills, 4, &task_rng);
    auto view = TaskCompatView::Build(oracle.get(), inst.skills, task);
    ASSERT_NE(view, nullptr) << CompatKindName(kind);
    EXPECT_EQ(view->kind(), kind);
    const uint32_t m = view->size();
    ASSERT_GT(m, 0u);
    for (uint32_t a = 0; a < m; ++a) {
      const NodeId ga = view->GlobalOf(a);
      EXPECT_EQ(view->LocalOf(ga), a);
      const auto& row = oracle->GetRow(ga);
      for (uint32_t b = 0; b < m; ++b) {
        const NodeId gb = view->GlobalOf(b);
        EXPECT_EQ(view->PairCompatible(a, b), oracle->Compatible(ga, gb))
            << CompatKindName(kind) << " pair (" << ga << "," << gb << ")";
        EXPECT_EQ(view->PairDistance(a, b), oracle->Distance(ga, gb))
            << CompatKindName(kind) << " pair (" << ga << "," << gb << ")";
        // Directional raw-row bits mirror GetRow exactly.
        EXPECT_EQ(TestBit(view->DirRow(a), b), row.comp[gb] != 0);
      }
    }
  }
}

TEST(TaskViewTest, HolderMasksMatchAssignment) {
  Instance inst = MakeInstance(50, 130, 0.2, 8, 33);
  auto oracle = MakeOracle(inst.graph, CompatKind::kNNE);
  Rng task_rng(7);
  Task task = RandomTask(inst.skills, 5, &task_rng);
  auto view = TaskCompatView::Build(oracle.get(), inst.skills, task);
  ASSERT_NE(view, nullptr);
  auto task_skills = task.skills();
  for (size_t p = 0; p < task_skills.size(); ++p) {
    EXPECT_EQ(view->TaskSkillPos(task_skills[p]), p);
    auto holders = inst.skills.Holders(task_skills[p]);
    EXPECT_EQ(view->HolderCount(p), holders.size());
    std::vector<uint32_t> locals;
    AppendSetBits(view->HolderMask(p), &locals);
    ASSERT_EQ(locals.size(), holders.size());
    for (size_t i = 0; i < holders.size(); ++i) {
      EXPECT_EQ(view->GlobalOf(locals[i]), holders[i]);
    }
  }
  // The universe is exactly the union of the holder lists, sorted.
  std::vector<NodeId> expect;
  for (SkillId s : task_skills) {
    auto hs = inst.skills.Holders(s);
    expect.insert(expect.end(), hs.begin(), hs.end());
  }
  std::sort(expect.begin(), expect.end());
  expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
  EXPECT_EQ(std::vector<NodeId>(view->universe().begin(),
                                view->universe().end()),
            expect);
}

TEST(TaskViewTest, ThresholdOracleCustomKernelSupported) {
  Instance inst = MakeInstance(36, 90, 0.3, 8, 43);
  auto oracle = MakeThresholdOracle(inst.graph, 0.75);
  Rng task_rng(9);
  Task task = RandomTask(inst.skills, 4, &task_rng);
  auto view = TaskCompatView::Build(oracle.get(), inst.skills, task);
  ASSERT_NE(view, nullptr);
  for (uint32_t a = 0; a < view->size(); ++a) {
    for (uint32_t b = 0; b < view->size(); ++b) {
      EXPECT_EQ(view->PairCompatible(a, b),
                oracle->Compatible(view->GlobalOf(a), view->GlobalOf(b)));
      EXPECT_EQ(view->PairDistance(a, b),
                oracle->Distance(view->GlobalOf(a), view->GlobalOf(b)));
    }
  }
}

TEST(TaskViewTest, UnreachablePairsWidenToOracleSentinel) {
  // Two positive components with no connecting edge: cross-component NNE
  // pairs are compatible but at infinite distance.
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  auto sa = std::move(SkillAssignment::Create({{0}, {0}, {1}, {1}}, 2))
                .ValueOrDie();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  auto view = TaskCompatView::Build(oracle.get(), sa, Task({0, 1}));
  ASSERT_NE(view, nullptr);
  const uint32_t l0 = view->LocalOf(0), l2 = view->LocalOf(2);
  EXPECT_TRUE(view->PairCompatible(l0, l2));
  EXPECT_EQ(view->PairDistance(l0, l2), kUnreachable);
  std::vector<uint32_t> team{l0, l2};
  EXPECT_EQ(TeamDiameter(*view, team), kUnreachable);
  std::vector<NodeId> global_team{0, 2};
  EXPECT_EQ(TeamDiameter(oracle.get(), global_team), kUnreachable);
}

TEST(TaskViewTest, CostOverloadsMatchOracle) {
  Instance inst = MakeInstance(45, 120, 0.25, 8, 55);
  Rng rng(11);
  for (CompatKind kind :
       {CompatKind::kSPM, CompatKind::kSBPH, CompatKind::kNNE}) {
    auto oracle = MakeOracle(inst.graph, kind);
    Task task = RandomTask(inst.skills, 5, &rng);
    auto view = TaskCompatView::Build(oracle.get(), inst.skills, task);
    ASSERT_NE(view, nullptr);
    for (int trial = 0; trial < 10; ++trial) {
      // Random teams drawn from the universe.
      std::vector<uint32_t> locals;
      std::vector<NodeId> globals;
      const uint32_t team_size =
          2 + static_cast<uint32_t>(rng.NextBounded(4));
      for (uint32_t i = 0; i < team_size; ++i) {
        const uint32_t l =
            static_cast<uint32_t>(rng.NextBounded(view->size()));
        locals.push_back(l);
        globals.push_back(view->GlobalOf(l));
      }
      EXPECT_EQ(TeamDiameter(*view, locals),
                TeamDiameter(oracle.get(), globals));
      EXPECT_EQ(TeamCompatible(*view, locals),
                TeamCompatible(oracle.get(), globals));
      for (CostKind cost_kind : {CostKind::kDiameter, CostKind::kSumOfPairs,
                                 CostKind::kCenterStar}) {
        EXPECT_EQ(TeamCost(*view, locals, cost_kind),
                  TeamCost(oracle.get(), globals, cost_kind));
      }
    }
  }
}

TEST(TaskViewTest, ExactMaxBoundMatchesOracle) {
  Instance inst = MakeInstance(40, 95, 0.35, 10, 77);
  Rng rng(13);
  for (CompatKind kind :
       {CompatKind::kSPA, CompatKind::kSBPH, CompatKind::kNNE}) {
    auto oracle = MakeOracle(inst.graph, kind);
    for (int trial = 0; trial < 8; ++trial) {
      Task task = RandomTask(inst.skills, 4, &rng);
      auto view = TaskCompatView::Build(oracle.get(), inst.skills, task);
      ASSERT_NE(view, nullptr);
      EXPECT_EQ(TaskSkillsCompatibleExact(*view),
                TaskSkillsCompatibleExact(oracle.get(), inst.skills, task))
          << CompatKindName(kind);
    }
  }
}

TEST(TaskViewTest, BuildFallsBackOnTinyBudget) {
  Instance inst = MakeInstance(30, 70, 0.2, 6, 91);
  auto oracle = MakeOracle(inst.graph, CompatKind::kNNE);
  Rng rng(15);
  Task task = RandomTask(inst.skills, 3, &rng);
  EXPECT_EQ(TaskCompatView::Build(oracle.get(), inst.skills, task,
                                  /*threads=*/1, /*max_bytes=*/16),
            nullptr);
}

// ---------------------------------------------------------------------------
// Former equivalence: view path vs oracle path
// ---------------------------------------------------------------------------

GreedyParams PathParams(SkillPolicy sp, UserPolicy up, GreedyEvalPath path) {
  GreedyParams p;
  p.skill_policy = sp;
  p.user_policy = up;
  p.eval_path = path;
  return p;
}

TEST(GreedyViewEquivalenceTest, FormIdenticalAcrossAllPolicyCombos) {
  Instance inst = MakeInstance(42, 116, 0.25, 12, 101);
  for (CompatKind kind : AllCompatKinds()) {
    // A depth-bounded exact-SBP search and a sampled index keep this
    // combo sweep affordable (under TSan especially); both paths share
    // the oracle and the index, so equivalence is unaffected.
    OracleParams oracle_params;
    oracle_params.sbp.max_depth = 6;
    auto oracle = MakeOracle(inst.graph, kind, oracle_params);
    Rng index_rng(3);
    SkillCompatibilityIndex index(oracle.get(), inst.skills,
                                  kind == CompatKind::kSBP ? 12 : 0,
                                  &index_rng);
    for (SkillPolicy sp :
         {SkillPolicy::kRarest, SkillPolicy::kLeastCompatible}) {
      for (UserPolicy up :
           {UserPolicy::kMinDistance, UserPolicy::kMostCompatible,
            UserPolicy::kRandom}) {
        GreedyTeamFormer view_former(
            oracle.get(), inst.skills, &index, PathParams(sp, up,
                                                          GreedyEvalPath::kView));
        GreedyTeamFormer oracle_former(
            oracle.get(), inst.skills, &index,
            PathParams(sp, up, GreedyEvalPath::kOracle));
        Rng task_rng(17);
        for (int trial = 0; trial < 4; ++trial) {
          Task task = RandomTask(inst.skills, 4, &task_rng);
          Rng rng_a(1000 + trial), rng_b(1000 + trial);
          TeamResult via_view = view_former.Form(task, &rng_a);
          TeamResult via_oracle = oracle_former.Form(task, &rng_b);
          ExpectSameResult(via_view, via_oracle,
                           std::string(CompatKindName(kind)) + "/" +
                               SkillPolicyName(sp) + "/" + UserPolicyName(up));
        }
      }
    }
  }
}

TEST(GreedyViewEquivalenceTest, FormIdenticalWithSeedCapAndCostKinds) {
  Instance inst = MakeInstance(60, 170, 0.2, 8, 111);
  auto oracle = MakeOracle(inst.graph, CompatKind::kSPM);
  Rng index_rng(4);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
  for (CostKind cost_kind : {CostKind::kDiameter, CostKind::kSumOfPairs,
                             CostKind::kCenterStar}) {
    GreedyParams base = PathParams(SkillPolicy::kLeastCompatible,
                                   UserPolicy::kMinDistance,
                                   GreedyEvalPath::kView);
    base.max_seeds = 4;
    base.cost_kind = cost_kind;
    GreedyParams oracle_params = base;
    oracle_params.eval_path = GreedyEvalPath::kOracle;
    GreedyTeamFormer view_former(oracle.get(), inst.skills, &index, base);
    GreedyTeamFormer oracle_former(oracle.get(), inst.skills, &index,
                                   oracle_params);
    Rng task_rng(19);
    for (int trial = 0; trial < 5; ++trial) {
      Task task = RandomTask(inst.skills, 5, &task_rng);
      Rng rng_a(2000 + trial), rng_b(2000 + trial);
      ExpectSameResult(view_former.Form(task, &rng_a),
                       oracle_former.Form(task, &rng_b),
                       CostKindName(cost_kind));
    }
  }
}

TEST(GreedyViewEquivalenceTest, MostCompatiblePoolThinningIdentical) {
  // A tiny pool cap forces the deterministic thinning branch on every
  // step (the default cap of 256 is never reached on test-sized graphs).
  Instance inst = MakeInstance(70, 200, 0.2, 9, 161);
  auto oracle = MakeOracle(inst.graph, CompatKind::kSPO);
  Rng index_rng(9);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
  for (uint32_t cap : {3u, 7u, 16u}) {
    GreedyParams view_params = PathParams(
        SkillPolicy::kRarest, UserPolicy::kMostCompatible,
        GreedyEvalPath::kView);
    view_params.most_compatible_pool_cap = cap;
    GreedyParams oracle_params = view_params;
    oracle_params.eval_path = GreedyEvalPath::kOracle;
    GreedyTeamFormer view_former(oracle.get(), inst.skills, &index,
                                 view_params);
    GreedyTeamFormer oracle_former(oracle.get(), inst.skills, &index,
                                   oracle_params);
    Rng task_rng(41);
    for (int trial = 0; trial < 5; ++trial) {
      Task task = RandomTask(inst.skills, 5, &task_rng);
      Rng rng_a(6000 + trial), rng_b(6000 + trial);
      ExpectSameResult(view_former.Form(task, &rng_a),
                       oracle_former.Form(task, &rng_b),
                       "pool_cap=" + std::to_string(cap));
    }
  }
}

TEST(GreedyViewEquivalenceTest, FormTopKIdentical) {
  Instance inst = MakeInstance(55, 150, 0.25, 10, 121);
  for (CompatKind kind : {CompatKind::kSPO, CompatKind::kSBPH}) {
    auto oracle = MakeOracle(inst.graph, kind);
    Rng index_rng(5);
    SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
    GreedyTeamFormer view_former(
        oracle.get(), inst.skills, &index,
        PathParams(SkillPolicy::kLeastCompatible, UserPolicy::kMinDistance,
                   GreedyEvalPath::kView));
    GreedyTeamFormer oracle_former(
        oracle.get(), inst.skills, &index,
        PathParams(SkillPolicy::kLeastCompatible, UserPolicy::kMinDistance,
                   GreedyEvalPath::kOracle));
    Rng task_rng(23);
    for (int trial = 0; trial < 4; ++trial) {
      Task task = RandomTask(inst.skills, 4, &task_rng);
      Rng rng_a(3000 + trial), rng_b(3000 + trial);
      auto via_view = view_former.FormTopK(task, 5, &rng_a);
      auto via_oracle = oracle_former.FormTopK(task, 5, &rng_b);
      ASSERT_EQ(via_view.size(), via_oracle.size()) << CompatKindName(kind);
      for (size_t i = 0; i < via_view.size(); ++i) {
        EXPECT_EQ(via_view[i].members, via_oracle[i].members);
        EXPECT_EQ(via_view[i].cost, via_oracle[i].cost);
        EXPECT_EQ(via_view[i].objective, via_oracle[i].objective);
      }
    }
  }
}

TEST(GreedyViewEquivalenceTest, AutoFallsBackUnderBudgetAndStaysIdentical) {
  Instance inst = MakeInstance(40, 100, 0.2, 8, 131);
  auto oracle = MakeOracle(inst.graph, CompatKind::kNNE);
  Rng index_rng(6);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
  GreedyParams auto_params = PathParams(
      SkillPolicy::kRarest, UserPolicy::kMinDistance, GreedyEvalPath::kAuto);
  auto_params.view_max_bytes = 16;  // nothing fits: forces the oracle path
  GreedyTeamFormer capped(oracle.get(), inst.skills, &index, auto_params);
  GreedyTeamFormer reference(
      oracle.get(), inst.skills, &index,
      PathParams(SkillPolicy::kRarest, UserPolicy::kMinDistance,
                 GreedyEvalPath::kOracle));
  Rng task_rng(29);
  for (int trial = 0; trial < 4; ++trial) {
    Task task = RandomTask(inst.skills, 4, &task_rng);
    Rng rng_a(4000 + trial), rng_b(4000 + trial);
    ExpectSameResult(capped.Form(task, &rng_a), reference.Form(task, &rng_b),
                     "auto-fallback");
  }
}

// ---------------------------------------------------------------------------
// Thread determinism of the parallel seed loop
// ---------------------------------------------------------------------------

TEST(GreedySeedThreadsTest, ResultsIdenticalAcrossThreadCounts) {
  Instance inst = MakeInstance(120, 360, 0.2, 10, 141);
  for (CompatKind kind : {CompatKind::kSPM, CompatKind::kNNE}) {
    auto oracle = MakeOracle(inst.graph, kind);
    Rng index_rng(7);
    SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
    for (UserPolicy up : {UserPolicy::kMinDistance, UserPolicy::kMostCompatible,
                          UserPolicy::kRandom}) {
      Rng task_rng(31);
      std::vector<Task> tasks;
      for (int t = 0; t < 3; ++t) {
        tasks.push_back(RandomTask(inst.skills, 5, &task_rng));
      }
      std::vector<TeamResult> reference;
      for (uint32_t threads : {1u, 2u, 8u}) {
        GreedyParams params = PathParams(SkillPolicy::kLeastCompatible, up,
                                         GreedyEvalPath::kView);
        params.seed_threads = threads;
        GreedyTeamFormer former(oracle.get(), inst.skills, &index, params);
        for (size_t t = 0; t < tasks.size(); ++t) {
          Rng rng(5000 + static_cast<uint64_t>(t));
          TeamResult result = former.Form(tasks[t], &rng);
          if (threads == 1) {
            reference.push_back(result);
          } else {
            ExpectSameResult(result, reference[t],
                             std::string(CompatKindName(kind)) + "/" +
                                 UserPolicyName(up) + "/threads=" +
                                 std::to_string(threads));
          }
        }
      }
    }
  }
}

TEST(GreedySeedThreadsTest, FormTopKIdenticalAcrossThreadCounts) {
  Instance inst = MakeInstance(100, 300, 0.25, 8, 151);
  auto oracle = MakeOracle(inst.graph, CompatKind::kNNE);
  Rng index_rng(8);
  SkillCompatibilityIndex index(oracle.get(), inst.skills, 0, &index_rng);
  Rng task_rng(37);
  Task task = RandomTask(inst.skills, 5, &task_rng);
  std::vector<TeamResult> reference;
  for (uint32_t threads : {1u, 2u, 8u}) {
    GreedyParams params = PathParams(SkillPolicy::kRarest,
                                     UserPolicy::kRandom, GreedyEvalPath::kView);
    params.seed_threads = threads;
    GreedyTeamFormer former(oracle.get(), inst.skills, &index, params);
    Rng rng(61);
    auto teams = former.FormTopK(task, 6, &rng);
    if (threads == 1) {
      reference = teams;
      EXPECT_FALSE(reference.empty());
    } else {
      ASSERT_EQ(teams.size(), reference.size()) << threads;
      for (size_t i = 0; i < teams.size(); ++i) {
        EXPECT_EQ(teams[i].members, reference[i].members) << threads;
        EXPECT_EQ(teams[i].objective, reference[i].objective) << threads;
      }
    }
  }
}

}  // namespace
}  // namespace tfsn
