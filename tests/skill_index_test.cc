#include "src/compat/skill_index.h"

#include <gtest/gtest.h>

#include "src/gen/generators.h"
#include "src/graph/graph_builder.h"
#include "src/skills/skill_generator.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

// 0 -(+)- 1 -(+)- 2, 0 -(-)- 3.
SignedGraph Line() {
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  b.AddEdge(0, 3, Sign::kNegative).CheckOK();
  return std::move(b.Build()).ValueOrDie();
}

TEST(SkillIndexTest, HandComputedCounts) {
  SignedGraph g = Line();
  // skills: user0 -> {0}, user1 -> {1}, user2 -> {0}, user3 -> {1}.
  auto sa = std::move(SkillAssignment::Create({{0}, {1}, {0}, {1}}, 2))
                .ValueOrDie();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  Rng rng(1);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  // NNE: all ordered pairs compatible except (0,3)/(3,0), plus self pairs.
  // cd(0,1) counts compatible (u,v) with skill(u)=0, skill(v)=1:
  // ordered pairs: (0,1) (0,3)x (2,1) (2,3) and reverse side (1,0) (1,2)
  // (3,0)x (3,2) -> after symmetrization count = 6.
  EXPECT_EQ(index.PairCount(0, 1), 6u);
  EXPECT_TRUE(index.SkillsCompatible(0, 1));
  EXPECT_EQ(index.Degree(0), 6u);
  EXPECT_EQ(index.Degree(1), 6u);
}

TEST(SkillIndexTest, SelfPairsCounted) {
  SignedGraph g = Line();
  // user0 holds both skills: self-compatibility makes cd(0,1) > 0 even
  // if nothing else does.
  auto sa = std::move(SkillAssignment::Create({{0, 1}, {}, {}, {}}, 2))
                .ValueOrDie();
  auto oracle = MakeOracle(g, CompatKind::kDPE);
  Rng rng(2);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  EXPECT_TRUE(index.SkillsCompatible(0, 1));
}

TEST(SkillIndexTest, IncompatibleSkillsWhenHoldersAreFoes) {
  SignedGraph g = Line();
  // skill 0 only held by user 0, skill 1 only by user 3; (0,3) is negative.
  auto sa = std::move(SkillAssignment::Create({{0}, {}, {}, {1}}, 2))
                .ValueOrDie();
  auto oracle = MakeOracle(g, CompatKind::kNNE);
  Rng rng(3);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  EXPECT_FALSE(index.SkillsCompatible(0, 1));
  EXPECT_EQ(index.Degree(0), 0u);
}

TEST(SkillIndexTest, CompatibleSkillPairFractionBounds) {
  Rng rng(4);
  SignedGraph g = RandomConnectedGnm(60, 150, 0.3, &rng);
  ZipfSkillParams params;
  params.num_skills = 20;
  SkillAssignment sa = ZipfSkills(60, params, &rng);
  auto oracle = MakeOracle(g, CompatKind::kSPO);
  SkillCompatibilityIndex index(oracle.get(), sa, 0, &rng);
  double f = index.CompatibleSkillPairFraction();
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST(SkillIndexTest, SampledBuildUndercountsButAgreesOnOrder) {
  Rng rng(5);
  SignedGraph g = RandomConnectedGnm(80, 240, 0.25, &rng);
  ZipfSkillParams params;
  params.num_skills = 12;
  SkillAssignment sa = ZipfSkills(80, params, &rng);
  auto oracle = MakeOracle(g, CompatKind::kSPM);
  SkillCompatibilityIndex full(oracle.get(), sa, 0, &rng);
  SkillCompatibilityIndex sampled(oracle.get(), sa, 30, &rng);
  EXPECT_EQ(sampled.sources_used(), 30u);
  for (SkillId s = 0; s < 12; ++s) {
    for (SkillId t = 0; t < 12; ++t) {
      EXPECT_LE(sampled.PairCount(s, t), full.PairCount(s, t));
    }
  }
}

TEST(SkillIndexTest, RelaxedRelationDominatesStrict) {
  // cd under NNE must dominate cd under SPA pointwise (Proposition 3.5).
  Rng rng(6);
  SignedGraph g = RandomConnectedGnm(50, 120, 0.3, &rng);
  ZipfSkillParams params;
  params.num_skills = 10;
  SkillAssignment sa = ZipfSkills(50, params, &rng);
  auto spa = MakeOracle(g, CompatKind::kSPA);
  auto nne = MakeOracle(g, CompatKind::kNNE);
  SkillCompatibilityIndex spa_index(spa.get(), sa, 0, &rng);
  SkillCompatibilityIndex nne_index(nne.get(), sa, 0, &rng);
  for (SkillId s = 0; s < 10; ++s) {
    for (SkillId t = 0; t < 10; ++t) {
      EXPECT_LE(spa_index.PairCount(s, t), nne_index.PairCount(s, t));
    }
  }
}

}  // namespace
}  // namespace tfsn
