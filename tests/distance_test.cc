// Property suite for the relation-distance semantics of Section 4:
//   * every oracle distance upper- or exactly-bounds the plain BFS hop
//     distance according to its definition;
//   * NNE/SP distances equal the BFS distance;
//   * SBP/SBPH distances are the balanced-positive-path lengths and hence
//     >= BFS distance; SBPH >= SBP (heuristic finds no shorter path than
//     the exact minimum);
//   * distances are symmetric, zero on the diagonal, and finite exactly
//     where the definition promises.

#include <gtest/gtest.h>

#include "src/compat/compatibility.h"
#include "src/gen/generators.h"
#include "src/graph/bfs.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

class DistanceSemanticsTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DistanceSemanticsTest, AllProperties) {
  Rng rng(GetParam());
  SignedGraph g = RandomConnectedGnm(24, 56, 0.3, &rng);
  auto spo = MakeOracle(g, CompatKind::kSPO);
  auto nne = MakeOracle(g, CompatKind::kNNE);
  auto sbp = MakeOracle(g, CompatKind::kSBP);
  auto sbph = MakeOracle(g, CompatKind::kSBPH);

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto bfs = BfsDistances(g, u);
    EXPECT_EQ(spo->Distance(u, u), 0u);
    EXPECT_EQ(sbp->Distance(u, u), 0u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      // SP-family and NNE distances are plain hop distances.
      EXPECT_EQ(spo->Distance(u, v), bfs[v]);
      EXPECT_EQ(nne->Distance(u, v), bfs[v]);
      // Balanced-path distances are at least the hop distance, finite
      // exactly when compatible, and the heuristic never beats the exact
      // minimum.
      uint32_t exact = sbp->Distance(u, v);
      uint32_t heuristic = sbph->Distance(u, v);
      if (sbp->Compatible(u, v)) {
        ASSERT_NE(exact, kUnreachable);
        EXPECT_GE(exact, bfs[v]);
      } else {
        EXPECT_EQ(exact, kUnreachable);
      }
      if (sbph->Compatible(u, v)) {
        ASSERT_NE(heuristic, kUnreachable);
        EXPECT_GE(heuristic, exact);
      }
      // Symmetry of the exposed distances.
      EXPECT_EQ(sbp->Distance(u, v), sbp->Distance(v, u));
      EXPECT_EQ(sbph->Distance(u, v), sbph->Distance(v, u));
      EXPECT_EQ(nne->Distance(u, v), nne->Distance(v, u));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceSemanticsTest,
                         testing::Values(101ULL, 202ULL, 303ULL));

TEST(DistanceSemanticsTest2, DpeCompatiblePairsAreAdjacent) {
  Rng rng(404);
  SignedGraph g = RandomConnectedGnm(30, 70, 0.25, &rng);
  auto dpe = MakeOracle(g, CompatKind::kDPE);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      if (dpe->Compatible(u, v)) {
        EXPECT_EQ(dpe->Distance(u, v), 1u);
        EXPECT_EQ(g.EdgeSign(u, v), Sign::kPositive);
      }
    }
  }
}

TEST(DistanceSemanticsTest2, PositiveEdgeGivesDistanceOneEverywhere) {
  // For every relation, a positive edge is a compatible pair at relation
  // distance exactly 1 (the edge itself is a positive balanced path).
  Rng rng(505);
  SignedGraph g = RandomConnectedGnm(26, 60, 0.35, &rng);
  for (CompatKind kind : AllCompatKinds()) {
    auto oracle = MakeOracle(g, kind);
    for (const SignedEdge& e : g.Edges()) {
      if (e.sign != Sign::kPositive) continue;
      EXPECT_EQ(oracle->Distance(e.u, e.v), 1u) << CompatKindName(kind);
    }
  }
}

}  // namespace
}  // namespace tfsn
