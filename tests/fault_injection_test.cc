// FaultRegistry semantics: schedule parsing and firing rules. These tests
// call the registry directly, so they run in every build — TFSN_FAULTS
// only gates the TFSN_FAULT_POINT call sites in production code (and the
// end-to-end fault matrix in fault_matrix_test.cc).

#include "src/util/fault_injection.h"

#include <gtest/gtest.h>

#include <string>

namespace tfsn {
namespace {

class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().Reset(); }
  void TearDown() override { FaultRegistry::Instance().Reset(); }
};

TEST_F(FaultRegistryTest, UnarmedPointsCountButNeverFire) {
  auto& reg = FaultRegistry::Instance();
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(reg.ShouldFire("test.point"));
  EXPECT_EQ(reg.HitCount("test.point"), 5u);
  EXPECT_EQ(reg.FireCount("test.point"), 0u);
  EXPECT_TRUE(reg.ArmedPoints().empty());
}

TEST_F(FaultRegistryTest, NthFiresExactlyOnce) {
  auto& reg = FaultRegistry::Instance();
  FaultSchedule s;
  s.mode = FaultSchedule::Mode::kNth;
  s.n = 3;
  reg.Arm("test.nth", s);
  EXPECT_FALSE(reg.ShouldFire("test.nth"));
  EXPECT_FALSE(reg.ShouldFire("test.nth"));
  EXPECT_TRUE(reg.ShouldFire("test.nth"));  // 3rd evaluation
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(reg.ShouldFire("test.nth"));
  EXPECT_EQ(reg.FireCount("test.nth"), 1u);
}

TEST_F(FaultRegistryTest, EveryNthFiresPeriodically) {
  auto& reg = FaultRegistry::Instance();
  FaultSchedule s;
  s.mode = FaultSchedule::Mode::kEveryNth;
  s.n = 2;
  reg.Arm("test.every", s);
  int fires = 0;
  for (int i = 1; i <= 10; ++i) {
    const bool fired = reg.ShouldFire("test.every");
    EXPECT_EQ(fired, i % 2 == 0) << "evaluation " << i;
    fires += fired;
  }
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(reg.FireCount("test.every"), 5u);
}

TEST_F(FaultRegistryTest, AlwaysAndOffAndDisarm) {
  auto& reg = FaultRegistry::Instance();
  FaultSchedule s;
  s.mode = FaultSchedule::Mode::kAlways;
  reg.Arm("test.always", s);
  EXPECT_TRUE(reg.ShouldFire("test.always"));
  EXPECT_EQ(reg.ArmedPoints(), std::vector<std::string>{"test.always"});
  reg.Disarm("test.always");
  EXPECT_FALSE(reg.ShouldFire("test.always"));
  EXPECT_EQ(reg.HitCount("test.always"), 2u);  // disarm keeps counting
}

TEST_F(FaultRegistryTest, ProbabilityIsSeededAndReproducible) {
  auto& reg = FaultRegistry::Instance();
  FaultSchedule s;
  s.mode = FaultSchedule::Mode::kProbability;
  s.probability = 0.5;
  s.seed = 42;
  auto draw = [&reg, &s](int evals) {
    reg.Arm("test.p", s);  // re-arming resets the rng stream
    std::string bits;
    for (int i = 0; i < evals; ++i) {
      bits.push_back(reg.ShouldFire("test.p") ? '1' : '0');
    }
    return bits;
  };
  const std::string a = draw(64);
  const std::string b = draw(64);
  EXPECT_EQ(a, b) << "same seed must reproduce the same firing stream";
  // Sanity: p=0.5 over 64 draws fires at least once and skips at least once.
  EXPECT_NE(a.find('1'), std::string::npos);
  EXPECT_NE(a.find('0'), std::string::npos);
  s.seed = 43;
  const std::string c = draw(64);
  EXPECT_NE(a, c) << "a different seed should give a different stream";
}

TEST_F(FaultRegistryTest, ParseScheduleAcceptsTheDocumentedGrammar) {
  FaultSchedule s;
  ASSERT_TRUE(FaultRegistry::ParseSchedule("off", &s));
  EXPECT_EQ(s.mode, FaultSchedule::Mode::kOff);
  ASSERT_TRUE(FaultRegistry::ParseSchedule("always", &s));
  EXPECT_EQ(s.mode, FaultSchedule::Mode::kAlways);
  ASSERT_TRUE(FaultRegistry::ParseSchedule("nth:7", &s));
  EXPECT_EQ(s.mode, FaultSchedule::Mode::kNth);
  EXPECT_EQ(s.n, 7u);
  ASSERT_TRUE(FaultRegistry::ParseSchedule("every:3", &s));
  EXPECT_EQ(s.mode, FaultSchedule::Mode::kEveryNth);
  EXPECT_EQ(s.n, 3u);
  ASSERT_TRUE(FaultRegistry::ParseSchedule("p:0.25", &s));
  EXPECT_EQ(s.mode, FaultSchedule::Mode::kProbability);
  EXPECT_DOUBLE_EQ(s.probability, 0.25);
  ASSERT_TRUE(FaultRegistry::ParseSchedule("p:0.5:99", &s));
  EXPECT_EQ(s.seed, 99u);
}

TEST_F(FaultRegistryTest, ParseScheduleRejectsMalformedText) {
  FaultSchedule s;
  s.mode = FaultSchedule::Mode::kAlways;  // must stay untouched on failure
  EXPECT_FALSE(FaultRegistry::ParseSchedule("", &s));
  EXPECT_FALSE(FaultRegistry::ParseSchedule("nth", &s));
  EXPECT_FALSE(FaultRegistry::ParseSchedule("nth:", &s));
  EXPECT_FALSE(FaultRegistry::ParseSchedule("nth:0", &s));
  EXPECT_FALSE(FaultRegistry::ParseSchedule("nth:2x", &s));
  EXPECT_FALSE(FaultRegistry::ParseSchedule("every:-1", &s));
  EXPECT_FALSE(FaultRegistry::ParseSchedule("p:1.5", &s));
  EXPECT_FALSE(FaultRegistry::ParseSchedule("p:-0.1", &s));
  EXPECT_FALSE(FaultRegistry::ParseSchedule("p:0.5:abc", &s));
  EXPECT_FALSE(FaultRegistry::ParseSchedule("sometimes", &s));
  EXPECT_EQ(s.mode, FaultSchedule::Mode::kAlways);
}

TEST_F(FaultRegistryTest, CompileTimeFlagMatchesBuildConfiguration) {
#if defined(TFSN_FAULTS)
  EXPECT_TRUE(kFaultsEnabled);
#else
  EXPECT_FALSE(kFaultsEnabled);
#endif
}

}  // namespace
}  // namespace tfsn
