// Tests for the threshold (fractional) compatibility oracle and the
// parallel pair-statistics path.

#include "src/compat/threshold.h"

#include <atomic>
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/compat/stats.h"
#include "src/gen/generators.h"
#include "src/graph/graph_builder.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

TEST(ThresholdTest, ScoreOnHandGraph) {
  // 0->1->3 (+,+) and 0->2->3 (-,+): one positive, one negative shortest
  // path => score 0.5.
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 3, Sign::kPositive).CheckOK();
  b.AddEdge(0, 2, Sign::kNegative).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  EXPECT_DOUBLE_EQ(PositivePathScore(g, 0, 3), 0.5);
  EXPECT_DOUBLE_EQ(PositivePathScore(g, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(PositivePathScore(g, 0, 2), 0.0);
  EXPECT_DOUBLE_EQ(PositivePathScore(g, 0, 0), 1.0);
}

TEST(ThresholdTest, MatchesNamedRelationsAtCanonicalThetas) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    SignedGraph g = RandomConnectedGnm(30, 80, 0.35, &rng);
    auto spa = MakeOracle(g, CompatKind::kSPA);
    auto spm = MakeOracle(g, CompatKind::kSPM);
    auto spo = MakeOracle(g, CompatKind::kSPO);
    auto t_spa = MakeThresholdOracle(g, 1.0);
    auto t_spm = MakeThresholdOracle(g, 0.5);
    auto t_spo = MakeThresholdOracle(g, 0.0);
    for (NodeId u = 0; u < g.num_nodes(); u += 3) {
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(t_spa->Compatible(u, v), spa->Compatible(u, v));
        EXPECT_EQ(t_spm->Compatible(u, v), spm->Compatible(u, v));
        EXPECT_EQ(t_spo->Compatible(u, v), spo->Compatible(u, v));
      }
    }
  }
}

TEST(ThresholdTest, MonotoneInTheta) {
  Rng rng(37);
  SignedGraph g = RandomConnectedGnm(40, 120, 0.3, &rng);
  auto loose = MakeThresholdOracle(g, 0.25);
  auto tight = MakeThresholdOracle(g, 0.75);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      // Comp_0.75 ⊆ Comp_0.25.
      EXPECT_LE(tight->Compatible(u, v), loose->Compatible(u, v));
    }
  }
}

TEST(ThresholdTest, AxiomsHoldForIntermediateTheta) {
  Rng rng(41);
  SignedGraph g = RandomConnectedGnm(30, 70, 0.4, &rng);
  for (double theta : {0.0, 0.3, 0.8, 1.0}) {
    auto oracle = MakeThresholdOracle(g, theta);
    for (const SignedEdge& e : g.Edges()) {
      if (e.sign == Sign::kPositive) {
        EXPECT_TRUE(oracle->Compatible(e.u, e.v)) << "theta=" << theta;
      } else {
        EXPECT_FALSE(oracle->Compatible(e.u, e.v)) << "theta=" << theta;
      }
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_TRUE(oracle->Compatible(u, u));
    }
  }
}

TEST(ThresholdTest, ThetaClamped) {
  Rng rng(43);
  SignedGraph g = RandomConnectedGnm(20, 40, 0.2, &rng);
  auto below = MakeThresholdOracle(g, -3.0);
  auto above = MakeThresholdOracle(g, 7.0);
  auto spo = MakeOracle(g, CompatKind::kSPO);
  auto spa = MakeOracle(g, CompatKind::kSPA);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(below->Compatible(0, v), spo->Compatible(0, v));
    EXPECT_EQ(above->Compatible(0, v), spa->Compatible(0, v));
  }
}

TEST(ParallelStatsTest, MatchesSerialExactly) {
  Rng rng(47);
  SignedGraph g = RandomConnectedGnm(120, 400, 0.3, &rng);
  for (CompatKind kind :
       {CompatKind::kSPA, CompatKind::kSPM, CompatKind::kSBPH,
        CompatKind::kNNE}) {
    auto oracle = MakeOracle(g, kind);
    Rng serial_rng(5);
    CompatPairStats serial = ComputeCompatPairStats(oracle.get(), 0, &serial_rng);
    CompatPairStats parallel = ComputeCompatPairStatsParallel(
        g, kind, OracleParams{}, 0, /*seed=*/5, /*threads=*/4);
    EXPECT_EQ(serial.pairs_seen, parallel.pairs_seen) << CompatKindName(kind);
    EXPECT_EQ(serial.pairs_compatible, parallel.pairs_compatible);
    EXPECT_DOUBLE_EQ(serial.compatible_fraction, parallel.compatible_fraction);
    EXPECT_NEAR(serial.avg_distance, parallel.avg_distance, 1e-9);
  }
}

TEST(ParallelStatsTest, SampledSourcesSameSeedSameResult) {
  Rng rng(53);
  SignedGraph g = RandomConnectedGnm(150, 500, 0.25, &rng);
  CompatPairStats a = ComputeCompatPairStatsParallel(
      g, CompatKind::kSPM, OracleParams{}, 40, /*seed=*/11, /*threads=*/3);
  CompatPairStats b = ComputeCompatPairStatsParallel(
      g, CompatKind::kSPM, OracleParams{}, 40, /*seed=*/11, /*threads=*/7);
  EXPECT_EQ(a.pairs_compatible, b.pairs_compatible);
  EXPECT_EQ(a.sources_used, 40u);
}

TEST(ParallelForTest, CoversRangeOnce) {
  std::vector<std::atomic<int>>* hits = nullptr;
  std::vector<std::atomic<int>> storage(1000);
  hits = &storage;
  ParallelFor(1000, 8, [hits](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) (*hits)[i].fetch_add(1);
  });
  for (const auto& h : storage) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ParallelForEachCoversRangeOnce) {
  std::vector<std::atomic<int>> hits(777);
  ParallelForEach(hits.size(), 8,
                  [&hits](uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Degenerate cases.
  int calls = 0;
  ParallelForEach(0, 4, [&calls](uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelForEach(3, 1, [&calls](uint64_t) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ParallelForTest, ResolveThreadsHonoursEnvOverride) {
  ASSERT_EQ(setenv("TFSN_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveThreads(0), 3u);
  // An explicit hint always wins over the environment.
  EXPECT_EQ(ResolveThreads(5), 5u);
  ASSERT_EQ(setenv("TFSN_THREADS", "garbage", 1), 0);
  EXPECT_GE(ResolveThreads(0), 1u);  // falls back to hardware concurrency
  ASSERT_EQ(unsetenv("TFSN_THREADS"), 0);
  EXPECT_GE(ResolveThreads(0), 1u);
}

TEST(ParallelForTest, ZeroAndOneElement) {
  int calls = 0;
  ParallelFor(0, 4, [&](uint32_t, uint64_t begin, uint64_t end) {
    calls += static_cast<int>(end - begin);
  });
  EXPECT_EQ(calls, 0);
  std::atomic<int> one{0};
  ParallelFor(1, 4, [&one](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

}  // namespace
}  // namespace tfsn
