#include "src/serve/admission_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace tfsn::serve {
namespace {

TEST(AdmissionQueueTest, FifoOrderSingleConsumer) {
  AdmissionQueue<int> q(100);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(q.Push(i).ok());
  EXPECT_EQ(q.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    int v = -1;
    EXPECT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueueTest, TryPushBackpressureOnFullQueue) {
  AdmissionQueue<int> q(3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.Push(i).ok());
  int item = 99;
  EXPECT_TRUE(q.TryPush(&item).IsResourceExhausted());
  EXPECT_EQ(item, 99);  // refused pushes leave the item untouched
  int v;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_TRUE(q.TryPush(&item).ok());
  EXPECT_EQ(q.size(), 3u);
}

TEST(AdmissionQueueTest, PushBlocksUntilSpace) {
  AdmissionQueue<int> q(1);
  EXPECT_TRUE(q.Push(1).ok());
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2).ok());  // blocks: queue full
    second_pushed.store(true);
  });
  // The producer must not complete while the queue is full. (A sleep
  // cannot *prove* blocking, but a regression to non-blocking Push would
  // trip this overwhelmingly often.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_pushed.load());
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(AdmissionQueueTest, ShutdownDrainsAllThenFails) {
  AdmissionQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i).ok());
  q.Close();
  EXPECT_TRUE(q.closed());
  // Producers fail fast after Close...
  EXPECT_TRUE(q.Push(99).IsUnavailable());
  int item = 99;
  EXPECT_TRUE(q.TryPush(&item).IsUnavailable());
  // ...but consumers drain every admitted item before seeing failure.
  for (int i = 0; i < 5; ++i) {
    int v = -1;
    EXPECT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  int v;
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(AdmissionQueueTest, CloseWakesBlockedProducerAndConsumer) {
  AdmissionQueue<int> q(1);
  EXPECT_TRUE(q.Push(1).ok());
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2).IsUnavailable());  // blocked on full, woken by Close
  });
  AdmissionQueue<int> empty(1);
  std::thread consumer([&] {
    int v;
    EXPECT_FALSE(empty.Pop(&v));  // blocked on empty, woken by Close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  empty.Close();
  producer.join();
  consumer.join();
  // The item admitted before Close is still drainable.
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
}

TEST(AdmissionQueueTest, PopOrOutcomes) {
  AdmissionQueue<int> q(4);
  int v = -1;
  // Predicate already true on an empty open queue: immediate kWakeup.
  EXPECT_EQ(q.PopOr(&v, [] { return true; }), PopStatus::kWakeup);
  // An available item wins over a true predicate.
  EXPECT_TRUE(q.Push(7).ok());
  EXPECT_EQ(q.PopOr(&v, [] { return true; }), PopStatus::kItem);
  EXPECT_EQ(v, 7);
  // Closed with a leftover: drain first, then report closed.
  EXPECT_TRUE(q.Push(8).ok());
  q.Close();
  EXPECT_EQ(q.PopOr(&v, [] { return false; }), PopStatus::kItem);
  EXPECT_EQ(v, 8);
  EXPECT_EQ(q.PopOr(&v, [] { return false; }), PopStatus::kClosed);
}

TEST(AdmissionQueueTest, KickWakesPopOrWhenPredicateTurnsTrue) {
  AdmissionQueue<int> q(4);
  std::atomic<bool> flag{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    int v;
    EXPECT_EQ(q.PopOr(&v, [&flag] { return flag.load(); }),
              PopStatus::kWakeup);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());  // predicate false: still asleep
  flag.store(true);
  q.Kick();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(AdmissionQueueTest, DrainIntoTakesAvailableWithoutBlocking) {
  AdmissionQueue<int> q(100);
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(&out, 10), 0u);  // empty: returns immediately
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(q.Push(i).ok());
  EXPECT_EQ(q.DrainInto(&out, 5), 5u);
  EXPECT_EQ(q.DrainInto(&out, 5), 2u);
  ASSERT_EQ(out.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i], i);  // FIFO preserved
}

// 8 producers x 4 consumers over a small queue: every item is delivered
// exactly once and shutdown loses nothing. Run under TSan in CI.
TEST(AdmissionQueueTest, ProducerConsumerHammer) {
  constexpr int kProducers = 8;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  AdmissionQueue<uint64_t> q(16);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(static_cast<uint64_t>(p) * kPerProducer + i).ok());
      }
    });
  }

  std::vector<std::vector<uint64_t>> received(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&q, &received, c] {
      uint64_t v;
      while (q.Pop(&v)) received[c].push_back(v);
    });
  }

  for (std::thread& t : producers) t.join();
  q.Close();
  for (std::thread& t : consumers) t.join();

  std::vector<uint64_t> all;
  for (const auto& chunk : received) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(all.size(),
            static_cast<size_t>(kProducers) * kPerProducer);
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i) << "item delivered zero or multiple times";
  }
}

// Per-consumer pop order respects the queue's FIFO total order even with
// competing consumers: what one consumer sees is a subsequence of the
// push order.
TEST(AdmissionQueueTest, PerConsumerOrderIsSubsequenceUnderContention) {
  AdmissionQueue<int> q(8);
  std::vector<int> seen_a, seen_b;
  std::thread ca([&] {
    int v;
    while (q.Pop(&v)) seen_a.push_back(v);
  });
  std::thread cb([&] {
    int v;
    while (q.Pop(&v)) seen_b.push_back(v);
  });
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE(q.Push(i).ok());
  q.Close();
  ca.join();
  cb.join();
  EXPECT_TRUE(std::is_sorted(seen_a.begin(), seen_a.end()));
  EXPECT_TRUE(std::is_sorted(seen_b.begin(), seen_b.end()));
  EXPECT_EQ(seen_a.size() + seen_b.size(), 2000u);
}

}  // namespace
}  // namespace tfsn::serve
