#include "src/graph/bfs.h"

#include <gtest/gtest.h>

#include "src/gen/generators.h"
#include "src/graph/components.h"
#include "src/graph/diameter.h"
#include "src/graph/graph_builder.h"
#include "src/graph/transform.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

// 0-1-2-3 path plus pendant 4 off node 1.
SignedGraph PathGraph() {
  SignedGraphBuilder b(5);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kNegative).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  b.AddEdge(1, 4, Sign::kPositive).CheckOK();
  return std::move(b.Build()).ValueOrDie();
}

TEST(BfsTest, DistancesFromEnd) {
  SignedGraph g = PathGraph();
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist, (std::vector<uint32_t>{0, 1, 2, 3, 2}));
}

TEST(BfsTest, BoundedStopsAtDepth) {
  SignedGraph g = PathGraph();
  auto dist = BfsDistancesBounded(g, 0, 2);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(BfsTest, PairDistanceMatchesFull) {
  Rng rng(3);
  SignedGraph g = RandomConnectedGnm(40, 80, 0.3, &rng);
  auto dist = BfsDistances(g, 7);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(BfsDistance(g, 7, v), dist[v]);
  }
}

TEST(BfsTest, DisconnectedUnreachable) {
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(2, 3, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  EXPECT_EQ(BfsDistance(g, 0, 3), kUnreachable);
  EXPECT_EQ(BfsDistances(g, 0)[2], kUnreachable);
}

TEST(BfsTest, ShortestPathEndpointsAndLength) {
  SignedGraph g = PathGraph();
  auto path = BfsShortestPath(g, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(path[i], path[i + 1]));
  }
}

TEST(BfsTest, ShortestPathToSelf) {
  SignedGraph g = PathGraph();
  auto path = BfsShortestPath(g, 2, 2);
  EXPECT_EQ(path, std::vector<NodeId>{2});
}

TEST(BfsTest, ShortestPathUnreachableIsEmpty) {
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  EXPECT_TRUE(BfsShortestPath(g, 0, 2).empty());
}

TEST(ComponentsTest, SingleComponent) {
  SignedGraph g = PathGraph();
  ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components(), 1u);
  EXPECT_EQ(info.size[0], 5u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ComponentsTest, MultipleComponents) {
  SignedGraphBuilder b(6);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(2, 3, Sign::kNegative).CheckOK();
  b.AddEdge(3, 4, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.num_components(), 3u);  // {0,1}, {2,3,4}, {5}
  EXPECT_FALSE(IsConnected(g));
  EXPECT_EQ(info.size[info.LargestComponent()], 3u);
}

TEST(ComponentsTest, LargestComponentSubgraphRemaps) {
  SignedGraphBuilder b(6);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(2, 3, Sign::kNegative).CheckOK();
  b.AddEdge(3, 4, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  SubgraphMapping sub = LargestComponentSubgraph(g);
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_EQ(sub.graph.num_negative_edges(), 1u);
  // Mapping is a bijection between kept nodes.
  for (NodeId new_id = 0; new_id < 3; ++new_id) {
    EXPECT_EQ(sub.old_to_new[sub.new_to_old[new_id]], new_id);
  }
  EXPECT_EQ(sub.old_to_new[0], kInvalidNode);
  EXPECT_EQ(sub.old_to_new[5], kInvalidNode);
}

TEST(DiameterTest, PathGraphExact) {
  SignedGraph g = PathGraph();
  EXPECT_EQ(ExactDiameter(g), 3u);
}

TEST(DiameterTest, EstimateNeverExceedsExactAndIsClose) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    SignedGraph g = RandomConnectedGnm(60, 90, 0.2, &rng);
    uint32_t exact = ExactDiameter(g);
    Rng est_rng(100 + trial);
    uint32_t estimate = EstimateDiameter(g, 8, &est_rng);
    EXPECT_LE(estimate, exact);
    EXPECT_GE(estimate + 2, exact);  // double sweep is near-exact here
  }
}

TEST(DiameterTest, AverageDistanceOnPath) {
  // 0-1-2 path: pairwise distances 1,1,2 -> average 4/3.
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  Rng rng(13);
  double avg = EstimateAverageDistance(g, g.num_nodes(), &rng);
  EXPECT_NEAR(avg, 4.0 / 3.0, 1e-9);
}

TEST(EccentricityTest, CenterVsLeaf) {
  SignedGraph g = PathGraph();
  EXPECT_EQ(Eccentricity(g, 1), 2u);
  EXPECT_EQ(Eccentricity(g, 0), 3u);
}

TEST(GeneratorTest, GnmIsConnectedWithRequestedCounts) {
  Rng rng(17);
  SignedGraph g = RandomConnectedGnm(100, 250, 0.25, &rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_NEAR(g.negative_fraction(), 0.25, 0.12);
}

TEST(GeneratorTest, PreferentialAttachmentSkewsDegrees) {
  Rng rng(19);
  SignedGraph g = RandomPreferentialAttachment(500, 2000, 0.2, &rng);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.num_edges(), 2000u);
  uint32_t max_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_degree = std::max(max_degree, g.Degree(u));
  }
  // Mean degree is 8; a PA graph grows hubs far above the mean.
  EXPECT_GT(max_degree, 30u);
}

TEST(GeneratorTest, TreeEdgeCase) {
  Rng rng(23);
  SignedGraph g = RandomConnectedGnm(10, 9, 0.5, &rng);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.num_edges(), 9u);
}

TEST(GeneratorTest, SmallWorldConnectedAndSized) {
  Rng rng(29);
  SignedGraph g = SmallWorldSigned(100, 4, 0.1, 0.3, &rng);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_GE(g.num_edges(), 190u);  // ~n*k/2, a few rewires may collide
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  Rng a(31), b(31);
  SignedGraph g1 = RandomConnectedGnm(50, 120, 0.3, &a);
  SignedGraph g2 = RandomConnectedGnm(50, 120, 0.3, &b);
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

TEST(GeneratorTest, PlantedPartitionNoiseZeroBalanced) {
  Rng rng(37);
  SignedGraph g = PlantedPartitionSigned(50, 200, 0.0, &rng);
  // Within-faction edges positive, cross negative: exactly balanced.
  EXPECT_EQ(DeleteNegativeEdges(g).num_edges() +
                g.num_negative_edges(),
            g.num_edges());
}

}  // namespace
}  // namespace tfsn
