// Bit-parallel multi-source signed BFS (ms_signed_bfs.h) vs the scalar row
// kernels: randomized equivalence on Erdős–Rényi and generator-family
// graphs across batch sizes (1, 63, 64, and >64 through the oracle's block
// grouping), ragged tails (n < 64), distance equality, and the
// saturation-flag semantics of batched rows.

#include "src/compat/ms_signed_bfs.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/compat/compatibility.h"
#include "src/compat/row_kernels.h"
#include "src/gen/generators.h"
#include "src/graph/bfs.h"
#include "src/graph/graph_builder.h"
#include "src/util/rng.h"

namespace tfsn {
namespace {

constexpr CompatKind kBatchKinds[] = {CompatKind::kSPA, CompatKind::kSPO,
                                      CompatKind::kDPE, CompatKind::kNNE};

void ExpectRowsEqual(const CompatRow& batched, const CompatRow& scalar,
                     CompatKind kind, NodeId q) {
  EXPECT_EQ(batched.comp, scalar.comp)
      << CompatKindName(kind) << " comp mismatch, source " << q;
  EXPECT_EQ(batched.dist, scalar.dist)
      << CompatKindName(kind) << " dist mismatch, source " << q;
}

// Compares one block against per-source scalar kernel rows.
void CheckBlock(const SignedGraph& g, CompatKind kind,
                const std::vector<NodeId>& sources) {
  RowKernelParams params;
  auto rows = ComputeCompatRowBlock(g, kind, sources);
  ASSERT_EQ(rows.size(), sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    CompatRow scalar = ComputeCompatRow(g, kind, params, sources[i]);
    ExpectRowsEqual(rows[i], scalar, kind, sources[i]);
  }
}

std::vector<NodeId> SampleSources(const SignedGraph& g, size_t count,
                                  Rng* rng) {
  std::vector<NodeId> sources;
  sources.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    sources.push_back(static_cast<NodeId>(rng->NextBounded(g.num_nodes())));
  }
  return sources;
}

TEST(MsSignedBfsTest, SupportsExistenceKindsOnly) {
  EXPECT_TRUE(MsBfsSupportsKind(CompatKind::kSPA));
  EXPECT_TRUE(MsBfsSupportsKind(CompatKind::kSPO));
  EXPECT_TRUE(MsBfsSupportsKind(CompatKind::kDPE));
  EXPECT_TRUE(MsBfsSupportsKind(CompatKind::kNNE));
  EXPECT_FALSE(MsBfsSupportsKind(CompatKind::kSPM));
  EXPECT_FALSE(MsBfsSupportsKind(CompatKind::kSBPH));
  EXPECT_FALSE(MsBfsSupportsKind(CompatKind::kSBP));
}

TEST(MsSignedBfsTest, MatchesScalarOnErdosRenyiAcrossBatchSizes) {
  Rng graph_rng(11);
  SignedGraph g = RandomConnectedGnm(180, 540, 0.3, &graph_rng);
  Rng rng(12);
  for (size_t batch : {size_t{1}, size_t{2}, size_t{63}, size_t{64}}) {
    for (CompatKind kind : kBatchKinds) {
      CheckBlock(g, kind, SampleSources(g, batch, &rng));
    }
  }
}

TEST(MsSignedBfsTest, MatchesScalarOnGeneratorFamilies) {
  Rng rng(21);
  std::vector<SignedGraph> graphs;
  graphs.push_back(RandomPreferentialAttachment(150, 600, 0.25, &rng));
  graphs.push_back(PlantedPartitionSigned(120, 360, 0.1, &rng));
  graphs.push_back(SmallWorldSigned(140, 6, 0.2, 0.35, &rng));
  for (const SignedGraph& g : graphs) {
    for (CompatKind kind : kBatchKinds) {
      CheckBlock(g, kind, SampleSources(g, 64, &rng));
    }
  }
}

TEST(MsSignedBfsTest, RaggedTailSmallerThanWord) {
  // n < 64: every node is a source, the lane word is only partly used.
  Rng rng(31);
  SignedGraph g = RandomConnectedGnm(23, 60, 0.4, &rng);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) all[u] = u;
  for (CompatKind kind : kBatchKinds) CheckBlock(g, kind, all);
}

TEST(MsSignedBfsTest, DuplicateSourcesShareLanesCorrectly) {
  Rng rng(37);
  SignedGraph g = RandomConnectedGnm(60, 150, 0.3, &rng);
  std::vector<NodeId> sources = {7, 7, 0, 59, 7, 0};
  for (CompatKind kind : kBatchKinds) CheckBlock(g, kind, sources);
}

TEST(MsSignedBfsTest, DisconnectedComponentsStayUnreachable) {
  // Two components: sources in one must not reach the other.
  SignedGraphBuilder b(8);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kNegative).CheckOK();
  b.AddEdge(4, 5, Sign::kPositive).CheckOK();
  b.AddEdge(5, 6, Sign::kPositive).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  std::vector<NodeId> sources = {0, 4, 3};
  for (CompatKind kind : kBatchKinds) CheckBlock(g, kind, sources);
  auto rows = ComputeCompatRowBlock(g, CompatKind::kSPA, sources);
  EXPECT_EQ(rows[0].dist[5], kUnreachable);
  EXPECT_EQ(rows[1].dist[0], kUnreachable);
  EXPECT_EQ(rows[2].dist[0], kUnreachable);  // isolated source
  EXPECT_EQ(rows[2].dist[3], 0u);
}

TEST(MsSignedBfsTest, DistancesEqualPlainBfsLevels) {
  // SPA/SPO distances are plain hop distances: signs never change levels.
  Rng rng(41);
  SignedGraph g = RandomPreferentialAttachment(200, 900, 0.3, &rng);
  std::vector<NodeId> sources = SampleSources(g, 64, &rng);
  auto rows = ComputeCompatRowBlock(g, CompatKind::kSPO, sources);
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(rows[i].dist, BfsDistances(g, sources[i])) << sources[i];
  }
}

TEST(MsSignedBfsTest, SignFlipPropagation) {
  // A 4-cycle with one negative edge: both shortest paths 0->2 exist, one
  // positive and one negative, so SPA rejects and SPO accepts.
  SignedGraphBuilder b(4);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  b.AddEdge(0, 3, Sign::kPositive).CheckOK();
  b.AddEdge(3, 2, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  std::vector<NodeId> sources = {0};
  auto spa = ComputeCompatRowBlock(g, CompatKind::kSPA, sources);
  auto spo = ComputeCompatRowBlock(g, CompatKind::kSPO, sources);
  EXPECT_EQ(spa[0].comp[2], 0);
  EXPECT_EQ(spo[0].comp[2], 1);
  EXPECT_EQ(spa[0].dist[2], 2u);
  for (CompatKind kind : kBatchKinds) CheckBlock(g, kind, sources);
}

TEST(MsSignedBfsTest, BatchedRowsNeverSaturate) {
  // The engine tracks path existence, not counts, so batched rows are
  // exact and never set the saturated flag — even where the scalar
  // counting kernel would remain unsaturated too; the flag's semantics
  // ("a count overflowed") simply cannot trigger.
  Rng rng(43);
  SignedGraph g = RandomConnectedGnm(100, 400, 0.3, &rng);
  std::vector<NodeId> sources = SampleSources(g, 64, &rng);
  for (CompatKind kind : kBatchKinds) {
    auto rows = ComputeCompatRowBlock(g, kind, sources);
    for (const CompatRow& row : rows) EXPECT_FALSE(row.saturated);
  }
}

// ---------------------------------------------------------------------------
// Oracle integration: GetRows must group misses into blocks (including the
// ragged tail beyond 64) and produce rows identical to the scalar path.
// ---------------------------------------------------------------------------

TEST(MsSignedBfsOracleTest, GetRowsBatchesMatchScalarAt65Sources) {
  Rng rng(51);
  SignedGraph g = RandomConnectedGnm(130, 420, 0.3, &rng);
  RowKernelParams params;
  for (CompatKind kind : {CompatKind::kSPA, CompatKind::kSPO}) {
    auto oracle = MakeOracle(g, kind);
    std::vector<NodeId> sources;
    for (NodeId u = 0; u < 65; ++u) sources.push_back(u);
    auto rows = oracle->GetRows(sources, /*threads=*/1);
    ASSERT_EQ(rows.size(), sources.size());
    EXPECT_EQ(oracle->rows_computed(), 65u);
    for (size_t i = 0; i < sources.size(); ++i) {
      ASSERT_NE(rows[i], nullptr);
      CompatRow scalar = ComputeCompatRow(g, kind, params, sources[i]);
      ExpectRowsEqual(*rows[i], scalar, kind, sources[i]);
    }
  }
}

TEST(MsSignedBfsOracleTest, GetRowsBatchSizesOneThrough65) {
  Rng rng(53);
  SignedGraph g = RandomConnectedGnm(90, 300, 0.35, &rng);
  RowKernelParams params;
  for (size_t batch : {size_t{1}, size_t{63}, size_t{64}, size_t{65}}) {
    auto oracle = MakeOracle(g, CompatKind::kSPA);
    Rng pick(100 + batch);
    std::vector<NodeId> sources = SampleSources(g, batch, &pick);
    auto rows = oracle->GetRows(sources, /*threads=*/2);
    for (size_t i = 0; i < sources.size(); ++i) {
      ASSERT_NE(rows[i], nullptr) << batch;
      CompatRow scalar =
          ComputeCompatRow(g, CompatKind::kSPA, params, sources[i]);
      ExpectRowsEqual(*rows[i], scalar, CompatKind::kSPA, sources[i]);
    }
  }
}

TEST(MsSignedBfsOracleTest, CountBasedKindsKeepScalarPathAndSemantics) {
  // SPM needs majority counts: GetRows must not route it through the
  // engine, and results must match the scalar kernel.
  Rng rng(59);
  SignedGraph g = RandomConnectedGnm(70, 220, 0.4, &rng);
  RowKernelParams params;
  auto oracle = MakeOracle(g, CompatKind::kSPM);
  std::vector<NodeId> sources;
  for (NodeId u = 0; u < g.num_nodes(); ++u) sources.push_back(u);
  auto rows = oracle->GetRows(sources, /*threads=*/2);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    CompatRow scalar = ComputeCompatRow(g, CompatKind::kSPM, params, u);
    ExpectRowsEqual(*rows[u], scalar, CompatKind::kSPM, u);
    EXPECT_EQ(rows[u]->saturated, scalar.saturated);
  }
}

}  // namespace
}  // namespace tfsn
