#include "src/gen/generators.h"

#include <unordered_set>

#include "src/graph/graph_builder.h"
#include "src/util/logging.h"

namespace tfsn {

namespace {

uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

// Adds a uniformly random spanning tree over [0, n): each node i >= 1
// attaches to a uniform previous node (random recursive tree).
void AddRandomTree(uint32_t n, Rng* rng,
                   std::vector<std::pair<NodeId, NodeId>>* edges,
                   std::unordered_set<uint64_t>* used) {
  for (uint32_t i = 1; i < n; ++i) {
    NodeId parent = static_cast<NodeId>(rng->NextBounded(i));
    edges->push_back({parent, i});
    used->insert(EdgeKey(parent, i));
  }
}

// Preferential-attachment tree: node i >= 1 attaches to a node sampled
// proportionally to (degree + 1) among nodes [0, i).
void AddPreferentialTree(uint32_t n, Rng* rng,
                         std::vector<std::pair<NodeId, NodeId>>* edges,
                         std::unordered_set<uint64_t>* used,
                         std::vector<NodeId>* endpoint_pool) {
  endpoint_pool->push_back(0);
  for (uint32_t i = 1; i < n; ++i) {
    NodeId parent =
        (*endpoint_pool)[rng->NextBounded(endpoint_pool->size())];
    edges->push_back({parent, i});
    used->insert(EdgeKey(parent, i));
    endpoint_pool->push_back(parent);
    endpoint_pool->push_back(i);
  }
}

SignedGraph AssignSignsAndBuild(
    uint32_t n, const std::vector<std::pair<NodeId, NodeId>>& edges,
    double negative_fraction, Rng* rng) {
  SignedGraphBuilder builder(n);
  for (const auto& [u, v] : edges) {
    Sign sign = rng->NextBool(negative_fraction) ? Sign::kNegative
                                                 : Sign::kPositive;
    builder.AddEdge(u, v, sign).CheckOK();
  }
  return std::move(builder.Build()).ValueOrDie();
}

}  // namespace

SignedGraph RandomConnectedGnm(uint32_t n, uint64_t m,
                               double negative_fraction, Rng* rng) {
  TFSN_CHECK_GE(n, 1u);
  TFSN_CHECK_GE(m + 1, static_cast<uint64_t>(n));
  TFSN_CHECK_LE(m, static_cast<uint64_t>(n) * (n - 1) / 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::unordered_set<uint64_t> used;
  edges.reserve(m);
  AddRandomTree(n, rng, &edges, &used);
  while (edges.size() < m) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    if (!used.insert(EdgeKey(u, v)).second) continue;
    edges.push_back({u, v});
  }
  return AssignSignsAndBuild(n, edges, negative_fraction, rng);
}

SignedGraph RandomPreferentialAttachment(uint32_t n, uint64_t m,
                                         double negative_fraction, Rng* rng) {
  TFSN_CHECK_GE(n, 1u);
  TFSN_CHECK_GE(m + 1, static_cast<uint64_t>(n));
  TFSN_CHECK_LE(m, static_cast<uint64_t>(n) * (n - 1) / 2);
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::unordered_set<uint64_t> used;
  std::vector<NodeId> pool;  // node appears once per incident edge endpoint
  edges.reserve(m);
  pool.reserve(2 * m + 1);
  AddPreferentialTree(n, rng, &edges, &used, &pool);
  uint64_t attempts = 0;
  const uint64_t max_attempts = 100 * m + 1000;
  while (edges.size() < m && attempts < max_attempts) {
    ++attempts;
    NodeId u = pool[rng->NextBounded(pool.size())];
    NodeId v = pool[rng->NextBounded(pool.size())];
    if (u == v) continue;
    if (!used.insert(EdgeKey(u, v)).second) continue;
    edges.push_back({u, v});
    pool.push_back(u);
    pool.push_back(v);
  }
  // Dense hubs can exhaust preferential candidates; fall back to uniform.
  while (edges.size() < m) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    if (!used.insert(EdgeKey(u, v)).second) continue;
    edges.push_back({u, v});
  }
  return AssignSignsAndBuild(n, edges, negative_fraction, rng);
}

SignedGraph PlantedPartitionSigned(uint32_t n, uint64_t m, double noise,
                                   Rng* rng) {
  TFSN_CHECK_GE(n, 2u);
  TFSN_CHECK_GE(m + 1, static_cast<uint64_t>(n));
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::unordered_set<uint64_t> used;
  AddRandomTree(n, rng, &edges, &used);
  while (edges.size() < m) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    if (!used.insert(EdgeKey(u, v)).second) continue;
    edges.push_back({u, v});
  }
  // Faction = node parity of id < n/2; signs follow the partition, then
  // noise flips.
  const uint32_t half = n / 2;
  SignedGraphBuilder builder(n);
  for (const auto& [u, v] : edges) {
    bool same_faction = (u < half) == (v < half);
    Sign sign = same_faction ? Sign::kPositive : Sign::kNegative;
    if (rng->NextBool(noise)) sign = Negate(sign);
    builder.AddEdge(u, v, sign).CheckOK();
  }
  return std::move(builder.Build()).ValueOrDie();
}

SignedGraph RandomBalancedGraph(uint32_t n, uint64_t m, Rng* rng) {
  return PlantedPartitionSigned(n, m, /*noise=*/0.0, rng);
}

SignedGraph SmallWorldSigned(uint32_t n, uint32_t k, double beta,
                             double negative_fraction, Rng* rng) {
  TFSN_CHECK_GE(k, 2u);
  TFSN_CHECK_EQ(k % 2, 0u);
  TFSN_CHECK_GT(n, k);
  std::unordered_set<uint64_t> used;
  std::vector<std::pair<NodeId, NodeId>> edges;
  // Ring lattice.
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      NodeId u = i;
      NodeId v = (i + j) % n;
      if (used.insert(EdgeKey(u, v)).second) edges.push_back({u, v});
    }
  }
  // Rewire each edge's far endpoint with probability beta; keep
  // connectivity likely by never rewiring the j == 1 ring edges.
  for (auto& [u, v] : edges) {
    NodeId diff = v >= u ? v - u : u - v;
    bool ring_edge = diff == 1 || diff == n - 1;
    if (ring_edge || !rng->NextBool(beta)) continue;
    for (int tries = 0; tries < 32; ++tries) {
      NodeId w = static_cast<NodeId>(rng->NextBounded(n));
      if (w == u || used.contains(EdgeKey(u, w))) continue;
      used.erase(EdgeKey(u, v));
      used.insert(EdgeKey(u, w));
      v = w;
      break;
    }
  }
  return AssignSignsAndBuild(n, edges, negative_fraction, rng);
}

}  // namespace tfsn
