// Random signed-graph generators.
//
// These stand in for the paper's real datasets (Slashdot, Epinions,
// Wikipedia), which we cannot ship. Each generator produces a *connected*
// signed graph matched on the statistics that drive the paper's metrics:
// node count, edge count, negative-edge fraction, and (approximately)
// degree skew. See DESIGN.md §2 for the substitution argument.

#pragma once

#include <cstdint>

#include "src/graph/signed_graph.h"
#include "src/util/rng.h"

namespace tfsn {

/// Connected Erdős–Rényi-style G(n, m) signed graph: a uniform random
/// spanning tree plus (m - n + 1) uniform random extra edges; each edge is
/// negative independently with probability `negative_fraction`.
/// Requires m >= n - 1.
SignedGraph RandomConnectedGnm(uint32_t n, uint64_t m,
                               double negative_fraction, Rng* rng);

/// Connected preferential-attachment graph with heavy-tailed degrees: a
/// random tree grown with preferential attachment, then extra edges whose
/// endpoints are sampled proportionally to current degree. Mimics the skew
/// of social networks like Epinions. Requires m >= n - 1.
SignedGraph RandomPreferentialAttachment(uint32_t n, uint64_t m,
                                         double negative_fraction, Rng* rng);

/// Two-faction planted-partition signed graph: nodes are split into two
/// factions of sizes n/2; within-faction edges are positive and
/// cross-faction edges negative, then each edge sign is flipped
/// independently with probability `noise`. With noise == 0 the graph is
/// exactly structurally balanced. Edge placement: spanning tree + random
/// extra edges as in RandomConnectedGnm. Requires m >= n - 1, n >= 2.
SignedGraph PlantedPartitionSigned(uint32_t n, uint64_t m, double noise,
                                   Rng* rng);

/// Exactly structurally balanced random graph (PlantedPartitionSigned with
/// zero noise).
SignedGraph RandomBalancedGraph(uint32_t n, uint64_t m, Rng* rng);

/// Ring lattice (each node connected to `k` nearest neighbours on a cycle)
/// with Watts–Strogatz rewiring probability `beta`; signs negative with
/// probability `negative_fraction`. Useful for controlling diameter.
/// Requires even k >= 2, n > k.
SignedGraph SmallWorldSigned(uint32_t n, uint32_t k, double beta,
                             double negative_fraction, Rng* rng);

}  // namespace tfsn
