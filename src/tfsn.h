// Umbrella header for libtfsn — team formation in signed networks.
//
// Reproduces Kouvatis, Semertzidis, Zerva, Pitoura, Tsaparas:
// "Forming Compatible Teams in Signed Networks", EDBT 2020.
//
// Quickstart:
//
//   #include "src/tfsn.h"
//
//   tfsn::Dataset ds = tfsn::MakeSlashdot();
//   auto oracle = tfsn::MakeOracle(ds.graph, tfsn::CompatKind::kSPM);
//   tfsn::Rng rng(7);
//   tfsn::SkillCompatibilityIndex index(oracle.get(), ds.skills, 0, &rng);
//   tfsn::GreedyTeamFormer former(oracle.get(), ds.skills, &index, {});
//   tfsn::Task task = tfsn::RandomTask(ds.skills, 5, &rng);
//   tfsn::TeamResult team = former.Form(task, &rng);

#pragma once

#include "src/compat/compat_graph.h"      // IWYU pragma: export
#include "src/compat/compatibility.h"     // IWYU pragma: export
#include "src/compat/row_cache.h"         // IWYU pragma: export
#include "src/compat/row_codec.h"         // IWYU pragma: export
#include "src/compat/row_kernels.h"       // IWYU pragma: export
#include "src/compat/row_spill.h"         // IWYU pragma: export
#include "src/compat/sbp.h"               // IWYU pragma: export
#include "src/compat/signed_bfs.h"        // IWYU pragma: export
#include "src/compat/skill_index.h"       // IWYU pragma: export
#include "src/compat/stats.h"             // IWYU pragma: export
#include "src/compat/threshold.h"         // IWYU pragma: export
#include "src/data/datasets.h"            // IWYU pragma: export
#include "src/dist/distributed_former.h"  // IWYU pragma: export
#include "src/dist/message.h"             // IWYU pragma: export
#include "src/dist/shard_plan.h"          // IWYU pragma: export
#include "src/dist/transport.h"           // IWYU pragma: export
#include "src/ext/balance_clustering.h"   // IWYU pragma: export
#include "src/ext/sign_prediction.h"      // IWYU pragma: export
#include "src/gen/generators.h"           // IWYU pragma: export
#include "src/graph/balance.h"            // IWYU pragma: export
#include "src/graph/bfs.h"                // IWYU pragma: export
#include "src/graph/components.h"         // IWYU pragma: export
#include "src/graph/diameter.h"           // IWYU pragma: export
#include "src/graph/graph_builder.h"      // IWYU pragma: export
#include "src/graph/graph_io.h"           // IWYU pragma: export
#include "src/graph/signed_graph.h"       // IWYU pragma: export
#include "src/graph/transform.h"          // IWYU pragma: export
#include "src/serve/admission_queue.h"    // IWYU pragma: export
#include "src/serve/batcher.h"            // IWYU pragma: export
#include "src/serve/server.h"             // IWYU pragma: export
#include "src/serve/types.h"              // IWYU pragma: export
#include "src/serve/workload.h"           // IWYU pragma: export
#include "src/skills/skill_generator.h"   // IWYU pragma: export
#include "src/skills/skills.h"            // IWYU pragma: export
#include "src/skills/skills_io.h"         // IWYU pragma: export
#include "src/team/cost.h"                // IWYU pragma: export
#include "src/team/exact.h"               // IWYU pragma: export
#include "src/team/greedy.h"              // IWYU pragma: export
#include "src/team/refine.h"              // IWYU pragma: export
#include "src/team/task_view.h"           // IWYU pragma: export
#include "src/team/unsigned_tf.h"         // IWYU pragma: export
#include "src/util/flags.h"               // IWYU pragma: export
#include "src/util/fnv1a.h"               // IWYU pragma: export
#include "src/util/latency_histogram.h"   // IWYU pragma: export
#include "src/util/parallel.h"            // IWYU pragma: export
#include "src/util/rng.h"                 // IWYU pragma: export
#include "src/util/status.h"              // IWYU pragma: export
#include "src/util/table.h"               // IWYU pragma: export
#include "src/util/timer.h"               // IWYU pragma: export
#include "src/util/zipf.h"                // IWYU pragma: export
