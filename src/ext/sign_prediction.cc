#include "src/ext/sign_prediction.h"

#include "src/compat/sbp.h"
#include "src/compat/signed_bfs.h"
#include "src/graph/graph_builder.h"

namespace tfsn {

const char* SignPredictorName(SignPredictor p) {
  switch (p) {
    case SignPredictor::kMajorityShortestPath: return "MajoritySP";
    case SignPredictor::kTriadBalance: return "TriadBalance";
    case SignPredictor::kSbph: return "SBPH";
  }
  return "?";
}

SignedGraph RemoveEdge(const SignedGraph& g, NodeId u, NodeId v) {
  SignedGraphBuilder builder(g.num_nodes());
  for (NodeId a = 0; a < g.num_nodes(); ++a) {
    for (const Neighbor& nb : g.Neighbors(a)) {
      if (a >= nb.to) continue;
      if ((a == u && nb.to == v) || (a == v && nb.to == u)) continue;
      builder.AddEdge(a, nb.to, nb.sign).CheckOK();
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

namespace {

std::optional<Sign> PredictByMajoritySp(const SignedGraph& g, NodeId u,
                                        NodeId v) {
  SignedBfsResult r = SignedShortestPathCount(g, u);
  if (r.dist[v] == kUnreachable) return std::nullopt;
  if (r.num_pos[v] == r.num_neg[v]) return std::nullopt;  // tie: abstain
  return r.num_pos[v] > r.num_neg[v] ? Sign::kPositive : Sign::kNegative;
}

std::optional<Sign> PredictByTriads(const SignedGraph& g, NodeId u, NodeId v) {
  // Merge-intersect the sorted adjacency lists; each common neighbour votes
  // with the product of its two edge signs (balance-theory closure).
  auto nu = g.Neighbors(u);
  auto nv = g.Neighbors(v);
  int64_t vote = 0;
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i].to < nv[j].to) {
      ++i;
    } else if (nu[i].to > nv[j].to) {
      ++j;
    } else {
      vote += static_cast<int64_t>(static_cast<int8_t>(nu[i].sign)) *
              static_cast<int8_t>(nv[j].sign);
      ++i;
      ++j;
    }
  }
  if (vote == 0) return std::nullopt;
  return vote > 0 ? Sign::kPositive : Sign::kNegative;
}

std::optional<Sign> PredictBySbph(const SignedGraph& g, NodeId u, NodeId v) {
  SbphResult r = SbphFromSource(g, u);
  bool pos = r.pos_dist[v] != kUnreachable;
  bool neg = r.neg_dist[v] != kUnreachable;
  if (pos == neg) {
    // Both or neither reachable: fall back to which is *closer*.
    if (pos && r.pos_dist[v] != r.neg_dist[v]) {
      return r.pos_dist[v] < r.neg_dist[v] ? Sign::kPositive
                                           : Sign::kNegative;
    }
    return std::nullopt;
  }
  return pos ? Sign::kPositive : Sign::kNegative;
}

}  // namespace

std::optional<Sign> PredictSign(const SignedGraph& g, NodeId u, NodeId v,
                                SignPredictor predictor) {
  switch (predictor) {
    case SignPredictor::kMajorityShortestPath:
      return PredictByMajoritySp(g, u, v);
    case SignPredictor::kTriadBalance:
      return PredictByTriads(g, u, v);
    case SignPredictor::kSbph:
      return PredictBySbph(g, u, v);
  }
  return std::nullopt;
}

SignPredictionReport EvaluateSignPredictor(const SignedGraph& g,
                                           SignPredictor predictor,
                                           uint32_t samples, Rng* rng) {
  SignPredictionReport report;
  std::vector<SignedEdge> edges = g.Edges();
  if (edges.empty()) return report;
  samples = std::min<uint32_t>(samples, static_cast<uint32_t>(edges.size()));
  std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(edges.size()), samples);
  for (uint32_t p : picks) {
    const SignedEdge& e = edges[p];
    SignedGraph hidden = RemoveEdge(g, e.u, e.v);
    std::optional<Sign> prediction =
        PredictSign(hidden, e.u, e.v, predictor);
    if (!prediction) {
      ++report.abstained;
      continue;
    }
    ++report.evaluated;
    report.correct += *prediction == e.sign;
  }
  return report;
}

}  // namespace tfsn
