// Edge-sign prediction from compatibility — the paper's Section 7 suggests
// "exploit[ing] compatibility for other tasks, such as link prediction".
//
// Given a signed graph with one edge hidden, predict the hidden edge's sign
// from the structure of the remaining graph. Three predictors:
//   * kMajorityShortestPath — Algorithm 1 counts on the graph minus the
//     edge; predict positive iff positive shortest paths are the majority
//     (the SPM criterion as a predictor, cf. Leskovec et al.).
//   * kTriadBalance — status-free structural balance vote: each common
//     neighbour w of (u,v) votes sign(u,w)*sign(w,v); majority wins
//     (classic balance-theory heuristic).
//   * kSbph — predict positive iff a balanced positive path exists in the
//     graph minus the edge (SBPH reachability).

#pragma once

#include <cstdint>
#include <optional>

#include "src/graph/signed_graph.h"
#include "src/util/rng.h"

namespace tfsn {

/// Available sign predictors.
enum class SignPredictor : uint8_t {
  kMajorityShortestPath,
  kTriadBalance,
  kSbph,
};

const char* SignPredictorName(SignPredictor p);

/// Predicts the sign of the (absent or hidden) pair (u, v) from the rest of
/// the graph. Returns nullopt when the predictor has no evidence (e.g. no
/// common neighbours / no paths). `g` must not contain the edge itself;
/// hide it first with RemoveEdge() below.
std::optional<Sign> PredictSign(const SignedGraph& g, NodeId u, NodeId v,
                                SignPredictor predictor);

/// Copy of `g` without the (u, v) edge (no-op if absent).
SignedGraph RemoveEdge(const SignedGraph& g, NodeId u, NodeId v);

/// Leave-one-out evaluation: hides `samples` random edges one at a time and
/// scores each predictor's accuracy on them.
struct SignPredictionReport {
  uint64_t evaluated = 0;   ///< edges with a prediction
  uint64_t correct = 0;
  uint64_t abstained = 0;   ///< edges where the predictor had no evidence
  double accuracy() const {
    return evaluated == 0 ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(evaluated);
  }
};

SignPredictionReport EvaluateSignPredictor(const SignedGraph& g,
                                           SignPredictor predictor,
                                           uint32_t samples, Rng* rng);

}  // namespace tfsn
