// Balance-based clustering — the paper's conclusions propose exploiting
// compatibility "for other tasks, such as ... clustering", and cite
// correlation clustering on signed graphs [Drummond et al. 2013].
//
// We implement two-faction frustration minimization (the Cartwright–Harary
// model): find a node bipartition minimizing the number of edges violating
// it (positive across + negative within). Exact for balanced graphs via
// the 2-colouring; local-search (Kernighan–Lin style single-node moves with
// restarts) otherwise. Also exposes polarization metrics derived from the
// partition.

#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/balance.h"
#include "src/graph/signed_graph.h"
#include "src/util/rng.h"

namespace tfsn {

/// Result of a two-faction clustering.
struct FactionClustering {
  /// Faction side per node (+1 / -1).
  std::vector<Side> side;
  /// Number of frustrated edges under `side`.
  uint64_t frustration = 0;
  /// True when the graph is exactly balanced and `side` witnesses it.
  bool exact = false;
  /// Local-search restarts actually performed.
  uint32_t restarts_used = 0;
};

/// Options for the local search.
struct ClusteringOptions {
  uint32_t restarts = 8;
  /// Maximum full passes over the nodes per restart.
  uint32_t max_passes = 64;
  uint64_t seed = 1;
};

/// Two-faction frustration minimization. If the graph is balanced, returns
/// the exact 2-colouring (frustration 0); otherwise runs first-improvement
/// local search over single-node flips from random starts and returns the
/// best partition found.
FactionClustering ClusterFactions(const SignedGraph& g,
                                  const ClusteringOptions& options = {});

/// Polarization score in [0, 1]: 1 - frustration / num_edges. 1 means the
/// graph splits perfectly into two hostile-across/friendly-within camps;
/// values near 0.5 mean signs are unrelated to any bipartition.
double PolarizationScore(const SignedGraph& g,
                         const FactionClustering& clustering);

/// Fraction of nodes in the larger faction (0.5 = even split).
double FactionImbalance(const FactionClustering& clustering);

}  // namespace tfsn
