#include "src/ext/balance_clustering.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tfsn {

namespace {

// Gain (reduction in frustration) from flipping node u given sides.
int64_t FlipGain(const SignedGraph& g, const std::vector<Side>& side,
                 NodeId u) {
  int64_t frustrated = 0, satisfied = 0;
  for (const Neighbor& nb : g.Neighbors(u)) {
    bool same = side[u] == side[nb.to];
    bool bad = (same && nb.sign == Sign::kNegative) ||
               (!same && nb.sign == Sign::kPositive);
    bad ? ++frustrated : ++satisfied;
  }
  return frustrated - satisfied;
}

}  // namespace

FactionClustering ClusterFactions(const SignedGraph& g,
                                  const ClusteringOptions& options) {
  FactionClustering best;
  BalanceCheck check = CheckBalance(g);
  if (check.balanced) {
    best.side = std::move(check.side);
    if (best.side.empty()) best.side.assign(g.num_nodes(), +1);
    best.frustration = 0;
    best.exact = true;
    return best;
  }

  Rng rng(options.seed);
  best.frustration = ~0ULL;
  for (uint32_t restart = 0; restart < std::max(1u, options.restarts);
       ++restart) {
    ++best.restarts_used;
    std::vector<Side> side(g.num_nodes());
    for (Side& s : side) s = rng.NextBool(0.5) ? +1 : -1;
    // First-improvement sweeps until a full pass makes no flip.
    for (uint32_t pass = 0; pass < options.max_passes; ++pass) {
      bool improved = false;
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (FlipGain(g, side, u) > 0) {
          side[u] = static_cast<Side>(-side[u]);
          improved = true;
        }
      }
      if (!improved) break;
    }
    uint64_t frustration = Frustration(g, side);
    if (frustration < best.frustration) {
      best.frustration = frustration;
      best.side = std::move(side);
    }
  }
  return best;
}

double PolarizationScore(const SignedGraph& g,
                         const FactionClustering& clustering) {
  if (g.num_edges() == 0) return 1.0;
  return 1.0 - static_cast<double>(clustering.frustration) /
                   static_cast<double>(g.num_edges());
}

double FactionImbalance(const FactionClustering& clustering) {
  if (clustering.side.empty()) return 0.5;
  uint64_t plus = 0;
  for (Side s : clustering.side) plus += s > 0;
  double frac = static_cast<double>(plus) / clustering.side.size();
  return std::max(frac, 1.0 - frac);
}

}  // namespace tfsn
