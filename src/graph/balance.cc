#include "src/graph/balance.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "src/util/logging.h"

namespace tfsn {

BalanceCheck CheckBalance(const SignedGraph& g) {
  BalanceCheck out;
  const uint32_t n = g.num_nodes();
  out.side.assign(n, 0);  // 0 == unvisited
  for (NodeId start = 0; start < n; ++start) {
    if (out.side[start] != 0) continue;
    out.side[start] = +1;
    std::deque<NodeId> queue{start};
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (const Neighbor& nb : g.Neighbors(u)) {
        Side want = nb.sign == Sign::kPositive ? out.side[u]
                                               : static_cast<Side>(-out.side[u]);
        if (out.side[nb.to] == 0) {
          out.side[nb.to] = want;
          queue.push_back(nb.to);
        } else if (out.side[nb.to] != want) {
          out.balanced = false;
          out.side.clear();
          return out;
        }
      }
    }
  }
  out.balanced = true;
  return out;
}

std::vector<Side> PathSides(const SignedGraph& g,
                            std::span<const NodeId> path) {
  std::vector<Side> sides;
  sides.reserve(path.size());
  Side side = +1;
  sides.push_back(side);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto sign = g.EdgeSign(path[i], path[i + 1]);
    TFSN_CHECK(sign.has_value());
    if (*sign == Sign::kNegative) side = static_cast<Side>(-side);
    sides.push_back(side);
  }
  return sides;
}

bool IsPathBalanced(const SignedGraph& g, std::span<const NodeId> path) {
  if (path.size() <= 2) return true;  // a single edge induces no cycle
  std::vector<Side> sides = PathSides(g, path);
  // Check every chord: edge between path[i] and path[j], |i-j| > 1.
  // We iterate the sparser direction: for each path node, scan its adjacency
  // and test membership in the path via a position map.
  // Path lengths are small (<= graph diameter), so a linear scan over the
  // path for membership is fine; use index map to keep it O(1).
  std::vector<std::pair<NodeId, Side>> pos;  // sorted (node, side)
  pos.reserve(path.size());
  for (size_t i = 0; i < path.size(); ++i) pos.push_back({path[i], sides[i]});
  std::sort(pos.begin(), pos.end());
  auto side_of = [&pos](NodeId x) -> std::optional<Side> {
    auto it = std::lower_bound(
        pos.begin(), pos.end(), x,
        [](const std::pair<NodeId, Side>& p, NodeId v) { return p.first < v; });
    if (it == pos.end() || it->first != x) return std::nullopt;
    return it->second;
  };
  for (size_t i = 0; i < path.size(); ++i) {
    for (const Neighbor& nb : g.Neighbors(path[i])) {
      if (nb.to <= path[i]) continue;  // each edge once
      auto other = side_of(nb.to);
      if (!other) continue;
      Sign expected = sides[i] * (*other) > 0 ? Sign::kPositive : Sign::kNegative;
      if (nb.sign != expected) return false;
    }
  }
  return true;
}

TriangleCensus CountTriangles(const SignedGraph& g) {
  TriangleCensus census;
  // For each edge (u,v) with u < v, intersect sorted adjacency lists and
  // count each triangle once by requiring w > v.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nu = g.Neighbors(u);
    for (const Neighbor& uv : nu) {
      if (uv.to <= u) continue;
      NodeId v = uv.to;
      auto nv = g.Neighbors(v);
      size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i].to < nv[j].to) {
          ++i;
        } else if (nu[i].to > nv[j].to) {
          ++j;
        } else {
          NodeId w = nu[i].to;
          if (w > v) {
            int negatives = (uv.sign == Sign::kNegative) +
                            (nu[i].sign == Sign::kNegative) +
                            (nv[j].sign == Sign::kNegative);
            switch (negatives) {
              case 0: ++census.ppp; break;
              case 1: ++census.ppn; break;
              case 2: ++census.pnn; break;
              default: ++census.nnn; break;
            }
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return census;
}

uint64_t Frustration(const SignedGraph& g, std::span<const Side> side) {
  TFSN_CHECK_EQ(side.size(), g.num_nodes());
  uint64_t violations = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (nb.to <= u) continue;
      bool same = side[u] == side[nb.to];
      if ((same && nb.sign == Sign::kNegative) ||
          (!same && nb.sign == Sign::kPositive)) {
        ++violations;
      }
    }
  }
  return violations;
}

}  // namespace tfsn
