#include "src/graph/diameter.h"

#include <algorithm>

#include "src/graph/bfs.h"

namespace tfsn {

uint32_t ExactDiameter(const SignedGraph& g) {
  uint32_t diameter = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    diameter = std::max(diameter, Eccentricity(g, u));
  }
  return diameter;
}

namespace {

// One double sweep: BFS from seed, then BFS from the farthest node found.
uint32_t DoubleSweep(const SignedGraph& g, NodeId seed) {
  std::vector<uint32_t> dist = BfsDistances(g, seed);
  NodeId far = seed;
  uint32_t best = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (dist[u] != kUnreachable && dist[u] > best) {
      best = dist[u];
      far = u;
    }
  }
  return Eccentricity(g, far);
}

}  // namespace

uint32_t EstimateDiameter(const SignedGraph& g, uint32_t samples, Rng* rng) {
  if (g.num_nodes() < 2) return 0;
  uint32_t best = 0;
  for (uint32_t i = 0; i < samples; ++i) {
    NodeId seed = static_cast<NodeId>(rng->NextBounded(g.num_nodes()));
    best = std::max(best, DoubleSweep(g, seed));
  }
  return best;
}

double EstimateAverageDistance(const SignedGraph& g, uint32_t source_samples,
                               Rng* rng) {
  if (g.num_nodes() < 2) return 0.0;
  // Sampling >= n sources degenerates to the exact all-sources average.
  std::vector<uint32_t> sources;
  if (source_samples >= g.num_nodes()) {
    sources.resize(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) sources[u] = u;
  } else {
    sources = rng->SampleWithoutReplacement(g.num_nodes(), source_samples);
  }
  double sum = 0.0;
  uint64_t count = 0;
  for (NodeId source : sources) {
    std::vector<uint32_t> dist = BfsDistances(g, source);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u != source && dist[u] != kUnreachable) {
        sum += dist[u];
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace tfsn
