// Edge-list serialization.
//
// Format (SNAP-compatible signed edge list):
//   # comment lines start with '#'
//   <u> <v> <sign>      sign is +1/-1 (also accepts 1/-1)
// Node ids are arbitrary non-negative integers; they are densified on load.

#pragma once

#include <string>

#include "src/graph/signed_graph.h"
#include "src/util/result.h"

namespace tfsn {

/// Loads a signed graph from an edge-list file. Duplicate edges with equal
/// signs are merged; conflicting duplicates and self-loops are skipped with
/// a count reported via `skipped` (optional).
Result<SignedGraph> LoadEdgeList(const std::string& path,
                                 uint64_t* skipped = nullptr);

/// Parses the same format from an in-memory string (used by tests).
Result<SignedGraph> ParseEdgeList(const std::string& text,
                                  uint64_t* skipped = nullptr);

/// Writes the graph in the format above.
Status WriteEdgeList(const SignedGraph& g, const std::string& path);

/// Serializes to the edge-list text format.
std::string ToEdgeListString(const SignedGraph& g);

}  // namespace tfsn
