// Unsigned breadth-first search primitives over a SignedGraph.
//
// These ignore edge signs; the sign-aware shortest-path machinery lives in
// src/compat/sp_compat.h (Algorithm 1 of the paper).

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/graph/signed_graph.h"

namespace tfsn {

/// Distance value for unreachable nodes.
inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

/// BFS distances (hop counts) from `source` to every node; kUnreachable for
/// nodes in other components. O(n + m).
std::vector<uint32_t> BfsDistances(const SignedGraph& g, NodeId source);

/// BFS limited to `max_depth` hops; nodes farther away get kUnreachable.
std::vector<uint32_t> BfsDistancesBounded(const SignedGraph& g, NodeId source,
                                          uint32_t max_depth);

/// Distance between two nodes (early-exit BFS); kUnreachable if disconnected.
uint32_t BfsDistance(const SignedGraph& g, NodeId source, NodeId target);

/// One shortest path from source to target as a node sequence (inclusive of
/// both endpoints), or empty if unreachable / source == target.
std::vector<NodeId> BfsShortestPath(const SignedGraph& g, NodeId source,
                                    NodeId target);

/// The eccentricity of `source`: max finite BFS distance from it.
uint32_t Eccentricity(const SignedGraph& g, NodeId source);

}  // namespace tfsn
