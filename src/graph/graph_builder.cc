#include "src/graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace tfsn {

Status SignedGraphBuilder::AddEdge(NodeId u, NodeId v, Sign sign) {
  if (u == v) {
    return Status::InvalidArgument("self-loop on node " + std::to_string(u));
  }
  EnsureNode(u);
  EnsureNode(v);
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v, sign});
  return Status::OK();
}

bool SignedGraphBuilder::HasEdge(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  for (const SignedEdge& e : edges_) {
    if (e.u == u && e.v == v) return true;
  }
  return false;
}

Result<SignedGraph> SignedGraphBuilder::Build() const {
  std::vector<SignedEdge> edges = edges_;
  std::sort(edges.begin(), edges.end(), [](const SignedEdge& a, const SignedEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  // Deduplicate; conflicting duplicate signs are a construction bug.
  std::vector<SignedEdge> unique;
  unique.reserve(edges.size());
  for (const SignedEdge& e : edges) {
    if (!unique.empty() && unique.back().u == e.u && unique.back().v == e.v) {
      if (unique.back().sign != e.sign) {
        return Status::InvalidArgument(
            "edge (" + std::to_string(e.u) + "," + std::to_string(e.v) +
            ") added with conflicting signs");
      }
      continue;
    }
    unique.push_back(e);
  }

  SignedGraph g;
  const uint32_t n = num_nodes_;
  std::vector<uint32_t> degree(n, 0);
  for (const SignedEdge& e : unique) {
    ++degree[e.u];
    ++degree[e.v];
  }
  g.offsets_.assign(n + 1, 0);
  for (uint32_t u = 0; u < n; ++u) {
    g.offsets_[u + 1] = g.offsets_[u] + degree[u];
  }
  g.adj_.resize(unique.size() * 2);
  g.targets_.resize(unique.size() * 2);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const SignedEdge& e : unique) {
    g.adj_[cursor[e.u]] = {e.v, e.sign};
    g.targets_[cursor[e.u]++] = e.v;
    g.adj_[cursor[e.v]] = {e.u, e.sign};
    g.targets_[cursor[e.v]++] = e.u;
    if (e.sign == Sign::kNegative) ++g.num_negative_;
  }
  // Sort each adjacency list by target id for binary-search lookups.
  for (uint32_t u = 0; u < n; ++u) {
    auto begin = g.adj_.begin() + static_cast<int64_t>(g.offsets_[u]);
    auto end = g.adj_.begin() + static_cast<int64_t>(g.offsets_[u + 1]);
    std::sort(begin, end,
              [](const Neighbor& a, const Neighbor& b) { return a.to < b.to; });
    for (uint64_t i = g.offsets_[u]; i < g.offsets_[u + 1]; ++i) {
      g.targets_[i] = g.adj_[i].to;
    }
  }
  return g;
}

}  // namespace tfsn
