#include "src/graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace tfsn {

Status SignedGraphBuilder::AddEdge(NodeId u, NodeId v, Sign sign) {
  if (u == v) {
    return Status::InvalidArgument("self-loop on node " + std::to_string(u));
  }
  EnsureNode(u);
  EnsureNode(v);
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v, sign});
  return Status::OK();
}

bool SignedGraphBuilder::HasEdge(NodeId u, NodeId v) const {
  if (u > v) std::swap(u, v);
  for (const SignedEdge& e : edges_) {
    if (e.u == u && e.v == v) return true;
  }
  return false;
}

Result<SignedGraph> SignedGraphBuilder::Build() const {
  std::vector<SignedEdge> edges = edges_;
  std::sort(edges.begin(), edges.end(), [](const SignedEdge& a, const SignedEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  // Deduplicate; conflicting duplicate signs are a construction bug.
  std::vector<SignedEdge> unique;
  unique.reserve(edges.size());
  for (const SignedEdge& e : edges) {
    if (!unique.empty() && unique.back().u == e.u && unique.back().v == e.v) {
      if (unique.back().sign != e.sign) {
        return Status::InvalidArgument(
            "edge (" + std::to_string(e.u) + "," + std::to_string(e.v) +
            ") added with conflicting signs");
      }
      continue;
    }
    unique.push_back(e);
  }

  SignedGraph g;
  const uint32_t n = num_nodes_;
  std::vector<uint32_t> degree(n, 0);
  for (const SignedEdge& e : unique) {
    ++degree[e.u];
    ++degree[e.v];
  }
  g.offsets_.assign(n + 1, 0);
  for (uint32_t u = 0; u < n; ++u) {
    g.offsets_[u + 1] = g.offsets_[u] + degree[u];
  }
  // Scatter into a temporary array-of-structs, sort each adjacency list by
  // target id for binary-search lookups, then pack into the SoA layout
  // (4-byte targets + 1 sign bit per directed edge slot).
  const uint64_t directed = unique.size() * 2;
  std::vector<Neighbor> scratch(directed);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const SignedEdge& e : unique) {
    scratch[cursor[e.u]++] = {e.v, e.sign};
    scratch[cursor[e.v]++] = {e.u, e.sign};
    if (e.sign == Sign::kNegative) ++g.num_negative_;
  }
  for (uint32_t u = 0; u < n; ++u) {
    std::sort(scratch.begin() + static_cast<int64_t>(g.offsets_[u]),
              scratch.begin() + static_cast<int64_t>(g.offsets_[u + 1]),
              [](const Neighbor& a, const Neighbor& b) { return a.to < b.to; });
  }
  g.adj_targets_.resize(directed);
  g.adj_neg_words_.assign((directed + 63) / 64, 0);
  for (uint64_t e = 0; e < directed; ++e) {
    g.adj_targets_[e] = scratch[e].to;
    if (scratch[e].sign == Sign::kNegative) {
      g.adj_neg_words_[e >> 6] |= 1ull << (e & 63);
    }
  }
  return g;
}

}  // namespace tfsn
