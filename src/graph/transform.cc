#include "src/graph/transform.h"

#include "src/graph/graph_builder.h"

namespace tfsn {

namespace {

template <typename EdgeFn>
SignedGraph Rebuild(const SignedGraph& g, EdgeFn fn) {
  SignedGraphBuilder builder(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (u >= nb.to) continue;
      std::optional<Sign> sign = fn(nb.sign);
      if (sign) builder.AddEdge(u, nb.to, *sign).CheckOK();
    }
  }
  return std::move(builder.Build()).ValueOrDie();
}

}  // namespace

SignedGraph IgnoreSigns(const SignedGraph& g) {
  return Rebuild(g, [](Sign) -> std::optional<Sign> { return Sign::kPositive; });
}

SignedGraph DeleteNegativeEdges(const SignedGraph& g) {
  return Rebuild(g, [](Sign s) -> std::optional<Sign> {
    if (s == Sign::kNegative) return std::nullopt;
    return Sign::kPositive;
  });
}

SignedGraph FlipSigns(const SignedGraph& g) {
  return Rebuild(g, [](Sign s) -> std::optional<Sign> { return Negate(s); });
}

}  // namespace tfsn
