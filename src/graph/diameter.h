// Graph diameter: exact (all-sources BFS) and sampled estimates.
//
// Table 1 of the paper reports dataset diameters; we need both an exact
// routine for small graphs and a cheap estimate for Epinions-scale ones.

#pragma once

#include <cstdint>

#include "src/graph/signed_graph.h"
#include "src/util/rng.h"

namespace tfsn {

/// Exact diameter of the (assumed connected) graph via n BFS runs.
/// Returns 0 for graphs with < 2 nodes. O(n * (n + m)).
uint32_t ExactDiameter(const SignedGraph& g);

/// Lower-bound diameter estimate: repeated double-sweep from `samples`
/// random seeds. Exact on trees, and in practice tight on social networks.
uint32_t EstimateDiameter(const SignedGraph& g, uint32_t samples, Rng* rng);

/// Average pairwise distance estimated from `source_samples` BFS runs.
/// Unreachable pairs are skipped.
double EstimateAverageDistance(const SignedGraph& g, uint32_t source_samples,
                               Rng* rng);

}  // namespace tfsn
