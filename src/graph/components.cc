#include "src/graph/components.h"

#include <algorithm>

#include "src/graph/graph_builder.h"
#include "src/util/logging.h"

namespace tfsn {

uint32_t ComponentInfo::LargestComponent() const {
  TFSN_CHECK(!size.empty());
  return static_cast<uint32_t>(
      std::max_element(size.begin(), size.end()) - size.begin());
}

ComponentInfo ConnectedComponents(const SignedGraph& g) {
  ComponentInfo info;
  const uint32_t n = g.num_nodes();
  info.label.assign(n, static_cast<uint32_t>(-1));
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (info.label[start] != static_cast<uint32_t>(-1)) continue;
    uint32_t comp = info.num_components();
    info.size.push_back(0);
    stack.push_back(start);
    info.label[start] = comp;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      ++info.size[comp];
      for (const Neighbor& nb : g.Neighbors(u)) {
        if (info.label[nb.to] == static_cast<uint32_t>(-1)) {
          info.label[nb.to] = comp;
          stack.push_back(nb.to);
        }
      }
    }
  }
  return info;
}

bool IsConnected(const SignedGraph& g) {
  if (g.num_nodes() == 0) return true;
  return ConnectedComponents(g).num_components() == 1;
}

SubgraphMapping InducedSubgraph(const SignedGraph& g,
                                const std::vector<bool>& keep) {
  TFSN_CHECK_EQ(keep.size(), g.num_nodes());
  SubgraphMapping out;
  out.old_to_new.assign(g.num_nodes(), kInvalidNode);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (keep[u]) {
      out.old_to_new[u] = static_cast<NodeId>(out.new_to_old.size());
      out.new_to_old.push_back(u);
    }
  }
  SignedGraphBuilder builder(static_cast<uint32_t>(out.new_to_old.size()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!keep[u]) continue;
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (u < nb.to && keep[nb.to]) {
        builder.AddEdge(out.old_to_new[u], out.old_to_new[nb.to], nb.sign)
            .CheckOK();
      }
    }
  }
  out.graph = std::move(builder.Build()).ValueOrDie();
  return out;
}

SubgraphMapping LargestComponentSubgraph(const SignedGraph& g) {
  ComponentInfo info = ConnectedComponents(g);
  uint32_t largest = info.LargestComponent();
  std::vector<bool> keep(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    keep[u] = info.label[u] == largest;
  }
  return InducedSubgraph(g, keep);
}

}  // namespace tfsn
