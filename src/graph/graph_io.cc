#include "src/graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "src/graph/graph_builder.h"

namespace tfsn {

namespace {

Result<SignedGraph> ParseStream(std::istream& in, uint64_t* skipped) {
  SignedGraphBuilder builder(0);
  std::unordered_map<uint64_t, NodeId> dense;
  auto densify = [&](uint64_t raw) {
    auto [it, inserted] = dense.try_emplace(
        raw, static_cast<NodeId>(dense.size()));
    (void)inserted;
    return it->second;
  };
  uint64_t skip_count = 0;
  std::unordered_map<uint64_t, Sign> edge_sign;  // key = (min<<32)|max
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int64_t u_raw, v_raw, s_raw;
    if (!(ls >> u_raw >> v_raw >> s_raw)) {
      return Status::IOError("malformed edge list at line " +
                             std::to_string(line_no) + ": '" + line + "'");
    }
    if (u_raw < 0 || v_raw < 0 || (s_raw != 1 && s_raw != -1)) {
      return Status::IOError("invalid edge values at line " +
                             std::to_string(line_no));
    }
    if (u_raw == v_raw) {
      ++skip_count;
      continue;
    }
    NodeId u = densify(static_cast<uint64_t>(u_raw));
    NodeId v = densify(static_cast<uint64_t>(v_raw));
    Sign sign = s_raw == 1 ? Sign::kPositive : Sign::kNegative;
    uint64_t key = u < v ? (static_cast<uint64_t>(u) << 32) | v
                         : (static_cast<uint64_t>(v) << 32) | u;
    auto [it, inserted] = edge_sign.try_emplace(key, sign);
    if (!inserted) {
      if (it->second != sign) ++skip_count;  // conflicting duplicate
      continue;
    }
    TFSN_RETURN_NOT_OK(builder.AddEdge(u, v, sign));
  }
  if (skipped != nullptr) *skipped = skip_count;
  return builder.Build();
}

}  // namespace

Result<SignedGraph> LoadEdgeList(const std::string& path, uint64_t* skipped) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ParseStream(in, skipped);
}

Result<SignedGraph> ParseEdgeList(const std::string& text, uint64_t* skipped) {
  std::istringstream in(text);
  return ParseStream(in, skipped);
}

std::string ToEdgeListString(const SignedGraph& g) {
  std::string out =
      "# tfsn signed edge list: <u> <v> <sign>\n# nodes: " +
      std::to_string(g.num_nodes()) + " edges: " + std::to_string(g.num_edges()) +
      "\n";
  for (const SignedEdge& e : g.Edges()) {
    out += std::to_string(e.u) + " " + std::to_string(e.v) + " " +
           (e.sign == Sign::kPositive ? "1" : "-1") + "\n";
  }
  return out;
}

Status WriteEdgeList(const SignedGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  out << ToEdgeListString(g);
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace tfsn
