// SignedGraph: immutable undirected signed graph in a compact
// struct-of-arrays CSR layout.
//
// This is the substrate of the whole library (paper Section 2): nodes are
// individuals, edges carry a +1 (friend) or -1 (foe) label. Adjacency is
// stored as two parallel structures per directed edge slot — a 4-byte
// neighbour id and one sign bit in a packed bitset (bit set = negative) —
// so a directed edge costs 4 bytes + 1 bit instead of the 12 bytes of the
// former padded {id, sign} array-of-structs plus its redundant target
// mirror. The compact layout roughly triples the adjacency that fits in
// cache, which is what both the scalar and the bit-parallel multi-source
// traversals (src/compat/ms_signed_bfs.h) are bound by. Adjacency lists
// are sorted by target id so edge-sign lookup is a binary search.
//
// Neighbors(u) returns a lightweight proxy range whose iterators
// materialize Neighbor values on the fly, so traversal code keeps the
// familiar `for (const Neighbor& nb : g.Neighbors(u))` shape; kernels that
// want the raw arrays use offsets()/adjacency_targets()/EdgeNegative().

#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace tfsn {

/// Node identifier; nodes are dense ids in [0, num_nodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Edge label. Values are chosen so that the sign of a path is the plain
/// integer product of its edge signs (paper Section 3).
enum class Sign : int8_t {
  kNegative = -1,
  kPositive = +1,
};

/// Multiplies two signs (path-sign composition).
inline Sign operator*(Sign a, Sign b) {
  return static_cast<Sign>(static_cast<int8_t>(a) * static_cast<int8_t>(b));
}

/// Flips a sign.
inline Sign Negate(Sign s) {
  return s == Sign::kPositive ? Sign::kNegative : Sign::kPositive;
}

/// One endpoint of an adjacency entry: the neighbour and the edge sign.
/// Materialized on the fly by NeighborRange; not the storage format.
struct Neighbor {
  NodeId to;
  Sign sign;

  bool operator==(const Neighbor&) const = default;
};

/// An undirected signed edge with u < v canonical orientation.
struct SignedEdge {
  NodeId u;
  NodeId v;
  Sign sign;

  bool operator==(const SignedEdge&) const = default;
};

/// Proxy view over one node's adjacency in the SoA CSR: targets come from
/// the packed id array, signs from the packed bitset. Iterators yield
/// Neighbor values (not references); the range is valid as long as the
/// graph it came from.
class NeighborRange {
 public:
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Neighbor;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = Neighbor;

    iterator() = default;

    Neighbor operator*() const { return Make(index_); }
    Neighbor operator[](difference_type k) const {
      return Make(index_ + static_cast<uint64_t>(k));
    }

    iterator& operator++() { ++index_; return *this; }
    iterator operator++(int) { iterator t = *this; ++index_; return t; }
    iterator& operator--() { --index_; return *this; }
    iterator operator--(int) { iterator t = *this; --index_; return t; }
    iterator& operator+=(difference_type k) {
      index_ += static_cast<uint64_t>(k);
      return *this;
    }
    iterator& operator-=(difference_type k) {
      index_ -= static_cast<uint64_t>(k);
      return *this;
    }
    friend iterator operator+(iterator it, difference_type k) { return it += k; }
    friend iterator operator+(difference_type k, iterator it) { return it += k; }
    friend iterator operator-(iterator it, difference_type k) { return it -= k; }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.index_) -
             static_cast<difference_type>(b.index_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.index_ == b.index_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.index_ <=> b.index_;
    }

   private:
    friend class NeighborRange;
    iterator(const uint32_t* targets, const uint64_t* neg_words,
             uint64_t index)
        : targets_(targets), neg_words_(neg_words), index_(index) {}

    Neighbor Make(uint64_t e) const {
      const bool neg = (neg_words_[e >> 6] >> (e & 63)) & 1;
      return {targets_[e], neg ? Sign::kNegative : Sign::kPositive};
    }

    const uint32_t* targets_ = nullptr;
    const uint64_t* neg_words_ = nullptr;
    uint64_t index_ = 0;  // absolute directed-edge index
  };

  using value_type = Neighbor;
  using const_iterator = iterator;

  NeighborRange(const uint32_t* targets, const uint64_t* neg_words,
                uint64_t begin, uint64_t end)
      : targets_(targets), neg_words_(neg_words), begin_(begin), end_(end) {}

  iterator begin() const { return {targets_, neg_words_, begin_}; }
  iterator end() const { return {targets_, neg_words_, end_}; }
  size_t size() const { return static_cast<size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  Neighbor operator[](size_t i) const { return begin()[static_cast<std::ptrdiff_t>(i)]; }
  Neighbor front() const { return (*this)[0]; }
  Neighbor back() const { return (*this)[size() - 1]; }

 private:
  const uint32_t* targets_;
  const uint64_t* neg_words_;
  uint64_t begin_;
  uint64_t end_;
};

/// Immutable undirected signed graph.
///
/// Construct via SignedGraphBuilder (graph_builder.h) or the generators in
/// src/gen. Self-loops and parallel edges are rejected at build time.
class SignedGraph {
 public:
  SignedGraph() = default;

  /// Number of nodes n.
  uint32_t num_nodes() const { return static_cast<uint32_t>(offsets_.size()) - 1; }

  /// Number of undirected edges m.
  uint64_t num_edges() const { return adj_targets_.size() / 2; }

  /// Number of undirected negative edges.
  uint64_t num_negative_edges() const { return num_negative_; }

  /// Number of undirected positive edges.
  uint64_t num_positive_edges() const { return num_edges() - num_negative_; }

  /// Fraction of edges that are negative; 0 for the empty graph.
  double negative_fraction() const {
    return num_edges() == 0
               ? 0.0
               : static_cast<double>(num_negative_) / static_cast<double>(num_edges());
  }

  /// Degree of node u.
  uint32_t Degree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Adjacency list of u, sorted by neighbour id (proxy view; see
  /// NeighborRange).
  NeighborRange Neighbors(NodeId u) const {
    return {adj_targets_.data(), adj_neg_words_.data(), offsets_[u],
            offsets_[u + 1]};
  }

  // Raw SoA accessors for traversal kernels (src/graph/bfs.cc,
  // src/compat/ms_signed_bfs.cc): adjacency_targets()[e] is the head of
  // directed edge slot e, EdgeNegative(e) its sign bit, and slots
  // [offsets()[u], offsets()[u+1]) belong to node u.
  std::span<const uint64_t> offsets() const { return offsets_; }
  std::span<const uint32_t> adjacency_targets() const { return adj_targets_; }
  std::span<const uint64_t> adjacency_sign_words() const {
    return adj_neg_words_;
  }
  bool EdgeNegative(uint64_t e) const {
    return (adj_neg_words_[e >> 6] >> (e & 63)) & 1;
  }

  /// Heap bytes of the adjacency arrays (targets + packed signs, excluding
  /// the per-node offsets): ~4.125 bytes per directed edge.
  size_t AdjacencyBytes() const {
    return adj_targets_.size() * sizeof(uint32_t) +
           adj_neg_words_.size() * sizeof(uint64_t);
  }

  /// Sign of edge (u,v), or nullopt if the edge does not exist.
  /// O(log deg(u)).
  std::optional<Sign> EdgeSign(NodeId u, NodeId v) const;

  /// True if (u,v) is an edge of either sign.
  bool HasEdge(NodeId u, NodeId v) const { return EdgeSign(u, v).has_value(); }

  /// All undirected edges in canonical (u < v) order.
  std::vector<SignedEdge> Edges() const;

  /// Sign of the path v0 - v1 - ... - vk (product of edge signs), or an
  /// error if any consecutive pair is not an edge.
  Result<Sign> PathSign(std::span<const NodeId> path) const;

  /// Human-readable one-line summary (n, m, %negative).
  std::string ToString() const;

 private:
  friend class SignedGraphBuilder;

  // SoA CSR: adj_targets_[offsets_[u] .. offsets_[u+1]) are u's neighbour
  // ids, sorted; adj_neg_words_ packs one sign bit per directed edge slot
  // (set = negative).
  std::vector<uint64_t> offsets_{0};
  std::vector<uint32_t> adj_targets_;
  std::vector<uint64_t> adj_neg_words_;
  uint64_t num_negative_ = 0;
};

}  // namespace tfsn
