// SignedGraph: immutable undirected signed graph in CSR layout.
//
// This is the substrate of the whole library (paper Section 2): nodes are
// individuals, edges carry a +1 (friend) or -1 (foe) label. The graph is
// stored as a compressed sparse row structure with per-neighbour signs;
// adjacency lists are sorted by target id so edge-sign lookup is a binary
// search.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/status.h"

namespace tfsn {

/// Node identifier; nodes are dense ids in [0, num_nodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Edge label. Values are chosen so that the sign of a path is the plain
/// integer product of its edge signs (paper Section 3).
enum class Sign : int8_t {
  kNegative = -1,
  kPositive = +1,
};

/// Multiplies two signs (path-sign composition).
inline Sign operator*(Sign a, Sign b) {
  return static_cast<Sign>(static_cast<int8_t>(a) * static_cast<int8_t>(b));
}

/// Flips a sign.
inline Sign Negate(Sign s) {
  return s == Sign::kPositive ? Sign::kNegative : Sign::kPositive;
}

/// One endpoint of an adjacency entry: the neighbour and the edge sign.
struct Neighbor {
  NodeId to;
  Sign sign;

  bool operator==(const Neighbor&) const = default;
};

/// An undirected signed edge with u < v canonical orientation.
struct SignedEdge {
  NodeId u;
  NodeId v;
  Sign sign;

  bool operator==(const SignedEdge&) const = default;
};

/// Immutable undirected signed graph.
///
/// Construct via SignedGraphBuilder (graph_builder.h) or the generators in
/// src/gen. Self-loops and parallel edges are rejected at build time.
class SignedGraph {
 public:
  SignedGraph() = default;

  /// Number of nodes n.
  uint32_t num_nodes() const { return static_cast<uint32_t>(offsets_.size()) - 1; }

  /// Number of undirected edges m.
  uint64_t num_edges() const { return targets_.size() / 2; }

  /// Number of undirected negative edges.
  uint64_t num_negative_edges() const { return num_negative_; }

  /// Number of undirected positive edges.
  uint64_t num_positive_edges() const { return num_edges() - num_negative_; }

  /// Fraction of edges that are negative; 0 for the empty graph.
  double negative_fraction() const {
    return num_edges() == 0
               ? 0.0
               : static_cast<double>(num_negative_) / static_cast<double>(num_edges());
  }

  /// Degree of node u.
  uint32_t Degree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Adjacency list of u, sorted by neighbour id.
  std::span<const Neighbor> Neighbors(NodeId u) const {
    return {adj_.data() + offsets_[u], adj_.data() + offsets_[u + 1]};
  }

  /// Sign of edge (u,v), or nullopt if the edge does not exist.
  /// O(log deg(u)).
  std::optional<Sign> EdgeSign(NodeId u, NodeId v) const;

  /// True if (u,v) is an edge of either sign.
  bool HasEdge(NodeId u, NodeId v) const { return EdgeSign(u, v).has_value(); }

  /// All undirected edges in canonical (u < v) order.
  std::vector<SignedEdge> Edges() const;

  /// Sign of the path v0 - v1 - ... - vk (product of edge signs), or an
  /// error if any consecutive pair is not an edge.
  Result<Sign> PathSign(std::span<const NodeId> path) const;

  /// Human-readable one-line summary (n, m, %negative).
  std::string ToString() const;

 private:
  friend class SignedGraphBuilder;

  // CSR: adj_[offsets_[u] .. offsets_[u+1]) are u's neighbours, sorted by id.
  std::vector<uint64_t> offsets_{0};
  std::vector<Neighbor> adj_;
  std::vector<NodeId> targets_;  // parallel to adj_ (kept for cheap edge scans)
  uint64_t num_negative_ = 0;
};

}  // namespace tfsn
