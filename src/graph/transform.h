// Graph transformations used by the unsigned-baseline comparison (Table 3):
// the paper derives two unsigned networks from a signed one by (1) ignoring
// edge signs and (2) deleting the negative edges.

#pragma once

#include "src/graph/components.h"
#include "src/graph/signed_graph.h"

namespace tfsn {

/// Copy of `g` with every edge relabelled positive ("ignore the sign").
SignedGraph IgnoreSigns(const SignedGraph& g);

/// Copy of `g` with negative edges removed (node set unchanged; the result
/// may be disconnected).
SignedGraph DeleteNegativeEdges(const SignedGraph& g);

/// Copy of `g` with every edge sign flipped (useful for tests and for
/// stress-testing balance machinery).
SignedGraph FlipSigns(const SignedGraph& g);

}  // namespace tfsn
