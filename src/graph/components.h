// Connected components and subgraph extraction.

#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/signed_graph.h"

namespace tfsn {

/// Result of a connected-components labelling.
struct ComponentInfo {
  /// Component label per node, labels are dense in [0, num_components).
  std::vector<uint32_t> label;
  /// Node count per component.
  std::vector<uint32_t> size;

  uint32_t num_components() const { return static_cast<uint32_t>(size.size()); }
  /// Index of the largest component.
  uint32_t LargestComponent() const;
};

/// Labels connected components (edge signs ignored). O(n + m).
ComponentInfo ConnectedComponents(const SignedGraph& g);

/// True if the graph is connected (or empty).
bool IsConnected(const SignedGraph& g);

/// Mapping produced when extracting an induced subgraph.
struct SubgraphMapping {
  SignedGraph graph;
  /// old node id -> new node id (kInvalidNode if dropped).
  std::vector<NodeId> old_to_new;
  /// new node id -> old node id.
  std::vector<NodeId> new_to_old;
};

/// Induced subgraph on `keep` (a node mask of size n).
SubgraphMapping InducedSubgraph(const SignedGraph& g,
                                const std::vector<bool>& keep);

/// Induced subgraph on the largest connected component.
SubgraphMapping LargestComponentSubgraph(const SignedGraph& g);

}  // namespace tfsn
