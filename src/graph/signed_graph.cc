#include "src/graph/signed_graph.h"

#include <algorithm>
#include <cstdio>

namespace tfsn {

std::optional<Sign> SignedGraph::EdgeSign(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return std::nullopt;
  const uint32_t* begin = adj_targets_.data() + offsets_[u];
  const uint32_t* end = adj_targets_.data() + offsets_[u + 1];
  const uint32_t* it = std::lower_bound(begin, end, v);
  if (it == end || *it != v) return std::nullopt;
  const uint64_t e = offsets_[u] + static_cast<uint64_t>(it - begin);
  return EdgeNegative(e) ? Sign::kNegative : Sign::kPositive;
}

std::vector<SignedEdge> SignedGraph::Edges() const {
  std::vector<SignedEdge> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const Neighbor& nb : Neighbors(u)) {
      if (u < nb.to) edges.push_back({u, nb.to, nb.sign});
    }
  }
  return edges;
}

Result<Sign> SignedGraph::PathSign(std::span<const NodeId> path) const {
  if (path.size() < 2) {
    return Status::InvalidArgument("path must have at least two nodes");
  }
  Sign sign = Sign::kPositive;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto s = EdgeSign(path[i], path[i + 1]);
    if (!s) {
      return Status::InvalidArgument("path uses a non-existent edge");
    }
    sign = sign * *s;
  }
  return sign;
}

std::string SignedGraph::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "SignedGraph(n=%u, m=%llu, neg=%.1f%%)", num_nodes(),
                static_cast<unsigned long long>(num_edges()),
                negative_fraction() * 100.0);
  return buf;
}

}  // namespace tfsn
