// Mutable builder producing immutable SignedGraph instances.

#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/signed_graph.h"
#include "src/util/result.h"

namespace tfsn {

/// Accumulates edges and produces a validated CSR SignedGraph.
///
/// Usage:
///   SignedGraphBuilder b(5);
///   b.AddEdge(0, 1, Sign::kPositive);
///   ...
///   TFSN_ASSIGN_OR_RETURN(SignedGraph g, b.Build());
class SignedGraphBuilder {
 public:
  /// Creates a builder for a graph with `num_nodes` nodes (ids 0..n-1).
  explicit SignedGraphBuilder(uint32_t num_nodes) : num_nodes_(num_nodes) {}

  /// Grows the node count so `node` is valid.
  void EnsureNode(NodeId node) {
    if (node >= num_nodes_) num_nodes_ = node + 1;
  }

  /// Records an undirected edge. Endpoint order is irrelevant.
  /// Returns InvalidArgument for self-loops or out-of-range endpoints
  /// (when ids were pre-declared via the constructor).
  Status AddEdge(NodeId u, NodeId v, Sign sign);

  /// True if (u,v) was already added (linear scan; intended for tests and
  /// small incremental construction, not bulk loading).
  bool HasEdge(NodeId u, NodeId v) const;

  uint32_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  /// Validates (no duplicate edges; duplicate with *equal* signs is
  /// tolerated and deduplicated, conflicting signs is an error) and builds
  /// the CSR representation.
  Result<SignedGraph> Build() const;

 private:
  uint32_t num_nodes_ = 0;
  std::vector<SignedEdge> edges_;
};

}  // namespace tfsn
