#include "src/graph/bfs.h"

#include <algorithm>

namespace tfsn {

std::vector<uint32_t> BfsDistances(const SignedGraph& g, NodeId source) {
  return BfsDistancesBounded(g, source, kUnreachable);
}

std::vector<uint32_t> BfsDistancesBounded(const SignedGraph& g, NodeId source,
                                          uint32_t max_depth) {
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  dist[source] = 0;
  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next;
  uint32_t depth = 0;
  while (!frontier.empty() && depth < max_depth) {
    next.clear();
    ++depth;
    for (NodeId u : frontier) {
      for (const Neighbor& nb : g.Neighbors(u)) {
        if (dist[nb.to] == kUnreachable) {
          dist[nb.to] = depth;
          next.push_back(nb.to);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

uint32_t BfsDistance(const SignedGraph& g, NodeId source, NodeId target) {
  if (source == target) return 0;
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  dist[source] = 0;
  // Flat FIFO (each node enqueues at most once); see signed_bfs.cc.
  std::vector<NodeId> queue;
  queue.reserve(g.num_nodes());
  queue.push_back(source);
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (dist[nb.to] != kUnreachable) continue;
      dist[nb.to] = dist[u] + 1;
      if (nb.to == target) return dist[nb.to];
      queue.push_back(nb.to);
    }
  }
  return kUnreachable;
}

std::vector<NodeId> BfsShortestPath(const SignedGraph& g, NodeId source,
                                    NodeId target) {
  if (source == target) return {source};
  std::vector<NodeId> parent(g.num_nodes(), kInvalidNode);
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  dist[source] = 0;
  std::vector<NodeId> queue;
  queue.reserve(g.num_nodes());
  queue.push_back(source);
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (const Neighbor& nb : g.Neighbors(u)) {
      if (dist[nb.to] != kUnreachable) continue;
      dist[nb.to] = dist[u] + 1;
      parent[nb.to] = u;
      if (nb.to == target) {
        std::vector<NodeId> path;
        for (NodeId x = target; x != kInvalidNode; x = parent[x]) {
          path.push_back(x);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(nb.to);
    }
  }
  return {};
}

uint32_t Eccentricity(const SignedGraph& g, NodeId source) {
  std::vector<uint32_t> dist = BfsDistances(g, source);
  uint32_t ecc = 0;
  for (uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

}  // namespace tfsn
