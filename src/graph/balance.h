// Structural-balance machinery (paper Section 3, Claim 1, Definition 3.4).
//
// A signed graph is structurally balanced iff it contains no cycle with an
// odd number of negative edges, or equivalently iff its nodes can be split
// into two factions with all positive edges inside a faction and all
// negative edges across (Cartwright–Harary). We check this with a signed
// two-colouring BFS.
//
// A *path* P is structurally balanced when the subgraph induced by its
// nodes, G[P] — the path edges plus every chord edge between path nodes —
// is balanced. A path fixes a side (faction relative to its start) for each
// of its nodes: side flips across negative edges. G[P] is then balanced iff
// every chord edge's sign matches the product of its endpoints' sides.
// This equivalence is what makes the incremental O(deg) check used by the
// SBP algorithms correct.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/graph/signed_graph.h"

namespace tfsn {

/// Faction side relative to a reference node: +1 same faction, -1 opposite.
using Side = int8_t;

/// Result of a whole-graph balance check.
struct BalanceCheck {
  bool balanced = false;
  /// Faction side per node (+1 / -1) when balanced; empty otherwise.
  /// Sides are relative per connected component (component roots get +1).
  std::vector<Side> side;
};

/// Checks whole-graph structural balance via signed 2-colouring. O(n + m).
BalanceCheck CheckBalance(const SignedGraph& g);

/// Sides induced by walking `path` from its first node: side[0] = +1 and
/// the side flips across each negative edge. Requires consecutive pairs to
/// be edges; dies otherwise (programmer error).
std::vector<Side> PathSides(const SignedGraph& g, std::span<const NodeId> path);

/// True if `path` (a simple path; caller guarantees node distinctness) is
/// structurally balanced: every edge of G between two path nodes must have
/// sign equal to the product of the nodes' path sides. O(sum of degrees).
bool IsPathBalanced(const SignedGraph& g, std::span<const NodeId> path);

/// Triangle census of the graph.
struct TriangleCensus {
  uint64_t ppp = 0;  ///< all-positive (balanced)
  uint64_t pnn = 0;  ///< one positive, two negative (balanced)
  uint64_t ppn = 0;  ///< two positive, one negative (unbalanced)
  uint64_t nnn = 0;  ///< all-negative (unbalanced)

  uint64_t balanced() const { return ppp + pnn; }
  uint64_t unbalanced() const { return ppn + nnn; }
  uint64_t total() const { return balanced() + unbalanced(); }
  /// Fraction of triangles that are balanced; 1.0 when there are none.
  double balance_ratio() const {
    return total() == 0 ? 1.0
                        : static_cast<double>(balanced()) /
                              static_cast<double>(total());
  }
};

/// Counts triangles by sign pattern. O(sum over edges of min-degree).
TriangleCensus CountTriangles(const SignedGraph& g);

/// Number of edges violating the faction assignment `side` (positive edges
/// across factions + negative edges within). This is the frustration of the
/// partition; 0 iff `side` witnesses balance.
uint64_t Frustration(const SignedGraph& g, std::span<const Side> side);

}  // namespace tfsn
