// Dataset registry: synthetic stand-ins for the paper's three real
// datasets, matched on the Table 1 statistics.
//
//              Slashdot   Epinions   Wikipedia
//   #users        214       28,854      7,066
//   #edges        304      208,778    100,790
//   %negative    29.2%       16.7%      21.5%
//   #skills      1,024         523        500
//
// We cannot redistribute the SNAP/RED originals, so each recipe draws a
// connected random signed graph with the same node count, edge count and
// negative fraction (preferential attachment for the two large, heavy-
// tailed networks; uniform G(n,m) for the small sparse Slashdot), and
// assigns Zipf-distributed skills — the paper's own synthetic-skill recipe
// for Wikipedia, extended to all three. Real edge lists can be substituted
// via LoadDatasetFromEdgeList.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/signed_graph.h"
#include "src/skills/skills.h"
#include "src/util/result.h"

namespace tfsn {

/// A named evaluation dataset: signed graph + skill assignment.
struct Dataset {
  std::string name;
  SignedGraph graph;
  SkillAssignment skills;
};

/// Scaling and seeding options shared by the recipes.
struct DatasetOptions {
  /// Multiplies node and edge counts (0 < scale <= 1 for faster runs).
  double scale = 1.0;
  /// Seed for graph wiring, sign placement and skill assignment.
  uint64_t seed = 2020;
  /// Mean skills per user for the Zipf assignment.
  double mean_skills_per_user = 3.0;
};

/// Slashdot-like: 214 users, 304 edges, 29.2 % negative, 1 024 skills.
Dataset MakeSlashdot(const DatasetOptions& options = {});

/// Epinions-like: 28 854 users, 208 778 edges, 16.7 % negative, 523 skills.
Dataset MakeEpinions(const DatasetOptions& options = {});

/// Wikipedia-like: 7 066 users, 100 790 edges, 21.5 % negative, 500 skills.
Dataset MakeWikipedia(const DatasetOptions& options = {});

/// Lookup by case-insensitive name ("slashdot", "epinions", "wikipedia").
Result<Dataset> MakeDatasetByName(const std::string& name,
                                  const DatasetOptions& options = {});

/// Names accepted by MakeDatasetByName.
std::vector<std::string> DatasetNames();

/// Builds a Dataset from a real signed edge list on disk plus Zipf skills
/// (for users beyond the paper's skill data). The graph is restricted to
/// its largest connected component, as the paper assumes connectivity.
Result<Dataset> LoadDatasetFromEdgeList(const std::string& path,
                                        uint32_t num_skills,
                                        const DatasetOptions& options = {});

}  // namespace tfsn
