#include "src/data/datasets.h"

#include <algorithm>
#include <cctype>

#include "src/gen/generators.h"
#include "src/graph/components.h"
#include "src/graph/graph_io.h"
#include "src/skills/skill_generator.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace tfsn {

namespace {

struct Recipe {
  uint32_t users;
  uint64_t edges;
  double negative_fraction;
  uint32_t num_skills;
  bool heavy_tailed;  // preferential attachment vs uniform G(n,m)
};

Dataset MakeFromRecipe(const std::string& name, const Recipe& recipe,
                       const DatasetOptions& options) {
  TFSN_CHECK_GT(options.scale, 0.0);
  TFSN_CHECK_LE(options.scale, 1.0);
  uint32_t n = std::max<uint32_t>(
      4, static_cast<uint32_t>(recipe.users * options.scale));
  uint64_t m = std::max<uint64_t>(
      n, static_cast<uint64_t>(recipe.edges * options.scale));
  m = std::min(m, static_cast<uint64_t>(n) * (n - 1) / 2);

  Rng rng(options.seed ^ (static_cast<uint64_t>(n) << 20) ^ m);
  Dataset ds;
  ds.name = name;
  ds.graph = recipe.heavy_tailed
                 ? RandomPreferentialAttachment(n, m, recipe.negative_fraction,
                                                &rng)
                 : RandomConnectedGnm(n, m, recipe.negative_fraction, &rng);
  ZipfSkillParams skill_params;
  skill_params.num_skills = recipe.num_skills;
  skill_params.mean_skills_per_user = options.mean_skills_per_user;
  ds.skills = ZipfSkills(n, skill_params, &rng);
  return ds;
}

}  // namespace

Dataset MakeSlashdot(const DatasetOptions& options) {
  return MakeFromRecipe(
      "Slashdot",
      {.users = 214, .edges = 304, .negative_fraction = 0.292,
       .num_skills = 1024, .heavy_tailed = false},
      options);
}

Dataset MakeEpinions(const DatasetOptions& options) {
  return MakeFromRecipe(
      "Epinions",
      {.users = 28854, .edges = 208778, .negative_fraction = 0.167,
       .num_skills = 523, .heavy_tailed = true},
      options);
}

Dataset MakeWikipedia(const DatasetOptions& options) {
  return MakeFromRecipe(
      "Wikipedia",
      {.users = 7066, .edges = 100790, .negative_fraction = 0.215,
       .num_skills = 500, .heavy_tailed = true},
      options);
}

Result<Dataset> MakeDatasetByName(const std::string& name,
                                  const DatasetOptions& options) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "slashdot") return MakeSlashdot(options);
  if (lower == "epinions") return MakeEpinions(options);
  if (lower == "wikipedia") return MakeWikipedia(options);
  return Status::NotFound("unknown dataset '" + name +
                          "'; expected slashdot|epinions|wikipedia");
}

std::vector<std::string> DatasetNames() {
  return {"slashdot", "epinions", "wikipedia"};
}

Result<Dataset> LoadDatasetFromEdgeList(const std::string& path,
                                        uint32_t num_skills,
                                        const DatasetOptions& options) {
  TFSN_ASSIGN_OR_RETURN(SignedGraph raw, LoadEdgeList(path));
  SubgraphMapping lcc = LargestComponentSubgraph(raw);
  Dataset ds;
  ds.name = path;
  ds.graph = std::move(lcc.graph);
  Rng rng(options.seed);
  ZipfSkillParams skill_params;
  skill_params.num_skills = num_skills;
  skill_params.mean_skills_per_user = options.mean_skills_per_user;
  ds.skills = ZipfSkills(ds.graph.num_nodes(), skill_params, &rng);
  return ds;
}

}  // namespace tfsn
