#include "src/exp/experiments.h"

#include <algorithm>

#include "src/compat/skill_index.h"
#include "src/compat/stats.h"
#include "src/graph/bfs.h"
#include "src/graph/diameter.h"
#include "src/graph/transform.h"
#include "src/skills/skill_generator.h"
#include "src/team/cost.h"
#include "src/team/unsigned_tf.h"
#include "src/util/parallel.h"
#include "src/util/timer.h"

namespace tfsn {

namespace {

// Exact diameter via all-sources BFS, eccentricities split across workers
// (the per-source sweeps are independent, like the oracle row kernels).
uint32_t ParallelExactDiameter(const SignedGraph& g, uint32_t threads) {
  const uint32_t n = g.num_nodes();
  if (n < 2) return 0;
  std::vector<uint32_t> partial(threads, 0);
  ParallelFor(n, threads, [&](uint32_t worker, uint64_t begin, uint64_t end) {
    uint32_t worst = 0;
    for (uint64_t u = begin; u < end; ++u) {
      worst = std::max(worst, Eccentricity(g, static_cast<NodeId>(u)));
    }
    partial[worker] = worst;
  });
  uint32_t diameter = 0;
  for (uint32_t w : partial) diameter = std::max(diameter, w);
  return diameter;
}

}  // namespace

Table1Row ComputeTable1Row(const Dataset& ds, uint32_t exact_diameter_limit,
                           uint64_t seed, uint32_t threads) {
  Table1Row row;
  row.dataset = ds.name;
  row.users = ds.graph.num_nodes();
  row.edges = ds.graph.num_edges();
  row.neg_edges = ds.graph.num_negative_edges();
  row.neg_fraction = ds.graph.negative_fraction();
  row.skills = ds.skills.num_skills();
  Rng rng(seed);
  threads = ResolveThreads(threads);
  if (ds.graph.num_nodes() <= exact_diameter_limit) {
    row.diameter = threads > 1 ? ParallelExactDiameter(ds.graph, threads)
                               : ExactDiameter(ds.graph);
    row.diameter_exact = true;
  } else {
    row.diameter = EstimateDiameter(ds.graph, /*samples=*/8, &rng);
    row.diameter_exact = false;
  }
  return row;
}

std::vector<Table2Cell> RunTable2(const Dataset& ds,
                                  const Table2Options& options) {
  const bool small = ds.graph.num_nodes() <= options.small_graph_limit;
  const bool include_sbp = options.include_sbp.value_or(small);
  const uint32_t sources = small ? 0 : options.sample_sources;

  std::vector<CompatKind> kinds = {CompatKind::kSPA, CompatKind::kSPM,
                                   CompatKind::kSPO, CompatKind::kSBPH};
  if (include_sbp) kinds.push_back(CompatKind::kSBP);
  kinds.push_back(CompatKind::kNNE);

  // One row cache shared by every relation (keys embed the relation, so
  // kinds never collide): rows computed for the pair statistics — by
  // parallel workers when options.threads != 1 — are reused by the
  // skill-index build instead of being recomputed.
  RowCacheOptions cache_options;
  cache_options.max_bytes = options.cache_bytes;
  auto cache = std::make_shared<RowCache>(cache_options);

  std::vector<Table2Cell> cells;
  for (CompatKind kind : kinds) {
    Timer timer;
    Table2Cell cell;
    cell.kind = kind;
    uint32_t kind_sources =
        kind == CompatKind::kSBP && !small ? options.sbp_sample_sources
                                           : sources;
    auto oracle = MakeOracle(ds.graph, kind, options.oracle, cache);
    Rng rng(options.seed);
    CompatPairStats stats =
        options.threads == 1
            ? ComputeCompatPairStats(oracle.get(), kind_sources, &rng)
            : ComputeCompatPairStatsParallel(ds.graph, kind, options.oracle,
                                             kind_sources, options.seed,
                                             options.threads, cache);
    Rng index_rng(options.seed + 1);
    SkillCompatibilityIndex index(oracle.get(), ds.skills, kind_sources,
                                  &index_rng, options.threads);
    cell.comp_users_pct = stats.compatible_fraction * 100.0;
    cell.comp_skills_pct = index.CompatibleSkillPairFraction() * 100.0;
    cell.avg_distance = stats.avg_distance;
    cell.sources_used = stats.sources_used;
    cell.rows_saturated = stats.rows_saturated;
    cell.seconds = timer.Seconds();
    cells.push_back(cell);
  }
  return cells;
}

namespace {

struct RunningStats {
  uint32_t solved = 0;
  uint32_t total = 0;
  double diameter_sum = 0.0;

  void Record(const TeamResult& result) {
    ++total;
    if (result.found && result.cost != kUnreachable) {
      ++solved;
      diameter_sum += result.cost;
    } else if (result.found) {
      ++solved;  // feasible but some pair has no finite relation distance
    }
  }
  double solved_pct() const {
    return total == 0 ? 0.0 : 100.0 * solved / total;
  }
  double avg_diameter() const {
    return solved == 0 ? 0.0 : diameter_sum / solved;
  }
};

GreedyParams MakeParams(SkillPolicy sp, UserPolicy up,
                        const TeamExperimentOptions& options,
                        uint32_t prefetch_threads) {
  GreedyParams params;
  params.skill_policy = sp;
  params.user_policy = up;
  params.max_seeds = options.max_seeds;
  params.prefetch_threads = prefetch_threads;
  params.seed_threads = options.seed_threads;
  params.eval_path = options.eval_path;
  return params;
}

std::shared_ptr<RowCache> MakeExperimentCache(size_t cache_bytes) {
  RowCacheOptions options;
  options.max_bytes = cache_bytes;
  return std::make_shared<RowCache>(options);
}

}  // namespace

std::vector<Fig2abRow> RunFig2ab(const Dataset& ds,
                                 const TeamExperimentOptions& options) {
  // Shared task list across relations and algorithms, as in the paper.
  Rng task_rng(options.seed);
  std::vector<Task> tasks =
      RandomTasks(ds.skills, options.task_size, options.num_tasks, &task_rng);

  const std::vector<std::pair<std::string, UserPolicy>> algorithms = {
      {"LCMD", UserPolicy::kMinDistance},
      {"LCMC", UserPolicy::kMostCompatible},
      {"RANDOM", UserPolicy::kRandom},
  };

  // One shared row cache across relations, the index builds, the MAX
  // bound, and every former: the rows the index build computes are the
  // same rows the formers stream, so each row is computed once per kind.
  auto cache = MakeExperimentCache(options.cache_bytes);
  const uint32_t prefetch =
      options.threads == 1 ? 0 : ResolveThreads(options.threads);

  std::vector<Fig2abRow> rows;
  for (CompatKind kind : options.kinds) {
    Fig2abRow row;
    row.kind = kind;
    auto oracle = MakeOracle(ds.graph, kind, options.oracle, cache);
    Rng index_rng(options.seed + 11);
    SkillCompatibilityIndex index(oracle.get(), ds.skills,
                                  options.index_sample_sources, &index_rng,
                                  options.threads);
    // MAX bound: tasks whose skill pairs are all compatible, checked
    // exactly over holder pairs (the sampled index would undercount).
    // Evaluated through the task-local dense view when the formers use
    // it, so the view's batch-prewarmed rows are shared; the oracle
    // overload gives the bit-identical verdict otherwise.
    uint32_t max_ok = 0;
    for (const Task& task : tasks) {
      std::unique_ptr<TaskCompatView> view;
      if (options.eval_path != GreedyEvalPath::kOracle) {
        view = TaskCompatView::Build(oracle.get(), ds.skills, task,
                                     options.threads);
      }
      max_ok += view != nullptr
                    ? TaskSkillsCompatibleExact(*view)
                    : TaskSkillsCompatibleExact(oracle.get(), ds.skills, task);
    }
    row.max_bound_pct = 100.0 * max_ok / tasks.size();

    for (const auto& [name, user_policy] : algorithms) {
      GreedyTeamFormer former(
          oracle.get(), ds.skills, &index,
          MakeParams(SkillPolicy::kLeastCompatible, user_policy, options,
                     prefetch));
      RunningStats stats;
      Rng run_rng(options.seed + 101);
      for (const Task& task : tasks) {
        stats.Record(former.Form(task, &run_rng));
      }
      row.outcomes.push_back(
          {name, stats.solved_pct(), stats.avg_diameter()});
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Fig2cdPoint> RunFig2cd(const Dataset& ds,
                                   const std::vector<uint32_t>& task_sizes,
                                   const TeamExperimentOptions& options) {
  auto cache = MakeExperimentCache(options.cache_bytes);
  const uint32_t prefetch =
      options.threads == 1 ? 0 : ResolveThreads(options.threads);
  std::vector<Fig2cdPoint> points;
  for (CompatKind kind : options.kinds) {
    auto oracle = MakeOracle(ds.graph, kind, options.oracle, cache);
    Rng index_rng(options.seed + 11);
    SkillCompatibilityIndex index(oracle.get(), ds.skills,
                                  options.index_sample_sources, &index_rng,
                                  options.threads);
    GreedyTeamFormer former(
        oracle.get(), ds.skills, &index,
        MakeParams(SkillPolicy::kLeastCompatible, UserPolicy::kMinDistance,
                   options, prefetch));
    for (uint32_t k : task_sizes) {
      Rng task_rng(options.seed + k);  // same tasks for every relation
      std::vector<Task> tasks =
          RandomTasks(ds.skills, k, options.num_tasks, &task_rng);
      RunningStats stats;
      Rng run_rng(options.seed + 101);
      for (const Task& task : tasks) {
        stats.Record(former.Form(task, &run_rng));
      }
      points.push_back({kind, k, stats.solved_pct(), stats.avg_diameter()});
    }
  }
  return points;
}

std::vector<Table3Row> RunTable3(const Dataset& ds,
                                 const Table3Options& options) {
  Rng task_rng(options.seed);
  std::vector<Task> tasks =
      RandomTasks(ds.skills, options.task_size, options.num_tasks, &task_rng);

  const std::vector<std::pair<std::string, SignedGraph>> networks = [&] {
    std::vector<std::pair<std::string, SignedGraph>> nets;
    nets.emplace_back("Ignore sign", IgnoreSigns(ds.graph));
    nets.emplace_back("Delete negative", DeleteNegativeEdges(ds.graph));
    return nets;
  }();

  // One oracle per relation, shared across both unsigned networks (teams
  // are judged on the original signed graph), all backed by one row cache.
  auto cache = MakeExperimentCache(options.cache_bytes);
  std::vector<std::unique_ptr<CompatibilityOracle>> oracles;
  for (CompatKind kind : options.kinds) {
    oracles.push_back(MakeOracle(ds.graph, kind, options.oracle, cache));
  }

  std::vector<Table3Row> rows;
  for (const auto& [name, network] : networks) {
    Table3Row row;
    row.network = name;
    std::vector<uint32_t> compatible(options.kinds.size(), 0);
    for (const Task& task : tasks) {
      UnsignedTeamResult team = RarestFirst(network, ds.skills, task);
      if (!team.found) continue;
      ++row.teams_returned;
      for (size_t i = 0; i < options.kinds.size(); ++i) {
        compatible[i] += TeamCompatible(oracles[i].get(), team.members);
      }
    }
    for (size_t i = 0; i < options.kinds.size(); ++i) {
      double pct = row.teams_returned == 0
                       ? 0.0
                       : 100.0 * compatible[i] / row.teams_returned;
      row.compatible_pct.emplace_back(options.kinds[i], pct);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace tfsn
