// Experiment runners regenerating the paper's tables and figures.
// Each bench binary in bench/ is a thin wrapper over one of these.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/compat/compatibility.h"
#include "src/data/datasets.h"
#include "src/team/greedy.h"
#include "src/util/rng.h"

namespace tfsn {

// ---------------------------------------------------------------------------
// Table 1 — dataset statistics
// ---------------------------------------------------------------------------

struct Table1Row {
  std::string dataset;
  uint32_t users = 0;
  uint64_t edges = 0;
  uint64_t neg_edges = 0;
  double neg_fraction = 0.0;
  uint32_t diameter = 0;  ///< exact when n is small, double-sweep estimate else
  bool diameter_exact = false;
  uint32_t skills = 0;
};

/// Computes the Table 1 row for a dataset. Diameter is exact for graphs up
/// to `exact_diameter_limit` nodes, else a sampled double-sweep estimate.
/// The exact all-sources eccentricity sweep is parallelized over `threads`
/// workers (1 = serial, 0 = hardware concurrency / TFSN_THREADS); the
/// result is thread-count independent.
Table1Row ComputeTable1Row(const Dataset& ds, uint32_t exact_diameter_limit,
                           uint64_t seed, uint32_t threads = 1);

// ---------------------------------------------------------------------------
// Table 2 — comparison of compatibility relations
// ---------------------------------------------------------------------------

struct Table2Cell {
  CompatKind kind;
  double comp_users_pct = 0.0;   ///< % of node pairs compatible
  double comp_skills_pct = 0.0;  ///< % of (non-empty) skill pairs compatible
  double avg_distance = 0.0;     ///< mean relation distance, compatible pairs
  uint32_t sources_used = 0;
  /// Sources whose row saturated a shortest-path counter (SP relations
  /// only; see CompatRow::saturated). Nonzero flags possibly distorted
  /// SPM majority answers.
  uint64_t rows_saturated = 0;
  double seconds = 0.0;
};

struct Table2Options {
  /// Sources sampled for the pair statistics (0 = all; exact).
  uint32_t sample_sources = 300;
  /// Sources for the SBP exact relation (expensive; 0 = all).
  uint32_t sbp_sample_sources = 60;
  /// Run the exact SBP relation at all (the paper does so only for
  /// Slashdot). Enabled automatically when the graph is small.
  std::optional<bool> include_sbp;
  /// Graphs up to this many nodes always use all sources and include SBP.
  uint32_t small_graph_limit = 500;
  /// Worker threads for the pair statistics and for skill-index row
  /// computation (1 = serial; 0 = hardware concurrency / TFSN_THREADS).
  /// All workers share one row cache, so rows computed for the pair
  /// statistics are reused by the skill-index build.
  uint32_t threads = 1;
  /// Byte budget of the shared row cache.
  size_t cache_bytes = 256ull << 20;
  OracleParams oracle;
  uint64_t seed = 7;
};

/// Runs the Table 2 comparison (SPA, SPM, SPO, SBPH, [SBP,] NNE).
std::vector<Table2Cell> RunTable2(const Dataset& ds,
                                  const Table2Options& options);

// ---------------------------------------------------------------------------
// Figure 2(a)/(b) — team formation algorithm comparison (fixed k)
// ---------------------------------------------------------------------------

struct AlgorithmOutcome {
  std::string algorithm;  // "LCMD", "LCMC", "RANDOM"
  double solved_pct = 0.0;
  double avg_diameter = 0.0;  ///< over solved instances
};

struct Fig2abRow {
  CompatKind kind;
  std::vector<AlgorithmOutcome> outcomes;
  double max_bound_pct = 0.0;  ///< MAX: tasks whose skills are all compatible
};

struct TeamExperimentOptions {
  uint32_t task_size = 5;
  uint32_t num_tasks = 50;
  uint32_t max_seeds = 10;        ///< seed cap per task (paper: all holders)
  uint32_t index_sample_sources = 200;  ///< skill-index build sampling
  std::vector<CompatKind> kinds = {CompatKind::kSPA, CompatKind::kSPM,
                                   CompatKind::kSPO, CompatKind::kSBPH,
                                   CompatKind::kNNE};
  /// Workers for skill-index row computation and greedy row prefetching
  /// (1 = serial; 0 = hardware concurrency / TFSN_THREADS). One shared
  /// row cache serves the index build, the MAX bound, and every former, so
  /// results are thread-count independent.
  uint32_t threads = 1;
  /// Workers for each former's seed loop on the dense-view path
  /// (GreedyParams::seed_threads; 1 = serial, 0 = auto). Results are
  /// bit-identical for every setting.
  uint32_t seed_threads = 1;
  /// Evaluation path for the formers (kAuto = dense view when it fits).
  GreedyEvalPath eval_path = GreedyEvalPath::kAuto;
  /// Byte budget of the shared row cache.
  size_t cache_bytes = 256ull << 20;
  OracleParams oracle;
  uint64_t seed = 7;
};

/// Runs the Figure 2(a)/(b) comparison: LCMD vs LCMC vs RANDOM per relation
/// plus the MAX skill-compatibility bound.
std::vector<Fig2abRow> RunFig2ab(const Dataset& ds,
                                 const TeamExperimentOptions& options);

// ---------------------------------------------------------------------------
// Figure 2(c)/(d) — varying task size with LCMD
// ---------------------------------------------------------------------------

struct Fig2cdPoint {
  CompatKind kind;
  uint32_t task_size = 0;
  double solved_pct = 0.0;
  double avg_diameter = 0.0;
};

/// Runs the Figure 2(c)/(d) sweep: LCMD success rate and diameter for each
/// task size in `task_sizes`, per relation.
std::vector<Fig2cdPoint> RunFig2cd(const Dataset& ds,
                                   const std::vector<uint32_t>& task_sizes,
                                   const TeamExperimentOptions& options);

// ---------------------------------------------------------------------------
// Table 3 — comparison with unsigned team formation
// ---------------------------------------------------------------------------

struct Table3Row {
  std::string network;  // "Ignore sign" / "Delete negative"
  /// % of returned teams that are fully compatible, per relation.
  std::vector<std::pair<CompatKind, double>> compatible_pct;
  uint32_t teams_returned = 0;
};

struct Table3Options {
  uint32_t task_size = 5;
  uint32_t num_tasks = 50;
  std::vector<CompatKind> kinds = {CompatKind::kSPA, CompatKind::kSPM,
                                   CompatKind::kSPO, CompatKind::kSBPH,
                                   CompatKind::kNNE};
  /// Byte budget of the row cache shared by the per-relation oracles.
  size_t cache_bytes = 256ull << 20;
  OracleParams oracle;
  uint64_t seed = 7;
};

/// Runs the Table 3 comparison: RarestFirst on the ignore-sign and
/// delete-negative unsigned networks, compatibility measured on the signed
/// graph. (The paper's SBP column is approximated by SBPH on large graphs.)
std::vector<Table3Row> RunTable3(const Dataset& ds,
                                 const Table3Options& options);

}  // namespace tfsn
