#include "src/dist/shard_plan.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tfsn {

const char* ShardStrategyName(ShardStrategy s) {
  switch (s) {
    case ShardStrategy::kHash: return "hash";
    case ShardStrategy::kRange: return "range";
  }
  return "?";
}

bool ParseShardStrategy(const std::string& name, ShardStrategy* out) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "hash") {
    *out = ShardStrategy::kHash;
    return true;
  }
  if (lower == "range") {
    *out = ShardStrategy::kRange;
    return true;
  }
  return false;
}

ShardPlan::ShardPlan(ShardStrategy strategy, uint32_t num_nodes,
                     uint32_t num_shards)
    : strategy_(strategy), num_nodes_(num_nodes), num_shards_(num_shards) {
  TFSN_CHECK(num_shards >= 1);
  // ceil(n / S), floored at 1 so ShardOf stays total for num_nodes == 0.
  block_ = std::max<uint32_t>(1, (num_nodes + num_shards - 1) / num_shards);
}

std::vector<NodeId> ShardPlan::OwnedNodes(uint32_t shard) const {
  TFSN_CHECK(shard < num_shards_);
  std::vector<NodeId> owned;
  if (strategy_ == ShardStrategy::kRange) {
    const uint64_t lo = static_cast<uint64_t>(shard) * block_;
    const uint64_t hi =
        std::min<uint64_t>(num_nodes_, lo + block_);
    for (uint64_t u = lo; u < hi; ++u) owned.push_back(static_cast<NodeId>(u));
    return owned;
  }
  for (NodeId u = 0; u < num_nodes_; ++u) {
    if (ShardOf(u) == shard) owned.push_back(u);
  }
  return owned;
}

}  // namespace tfsn
