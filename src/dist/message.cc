#include "src/dist/message.h"

#include <cstring>

namespace tfsn {

namespace {

// Little-endian, bounds-checked primitives. Sizes are u32-prefixed; the
// reader caps every claimed length by the bytes actually remaining, so a
// corrupt prefix fails the decode instead of a giant allocation.

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (i * 8)) & 0xff);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (i * 8)) & 0xff);
}

template <typename T>
void PutVec(std::vector<uint8_t>* out, const std::vector<T>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (const T x : v) {
    if constexpr (sizeof(T) == 8) {
      PutU64(out, static_cast<uint64_t>(x));
    } else {
      PutU32(out, static_cast<uint32_t>(x));
    }
  }
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = bytes_[pos_++];
    return true;
  }

  bool U32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(bytes_[pos_++]) << (i * 8);
    }
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(bytes_[pos_++]) << (i * 8);
    }
    return true;
  }

  template <typename T>
  bool Vec(std::vector<T>* v) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    constexpr size_t kElem = sizeof(T) == 8 ? 8 : 4;
    if (static_cast<uint64_t>(n) * kElem > bytes_.size() - pos_) return false;
    v->clear();
    v->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      if constexpr (sizeof(T) == 8) {
        uint64_t x = 0;
        if (!U64(&x)) return false;
        v->push_back(static_cast<T>(x));
      } else {
        uint32_t x = 0;
        if (!U32(&x)) return false;
        v->push_back(static_cast<T>(x));
      }
    }
    return true;
  }

  bool String(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (n > bytes_.size() - pos_) return false;
    s->assign(reinterpret_cast<const char*>(bytes_.data()) + pos_, n);
    pos_ += n;
    return true;
  }

  bool Done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

}  // namespace

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kFormBegin: return "FormBegin";
    case MsgType::kEvalStep: return "EvalStep";
    case MsgType::kCandidateReply: return "CandidateReply";
    case MsgType::kRowSlice: return "RowSlice";
    case MsgType::kCountLe: return "CountLe";
    case MsgType::kCountReply: return "CountReply";
    case MsgType::kPickRank: return "PickRank";
    case MsgType::kPickReply: return "PickReply";
    case MsgType::kCostEval: return "CostEval";
    case MsgType::kCostReply: return "CostReply";
    case MsgType::kAbort: return "Abort";
  }
  return "?";
}

std::vector<uint8_t> EncodeMessage(const Message& msg) {
  std::vector<uint8_t> out;
  PutU8(&out, static_cast<uint8_t>(msg.type));
  PutU32(&out, msg.src);
  PutU32(&out, msg.run);
  PutU32(&out, msg.seed);
  PutU32(&out, msg.step);
  PutU8(&out, static_cast<uint8_t>(msg.status));
  if (msg.status != StatusCode::kOk) PutString(&out, msg.error);
  switch (msg.type) {
    case MsgType::kFormBegin:
      PutVec(&out, msg.task_skills);
      PutU8(&out, msg.user_policy);
      PutU32(&out, msg.pool_cap);
      break;
    case MsgType::kEvalStep:
      PutU32(&out, msg.new_member);
      PutU32(&out, msg.skill);
      PutVec(&out, msg.rest);
      break;
    case MsgType::kCandidateReply:
      PutU64(&out, msg.count);
      PutU8(&out, msg.has_best);
      PutU32(&out, msg.best_id);
      PutU64(&out, msg.best_score);
      break;
    case MsgType::kRowSlice:
      PutU32(&out, msg.new_member);
      PutVec(&out, msg.slice_comp);
      PutVec(&out, msg.slice_dist);
      break;
    case MsgType::kCountLe:
    case MsgType::kPickRank:
      PutU64(&out, msg.arg);
      break;
    case MsgType::kCountReply:
      PutU64(&out, msg.count);
      break;
    case MsgType::kPickReply:
      PutU32(&out, msg.best_id);
      break;
    case MsgType::kCostEval:
      PutVec(&out, msg.team);
      break;
    case MsgType::kCostReply:
      PutVec(&out, msg.members);
      PutVec(&out, msg.dists);
      break;
    case MsgType::kAbort:
      break;
  }
  return out;
}

bool DecodeMessage(std::span<const uint8_t> bytes, Message* out) {
  Reader r(bytes);
  uint8_t type = 0;
  uint8_t status = 0;
  if (!r.U8(&type)) return false;
  if (type < static_cast<uint8_t>(MsgType::kFormBegin) ||
      type > static_cast<uint8_t>(MsgType::kAbort)) {
    return false;
  }
  *out = Message{};
  out->type = static_cast<MsgType>(type);
  if (!r.U32(&out->src) || !r.U32(&out->run) || !r.U32(&out->seed) ||
      !r.U32(&out->step) || !r.U8(&status)) {
    return false;
  }
  if (status > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return false;
  }
  out->status = static_cast<StatusCode>(status);
  if (out->status != StatusCode::kOk && !r.String(&out->error)) return false;
  switch (out->type) {
    case MsgType::kFormBegin:
      if (!r.Vec(&out->task_skills) || !r.U8(&out->user_policy) ||
          !r.U32(&out->pool_cap)) {
        return false;
      }
      break;
    case MsgType::kEvalStep:
      if (!r.U32(&out->new_member) || !r.U32(&out->skill) ||
          !r.Vec(&out->rest)) {
        return false;
      }
      break;
    case MsgType::kCandidateReply:
      if (!r.U64(&out->count) || !r.U8(&out->has_best) ||
          !r.U32(&out->best_id) || !r.U64(&out->best_score)) {
        return false;
      }
      break;
    case MsgType::kRowSlice:
      if (!r.U32(&out->new_member) || !r.Vec(&out->slice_comp) ||
          !r.Vec(&out->slice_dist)) {
        return false;
      }
      break;
    case MsgType::kCountLe:
    case MsgType::kPickRank:
      if (!r.U64(&out->arg)) return false;
      break;
    case MsgType::kCountReply:
      if (!r.U64(&out->count)) return false;
      break;
    case MsgType::kPickReply:
      if (!r.U32(&out->best_id)) return false;
      break;
    case MsgType::kCostEval:
      if (!r.Vec(&out->team)) return false;
      break;
    case MsgType::kCostReply:
      if (!r.Vec(&out->members) || !r.Vec(&out->dists)) return false;
      break;
    case MsgType::kAbort:
      break;
  }
  return r.Done();
}

}  // namespace tfsn
