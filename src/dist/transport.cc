#include "src/dist/transport.h"

#include <chrono>
#include <string>

#include "src/util/fault_injection.h"
#include "src/util/logging.h"

namespace tfsn {

InProcessTransport::InProcessTransport(uint32_t num_shards)
    : num_shards_(num_shards) {
  TFSN_CHECK(num_shards >= 1);
  mailboxes_.reserve(num_shards_ + 1);
  for (uint32_t i = 0; i <= num_shards_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

InProcessTransport::~InProcessTransport() { Close(); }

Status InProcessTransport::Send(uint32_t src, uint32_t dst,
                                const Message& msg) {
  TFSN_CHECK(src <= num_shards_ && dst <= num_shards_);
  std::vector<uint8_t> bytes = EncodeMessage(msg);
  const uint64_t size = bytes.size();
  const bool control = src == num_shards_ || dst == num_shards_;
  if (TFSN_FAULT_POINT("dist.send_drop")) {
    MutexLock lock(&stats_mu_);
    ++stats_.messages_dropped;
    stats_.bytes_dropped += size;
    return Status::Unavailable("injected send drop (" +
                               std::string(MsgTypeName(msg.type)) + " " +
                               std::to_string(src) + " -> " +
                               std::to_string(dst) + ")");
  }
  Mailbox& box = *mailboxes_[dst];
  MutexLock lock(&box.mu);
  if (box.closed) {
    return Status::Unavailable("transport closed (send to " +
                               std::to_string(dst) + ")");
  }
  box.queue.push_back(std::move(bytes));
  box.cv.NotifyOne();
  {
    // Counted while still holding the mailbox lock: a receiver cannot pop
    // (and count a delivery for) a message before its send is in the
    // ledger, so `sent == delivered + pending` holds at quiescence.
    MutexLock stats_lock(&stats_mu_);
    ++stats_.messages_sent;
    stats_.bytes_sent += size;
    if (control) {
      ++stats_.control_messages;
      stats_.control_bytes += size;
    } else {
      ++stats_.data_messages;
      stats_.data_bytes += size;
    }
  }
  return Status::OK();
}

Status InProcessTransport::Recv(uint32_t dst, int64_t timeout_ms,
                                Message* out) {
  TFSN_CHECK(dst <= num_shards_);
  // The fault models a deadline expiring on a bounded wait; untimed waits
  // (worker idle loops) have no deadline to expire, which keeps fault
  // schedules deterministic — no hit counts from time-dependent polling.
  if (timeout_ms >= 0 && TFSN_FAULT_POINT("dist.recv_timeout")) {
    return Status::DeadlineExceeded("injected recv timeout (endpoint " +
                                    std::to_string(dst) + ")");
  }
  std::vector<uint8_t> bytes;
  {
    Mailbox& box = *mailboxes_[dst];
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
    MutexLock lock(&box.mu);
    while (box.queue.empty()) {
      if (box.closed) {
        return Status::Unavailable("transport closed (endpoint " +
                                   std::to_string(dst) + ")");
      }
      if (timeout_ms < 0) {
        box.cv.Wait(&box.mu);
        continue;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return Status::DeadlineExceeded("recv timeout after " +
                                        std::to_string(timeout_ms) +
                                        "ms (endpoint " +
                                        std::to_string(dst) + ")");
      }
      const int64_t remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count();
      box.cv.WaitFor(&box.mu, remaining_ms + 1);
    }
    bytes = std::move(box.queue.front());
    box.queue.pop_front();
  }
  if (!DecodeMessage(bytes, out)) {
    return Status::Internal("malformed message (" +
                            std::to_string(bytes.size()) + " bytes, endpoint " +
                            std::to_string(dst) + ")");
  }
  MutexLock lock(&stats_mu_);
  ++stats_.messages_delivered;
  stats_.bytes_delivered += bytes.size();
  return Status::OK();
}

void InProcessTransport::Close() {
  for (auto& box : mailboxes_) {
    MutexLock lock(&box->mu);
    box->closed = true;
    box->cv.NotifyAll();
  }
}

CommStats InProcessTransport::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

uint64_t InProcessTransport::PendingMessages() const {
  uint64_t pending = 0;
  for (const auto& box : mailboxes_) {
    MutexLock lock(&box->mu);
    pending += box->queue.size();
  }
  return pending;
}

}  // namespace tfsn
