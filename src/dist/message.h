// Typed wire messages for the sharded formation engine.
//
// Every exchange between the coordinator and the shard workers — and
// between workers (row slices) — is one of these message kinds, encoded to
// a flat little-endian byte vector before it enters the Transport. The
// in-process transport could pass structs by move, but encoding every
// message keeps the CommStats byte ledger honest (bytes counted are bytes
// a real network transport would move) and exercises the exact
// serialization a multi-process backend will need.
//
// Framing: a fixed header (type, source endpoint, run / seed / step epoch,
// status) followed by type-specific fields. The epoch triple lets
// receivers drop stale traffic after an aborted run; the status byte lets
// a reply carry a typed tfsn::Status error instead of a result.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/graph/signed_graph.h"
#include "src/skills/skills.h"
#include "src/util/status.h"

namespace tfsn {

/// Message kinds of the per-step formation protocol (see README "Sharded
/// formation" for the protocol diagram).
enum class MsgType : uint8_t {
  kFormBegin = 1,       ///< coordinator -> all: task + per-run config
  kEvalStep = 2,        ///< coordinator -> all: team delta + skill to fill
  kCandidateReply = 3,  ///< worker -> coordinator: local count + local best
  kRowSlice = 4,        ///< worker -> worker: new member's row, dest-restricted
  kCountLe = 5,         ///< coordinator -> all: RANDOM rank probe (id <= x)
  kCountReply = 6,      ///< worker -> coordinator
  kPickRank = 7,        ///< coordinator -> one worker: rank -> node id
  kPickReply = 8,       ///< worker -> coordinator
  kCostEval = 9,        ///< coordinator -> all: final team, gather distances
  kCostReply = 10,      ///< worker -> coordinator: owned rows of the team
  kAbort = 11,          ///< coordinator -> all: drop the current run
};

const char* MsgTypeName(MsgType t);

/// One protocol message. A tagged union kept as one struct: only the
/// fields of the active `type` are encoded / decoded, the rest stay at
/// their defaults.
struct Message {
  MsgType type = MsgType::kAbort;
  /// Sending endpoint: shard id, or num_shards for the coordinator.
  uint32_t src = 0;
  /// Epoch: formation run id, seed index within the run, greedy step
  /// within the seed. Receivers ignore messages from other epochs.
  uint32_t run = 0;
  uint32_t seed = 0;
  uint32_t step = 0;
  /// Replies: kOk or the typed failure the worker hit (with `error`).
  StatusCode status = StatusCode::kOk;
  std::string error;

  // kFormBegin
  std::vector<SkillId> task_skills;
  uint8_t user_policy = 0;
  uint32_t pool_cap = 0;

  // kEvalStep: the member added by the previous step (the seed user at
  // step 0), the skill to fill now, and the skills still uncovered after
  // it (kMostCompatible's future-holder pool).
  NodeId new_member = 0;
  SkillId skill = 0;
  std::vector<SkillId> rest;

  // kCandidateReply / kCountReply / kPickReply
  uint64_t count = 0;
  uint8_t has_best = 0;
  NodeId best_id = 0;
  uint64_t best_score = 0;

  // kRowSlice: `new_member`'s compatibility row restricted to the
  // destination shard's slice of the holder universe — comp bits packed
  // 64 per word, one uint32 distance per universe node, both in the
  // destination's ascending local-universe order.
  std::vector<uint64_t> slice_comp;
  std::vector<uint32_t> slice_dist;

  // kCountLe / kPickRank probe argument (threshold id / local rank).
  uint64_t arg = 0;

  // kCostEval / kCostReply: the final team (ascending), and the flat
  // |members| x |team| directed distance matrix for the members this
  // worker owns.
  std::vector<NodeId> team;
  std::vector<NodeId> members;
  std::vector<uint32_t> dists;
};

/// Serializes `msg` (header + the active type's fields).
std::vector<uint8_t> EncodeMessage(const Message& msg);

/// Parses bytes produced by EncodeMessage. Returns false on truncated or
/// malformed input (never reads out of bounds, *out left unspecified).
bool DecodeMessage(std::span<const uint8_t> bytes, Message* out);

}  // namespace tfsn
