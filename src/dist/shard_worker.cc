#include "src/dist/shard_worker.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "src/team/greedy.h"
#include "src/team/task_view.h"
#include "src/util/fault_injection.h"
#include "src/util/logging.h"

namespace tfsn {

ShardWorker::ShardWorker(uint32_t shard, const SignedGraph& graph,
                         const SkillAssignment& skills, const ShardPlan& plan,
                         Transport* transport, OracleFactory oracle_factory,
                         ShardWorkerOptions options)
    : shard_(shard),
      graph_(graph),
      skills_(skills),
      plan_(plan),
      transport_(transport),
      options_(options),
      oracle_(oracle_factory(graph)),
      sbph_(oracle_ != nullptr && oracle_->kind() == CompatKind::kSBPH) {
  TFSN_CHECK(oracle_ != nullptr);
  TFSN_CHECK(shard < plan.num_shards());
}

void ShardWorker::Run() {
  for (;;) {
    Message msg;
    const Status st = transport_->Recv(shard_, /*timeout_ms=*/-1, &msg);
    if (st.IsUnavailable()) return;  // transport closed: clean shutdown
    if (!st.ok()) continue;          // malformed frame: skip it
    // A stalled worker misses the message entirely; the coordinator's
    // bounded gather turns that into a typed DeadlineExceeded.
    if (TFSN_FAULT_POINT("dist.worker_stall")) continue;
    Dispatch(msg);
  }
}

void ShardWorker::Dispatch(const Message& msg) {
  switch (msg.type) {
    case MsgType::kFormBegin: HandleFormBegin(msg); return;
    case MsgType::kEvalStep: HandleEvalStep(msg); return;
    case MsgType::kCountLe: HandleCountLe(msg); return;
    case MsgType::kPickRank: HandlePickRank(msg); return;
    case MsgType::kCostEval: HandleCostEval(msg); return;
    case MsgType::kAbort:
      if (msg.run == run_) run_active_ = false;
      return;
    case MsgType::kRowSlice:
      BufferSlice(msg);
      return;
    default:
      return;  // replies are never addressed to workers; drop
  }
}

void ShardWorker::ResetSeedState() {
  team_.clear();
  own_rows_.clear();
  slices_.clear();
  candidates_.clear();
  candidates_step_ = 0;
}

void ShardWorker::BufferSlice(const Message& msg) {
  // Drop only what is provably stale: a past run, or a past seed of the
  // current run. Everything else may be an early arrival — the owner can
  // race ahead of us on a broadcast — and is parked until we catch up.
  if (msg.run < run_) return;
  if (msg.run == run_ && msg.seed < seed_) return;
  pending_slices_[{msg.run, msg.seed, msg.new_member}] =
      Slice{msg.slice_comp, msg.slice_dist};
}

void ShardWorker::HandleFormBegin(const Message& msg) {
  run_ = msg.run;
  run_active_ = true;
  user_policy_ = static_cast<UserPolicy>(msg.user_policy);
  pool_cap_ = msg.pool_cap;
  ResetSeedState();
  seed_ = 0;

  // The coordinator sends task.skills() (sorted, deduplicated, validated);
  // re-validate id bounds anyway — a worker never crashes on wire input.
  std::vector<SkillId> task_skills;
  for (SkillId s : msg.task_skills) {
    if (s < skills_.num_skills()) task_skills.push_back(s);
  }
  const std::vector<NodeId> universe = HolderUniverse(skills_, task_skills);
  universe_by_shard_.assign(plan_.num_shards(), {});
  local_index_.clear();
  for (NodeId v : universe) {
    universe_by_shard_[plan_.ShardOf(v)].push_back(v);
  }
  const std::vector<NodeId>& mine = universe_by_shard_[shard_];
  local_index_.reserve(mine.size());
  for (uint32_t i = 0; i < mine.size(); ++i) local_index_[mine[i]] = i;

  // Prewarm the owned slice of the row working set through the batch row
  // engine; bounded pinning, misses computed in parallel.
  if (!mine.empty()) {
    oracle_->StreamRows(mine, std::max<uint32_t>(1, options_.prewarm_threads),
                        [](size_t, const CompatibilityOracle::Row&) {});
  }
}

Status ShardWorker::AbsorbNewMember(const Message& msg) {
  const NodeId m = msg.new_member;
  if (m >= graph_.num_nodes()) {
    return Status::Internal("team member " + std::to_string(m) +
                            " out of range");
  }
  team_.push_back(m);
  if (plan_.ShardOf(m) == shard_) {
    std::shared_ptr<const CompatibilityOracle::Row> row =
        oracle_->GetRowShared(m);
    // Scatter the new member's row to every peer with universe nodes to
    // evaluate, restricted to that peer's slice (ascending local order).
    for (uint32_t t = 0; t < plan_.num_shards(); ++t) {
      if (t == shard_) continue;
      const std::vector<NodeId>& nodes = universe_by_shard_[t];
      if (nodes.empty()) continue;
      Message slice;
      slice.type = MsgType::kRowSlice;
      slice.run = msg.run;
      slice.seed = msg.seed;
      slice.step = msg.step;
      slice.new_member = m;
      slice.slice_comp.assign((nodes.size() + 63) / 64, 0);
      slice.slice_dist.reserve(nodes.size());
      for (size_t i = 0; i < nodes.size(); ++i) {
        const NodeId v = nodes[i];
        if (row->comp[v] != 0) slice.slice_comp[i >> 6] |= 1ULL << (i & 63);
        slice.slice_dist.push_back(row->dist[v]);
      }
      // A dropped slice surfaces at the destination as a bounded-wait
      // timeout; the run degrades to a typed error there.
      (void)transport_->Send(shard_, t, slice);
    }
    own_rows_[m] = std::move(row);
    return Status::OK();
  }

  // Remote member. We only need its row if we can ever field a candidate.
  const size_t slice_size = universe_by_shard_[shard_].size();
  if (slice_size == 0) return Status::OK();

  // Drop parked slices from epochs that can never be adopted any more,
  // then adopt the one we want if it already raced in.
  const auto adopt = [&]() -> bool {
    pending_slices_.erase(
        pending_slices_.begin(),
        pending_slices_.lower_bound(std::make_tuple(run_, seed_, NodeId{0})));
    const auto it = pending_slices_.find(std::make_tuple(run_, seed_, m));
    if (it == pending_slices_.end()) return false;
    Slice slice = std::move(it->second);
    pending_slices_.erase(it);
    if (slice.dist.size() != slice_size ||
        slice.comp.size() != (slice_size + 63) / 64) {
      return false;  // malformed; let the wait time out
    }
    slices_[m] = std::move(slice);
    return true;
  };

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.recv_timeout_ms);
  while (slices_.find(m) == slices_.end()) {
    if (adopt()) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::DeadlineExceeded(
          "shard " + std::to_string(shard_) + ": row slice for member " +
          std::to_string(m) + " never arrived");
    }
    const int64_t remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1;
    Message sm;
    TFSN_RETURN_NOT_OK(transport_->Recv(shard_, remaining_ms, &sm));
    if (sm.type == MsgType::kAbort) {
      if (sm.run == run_) run_active_ = false;
      if (sm.run >= run_) {
        return Status::Unavailable("run aborted by coordinator");
      }
      continue;
    }
    if (sm.type != MsgType::kRowSlice) continue;  // nothing else can pend
    BufferSlice(sm);  // adopted (or rejected) at the top of the loop
  }
  return Status::OK();
}

Status ShardWorker::DirComp(NodeId x, NodeId v, bool* out) const {
  const auto own = own_rows_.find(x);
  if (own != own_rows_.end()) {
    *out = own->second->comp[v] != 0;
    return Status::OK();
  }
  const auto slice = slices_.find(x);
  if (slice == slices_.end()) {
    return Status::Internal("missing row state for team member " +
                            std::to_string(x));
  }
  const auto li = local_index_.find(v);
  if (li == local_index_.end()) {
    return Status::Internal("candidate " + std::to_string(v) +
                            " not in the local universe slice");
  }
  const uint32_t i = li->second;
  *out = (slice->second.comp[i >> 6] >> (i & 63)) & 1;
  return Status::OK();
}

Status ShardWorker::DirDist(NodeId x, NodeId v, uint32_t* out) const {
  const auto own = own_rows_.find(x);
  if (own != own_rows_.end()) {
    *out = own->second->dist[v];
    return Status::OK();
  }
  const auto slice = slices_.find(x);
  if (slice == slices_.end()) {
    return Status::Internal("missing row state for team member " +
                            std::to_string(x));
  }
  const auto li = local_index_.find(v);
  if (li == local_index_.end()) {
    return Status::Internal("candidate " + std::to_string(v) +
                            " not in the local universe slice");
  }
  *out = slice->second.dist[li->second];
  return Status::OK();
}

Status ShardWorker::PairCompatible(NodeId x, NodeId v, bool* out) {
  bool fwd = false;
  TFSN_RETURN_NOT_OK(DirComp(x, v, &fwd));
  if (!sbph_) {
    *out = fwd;
    return Status::OK();
  }
  // SBPH symmetric closure: either direction suffices. The reverse
  // direction reads the candidate's own (owned) row.
  *out = fwd || oracle_->GetRow(v).comp[x] != 0;
  return Status::OK();
}

Status ShardWorker::PairDistance(NodeId x, NodeId v, uint32_t* out) {
  uint32_t fwd = 0;
  TFSN_RETURN_NOT_OK(DirDist(x, v, &fwd));
  if (!sbph_) {
    *out = fwd;
    return Status::OK();
  }
  *out = std::min(fwd, oracle_->GetRow(v).dist[x]);
  return Status::OK();
}

void ShardWorker::HandleEvalStep(const Message& msg) {
  if (!run_active_ || msg.run != run_) return;  // stale epoch: drop
  if (msg.step == 0 || msg.seed != seed_) {
    ResetSeedState();
    seed_ = msg.seed;
  }
  if (msg.skill >= skills_.num_skills()) {
    ReplyError(msg, MsgType::kCandidateReply,
               Status::Internal("skill id out of range"));
    return;
  }
  Status st = AbsorbNewMember(msg);
  if (!st.ok()) {
    // No reply when the run was aborted mid-wait — the coordinator is gone.
    if (run_active_) ReplyError(msg, MsgType::kCandidateReply, st);
    return;
  }

  // Local candidates: holders of the requested skill that we own, not in
  // the team, compatible with every current member. Holder lists are
  // ascending, so the filtered list is ascending too — the per-shard
  // fragment of the single-node path's global candidate order.
  candidates_.clear();
  candidates_step_ = msg.step;
  for (NodeId v : skills_.Holders(msg.skill)) {
    if (plan_.ShardOf(v) != shard_) continue;
    if (std::find(team_.begin(), team_.end(), v) != team_.end()) continue;
    bool ok = true;
    for (NodeId x : team_) {
      bool comp = false;
      st = PairCompatible(x, v, &comp);
      if (!st.ok()) {
        ReplyError(msg, MsgType::kCandidateReply, st);
        return;
      }
      if (!comp) {
        ok = false;
        break;
      }
    }
    if (ok) candidates_.push_back(v);
  }

  Message reply;
  reply.count = candidates_.size();
  switch (user_policy_) {
    case UserPolicy::kMinDistance: {
      // First strict minimum in ascending candidate order, with the
      // single-node path's candidate-level early break (a pure pruning:
      // the selected best always ran to completion, so its score is the
      // exact worst-case distance). The local (score, id)-minimum merged
      // with its peers reproduces the global first-strict-minimum.
      NodeId best = kInvalidNode;
      uint64_t best_score = ~0ULL;
      for (NodeId v : candidates_) {
        uint32_t worst = 0;
        bool aborted = false;
        for (NodeId x : team_) {
          uint32_t d = 0;
          st = PairDistance(x, v, &d);
          if (!st.ok()) {
            ReplyError(msg, MsgType::kCandidateReply, st);
            return;
          }
          worst = std::max(worst, d);
          if (worst >= best_score) {
            aborted = true;
            break;
          }
        }
        if (!aborted && worst < best_score) {
          best_score = worst;
          best = v;
        }
      }
      if (best != kInvalidNode) {
        reply.has_best = 1;
        reply.best_id = best;
        reply.best_score = best_score;
      }
      break;
    }
    case UserPolicy::kMostCompatible: {
      // The future-holder pool is a *global* construction — identical on
      // every shard and to the single-node path: concatenated holder
      // lists, sorted, deduplicated, evenly thinned.
      std::vector<NodeId> pool;
      for (SkillId s : msg.rest) {
        if (s >= skills_.num_skills()) continue;
        auto hs = skills_.Holders(s);
        pool.insert(pool.end(), hs.begin(), hs.end());
      }
      std::sort(pool.begin(), pool.end());
      pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
      ThinPoolEvenly(&pool, pool_cap_);
      NodeId best = kInvalidNode;
      int64_t best_score = -1;
      for (NodeId v : candidates_) {
        const auto& row = oracle_->GetRow(v);
        int64_t score = 0;
        for (NodeId w : pool) score += row.comp[w] != 0;
        if (score > best_score) {
          best_score = score;
          best = v;
        }
      }
      if (best != kInvalidNode) {
        reply.has_best = 1;
        reply.best_id = best;
        reply.best_score = static_cast<uint64_t>(best_score);
      }
      break;
    }
    case UserPolicy::kRandom:
      // The coordinator draws the rank; we only report the local count.
      break;
  }
  Reply(msg, MsgType::kCandidateReply, std::move(reply));
}

void ShardWorker::HandleCountLe(const Message& msg) {
  if (!run_active_ || msg.run != run_ || msg.seed != seed_ ||
      msg.step != candidates_step_) {
    return;  // stale probe; the coordinator's gather will time out
  }
  Message reply;
  reply.count = static_cast<uint64_t>(
      std::upper_bound(candidates_.begin(), candidates_.end(),
                       static_cast<NodeId>(msg.arg)) -
      candidates_.begin());
  Reply(msg, MsgType::kCountReply, std::move(reply));
}

void ShardWorker::HandlePickRank(const Message& msg) {
  if (!run_active_ || msg.run != run_ || msg.seed != seed_ ||
      msg.step != candidates_step_) {
    return;
  }
  if (msg.arg >= candidates_.size()) {
    ReplyError(msg, MsgType::kPickReply,
               Status::Internal("rank " + std::to_string(msg.arg) +
                                " out of range (have " +
                                std::to_string(candidates_.size()) +
                                " candidates)"));
    return;
  }
  Message reply;
  reply.best_id = candidates_[static_cast<size_t>(msg.arg)];
  Reply(msg, MsgType::kPickReply, std::move(reply));
}

void ShardWorker::HandleCostEval(const Message& msg) {
  if (!run_active_ || msg.run != run_) return;
  Message reply;
  for (NodeId x : msg.team) {
    if (x >= graph_.num_nodes()) {
      ReplyError(msg, MsgType::kCostReply,
                 Status::Internal("team member out of range"));
      return;
    }
  }
  for (NodeId x : msg.team) {
    if (plan_.ShardOf(x) != shard_) continue;
    const auto& row = oracle_->GetRow(x);
    reply.members.push_back(x);
    for (NodeId y : msg.team) {
      reply.dists.push_back(x == y ? 0 : row.dist[y]);
    }
  }
  Reply(msg, MsgType::kCostReply, std::move(reply));
}

void ShardWorker::Reply(const Message& req, MsgType type, Message msg) {
  msg.type = type;
  msg.src = shard_;
  msg.run = req.run;
  msg.seed = req.seed;
  msg.step = req.step;
  // A dropped reply surfaces as a gather timeout at the coordinator.
  (void)transport_->Send(shard_, transport_->coordinator(), msg);
}

void ShardWorker::ReplyError(const Message& req, MsgType type,
                             const Status& st) {
  Message msg;
  msg.status = st.code();
  msg.error = st.message();
  Reply(req, type, std::move(msg));
}

}  // namespace tfsn
