// The transport seam of the sharded formation engine.
//
// Endpoints are numbered 0..S: shard workers 0..S-1 plus the coordinator
// at endpoint S. Every message crosses the seam as EncodeMessage() bytes,
// and the transport keeps a CommStats ledger of everything it moved —
// split into the *control plane* (any message to or from the coordinator:
// broadcasts, per-shard bests, rank probes — the traffic that must stay
// O(S * team_size) per step) and the *data plane* (worker-to-worker row
// slices, which legitimately scale with the holder universe).
//
// InProcessTransport is the threads-as-shards implementation: one mutex +
// condvar mailbox per endpoint, bounded-timeout receives, and the
// `dist.send_drop` / `dist.recv_timeout` fault points, so CI can measure
// real scaling and failure behavior without MPI. A multi-process backend
// only has to implement the same four-method interface.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/dist/message.h"
#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace tfsn {

/// Cumulative transport traffic ledger. Byte counts are encoded wire
/// sizes. The accounting identity `messages_sent == messages_delivered +
/// pending` holds at any quiescent point (dropped messages are counted
/// separately and never enqueued).
struct CommStats {
  uint64_t messages_sent = 0;       ///< successfully enqueued
  uint64_t bytes_sent = 0;
  uint64_t messages_delivered = 0;  ///< returned from Recv
  uint64_t bytes_delivered = 0;
  uint64_t messages_dropped = 0;    ///< injected send faults
  uint64_t bytes_dropped = 0;
  uint64_t control_messages = 0;    ///< sent, coordinator on either end
  uint64_t control_bytes = 0;
  uint64_t data_messages = 0;       ///< sent, worker <-> worker
  uint64_t data_bytes = 0;
};

/// Point-to-point messaging between the S + 1 formation endpoints.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Number of shard worker endpoints (the coordinator is endpoint
  /// num_shards()).
  virtual uint32_t num_shards() const = 0;

  /// The coordinator's endpoint id.
  uint32_t coordinator() const { return num_shards(); }

  /// Delivers `msg` from endpoint `src` to endpoint `dst`'s mailbox.
  /// Unavailable when the transport is closed or the message was dropped
  /// (injected fault).
  virtual Status Send(uint32_t src, uint32_t dst, const Message& msg) = 0;

  /// Next message addressed to endpoint `dst`. Blocks up to `timeout_ms`
  /// milliseconds (DeadlineExceeded on expiry); `timeout_ms < 0` blocks
  /// until a message arrives or the transport closes (Unavailable —
  /// returned only once the mailbox is fully drained).
  virtual Status Recv(uint32_t dst, int64_t timeout_ms, Message* out) = 0;

  /// Shuts the transport down: every blocked and future Recv drains its
  /// mailbox and then returns Unavailable; every future Send fails.
  virtual void Close() = 0;

  /// Snapshot of the traffic ledger.
  virtual CommStats stats() const = 0;

  /// Messages currently enqueued across all mailboxes.
  virtual uint64_t PendingMessages() const = 0;
};

/// Threads-as-shards transport: mailboxes in process memory.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(uint32_t num_shards);
  ~InProcessTransport() override;

  uint32_t num_shards() const override { return num_shards_; }
  Status Send(uint32_t src, uint32_t dst, const Message& msg) override;
  Status Recv(uint32_t dst, int64_t timeout_ms, Message* out) override;
  void Close() override;
  CommStats stats() const override;
  uint64_t PendingMessages() const override;

 private:
  struct Mailbox {
    Mutex mu;
    CondVar cv;
    std::deque<std::vector<uint8_t>> queue TFSN_GUARDED_BY(mu);
    bool closed TFSN_GUARDED_BY(mu) = false;
  };

  const uint32_t num_shards_;
  /// One mailbox per endpoint (workers 0..S-1, coordinator S). Boxed:
  /// Mutex is neither movable nor copyable.
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  mutable Mutex stats_mu_;
  CommStats stats_ TFSN_GUARDED_BY(stats_mu_);
};

}  // namespace tfsn
