// Sharded greedy team formation: the coordinator side.
//
// DistributedFormer partitions the holder universe across S shard workers
// (ShardPlan + ShardWorker, threads-as-shards over InProcessTransport) and
// runs Algorithm 2's seed loop as a sequence of broadcast/gather rounds:
// per greedy step the coordinator broadcasts the team delta and the skill
// to fill (kEvalStep), each worker evaluates its local candidates, and the
// per-shard bests are merged with the global order-fixed tie-break —
// minimum score then minimum id for kMinDistance, maximum score then
// minimum id for kMostCompatible — which reproduces the single-node path's
// first-strict-improvement scan over the ascending global candidate list.
// The RANDOM policy gathers local candidate counts, draws the rank from
// the same per-seed forked rng stream the single-node path consumes, and
// resolves the k-th smallest candidate id (a prefix-sum pick for the range
// plan, a binary search over the id space for the hash plan).
//
// The contract: Form() is *bit-identical* to GreedyTeamFormer::Form for
// every SkillPolicy x UserPolicy x CompatKind and every shard count,
// including rng stream consumption, or it returns a typed error — never a
// different team. Per-step coordinator traffic is O(S * team_size); the
// row data plane (worker-to-worker slices) scales with the universe but
// never touches the coordinator.

#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/compat/compatibility.h"
#include "src/compat/skill_index.h"
#include "src/dist/shard_plan.h"
#include "src/dist/shard_worker.h"
#include "src/dist/transport.h"
#include "src/skills/skills.h"
#include "src/team/greedy.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace tfsn {

/// Configuration of the sharded engine (on top of GreedyParams).
struct DistOptions {
  /// Number of shard workers (>= 1).
  uint32_t num_shards = 2;
  ShardStrategy strategy = ShardStrategy::kHash;
  /// Per-worker oracle factory; every worker must get an equivalently
  /// configured oracle (see OracleFactoryFor for the common case).
  OracleFactory oracle_factory;
  /// Threads each worker uses for its kFormBegin row prewarm.
  uint32_t prewarm_threads = 1;
  /// Bound on every coordinator gather and worker slice wait (ms). Under
  /// fault injection this is how long a lost message takes to surface as
  /// a typed DeadlineExceeded.
  int64_t recv_timeout_ms = 10'000;
};

/// The standard per-worker oracle factory: MakeOracle(graph, kind, params).
inline OracleFactory OracleFactoryFor(CompatKind kind,
                                      OracleParams params = {}) {
  return [kind, params](const SignedGraph& g) {
    return MakeOracle(g, kind, params);
  };
}

/// Communication accounting for one Form() call.
struct FormCommStats {
  /// Greedy argmax steps coordinated (kEvalStep broadcasts).
  uint64_t steps = 0;
  /// Broadcast + gather cycles, including RANDOM rank-resolution probes
  /// and the final cost gather.
  uint64_t rounds = 0;
  /// Transport traffic attributable to this call (ledger delta).
  CommStats comm;
};

/// Coordinator + worker fleet bound to one (graph, skills, relation,
/// params) configuration. Construction spawns one thread per shard;
/// destruction closes the transport and joins them. Form() is serial —
/// one formation at a time, called from one thread.
class DistributedFormer {
 public:
  /// `index` is required when skill_policy == kLeastCompatible (it is
  /// consulted only by the coordinator). All referees must outlive the
  /// former.
  DistributedFormer(const SignedGraph& graph, const SkillAssignment& skills,
                    const SkillCompatibilityIndex* index, GreedyParams params,
                    DistOptions options);
  ~DistributedFormer();

  DistributedFormer(const DistributedFormer&) = delete;
  DistributedFormer& operator=(const DistributedFormer&) = delete;

  /// Runs Algorithm 2 across the shards. Bit-identical to
  /// GreedyTeamFormer::Form(task, rng) on success; a typed error (the
  /// failing shard's Status, or DeadlineExceeded/Unavailable from the
  /// transport) when any shard fails — never a wrong team. `comm`, when
  /// non-null, receives this call's message accounting.
  Result<TeamResult> Form(const Task& task, Rng* rng,
                          FormCommStats* comm = nullptr);

  const ShardPlan& plan() const { return plan_; }
  const GreedyParams& params() const { return params_; }

  /// Cumulative transport ledger (all Form calls so far).
  CommStats comm_stats() const { return transport_->stats(); }

  /// Messages still queued in the transport (0 at quiescence; the
  /// accounting-identity check `sent == delivered + pending` uses this).
  uint64_t pending_messages() const { return transport_->PendingMessages(); }

 private:
  Status Broadcast(Message msg);
  void AbortRun(uint32_t run);

  /// Collects one reply of type `want` per shard in `from` for epoch
  /// (run, seed, step); stale or unexpected messages are dropped. A reply
  /// carrying a non-OK status, or a bounded-wait expiry, fails the gather.
  Result<std::vector<Message>> Gather(uint32_t run, uint32_t seed,
                                      uint32_t step, MsgType want,
                                      const std::vector<uint32_t>& from);

  /// One seed's greedy completion via broadcast/gather rounds. Returns a
  /// found == false TeamResult when the seed dead-ends (like the
  /// single-node path); a Status only on shard/transport failure.
  Result<TeamResult> CompleteSeed(uint32_t run, uint32_t seed_idx, NodeId seed,
                                  const Task& task, Rng* seed_rng,
                                  FormCommStats* acc);

  /// RANDOM policy: resolves the rank-`k` (0-based, ascending id) global
  /// candidate. `counts` are the per-shard candidate counts just gathered.
  Result<NodeId> ResolveRank(uint32_t run, uint32_t seed_idx, uint32_t step,
                             uint64_t k, const std::vector<uint64_t>& counts,
                             FormCommStats* acc);

  /// Final cost gather: assembles the directed distance matrix of `team`
  /// from the owners' rows and evaluates (cost, objective) with the exact
  /// single-node loops (SBPH min-closure included).
  Result<std::pair<uint32_t, uint64_t>> EvalCost(uint32_t run,
                                                 uint32_t seed_idx,
                                                 uint32_t step,
                                                 const std::vector<NodeId>& team,
                                                 FormCommStats* acc);

  const SignedGraph& graph_;
  const SkillAssignment& skills_;
  const SkillCompatibilityIndex* index_;
  const GreedyParams params_;
  const DistOptions options_;
  ShardPlan plan_;
  /// Relation kind of the workers' oracles (probed from the factory at
  /// construction); drives the SBPH min-closure in EvalCost.
  bool sbph_ = false;
  std::unique_ptr<InProcessTransport> transport_;
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  std::vector<std::thread> threads_;
  uint32_t run_counter_ = 0;
  std::vector<uint32_t> all_shards_;
};

}  // namespace tfsn
