#include "src/dist/distributed_former.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>

#include "src/team/cost.h"
#include "src/util/logging.h"

namespace tfsn {

namespace {

constexpr uint64_t kInfiniteCost = std::numeric_limits<uint64_t>::max();

// Same mapping as the single-node former (greedy.cc): the kDiameter
// objective derived from the already-computed pairwise sweep.
uint64_t ObjectiveFromDiameter(uint32_t diameter) {
  return diameter == kUnreachable ? kInfiniteCost : diameter;
}

CommStats Delta(const CommStats& after, const CommStats& before) {
  CommStats d;
  d.messages_sent = after.messages_sent - before.messages_sent;
  d.bytes_sent = after.bytes_sent - before.bytes_sent;
  d.messages_delivered = after.messages_delivered - before.messages_delivered;
  d.bytes_delivered = after.bytes_delivered - before.bytes_delivered;
  d.messages_dropped = after.messages_dropped - before.messages_dropped;
  d.bytes_dropped = after.bytes_dropped - before.bytes_dropped;
  d.control_messages = after.control_messages - before.control_messages;
  d.control_bytes = after.control_bytes - before.control_bytes;
  d.data_messages = after.data_messages - before.data_messages;
  d.data_bytes = after.data_bytes - before.data_bytes;
  return d;
}

}  // namespace

DistributedFormer::DistributedFormer(const SignedGraph& graph,
                                     const SkillAssignment& skills,
                                     const SkillCompatibilityIndex* index,
                                     GreedyParams params, DistOptions options)
    : graph_(graph),
      skills_(skills),
      index_(index),
      params_(params),
      options_(std::move(options)) {
  TFSN_CHECK(options_.num_shards >= 1);
  TFSN_CHECK(options_.oracle_factory != nullptr);
  if (params_.skill_policy == SkillPolicy::kLeastCompatible) {
    TFSN_CHECK(index != nullptr);
  }
  plan_ = ShardPlan(options_.strategy, graph.num_nodes(), options_.num_shards);
  {
    std::unique_ptr<CompatibilityOracle> probe =
        options_.oracle_factory(graph);
    TFSN_CHECK(probe != nullptr);
    sbph_ = probe->kind() == CompatKind::kSBPH;
  }
  transport_ = std::make_unique<InProcessTransport>(options_.num_shards);
  ShardWorkerOptions wopts;
  wopts.prewarm_threads = options_.prewarm_threads;
  wopts.recv_timeout_ms = options_.recv_timeout_ms;
  all_shards_.reserve(options_.num_shards);
  for (uint32_t t = 0; t < options_.num_shards; ++t) {
    workers_.push_back(std::make_unique<ShardWorker>(
        t, graph, skills, plan_, transport_.get(), options_.oracle_factory,
        wopts));
    all_shards_.push_back(t);
  }
  threads_.reserve(workers_.size());
  for (auto& w : workers_) {
    threads_.emplace_back([worker = w.get()] { worker->Run(); });
  }
}

DistributedFormer::~DistributedFormer() {
  transport_->Close();
  for (std::thread& t : threads_) t.join();
}

Status DistributedFormer::Broadcast(Message msg) {
  msg.src = transport_->coordinator();
  for (uint32_t t = 0; t < options_.num_shards; ++t) {
    TFSN_RETURN_NOT_OK(transport_->Send(msg.src, t, msg));
  }
  return Status::OK();
}

void DistributedFormer::AbortRun(uint32_t run) {
  Message abort;
  abort.type = MsgType::kAbort;
  abort.run = run;
  abort.src = transport_->coordinator();
  // Best effort: a worker that misses the abort drops the run's remaining
  // traffic by epoch check anyway.
  for (uint32_t t = 0; t < options_.num_shards; ++t) {
    (void)transport_->Send(abort.src, t, abort);
  }
}

Result<std::vector<Message>> DistributedFormer::Gather(
    uint32_t run, uint32_t seed, uint32_t step, MsgType want,
    const std::vector<uint32_t>& from) {
  const uint32_t num_shards = options_.num_shards;
  std::vector<Message> replies(num_shards);
  std::vector<uint8_t> got(num_shards, 0);
  size_t remaining = from.size();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.recv_timeout_ms);
  while (remaining > 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::DeadlineExceeded(
          std::string("gather timeout waiting for ") + MsgTypeName(want) +
          " (run " + std::to_string(run) + ", step " + std::to_string(step) +
          ", " + std::to_string(remaining) + " shard(s) missing)");
    }
    const int64_t remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1;
    Message m;
    TFSN_RETURN_NOT_OK(
        transport_->Recv(transport_->coordinator(), remaining_ms, &m));
    // Drop anything from another epoch (e.g. replies that straggled in
    // after an aborted run) or of an unexpected type.
    if (m.run != run || m.seed != seed || m.step != step) continue;
    if (m.type != want) continue;
    if (m.src >= num_shards || got[m.src] != 0) continue;
    if (m.status != StatusCode::kOk) {
      return Status(m.status,
                    "shard " + std::to_string(m.src) + ": " + m.error);
    }
    got[m.src] = 1;
    replies[m.src] = std::move(m);
    --remaining;
  }
  return replies;
}

Result<NodeId> DistributedFormer::ResolveRank(
    uint32_t run, uint32_t seed_idx, uint32_t step, uint64_t k,
    const std::vector<uint64_t>& counts, FormCommStats* acc) {
  const uint32_t num_shards = options_.num_shards;
  if (plan_.IdOrderedByShard()) {
    // Range plan: shard order is id order, so the global rank maps to a
    // (shard, local rank) pair by prefix sums — one extra round.
    uint64_t prefix = 0;
    for (uint32_t t = 0; t < num_shards; ++t) {
      if (k < prefix + counts[t]) {
        Message pick;
        pick.type = MsgType::kPickRank;
        pick.src = transport_->coordinator();
        pick.run = run;
        pick.seed = seed_idx;
        pick.step = step;
        pick.arg = k - prefix;
        TFSN_RETURN_NOT_OK(transport_->Send(pick.src, t, pick));
        ++acc->rounds;
        TFSN_ASSIGN_OR_RETURN(
            std::vector<Message> replies,
            Gather(run, seed_idx, step, MsgType::kPickReply, {t}));
        return static_cast<NodeId>(replies[t].best_id);
      }
      prefix += counts[t];
    }
    return Status::Internal("rank " + std::to_string(k) +
                            " exceeds the gathered candidate count");
  }
  // Hash plan: ownership interleaves the id space, so binary-search the
  // smallest id x with |candidates <= x| >= k + 1 — O(log n) rounds of
  // S constant-size messages each.
  uint64_t lo = 0;
  uint64_t hi = graph_.num_nodes() == 0 ? 0 : graph_.num_nodes() - 1;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    Message probe;
    probe.type = MsgType::kCountLe;
    probe.run = run;
    probe.seed = seed_idx;
    probe.step = step;
    probe.arg = mid;
    TFSN_RETURN_NOT_OK(Broadcast(probe));
    ++acc->rounds;
    TFSN_ASSIGN_OR_RETURN(
        std::vector<Message> replies,
        Gather(run, seed_idx, step, MsgType::kCountReply, all_shards_));
    uint64_t le = 0;
    for (uint32_t t = 0; t < num_shards; ++t) le += replies[t].count;
    if (le >= k + 1) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return static_cast<NodeId>(lo);
}

Result<std::pair<uint32_t, uint64_t>> DistributedFormer::EvalCost(
    uint32_t run, uint32_t seed_idx, uint32_t step,
    const std::vector<NodeId>& team, FormCommStats* acc) {
  Message ev;
  ev.type = MsgType::kCostEval;
  ev.run = run;
  ev.seed = seed_idx;
  ev.step = step;
  ev.team = team;
  TFSN_RETURN_NOT_OK(Broadcast(ev));
  ++acc->rounds;
  TFSN_ASSIGN_OR_RETURN(
      std::vector<Message> replies,
      Gather(run, seed_idx, step, MsgType::kCostReply, all_shards_));

  // Assemble the directed distance matrix D[i][j] = dist(row(team[i]),
  // team[j]) from the owners' rows; every member is owned by exactly one
  // responding shard.
  const size_t team_size = team.size();
  std::vector<uint32_t> dist_matrix(team_size * team_size, 0);
  std::vector<uint8_t> have(team_size, 0);
  for (uint32_t t = 0; t < options_.num_shards; ++t) {
    const Message& r = replies[t];
    if (r.members.size() * team_size != r.dists.size()) {
      return Status::Internal("shard " + std::to_string(t) +
                              ": malformed cost reply");
    }
    for (size_t mi = 0; mi < r.members.size(); ++mi) {
      const NodeId x = r.members[mi];
      const auto it = std::lower_bound(team.begin(), team.end(), x);
      if (it == team.end() || *it != x) {
        return Status::Internal("shard " + std::to_string(t) +
                                ": cost row for non-member " +
                                std::to_string(x));
      }
      const size_t i = static_cast<size_t>(it - team.begin());
      if (have[i] != 0) {
        return Status::Internal("duplicate cost row for member " +
                                std::to_string(x));
      }
      have[i] = 1;
      for (size_t j = 0; j < team_size; ++j) {
        dist_matrix[i * team_size + j] = r.dists[mi * team_size + j];
      }
    }
  }
  for (size_t i = 0; i < team_size; ++i) {
    if (have[i] == 0) {
      return Status::Internal("cost row missing for member " +
                              std::to_string(team[i]));
    }
  }

  // Exactly the single-node pair semantics: SBPH takes the min over both
  // directions, everything else reads row(team[i]) — then the shared
  // objective loops from cost.h.
  const auto pair_dist = [&](size_t i, size_t j) {
    const uint32_t fwd = dist_matrix[i * team_size + j];
    if (!sbph_) return fwd;
    return std::min(fwd, dist_matrix[j * team_size + i]);
  };
  const uint32_t cost = TeamDiameterOver(team_size, pair_dist);
  const uint64_t objective =
      params_.cost_kind == CostKind::kDiameter
          ? ObjectiveFromDiameter(cost)
          : TeamCostOver(team_size, params_.cost_kind, pair_dist);
  return std::make_pair(cost, objective);
}

Result<TeamResult> DistributedFormer::CompleteSeed(uint32_t run,
                                                   uint32_t seed_idx,
                                                   NodeId seed,
                                                   const Task& task,
                                                   Rng* seed_rng,
                                                   FormCommStats* acc) {
  TeamResult candidate;
  std::vector<NodeId> team{seed};
  SkillCoverage coverage(task);
  coverage.Cover(skills_.SkillsOf(seed));
  uint32_t step = 0;
  NodeId last_added = seed;
  while (!coverage.AllCovered()) {
    const std::vector<SkillId> uncovered = coverage.Uncovered();
    const SkillId s =
        SelectSkillByPolicy(params_.skill_policy, skills_, index_, uncovered);

    Message ev;
    ev.type = MsgType::kEvalStep;
    ev.run = run;
    ev.seed = seed_idx;
    ev.step = step;
    ev.new_member = last_added;
    ev.skill = s;
    if (params_.user_policy == UserPolicy::kMostCompatible) {
      // Skills still uncovered after s — the future-holder pool input.
      for (SkillId t : uncovered) {
        if (t != s) ev.rest.push_back(t);
      }
    }
    TFSN_RETURN_NOT_OK(Broadcast(ev));
    ++acc->steps;
    ++acc->rounds;
    TFSN_ASSIGN_OR_RETURN(
        std::vector<Message> replies,
        Gather(run, seed_idx, step, MsgType::kCandidateReply, all_shards_));

    // Merge the per-shard bests with the global order-fixed tie-break.
    NodeId v = kInvalidNode;
    switch (params_.user_policy) {
      case UserPolicy::kMinDistance: {
        uint64_t best_score = ~0ULL;
        for (uint32_t t = 0; t < options_.num_shards; ++t) {
          const Message& r = replies[t];
          if (r.has_best == 0) continue;
          if (v == kInvalidNode || r.best_score < best_score ||
              (r.best_score == best_score && r.best_id < v)) {
            best_score = r.best_score;
            v = r.best_id;
          }
        }
        break;
      }
      case UserPolicy::kMostCompatible: {
        int64_t best_score = -1;
        for (uint32_t t = 0; t < options_.num_shards; ++t) {
          const Message& r = replies[t];
          if (r.has_best == 0) continue;
          const int64_t score = static_cast<int64_t>(r.best_score);
          if (v == kInvalidNode || score > best_score ||
              (score == best_score && r.best_id < v)) {
            best_score = score;
            v = r.best_id;
          }
        }
        break;
      }
      case UserPolicy::kRandom: {
        std::vector<uint64_t> counts(options_.num_shards, 0);
        uint64_t total = 0;
        for (uint32_t t = 0; t < options_.num_shards; ++t) {
          counts[t] = replies[t].count;
          total += counts[t];
        }
        if (total > 0) {
          // One NextBounded(total) per step with a non-empty candidate
          // set — exactly the single-node path's stream consumption
          // (total equals the global candidate count: the shard lists
          // partition it).
          TFSN_CHECK(seed_rng != nullptr);
          const uint64_t k = seed_rng->NextBounded(total);
          TFSN_ASSIGN_OR_RETURN(
              v, ResolveRank(run, seed_idx, step, k, counts, acc));
        }
        break;
      }
    }
    if (v == kInvalidNode) return candidate;  // dead end, like single-node
    team.push_back(v);
    coverage.Cover(skills_.SkillsOf(v));
    last_added = v;
    ++step;
  }
  std::sort(team.begin(), team.end());
  TFSN_ASSIGN_OR_RETURN(const auto cost_obj,
                        EvalCost(run, seed_idx, step, team, acc));
  candidate.found = true;
  candidate.cost = cost_obj.first;
  candidate.objective = cost_obj.second;
  candidate.members = std::move(team);
  return candidate;
}

Result<TeamResult> DistributedFormer::Form(const Task& task, Rng* rng,
                                           FormCommStats* comm) {
  FormCommStats acc;
  const CommStats before = transport_->stats();
  const auto finish = [&] {
    acc.comm = Delta(transport_->stats(), before);
    if (comm != nullptr) *comm = acc;
  };

  TeamResult result;
  if (task.empty()) {
    result.found = true;
    finish();
    return result;
  }
  const uint32_t run = ++run_counter_;

  std::vector<SkillId> all_skills(task.skills().begin(), task.skills().end());
  const SkillId first =
      SelectSkillByPolicy(params_.skill_policy, skills_, index_, all_skills);
  std::vector<NodeId> seeds =
      GreedySeedSet(skills_, first, params_.max_seeds, rng);

  Message begin;
  begin.type = MsgType::kFormBegin;
  begin.run = run;
  begin.task_skills.assign(task.skills().begin(), task.skills().end());
  begin.user_policy = static_cast<uint8_t>(params_.user_policy);
  begin.pool_cap = params_.most_compatible_pool_cap;
  if (Status st = Broadcast(begin); !st.ok()) {
    AbortRun(run);
    finish();
    return st;
  }

  // Per-seed forked streams in seed order — the single-node consumption.
  std::vector<Rng> seed_rngs;
  if (params_.user_policy == UserPolicy::kRandom) {
    TFSN_CHECK(rng != nullptr);
    seed_rngs.reserve(seeds.size());
    for (size_t i = 0; i < seeds.size(); ++i) seed_rngs.push_back(rng->Fork());
  }

  std::vector<TeamResult> candidates;
  for (size_t i = 0; i < seeds.size(); ++i) {
    Rng* seed_rng = seed_rngs.empty() ? nullptr : &seed_rngs[i];
    Result<TeamResult> r = CompleteSeed(run, static_cast<uint32_t>(i),
                                        seeds[i], task, seed_rng, &acc);
    if (!r.ok()) {
      AbortRun(run);
      finish();
      return r.status();
    }
    if (r->found) candidates.push_back(std::move(*r));
  }
  result.seeds_tried = static_cast<uint32_t>(seeds.size());
  result.seeds_succeeded = static_cast<uint32_t>(candidates.size());

  // The single-node merge: strictly better objective, then smaller team.
  const TeamResult* best = nullptr;
  for (const TeamResult& c : candidates) {
    if (best == nullptr || c.objective < best->objective ||
        (c.objective == best->objective &&
         c.members.size() < best->members.size())) {
      best = &c;
    }
  }
  if (best != nullptr) {
    result.found = true;
    result.members = best->members;
    result.cost = best->cost;
    result.objective = best->objective;
  }
  finish();
  return result;
}

}  // namespace tfsn
