// Deterministic partitioning of the node id space into S shards.
//
// The sharded formation engine (distributed_former.h) assigns every node —
// and therefore every holder of every skill — to exactly one shard; that
// shard's worker owns the node's compatibility row and evaluates the node
// whenever it is a candidate in a greedy step. Both strategies are pure
// functions of (strategy, num_nodes, num_shards), so every participant of
// a formation run can compute the same plan locally and no plan state ever
// crosses the transport.
//
//   kRange — contiguous blocks of ceil(n / S) ids: shard 0 owns the lowest
//            ids, shard S-1 the highest. Owned sets are intervals, so the
//            concatenation of per-shard candidate lists in shard order is
//            globally id-sorted (the coordinator's RANDOM-policy rank
//            selection exploits this).
//   kHash  — SplitMix64-mixed id modulo S: spreads dense id regions (and
//            skill-correlated id clusters) evenly across shards at the
//            price of id-interleaved ownership.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/signed_graph.h"

namespace tfsn {

/// How node ids map to shards.
enum class ShardStrategy : uint8_t {
  kHash = 0,
  kRange = 1,
};

const char* ShardStrategyName(ShardStrategy s);

/// Parses a name as produced by ShardStrategyName (case-insensitive).
/// Returns false (leaving *out untouched) on unknown names.
bool ParseShardStrategy(const std::string& name, ShardStrategy* out);

/// The (pure, replicable) node -> shard map for one formation engine.
class ShardPlan {
 public:
  ShardPlan() = default;

  /// Plan for `num_shards` >= 1 shards over ids [0, num_nodes).
  ShardPlan(ShardStrategy strategy, uint32_t num_nodes, uint32_t num_shards);

  ShardStrategy strategy() const { return strategy_; }
  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t num_shards() const { return num_shards_; }

  /// Owning shard of node `u` (u < num_nodes()).
  uint32_t ShardOf(NodeId u) const {
    if (strategy_ == ShardStrategy::kRange) return u / block_;
    return static_cast<uint32_t>(Mix(u) % num_shards_);
  }

  /// Node ids owned by `shard`, ascending. May be empty (more shards than
  /// nodes, or a hash shard that drew nothing).
  std::vector<NodeId> OwnedNodes(uint32_t shard) const;

  /// True when owned id sets are intervals ordered by shard id — i.e.
  /// per-shard ascending lists concatenated in shard order are globally
  /// sorted.
  bool IdOrderedByShard() const { return strategy_ == ShardStrategy::kRange; }

 private:
  /// SplitMix64 finalizer — a fixed bijective mix so the hash strategy is
  /// identical on every platform and in every process of a future
  /// multi-process transport.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  ShardStrategy strategy_ = ShardStrategy::kHash;
  uint32_t num_nodes_ = 0;
  uint32_t num_shards_ = 1;
  uint32_t block_ = 1;  // kRange block width: ceil(num_nodes / num_shards)
};

}  // namespace tfsn
