// A shard worker of the sharded formation engine.
//
// Each worker owns the compatibility rows of its ShardPlan partition: a
// private oracle (and row cache) over the shared graph, prewarmed with the
// owned slice of the task's holder universe at kFormBegin. Per greedy step
// the worker evaluates *its* candidates — holders of the requested skill
// that it owns, compatible with the whole current team — and replies with
// the local argmax (or just the candidate count for the RANDOM policy).
// Rows of remote team members arrive as kRowSlice messages from the
// member's owner, restricted to this worker's universe slice, so candidate
// evaluation never touches another shard's oracle.
//
// Run() is a single-threaded message loop over the transport; all worker
// state is confined to that thread. The `dist.worker_stall` fault point
// makes the loop drop one (or more) received messages, modeling a stalled
// worker: the coordinator's bounded gather then times out and the run
// degrades to a typed error.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/compat/compatibility.h"
#include "src/dist/message.h"
#include "src/dist/shard_plan.h"
#include "src/dist/transport.h"
#include "src/skills/skills.h"
#include "src/team/greedy.h"
#include "src/util/status.h"

namespace tfsn {

/// Builds one worker's private oracle over the shared graph. Called once
/// per worker at construction; every worker must get an equivalently
/// configured oracle or the bit-identity contract is void.
using OracleFactory =
    std::function<std::unique_ptr<CompatibilityOracle>(const SignedGraph&)>;

/// Per-worker tuning.
struct ShardWorkerOptions {
  /// Threads for the kFormBegin prewarm of the owned universe rows.
  uint32_t prewarm_threads = 1;
  /// Bounded wait for a remote team member's row slice (milliseconds).
  int64_t recv_timeout_ms = 10'000;
};

/// One shard's row owner + candidate evaluator. Construct, then call Run()
/// from the worker's thread; it serves until the transport closes.
class ShardWorker {
 public:
  ShardWorker(uint32_t shard, const SignedGraph& graph,
              const SkillAssignment& skills, const ShardPlan& plan,
              Transport* transport, OracleFactory oracle_factory,
              ShardWorkerOptions options);

  /// Message loop; returns when the transport closes.
  void Run();

 private:
  /// A remote team member's row restricted to this shard's universe slice
  /// (comp bits packed 64 per word, distances parallel to the slice).
  struct Slice {
    std::vector<uint64_t> comp;
    std::vector<uint32_t> dist;
  };

  void Dispatch(const Message& msg);
  void HandleFormBegin(const Message& msg);
  void HandleEvalStep(const Message& msg);
  void HandleCountLe(const Message& msg);
  void HandlePickRank(const Message& msg);
  void HandleCostEval(const Message& msg);

  /// Makes `member`'s row state available for candidate evaluation: owned
  /// members are fetched from the oracle and their slices scattered to the
  /// peer shards; remote members are awaited as kRowSlice messages (with a
  /// bounded wait). DeadlineExceeded / Unavailable when the slice never
  /// arrives.
  Status AbsorbNewMember(const Message& msg);

  /// Directed row lookups row(x) -> v for team member x (owned row or
  /// received slice) against owned candidate v. Internal error when the
  /// member's row state is missing (a dropped message upstream).
  Status DirComp(NodeId x, NodeId v, bool* out) const;
  Status DirDist(NodeId x, NodeId v, uint32_t* out) const;

  /// Pair semantics matching CompatibilityOracle::Compatible/Distance for
  /// (team member x, owned candidate v) — including the SBPH symmetric
  /// closure, whose reverse direction reads the candidate's own row.
  Status PairCompatible(NodeId x, NodeId v, bool* out);
  Status PairDistance(NodeId x, NodeId v, uint32_t* out);

  void Reply(const Message& req, MsgType type, Message msg);
  void ReplyError(const Message& req, MsgType type, const Status& st);
  void ResetSeedState();

  /// Parks a kRowSlice that raced ahead of the kFormBegin / kEvalStep it
  /// belongs to (the owner can process its copy of a broadcast and
  /// scatter before we have processed ours). Keyed by (run, seed,
  /// member); AbsorbNewMember adopts it once our epoch catches up.
  void BufferSlice(const Message& msg);

  const uint32_t shard_;
  const SignedGraph& graph_;
  const SkillAssignment& skills_;
  const ShardPlan& plan_;
  Transport* const transport_;
  const ShardWorkerOptions options_;
  std::unique_ptr<CompatibilityOracle> oracle_;
  const bool sbph_;

  // ---- Run state (reset by kFormBegin) -----------------------------------
  bool run_active_ = false;
  uint32_t run_ = 0;
  UserPolicy user_policy_ = UserPolicy::kMinDistance;
  uint32_t pool_cap_ = 0;
  /// The task's holder universe partitioned by owning shard (ascending
  /// within each shard); universe_by_shard_[shard_] is *our* slice — the
  /// only nodes we can ever evaluate as candidates.
  std::vector<std::vector<NodeId>> universe_by_shard_;
  /// Universe node (owned by us) -> index into our slice; slice vectors
  /// from peers are indexed by this. Lookups only (never iterated).
  std::unordered_map<NodeId, uint32_t> local_index_;

  // ---- Seed state (reset at step 0 of each seed) -------------------------
  uint32_t seed_ = 0;
  std::vector<NodeId> team_;
  std::map<NodeId, std::shared_ptr<const CompatibilityOracle::Row>> own_rows_;
  std::map<NodeId, Slice> slices_;
  /// Early-arrival slices from the current or a future epoch, waiting for
  /// this worker to catch up; pruned of stale epochs on adoption.
  std::map<std::tuple<uint32_t, uint32_t, NodeId>, Slice> pending_slices_;
  /// Candidates of the last kEvalStep (ascending); kCountLe / kPickRank
  /// resolve the RANDOM policy's global rank against this list.
  std::vector<NodeId> candidates_;
  uint32_t candidates_step_ = 0;
};

}  // namespace tfsn
