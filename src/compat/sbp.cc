#include "src/compat/sbp.h"

#include <algorithm>
#include <deque>

#include "src/util/logging.h"

namespace tfsn {

// ---------------------------------------------------------------------------
// Exact search
// ---------------------------------------------------------------------------

SbpExactSearch::SbpExactSearch(const SignedGraph& g, SbpExactParams params)
    : g_(g), params_(params), node_side_(g.num_nodes(), 0) {}

bool SbpExactSearch::ChordConsistent(NodeId x, int8_t side) const {
  // Adaptive: either scan x's adjacency testing path membership via
  // node_side_, or scan the path testing edges via binary search — whichever
  // is cheaper for this node.
  const auto nbrs = g_.Neighbors(x);
  const size_t path_cost = path_.size() * 8;  // ~log(deg) per lookup
  if (nbrs.size() <= path_cost) {
    for (const Neighbor& nb : nbrs) {
      int8_t other = node_side_[nb.to];
      if (other == 0) continue;  // not on path
      Sign expected = side * other > 0 ? Sign::kPositive : Sign::kNegative;
      if (nb.sign != expected) return false;
    }
    return true;
  }
  for (NodeId y : path_) {
    auto sign = g_.EdgeSign(x, y);
    if (!sign) continue;
    Sign expected = side * node_side_[y] > 0 ? Sign::kPositive : Sign::kNegative;
    if (*sign != expected) return false;
  }
  return true;
}

bool SbpExactSearch::Dfs(NodeId v, Sign target_sign, uint32_t depth_left) {
  if (exhausted_) return false;
  NodeId u = path_.back();
  if (++expansions_ > params_.expansion_budget) {
    exhausted_ = true;
    return false;
  }
  for (const Neighbor& nb : g_.Neighbors(u)) {
    NodeId x = nb.to;
    if (node_side_[x] != 0) continue;  // already on path (simple paths only)
    if (depth_left == 0) continue;     // cannot extend
    if (1 + dist_to_target_[x] > depth_left && x != v) continue;  // prune
    int8_t side = nb.sign == Sign::kPositive ? node_side_[u]
                                             : static_cast<int8_t>(-node_side_[u]);
    if (x == v) {
      // Path sign == +1 iff v lands on the source's side.
      Sign path_sign = side > 0 ? Sign::kPositive : Sign::kNegative;
      if (path_sign != target_sign) continue;
      if (!ChordConsistent(x, side)) continue;
      path_.push_back(x);
      return true;
    }
    if (!ChordConsistent(x, side)) continue;
    path_.push_back(x);
    node_side_[x] = side;
    if (Dfs(v, target_sign, depth_left - 1)) return true;
    node_side_[x] = 0;
    path_.pop_back();
  }
  return false;
}

SbpPairResult SbpExactSearch::ShortestBalancedPath(NodeId u, NodeId v,
                                                   Sign target_sign) {
  TFSN_CHECK_NE(u, v);
  SbpPairResult result;
  dist_to_target_ = BfsDistances(g_, v);
  if (dist_to_target_[u] == kUnreachable) return result;  // disconnected
  expansions_ = 0;
  exhausted_ = false;
  // Iterative deepening: the first depth at which a balanced path of the
  // requested sign appears is, by construction, the minimum length.
  for (uint32_t depth = std::max(1u, dist_to_target_[u]);
       depth <= params_.max_depth; ++depth) {
    path_.assign(1, u);
    node_side_.assign(g_.num_nodes(), 0);
    node_side_[u] = +1;
    if (Dfs(v, target_sign, depth)) {
      result.length = static_cast<uint32_t>(path_.size()) - 1;
      result.witness = path_;
      node_side_.assign(g_.num_nodes(), 0);
      return result;
    }
    node_side_.assign(g_.num_nodes(), 0);
    if (exhausted_) break;
  }
  result.exhausted = exhausted_;
  return result;
}

bool SbpExactSearch::Compatible(NodeId u, NodeId v) {
  if (u == v) return true;
  return ShortestBalancedPath(u, v, Sign::kPositive).length.has_value();
}

// ---------------------------------------------------------------------------
// SBPH heuristic
// ---------------------------------------------------------------------------

namespace {

// State index: node * 2 + (side == -1).
inline size_t StateIndex(NodeId node, int8_t side) {
  return static_cast<size_t>(node) * 2 + (side < 0 ? 1 : 0);
}

}  // namespace

SbphResult SbphFromSource(const SignedGraph& g, NodeId q, uint32_t max_depth) {
  const uint32_t n = g.num_nodes();
  SbphResult out;
  out.pos_dist.assign(n, kUnreachable);
  out.neg_dist.assign(n, kUnreachable);
  out.pos_dist[q] = 0;

  // Label-setting BFS over (node, side) states. Each labelled state stores
  // its parent state so the unique stored path can be reconstructed for the
  // chord-consistency check (the "prefix property" heuristic: only one
  // representative path per state is kept, so balanced paths whose prefixes
  // are not themselves stored are missed — exactly the paper's SBPH).
  constexpr uint32_t kNoParent = static_cast<uint32_t>(-1);
  std::vector<uint32_t> dist(2 * static_cast<size_t>(n), kUnreachable);
  std::vector<uint32_t> parent(2 * static_cast<size_t>(n), kNoParent);
  const size_t root = StateIndex(q, +1);
  dist[root] = 0;

  std::deque<uint32_t> queue{static_cast<uint32_t>(root)};
  std::vector<NodeId> path_nodes;     // reconstruction scratch
  std::vector<int8_t> node_side(n, 0);  // side per path node, 0 = off path

  while (!queue.empty()) {
    uint32_t state = queue.front();
    queue.pop_front();
    NodeId u = static_cast<NodeId>(state / 2);
    int8_t u_side = state % 2 == 0 ? +1 : -1;
    if (dist[state] >= max_depth) continue;

    // Reconstruct the stored path for this state and mark sides.
    path_nodes.clear();
    for (uint32_t s = state; s != kNoParent; s = parent[s]) {
      NodeId node = static_cast<NodeId>(s / 2);
      path_nodes.push_back(node);
      node_side[node] = s % 2 == 0 ? +1 : -1;
    }

    for (const Neighbor& nb : g.Neighbors(u)) {
      NodeId x = nb.to;
      if (node_side[x] != 0) continue;  // would repeat a path node
      int8_t x_side = nb.sign == Sign::kPositive ? u_side
                                                 : static_cast<int8_t>(-u_side);
      size_t next = StateIndex(x, x_side);
      if (dist[next] != kUnreachable) continue;  // already labelled

      // Chord check: every edge from x into the stored path must match the
      // sides. Adaptive direction as in the exact engine.
      bool consistent = true;
      const auto x_nbrs = g.Neighbors(x);
      if (x_nbrs.size() <= path_nodes.size() * 8) {
        for (const Neighbor& xn : x_nbrs) {
          int8_t other = node_side[xn.to];
          if (other == 0) continue;
          Sign expected =
              x_side * other > 0 ? Sign::kPositive : Sign::kNegative;
          if (xn.sign != expected) {
            consistent = false;
            break;
          }
        }
      } else {
        for (NodeId y : path_nodes) {
          auto sign = g.EdgeSign(x, y);
          if (!sign) continue;
          Sign expected =
              x_side * node_side[y] > 0 ? Sign::kPositive : Sign::kNegative;
          if (*sign != expected) {
            consistent = false;
            break;
          }
        }
      }
      if (!consistent) continue;

      dist[next] = dist[state] + 1;
      parent[next] = state;
      queue.push_back(static_cast<uint32_t>(next));
      auto& slot = x_side > 0 ? out.pos_dist[x] : out.neg_dist[x];
      slot = std::min(slot, dist[next]);
    }

    // Unmark.
    for (NodeId node : path_nodes) node_side[node] = 0;
  }
  return out;
}

}  // namespace tfsn
