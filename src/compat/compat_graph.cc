#include "src/compat/compat_graph.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tfsn {

CompatibilityMatrix CompatibilityMatrix::Build(CompatibilityOracle* oracle) {
  CompatibilityMatrix m;
  const uint32_t n = oracle->graph().num_nodes();
  m.n_ = n;
  m.bits_.assign(static_cast<size_t>(n) * n, 0);
  for (NodeId u = 0; u < n; ++u) {
    const auto& row = oracle->GetRow(u);
    for (NodeId v = 0; v < n; ++v) {
      if (row.comp[v]) m.bits_[static_cast<size_t>(u) * n + v] = 1;
    }
    m.bits_[static_cast<size_t>(u) * n + u] = 1;
  }
  // Symmetric closure (SBPH rows are directional; the relation is the
  // union of directions — see CompatibilityOracle::Compatible).
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      uint8_t either = m.bits_[static_cast<size_t>(u) * n + v] |
                       m.bits_[static_cast<size_t>(v) * n + u];
      m.bits_[static_cast<size_t>(u) * n + v] = either;
      m.bits_[static_cast<size_t>(v) * n + u] = either;
      m.pairs_ += either;
    }
  }
  return m;
}

double CompatibilityMatrix::density() const {
  if (n_ < 2) return 1.0;
  double all = static_cast<double>(n_) * (n_ - 1) / 2.0;
  return static_cast<double>(pairs_) / all;
}

uint32_t CompatibilityMatrix::CompatDegree(NodeId u) const {
  TFSN_CHECK_LT(u, n_);
  uint32_t degree = 0;
  for (NodeId v = 0; v < n_; ++v) {
    degree += v != u && Compatible(u, v);
  }
  return degree;
}

bool CompatibilityMatrix::IsClique(const std::vector<NodeId>& team) const {
  for (size_t i = 0; i < team.size(); ++i) {
    for (size_t j = i + 1; j < team.size(); ++j) {
      if (!Compatible(team[i], team[j])) return false;
    }
  }
  return true;
}

std::vector<NodeId> CompatibilityMatrix::GreedyMaximalClique(
    NodeId seed) const {
  TFSN_CHECK_LT(seed, n_);
  std::vector<NodeId> order(n_);
  for (NodeId u = 0; u < n_; ++u) order[u] = u;
  std::vector<uint32_t> degree(n_);
  for (NodeId u = 0; u < n_; ++u) degree[u] = CompatDegree(u);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
  });
  std::vector<NodeId> clique{seed};
  for (NodeId u : order) {
    if (u == seed) continue;
    bool fits = true;
    for (NodeId member : clique) {
      if (!Compatible(u, member)) {
        fits = false;
        break;
      }
    }
    if (fits) clique.push_back(u);
  }
  std::sort(clique.begin(), clique.end());
  return clique;
}

}  // namespace tfsn
