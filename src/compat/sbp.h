// Structurally Balanced Path (SBP) compatibility — Definition 3.4.
//
// (u,v) are SBP-compatible iff some *positive* path P between them has a
// structurally balanced induced subgraph G[P]. Balance of G[P] reduces to a
// colouring test: walking P assigns each node a side (flip across negative
// edges); G[P] is balanced iff every edge between path nodes has the sign
// implied by its endpoints' sides. The check is incremental: when a search
// appends node x to a balanced path P, only x's edges into P need checking.
//
// Two engines are provided:
//  * SbpExactSearch — iterative-deepening DFS over simple paths. Finds the
//    exact shortest balanced path of a requested sign, subject to a depth
//    cap and an expansion budget (the exact problem is exponential; the
//    paper also computes SBP only on the small Slashdot graph).
//  * SbphFromSource — the paper's heuristic: a label-setting BFS over
//    (node, side) states that keeps a single representative balanced path
//    per state, i.e. only paths with the prefix property are counted.
//    Figure 1(b) of the paper shows why this under-approximates SBP.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/bfs.h"
#include "src/graph/signed_graph.h"

namespace tfsn {

/// Tuning for the exact SBP search.
struct SbpExactParams {
  /// Maximum path length (edges) explored. Balanced paths longer than this
  /// are not found; the paper's graphs have diameter <= 11.
  uint32_t max_depth = 16;
  /// Node-expansion budget per pair; the search reports `exhausted` when it
  /// runs out (a "not found" answer is then inconclusive).
  uint64_t expansion_budget = 2'000'000;
};

/// Outcome of an exact SBP query for one pair.
struct SbpPairResult {
  /// Length of the shortest balanced path of the requested sign, if found.
  std::optional<uint32_t> length;
  /// One witness path (node sequence, inclusive of endpoints) when found.
  std::vector<NodeId> witness;
  /// True if the expansion budget ran out before the space was exhausted.
  bool exhausted = false;
};

/// Exact engine; holds per-instance scratch so repeated queries are cheap.
/// Not thread-safe; use one instance per thread.
class SbpExactSearch {
 public:
  explicit SbpExactSearch(const SignedGraph& g, SbpExactParams params = {});

  /// Shortest structurally balanced path from u to v whose sign is
  /// `target_sign`. Iterative deepening guarantees the returned length is
  /// minimal among balanced paths of that sign (within the depth cap).
  /// Requires u != v.
  SbpPairResult ShortestBalancedPath(NodeId u, NodeId v, Sign target_sign);

  /// SBP-compatibility: u == v, or a positive balanced u-v path exists.
  bool Compatible(NodeId u, NodeId v);

 private:
  bool Dfs(NodeId v, Sign target_sign, uint32_t depth_left);
  // Checks that appending x (with side `side`) keeps the induced subgraph
  // balanced: every edge from x to a current path node must match the sides.
  bool ChordConsistent(NodeId x, int8_t side) const;

  const SignedGraph& g_;
  SbpExactParams params_;
  std::vector<NodeId> path_;
  std::vector<int8_t> node_side_;         // node -> side if on path, else 0
  std::vector<uint32_t> dist_to_target_;  // BFS lower bound for pruning
  uint64_t expansions_ = 0;
  bool exhausted_ = false;
};

/// Per-source output of the SBPH heuristic.
struct SbphResult {
  /// Shortest heuristically-found balanced positive path length per node;
  /// kUnreachable when none was found.
  std::vector<uint32_t> pos_dist;
  /// Same for balanced negative paths.
  std::vector<uint32_t> neg_dist;
};

/// Runs the SBPH label-setting search from `q`, exploring paths of at most
/// `max_depth` edges (kUnreachable = unbounded).
SbphResult SbphFromSource(const SignedGraph& g, NodeId q,
                          uint32_t max_depth = kUnreachable);

}  // namespace tfsn
