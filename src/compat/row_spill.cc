#include "src/compat/row_spill.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/util/crc32.h"
#include "src/util/fault_injection.h"

namespace tfsn {

namespace {

// 'T' 'F' 'R' '1' in file order.
constexpr uint32_t kRecordMagic = 0x31524654u;
constexpr size_t kRecordHeaderBytes = 20;
// Spilled rows are at most a few hundred KB (a compressed CompatRow);
// anything larger in a header is structural corruption, not data.
constexpr uint32_t kMaxPayloadBytes = 1u << 28;

struct RecordHeader {
  uint32_t magic;
  uint64_t key;
  uint32_t len;
  uint32_t crc;
};

void SerializeHeader(const RecordHeader& h, uint8_t* out) {
  std::memcpy(out, &h.magic, 4);
  std::memcpy(out + 4, &h.key, 8);
  std::memcpy(out + 12, &h.len, 4);
  std::memcpy(out + 16, &h.crc, 4);
}

void ParseHeader(const uint8_t* in, RecordHeader* h) {
  std::memcpy(&h->magic, in, 4);
  std::memcpy(&h->key, in + 4, 8);
  std::memcpy(&h->len, in + 12, 4);
  std::memcpy(&h->crc, in + 16, 4);
}

std::string SegmentName(uint32_t key_hi) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "rows-%08x.seg", key_hi);
  return buf;
}

}  // namespace

RowSpillStore::RowSpillStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;
  ok_ = true;

  // Rebuild the index from whatever segments a previous run left behind
  // (sorted for a deterministic segment order).
  std::vector<uint32_t> found;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    uint32_t key_hi = 0;
    if (std::sscanf(name.c_str(), "rows-%x.seg", &key_hi) == 1 &&
        name == SegmentName(key_hi)) {
      found.push_back(key_hi);
    }
  }
  std::sort(found.begin(), found.end());
  MutexLock lock(&mu_);
  for (uint32_t key_hi : found) OpenSegmentLocked(key_hi, /*scan=*/true);
}

RowSpillStore::~RowSpillStore() {
  MutexLock lock(&mu_);
  for (Segment& seg : segments_) {
    if (seg.map != nullptr) ::munmap(seg.map, seg.map_len);
    if (seg.fd >= 0) ::close(seg.fd);
  }
}

bool RowSpillStore::OpenSegmentLocked(uint32_t key_hi, bool scan) {
  Segment seg;
  seg.key_hi = key_hi;
  seg.path = dir_ + "/" + SegmentName(key_hi);
  seg.fd = ::open(seg.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (seg.fd < 0) return false;
  struct stat st {};
  if (::fstat(seg.fd, &st) != 0) {
    ::close(seg.fd);
    return false;
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  const uint32_t segment_id = static_cast<uint32_t>(segments_.size());

  uint64_t pos = 0;
  if (scan && file_size >= kRecordHeaderBytes) {
    std::vector<uint8_t> payload;
    while (pos + kRecordHeaderBytes <= file_size) {
      uint8_t raw[kRecordHeaderBytes];
      if (::pread(seg.fd, raw, sizeof(raw), static_cast<off_t>(pos)) !=
          static_cast<ssize_t>(sizeof(raw))) {
        break;
      }
      RecordHeader header{};
      ParseHeader(raw, &header);
      if (header.magic != kRecordMagic || header.len > kMaxPayloadBytes ||
          pos + kRecordHeaderBytes + header.len > file_size ||
          (header.key >> 32) != key_hi) {
        // Structurally broken (the shape a crash mid-append leaves): the
        // rest of the file is unusable as a record stream.
        ++stats_.corrupt_dropped;
        break;
      }
      payload.resize(header.len);
      if (::pread(seg.fd, payload.data(), header.len,
                  static_cast<off_t>(pos + kRecordHeaderBytes)) !=
          static_cast<ssize_t>(header.len)) {
        ++stats_.corrupt_dropped;
        break;
      }
      if (!TFSN_FAULT_POINT("row_spill.scan_corrupt") &&
          Crc32(payload.data(), payload.size()) == header.crc) {
        // Later records supersede earlier ones for the same key.
        auto [it, inserted] =
            index_.try_emplace(header.key,
                               Location{segment_id, pos, header.len});
        if (!inserted) {
          it->second = Location{segment_id, pos, header.len};
        } else {
          ++stats_.records;
        }
      } else {
        // Torn payload with an intact shell: skip just this record.
        ++stats_.corrupt_dropped;
      }
      pos += kRecordHeaderBytes + header.len;
    }
    if (pos < file_size) {
      // Drop the broken tail so future appends produce a clean stream.
      if (::ftruncate(seg.fd, static_cast<off_t>(pos)) != 0) {
        // Could not truncate: appends would land after garbage. Disable
        // appends by leaving size at the broken offset anyway — the scan
        // on the *next* open stops at the same place.
      }
    }
  } else if (!scan) {
    pos = file_size;
  }
  seg.size = pos;
  segment_of_hi_.emplace(key_hi, segment_id);
  segments_.push_back(seg);
  ++stats_.segments;
  stats_.file_bytes += seg.size;
  return true;
}

RowSpillStore::Segment* RowSpillStore::SegmentForLocked(uint32_t key_hi,
                                                        bool create) {
  auto it = segment_of_hi_.find(key_hi);
  if (it != segment_of_hi_.end()) return &segments_[it->second];
  if (!create) return nullptr;
  if (!OpenSegmentLocked(key_hi, /*scan=*/false)) return nullptr;
  return &segments_.back();
}

bool RowSpillStore::EnsureMappedLocked(Segment* seg, uint64_t end) {
  if (end <= seg->map_len) return true;
  // Injected mmap failure: the read degrades to a miss (recompute); the
  // segment keeps its previous mapping, if any, for records it covers.
  if (TFSN_FAULT_POINT("row_spill.mmap_fail")) return false;
  if (seg->map != nullptr) {
    ::munmap(seg->map, seg->map_len);
    seg->map = nullptr;
    seg->map_len = 0;
  }
  void* map = ::mmap(nullptr, seg->size, PROT_READ, MAP_SHARED, seg->fd, 0);
  if (map == MAP_FAILED) return false;
  seg->map = static_cast<uint8_t*>(map);
  seg->map_len = seg->size;
  return end <= seg->map_len;
}

bool RowSpillStore::Append(uint64_t key, std::span<const uint8_t> payload) {
  if (!ok_ || payload.size() > kMaxPayloadBytes) return false;
  RecordHeader header;
  header.magic = kRecordMagic;
  header.key = key;
  header.len = static_cast<uint32_t>(payload.size());
  header.crc = Crc32(payload.data(), payload.size());

  std::vector<uint8_t> record(kRecordHeaderBytes + payload.size());
  SerializeHeader(header, record.data());
  std::memcpy(record.data() + kRecordHeaderBytes, payload.data(),
              payload.size());

  MutexLock lock(&mu_);
  Segment* seg = SegmentForLocked(static_cast<uint32_t>(key >> 32),
                                  /*create=*/true);
  if (seg == nullptr) return false;
  const uint64_t offset = seg->size;
  // Injected ENOSPC: fail before any byte lands (the previous record for
  // the key, if any, stays served — exactly the contract of a real
  // pwrite ENOSPC).
  if (TFSN_FAULT_POINT("row_spill.append_enospc")) return false;
  // Injected short write: persist only half the record, advance the
  // append position over the torn bytes, and report failure — the shape
  // a crash mid-append leaves on disk. The torn record is never indexed;
  // the reopen scan truncates the stream at the tear.
  if (TFSN_FAULT_POINT("row_spill.append_short_write")) {
    const size_t half = record.size() / 2;
    if (::pwrite(seg->fd, record.data(), half,
                 static_cast<off_t>(offset)) == static_cast<ssize_t>(half)) {
      seg->size += half;
      stats_.file_bytes += half;
    }
    return false;
  }
  if (::pwrite(seg->fd, record.data(), record.size(),
               static_cast<off_t>(offset)) !=
      static_cast<ssize_t>(record.size())) {
    return false;
  }
  seg->size += record.size();
  stats_.file_bytes += record.size();
  const uint32_t segment_id =
      static_cast<uint32_t>(seg - segments_.data());
  auto [it, inserted] =
      index_.try_emplace(key, Location{segment_id, offset, header.len});
  if (!inserted) {
    it->second = Location{segment_id, offset, header.len};
  } else {
    ++stats_.records;
  }
  ++stats_.appends;
  return true;
}

bool RowSpillStore::Read(uint64_t key, std::vector<uint8_t>* payload) {
  if (!ok_) return false;
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  const Location loc = it->second;
  Segment* seg = &segments_[loc.segment];
  const uint64_t end = loc.offset + kRecordHeaderBytes + loc.len;
  if (!EnsureMappedLocked(seg, end)) return false;
  RecordHeader header{};
  ParseHeader(seg->map + loc.offset, &header);
  payload->assign(seg->map + loc.offset + kRecordHeaderBytes,
                  seg->map + end);
  // Injected bit rot: flip one payload bit after the copy so the CRC
  // check below catches it — the record degrades to a miss and is
  // deindexed, exercising the torn-after-indexing path.
  if (TFSN_FAULT_POINT("row_spill.read_crc_flip") && !payload->empty()) {
    (*payload)[0] ^= 0x01;
  }
  if (header.magic != kRecordMagic || header.len != loc.len ||
      Crc32(payload->data(), payload->size()) != header.crc) {
    // Torn after indexing: degrade to a miss and stop serving the record.
    index_.erase(it);
    --stats_.records;
    ++stats_.corrupt_dropped;
    return false;
  }
  ++stats_.reads;
  return true;
}

bool RowSpillStore::Contains(uint64_t key) {
  MutexLock lock(&mu_);
  return index_.find(key) != index_.end();
}

void RowSpillStore::Clear() {
  MutexLock lock(&mu_);
  index_.clear();
  stats_.records = 0;
  stats_.file_bytes = 0;
  for (Segment& seg : segments_) {
    if (seg.map != nullptr) {
      ::munmap(seg.map, seg.map_len);
      seg.map = nullptr;
      seg.map_len = 0;
    }
    if (seg.fd >= 0 && ::ftruncate(seg.fd, 0) == 0) seg.size = 0;
  }
}

RowSpillStats RowSpillStore::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace tfsn
