// RowSpillStore — tier 1 of the tiered row store (see row_cache.h): an
// mmap-backed, append-mostly on-disk home for evicted row blobs.
//
// Recomputing an evicted row costs a full signed BFS (~100 µs and up);
// re-reading its compressed blob from disk costs a memcpy out of a mapped
// segment. The cache therefore spills evicted blobs here instead of
// discarding them, and consults the store on a tier-0 miss before falling
// back to recompute.
//
// Layout: one segment file per key "kind" — the high 32 bits of the cache
// key, i.e. the oracle's (graph, relation, params) fingerprint — named
// rows-<hi32>.seg under the store directory. Records are appended
// sequentially; an in-memory index maps key -> (segment, offset, length).
// Re-spilling a key appends a fresh record and repoints the index (the old
// bytes become dead space — append-mostly, no compaction).
//
// Record layout (little-endian):
//   u32 magic   'TFR1'
//   u64 key
//   u32 len     payload bytes
//   u32 crc     CRC-32 of the payload
//   payload
//
// Crash consistency: opening a directory rescans every segment record by
// record. A structurally broken tail (bad magic, impossible length,
// truncated payload — the shape a crash mid-append leaves) ends the scan
// and the file is truncated to the last good record, so future appends
// stay well-formed. A record whose CRC does not match its bytes is
// skipped (never indexed, never served); the row is simply recomputed on
// next use. Reads verify the CRC again, so a record torn after indexing
// degrades to a miss, not corrupt data.
//
// Thread safety: all member functions are safe from any thread (one
// internal mutex; the store never calls back into the cache, so the
// cache-shard -> spill lock order is acyclic).
//
// The same lifetime hazard as RowCache applies (keys embed the graph by
// address): never reuse a spill directory across graph lifetimes without
// Clear().

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace tfsn {

/// Monotonic spill-store counters plus current occupancy.
struct RowSpillStats {
  uint64_t appends = 0;
  uint64_t reads = 0;
  /// Read or open-scan records rejected by CRC / structure checks.
  uint64_t corrupt_dropped = 0;
  /// Records currently indexed (live, latest version per key).
  uint64_t records = 0;
  /// Total on-disk bytes across segments (includes dead superseded
  /// records — append-mostly).
  uint64_t file_bytes = 0;
  uint64_t segments = 0;
};

class RowSpillStore {
 public:
  /// Opens (creating if needed) the store under `dir` and rebuilds the
  /// index from any existing segments (see crash-consistency notes above).
  explicit RowSpillStore(std::string dir);
  ~RowSpillStore();

  RowSpillStore(const RowSpillStore&) = delete;
  RowSpillStore& operator=(const RowSpillStore&) = delete;

  /// True when the directory could be created/opened; a dead store
  /// degrades every Append/Read to a no-op/miss rather than failing the
  /// caller.
  bool ok() const { return ok_; }

  /// Appends `payload` as the new record for `key`. Returns false on IO
  /// failure (the previous record for the key, if any, stays served).
  bool Append(uint64_t key, std::span<const uint8_t> payload);

  /// Reads the payload of `key` into `*payload` (CRC-verified). False on
  /// miss or verification failure.
  bool Read(uint64_t key, std::vector<uint8_t>* payload);

  /// True when a live record for `key` is indexed.
  bool Contains(uint64_t key);

  /// Drops the index and truncates every segment to zero bytes.
  void Clear();

  RowSpillStats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  struct Location {
    uint32_t segment;
    uint64_t offset;  // of the record header
    uint32_t len;     // payload bytes
  };
  struct Segment {
    uint32_t key_hi = 0;
    int fd = -1;
    uint64_t size = 0;      // valid bytes (append position)
    uint8_t* map = nullptr;  // read mapping; may lag behind size
    uint64_t map_len = 0;
    std::string path;
  };

  // Scans an existing segment file, indexing valid records; truncates a
  // structurally broken tail. Returns false when the file cannot be
  // opened.
  bool OpenSegmentLocked(uint32_t key_hi, bool scan) TFSN_REQUIRES(mu_);
  Segment* SegmentForLocked(uint32_t key_hi, bool create) TFSN_REQUIRES(mu_);
  // Ensures seg->map covers [0, seg->size); remaps on growth.
  bool EnsureMappedLocked(Segment* seg, uint64_t end) TFSN_REQUIRES(mu_);

  std::string dir_;
  bool ok_ = false;
  mutable Mutex mu_;
  std::vector<Segment> segments_ TFSN_GUARDED_BY(mu_);
  std::unordered_map<uint32_t, uint32_t> segment_of_hi_ TFSN_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Location> index_ TFSN_GUARDED_BY(mu_);
  RowSpillStats stats_ TFSN_GUARDED_BY(mu_);
};

}  // namespace tfsn
