#include "src/compat/compatibility.h"

#include <algorithm>
#include <cctype>

#include "src/compat/signed_bfs.h"
#include "src/graph/bfs.h"
#include "src/util/logging.h"

namespace tfsn {

const char* CompatKindName(CompatKind kind) {
  switch (kind) {
    case CompatKind::kDPE: return "DPE";
    case CompatKind::kSPA: return "SPA";
    case CompatKind::kSPM: return "SPM";
    case CompatKind::kSPO: return "SPO";
    case CompatKind::kSBPH: return "SBPH";
    case CompatKind::kSBP: return "SBP";
    case CompatKind::kNNE: return "NNE";
  }
  return "?";
}

bool ParseCompatKind(const std::string& name, CompatKind* out) {
  std::string upper;
  for (char c : name) upper += static_cast<char>(std::toupper(c));
  for (CompatKind kind : AllCompatKinds()) {
    if (upper == CompatKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::vector<CompatKind> AllCompatKinds() {
  return {CompatKind::kDPE,  CompatKind::kSPA, CompatKind::kSPM,
          CompatKind::kSPO,  CompatKind::kSBPH, CompatKind::kSBP,
          CompatKind::kNNE};
}

// ---------------------------------------------------------------------------
// Base class: row cache
// ---------------------------------------------------------------------------

bool CompatibilityOracle::Compatible(NodeId u, NodeId v) {
  if (u == v) return true;
  return GetRow(u).comp[v] != 0;
}

uint32_t CompatibilityOracle::Distance(NodeId u, NodeId v) {
  if (u == v) return 0;
  return GetRow(u).dist[v];
}

const CompatibilityOracle::Row& CompatibilityOracle::GetRow(NodeId q) {
  if (cache_index_.empty()) {
    cache_index_.assign(graph_->num_nodes(), -1);
  }
  int32_t slot = cache_index_[q];
  if (slot >= 0) return *cache_slots_[static_cast<size_t>(slot)].second;

  ++rows_computed_;
  auto row = std::make_unique<Row>(ComputeRow(q));
  // Normalize reflexivity.
  row->comp[q] = 1;
  row->dist[q] = 0;

  if (cache_slots_.size() < max_cached_rows_) {
    cache_index_[q] = static_cast<int32_t>(cache_slots_.size());
    cache_slots_.emplace_back(q, std::move(row));
    return *cache_slots_.back().second;
  }
  // FIFO eviction over a fixed-size slot array.
  size_t victim = eviction_cursor_;
  eviction_cursor_ = (eviction_cursor_ + 1) % cache_slots_.size();
  cache_index_[cache_slots_[victim].first] = -1;
  cache_slots_[victim] = {q, std::move(row)};
  cache_index_[q] = static_cast<int32_t>(victim);
  return *cache_slots_[victim].second;
}

// ---------------------------------------------------------------------------
// Concrete oracles
// ---------------------------------------------------------------------------

namespace {

/// DPE: compatible iff a direct positive edge. Distance = hop distance.
class DpeOracle final : public CompatibilityOracle {
 public:
  DpeOracle(const SignedGraph& g, const OracleParams& p)
      : CompatibilityOracle(g, p.max_cached_rows) {}
  CompatKind kind() const override { return CompatKind::kDPE; }

 protected:
  Row ComputeRow(NodeId q) override {
    Row row;
    row.dist = BfsDistances(graph(), q);
    row.comp.assign(graph().num_nodes(), 0);
    for (const Neighbor& nb : graph().Neighbors(q)) {
      if (nb.sign == Sign::kPositive) row.comp[nb.to] = 1;
    }
    return row;
  }
};

/// NNE: compatible iff no direct negative edge. Distance = hop distance.
class NneOracle final : public CompatibilityOracle {
 public:
  NneOracle(const SignedGraph& g, const OracleParams& p)
      : CompatibilityOracle(g, p.max_cached_rows) {}
  CompatKind kind() const override { return CompatKind::kNNE; }

 protected:
  Row ComputeRow(NodeId q) override {
    Row row;
    row.dist = BfsDistances(graph(), q);
    row.comp.assign(graph().num_nodes(), 1);
    for (const Neighbor& nb : graph().Neighbors(q)) {
      if (nb.sign == Sign::kNegative) row.comp[nb.to] = 0;
    }
    return row;
  }
};

/// SPA / SPM / SPO: derived from Algorithm 1 counts.
class SpOracle final : public CompatibilityOracle {
 public:
  SpOracle(const SignedGraph& g, CompatKind kind, const OracleParams& p)
      : CompatibilityOracle(g, p.max_cached_rows), kind_(kind) {}
  CompatKind kind() const override { return kind_; }

 protected:
  Row ComputeRow(NodeId q) override {
    SignedBfsResult r = SignedShortestPathCount(graph(), q);
    Row row;
    row.dist = std::move(r.dist);
    row.comp.assign(graph().num_nodes(), 0);
    for (NodeId x = 0; x < graph().num_nodes(); ++x) {
      if (row.dist[x] == kUnreachable) continue;
      switch (kind_) {
        case CompatKind::kSPA:
          row.comp[x] = r.num_pos[x] > 0 && r.num_neg[x] == 0;
          break;
        case CompatKind::kSPM:
          row.comp[x] = r.num_pos[x] >= r.num_neg[x];
          break;
        case CompatKind::kSPO:
          row.comp[x] = r.num_pos[x] > 0;
          break;
        default:
          TFSN_CHECK(false);
      }
    }
    return row;
  }

 private:
  CompatKind kind_;
};

/// SBPH: heuristic balanced-path search. Distance = shortest balanced
/// positive path found by the heuristic.
class SbphOracle final : public CompatibilityOracle {
 public:
  SbphOracle(const SignedGraph& g, const OracleParams& p)
      : CompatibilityOracle(g, p.max_cached_rows),
        max_depth_(p.sbph_max_depth) {}
  CompatKind kind() const override { return CompatKind::kSBPH; }

 protected:
  Row ComputeRow(NodeId q) override {
    SbphResult r = SbphFromSource(graph(), q, max_depth_);
    Row row;
    row.dist = std::move(r.pos_dist);
    row.comp.assign(graph().num_nodes(), 0);
    for (NodeId x = 0; x < graph().num_nodes(); ++x) {
      row.comp[x] = row.dist[x] != kUnreachable;
    }
    return row;
  }

 public:
  // The heuristic search is direction-dependent; the relation is defined as
  // the symmetric closure so that the Comp axioms of Section 2 hold.
  bool Compatible(NodeId u, NodeId v) override {
    if (u == v) return true;
    return GetRow(u).comp[v] != 0 || GetRow(v).comp[u] != 0;
  }
  uint32_t Distance(NodeId u, NodeId v) override {
    if (u == v) return 0;
    return std::min(GetRow(u).dist[v], GetRow(v).dist[u]);
  }

 private:
  uint32_t max_depth_;
};

/// SBP: exact engine, one iterative-deepening search per target.
class SbpOracle final : public CompatibilityOracle {
 public:
  SbpOracle(const SignedGraph& g, const OracleParams& p)
      : CompatibilityOracle(g, p.max_cached_rows), search_(g, p.sbp) {}
  CompatKind kind() const override { return CompatKind::kSBP; }

 protected:
  Row ComputeRow(NodeId q) override {
    Row row;
    const uint32_t n = graph().num_nodes();
    row.comp.assign(n, 0);
    row.dist.assign(n, kUnreachable);
    for (NodeId x = 0; x < n; ++x) {
      if (x == q) continue;
      SbpPairResult r = search_.ShortestBalancedPath(q, x, Sign::kPositive);
      if (r.length) {
        row.comp[x] = 1;
        row.dist[x] = *r.length;
      }
    }
    return row;
  }

 private:
  SbpExactSearch search_;
};

}  // namespace

std::unique_ptr<CompatibilityOracle> MakeOracle(const SignedGraph& g,
                                                CompatKind kind,
                                                OracleParams params) {
  switch (kind) {
    case CompatKind::kDPE:
      return std::make_unique<DpeOracle>(g, params);
    case CompatKind::kNNE:
      return std::make_unique<NneOracle>(g, params);
    case CompatKind::kSPA:
    case CompatKind::kSPM:
    case CompatKind::kSPO:
      return std::make_unique<SpOracle>(g, kind, params);
    case CompatKind::kSBPH:
      return std::make_unique<SbphOracle>(g, params);
    case CompatKind::kSBP:
      return std::make_unique<SbpOracle>(g, params);
  }
  TFSN_CHECK(false);
  return nullptr;
}

}  // namespace tfsn
