#include "src/compat/compatibility.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "src/compat/ms_signed_bfs.h"
#include "src/util/fnv1a.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace tfsn {

namespace {

// FNV-1a over the configuration so that oracles with different relations,
// kernels, parameters, or graphs can share one RowCache without key
// collisions (the fingerprint fills the high 32 bits of every key).
class ConfigHash {
 public:
  void Mix(uint64_t v) { h_.Mix(v); }
  uint64_t KeyBase() const { return (h_.digest() >> 32) << 32; }

 private:
  Fnv1a h_;
};

uint64_t MakeKeyBase(const SignedGraph* g, CompatKind kind, RowKernelFn kernel,
                     const RowKernelParams& p) {
  ConfigHash h;
  h.Mix(reinterpret_cast<uintptr_t>(g));
  h.Mix(static_cast<uint64_t>(kind));
  h.Mix(reinterpret_cast<uintptr_t>(kernel));
  h.Mix(p.sbp.max_depth);
  h.Mix(p.sbp.expansion_budget);
  h.Mix(p.sbph_max_depth);
  uint64_t theta_bits;
  static_assert(sizeof(theta_bits) == sizeof(p.threshold_theta));
  std::memcpy(&theta_bits, &p.threshold_theta, sizeof(theta_bits));
  h.Mix(theta_bits);
  return h.KeyBase();
}

std::shared_ptr<RowCache> PrivateCache(const OracleParams& params) {
  RowCacheOptions options;
  options.max_rows = params.max_cached_rows;
  options.max_bytes = params.cache_bytes;
  options.shards = 1;  // exact row-count semantics, no striping overhead
  options.compress = params.compress;
  options.spill = params.spill;
  return std::make_shared<RowCache>(options);
}

RowKernelParams KernelParamsOf(const OracleParams& params) {
  RowKernelParams kp;
  kp.sbp = params.sbp;
  kp.sbph_max_depth = params.sbph_max_depth;
  return kp;
}

}  // namespace

CompatibilityOracle::CompatibilityOracle(const SignedGraph& g, CompatKind kind,
                                         OracleParams params,
                                         std::shared_ptr<RowCache> cache)
    : CompatibilityOracle(g, kind, KernelForKind(kind), KernelParamsOf(params),
                          params, std::move(cache)) {}

CompatibilityOracle::CompatibilityOracle(const SignedGraph& g,
                                         CompatKind display_kind,
                                         RowKernelFn kernel,
                                         RowKernelParams kernel_params,
                                         OracleParams params,
                                         std::shared_ptr<RowCache> cache)
    : graph_(&g),
      kind_(display_kind),
      kernel_(kernel),
      kernel_params_(kernel_params),
      cache_(cache != nullptr ? std::move(cache) : PrivateCache(params)),
      key_base_(MakeKeyBase(&g, display_kind, kernel, kernel_params_)) {
  TFSN_CHECK(kernel_ != nullptr);
}

std::shared_ptr<const CompatibilityOracle::Row> CompatibilityOracle::FetchRow(
    NodeId q) {
  const uint64_t key = KeyFor(q);
  if (auto row = cache_->Get(key)) {
    // Fail fast on the one fingerprint hazard: a cache reused across graph
    // lifetimes where a dead graph's address was recycled (keys embed the
    // graph by address). Wrong-sized rows would otherwise read OOB.
    TFSN_CHECK_EQ(row->comp.size(), graph_->num_nodes());
    return row;
  }
  rows_computed_.fetch_add(1, std::memory_order_relaxed);
  return cache_->Insert(key, kernel_(*graph_, kernel_params_, q));
}

const CompatibilityOracle::Row& CompatibilityOracle::GetRow(NodeId q) {
  std::shared_ptr<const Row> row = FetchRow(q);
  const Row& ref = *row;
  // Pin so the returned reference survives eviction by concurrent sharers
  // (and the next kPinnedRows - 1 GetRow calls on this oracle).
  pins_[pin_cursor_] = std::move(row);
  pin_cursor_ = (pin_cursor_ + 1) % kPinnedRows;
  return ref;
}

std::shared_ptr<const CompatibilityOracle::Row>
CompatibilityOracle::GetRowShared(NodeId q) {
  return FetchRow(q);
}

bool CompatibilityOracle::Compatible(NodeId u, NodeId v) {
  if (u == v) return true;
  if (kind_ == CompatKind::kSBPH) {
    // Symmetric closure of the direction-dependent heuristic search.
    if (FetchRow(u)->comp[v] != 0) return true;
    return FetchRow(v)->comp[u] != 0;
  }
  return FetchRow(u)->comp[v] != 0;
}

uint32_t CompatibilityOracle::Distance(NodeId u, NodeId v) {
  if (u == v) return 0;
  if (kind_ == CompatKind::kSBPH) {
    return std::min(FetchRow(u)->dist[v], FetchRow(v)->dist[u]);
  }
  return FetchRow(u)->dist[v];
}

std::vector<std::shared_ptr<const CompatibilityOracle::Row>>
CompatibilityOracle::GetRows(std::span<const NodeId> sources,
                             uint32_t threads) {
  std::vector<std::shared_ptr<const Row>> out(sources.size());
  std::vector<size_t> missed;
  for (size_t i = 0; i < sources.size(); ++i) {
    out[i] = cache_->Get(KeyFor(sources[i]));
    if (out[i] == nullptr) {
      missed.push_back(i);
    } else {
      TFSN_CHECK_EQ(out[i]->comp.size(), graph_->num_nodes());
    }
  }
  if (missed.empty()) return out;

  // Compute each distinct missing source exactly once.
  std::unordered_map<NodeId, size_t> first_index;
  std::vector<size_t> work;
  for (size_t i : missed) {
    if (first_index.try_emplace(sources[i], i).second) work.push_back(i);
  }
  // Existence-only relations with the stock kernel go through the
  // bit-parallel engine: misses are grouped into 64-source blocks, each
  // block one traversal (ms_signed_bfs.h), blocks spread across workers.
  // Count-based relations (SPM, threshold) and custom kernels keep the
  // scalar per-source path. A lone miss is cheaper scalar, too.
  const bool batchable = kernel_ == KernelForKind(kind_) &&
                         MsBfsSupportsKind(kind_) && work.size() > 1;
  if (batchable) {
    const size_t blocks = (work.size() + kMsBfsBatchSize - 1) / kMsBfsBatchSize;
    ParallelForEach(blocks, ResolveThreads(threads), [&](uint64_t b) {
      const size_t begin = b * kMsBfsBatchSize;
      const size_t end = std::min(work.size(), begin + kMsBfsBatchSize);
      std::vector<NodeId> block;
      std::vector<size_t> out_index;
      block.reserve(end - begin);
      out_index.reserve(end - begin);
      for (size_t w = begin; w < end; ++w) {
        const size_t i = work[w];
        const NodeId q = sources[i];
        // Re-probe (uncounted) before paying for the traversal: a
        // concurrent sharer may have published the row since the probe
        // pass recorded the miss.
        if (auto row = cache_->Get(KeyFor(q), /*count_miss=*/false)) {
          out[i] = std::move(row);
        } else {
          block.push_back(q);
          out_index.push_back(i);
        }
      }
      if (block.empty()) return;
      std::vector<Row> rows = ComputeCompatRowBlock(*graph_, kind_, block);
      for (size_t k = 0; k < block.size(); ++k) {
        rows_computed_.fetch_add(1, std::memory_order_relaxed);
        out[out_index[k]] = cache_->Insert(KeyFor(block[k]), std::move(rows[k]));
      }
    });
  } else {
    // Dynamic scheduling: per-row cost varies (SBP rows are far heavier
    // than plain BFS rows), and the kernels are pure, so workers only
    // contend on cache shard mutexes.
    ParallelForEach(work.size(), ResolveThreads(threads), [&](uint64_t w) {
      const size_t i = work[w];
      const NodeId q = sources[i];
      const uint64_t key = KeyFor(q);
      // Re-probe (uncounted: the probe pass recorded the miss) in case a
      // concurrent sharer published the row since.
      std::shared_ptr<const Row> row = cache_->Get(key, /*count_miss=*/false);
      if (row == nullptr) {
        rows_computed_.fetch_add(1, std::memory_order_relaxed);
        row = cache_->Insert(key, kernel_(*graph_, kernel_params_, q));
      }
      out[i] = std::move(row);
    });
  }
  // Duplicated sources share the row computed for their first occurrence
  // (re-probing the cache could miss again under eviction pressure).
  for (size_t i : missed) {
    if (out[i] == nullptr) out[i] = out[first_index.at(sources[i])];
  }
  return out;
}

void CompatibilityOracle::StreamRows(
    std::span<const NodeId> sources, uint32_t threads,
    const std::function<void(size_t, const Row&)>& consume, size_t batch) {
  TFSN_CHECK_GT(batch, size_t{0});
  for (size_t off = 0; off < sources.size(); off += batch) {
    const size_t len = std::min(batch, sources.size() - off);
    auto rows = GetRows(sources.subspan(off, len), threads);
    for (size_t i = 0; i < len; ++i) consume(off + i, *rows[i]);
    // `rows` goes out of scope here: the batch's pins are released before
    // the next fetch, bounding peak pinned memory.
  }
}

std::unique_ptr<CompatibilityOracle> MakeOracle(const SignedGraph& g,
                                                CompatKind kind,
                                                OracleParams params) {
  return std::make_unique<CompatibilityOracle>(g, kind, params, nullptr);
}

std::unique_ptr<CompatibilityOracle> MakeOracle(
    const SignedGraph& g, CompatKind kind, OracleParams params,
    std::shared_ptr<RowCache> cache) {
  return std::make_unique<CompatibilityOracle>(g, kind, params,
                                               std::move(cache));
}

}  // namespace tfsn
