// Threshold (fractional) shortest-path compatibility — a continuous
// generalization of the paper's SP relations.
//
// Define score(u,v) = N+(u,v) / (N+(u,v) + N-(u,v)), the fraction of
// positive shortest paths (Algorithm 1 counts). Then:
//   * SPO  ⇔ score > 0
//   * SPM  ⇔ score >= 1/2
//   * SPA  ⇔ score = 1
// A threshold θ ∈ [0,1] interpolates between them: Comp_θ = {(u,v) :
// score(u,v) >= θ}, with θ=0 mapped to "score > 0" so that negative-edge
// incompatibility still holds. This realizes the paper's future-work theme
// of combining compatibility strength with cost in finer ways, and powers
// the θ-sweep ablation bench.

#pragma once

#include <memory>

#include "src/compat/compatibility.h"

namespace tfsn {

/// Fraction of positive shortest paths between u and v in [0,1]; 0 when
/// disconnected. Runs Algorithm 1 from u.
double PositivePathScore(const SignedGraph& g, NodeId u, NodeId v);

/// Oracle for Comp_θ (see file comment). θ is clamped to [0,1].
/// θ <= 0 degenerates to SPO, θ == 0.5 to SPM, θ >= 1 to SPA.
std::unique_ptr<CompatibilityOracle> MakeThresholdOracle(
    const SignedGraph& g, double theta, OracleParams params = {});

}  // namespace tfsn
