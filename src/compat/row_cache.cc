#include "src/compat/row_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/compat/row_codec.h"
#include "src/compat/row_spill.h"
#include "src/util/fault_injection.h"

namespace tfsn {

namespace {

// splitmix64 finalizer: spreads adjacent node ids across shards.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RowCache::RowCache(RowCacheOptions options) : options_(std::move(options)) {
  num_shards_ = RoundUpPow2(std::max<uint32_t>(1, options_.shards));
  shard_max_bytes_ =
      options_.max_bytes == 0 ? 0
                              : std::max<size_t>(1, options_.max_bytes / num_shards_);
  shard_max_rows_ =
      options_.max_rows == 0 ? 0
                             : std::max<size_t>(1, options_.max_rows / num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

RowCache::Shard& RowCache::ShardFor(uint64_t key) {
  return shards_[MixKey(key) & (num_shards_ - 1)];
}

std::shared_ptr<const CompatRow> RowCache::PinEntryLocked(Shard* shard,
                                                          Entry* entry) {
  (void)shard;
  if (entry->row != nullptr) return entry->row;  // flat: the row is resident
  if (auto live = entry->pinned.lock()) return live;  // memoized decode
  const uint64_t t0 = NowNs();
  auto decoded = std::make_shared<CompatRow>();
  if (!DecodeRow(entry->blob, decoded.get())) return nullptr;
  decode_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  decodes_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const CompatRow> pinned = std::move(decoded);
  entry->pinned = pinned;
  return pinned;
}

void RowCache::LinkFrontLocked(Shard* shard, Entry entry) {
  const size_t bytes = entry.bytes;
  const size_t blob_bytes = entry.blob.size();
  const uint64_t key = entry.key;
  shard->lru.push_front(std::move(entry));
  shard->index.emplace(key, shard->lru.begin());
  shard->bytes += bytes;
  if (blob_bytes != 0) {
    compressed_bytes_.fetch_add(blob_bytes, std::memory_order_relaxed);
  }
}

std::shared_ptr<const CompatRow> RowCache::Get(uint64_t key,
                                               bool count_miss) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Tier-0 hit: refresh recency and pin (decode if compressed).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    auto row = PinEntryLocked(&shard, &*it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return row;
  }
  RowSpillStore* spill = options_.spill.get();
  if (spill == nullptr) {
    if (count_miss) misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  // Tier-0 miss with a spill tier: the disk read and decode are expensive
  // relative to the critical section, so run them outside the shard lock
  // and re-check the index afterwards.
  lock.Unlock();
  std::vector<uint8_t> blob;
  std::shared_ptr<const CompatRow> promoted;
  // Injected promotion failure degrades the spill hit to a miss — the
  // caller recomputes the row, which is bit-identical by construction.
  if (!TFSN_FAULT_POINT("row_cache.promote_fail") && spill->Read(key, &blob)) {
    const uint64_t t0 = NowNs();
    auto decoded = std::make_shared<CompatRow>();
    if (DecodeRow(blob, decoded.get())) {
      decode_ns_.fetch_add(NowNs() - t0, std::memory_order_relaxed);
      decodes_.fetch_add(1, std::memory_order_relaxed);
      promoted = std::move(decoded);
    }
  }
  lock.Lock();
  if (promoted == nullptr) {
    if (count_miss) misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Another thread repopulated the key while we were reading disk; its
    // entry wins (same blob either way — the store holds one record per
    // key and kernels are deterministic).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    auto row = PinEntryLocked(&shard, &*it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return row;
  }

  Entry entry;
  entry.key = key;
  entry.in_spill = true;  // the store already holds this exact blob
  if (options_.compress) {
    entry.bytes = blob.size() + sizeof(Entry);
    entry.blob = std::move(blob);
    entry.pinned = promoted;
  } else {
    entry.bytes = promoted->ByteSize();
    entry.row = promoted;
  }
  LinkFrontLocked(&shard, std::move(entry));
  std::vector<Entry> victims;
  EvictLocked(&shard, &victims);
  hits_.fetch_add(1, std::memory_order_relaxed);
  spill_reads_.fetch_add(1, std::memory_order_relaxed);
  lock.Unlock();
  SpillEvicted(std::move(victims));
  return promoted;
}

std::shared_ptr<const CompatRow> RowCache::Peek(uint64_t key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return PinEntryLocked(&shard, &*it->second);
}

std::shared_ptr<const CompatRow> RowCache::Insert(uint64_t key,
                                                 CompatRow row) {
  // Drop excess capacity (moves can leave capacity() > size()) so the
  // byte budget charges what the cached row actually occupies.
  row.ShrinkToFit();
  auto holder = std::make_shared<const CompatRow>(std::move(row));

  // Injected insert drop: the caller still gets its row, the cache just
  // fails to retain it — the next Get misses and recomputes (memory-
  // pressure shape: a row computed but never cached).
  if (TFSN_FAULT_POINT("row_cache.insert_drop")) return holder;

  Entry entry;
  entry.key = key;
  if (options_.compress) {
    // The blob is the resident form and what the budget charges; the
    // returned pointer stays pinned through the weak_ptr until every
    // caller drops it.
    entry.blob = EncodeRow(*holder);
    entry.bytes = entry.blob.size() + sizeof(Entry);
    entry.pinned = holder;
  } else {
    entry.bytes = holder->ByteSize();
    entry.row = holder;
  }

  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Lost a compute race: keep the first row so all callers agree.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return PinEntryLocked(&shard, &*it->second);
  }
  LinkFrontLocked(&shard, std::move(entry));
  insertions_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Entry> victims;
  EvictLocked(&shard, &victims);
  lock.Unlock();
  SpillEvicted(std::move(victims));
  return holder;
}

void RowCache::EvictLocked(Shard* shard, std::vector<Entry>* spill_out) {
  // Budget check inlined (not a lambda): the analysis checks lambda bodies
  // as standalone functions, which cannot see this function's
  // TFSN_REQUIRES(shard->mu) precondition.
  while (shard->lru.size() > 1 &&
         ((shard_max_rows_ != 0 && shard->lru.size() > shard_max_rows_) ||
          (shard_max_bytes_ != 0 && shard->bytes > shard_max_bytes_))) {
    Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    if (!victim.blob.empty()) {
      compressed_bytes_.fetch_sub(victim.blob.size(),
                                  std::memory_order_relaxed);
    }
    shard->index.erase(victim.key);
    if (options_.spill != nullptr && !victim.in_spill) {
      spill_out->push_back(std::move(victim));
    }
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RowCache::SpillEvicted(std::vector<Entry> victims) {
  if (victims.empty()) return;
  RowSpillStore* spill = options_.spill.get();
  for (Entry& victim : victims) {
    // Flat-mode victims were never encoded; pay for it only now that the
    // blob is actually leaving memory.
    const std::vector<uint8_t> blob =
        victim.blob.empty() ? EncodeRow(*victim.row) : std::move(victim.blob);
    if (spill->Append(victim.key, blob)) {
      spill_writes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

RowCache::StatsSnapshot RowCache::SnapshotCounters() const {
  StatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.decodes = decodes_.load(std::memory_order_relaxed);
  s.decode_ns = decode_ns_.load(std::memory_order_relaxed);
  s.spill_reads = spill_reads_.load(std::memory_order_relaxed);
  s.spill_writes = spill_writes_.load(std::memory_order_relaxed);
  s.compressed_bytes = compressed_bytes_.load(std::memory_order_relaxed);
  return s;
}

RowCacheStats RowCache::stats() const {
  const StatsSnapshot counters = SnapshotCounters();
  RowCacheStats s;
  s.hits = counters.hits;
  s.misses = counters.misses;
  s.evictions = counters.evictions;
  s.insertions = counters.insertions;
  s.decodes = counters.decodes;
  s.decode_ns = counters.decode_ns;
  s.spill_reads = counters.spill_reads;
  s.spill_writes = counters.spill_writes;
  s.compressed_bytes = counters.compressed_bytes;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    const Shard& shard = shards_[i];
    MutexLock lock(&shard.mu);
    s.rows_in_use += shard.lru.size();
    s.bytes_in_use += shard.bytes;
  }
  return s;
}

void RowCache::Clear() {
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(&shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
  compressed_bytes_.store(0, std::memory_order_relaxed);
  if (options_.spill != nullptr) options_.spill->Clear();
}

}  // namespace tfsn
