#include "src/compat/row_cache.h"

#include <algorithm>
#include <utility>

namespace tfsn {

namespace {

// splitmix64 finalizer: spreads adjacent node ids across shards.
uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

RowCache::RowCache(RowCacheOptions options) : options_(options) {
  num_shards_ = RoundUpPow2(std::max<uint32_t>(1, options_.shards));
  shard_max_bytes_ =
      options_.max_bytes == 0 ? 0
                              : std::max<size_t>(1, options_.max_bytes / num_shards_);
  shard_max_rows_ =
      options_.max_rows == 0 ? 0
                             : std::max<size_t>(1, options_.max_rows / num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

RowCache::Shard& RowCache::ShardFor(uint64_t key) {
  return shards_[MixKey(key) & (num_shards_ - 1)];
}

std::shared_ptr<const CompatRow> RowCache::Get(uint64_t key,
                                               bool count_miss) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    if (count_miss) misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->row;
}

std::shared_ptr<const CompatRow> RowCache::Insert(uint64_t key,
                                                 CompatRow row) {
  // Drop excess capacity (moves can leave capacity() > size()) so the
  // byte budget charges what the cached row actually occupies.
  row.ShrinkToFit();
  auto holder = std::make_shared<const CompatRow>(std::move(row));
  const size_t bytes = holder->ByteSize();
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Lost a compute race: keep the first row so all callers agree.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->row;
  }
  shard.lru.push_front(Entry{key, bytes, holder});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  EvictLocked(&shard);
  return holder;
}

void RowCache::EvictLocked(Shard* shard) {
  // Budget check inlined (not a lambda): the analysis checks lambda bodies
  // as standalone functions, which cannot see this function's
  // TFSN_REQUIRES(shard->mu) precondition.
  while (shard->lru.size() > 1 &&
         ((shard_max_rows_ != 0 && shard->lru.size() > shard_max_rows_) ||
          (shard_max_bytes_ != 0 && shard->bytes > shard_max_bytes_))) {
    Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    shard->index.erase(victim.key);
    shard->lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

RowCache::StatsSnapshot RowCache::SnapshotCounters() const {
  StatsSnapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  return s;
}

RowCacheStats RowCache::stats() const {
  const StatsSnapshot counters = SnapshotCounters();
  RowCacheStats s;
  s.hits = counters.hits;
  s.misses = counters.misses;
  s.evictions = counters.evictions;
  s.insertions = counters.insertions;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    const Shard& shard = shards_[i];
    MutexLock lock(&shard.mu);
    s.rows_in_use += shard.lru.size();
    s.bytes_in_use += shard.bytes;
  }
  return s;
}

void RowCache::Clear() {
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(&shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

}  // namespace tfsn
