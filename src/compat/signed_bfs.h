// Algorithm 1 of the paper: the SP-compatibility algorithm.
//
// A modified BFS from a query node q that computes, for every node x, the
// shortest-path length L(x) and the numbers N+(x) / N-(x) of positive and
// negative shortest paths from q to x. The enumeration is possible because
// shortest paths have the prefix property: every shortest path to x through
// u extends a shortest path to u, so counts propagate level by level like
// in Brandes' betweenness algorithm — traversing a positive edge preserves
// each path's sign, a negative edge flips it.
//
// Shortest-path *counts* can grow combinatorially, so N+/N- use saturating
// uint64 arithmetic. Saturation can in principle distort the SPM majority
// test on adversarial dense graphs; it is unreachable on the social-network
// scales this library targets (counts fit easily), and SPA/SPO only test
// count positivity, which saturation never changes.

#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/bfs.h"
#include "src/graph/signed_graph.h"

namespace tfsn {

/// Per-source output of Algorithm 1.
struct SignedBfsResult {
  /// L(x): hop distance from q; kUnreachable when disconnected.
  std::vector<uint32_t> dist;
  /// N+(x): number of positive shortest q-x paths (saturating).
  std::vector<uint64_t> num_pos;
  /// N-(x): number of negative shortest q-x paths (saturating).
  std::vector<uint64_t> num_neg;

  /// True when any counter saturated (result still sound for SPA/SPO).
  bool saturated = false;
};

/// Runs Algorithm 1 from `q`. O(n + m).
SignedBfsResult SignedShortestPathCount(const SignedGraph& g, NodeId q);

/// Convenience single-pair queries (each runs a full BFS from u; batch via
/// SignedShortestPathCount when querying many targets).
bool IsSpaCompatible(const SignedGraph& g, NodeId u, NodeId v);
bool IsSpmCompatible(const SignedGraph& g, NodeId u, NodeId v);
bool IsSpoCompatible(const SignedGraph& g, NodeId u, NodeId v);

}  // namespace tfsn
