// The compatibility relations of the paper (Section 3) behind one interface.
//
//   DPE  — direct positive edge            (Definition 3.1, strictest)
//   SPA  — all shortest paths positive     (Definition 3.3)
//   SPM  — majority of shortest paths positive
//   SPO  — at least one positive shortest path
//   SBPH — heuristic structurally-balanced-path compatibility
//   SBP  — exact structurally-balanced-path compatibility (Definition 3.4)
//   NNE  — no direct negative edge         (Definition 3.2, most relaxed)
//
// Proposition 3.5: DPE ⊆ SPA ⊆ SPM ⊆ SPO ⊆ SBP ⊆ NNE (and SBPH ⊆ SBP).
//
// Every relation satisfies the two axioms of Section 2: positive-edge
// compatibility and negative-edge incompatibility, plus reflexivity and
// symmetry.
//
// Distance semantics (paper Section 4): DPE/SPA/SPM/SPO use the shortest
// path length (for compatible pairs a positive shortest path of that length
// exists); SBP/SBPH use the length of the shortest structurally balanced
// positive path; NNE uses the shortest path length ignoring signs.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/compat/sbp.h"
#include "src/graph/signed_graph.h"

namespace tfsn {

/// Which compatibility relation an oracle implements.
enum class CompatKind : uint8_t {
  kDPE,
  kSPA,
  kSPM,
  kSPO,
  kSBPH,
  kSBP,
  kNNE,
};

/// Stable display name ("SPA", "SBPH", ...).
const char* CompatKindName(CompatKind kind);

/// Parses a name as produced by CompatKindName (case-insensitive).
/// Returns false for unknown names.
bool ParseCompatKind(const std::string& name, CompatKind* out);

/// All kinds in relaxation order (DPE strictest ... NNE most relaxed,
/// with SBPH just before SBP).
std::vector<CompatKind> AllCompatKinds();

/// Tuning knobs shared by the oracle implementations.
struct OracleParams {
  /// Per-source rows kept in the cache (FIFO eviction). A row costs
  /// ~5 bytes per graph node.
  size_t max_cached_rows = 2048;
  /// Exact-SBP engine tuning (kSBP only).
  SbpExactParams sbp;
  /// Depth bound for the SBPH search (kSBPH only).
  uint32_t sbph_max_depth = kUnreachable;
};

/// Query interface over one compatibility relation on one graph.
///
/// Implementations compute per-source "rows" (compatibility flag and
/// distance to every node) lazily and cache them, so asking many queries
/// from the same source is cheap. Not thread-safe.
class CompatibilityOracle {
 public:
  /// A per-source result: flags and distances from a fixed query node to
  /// every node in the graph.
  struct Row {
    /// comp[x] != 0 iff (source, x) is in the relation.
    std::vector<uint8_t> comp;
    /// Relation-specific distance (see file header); kUnreachable possible.
    std::vector<uint32_t> dist;
  };

  virtual ~CompatibilityOracle() = default;

  virtual CompatKind kind() const = 0;
  const SignedGraph& graph() const { return *graph_; }

  /// Membership test for (u, v); reflexive and symmetric. (For SBPH — whose
  /// underlying heuristic search is direction-dependent — this is the
  /// symmetric closure: compatible when either direction finds a balanced
  /// positive path; both directions are sound w.r.t. exact SBP.)
  virtual bool Compatible(NodeId u, NodeId v);

  /// Relation-specific distance between u and v (0 when u == v).
  virtual uint32_t Distance(NodeId u, NodeId v);

  /// The full row for source q (computed on demand, cached). Note: for
  /// SBPH the row is *directional* (paths searched from q), matching the
  /// paper's per-source methodology; use Compatible()/Distance() for the
  /// symmetric pair view.
  const Row& GetRow(NodeId q);

  /// Number of row computations performed (cache misses); for tests and
  /// perf analysis.
  uint64_t rows_computed() const { return rows_computed_; }

 protected:
  explicit CompatibilityOracle(const SignedGraph& g, size_t max_cached_rows)
      : graph_(&g), max_cached_rows_(max_cached_rows) {}

  /// Computes the row for source q. comp[q] / dist[q] entries for q itself
  /// are normalized by the caller (reflexivity).
  virtual Row ComputeRow(NodeId q) = 0;

 private:
  const SignedGraph* graph_;
  size_t max_cached_rows_;
  uint64_t rows_computed_ = 0;
  std::vector<std::pair<NodeId, std::unique_ptr<Row>>> cache_slots_;
  // Index into cache_slots_ per node; -1 when absent.
  std::vector<int32_t> cache_index_;
  size_t eviction_cursor_ = 0;
};

/// Creates the oracle for `kind` over `g`. The graph must outlive the
/// oracle.
std::unique_ptr<CompatibilityOracle> MakeOracle(const SignedGraph& g,
                                                CompatKind kind,
                                                OracleParams params = {});

}  // namespace tfsn
