// The compatibility relations of the paper (Section 3) behind one
// interface. See row_kernels.h for the relation definitions and the
// Proposition 3.5 inclusion chain; see row_cache.h for the shared cache.
//
// Architecture (three layers):
//   row_kernels — pure, stateless ComputeRow functions, one per relation.
//   RowCache    — thread-safe sharded LRU tiered row store (optionally
//                 compressed in memory, spilling evictions to disk; see
//                 row_cache.h), shareable across oracles and worker
//                 threads.
//   CompatibilityOracle (this header) — a thin façade binding (graph,
//                 relation, params) to a cache, with the paper's pair
//                 semantics (reflexivity, SBPH symmetric closure) and a
//                 batched multi-source API.
//
// Distance semantics (paper Section 4): DPE/SPA/SPM/SPO use the shortest
// path length (for compatible pairs a positive shortest path of that length
// exists); SBP/SBPH use the length of the shortest structurally balanced
// positive path; NNE uses the shortest path length ignoring signs.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/compat/row_cache.h"
#include "src/compat/row_kernels.h"
#include "src/compat/sbp.h"
#include "src/graph/signed_graph.h"

namespace tfsn {

/// Tuning knobs for an oracle and its (private) cache.
struct OracleParams {
  /// Row-count cap for the oracle's private cache (LRU eviction). Ignored
  /// when a shared RowCache is supplied. A row costs ~5 bytes per node.
  size_t max_cached_rows = 2048;
  /// Optional byte budget for the private cache (0 = row cap only).
  size_t cache_bytes = 0;
  /// Tier 0 compression for the private cache (see RowCacheOptions).
  /// Representation only — rows decode bit-identically, and the cache key
  /// fingerprint does not include it, so compressed and flat caches over
  /// the same configuration agree on every key.
  bool compress = false;
  /// Tier 1 spill store for the private cache (see RowCacheOptions).
  std::shared_ptr<RowSpillStore> spill;
  /// Exact-SBP engine tuning (kSBP only).
  SbpExactParams sbp;
  /// Depth bound for the SBPH search (kSBPH only).
  uint32_t sbph_max_depth = kUnreachable;
};

/// Query interface over one compatibility relation on one graph.
///
/// A façade over the stateless row kernels and a RowCache: rows are
/// computed on demand, cached, and shared. One oracle instance is NOT
/// thread-safe (GetRow pins rows into instance-local state), but any
/// number of oracles — one per worker thread — may share one RowCache over
/// the same graph; GetRows additionally parallelizes miss computation
/// internally.
class CompatibilityOracle {
 public:
  /// Per-source row type (see row_kernels.h).
  using Row = CompatRow;

  /// Oracle for `kind` over `g`, optionally sharing `cache` with other
  /// oracles (pass nullptr for a private cache sized by `params`). The
  /// graph and the shared cache must outlive the oracle. Oracles sharing a
  /// cache key their rows by (graph, relation, params), so mixed sharing
  /// is safe — but do NOT reuse one cache across graph *lifetimes*: the
  /// fingerprint identifies a graph by address, so a new graph allocated
  /// at a dead graph's address aliases its keys. The façade fails fast
  /// when the aliased rows have a different node count, but same-sized
  /// graphs would be served stale rows undetected — Clear() or drop the
  /// cache when its graphs go away.
  CompatibilityOracle(const SignedGraph& g, CompatKind kind,
                      OracleParams params = {},
                      std::shared_ptr<RowCache> cache = nullptr);

  /// Custom-kernel oracle (e.g. the threshold relation): rows come from
  /// `kernel` with `kernel_params`; `display_kind` is what kind() reports.
  CompatibilityOracle(const SignedGraph& g, CompatKind display_kind,
                      RowKernelFn kernel, RowKernelParams kernel_params,
                      OracleParams params = {},
                      std::shared_ptr<RowCache> cache = nullptr);

  CompatKind kind() const { return kind_; }
  const SignedGraph& graph() const { return *graph_; }

  /// Membership test for (u, v); reflexive and symmetric. (For SBPH — whose
  /// underlying heuristic search is direction-dependent — this is the
  /// symmetric closure: compatible when either direction finds a balanced
  /// positive path; both directions are sound w.r.t. exact SBP.)
  bool Compatible(NodeId u, NodeId v);

  /// Relation-specific distance between u and v (0 when u == v).
  uint32_t Distance(NodeId u, NodeId v);

  /// The full row for source q (computed on demand, cached). Note: for
  /// SBPH the row is *directional* (paths searched from q), matching the
  /// paper's per-source methodology; use Compatible()/Distance() for the
  /// symmetric pair view. The returned reference stays valid for the next
  /// kPinnedRows GetRow calls on this oracle (rows themselves are
  /// refcounted; hold GetRowShared() for longer lifetimes).
  const Row& GetRow(NodeId q);

  /// Like GetRow but hands out the refcounted row: valid for as long as
  /// the caller holds it, immune to cache eviction.
  std::shared_ptr<const Row> GetRowShared(NodeId q);

  /// Cache-resident probe: the row if it sits in the cache's memory tier,
  /// nullptr otherwise — never computes a row and never touches the spill
  /// tier, so the cost is bounded by one decode. Unlike GetRow this does
  /// not pin and is safe from any thread; the degraded serving tier
  /// (TaskCompatView::BuildFromCachedRows) is built on it.
  std::shared_ptr<const Row> PeekRow(NodeId q) const {
    return cache_->Peek(KeyFor(q));
  }

  /// Batched multi-source fetch: probes the cache for every source, then
  /// computes the misses (each exactly once, duplicates deduplicated) and
  /// publishes them to the shared cache. For SPA/SPO/DPE/NNE with the
  /// stock kernel, misses are grouped into 64-source blocks computed by
  /// the bit-parallel engine (ms_signed_bfs.h) — one traversal per block,
  /// blocks distributed over `threads` workers; such rows never set
  /// `saturated` (the engine keeps no path counts). Other relations and
  /// custom kernels fall back to scalar per-source computation via
  /// ParallelForEach. threads == 0 resolves to the hardware concurrency /
  /// TFSN_THREADS. Returns rows in source order.
  ///
  /// Note on `saturated` for SPA/SPO: a cached row reports the flag of
  /// whichever path computed it first — true is possible only from a
  /// scalar fetch (GetRow/Compatible/Distance), never from a batch — so
  /// aggregate rows_saturated counters are advisory for these relations.
  /// Saturation cannot affect SPA/SPO comp/dist correctness either way;
  /// the flag stays exact on the always-scalar SPM path, where it matters.
  std::vector<std::shared_ptr<const Row>> GetRows(
      std::span<const NodeId> sources, uint32_t threads = 1);

  /// Streams the rows of `sources` through `consume(i, row)` in source
  /// order, fetching in fixed-size batches via GetRows: each batch's
  /// misses are computed in parallel (and cached), then its pins are
  /// dropped before the next batch, so peak pinned memory stays at `batch`
  /// rows no matter how many sources are streamed. `consume` runs serially
  /// on the calling thread. Dense-view builders and cache prewarming use
  /// this instead of hand-rolling the chunk loop.
  void StreamRows(std::span<const NodeId> sources, uint32_t threads,
                  const std::function<void(size_t, const Row&)>& consume,
                  size_t batch = 128);

  /// Number of row computations performed through this oracle (cache
  /// misses it paid for); for tests and perf analysis. Rows computed by
  /// other oracles sharing the cache do not count.
  uint64_t rows_computed() const {
    return rows_computed_.load(std::memory_order_relaxed);
  }

  /// The backing cache (shared or private); never null.
  RowCache* row_cache() const { return cache_.get(); }

  const RowKernelParams& kernel_params() const { return kernel_params_; }

  /// How many GetRow references stay pinned (see GetRow).
  static constexpr size_t kPinnedRows = 8;

 private:
  std::shared_ptr<const Row> FetchRow(NodeId q);
  uint64_t KeyFor(NodeId q) const { return key_base_ | q; }

  const SignedGraph* graph_;
  CompatKind kind_;
  RowKernelFn kernel_;
  RowKernelParams kernel_params_;
  std::shared_ptr<RowCache> cache_;
  /// High 32 bits of every cache key: a fingerprint of (graph, kernel,
  /// params) so distinct configurations sharing a RowCache never collide.
  uint64_t key_base_;
  /// Lock-free ordering contract: a monotonic tally of cache misses this
  /// oracle paid for, bumped with relaxed fetch_add from GetRows' worker
  /// threads and read with a relaxed load (rows_computed()). It publishes
  /// nothing — row data itself is published via RowCache::Insert under the
  /// shard lock — so relaxed is sufficient; the atomic only exists because
  /// GetRows' internal workers bump it concurrently.
  std::atomic<uint64_t> rows_computed_{0};
  std::array<std::shared_ptr<const Row>, kPinnedRows> pins_;
  size_t pin_cursor_ = 0;
};

/// Creates the oracle for `kind` over `g` with a private cache. The graph
/// must outlive the oracle.
std::unique_ptr<CompatibilityOracle> MakeOracle(const SignedGraph& g,
                                                CompatKind kind,
                                                OracleParams params = {});

/// As above, but sharing `cache` (thread-safe) with other oracles.
std::unique_ptr<CompatibilityOracle> MakeOracle(
    const SignedGraph& g, CompatKind kind, OracleParams params,
    std::shared_ptr<RowCache> cache);

}  // namespace tfsn
