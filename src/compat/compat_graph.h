// Materialized compatibility graph.
//
// For a relation Comp on G, the compatibility graph H has the same nodes
// and an (unsigned, represented all-positive) edge for every compatible
// pair. Teams feasible for TFSNC are exactly the cliques of H that cover
// the task — the view under which Theorem 2.2's hardness is natural. The
// materialization is O(n^2) space and n row computations, so it is meant
// for small-to-medium graphs; it also yields relation density statistics
// and serves as a fast immutable oracle replacement for repeated
// experiments on one graph.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/compat/compatibility.h"

namespace tfsn {

/// Dense symmetric bit-matrix of a compatibility relation.
class CompatibilityMatrix {
 public:
  /// Materializes the relation by streaming all n oracle rows. For SBPH the
  /// symmetric closure is materialized (matching
  /// CompatibilityOracle::Compatible).
  static CompatibilityMatrix Build(CompatibilityOracle* oracle);

  uint32_t num_nodes() const { return n_; }

  bool Compatible(NodeId u, NodeId v) const {
    return bits_[static_cast<size_t>(u) * n_ + v] != 0;
  }

  /// Number of compatible unordered pairs (excluding self-pairs).
  uint64_t num_compatible_pairs() const { return pairs_; }

  /// Fraction of unordered pairs that are compatible.
  double density() const;

  /// Degree of u in the compatibility graph.
  uint32_t CompatDegree(NodeId u) const;

  /// Checks that a team is a clique of the compatibility graph.
  bool IsClique(const std::vector<NodeId>& team) const;

  /// Greedy maximal clique containing `seed` (by descending compat degree).
  /// A lower bound witness for the largest compatible group around seed.
  std::vector<NodeId> GreedyMaximalClique(NodeId seed) const;

 private:
  uint32_t n_ = 0;
  uint64_t pairs_ = 0;
  std::vector<uint8_t> bits_;  // n*n, symmetric, diagonal set
};

}  // namespace tfsn
