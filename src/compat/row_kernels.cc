#include "src/compat/row_kernels.h"

#include <cctype>

#include "src/compat/signed_bfs.h"
#include "src/util/logging.h"

namespace tfsn {

const char* CompatKindName(CompatKind kind) {
  switch (kind) {
    case CompatKind::kDPE: return "DPE";
    case CompatKind::kSPA: return "SPA";
    case CompatKind::kSPM: return "SPM";
    case CompatKind::kSPO: return "SPO";
    case CompatKind::kSBPH: return "SBPH";
    case CompatKind::kSBP: return "SBP";
    case CompatKind::kNNE: return "NNE";
  }
  return "?";
}

bool ParseCompatKind(const std::string& name, CompatKind* out) {
  std::string upper;
  for (char c : name) upper += static_cast<char>(std::toupper(c));
  for (CompatKind kind : AllCompatKinds()) {
    if (upper == CompatKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::vector<CompatKind> AllCompatKinds() {
  return {CompatKind::kDPE,  CompatKind::kSPA, CompatKind::kSPM,
          CompatKind::kSPO,  CompatKind::kSBPH, CompatKind::kSBP,
          CompatKind::kNNE};
}

namespace {

// Reflexivity normalization shared by every kernel (Section 2 axioms).
void NormalizeSelf(CompatRow* row, NodeId q) {
  row->comp[q] = 1;
  row->dist[q] = 0;
}

}  // namespace

CompatRow ComputeDpeRow(const SignedGraph& g, const RowKernelParams&,
                        NodeId q) {
  CompatRow row;
  row.dist = BfsDistances(g, q);
  row.comp.assign(g.num_nodes(), 0);
  for (const Neighbor& nb : g.Neighbors(q)) {
    if (nb.sign == Sign::kPositive) row.comp[nb.to] = 1;
  }
  NormalizeSelf(&row, q);
  return row;
}

CompatRow ComputeNneRow(const SignedGraph& g, const RowKernelParams&,
                        NodeId q) {
  CompatRow row;
  row.dist = BfsDistances(g, q);
  row.comp.assign(g.num_nodes(), 1);
  for (const Neighbor& nb : g.Neighbors(q)) {
    if (nb.sign == Sign::kNegative) row.comp[nb.to] = 0;
  }
  NormalizeSelf(&row, q);
  return row;
}

namespace {

// SPA / SPM / SPO share Algorithm 1 counts and differ only in the
// per-target predicate.
template <typename Pred>
CompatRow SpRow(const SignedGraph& g, NodeId q, Pred pred) {
  SignedBfsResult r = SignedShortestPathCount(g, q);
  CompatRow row;
  row.saturated = r.saturated;
  row.dist = std::move(r.dist);
  row.comp.assign(g.num_nodes(), 0);
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    if (row.dist[x] == kUnreachable) continue;
    row.comp[x] = pred(r.num_pos[x], r.num_neg[x]);
  }
  NormalizeSelf(&row, q);
  return row;
}

}  // namespace

CompatRow ComputeSpaRow(const SignedGraph& g, const RowKernelParams&,
                        NodeId q) {
  return SpRow(g, q,
               [](uint64_t pos, uint64_t neg) { return pos > 0 && neg == 0; });
}

CompatRow ComputeSpmRow(const SignedGraph& g, const RowKernelParams&,
                        NodeId q) {
  return SpRow(g, q, [](uint64_t pos, uint64_t neg) { return pos >= neg; });
}

CompatRow ComputeSpoRow(const SignedGraph& g, const RowKernelParams&,
                        NodeId q) {
  return SpRow(g, q, [](uint64_t pos, uint64_t) { return pos > 0; });
}

CompatRow ComputeThresholdRow(const SignedGraph& g, const RowKernelParams& p,
                              NodeId q) {
  const double theta = p.threshold_theta;
  TFSN_CHECK(theta >= 0.0 && theta <= 1.0);
  return SpRow(g, q, [theta](uint64_t pos, uint64_t neg) {
    double total = static_cast<double>(pos) + static_cast<double>(neg);
    if (total == 0.0) return false;
    double score = static_cast<double>(pos) / total;
    // θ == 0 still requires *some* positive path (score > 0) so that the
    // negative-edge incompatibility axiom holds.
    return theta > 0.0 ? score >= theta : score > 0.0;
  });
}

CompatRow ComputeSbphRow(const SignedGraph& g, const RowKernelParams& p,
                         NodeId q) {
  SbphResult r = SbphFromSource(g, q, p.sbph_max_depth);
  CompatRow row;
  row.dist = std::move(r.pos_dist);
  row.comp.assign(g.num_nodes(), 0);
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    row.comp[x] = row.dist[x] != kUnreachable;
  }
  NormalizeSelf(&row, q);
  return row;
}

CompatRow ComputeSbpRow(const SignedGraph& g, const RowKernelParams& p,
                        NodeId q) {
  // The exact engine keeps per-instance scratch; one engine per row keeps
  // the kernel stateless while amortizing the scratch over the n targets.
  SbpExactSearch search(g, p.sbp);
  CompatRow row;
  const uint32_t n = g.num_nodes();
  row.comp.assign(n, 0);
  row.dist.assign(n, kUnreachable);
  for (NodeId x = 0; x < n; ++x) {
    if (x == q) continue;
    SbpPairResult r = search.ShortestBalancedPath(q, x, Sign::kPositive);
    if (r.length) {
      row.comp[x] = 1;
      row.dist[x] = *r.length;
    }
  }
  NormalizeSelf(&row, q);
  return row;
}

RowKernelFn KernelForKind(CompatKind kind) {
  switch (kind) {
    case CompatKind::kDPE: return &ComputeDpeRow;
    case CompatKind::kSPA: return &ComputeSpaRow;
    case CompatKind::kSPM: return &ComputeSpmRow;
    case CompatKind::kSPO: return &ComputeSpoRow;
    case CompatKind::kSBPH: return &ComputeSbphRow;
    case CompatKind::kSBP: return &ComputeSbpRow;
    case CompatKind::kNNE: return &ComputeNneRow;
  }
  TFSN_CHECK(false);
  return nullptr;
}

CompatRow ComputeCompatRow(const SignedGraph& g, CompatKind kind,
                           const RowKernelParams& params, NodeId q) {
  return KernelForKind(kind)(g, params, q);
}

}  // namespace tfsn
