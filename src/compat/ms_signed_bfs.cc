#include "src/compat/ms_signed_bfs.h"

#include <bit>

#include "src/graph/bfs.h"
#include "src/util/logging.h"

namespace tfsn {

bool MsBfsSupportsKind(CompatKind kind) {
  switch (kind) {
    case CompatKind::kSPA:
    case CompatKind::kSPO:
    case CompatKind::kDPE:
    case CompatKind::kNNE:
      return true;
    default:
      return false;
  }
}

namespace {

// Per-level traversal state: `visit_*` hold the bits discovered at the
// previous level (the frontier), `next_*` accumulate this level's
// candidates, `pos`/`neg`/`seen` the settled planes. All are n words.
struct Planes {
  std::vector<uint64_t> pos, neg, seen;
  std::vector<uint64_t> visit_pos, visit_neg, next_pos, next_neg;

  explicit Planes(uint32_t n)
      : pos(n, 0), neg(n, 0), seen(n, 0), visit_pos(n, 0), visit_neg(n, 0),
        next_pos(n, 0), next_neg(n, 0) {}
};

// Runs the level-synchronous bit-parallel traversal, writing per-lane
// distances into rows[lane].dist as bits first set. When `track_signs` is
// false every edge propagates plane-preserving (unsigned BFS; the neg
// plane stays zero).
void Traverse(const SignedGraph& g, std::span<const NodeId> sources,
              bool track_signs, Planes* p, std::vector<CompatRow>* rows) {
  const uint32_t n = g.num_nodes();
  const auto offsets = g.offsets();
  const auto targets = g.adjacency_targets();
  const auto sign_words = g.adjacency_sign_words();
  const uint64_t directed_edges = targets.size();
  const uint64_t full =
      sources.size() == 64 ? ~0ull : ((1ull << sources.size()) - 1);

  std::vector<NodeId> frontier, next_frontier, candidates;
  frontier.reserve(sources.size());
  uint64_t frontier_degree = 0;
  for (size_t i = 0; i < sources.size(); ++i) {
    const NodeId q = sources[i];
    const uint64_t bit = 1ull << i;
    if (p->visit_pos[q] == 0) {
      frontier.push_back(q);
      frontier_degree += g.Degree(q);
    }
    p->visit_pos[q] |= bit;
    p->pos[q] |= bit;  // the empty path is positive
    p->seen[q] |= bit;
    (*rows)[i].dist[q] = 0;
  }

  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    candidates.clear();
    // Sparse frontiers push lane bits along their edges; dense frontiers
    // pull instead — one sequential sweep over the adjacency of every node
    // still missing lanes, skipping nodes all 64 sources have settled.
    const bool pull = frontier_degree * 4 >= directed_edges && n > frontier.size();
    if (!pull) {
      for (const NodeId u : frontier) {
        const uint64_t vp = p->visit_pos[u];
        const uint64_t vn = p->visit_neg[u];
        for (uint64_t e = offsets[u]; e < offsets[u + 1]; ++e) {
          const NodeId x = targets[e];
          uint64_t np = vp, nn = vn;
          if (track_signs && ((sign_words[e >> 6] >> (e & 63)) & 1)) {
            // Negative edge: a positive path extends to a negative one and
            // vice versa — swap the planes.
            np = vn;
            nn = vp;
          }
          const uint64_t before = p->next_pos[x] | p->next_neg[x];
          p->next_pos[x] |= np;
          p->next_neg[x] |= nn;
          if (before == 0) candidates.push_back(x);
        }
      }
    } else {
      for (NodeId x = 0; x < n; ++x) {
        if (p->seen[x] == full) continue;  // every lane settled x already
        uint64_t acc_p = 0, acc_n = 0;
        for (uint64_t e = offsets[x]; e < offsets[x + 1]; ++e) {
          const NodeId u = targets[e];
          uint64_t vp = p->visit_pos[u];
          uint64_t vn = p->visit_neg[u];
          if ((vp | vn) == 0) continue;
          if (track_signs && ((sign_words[e >> 6] >> (e & 63)) & 1)) {
            std::swap(vp, vn);
          }
          acc_p |= vp;
          acc_n |= vn;
        }
        if ((acc_p | acc_n) == 0) continue;
        p->next_pos[x] = acc_p;
        p->next_neg[x] = acc_n;
        candidates.push_back(x);
      }
    }
    // Propagation done; the old frontier's visit masks can go before the
    // finalize pass writes the new ones (the sets may overlap).
    for (const NodeId u : frontier) {
      p->visit_pos[u] = 0;
      p->visit_neg[u] = 0;
    }
    next_frontier.clear();
    frontier_degree = 0;
    for (const NodeId x : candidates) {
      const uint64_t np = p->next_pos[x];
      const uint64_t nn = p->next_neg[x];
      p->next_pos[x] = 0;
      p->next_neg[x] = 0;
      // Lanes that reached x at an earlier level are settled: any path
      // arriving now is longer than their shortest, so only fresh lanes
      // record planes/distance and keep propagating.
      const uint64_t fresh = (np | nn) & ~p->seen[x];
      if (fresh == 0) continue;
      p->seen[x] |= fresh;
      p->pos[x] |= np & fresh;
      p->neg[x] |= nn & fresh;
      p->visit_pos[x] = np & fresh;
      p->visit_neg[x] = nn & fresh;
      next_frontier.push_back(x);
      frontier_degree += g.Degree(x);
      for (uint64_t m = fresh; m != 0; m &= m - 1) {
        (*rows)[static_cast<size_t>(std::countr_zero(m))].dist[x] = level;
      }
    }
    frontier.swap(next_frontier);
  }
}

}  // namespace

std::vector<CompatRow> ComputeCompatRowBlock(const SignedGraph& g,
                                             CompatKind kind,
                                             std::span<const NodeId> sources) {
  TFSN_CHECK(MsBfsSupportsKind(kind));
  TFSN_CHECK(!sources.empty());
  TFSN_CHECK_LE(sources.size(), kMsBfsBatchSize);
  const uint32_t n = g.num_nodes();
  for (const NodeId q : sources) TFSN_CHECK_LT(q, n);

  const bool track_signs =
      kind == CompatKind::kSPA || kind == CompatKind::kSPO;
  const uint8_t comp_default = kind == CompatKind::kNNE ? 1 : 0;

  std::vector<CompatRow> rows(sources.size());
  for (CompatRow& row : rows) {
    row.comp.assign(n, comp_default);
    row.dist.assign(n, kUnreachable);
  }

  Planes planes(n);
  Traverse(g, sources, track_signs, &planes, &rows);

  // Project the settled planes into per-row comp flags, matching the
  // scalar kernels bit-for-bit (row_kernels.cc).
  switch (kind) {
    case CompatKind::kSPA:
      // All shortest paths positive: a positive one exists, none negative.
      for (NodeId x = 0; x < n; ++x) {
        for (uint64_t m = planes.pos[x] & ~planes.neg[x]; m != 0; m &= m - 1) {
          rows[static_cast<size_t>(std::countr_zero(m))].comp[x] = 1;
        }
      }
      break;
    case CompatKind::kSPO:
      // At least one positive shortest path.
      for (NodeId x = 0; x < n; ++x) {
        for (uint64_t m = planes.pos[x]; m != 0; m &= m - 1) {
          rows[static_cast<size_t>(std::countr_zero(m))].comp[x] = 1;
        }
      }
      break;
    case CompatKind::kDPE:
      for (size_t i = 0; i < sources.size(); ++i) {
        for (const Neighbor& nb : g.Neighbors(sources[i])) {
          if (nb.sign == Sign::kPositive) rows[i].comp[nb.to] = 1;
        }
      }
      break;
    case CompatKind::kNNE:
      for (size_t i = 0; i < sources.size(); ++i) {
        for (const Neighbor& nb : g.Neighbors(sources[i])) {
          if (nb.sign == Sign::kNegative) rows[i].comp[nb.to] = 0;
        }
      }
      break;
    default:
      TFSN_CHECK(false);
  }
  // Reflexivity normalization (Section 2 axioms), as in NormalizeSelf.
  for (size_t i = 0; i < sources.size(); ++i) {
    rows[i].comp[sources[i]] = 1;
    rows[i].dist[sources[i]] = 0;
  }
  return rows;
}

}  // namespace tfsn
