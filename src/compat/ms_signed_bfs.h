// Bit-parallel multi-source signed BFS: up to 64 compatibility rows per
// traversal.
//
// Building a skill index or the Table 2 statistics is effectively an
// all-sources run of Algorithm 1 — one O(n + m) signed BFS per row, the
// dominant cost of every experiment. MS-BFS (Then et al., VLDB 2014)
// observes that concurrent BFS traversals over the same graph share almost
// all of their frontier work, and that packing one source per bit of a
// machine word turns the sharing into plain word-wide OR/AND operations.
//
// The SPA and SPO relations only test the *existence* of a positive /
// negative shortest path — never the saturating path counts — so two
// bit-planes per node suffice:
//
//   pos[x] bit i  — source i has a positive shortest path to x
//   neg[x] bit i  — source i has a negative shortest path to x
//   seen = pos | neg  — source i has reached x at all
//
// Traversal is level-synchronous; traversing a negative edge swaps the two
// planes (sign-flip propagation), exactly mirroring how Algorithm 1 routes
// counts between N+ and N-. Per-(source, node) distances fall out of the
// level at which a source's bit first sets. Dense frontiers switch to a
// pull sweep over the not-yet-complete nodes (direction-optimizing BFS,
// Beamer et al., SC 2012), which reads the compact SoA adjacency
// sequentially.
//
// The engine reproduces the scalar row kernels bit-for-bit (comp and dist)
// for SPA, SPO, DPE, and NNE; DPE/NNE only need the unsigned distance
// plane plus a direct-neighbour scan. SPM and the threshold relation need
// actual path counts and stay on the scalar kernels. Because no counts are
// kept, batched rows never set CompatRow::saturated.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/compat/row_kernels.h"
#include "src/graph/signed_graph.h"

namespace tfsn {

/// Sources per traversal: one per bit of the lane word.
inline constexpr size_t kMsBfsBatchSize = 64;

/// True when `kind`'s rows can be produced by the bit-parallel engine
/// (SPA, SPO, DPE, NNE; the count-based SPM/threshold relations cannot).
bool MsBfsSupportsKind(CompatKind kind);

/// Computes the rows of `sources` (1 .. kMsBfsBatchSize of them, duplicates
/// allowed) in one bit-parallel traversal. Rows are returned in source
/// order and are bit-identical to ComputeCompatRow(g, kind, {}, q) in comp
/// and dist; `saturated` is always false (the engine keeps no counts).
/// Requires MsBfsSupportsKind(kind). O(n + m) words of scratch.
std::vector<CompatRow> ComputeCompatRowBlock(const SignedGraph& g,
                                             CompatKind kind,
                                             std::span<const NodeId> sources);

}  // namespace tfsn
