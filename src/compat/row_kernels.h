// Stateless per-source row kernels for the compatibility relations of the
// paper (Section 3), one free function per relation:
//
//   DPE  — direct positive edge            (Definition 3.1, strictest)
//   SPA  — all shortest paths positive     (Definition 3.3)
//   SPM  — majority of shortest paths positive
//   SPO  — at least one positive shortest path
//   SBPH — heuristic structurally-balanced-path compatibility
//   SBP  — exact structurally-balanced-path compatibility (Definition 3.4)
//   NNE  — no direct negative edge         (Definition 3.2, most relaxed)
//
// plus the threshold (fractional) generalization of the SP family. Each
// kernel maps (graph, params, source) to a CompatRow — the compatibility
// flag and relation distance from the source to every node — with
// reflexivity normalized (comp[q] = 1, dist[q] = 0). Kernels hold no state
// and touch no caches, so any number of threads may run them concurrently
// on the same graph; caching and the symmetric pair view live in
// RowCache / CompatibilityOracle (see row_cache.h and compatibility.h).

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/compat/sbp.h"
#include "src/graph/bfs.h"
#include "src/graph/signed_graph.h"

namespace tfsn {

/// Which compatibility relation a kernel or oracle implements.
enum class CompatKind : uint8_t {
  kDPE,
  kSPA,
  kSPM,
  kSPO,
  kSBPH,
  kSBP,
  kNNE,
};

/// Stable display name ("SPA", "SBPH", ...).
const char* CompatKindName(CompatKind kind);

/// Parses a name as produced by CompatKindName (case-insensitive).
/// Returns false for unknown names.
bool ParseCompatKind(const std::string& name, CompatKind* out);

/// All kinds in relaxation order (DPE strictest ... NNE most relaxed,
/// with SBPH just before SBP).
std::vector<CompatKind> AllCompatKinds();

/// A per-source result: flags and distances from a fixed query node to
/// every node in the graph.
struct CompatRow {
  /// comp[x] != 0 iff (source, x) is in the relation.
  std::vector<uint8_t> comp;
  /// Relation-specific distance; kUnreachable possible.
  std::vector<uint32_t> dist;
  /// True when an underlying shortest-path counter saturated while this
  /// row was computed (SP-family kernels only; see SignedBfsResult). The
  /// row is still sound for SPA/SPO; SPM majority tests may be distorted
  /// on adversarially dense graphs.
  bool saturated = false;

  /// Approximate heap + object footprint, used by the RowCache byte
  /// budget. Counts capacity, not size: after moves the two vectors'
  /// capacities can diverge from their sizes, so the cache calls
  /// ShrinkToFit() first to keep its byte accounting honest.
  size_t ByteSize() const {
    return sizeof(CompatRow) + comp.capacity() * sizeof(uint8_t) +
           dist.capacity() * sizeof(uint32_t);
  }

  /// Releases excess vector capacity so ByteSize() reflects the bytes the
  /// row actually needs.
  void ShrinkToFit() {
    comp.shrink_to_fit();
    dist.shrink_to_fit();
  }
};

/// Tuning knobs shared by the kernels. A kernel reads only the fields that
/// concern its relation.
struct RowKernelParams {
  /// Exact-SBP engine tuning (SBP kernel only).
  SbpExactParams sbp;
  /// Depth bound for the SBPH search (SBPH kernel only).
  uint32_t sbph_max_depth = kUnreachable;
  /// Threshold θ for the fractional SP kernel (threshold kernel only);
  /// ignored by the named relations.
  double threshold_theta = -1.0;
};

/// Uniform kernel signature: pure function of (graph, params, source).
using RowKernelFn = CompatRow (*)(const SignedGraph&, const RowKernelParams&,
                                  NodeId);

// Per-relation kernels. All are O(n + m) except ComputeSbpRow (one exact
// iterative-deepening search per target) and ComputeSbphRow (label-setting
// over (node, side) states). ComputeSbphRow is *directional* — paths are
// searched from q — matching the paper's per-source methodology; the
// symmetric pair closure is applied by CompatibilityOracle.
CompatRow ComputeDpeRow(const SignedGraph& g, const RowKernelParams& p,
                        NodeId q);
CompatRow ComputeSpaRow(const SignedGraph& g, const RowKernelParams& p,
                        NodeId q);
CompatRow ComputeSpmRow(const SignedGraph& g, const RowKernelParams& p,
                        NodeId q);
CompatRow ComputeSpoRow(const SignedGraph& g, const RowKernelParams& p,
                        NodeId q);
CompatRow ComputeSbphRow(const SignedGraph& g, const RowKernelParams& p,
                         NodeId q);
CompatRow ComputeSbpRow(const SignedGraph& g, const RowKernelParams& p,
                        NodeId q);
CompatRow ComputeNneRow(const SignedGraph& g, const RowKernelParams& p,
                        NodeId q);

/// Threshold (fractional) SP kernel: comp iff the fraction of positive
/// shortest paths is >= p.threshold_theta (θ == 0 degenerates to "> 0" so
/// negative-edge incompatibility holds). See threshold.h.
CompatRow ComputeThresholdRow(const SignedGraph& g, const RowKernelParams& p,
                              NodeId q);

/// The kernel implementing a named relation.
RowKernelFn KernelForKind(CompatKind kind);

/// Convenience dispatch: KernelForKind(kind)(g, params, q).
CompatRow ComputeCompatRow(const SignedGraph& g, CompatKind kind,
                           const RowKernelParams& params, NodeId q);

}  // namespace tfsn
