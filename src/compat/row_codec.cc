#include "src/compat/row_codec.h"

#include <algorithm>
#include <cstring>

#include "src/graph/bfs.h"

namespace tfsn {

namespace {

// Header field offsets (see row_codec.h for the layout).
constexpr size_t kHeaderBytes = 12;
constexpr uint8_t kFlagSaturated = 1u << 0;
constexpr uint8_t kFlagCompRaw = 1u << 1;
constexpr uint8_t kDistRaw = 0;
constexpr uint8_t kDistBitPacked = 1;
constexpr uint8_t kDistRle = 2;
// Bit-packed lanes wider than this would rarely beat raw; RLE or raw
// handles rows with huge finite distances.
constexpr uint32_t kMaxPackBits = 24;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

// LEB128 varint (u32: at most 5 bytes).
void PutVarint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80u) {
    out->push_back(static_cast<uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

size_t VarintSize(uint32_t v) {
  size_t n = 1;
  while (v >= 0x80u) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Reads one varint; advances *pos. False on truncation/overflow.
bool GetVarint(std::span<const uint8_t> blob, size_t* pos, uint32_t* v) {
  uint32_t out = 0;
  for (uint32_t shift = 0; shift < 35; shift += 7) {
    if (*pos >= blob.size()) return false;
    const uint8_t byte = blob[(*pos)++];
    out |= static_cast<uint32_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      *v = out;
      return true;
    }
  }
  return false;  // more than 5 continuation bytes: not a u32
}

// kUnreachable maps to 0 so the common "reachable, small level" values
// stay small and unreachable runs RLE-compress as runs of zero.
uint32_t MapDist(uint32_t d) { return d == kUnreachable ? 0 : d + 1; }
uint32_t UnmapDist(uint32_t m) { return m == 0 ? kUnreachable : m - 1; }

// --- dist encodings -------------------------------------------------------

// Lane width for bit-packing: the smallest b whose all-ones sentinel
// (reserved for kUnreachable) still exceeds every finite distance.
// 0 when the row cannot be packed within kMaxPackBits.
uint32_t PackBitsFor(const std::vector<uint32_t>& dist) {
  uint32_t max_finite = 0;
  for (uint32_t d : dist) {
    if (d != kUnreachable) max_finite = std::max(max_finite, d);
  }
  for (uint32_t b = 1; b <= kMaxPackBits; ++b) {
    if (max_finite < (1u << b) - 1u) return b;
  }
  return 0;
}

size_t BitPackedSize(size_t n, uint32_t bits) { return (n * bits + 7) / 8; }

void EncodeBitPacked(const std::vector<uint32_t>& dist, uint32_t bits,
                     std::vector<uint8_t>* out) {
  const uint32_t sentinel = (1u << bits) - 1u;
  const size_t start = out->size();
  out->resize(start + BitPackedSize(dist.size(), bits), 0);
  uint8_t* bytes = out->data() + start;
  size_t bit_pos = 0;
  for (uint32_t d : dist) {
    const uint32_t v = d == kUnreachable ? sentinel : d;
    for (uint32_t b = 0; b < bits; ++b, ++bit_pos) {
      bytes[bit_pos >> 3] |=
          static_cast<uint8_t>(((v >> b) & 1u) << (bit_pos & 7));
    }
  }
}

bool DecodeBitPacked(std::span<const uint8_t> blob, size_t* pos, uint32_t bits,
                     std::vector<uint32_t>* dist) {
  if (bits == 0 || bits > kMaxPackBits) return false;
  const size_t payload = BitPackedSize(dist->size(), bits);
  if (blob.size() - *pos < payload) return false;
  const uint8_t* bytes = blob.data() + *pos;
  const uint32_t sentinel = (1u << bits) - 1u;
  size_t bit_pos = 0;
  for (uint32_t& d : *dist) {
    uint32_t v = 0;
    for (uint32_t b = 0; b < bits; ++b, ++bit_pos) {
      v |= static_cast<uint32_t>((bytes[bit_pos >> 3] >> (bit_pos & 7)) & 1u)
           << b;
    }
    d = v == sentinel ? kUnreachable : v;
  }
  *pos += payload;
  return true;
}

// RLE over mapped values: (varint value, varint run_length) pairs.
size_t RleSize(const std::vector<uint32_t>& dist) {
  size_t total = 0;
  for (size_t i = 0; i < dist.size();) {
    size_t j = i + 1;
    while (j < dist.size() && dist[j] == dist[i]) ++j;
    total += VarintSize(MapDist(dist[i])) +
             VarintSize(static_cast<uint32_t>(j - i));
    i = j;
  }
  return total;
}

void EncodeRle(const std::vector<uint32_t>& dist, std::vector<uint8_t>* out) {
  for (size_t i = 0; i < dist.size();) {
    size_t j = i + 1;
    while (j < dist.size() && dist[j] == dist[i]) ++j;
    PutVarint(out, MapDist(dist[i]));
    PutVarint(out, static_cast<uint32_t>(j - i));
    i = j;
  }
}

bool DecodeRle(std::span<const uint8_t> blob, size_t* pos,
               std::vector<uint32_t>* dist) {
  size_t filled = 0;
  while (filled < dist->size()) {
    uint32_t mapped = 0;
    uint32_t run = 0;
    if (!GetVarint(blob, pos, &mapped) || !GetVarint(blob, pos, &run)) {
      return false;
    }
    if (run == 0 || run > dist->size() - filled) return false;
    const uint32_t value = UnmapDist(mapped);
    std::fill_n(dist->begin() + static_cast<ptrdiff_t>(filled), run, value);
    filled += run;
  }
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeRow(const CompatRow& row) {
  const size_t n_comp = row.comp.size();
  const size_t n_dist = row.dist.size();

  // comp: bitset unless some value is outside {0, 1} (kernel rows are
  // always 0/1; the raw path keeps arbitrary rows bit-identical too).
  const bool comp_raw =
      std::any_of(row.comp.begin(), row.comp.end(),
                  [](uint8_t c) { return c > 1; });

  // dist: cheapest of bit-packed / RLE / raw (deterministic tie-break in
  // that order).
  const uint32_t pack_bits = PackBitsFor(row.dist);
  const size_t packed_size =
      pack_bits == 0 ? SIZE_MAX : BitPackedSize(n_dist, pack_bits);
  const size_t rle_size = RleSize(row.dist);
  const size_t raw_size = n_dist * sizeof(uint32_t);
  uint8_t dist_tag = kDistRaw;
  size_t dist_size = raw_size;
  if (rle_size < dist_size) {
    dist_tag = kDistRle;
    dist_size = rle_size;
  }
  if (packed_size <= dist_size) {
    dist_tag = kDistBitPacked;
    dist_size = packed_size;
  }

  std::vector<uint8_t> blob;
  blob.reserve(kHeaderBytes + (comp_raw ? n_comp : (n_comp + 7) / 8) +
               dist_size);
  blob.push_back(kRowCodecVersion);
  uint8_t flags = 0;
  if (row.saturated) flags |= kFlagSaturated;
  if (comp_raw) flags |= kFlagCompRaw;
  blob.push_back(flags);
  blob.push_back(dist_tag);
  blob.push_back(dist_tag == kDistBitPacked ? static_cast<uint8_t>(pack_bits)
                                            : 0);
  PutU32(&blob, static_cast<uint32_t>(n_comp));
  PutU32(&blob, static_cast<uint32_t>(n_dist));

  if (comp_raw) {
    blob.insert(blob.end(), row.comp.begin(), row.comp.end());
  } else {
    const size_t start = blob.size();
    blob.resize(start + (n_comp + 7) / 8, 0);
    for (size_t i = 0; i < n_comp; ++i) {
      blob[start + (i >> 3)] |=
          static_cast<uint8_t>(row.comp[i] << (i & 7));
    }
  }

  switch (dist_tag) {
    case kDistBitPacked:
      EncodeBitPacked(row.dist, pack_bits, &blob);
      break;
    case kDistRle:
      EncodeRle(row.dist, &blob);
      break;
    default:
      for (uint32_t d : row.dist) PutU32(&blob, d);
      break;
  }
  return blob;
}

bool DecodeRow(std::span<const uint8_t> blob, CompatRow* row) {
  if (blob.size() < kHeaderBytes || blob[0] != kRowCodecVersion) return false;
  const uint8_t flags = blob[1];
  const uint8_t dist_tag = blob[2];
  const uint8_t dist_bits = blob[3];
  const size_t n_comp = GetU32(blob.data() + 4);
  const size_t n_dist = GetU32(blob.data() + 8);
  // Reject sizes the blob cannot possibly carry before allocating.
  if (n_comp > blob.size() * 8 || (dist_tag == kDistRaw &&
                                   n_dist > blob.size() / sizeof(uint32_t))) {
    return false;
  }

  row->saturated = (flags & kFlagSaturated) != 0;
  size_t pos = kHeaderBytes;

  row->comp.assign(n_comp, 0);
  if ((flags & kFlagCompRaw) != 0) {
    if (blob.size() - pos < n_comp) return false;
    std::memcpy(row->comp.data(), blob.data() + pos, n_comp);
    pos += n_comp;
  } else {
    const size_t payload = (n_comp + 7) / 8;
    if (blob.size() - pos < payload) return false;
    for (size_t i = 0; i < n_comp; ++i) {
      row->comp[i] = (blob[pos + (i >> 3)] >> (i & 7)) & 1u;
    }
    pos += payload;
  }

  row->dist.assign(n_dist, 0);
  switch (dist_tag) {
    case kDistRaw:
      if (blob.size() - pos < n_dist * sizeof(uint32_t)) return false;
      for (size_t i = 0; i < n_dist; ++i) {
        row->dist[i] = GetU32(blob.data() + pos + i * sizeof(uint32_t));
      }
      pos += n_dist * sizeof(uint32_t);
      break;
    case kDistBitPacked:
      if (!DecodeBitPacked(blob, &pos, dist_bits, &row->dist)) return false;
      break;
    case kDistRle:
      if (!DecodeRle(blob, &pos, &row->dist)) return false;
      break;
    default:
      return false;
  }
  return pos == blob.size();
}

}  // namespace tfsn
