#include "src/compat/threshold.h"

#include <algorithm>

#include "src/compat/row_kernels.h"
#include "src/compat/signed_bfs.h"
#include "src/graph/bfs.h"

namespace tfsn {

double PositivePathScore(const SignedGraph& g, NodeId u, NodeId v) {
  if (u == v) return 1.0;
  SignedBfsResult r = SignedShortestPathCount(g, u);
  if (r.dist[v] == kUnreachable) return 0.0;
  double total = static_cast<double>(r.num_pos[v]) +
                 static_cast<double>(r.num_neg[v]);
  return total == 0.0 ? 0.0 : static_cast<double>(r.num_pos[v]) / total;
}

std::unique_ptr<CompatibilityOracle> MakeThresholdOracle(const SignedGraph& g,
                                                         double theta,
                                                         OracleParams params) {
  const double clamped = std::clamp(theta, 0.0, 1.0);
  // Reported as the nearest named relation for display purposes.
  CompatKind display = clamped >= 1.0   ? CompatKind::kSPA
                       : clamped >= 0.5 ? CompatKind::kSPM
                                        : CompatKind::kSPO;
  RowKernelParams kernel_params;
  kernel_params.sbp = params.sbp;
  kernel_params.sbph_max_depth = params.sbph_max_depth;
  kernel_params.threshold_theta = clamped;
  return std::make_unique<CompatibilityOracle>(
      g, display, &ComputeThresholdRow, kernel_params, params, nullptr);
}

}  // namespace tfsn
