#include "src/compat/threshold.h"

#include <algorithm>

#include "src/compat/signed_bfs.h"
#include "src/graph/bfs.h"

namespace tfsn {

double PositivePathScore(const SignedGraph& g, NodeId u, NodeId v) {
  if (u == v) return 1.0;
  SignedBfsResult r = SignedShortestPathCount(g, u);
  if (r.dist[v] == kUnreachable) return 0.0;
  double total = static_cast<double>(r.num_pos[v]) +
                 static_cast<double>(r.num_neg[v]);
  return total == 0.0 ? 0.0 : static_cast<double>(r.num_pos[v]) / total;
}

namespace {

class ThresholdOracle final : public CompatibilityOracle {
 public:
  ThresholdOracle(const SignedGraph& g, double theta, const OracleParams& p)
      : CompatibilityOracle(g, p.max_cached_rows),
        theta_(std::clamp(theta, 0.0, 1.0)) {}

  // Reported as the nearest named relation for display purposes.
  CompatKind kind() const override {
    if (theta_ >= 1.0) return CompatKind::kSPA;
    if (theta_ >= 0.5) return CompatKind::kSPM;
    return CompatKind::kSPO;
  }

  double theta() const { return theta_; }

 protected:
  Row ComputeRow(NodeId q) override {
    SignedBfsResult r = SignedShortestPathCount(graph(), q);
    Row row;
    row.dist = std::move(r.dist);
    row.comp.assign(graph().num_nodes(), 0);
    for (NodeId x = 0; x < graph().num_nodes(); ++x) {
      if (row.dist[x] == kUnreachable) continue;
      double total = static_cast<double>(r.num_pos[x]) +
                     static_cast<double>(r.num_neg[x]);
      if (total == 0.0) continue;
      double score = static_cast<double>(r.num_pos[x]) / total;
      // θ == 0 still requires *some* positive path (score > 0) so that the
      // negative-edge incompatibility axiom holds.
      row.comp[x] = theta_ > 0.0 ? score >= theta_ : score > 0.0;
    }
    return row;
  }

 private:
  double theta_;
};

}  // namespace

std::unique_ptr<CompatibilityOracle> MakeThresholdOracle(const SignedGraph& g,
                                                         double theta,
                                                         OracleParams params) {
  return std::make_unique<ThresholdOracle>(g, theta, params);
}

}  // namespace tfsn
