// Thread-safe shared cache of compatibility rows.
//
// Rows are keyed by an opaque 64-bit key (the oracle façade packs a
// configuration tag into the high half and the source node into the low
// half, so oracles with different relations or parameters can share one
// cache without colliding). The cache is mutex-striped into shards; each
// shard runs byte-budgeted LRU eviction, so hot rows survive mixed
// workloads where the old per-oracle FIFO thrashed.
//
// Rows are handed out as shared_ptr<const CompatRow>: eviction merely
// drops the cache's reference, so readers on other threads keep their rows
// alive for as long as they hold the pointer. Hit/miss/eviction counters
// are maintained with relaxed atomics and surfaced via stats().
//
// Concurrency contract: all member functions are safe to call from any
// number of threads. A Get miss followed by a compute + Insert may race
// with another thread computing the same key; Insert keeps the first row
// and returns it, so callers always agree on one row per key (kernels are
// deterministic, so the discarded duplicate is bit-identical anyway).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "src/compat/row_kernels.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace tfsn {

/// Cache tuning. Budgets are split evenly across shards.
struct RowCacheOptions {
  /// Total byte budget across shards (0 = unbounded). A row costs roughly
  /// 5 bytes per graph node.
  size_t max_bytes = 256ull << 20;
  /// Total row-count budget (0 = unbounded). With several shards the cap
  /// is approximate: each shard holds at most max(1, max_rows / shards).
  size_t max_rows = 0;
  /// Mutex stripes; rounded up to a power of two. Use 1 for a private
  /// single-thread cache (exact row-count semantics), more under
  /// multi-threaded sharing.
  uint32_t shards = 8;
};

/// Point-in-time counters. hits/misses/evictions/insertions are monotonic;
/// rows_in_use/bytes_in_use reflect current occupancy.
struct RowCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  size_t rows_in_use = 0;
  size_t bytes_in_use = 0;
};

class RowCache {
 public:
  /// Copyable point-in-time copy of the monotonic counters, read with
  /// relaxed atomic loads only — unlike stats(), taking one never touches
  /// a shard mutex, so metrics loops (e.g. the serving layer's per-window
  /// cache hit rate) can snapshot at arbitrary frequency without stalling
  /// row lookups. Subtract two snapshots to get a window's deltas.
  struct StatsSnapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;

    /// Counter deltas `this - earlier` (counters are monotonic, so the
    /// result is well-defined when `earlier` was taken first).
    StatsSnapshot operator-(const StatsSnapshot& earlier) const {
      return {hits - earlier.hits, misses - earlier.misses,
              evictions - earlier.evictions, insertions - earlier.insertions};
    }

    uint64_t lookups() const { return hits + misses; }
    /// hits / (hits + misses); 0 when no lookups happened.
    double HitRate() const {
      const uint64_t total = lookups();
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  explicit RowCache(RowCacheOptions options = {});
  RowCache(const RowCache&) = delete;
  RowCache& operator=(const RowCache&) = delete;

  /// The cached row for `key`, or nullptr on miss. A hit refreshes the
  /// row's LRU position. Pass count_miss = false when re-probing a key
  /// whose miss was already recorded (e.g. just before computing it), so
  /// the hit/miss counters keep one entry per logical lookup.
  std::shared_ptr<const CompatRow> Get(uint64_t key, bool count_miss = true);

  /// Inserts `row` under `key` and returns it; if another thread inserted
  /// `key` first, the existing row is returned instead and `row` is
  /// dropped. Runs LRU eviction afterwards (the newest row is never the
  /// victim).
  std::shared_ptr<const CompatRow> Insert(uint64_t key, CompatRow row);

  /// Aggregated counters (locks each shard briefly for occupancy).
  RowCacheStats stats() const;

  /// Lock-free counter snapshot (no occupancy; see StatsSnapshot).
  StatsSnapshot SnapshotCounters() const;

  /// Drops every cached row (counters are retained).
  void Clear();

  const RowCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    uint64_t key;
    size_t bytes;
    std::shared_ptr<const CompatRow> row;
  };
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru TFSN_GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index
        TFSN_GUARDED_BY(mu);
    size_t bytes TFSN_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t key);
  // Evicts from the back of `shard` until budgets hold; never removes the
  // front (most recent) entry.
  void EvictLocked(Shard* shard) TFSN_REQUIRES(shard->mu);

  RowCacheOptions options_;
  uint32_t num_shards_;
  size_t shard_max_bytes_;  // 0 = unbounded
  size_t shard_max_rows_;   // 0 = unbounded
  std::unique_ptr<Shard[]> shards_;
  // Lock-free ordering contract: the four counters below are monotonic
  // event tallies bumped with relaxed RMWs and read with relaxed loads
  // (SnapshotCounters). No other data is published through them, so no
  // acquire/release pairing is needed; totals are exact because
  // fetch_add is atomic, only cross-counter skew is possible (a snapshot
  // may see an insert's `insertions_` bump before its `evictions_` one).
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
};

}  // namespace tfsn
