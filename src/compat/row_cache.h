// Thread-safe shared cache of compatibility rows — a tiered row store.
//
// Rows are keyed by an opaque 64-bit key (the oracle façade packs a
// configuration tag into the high half and the source node into the low
// half, so oracles with different relations or parameters can share one
// cache without colliding). The cache is mutex-striped into shards; each
// shard runs byte-budgeted LRU eviction, so hot rows survive mixed
// workloads where the old per-oracle FIFO thrashed.
//
// Three tiers (each optional; the defaults are the flat PR 2 cache):
//
//   Tier 0 — in-memory rows. With options.compress the resident form is a
//     compressed blob (row_codec.h: bit-packed comp + bit-packed/RLE
//     distances, typically 5-10x smaller than the dense row), decoded on
//     pin into the usual shared_ptr<const CompatRow>. The *blob* is what
//     the byte budget charges, so a given budget holds proportionally
//     more rows. A weak_ptr memoizes the live decode: while any caller
//     pins the row, further Gets return the same pointer without
//     re-decoding.
//   Tier 1 — disk spill. With options.spill set, eviction appends the
//     blob to the RowSpillStore (row_spill.h) instead of discarding it,
//     and a tier-0 miss consults the store before reporting a miss — a
//     disk read + decode instead of a full signed-BFS recompute. Rows
//     promoted back from the spill are not re-appended on their next
//     eviction (the store already holds the identical blob).
//   Tier 2 — offline prewarm. Not in this class: serve::PrewarmZipfHead
//     (serve/workload.h) bulk-computes the Zipf-hot holders' rows into
//     the cache through the batched oracle API before a server opens.
//
// Rows are handed out as shared_ptr<const CompatRow>: eviction merely
// drops the cache's reference, so readers on other threads keep their rows
// alive for as long as they hold the pointer. Hit/miss/eviction counters
// are maintained with relaxed atomics and surfaced via stats().
//
// Concurrency contract: all member functions are safe to call from any
// number of threads. A Get miss followed by a compute + Insert may race
// with another thread computing the same key; Insert keeps the first row
// and returns it, so callers always agree on one row per key (kernels are
// deterministic, so the discarded duplicate is bit-identical anyway).
// Spill IO runs outside the shard mutexes; the shard -> spill lock order
// is acyclic (the store never calls back into the cache).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/compat/row_kernels.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace tfsn {

class RowSpillStore;

/// Cache tuning. Budgets are split evenly across shards.
struct RowCacheOptions {
  /// Total byte budget across shards (0 = unbounded). A dense row costs
  /// roughly 5 bytes per graph node; a compressed one typically 5-10x
  /// less, and the budget charges the resident (compressed) size.
  size_t max_bytes = 256ull << 20;
  /// Total row-count budget (0 = unbounded). With several shards the cap
  /// is approximate: each shard holds at most max(1, max_rows / shards).
  size_t max_rows = 0;
  /// Mutex stripes; rounded up to a power of two. Use 1 for a private
  /// single-thread cache (exact row-count semantics), more under
  /// multi-threaded sharing.
  uint32_t shards = 8;
  /// Tier 0 compression: store rows as row_codec blobs, decode on pin.
  bool compress = false;
  /// Tier 1: spill evicted rows here instead of discarding them (shared
  /// so callers can inspect RowSpillStore::stats()). Works with or
  /// without `compress` — uncompressed entries are encoded at eviction.
  std::shared_ptr<RowSpillStore> spill;
};

/// Point-in-time counters. hits/misses/evictions/insertions and the tier
/// counters are monotonic; rows_in_use/bytes_in_use/compressed_bytes
/// reflect current occupancy.
struct RowCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  uint64_t decodes = 0;
  uint64_t decode_ns = 0;
  uint64_t spill_reads = 0;
  uint64_t spill_writes = 0;
  size_t rows_in_use = 0;
  size_t bytes_in_use = 0;
  size_t compressed_bytes = 0;
};

class RowCache {
 public:
  /// Copyable point-in-time copy of the counters, read with relaxed
  /// atomic loads only — unlike stats(), taking one never touches a shard
  /// mutex, so metrics loops (e.g. the serving layer's per-window cache
  /// hit rate) can snapshot at arbitrary frequency without stalling row
  /// lookups. Subtract two snapshots to get a window's deltas.
  struct StatsSnapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t insertions = 0;
    /// Tier counters: blob decodes (count + total nanoseconds), rows
    /// served out of the spill tier, and blobs appended to it.
    uint64_t decodes = 0;
    uint64_t decode_ns = 0;
    uint64_t spill_reads = 0;
    uint64_t spill_writes = 0;
    /// Occupancy gauge, not a counter: compressed blob bytes resident in
    /// tier 0 at snapshot time. operator- carries the newer snapshot's
    /// value through unchanged (a gauge has no meaningful delta).
    uint64_t compressed_bytes = 0;

    /// Counter deltas `this - earlier` (counters are monotonic, so the
    /// result is well-defined when `earlier` was taken first).
    StatsSnapshot operator-(const StatsSnapshot& earlier) const {
      StatsSnapshot d;
      d.hits = hits - earlier.hits;
      d.misses = misses - earlier.misses;
      d.evictions = evictions - earlier.evictions;
      d.insertions = insertions - earlier.insertions;
      d.decodes = decodes - earlier.decodes;
      d.decode_ns = decode_ns - earlier.decode_ns;
      d.spill_reads = spill_reads - earlier.spill_reads;
      d.spill_writes = spill_writes - earlier.spill_writes;
      d.compressed_bytes = compressed_bytes;
      return d;
    }

    uint64_t lookups() const { return hits + misses; }
    /// hits / (hits + misses); 0 when no lookups happened. A row served
    /// from the spill tier counts as a hit (the caller was spared the
    /// recompute); spill_reads says how many hits came from disk.
    double HitRate() const {
      const uint64_t total = lookups();
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  explicit RowCache(RowCacheOptions options = {});
  RowCache(const RowCache&) = delete;
  RowCache& operator=(const RowCache&) = delete;

  /// The cached row for `key`, or nullptr on miss in every tier. A tier-0
  /// hit refreshes the row's LRU position (decoding the blob first when
  /// compressed and no pinned decode is live); a tier-0 miss consults the
  /// spill store and, on success, promotes the blob back into tier 0 —
  /// both count as hits. Pass count_miss = false when re-probing a key
  /// whose miss was already recorded (e.g. just before computing it), so
  /// the hit/miss counters keep one entry per logical lookup.
  std::shared_ptr<const CompatRow> Get(uint64_t key, bool count_miss = true);

  /// Tier-0-only probe: the resident row (decoded on demand) or nullptr,
  /// never consulting the spill tier and never computing anything — the
  /// serving layer's degraded cache-only path is built on this. Refreshes
  /// LRU recency like Get but records no hit/miss (the hit rate keeps
  /// meaning "fraction of real lookups served").
  std::shared_ptr<const CompatRow> Peek(uint64_t key);

  /// Inserts `row` under `key` and returns it; if another thread inserted
  /// `key` first, the existing row is returned instead and `row` is
  /// dropped. Runs LRU eviction afterwards (the newest row is never the
  /// victim); evicted rows spill to tier 1 when configured.
  std::shared_ptr<const CompatRow> Insert(uint64_t key, CompatRow row);

  /// Aggregated counters (locks each shard briefly for occupancy).
  RowCacheStats stats() const;

  /// Lock-free counter snapshot (no per-shard occupancy; see
  /// StatsSnapshot).
  StatsSnapshot SnapshotCounters() const;

  /// Drops every cached row and clears the spill store (counters are
  /// retained).
  void Clear();

  const RowCacheOptions& options() const { return options_; }
  RowSpillStore* spill() const { return options_.spill.get(); }

 private:
  struct Entry {
    uint64_t key = 0;
    size_t bytes = 0;  // charged against the byte budget
    /// Flat mode: the row itself (blob empty). Compressed mode: row is
    /// null and the blob is authoritative; `pinned` memoizes the live
    /// decode.
    std::shared_ptr<const CompatRow> row;
    std::vector<uint8_t> blob;
    std::weak_ptr<const CompatRow> pinned;
    /// The spill store already holds this exact blob (promoted from it,
    /// or spilled before): skip the append on eviction.
    bool in_spill = false;
  };
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru TFSN_GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index
        TFSN_GUARDED_BY(mu);
    size_t bytes TFSN_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t key);
  // The entry's row, decoding the blob if no live decode exists. Bumps
  // the decode counters; returns nullptr only on blob corruption (cannot
  // happen for blobs this cache encoded).
  std::shared_ptr<const CompatRow> PinEntryLocked(Shard* shard, Entry* entry)
      TFSN_REQUIRES(shard->mu);
  // Evicts from the back of `shard` until budgets hold; never removes the
  // front (most recent) entry. Victims destined for the spill store are
  // moved into *spill_out (written by the caller after unlocking).
  void EvictLocked(Shard* shard, std::vector<Entry>* spill_out)
      TFSN_REQUIRES(shard->mu);
  // Appends the evicted entries to the spill store (no shard lock held).
  void SpillEvicted(std::vector<Entry> victims);
  // Links `entry` at the shard's LRU front and charges its bytes.
  void LinkFrontLocked(Shard* shard, Entry entry) TFSN_REQUIRES(shard->mu);

  RowCacheOptions options_;
  uint32_t num_shards_;
  size_t shard_max_bytes_;  // 0 = unbounded
  size_t shard_max_rows_;   // 0 = unbounded
  std::unique_ptr<Shard[]> shards_;
  // Lock-free ordering contract: the counters below are monotonic event
  // tallies bumped with relaxed RMWs and read with relaxed loads
  // (SnapshotCounters); compressed_bytes_ is an occupancy gauge adjusted
  // with relaxed add/sub under the owning shard's mutex. No other data is
  // published through them, so no acquire/release pairing is needed;
  // totals are exact because fetch_add is atomic, only cross-counter skew
  // is possible (a snapshot may see an insert's `insertions_` bump before
  // its `evictions_` one).
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
  mutable std::atomic<uint64_t> decodes_{0};
  mutable std::atomic<uint64_t> decode_ns_{0};
  mutable std::atomic<uint64_t> spill_reads_{0};
  std::atomic<uint64_t> spill_writes_{0};
  std::atomic<uint64_t> compressed_bytes_{0};
};

}  // namespace tfsn
