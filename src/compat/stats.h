// Pairwise compatibility statistics — the "comp. users" and "avg distance"
// rows of Table 2.

#pragma once

#include <cstdint>
#include <memory>

#include "src/compat/compatibility.h"
#include "src/util/rng.h"

namespace tfsn {

/// Aggregate statistics of one compatibility relation on one graph.
struct CompatPairStats {
  /// Fraction of ordered (u, v), u != v, pairs in the relation, estimated
  /// from the sampled sources (exact when all sources are used).
  double compatible_fraction = 0.0;
  /// Mean relation distance over compatible pairs with finite distance.
  double avg_distance = 0.0;
  /// Pairs sampled / compatible among them (for confidence reporting).
  uint64_t pairs_seen = 0;
  uint64_t pairs_compatible = 0;
  uint32_t sources_used = 0;
  /// Sources whose row saturated a shortest-path counter (see
  /// CompatRow::saturated); nonzero values flag possibly distorted SPM
  /// majority tests on adversarially dense graphs.
  uint64_t rows_saturated = 0;
};

/// Streams oracle rows from `sample_sources` random sources (0 = all
/// sources, exact) and aggregates pair statistics.
CompatPairStats ComputeCompatPairStats(CompatibilityOracle* oracle,
                                       uint32_t sample_sources, Rng* rng);

/// Multi-threaded variant: splits the source set across `threads` workers
/// that all publish rows into one shared RowCache (pass `cache` to keep
/// the computed rows for reuse — e.g. a subsequent skill-index build —
/// or nullptr for an ephemeral cache). Produces the same statistics as the
/// serial version for the same (kind, params, sources, seed); threads == 0
/// uses the hardware concurrency / TFSN_THREADS.
CompatPairStats ComputeCompatPairStatsParallel(
    const SignedGraph& g, CompatKind kind, const OracleParams& params,
    uint32_t sample_sources, uint64_t seed, uint32_t threads = 0,
    std::shared_ptr<RowCache> cache = nullptr);

}  // namespace tfsn
