// Pairwise compatibility statistics — the "comp. users" and "avg distance"
// rows of Table 2.

#pragma once

#include <cstdint>

#include "src/compat/compatibility.h"
#include "src/util/rng.h"

namespace tfsn {

/// Aggregate statistics of one compatibility relation on one graph.
struct CompatPairStats {
  /// Fraction of ordered (u, v), u != v, pairs in the relation, estimated
  /// from the sampled sources (exact when all sources are used).
  double compatible_fraction = 0.0;
  /// Mean relation distance over compatible pairs with finite distance.
  double avg_distance = 0.0;
  /// Pairs sampled / compatible among them (for confidence reporting).
  uint64_t pairs_seen = 0;
  uint64_t pairs_compatible = 0;
  uint32_t sources_used = 0;
};

/// Streams oracle rows from `sample_sources` random sources (0 = all
/// sources, exact) and aggregates pair statistics.
CompatPairStats ComputeCompatPairStats(CompatibilityOracle* oracle,
                                       uint32_t sample_sources, Rng* rng);

/// Multi-threaded variant: splits the source set across `threads` workers,
/// each owning a private oracle (the oracles themselves are not
/// thread-safe). Produces the same statistics as the serial version for
/// the same (kind, params, sources, seed). threads == 0 uses the hardware
/// concurrency.
CompatPairStats ComputeCompatPairStatsParallel(const SignedGraph& g,
                                               CompatKind kind,
                                               const OracleParams& params,
                                               uint32_t sample_sources,
                                               uint64_t seed,
                                               uint32_t threads = 0);

}  // namespace tfsn
