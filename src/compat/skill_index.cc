#include "src/compat/skill_index.h"

#include <algorithm>
#include <span>

#include "src/util/logging.h"

namespace tfsn {

SkillCompatibilityIndex::SkillCompatibilityIndex(
    CompatibilityOracle* oracle, const SkillAssignment& skills,
    uint32_t sample_sources, Rng* rng, uint32_t threads) {
  const SignedGraph& g = oracle->graph();
  const uint32_t n = g.num_nodes();
  TFSN_CHECK_EQ(skills.num_users(), n);
  num_skills_ = skills.num_skills();
  counts_.assign(static_cast<size_t>(num_skills_) * num_skills_, 0);
  witnessed_.assign(static_cast<size_t>(num_skills_) * num_skills_, 0);
  degree_.assign(num_skills_, 0);
  skill_nonempty_.assign(num_skills_, 0);
  for (SkillId s = 0; s < num_skills_; ++s) {
    skill_nonempty_[s] = skills.Frequency(s) > 0;
  }

  std::vector<uint32_t> sources;
  if (sample_sources == 0 || sample_sources >= n) {
    sources.resize(n);
    for (uint32_t u = 0; u < n; ++u) sources[u] = u;
  } else {
    TFSN_CHECK(rng != nullptr);
    sources = rng->SampleWithoutReplacement(n, sample_sources);
  }
  sources_used_ = static_cast<uint32_t>(sources.size());

  // Fetch rows through the batch API in bounded chunks: misses are
  // computed in parallel into the (possibly shared) row cache while the
  // chunk bound keeps peak pinned memory at kBatch rows. Aggregation order
  // is the serial source order, so results are thread-count independent.
  constexpr size_t kBatch = 128;
  for (size_t off = 0; off < sources.size(); off += kBatch) {
    const size_t len = std::min(kBatch, sources.size() - off);
    auto rows = oracle->GetRows(
        std::span<const NodeId>(sources.data() + off, len), threads);
    for (size_t i = 0; i < len; ++i) {
      const NodeId u = sources[off + i];
      const CompatRow& row = *rows[i];
      auto u_skills = skills.SkillsOf(u);
      if (u_skills.empty()) continue;
      for (NodeId v = 0; v < n; ++v) {
        bool compatible = row.comp[v] != 0;
        for (SkillId s : u_skills) {
          for (SkillId t : skills.SkillsOf(v)) {
            ++witnessed_[static_cast<size_t>(s) * num_skills_ + t];
            if (compatible) ++counts_[static_cast<size_t>(s) * num_skills_ + t];
          }
        }
      }
    }
  }
  // Symmetrize: the relation is symmetric but a sampled source set sees
  // each pair from one side only.
  for (SkillId s = 0; s < num_skills_; ++s) {
    for (SkillId t = s + 1; t < num_skills_; ++t) {
      size_t st = static_cast<size_t>(s) * num_skills_ + t;
      size_t ts = static_cast<size_t>(t) * num_skills_ + s;
      counts_[st] = counts_[ts] = counts_[st] + counts_[ts];
      witnessed_[st] = witnessed_[ts] = witnessed_[st] + witnessed_[ts];
    }
  }
  for (SkillId s = 0; s < num_skills_; ++s) {
    for (SkillId t = 0; t < num_skills_; ++t) {
      if (t != s) degree_[s] += counts_[static_cast<size_t>(s) * num_skills_ + t];
    }
  }
}

uint64_t SkillCompatibilityIndex::PairCount(SkillId s, SkillId t) const {
  TFSN_CHECK_LT(s, num_skills_);
  TFSN_CHECK_LT(t, num_skills_);
  return counts_[static_cast<size_t>(s) * num_skills_ + t];
}

double SkillCompatibilityIndex::CompatibleSkillPairFraction() const {
  uint64_t eligible = 0;
  uint64_t compatible = 0;
  for (SkillId s = 0; s < num_skills_; ++s) {
    if (!skill_nonempty_[s]) continue;
    for (SkillId t = s + 1; t < num_skills_; ++t) {
      if (!skill_nonempty_[t]) continue;
      // Only pairs the (possibly sampled) build actually examined count
      // towards the denominator.
      if (witnessed_[static_cast<size_t>(s) * num_skills_ + t] == 0) continue;
      ++eligible;
      compatible += SkillsCompatible(s, t);
    }
  }
  return eligible == 0 ? 1.0
                       : static_cast<double>(compatible) /
                             static_cast<double>(eligible);
}

}  // namespace tfsn
