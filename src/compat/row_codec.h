// Compressed wire/cache format for CompatRow — tier 0 of the tiered row
// store (see row_cache.h).
//
// A dense CompatRow costs ~5 bytes per graph node (1-byte comp flag +
// 4-byte distance); at Epinions scale that is ~145 KB per row and the row
// working set dwarfs any realistic cache budget. Rows are however highly
// compressible: comp is a 0/1 flag per node (bit-packable 8x) and dist is
// a small BFS level bounded by the relation diameter (bit-packable to a
// few bits) or long runs of kUnreachable on fragmented graphs (run-length
// encodable). EncodeRow picks the cheapest representation per section and
// records the choice in a 12-byte header, so DecodeRow reconstructs the
// row *bit-identically* — comp, dist, and the saturated flag — for every
// relation, including hand-built rows whose comp values are not 0/1
// (those fall back to raw bytes).
//
// Blob layout (little-endian):
//   u8  version (kRowCodecVersion)
//   u8  flags        bit 0 = saturated, bit 1 = comp stored raw
//   u8  dist_tag     0 = raw u32 | 1 = bit-packed | 2 = RLE varint
//   u8  dist_bits    lane width b for tag 1 (0 otherwise)
//   u32 comp_size    number of comp entries
//   u32 dist_size    number of dist entries
//   comp payload     ceil(comp_size / 8) bitset bytes, or comp_size raw
//   dist payload     tag-dependent (see row_codec.cc)
//
// The codec is pure and stateless; integrity (CRC) is layered on by the
// spill store, which checksums whole records.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/compat/row_kernels.h"

namespace tfsn {

/// Bump when the blob layout changes; DecodeRow rejects other versions.
inline constexpr uint8_t kRowCodecVersion = 1;

/// Encodes `row` into a self-describing blob (layout above). Never fails;
/// the raw fallbacks cover every representable row.
std::vector<uint8_t> EncodeRow(const CompatRow& row);

/// Decodes a blob produced by EncodeRow into `*row` (previous contents
/// replaced). Returns false — leaving `*row` unspecified — when the blob
/// is truncated, malformed, or from an unknown codec version.
bool DecodeRow(std::span<const uint8_t> blob, CompatRow* row);

/// The dense in-memory footprint EncodeRow competes against: what the row
/// occupies uncompressed (object + exact vector payloads, independent of
/// capacity slack). Compression ratios are reported against this.
inline size_t DenseRowBytes(const CompatRow& row) {
  return sizeof(CompatRow) + row.comp.size() * sizeof(uint8_t) +
         row.dist.size() * sizeof(uint32_t);
}

}  // namespace tfsn
