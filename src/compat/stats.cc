#include "src/compat/stats.h"

#include "src/graph/bfs.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace tfsn {

namespace {

// Shared source-selection logic so the serial and parallel versions see the
// same source sets for the same seed.
std::vector<uint32_t> PickSources(uint32_t n, uint32_t sample_sources,
                                  Rng* rng) {
  std::vector<uint32_t> sources;
  if (sample_sources == 0 || sample_sources >= n) {
    sources.resize(n);
    for (uint32_t u = 0; u < n; ++u) sources[u] = u;
  } else {
    TFSN_CHECK(rng != nullptr);
    sources = rng->SampleWithoutReplacement(n, sample_sources);
  }
  return sources;
}

// Aggregates one row into the running totals.
struct PairAccumulator {
  uint64_t pairs_seen = 0;
  uint64_t pairs_compatible = 0;
  uint64_t rows_saturated = 0;
  double dist_sum = 0.0;
  uint64_t dist_count = 0;

  void Consume(const CompatibilityOracle::Row& row, NodeId source) {
    if (row.saturated) ++rows_saturated;
    for (NodeId v = 0; v < row.comp.size(); ++v) {
      if (v == source) continue;
      ++pairs_seen;
      if (!row.comp[v]) continue;
      ++pairs_compatible;
      if (row.dist[v] != kUnreachable) {
        dist_sum += row.dist[v];
        ++dist_count;
      }
    }
  }
  void Merge(const PairAccumulator& other) {
    pairs_seen += other.pairs_seen;
    pairs_compatible += other.pairs_compatible;
    rows_saturated += other.rows_saturated;
    dist_sum += other.dist_sum;
    dist_count += other.dist_count;
  }
  CompatPairStats Finish(uint32_t sources_used) const {
    CompatPairStats stats;
    stats.pairs_seen = pairs_seen;
    stats.pairs_compatible = pairs_compatible;
    stats.rows_saturated = rows_saturated;
    stats.sources_used = sources_used;
    stats.compatible_fraction =
        pairs_seen == 0 ? 0.0
                        : static_cast<double>(pairs_compatible) /
                              static_cast<double>(pairs_seen);
    stats.avg_distance =
        dist_count == 0 ? 0.0 : dist_sum / static_cast<double>(dist_count);
    return stats;
  }
};

}  // namespace

CompatPairStats ComputeCompatPairStats(CompatibilityOracle* oracle,
                                       uint32_t sample_sources, Rng* rng) {
  const SignedGraph& g = oracle->graph();
  std::vector<uint32_t> sources =
      PickSources(g.num_nodes(), sample_sources, rng);
  PairAccumulator acc;
  for (uint32_t u : sources) {
    acc.Consume(oracle->GetRow(u), u);
  }
  return acc.Finish(static_cast<uint32_t>(sources.size()));
}

CompatPairStats ComputeCompatPairStatsParallel(
    const SignedGraph& g, CompatKind kind, const OracleParams& params,
    uint32_t sample_sources, uint64_t seed, uint32_t threads,
    std::shared_ptr<RowCache> cache) {
  Rng rng(seed);
  std::vector<uint32_t> sources =
      PickSources(g.num_nodes(), sample_sources, &rng);
  threads = ResolveThreads(threads);
  if (cache == nullptr) {
    // Sources are sampled without replacement, so each row is consumed
    // exactly once and never re-read: an ephemeral cache only needs to
    // hold the rows in flight, not a real budget.
    RowCacheOptions options;
    options.max_rows = static_cast<size_t>(threads) * 4;
    options.max_bytes = 0;
    options.shards = threads;
    cache = std::make_shared<RowCache>(options);
  }
  std::vector<PairAccumulator> partial(threads);
  ParallelFor(sources.size(), threads,
              [&](uint32_t worker, uint64_t begin, uint64_t end) {
                // One façade per worker (the façade is not thread-safe),
                // all publishing rows into the shared cache.
                CompatibilityOracle oracle(g, kind, params, cache);
                for (uint64_t i = begin; i < end; ++i) {
                  partial[worker].Consume(*oracle.GetRowShared(sources[i]),
                                          sources[i]);
                }
              });
  PairAccumulator total;
  for (const PairAccumulator& p : partial) total.Merge(p);
  return total.Finish(static_cast<uint32_t>(sources.size()));
}

}  // namespace tfsn
