// Skill-compatibility degrees (paper Section 4 and Table 2).
//
// cd(s, t) = |{(u, v) : (u, v) ∈ Comp, s ∈ skills(u), t ∈ skills(v)}| and
// cd(s) = Σ_{t ≠ s} cd(s, t). The "least compatible skill first" policy
// orders skills by cd(s); Table 2's "comp. skills" row is the fraction of
// skill pairs with cd(s, t) > 0; Figure 2(a)'s MAX bound marks tasks whose
// skill pairs are all compatible.
//
// Exact computation needs the full pairwise relation. On large graphs the
// index is built from a sample of source users, which under-counts cd but
// preserves ordering and the existence test with high probability; pass
// sample_sources = 0 for the exact all-sources build.

#pragma once

#include <cstdint>
#include <vector>

#include "src/compat/compatibility.h"
#include "src/skills/skills.h"
#include "src/util/rng.h"

namespace tfsn {

/// Precomputed cd(s, t) table for one (graph, skills, relation) triple.
class SkillCompatibilityIndex {
 public:
  /// Builds the index by streaming oracle rows from `sample_sources`
  /// uniformly sampled users (0 = every user; exact). Self-pairs (u, u)
  /// count, matching the paper's "including self-compatibility". Rows are
  /// fetched in batches through CompatibilityOracle::GetRows, so missing
  /// rows are computed with `threads` workers (0 = hardware concurrency /
  /// TFSN_THREADS) and an oracle backed by a pre-warmed shared RowCache
  /// builds entirely from cache hits; the aggregation itself is serial and
  /// deterministic regardless of `threads`.
  SkillCompatibilityIndex(CompatibilityOracle* oracle,
                          const SkillAssignment& skills,
                          uint32_t sample_sources, Rng* rng,
                          uint32_t threads = 1);

  uint32_t num_skills() const { return num_skills_; }

  /// cd(s, t): (sampled) count of compatible user pairs covering (s, t).
  uint64_t PairCount(SkillId s, SkillId t) const;

  /// True iff cd(s, t) > 0 in the (sampled) relation.
  bool SkillsCompatible(SkillId s, SkillId t) const {
    return PairCount(s, t) > 0;
  }

  /// cd(s) = Σ_{t ≠ s} cd(s, t).
  uint64_t Degree(SkillId s) const { return degree_[s]; }

  /// Fraction of unordered skill pairs {s, t}, s != t, with cd > 0 —
  /// Table 2's "comp. skills" row. With a sampled build the denominator is
  /// restricted to pairs *witnessed* by the sample (some holder pair was
  /// examined), so the estimate is not biased towards zero by unseen pairs;
  /// with a full build every pair of non-empty skills is witnessed and the
  /// value is exact.
  double CompatibleSkillPairFraction() const;

  /// Number of sources the index was built from.
  uint32_t sources_used() const { return sources_used_; }

 private:
  uint32_t num_skills_ = 0;
  uint32_t sources_used_ = 0;
  std::vector<uint64_t> counts_;     // compatible pairs, num_skills^2
  std::vector<uint64_t> witnessed_;  // examined pairs, num_skills^2
  std::vector<uint64_t> degree_;
  std::vector<uint8_t> skill_nonempty_;
};

}  // namespace tfsn
