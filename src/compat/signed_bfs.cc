#include "src/compat/signed_bfs.h"

#include <limits>

namespace tfsn {

namespace {

constexpr uint64_t kSaturated = std::numeric_limits<uint64_t>::max();

// a += b with saturation; reports saturation into *flag.
inline void SatAdd(uint64_t* a, uint64_t b, bool* flag) {
  if (*a > kSaturated - b) {
    *a = kSaturated;
    *flag = true;
  } else {
    *a += b;
  }
}

}  // namespace

SignedBfsResult SignedShortestPathCount(const SignedGraph& g, NodeId q) {
  const uint32_t n = g.num_nodes();
  SignedBfsResult r;
  r.dist.assign(n, kUnreachable);
  r.num_pos.assign(n, 0);
  r.num_neg.assign(n, 0);
  r.dist[q] = 0;
  r.num_pos[q] = 1;  // the empty path is positive

  // Flat FIFO: every node enters the queue at most once, so a preallocated
  // vector plus a head index beats std::deque's chunked allocation.
  std::vector<NodeId> queue;
  queue.reserve(n);
  queue.push_back(q);
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (const Neighbor& nb : g.Neighbors(u)) {
      NodeId x = nb.to;
      if (r.dist[x] == kUnreachable) {
        // First visit: x is on the next level.
        r.dist[x] = r.dist[u] + 1;
        queue.push_back(x);
      }
      if (r.dist[x] == r.dist[u] + 1) {
        // (u,x) lies on a shortest path to x: propagate counts. A positive
        // edge preserves each path's sign; a negative edge flips it.
        if (nb.sign == Sign::kPositive) {
          SatAdd(&r.num_pos[x], r.num_pos[u], &r.saturated);
          SatAdd(&r.num_neg[x], r.num_neg[u], &r.saturated);
        } else {
          SatAdd(&r.num_neg[x], r.num_pos[u], &r.saturated);
          SatAdd(&r.num_pos[x], r.num_neg[u], &r.saturated);
        }
      }
    }
  }
  return r;
}

bool IsSpaCompatible(const SignedGraph& g, NodeId u, NodeId v) {
  if (u == v) return true;
  SignedBfsResult r = SignedShortestPathCount(g, u);
  return r.dist[v] != kUnreachable && r.num_pos[v] > 0 && r.num_neg[v] == 0;
}

bool IsSpmCompatible(const SignedGraph& g, NodeId u, NodeId v) {
  if (u == v) return true;
  SignedBfsResult r = SignedShortestPathCount(g, u);
  return r.dist[v] != kUnreachable && r.num_pos[v] >= r.num_neg[v];
}

bool IsSpoCompatible(const SignedGraph& g, NodeId u, NodeId v) {
  if (u == v) return true;
  SignedBfsResult r = SignedShortestPathCount(g, u);
  return r.dist[v] != kUnreachable && r.num_pos[v] > 0;
}

}  // namespace tfsn
