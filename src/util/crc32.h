// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven, header-only.
//
// Used by the row spill store (src/compat/row_spill.h) to detect torn or
// truncated records after a crash: every on-disk record carries the CRC of
// its payload, and a record whose stored CRC does not match its bytes is
// dropped at open (and the row recomputed) instead of being served corrupt.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace tfsn {

namespace crc32_internal {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace crc32_internal

/// CRC-32 of `len` bytes at `data`. Pass a previous result as `seed` to
/// continue a running checksum over split buffers.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = crc32_internal::kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace tfsn
