// Minimal command-line flag parsing for benchmark and example binaries.
//
// Supports --name=value and --name value forms plus boolean --name.
// Dashes and underscores in flag names are interchangeable (--batch-cap
// == --batch_cap); lookups may use either spelling. Unknown flags are
// collected so google-benchmark flags can pass through.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tfsn {

/// Parses argv into a key->value map. Positional arguments and unrecognized
/// tokens are preserved in `passthrough()` order.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def = false) const;

  const std::vector<std::string>& passthrough() const { return passthrough_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> passthrough_;
};

}  // namespace tfsn
