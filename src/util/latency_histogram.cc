#include "src/util/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace tfsn {

namespace {

// Values below kSubBucketCount get one exact bucket each; every further
// power-of-two range [2^b, 2^(b+1)) is covered by kSubBucketCount/2 linear
// sub-buckets (the top half of the sub-bucket index space).
constexpr uint32_t kHalf = LatencyHistogram::kSubBucketCount / 2;
constexpr uint32_t kMaxShift = 64 - LatencyHistogram::kSubBucketBits;
constexpr uint32_t kNumBuckets =
    LatencyHistogram::kSubBucketCount + kMaxShift * kHalf;

}  // namespace

LatencyHistogram::LatencyHistogram() : counts_(kNumBuckets, 0) {}

uint32_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSubBucketCount) return static_cast<uint32_t>(value);
  const uint32_t shift =
      static_cast<uint32_t>(std::bit_width(value)) - kSubBucketBits;
  const uint32_t sub = static_cast<uint32_t>(value >> shift);  // [kHalf, 2*kHalf)
  return kSubBucketCount + (shift - 1) * kHalf + (sub - kHalf);
}

uint64_t LatencyHistogram::BucketUpperBound(uint32_t index) {
  if (index < kSubBucketCount) return index;  // exact single-value bucket
  const uint32_t shift = (index - kSubBucketCount) / kHalf + 1;
  const uint64_t sub = (index - kSubBucketCount) % kHalf + kHalf;
  // (sub + 1) << shift wraps to 0 for the very last bucket, making its
  // upper bound UINT64_MAX — exactly right.
  return ((sub + 1) << shift) - 1;
}

void LatencyHistogram::Record(uint64_t value) {
  ++counts_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (uint32_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
}

uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      return std::clamp(BucketUpperBound(i), min_, max_);
    }
  }
  return max_;  // unreachable: cumulative reaches count_ >= rank
}

void LatencyHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~uint64_t{0};
  max_ = 0;
}

}  // namespace tfsn
