#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

namespace tfsn {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Pct(double fraction, int precision) {
  return Fmt(fraction * 100.0, precision);
}

std::string TextTable::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += c == 0 ? "| " : " ";
      line += cell;
      line.append(width[c] - cell.size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < width.size(); ++c) {
    rule += c == 0 ? "|-" : "-";
    rule.append(width[c], '-');
    rule += "-|";
  }
  out += rule + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TextTable::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string esc = "\"";
    for (char ch : cell) {
      if (ch == '"') esc += '"';
      esc += ch;
    }
    esc += '"';
    return esc;
  };
  auto render = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) line += ',';
      line += escape(row[c]);
    }
    line += '\n';
    return line;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

}  // namespace tfsn
