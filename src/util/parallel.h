// Minimal data-parallel helpers: static range partitioning and dynamic
// (atomic-counter) item scheduling over std::thread.
//
// The row kernels in src/compat are pure functions and the RowCache is
// thread-safe, so parallel callers share one cache and split the *source
// nodes* across workers — embarrassingly parallel, contention only on the
// cache shards.
//
// Two dispatch flavours are provided:
//  * ParallelFor(n, threads, fn)      — fn(worker, begin, end), static
//    chunks. The templated overload binds lambdas directly (no
//    std::function indirection); the std::function overload remains for
//    callers that already hold one.
//  * ParallelForEach(n, threads, fn)  — fn(i), items handed out one at a
//    time from a shared atomic counter. Use when per-item cost varies
//    wildly (e.g. SBP rows next to NNE rows).

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace tfsn {

/// Number of workers to use for `hint`. 0 resolves to the TFSN_THREADS
/// environment variable when set (and a positive integer), else the
/// hardware concurrency, capped.
uint32_t ResolveThreads(uint32_t hint);

namespace internal {

template <typename Fn>
void ParallelForImpl(uint64_t n, uint32_t threads, Fn&& fn) {
  threads = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::min<uint64_t>(threads, n == 0 ? 1 : n)));
  if (threads == 1) {
    fn(0, uint64_t{0}, n);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  uint64_t chunk = (n + threads - 1) / threads;
  for (uint32_t w = 0; w < threads; ++w) {
    uint64_t begin = std::min<uint64_t>(n, static_cast<uint64_t>(w) * chunk);
    uint64_t end = std::min<uint64_t>(n, begin + chunk);
    pool.emplace_back([&fn, w, begin, end] { fn(w, begin, end); });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace internal

/// Invokes fn(worker_id, begin, end) on `threads` workers, statically
/// partitioning [0, n). Blocks until all workers finish. fn must not throw.
/// This templated overload dispatches the callable directly.
template <typename Fn>
void ParallelFor(uint64_t n, uint32_t threads, Fn&& fn) {
  internal::ParallelForImpl(n, threads, std::forward<Fn>(fn));
}

/// Overload for callers that already hold a std::function.
void ParallelFor(uint64_t n, uint32_t threads,
                 const std::function<void(uint32_t, uint64_t, uint64_t)>& fn);

/// Invokes fn(i) once for every i in [0, n), handing items to `threads`
/// workers from a shared atomic counter (dynamic load balancing). Iteration
/// order across workers is unspecified. Blocks until done; fn must not
/// throw and must tolerate concurrent invocations for distinct i.
template <typename Fn>
void ParallelForEach(uint64_t n, uint32_t threads, Fn&& fn) {
  threads = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::min<uint64_t>(threads, n == 0 ? 1 : n)));
  if (threads == 1) {
    for (uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Lock-free ordering contract: `next` only hands out item indices —
  // relaxed fetch_add is enough because each index is claimed exactly
  // once and no data is published through the counter. Results written
  // by fn(i) are made visible to the caller by the thread joins below
  // (join is a full happens-before edge).
  std::atomic<uint64_t> next{0};
  auto worker = [&next, n, &fn] {
    for (;;) {
      uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (uint32_t w = 1; w < threads; ++w) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

}  // namespace tfsn
