// Minimal data-parallel helper: static range partitioning over std::thread.
//
// The compatibility oracles are deliberately single-threaded (they own row
// caches); parallel experiment code instead gives each worker its own
// oracle and splits the *source nodes* across workers — embarrassingly
// parallel, no sharing, no locks.

#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace tfsn {

/// Number of workers to use for `hint` (0 = hardware concurrency, capped).
uint32_t ResolveThreads(uint32_t hint);

/// Invokes fn(worker_id, begin, end) on `threads` workers, statically
/// partitioning [0, n). Blocks until all workers finish. fn must not throw.
void ParallelFor(uint64_t n, uint32_t threads,
                 const std::function<void(uint32_t, uint64_t, uint64_t)>& fn);

}  // namespace tfsn
