// Incremental 64-bit FNV-1a hashing.
//
// Used wherever the repo needs a tiny deterministic fingerprint — the
// oracle/cache key base (src/compat/compatibility.cc) and the CLI's
// replay team digest — so the constants live in exactly one place.
// Not a cryptographic hash.

#pragma once

#include <cstdint>

namespace tfsn {

class Fnv1a {
 public:
  /// Folds one byte into the state.
  void MixByte(uint8_t b) {
    h_ = (h_ ^ b) * kPrime;
  }

  /// Folds a 64-bit value, least significant byte first.
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<uint8_t>((v >> (i * 8)) & 0xff));
    }
  }

  uint64_t digest() const { return h_; }

 private:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr uint64_t kPrime = 0x100000001b3ull;

  uint64_t h_ = kOffsetBasis;
};

}  // namespace tfsn
