#include "src/util/zipf.h"

#include <algorithm>
#include <cmath>

namespace tfsn {

ZipfSampler::ZipfSampler(uint32_t n, double s) : s_(s) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r) + 1.0, -s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift
}

uint32_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(uint32_t r) const {
  if (r >= cdf_.size()) return 0.0;
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace tfsn
