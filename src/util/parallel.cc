#include "src/util/parallel.h"

#include <algorithm>

namespace tfsn {

uint32_t ResolveThreads(uint32_t hint) {
  if (hint != 0) return hint;
  unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<uint32_t>(hw == 0 ? 4 : hw, 1, 64);
}

void ParallelFor(uint64_t n, uint32_t threads,
                 const std::function<void(uint32_t, uint64_t, uint64_t)>& fn) {
  threads = std::max<uint32_t>(1, std::min<uint64_t>(threads, n == 0 ? 1 : n));
  if (threads == 1) {
    fn(0, 0, n);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  uint64_t chunk = (n + threads - 1) / threads;
  for (uint32_t w = 0; w < threads; ++w) {
    uint64_t begin = std::min<uint64_t>(n, static_cast<uint64_t>(w) * chunk);
    uint64_t end = std::min<uint64_t>(n, begin + chunk);
    pool.emplace_back([&fn, w, begin, end] { fn(w, begin, end); });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace tfsn
