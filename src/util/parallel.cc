#include "src/util/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace tfsn {

uint32_t ResolveThreads(uint32_t hint) {
  if (hint != 0) return hint;
  if (const char* env = std::getenv("TFSN_THREADS")) {
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 1024) {
      return static_cast<uint32_t>(v);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<uint32_t>(hw == 0 ? 4 : hw, 1, 64);
}

void ParallelFor(uint64_t n, uint32_t threads,
                 const std::function<void(uint32_t, uint64_t, uint64_t)>& fn) {
  internal::ParallelForImpl(n, threads, fn);
}

}  // namespace tfsn
