// Zipf-distributed sampling over ranks 1..n.
//
// The paper assigns skills to users "with frequencies following a Zipf
// distribution as in real data" (Section 5, Wikipedia dataset). This sampler
// reproduces that: rank r is drawn with probability proportional to r^-s.

#pragma once

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace tfsn {

/// Samples ranks in [0, n) with P(rank = r) ∝ (r+1)^-s via inverse-CDF
/// binary search over the precomputed cumulative mass table.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `s` is the Zipf exponent (1.0 is the classic law).
  ZipfSampler(uint32_t n, double s);

  /// Draws one rank in [0, n).
  uint32_t Sample(Rng* rng) const;

  /// Probability mass of rank `r`.
  double Pmf(uint32_t r) const;

  uint32_t n() const { return static_cast<uint32_t>(cdf_.size()); }
  double exponent() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r), cdf_.back() == 1
};

}  // namespace tfsn
