#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace tfsn {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::CheckOK() const {
  if (!ok()) {
    std::fprintf(stderr, "FATAL: %s\n", ToString().c_str());
    std::abort();
  }
}

}  // namespace tfsn
