// Plain-text aligned table printer used by the benchmark harness to emit
// paper-style tables (Table 1/2/3) and figure series.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tfsn {

/// Accumulates rows of string cells and renders them as an aligned,
/// pipe-separated text table with a header rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; missing trailing cells render as empty.
  void AddRow(std::vector<std::string> row);

  /// Convenience cell formatters.
  static std::string Fmt(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 2);

  /// Renders the table, aligned, ready to print.
  std::string ToString() const;

  /// Renders as CSV (no alignment, comma-separated, quoted when needed).
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tfsn
