// Assertion and check macros in the style of glog/Arrow DCHECK.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace tfsn::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "%s:%d: TFSN_CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace tfsn::internal

/// Aborts with a diagnostic when `cond` is false. Enabled in all builds:
/// the checks guard data-structure invariants whose violation would silently
/// corrupt experiment results.
#define TFSN_CHECK(cond)                                        \
  do {                                                          \
    if (!(cond)) ::tfsn::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (false)

#define TFSN_CHECK_EQ(a, b) TFSN_CHECK((a) == (b))
#define TFSN_CHECK_NE(a, b) TFSN_CHECK((a) != (b))
#define TFSN_CHECK_LT(a, b) TFSN_CHECK((a) < (b))
#define TFSN_CHECK_LE(a, b) TFSN_CHECK((a) <= (b))
#define TFSN_CHECK_GT(a, b) TFSN_CHECK((a) > (b))
#define TFSN_CHECK_GE(a, b) TFSN_CHECK((a) >= (b))

#ifndef NDEBUG
#define TFSN_DCHECK(cond) TFSN_CHECK(cond)
#else
#define TFSN_DCHECK(cond) \
  do {                    \
  } while (false)
#endif
