// Result<T>: value-or-Status, in the style of arrow::Result.

#pragma once

#include <cstdlib>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace tfsn {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
template <typename T>
class Result {
 public:
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the value. Undefined when !ok().
  const T& ValueOrDie() const& {
    DieIfNotOk();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfNotOk();
    return *value_;
  }
  T&& ValueOrDie() && {
    DieIfNotOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void DieIfNotOk() const {
    if (!ok()) status_.CheckOK();
  }

  Status status_;
  std::optional<T> value_;
};

/// Assigns the unwrapped value of a Result expression to `lhs`, or returns
/// its error status to the caller.
#define TFSN_ASSIGN_OR_RETURN(lhs, rexpr)       \
  auto TFSN_CONCAT_(_res_, __LINE__) = (rexpr); \
  if (!TFSN_CONCAT_(_res_, __LINE__).ok())      \
    return TFSN_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(TFSN_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define TFSN_CONCAT_IMPL_(a, b) a##b
#define TFSN_CONCAT_(a, b) TFSN_CONCAT_IMPL_(a, b)

}  // namespace tfsn
