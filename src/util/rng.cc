#include "src/util/rng.h"

#include <unordered_set>

namespace tfsn {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's method: multiply-shift with rejection of the biased region.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k > n / 2) {
    // Dense case: partial Fisher-Yates over the full range.
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      uint32_t j = i + static_cast<uint32_t>(NextBounded(n - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  std::unordered_set<uint32_t> seen;
  while (out.size() < k) {
    uint32_t v = static_cast<uint32_t>(NextBounded(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace tfsn
