// Deterministic fault injection behind the TFSN_FAULTS build option.
//
// Production code marks a recoverable failure path with a named point:
//
//   if (TFSN_FAULT_POINT(<"module.failure_site">)) return false;
//
// In a normal build (TFSN_FAULTS off) the macro expands to the literal
// `false` — the branch is dead code the compiler removes, so shipping
// binaries carry zero overhead and no registry symbol dependencies from
// the call sites. With -DTFSN_FAULTS=ON every evaluation consults the
// process-wide FaultRegistry, which decides whether the point "fires"
// this time according to the schedule a test armed:
//
//   * nth:K      — fire exactly on the K-th evaluation (1-based);
//   * every:K    — fire on every K-th evaluation;
//   * p:P[:SEED] — fire with probability P per evaluation, driven by a
//                  private SplitMix64 stream (explicitly seeded, so the
//                  firing pattern reproduces across runs);
//   * always     — fire on every evaluation;
//   * off        — never fire (but still count evaluations).
//
// Counting schedules (nth/every/always) are robust to thread
// interleaving in aggregate: the hit counter is advanced under the
// registry mutex, so the number of fires over a run is deterministic
// even when *which* thread draws the firing evaluation is not. Injected
// faults must only exercise failure paths the code already recovers
// from — the fault-matrix test (tests/fault_matrix_test.cc) asserts the
// server's answers stay digest-identical under every schedule.
//
// Point names are namespaced "<module>.<site>" string literals, unique
// across the tree and documented in README.md's fault-point catalog —
// both enforced by tools/lint.sh.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace tfsn {

/// True in builds compiled with -DTFSN_FAULTS=ON; lets front ends fail
/// fast ("--fault requires a fault build") instead of silently no-opping.
#if defined(TFSN_FAULTS)
inline constexpr bool kFaultsEnabled = true;
#else
inline constexpr bool kFaultsEnabled = false;
#endif

/// When (and how often) an armed injection point fires.
struct FaultSchedule {
  enum class Mode : uint8_t {
    kOff = 0,
    kNth,          // fire exactly once, on the n-th evaluation (1-based)
    kEveryNth,     // fire on evaluations n, 2n, 3n, ...
    kProbability,  // fire with `probability` per evaluation (seeded)
    kAlways,
  };
  Mode mode = Mode::kOff;
  uint64_t n = 1;
  double probability = 0.0;
  uint64_t seed = 1;
};

/// Process-wide registry of named injection points. All member functions
/// are safe from any thread (one mutex; evaluations are cheap counter
/// bumps). Compiled into every build; only the TFSN_FAULT_POINT call
/// sites are compile-time gated.
class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  /// Arms `point` with `schedule`, resetting its counters and rng stream.
  void Arm(const std::string& point, FaultSchedule schedule);

  /// Disarms `point` (evaluations keep counting, nothing fires).
  void Disarm(const std::string& point);

  /// Disarms every point and drops all counters.
  void Reset();

  /// One evaluation of `point`: counts the hit and reports whether the
  /// armed schedule fires it. Unarmed points never fire.
  bool ShouldFire(const char* point);

  /// Evaluations of `point` so far (armed or not).
  uint64_t HitCount(const std::string& point) const;

  /// Times `point` actually fired.
  uint64_t FireCount(const std::string& point) const;

  /// Names with a non-kOff schedule currently armed.
  std::vector<std::string> ArmedPoints() const;

  /// Parses "nth:K", "every:K", "p:P[:SEED]", "always", or "off".
  /// Returns false (leaving *out untouched) on malformed text.
  static bool ParseSchedule(const std::string& text, FaultSchedule* out);

 private:
  struct PointState {
    FaultSchedule schedule;
    uint64_t hits = 0;
    uint64_t fires = 0;
    uint64_t rng = 0;  // SplitMix64 state for kProbability
  };

  FaultRegistry() = default;

  mutable Mutex mu_;
  std::unordered_map<std::string, PointState> points_ TFSN_GUARDED_BY(mu_);
};

/// One evaluation of the named injection point. `name` must be a string
/// literal (the lint catalog greps for it). Expands to plain `false`
/// unless the build enables TFSN_FAULTS.
#if defined(TFSN_FAULTS)
#define TFSN_FAULT_POINT(name) (::tfsn::FaultRegistry::Instance().ShouldFire(name))
#else
#define TFSN_FAULT_POINT(name) (false)
#endif

}  // namespace tfsn
