// Clang Thread Safety Analysis attribute macros.
//
// These wrap the [[clang::*]] capability attributes so locking invariants
// — "this member is guarded by that mutex", "this method requires the lock
// held", "this RAII type is a scoped capability" — are declared in the
// type system and machine-checked at compile time by
// `-Wthread-safety -Werror` (on in every Clang configuration, see the root
// CMakeLists). Off Clang the macros expand to nothing, so GCC builds are
// unaffected.
//
// Usage conventions in this repo:
//   * every mutex is a tfsn::Mutex (src/util/mutex.h) — std::mutex is
//     banned in src/ because the analysis cannot see through it;
//   * every member a mutex protects carries TFSN_GUARDED_BY(mu_);
//   * every private method that assumes a held lock declares
//     TFSN_REQUIRES(mu_) instead of saying so in a comment;
//   * public entry points that must NOT be called with the lock held (they
//     take it themselves) declare TFSN_EXCLUDES(mu_) so a re-entrant call
//     is a compile error, not a deadlock;
//   * deliberately lock-free state (relaxed counters, ready flags) is NOT
//     annotated — it carries an explicit comment on its ordering contract
//     instead (see e.g. RowCache's counters, TaskCompatView's lazy rows).
//
// tests/thread_safety_negative.cc proves the analysis is live: compiled
// with TFSN_TSA_NEGATIVE it touches a guarded member without the lock and
// must FAIL to build (registered as a WILL_FAIL CTest under Clang).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#pragma once

// NOLINTBEGIN(bugprone-macro-parentheses) — the macro arguments are
// attribute payloads (capability expressions), which cannot be
// parenthesized.

#if defined(__clang__)
#define TFSN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TFSN_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex" is the kind reported in
/// diagnostics).
#define TFSN_CAPABILITY(x) TFSN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (tfsn::MutexLock).
#define TFSN_SCOPED_CAPABILITY TFSN_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define TFSN_GUARDED_BY(x) TFSN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// is not).
#define TFSN_PT_GUARDED_BY(x) TFSN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the listed capabilities are held on entry (and
/// still held on exit).
#define TFSN_REQUIRES(...) \
  TFSN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function precondition: the listed capabilities are NOT held on entry —
/// the function acquires them itself. Turns self-deadlock into a compile
/// error.
#define TFSN_EXCLUDES(...) TFSN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on exit.
#define TFSN_ACQUIRE(...) \
  TFSN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability held on entry.
#define TFSN_RELEASE(...) \
  TFSN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define TFSN_TRY_ACQUIRE(b, ...) \
  TFSN_THREAD_ANNOTATION(try_acquire_capability(b, ##__VA_ARGS__))

/// Declares lock acquisition order (deadlock detection with
/// -Wthread-safety-beta).
#define TFSN_ACQUIRED_BEFORE(...) \
  TFSN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TFSN_ACQUIRED_AFTER(...) \
  TFSN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns a reference to the capability guarding the returned object.
#define TFSN_RETURN_CAPABILITY(x) TFSN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the invariant holds anyway.
#define TFSN_NO_THREAD_SAFETY_ANALYSIS \
  TFSN_THREAD_ANNOTATION(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)
