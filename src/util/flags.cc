#include "src/util/flags.h"

#include <algorithm>
#include <cstdlib>

namespace tfsn {

namespace {

// --batch-cap and --batch_cap are the same flag: keys are normalized to
// the underscored spelling at parse time and on lookup, so no call site
// has to probe both.
std::string Normalized(std::string name) {
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      passthrough_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[Normalized(body.substr(0, eq))] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[Normalized(body)] = argv[++i];
    } else {
      values_[Normalized(body)] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.contains(Normalized(name));
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(Normalized(name));
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(Normalized(name));
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(Normalized(name));
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(Normalized(name));
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace tfsn
