// Wall-clock stopwatch for experiment harnesses.

#pragma once

#include <chrono>

namespace tfsn {

/// Monotonic stopwatch; starts running at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tfsn
