// Status: lightweight error propagation in the style of Arrow / RocksDB.
//
// Functions that can fail return a Status (or a Result<T>, see result.h)
// instead of throwing. Statuses carry a code and a human-readable message.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace tfsn {

/// Error category for a Status.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kIOError = 4,
  kAlreadyExists = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kInfeasible = 9,  ///< A solver proved that no feasible solution exists.
  kUnavailable = 10,       ///< The service is shutting down or not serving.
  kDeadlineExceeded = 11,  ///< An SLO deadline expired (or cannot be met).
};

/// Returns a stable human-readable name for a status code ("OK", "IOError"...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail.
///
/// The OK status is represented with a null state pointer so that success —
/// by far the common case — costs one pointer and no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInfeasible() const { return code() == StatusCode::kInfeasible; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. For use in
  /// examples and benchmarks where errors are unrecoverable programmer bugs.
  void CheckOK() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // nullptr == OK
};

/// Propagates a non-OK status to the caller.
#define TFSN_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::tfsn::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace tfsn
