#include "src/util/fault_injection.h"

#include <cstdlib>

namespace tfsn {

namespace {

// SplitMix64 step: the standard 64-bit finalizer over an incrementing
// state. Deterministic per (seed, evaluation index) — the probability
// mode must reproduce exactly under replay, so no random_device here.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* instance = new FaultRegistry();
  return *instance;
}

void FaultRegistry::Arm(const std::string& point, FaultSchedule schedule) {
  MutexLock lock(&mu_);
  PointState& state = points_[point];
  state.schedule = schedule;
  state.hits = 0;
  state.fires = 0;
  state.rng = schedule.seed;
}

void FaultRegistry::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.schedule = FaultSchedule{};
}

void FaultRegistry::Reset() {
  MutexLock lock(&mu_);
  points_.clear();
}

bool FaultRegistry::ShouldFire(const char* point) {
  MutexLock lock(&mu_);
  PointState& state = points_[point];
  ++state.hits;
  bool fire = false;
  switch (state.schedule.mode) {
    case FaultSchedule::Mode::kOff:
      break;
    case FaultSchedule::Mode::kNth:
      fire = state.hits == state.schedule.n;
      break;
    case FaultSchedule::Mode::kEveryNth:
      fire = state.schedule.n != 0 && state.hits % state.schedule.n == 0;
      break;
    case FaultSchedule::Mode::kProbability: {
      const uint64_t draw = SplitMix64(&state.rng) >> 11;  // 53 bits
      const double u =
          static_cast<double>(draw) * (1.0 / 9007199254740992.0);  // 2^-53
      fire = u < state.schedule.probability;
      break;
    }
    case FaultSchedule::Mode::kAlways:
      fire = true;
      break;
  }
  if (fire) ++state.fires;
  return fire;
}

uint64_t FaultRegistry::HitCount(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::FireCount(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  MutexLock lock(&mu_);
  std::vector<std::string> armed;
  for (const auto& [name, state] : points_) {
    if (state.schedule.mode != FaultSchedule::Mode::kOff) {
      armed.push_back(name);
    }
  }
  return armed;
}

namespace {

// strtoull accepts (and wraps) leading '-', so counters and seeds get an
// explicit digits-only gate.
bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

bool FaultRegistry::ParseSchedule(const std::string& text,
                                  FaultSchedule* out) {
  FaultSchedule parsed;
  if (text == "off") {
    parsed.mode = FaultSchedule::Mode::kOff;
  } else if (text == "always") {
    parsed.mode = FaultSchedule::Mode::kAlways;
  } else if (text.rfind("nth:", 0) == 0 || text.rfind("every:", 0) == 0) {
    const bool nth = text.rfind("nth:", 0) == 0;
    const std::string arg = text.substr(nth ? 4 : 6);
    if (!AllDigits(arg)) return false;
    const unsigned long long n = std::strtoull(arg.c_str(), nullptr, 10);
    if (n == 0) return false;
    parsed.mode = nth ? FaultSchedule::Mode::kNth
                      : FaultSchedule::Mode::kEveryNth;
    parsed.n = n;
  } else if (text.rfind("p:", 0) == 0) {
    std::string arg = text.substr(2);
    const size_t colon = arg.find(':');
    if (colon != std::string::npos) {
      const std::string seed_text = arg.substr(colon + 1);
      if (!AllDigits(seed_text)) return false;
      parsed.seed = std::strtoull(seed_text.c_str(), nullptr, 10);
      arg = arg.substr(0, colon);
    }
    char* end = nullptr;
    const double p = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
      return false;
    }
    parsed.mode = FaultSchedule::Mode::kProbability;
    parsed.probability = p;
  } else {
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace tfsn
