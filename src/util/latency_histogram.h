// Log-bucketed latency histogram for server metrics.
//
// The serving layer (src/serve) tracks per-request latency across many
// worker threads; keeping every sample would cost memory proportional to
// the request count, and a plain sorted-vector percentile would need a
// post-run merge sort. This histogram is the standard HDR-style
// compromise: values land in buckets whose width grows geometrically,
// giving a bounded relative error (at most 2/2^kSubBucketBits ≈ 6%)
// over the full uint64 range with a small fixed footprint.
//
// Counts are plain (non-atomic) uint64s: each worker owns a private
// histogram and the server merges them on demand — Merge is exact, so the
// merged percentile equals the percentile of one histogram fed every
// sample. Rank arithmetic in ValueAtQuantile is exact over the counts;
// only the reported value is bucket-quantized (and clamped to the exact
// observed min/max, so p0/p100 are exact).

#pragma once

#include <cstdint>
#include <vector>

namespace tfsn {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: each power-of-two range [2^b, 2^(b+1)) is
  /// split into 2^(kSubBucketBits-1) linear sub-buckets, bounding the
  /// relative quantization error by 2^-(kSubBucketBits-1).
  static constexpr uint32_t kSubBucketBits = 5;
  static constexpr uint32_t kSubBucketCount = 1u << kSubBucketBits;

  LatencyHistogram();

  /// Records one sample (any uint64; units are the caller's — the serving
  /// layer records microseconds).
  void Record(uint64_t value);

  /// Adds every sample of `other` into this histogram (exact: bucket
  /// layouts are identical by construction).
  void Merge(const LatencyHistogram& other);

  /// Number of recorded samples.
  uint64_t count() const { return count_; }
  /// Exact smallest / largest recorded sample (0 when empty).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  /// Exact mean (sums are kept in full precision; 0 when empty).
  double Mean() const;

  /// Value at quantile q in [0, 1] — e.g. 0.5 / 0.95 / 0.99. Returns the
  /// upper bound of the bucket holding the sample of rank
  /// max(1, ceil(q * count)), clamped to [min(), max()]; 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

  /// Resets to the empty state (for windowed metrics).
  void Clear();

 private:
  static uint32_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(uint32_t index);

  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~uint64_t{0};
  uint64_t max_ = 0;
};

}  // namespace tfsn
