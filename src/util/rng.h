// Deterministic, fast pseudo-random number generation.
//
// Experiments must be reproducible across runs and platforms, so the library
// uses its own xoshiro256** generator seeded through SplitMix64 rather than
// std::mt19937 + distribution objects (whose output is not portable).

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tfsn {

/// SplitMix64 step; used to expand a single seed into generator state.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** — fast, high-quality 64-bit PRNG with portable output.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical streams on all
  /// platforms.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless method with rejection, so the result is unbiased.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct values from [0, n) in selection order.
  /// Requires k <= n. O(k) expected time for k << n, O(n) otherwise.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Splits off an independently-seeded child generator; used to give each
  /// experiment repetition its own deterministic stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace tfsn
