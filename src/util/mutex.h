// Annotated mutex / RAII lock / condition-variable wrappers.
//
// Thin, zero-overhead shims over std::mutex and std::condition_variable
// that carry the Clang Thread Safety Analysis attributes from
// thread_annotations.h, so "which lock protects what" is checked at
// compile time (-Wthread-safety -Werror on every Clang build). All of
// src/ uses these instead of <mutex> primitives directly — the analysis
// cannot see through std::mutex, std::lock_guard, or std::unique_lock.
//
//   tfsn::Mutex      — a TFSN_CAPABILITY("mutex") over std::mutex.
//   tfsn::MutexLock  — scoped lock; relockable (Unlock()/Lock()) so the
//                      "drop the lock to notify / do expensive work, then
//                      retake it" pattern stays analyzable.
//   tfsn::CondVar    — condition variable whose Wait() declares
//                      TFSN_REQUIRES(mu): waiting without the lock is a
//                      compile error. Backed by std::condition_variable
//                      (not _any), so there is no extra internal mutex.
//
// The method *bodies* operate on the raw std::mutex (invisible to the
// analysis); the *signatures* carry the capability contract. That is the
// standard implementation shape for annotated wrappers — the analysis
// checks every caller, not the shim internals.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace tfsn {

class CondVar;

/// A standard mutex carrying the `capability` attribute. Non-recursive;
/// same semantics and cost as std::mutex.
class TFSN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TFSN_ACQUIRE() { mu_.lock(); }
  void Unlock() TFSN_RELEASE() { mu_.unlock(); }
  /// True (and the lock is held) iff the mutex was free.
  bool TryLock() TFSN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over a tfsn::Mutex. Beyond plain scoping it is
/// *relockable*: Unlock() releases early (e.g. to notify a CondVar or run
/// expensive work outside the critical section) and Lock() retakes it;
/// the destructor releases only if currently held. The analysis tracks
/// the held/released state through both, so guarded accesses in the
/// unlocked window are still compile errors.
class TFSN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TFSN_ACQUIRE(mu) : mu_(mu) {
    mu_->mu_.lock();
  }
  ~MutexLock() TFSN_RELEASE() {
    if (held_) mu_->mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the lock before scope exit. Must be held.
  void Unlock() TFSN_RELEASE() {
    held_ = false;
    mu_->mu_.unlock();
  }

  /// Retakes the lock after Unlock(). Must not be held.
  void Lock() TFSN_ACQUIRE() {
    mu_->mu_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool held_ = true;
};

/// Condition variable bound to tfsn::Mutex. Wait() requires the mutex held
/// — enforced at compile time — and atomically releases it while blocked,
/// exactly like std::condition_variable::wait. Spurious wakeups happen;
/// always wait in a predicate loop (or use the predicate overload).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). `mu` is released while
  /// blocked and re-held on return.
  void Wait(Mutex* mu) TFSN_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait; the
    // release() afterwards hands ownership back to the caller's MutexLock.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until `pred()` is true. `pred` runs with `mu` held; if it reads
  /// state guarded by `mu`, annotate the lambda with TFSN_REQUIRES(mu) (or
  /// inline the loop at the call site so the enclosing scope's held
  /// capability covers it).
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) TFSN_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Like Wait(mu) but gives up after `timeout_ms` milliseconds. Returns
  /// false iff the wait timed out; true on notify *or* spurious wakeup —
  /// callers must re-check their predicate either way and re-derive the
  /// remaining time themselves (deadline loops, not per-call budgets).
  bool WaitFor(Mutex* mu, int64_t timeout_ms) TFSN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status st =
        cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms));
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tfsn
