#include "src/skills/skills_io.h"

#include <fstream>
#include <sstream>

namespace tfsn {

std::string ToSkillsString(const SkillAssignment& sa) {
  std::string out = "# tfsn skills: one line per user\n!skills " +
                    std::to_string(sa.num_skills()) + "\n";
  for (uint32_t u = 0; u < sa.num_users(); ++u) {
    bool first = true;
    for (SkillId s : sa.SkillsOf(u)) {
      if (!first) out += ' ';
      out += std::to_string(s);
      first = false;
    }
    out += '\n';
  }
  return out;
}

Result<SkillAssignment> ParseSkills(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::vector<SkillId>> users;
  uint32_t num_skills = 0;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '#') continue;
    if (line.rfind("!skills", 0) == 0) {
      std::istringstream directive(line.substr(7));
      if (!(directive >> num_skills)) {
        return Status::IOError("bad !skills directive at line " +
                               std::to_string(line_no));
      }
      continue;
    }
    std::istringstream ls(line);
    std::vector<SkillId> skills;
    int64_t raw;
    while (ls >> raw) {
      if (raw < 0) {
        return Status::IOError("negative skill id at line " +
                               std::to_string(line_no));
      }
      skills.push_back(static_cast<SkillId>(raw));
    }
    if (!ls.eof()) {
      return Status::IOError("malformed skill line " + std::to_string(line_no));
    }
    users.push_back(std::move(skills));
  }
  return SkillAssignment::Create(std::move(users), num_skills);
}

Status WriteSkills(const SkillAssignment& sa, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToSkillsString(sa);
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<SkillAssignment> LoadSkills(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseSkills(buffer.str());
}

}  // namespace tfsn
