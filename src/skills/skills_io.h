// Skill-assignment serialization.
//
// Format, one line per user (dense user ids implied by line order):
//   # comments allowed
//   <skill> <skill> ...        (empty line = user with no skills)
// A leading "!skills <n>" directive pins the universe size so that trailing
// skills with no holders survive a round trip.

#pragma once

#include <string>

#include "src/skills/skills.h"
#include "src/util/result.h"

namespace tfsn {

/// Serializes to the line format above.
std::string ToSkillsString(const SkillAssignment& sa);

/// Parses the line format (used by tests and LoadSkills).
Result<SkillAssignment> ParseSkills(const std::string& text);

/// Writes `sa` to `path`.
Status WriteSkills(const SkillAssignment& sa, const std::string& path);

/// Loads a skill assignment from `path`.
Result<SkillAssignment> LoadSkills(const std::string& path);

}  // namespace tfsn
