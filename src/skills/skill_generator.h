// Synthetic skill assignment and task generation.
//
// The paper (Section 5, Wikipedia) generates "500 distinct skills with
// frequencies following a Zipf distribution as in real data. Each skill is
// assigned to users in the network uniformly at random." ZipfSkills
// implements exactly that recipe and is also how we attach skills to the
// synthetic Slashdot/Epinions stand-ins.

#pragma once

#include <cstdint>

#include "src/skills/skills.h"
#include "src/util/rng.h"

namespace tfsn {

/// Parameters for Zipf-distributed skill assignment.
struct ZipfSkillParams {
  uint32_t num_skills = 500;
  /// Zipf exponent of the skill-frequency distribution.
  double exponent = 1.0;
  /// Average number of skills per user; total assignments ≈ n * this.
  double mean_skills_per_user = 3.0;
  /// When true, every user is guaranteed at least one skill.
  bool every_user_has_skill = true;
};

/// Draws a skill assignment for `num_users` users: skill frequencies follow
/// Zipf(`exponent`), and each assignment lands on a uniformly random user.
SkillAssignment ZipfSkills(uint32_t num_users, const ZipfSkillParams& params,
                           Rng* rng);

/// Generates a random task of `k` distinct skills ("for a given task of
/// size k, we generated tasks by randomly selecting k skills").
/// Only skills with at least one holder are eligible, matching the paper's
/// use of skills observed in the data. Requires k <= #non-empty skills.
Task RandomTask(const SkillAssignment& sa, uint32_t k, Rng* rng);

/// Generates `count` random tasks of size `k`.
std::vector<Task> RandomTasks(const SkillAssignment& sa, uint32_t k,
                              uint32_t count, Rng* rng);

}  // namespace tfsn
