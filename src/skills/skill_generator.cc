#include "src/skills/skill_generator.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/zipf.h"

namespace tfsn {

SkillAssignment ZipfSkills(uint32_t num_users, const ZipfSkillParams& params,
                           Rng* rng) {
  TFSN_CHECK_GT(num_users, 0u);
  TFSN_CHECK_GT(params.num_skills, 0u);
  ZipfSampler zipf(params.num_skills, params.exponent);
  std::vector<std::vector<SkillId>> user_skills(num_users);
  const uint64_t target =
      static_cast<uint64_t>(params.mean_skills_per_user * num_users);
  for (uint64_t i = 0; i < target; ++i) {
    SkillId skill = zipf.Sample(rng);
    uint32_t user = static_cast<uint32_t>(rng->NextBounded(num_users));
    user_skills[user].push_back(skill);
  }
  if (params.every_user_has_skill) {
    for (auto& skills : user_skills) {
      if (skills.empty()) skills.push_back(zipf.Sample(rng));
    }
  }
  return std::move(
             SkillAssignment::Create(std::move(user_skills), params.num_skills))
      .ValueOrDie();
}

Task RandomTask(const SkillAssignment& sa, uint32_t k, Rng* rng) {
  std::vector<SkillId> eligible;
  eligible.reserve(sa.num_skills());
  for (SkillId s = 0; s < sa.num_skills(); ++s) {
    if (sa.Frequency(s) > 0) eligible.push_back(s);
  }
  TFSN_CHECK_LE(k, eligible.size());
  std::vector<uint32_t> picks =
      rng->SampleWithoutReplacement(static_cast<uint32_t>(eligible.size()), k);
  std::vector<SkillId> skills;
  skills.reserve(k);
  for (uint32_t p : picks) skills.push_back(eligible[p]);
  return Task(std::move(skills));
}

std::vector<Task> RandomTasks(const SkillAssignment& sa, uint32_t k,
                              uint32_t count, Rng* rng) {
  std::vector<Task> tasks;
  tasks.reserve(count);
  for (uint32_t i = 0; i < count; ++i) tasks.push_back(RandomTask(sa, k, rng));
  return tasks;
}

}  // namespace tfsn
