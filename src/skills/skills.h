// Skill universe and per-user skill assignment (paper Section 2).
//
// Each individual u possesses skill(u) ⊆ S. SkillAssignment stores both the
// forward map (user -> skills) and the inverted index (skill -> holders)
// because team formation consults both directions heavily.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace tfsn {

/// Skill identifier; dense ids in [0, num_skills).
using SkillId = uint32_t;

/// Per-user skill sets with an inverted skill->holders index.
class SkillAssignment {
 public:
  SkillAssignment() = default;

  /// Builds from a user -> skill-list map. Skill lists are deduplicated and
  /// sorted. `num_skills` must be an upper bound on all skill ids; pass 0 to
  /// infer it as (max id + 1).
  static Result<SkillAssignment> Create(
      std::vector<std::vector<SkillId>> user_skills, uint32_t num_skills = 0);

  uint32_t num_users() const { return static_cast<uint32_t>(user_offsets_.size()) - 1; }
  uint32_t num_skills() const { return static_cast<uint32_t>(skill_offsets_.size()) - 1; }

  /// Skills of user u, sorted ascending.
  std::span<const SkillId> SkillsOf(uint32_t user) const {
    return {user_skills_.data() + user_offsets_[user],
            user_skills_.data() + user_offsets_[user + 1]};
  }

  /// Users holding skill s, sorted ascending.
  std::span<const uint32_t> Holders(SkillId skill) const {
    return {skill_users_.data() + skill_offsets_[skill],
            skill_users_.data() + skill_offsets_[skill + 1]};
  }

  /// True if user u possesses skill s. O(log |skills(u)|).
  bool HasSkill(uint32_t user, SkillId skill) const;

  /// Number of holders of skill s.
  uint32_t Frequency(SkillId skill) const {
    return static_cast<uint32_t>(skill_offsets_[skill + 1] - skill_offsets_[skill]);
  }

  /// Total number of (user, skill) assignments.
  uint64_t num_assignments() const { return user_skills_.size(); }

  /// One-line summary.
  std::string ToString() const;

 private:
  // CSR in both directions.
  std::vector<uint64_t> user_offsets_{0};
  std::vector<SkillId> user_skills_;
  std::vector<uint64_t> skill_offsets_{0};
  std::vector<uint32_t> skill_users_;
};

/// A task: the set of skills required (paper: T ⊆ S). Stored sorted and
/// deduplicated.
class Task {
 public:
  Task() = default;
  explicit Task(std::vector<SkillId> skills);

  std::span<const SkillId> skills() const { return skills_; }
  size_t size() const { return skills_.size(); }
  bool empty() const { return skills_.empty(); }
  bool Contains(SkillId s) const;

  bool operator==(const Task&) const = default;

 private:
  std::vector<SkillId> skills_;
};

/// Tracks which skills of a task are already covered during greedy team
/// construction.
class SkillCoverage {
 public:
  explicit SkillCoverage(const Task& task);

  /// Marks every task skill of `user_skills` covered; returns the number of
  /// newly covered skills.
  uint32_t Cover(std::span<const SkillId> user_skills);

  bool IsCovered(SkillId s) const;
  bool AllCovered() const { return remaining_ == 0; }
  uint32_t remaining() const { return remaining_; }

  /// Task skills not yet covered, ascending.
  std::vector<SkillId> Uncovered() const;

 private:
  std::vector<SkillId> task_skills_;  // sorted
  std::vector<bool> covered_;         // parallel to task_skills_
  uint32_t remaining_ = 0;
};

}  // namespace tfsn
