#include "src/skills/skills.h"

#include <algorithm>
#include <cstdio>

#include "src/util/logging.h"

namespace tfsn {

Result<SkillAssignment> SkillAssignment::Create(
    std::vector<std::vector<SkillId>> user_skills, uint32_t num_skills) {
  SkillAssignment sa;
  uint32_t max_skill = 0;
  uint64_t total = 0;
  for (auto& skills : user_skills) {
    std::sort(skills.begin(), skills.end());
    skills.erase(std::unique(skills.begin(), skills.end()), skills.end());
    for (SkillId s : skills) max_skill = std::max(max_skill, s + 1);
    total += skills.size();
  }
  if (num_skills == 0) {
    num_skills = max_skill;
  } else if (max_skill > num_skills) {
    return Status::InvalidArgument("skill id exceeds declared num_skills");
  }

  sa.user_offsets_.reserve(user_skills.size() + 1);
  sa.user_skills_.reserve(total);
  for (const auto& skills : user_skills) {
    sa.user_skills_.insert(sa.user_skills_.end(), skills.begin(), skills.end());
    sa.user_offsets_.push_back(sa.user_skills_.size());
  }

  // Inverted index.
  std::vector<uint32_t> freq(num_skills, 0);
  for (SkillId s : sa.user_skills_) ++freq[s];
  sa.skill_offsets_.assign(num_skills + 1, 0);
  for (uint32_t s = 0; s < num_skills; ++s) {
    sa.skill_offsets_[s + 1] = sa.skill_offsets_[s] + freq[s];
  }
  sa.skill_users_.resize(total);
  std::vector<uint64_t> cursor(sa.skill_offsets_.begin(),
                               sa.skill_offsets_.end() - 1);
  for (uint32_t u = 0; u < user_skills.size(); ++u) {
    for (SkillId s : user_skills[u]) {
      sa.skill_users_[cursor[s]++] = u;
    }
  }
  return sa;
}

bool SkillAssignment::HasSkill(uint32_t user, SkillId skill) const {
  auto skills = SkillsOf(user);
  return std::binary_search(skills.begin(), skills.end(), skill);
}

std::string SkillAssignment::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "SkillAssignment(users=%u, skills=%u, assignments=%llu)",
                num_users(), num_skills(),
                static_cast<unsigned long long>(num_assignments()));
  return buf;
}

Task::Task(std::vector<SkillId> skills) : skills_(std::move(skills)) {
  std::sort(skills_.begin(), skills_.end());
  skills_.erase(std::unique(skills_.begin(), skills_.end()), skills_.end());
}

bool Task::Contains(SkillId s) const {
  return std::binary_search(skills_.begin(), skills_.end(), s);
}

SkillCoverage::SkillCoverage(const Task& task)
    : task_skills_(task.skills().begin(), task.skills().end()),
      covered_(task_skills_.size(), false),
      remaining_(static_cast<uint32_t>(task_skills_.size())) {}

uint32_t SkillCoverage::Cover(std::span<const SkillId> user_skills) {
  uint32_t newly = 0;
  // Both sequences are sorted: merge-intersect.
  size_t i = 0, j = 0;
  while (i < task_skills_.size() && j < user_skills.size()) {
    if (task_skills_[i] < user_skills[j]) {
      ++i;
    } else if (task_skills_[i] > user_skills[j]) {
      ++j;
    } else {
      if (!covered_[i]) {
        covered_[i] = true;
        ++newly;
        --remaining_;
      }
      ++i;
      ++j;
    }
  }
  return newly;
}

bool SkillCoverage::IsCovered(SkillId s) const {
  auto it = std::lower_bound(task_skills_.begin(), task_skills_.end(), s);
  TFSN_CHECK(it != task_skills_.end() && *it == s);
  return covered_[static_cast<size_t>(it - task_skills_.begin())];
}

std::vector<SkillId> SkillCoverage::Uncovered() const {
  std::vector<SkillId> out;
  for (size_t i = 0; i < task_skills_.size(); ++i) {
    if (!covered_[i]) out.push_back(task_skills_[i]);
  }
  return out;
}

}  // namespace tfsn
