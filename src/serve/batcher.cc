#include "src/serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <span>
#include <utility>

#include "src/team/task_view.h"
#include "src/util/status.h"

namespace tfsn::serve {

double JaccardSorted(const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b) {
  size_t inter = 0;
  size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] == b[ib]) {
      ++inter;
      ++ia;
      ++ib;
    } else if (a[ia] < b[ib]) {
      ++ia;
    } else {
      ++ib;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

std::vector<NodeId> UnionSorted(const std::vector<NodeId>& a,
                                const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

namespace {

std::vector<SkillId> UnionSkills(const std::vector<SkillId>& a,
                                 std::span<const SkillId> b) {
  std::vector<SkillId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

BatchScheduler::BatchScheduler(const SkillAssignment& skills, bool sbph,
                               BatchPolicy policy, DeadlinePolicy deadline)
    : skills_(skills), sbph_(sbph), policy_(policy), deadline_(deadline) {}

BatchScheduler::Pending BatchScheduler::Prepared(ScheduledRequest item) const {
  Pending p;
  p.universe = HolderUniverse(skills_, item.request.task.skills());
  p.item = std::move(item);
  return p;
}

size_t BatchScheduler::pending() const {
  MutexLock lock(&mu_);
  return pending_.size();
}

void BatchScheduler::TakePending(std::vector<ScheduledRequest>* out) {
  MutexLock lock(&mu_);
  for (Pending& p : pending_) out->push_back(std::move(p.item));
  pending_.clear();
}

bool BatchScheduler::NextBatch(AdmissionQueue<ScheduledRequest>* queue,
                               RequestBatch* out) {
  // Requests whose deadline expired in the window. Collected under mu_,
  // fulfilled only after unlocking (set_value wakes waiting callers — no
  // reason to do that while holding the scheduler).
  std::vector<ScheduledRequest> expired;
  auto flush_expired = [this, &expired] {  // call with mu_ NOT held
    if (expired.empty()) return;
    shed_.fetch_add(expired.size(), std::memory_order_relaxed);
    for (ScheduledRequest& sr : expired) {
      FulfillError(&sr,
                   Status::DeadlineExceeded("deadline expired in queue"));
    }
    expired.clear();
  };

  MutexLock lock(&mu_);
  for (;;) {
    // Top up the grouping window with whatever is immediately available.
    // Footprints are computed with the scheduler unlocked — sorting
    // holder universes is the expensive part of admission, and other
    // workers can group pending work meanwhile. (Concurrent drains may
    // interleave each other's items, so the pending window is
    // arrival-ordered per drain, not globally; results never depend on
    // order — only which requests share a view build.)
    size_t room = pending_.size() < policy_.scan_window
                      ? policy_.scan_window - pending_.size()
                      : 0;
    if (room > 0) {
      lock.Unlock();
      std::vector<ScheduledRequest> drained;
      queue->DrainInto(&drained, room);
      std::vector<Pending> prepared;
      prepared.reserve(drained.size());
      for (ScheduledRequest& item : drained) {
        prepared.push_back(Prepared(std::move(item)));
      }
      lock.Lock();
      for (Pending& p : prepared) pending_.push_back(std::move(p));
    }
    // Shed anything already past its deadline: serving it would waste a
    // view-build slot on an answer the caller has given up on. The
    // promise is still fulfilled (typed DeadlineExceeded), never dropped.
    if (deadline_.shed >= ShedMode::kQueue) {
      const auto now = std::chrono::steady_clock::now();
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->item.deadline <= now) {
          expired.push_back(std::move(it->item));
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!pending_.empty()) break;
    // Nothing pending here: sleep until an arrival, shutdown, or a
    // sibling worker parks rejected requests in the pending window
    // (leftovers_ + Kick — the queue itself cannot signal that). The
    // flag is cleared while mu_ is held and pending_ is known empty, so
    // a sibling setting it afterwards is seen either by PopOr's first
    // predicate check or by its Kick.
    leftovers_.store(false, std::memory_order_release);
    lock.Unlock();
    flush_expired();
    ScheduledRequest item;
    const PopStatus status = queue->PopOr(&item, [this] {
      return leftovers_.load(std::memory_order_acquire);
    });
    if (status == PopStatus::kItem) {
      Pending p = Prepared(std::move(item));
      lock.Lock();
      pending_.push_back(std::move(p));
      continue;  // re-drain: more may have arrived with it
    }
    lock.Lock();
    if (status == PopStatus::kWakeup) continue;
    // Queue closed and drained. Serve what another worker left pending,
    // otherwise report shutdown.
    if (pending_.empty()) return false;
    break;
  }

  // Seed with the earliest-deadline pending request (EDF; the admission
  // sequence breaks ties, so deadline-free traffic — deadline == +inf —
  // keeps the oldest-first FIFO anchor), then greedily absorb later
  // arrivals with overlapping holder footprints.
  out->items.clear();
  auto seed_it = pending_.begin();
  for (auto it = std::next(pending_.begin()); it != pending_.end(); ++it) {
    if (it->item.deadline < seed_it->item.deadline ||
        (it->item.deadline == seed_it->item.deadline &&
         it->item.seq < seed_it->item.seq)) {
      seed_it = it;
    }
  }
  Pending seed = std::move(*seed_it);
  pending_.erase(seed_it);
  std::vector<SkillId> union_skills(seed.item.request.task.skills().begin(),
                                    seed.item.request.task.skills().end());
  std::vector<NodeId> universe = std::move(seed.universe);
  out->items.push_back(std::move(seed.item));

  auto it = pending_.begin();
  while (it != pending_.end() && out->items.size() < policy_.max_batch) {
    // Subsets always join: they add nothing to the union universe (their
    // Jaccard against a much larger union can be tiny, and the byte check
    // is moot — only their skills join the union task, for holder-mask
    // lookup, at a few words each).
    const bool subset =
        std::includes(universe.begin(), universe.end(), it->universe.begin(),
                      it->universe.end());
    if (!subset) {
      if (JaccardSorted(it->universe, universe) < policy_.min_jaccard) {
        ++it;
        continue;
      }
      std::vector<NodeId> merged = UnionSorted(universe, it->universe);
      std::vector<SkillId> merged_skills =
          UnionSkills(union_skills, it->item.request.task.skills());
      if (TaskCompatView::EstimateBytes(merged.size(), merged_skills.size(),
                                        sbph_) > policy_.max_view_bytes) {
        ++it;
        continue;
      }
      universe = std::move(merged);
      union_skills = std::move(merged_skills);
    } else {
      union_skills =
          UnionSkills(union_skills, it->item.request.task.skills());
    }
    out->items.push_back(std::move(it->item));
    it = pending_.erase(it);
  }

  out->union_task = Task(std::move(union_skills));
  out->universe = std::move(universe);
  // Members serve earliest-deadline-first within the batch (seq ties
  // keep FIFO), so the most urgent request pays the least service wait.
  std::sort(out->items.begin(), out->items.end(),
            [](const ScheduledRequest& a, const ScheduledRequest& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              return a.seq < b.seq;
            });
  // Anything this pass rejected stays pending; wake a sleeping sibling
  // to pick it up rather than letting it wait out our batch.
  if (!pending_.empty()) {
    leftovers_.store(true, std::memory_order_release);
    queue->Kick();
  }
  lock.Unlock();
  flush_expired();
  return true;
}

}  // namespace tfsn::serve
