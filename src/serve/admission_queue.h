// Bounded MPMC admission queue with backpressure and clean shutdown.
//
// The serving layer's front door: producers (workload generators, the CLI,
// eventually an RPC handler) push TeamRequests, consumers (the batching
// scheduler on behalf of the worker pool) pop them. The queue is a plain
// mutex + two condition variables over a ring-ish deque — at team-formation
// request rates (each request costs milliseconds of formation work) the
// lock is never the bottleneck, and the simple structure makes the
// shutdown semantics easy to get right:
//
//   * Bounded: Push blocks while the queue is full (backpressure into the
//     caller), TryPush refuses with ResourceExhausted instead — the
//     open-loop workload generator uses TryPush so a saturated server
//     drops rather than stalls arrivals. Refusals are typed tfsn::Status
//     values (queue-full vs shutting-down), so callers can tell
//     backpressure apart from shutdown and attach retry-after hints.
//   * Close(): producers fail fast (Push/TryPush return Unavailable),
//     consumers drain every item already admitted, then Pop returns
//     false. Nothing admitted is ever lost — the server relies on this to
//     fulfill every promise on shutdown.
//   * FIFO: items pop in push order (per the total order of push
//     completions under the lock).
//
// All member functions are safe to call from any number of threads. The
// locking discipline is compile-time checked: items_/closed_ carry
// TFSN_GUARDED_BY(mu_), and every entry point declares TFSN_EXCLUDES(mu_)
// so a call from a context already holding the queue lock (self-deadlock)
// fails to build under Clang's thread safety analysis.

#pragma once

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace tfsn::serve {

/// Outcome of an interruptible pop (see AdmissionQueue::PopOr).
enum class PopStatus {
  kItem,    // *out holds the popped item
  kWakeup,  // no item, not closed — the caller's wakeup predicate fired
  kClosed,  // closed and fully drained — no more items, ever
};

template <typename T>
class AdmissionQueue {
 public:
  /// `capacity` must be >= 1.
  explicit AdmissionQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Blocks while the queue is full; fails (item dropped) with
  /// Unavailable iff the queue was closed before space opened up.
  Status Push(T item) TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mu_);
    if (closed_) return Status::Unavailable("admission queue closed");
    items_.push_back(std::move(item));
    lock.Unlock();
    not_empty_.NotifyOne();
    return Status::OK();
  }

  /// Non-blocking admission: on success moves from *item; when full
  /// (ResourceExhausted) or closed (Unavailable) leaves *item untouched.
  Status TryPush(T* item) TFSN_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (closed_) return Status::Unavailable("admission queue closed");
      if (items_.size() >= capacity_) {
        return Status::ResourceExhausted("admission queue full");
      }
      items_.push_back(std::move(*item));
    }
    not_empty_.NotifyOne();
    return Status::OK();
  }

  /// Blocks while the queue is empty; returns false iff the queue is
  /// closed AND fully drained (every admitted item is popped first).
  bool Pop(T* out) TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(&mu_);
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    lock.Unlock();
    not_full_.NotifyOne();
    return true;
  }

  /// Interruptible pop: blocks until an item arrives, the queue closes,
  /// or the caller's `wakeup` predicate turns true (kWakeup). `wakeup` is
  /// evaluated under the queue lock, so it must be cheap and lock-free
  /// (e.g. an atomic load); pair it with Kick() from whichever thread
  /// makes the predicate true. The batching scheduler waits this way so
  /// an idle consumer sleeps fully (no polling) yet still wakes when a
  /// sibling worker parks rejected requests in the pending window —
  /// work that exists outside the queue and cannot signal not_empty_.
  /// An available item always wins over both other outcomes.
  template <typename Pred>
  PopStatus PopOr(T* out, Pred&& wakeup) TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_ && items_.empty() && !wakeup()) not_empty_.Wait(&mu_);
    if (!items_.empty()) {
      *out = std::move(items_.front());
      items_.pop_front();
      lock.Unlock();
      not_full_.NotifyOne();
      return PopStatus::kItem;
    }
    return closed_ ? PopStatus::kClosed : PopStatus::kWakeup;
  }

  /// Wakes every PopOr waiter so it re-evaluates its wakeup predicate.
  void Kick() { not_empty_.NotifyAll(); }

  /// Non-blocking pop; false when currently empty (closed or not).
  bool TryPop(T* out) TFSN_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (items_.empty()) return false;
      *out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyAll();
    return true;
  }

  /// Appends up to `max_items` immediately-available items to `out`
  /// without blocking; returns how many were taken. The batching
  /// scheduler uses this to widen its grouping window beyond the single
  /// blocking Pop that woke it.
  size_t DrainInto(std::vector<T>* out, size_t max_items) TFSN_EXCLUDES(mu_) {
    size_t taken = 0;
    {
      MutexLock lock(&mu_);
      while (taken < max_items && !items_.empty()) {
        out->push_back(std::move(items_.front()));
        items_.pop_front();
        ++taken;
      }
    }
    if (taken > 0) not_full_.NotifyAll();
    return taken;
  }

  /// Closes admission: subsequent and blocked pushes fail, pops drain the
  /// remaining items then fail. Idempotent.
  void Close() TFSN_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t size() const TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const TFSN_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ TFSN_GUARDED_BY(mu_);
  bool closed_ TFSN_GUARDED_BY(mu_) = false;
};

}  // namespace tfsn::serve
