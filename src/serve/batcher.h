// Skill-footprint batching scheduler.
//
// The expensive part of serving one team-formation request is per-task
// shared state: the row-cache prewarm of the task's holder universe and
// the dense TaskCompatView the greedy seed loop runs against. Requests
// whose holder universes overlap can share both — one view built for the
// *union* of their tasks serves every member bit-identically (see
// GreedyTeamFormer::FormWithView) — so the scheduler's job is to group
// queued requests by footprint overlap without letting the union view
// outgrow its byte budget.
//
// Grouping is greedy and deadline-anchored: the pending request with the
// earliest deadline seeds the batch (earliest-deadline-first; admission
// sequence breaks ties, so deadline-free traffic — whose deadline is
// +infinity — keeps the FIFO anchor that bounds starvation: every request
// is served no later than scan_window batch decisions after reaching the
// pending window), then later arrivals join while
//   * the Jaccard similarity |A ∩ U| / |A ∪ U| between their holder
//     universe A and the batch's accumulated union U stays above
//     min_jaccard (duplicates and subsets always pass),
//   * the union view's estimated bytes stay under max_view_bytes
//     (subsets skip this check too — they cannot grow the dense
//     matrices, only add holder-mask rows), and
//   * the batch stays under max_batch requests.
// A rejected request simply stays pending and seeds or joins a later
// batch; admission order among pending requests is preserved per drain
// (concurrent workers draining simultaneously may interleave, so the
// window is only approximately FIFO across workers — results never
// depend on it). Batch members are handed to the worker sorted
// earliest-deadline-first.
//
// Overload shedding (DeadlinePolicy::shed == ShedMode::kQueue): each
// NextBatch pass sheds pending requests whose deadline already expired —
// their promises are fulfilled with a DeadlineExceeded response (never
// dropped) and counted in shed_count(). This is what makes the PR 5
// pathology (seconds of queueing) impossible with a deadline set: an
// expired request costs one promise fulfillment, not a view build.
//
// NextBatch is safe to call from all workers concurrently; one mutex
// serializes the grouping decision (microseconds against the milliseconds
// a batch takes to serve — footprint sorting happens outside it).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/graph/signed_graph.h"
#include "src/serve/admission_queue.h"
#include "src/serve/types.h"
#include "src/skills/skills.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace tfsn::serve {

/// Grouping knobs. max_batch = 1 degenerates to one-task-per-view — the
/// unbatched baseline the throughput harness compares against.
struct BatchPolicy {
  /// Requests per batch (>= 1).
  uint32_t max_batch = 16;
  /// Minimum holder-universe Jaccard similarity against the batch union
  /// for a request to join. 0 admits everything that fits the byte cap.
  double min_jaccard = 0.05;
  /// Cap on the estimated union-view footprint
  /// (TaskCompatView::EstimateBytes).
  size_t max_view_bytes = 64ull << 20;
  /// How many queued requests the scheduler holds pending for grouping.
  uint32_t scan_window = 64;
};

/// One scheduled group plus the precomputed union footprint the worker
/// builds the shared view from.
struct RequestBatch {
  std::vector<ScheduledRequest> items;
  /// Union of the member tasks' skills.
  Task union_task;
  /// Sorted, deduplicated union of the members' holder universes ==
  /// the holder universe of union_task.
  std::vector<NodeId> universe;
};

class BatchScheduler {
 public:
  /// `skills` must outlive the scheduler. `sbph` selects the doubled
  /// bit-matrix term in the view byte estimate. `deadline` governs
  /// in-queue expiry shedding (only ShedMode::kQueue sheds here).
  BatchScheduler(const SkillAssignment& skills, bool sbph, BatchPolicy policy,
                 DeadlinePolicy deadline = {});

  /// Forms the next batch from `queue`, blocking while neither pending
  /// requests nor queued ones exist. Returns false when the queue is
  /// closed and everything (queue and pending window) is drained.
  bool NextBatch(AdmissionQueue<ScheduledRequest>* queue, RequestBatch* out)
      TFSN_EXCLUDES(mu_);

  /// Requests currently parked in the grouping window.
  size_t pending() const TFSN_EXCLUDES(mu_);

  /// Moves every request still parked in the grouping window into *out
  /// (appending). Shutdown safety net: after the workers exit, the server
  /// fulfills these with a typed Unavailable response so no admitted
  /// promise is ever abandoned — even if a worker died mid-fault with
  /// requests parked here.
  void TakePending(std::vector<ScheduledRequest>* out) TFSN_EXCLUDES(mu_);

  /// Requests shed in queue (deadline expired before service) so far.
  uint64_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }

  const BatchPolicy& policy() const { return policy_; }

 private:
  /// A pending request with its precomputed footprint.
  struct Pending {
    ScheduledRequest item;
    std::vector<NodeId> universe;  // sorted holder union of item's task
  };

  /// Computes the footprint of `item` (called with mu_ NOT held — the
  /// sort is the expensive part of admission).
  Pending Prepared(ScheduledRequest item) const;

  const SkillAssignment& skills_;
  const bool sbph_;
  const BatchPolicy policy_;
  const DeadlinePolicy deadline_;
  /// Monotonic tally of in-queue expiry sheds (relaxed: a plain event
  /// counter, no data published through it).
  std::atomic<uint64_t> shed_{0};
  mutable Mutex mu_;
  std::deque<Pending> pending_ TFSN_GUARDED_BY(mu_);
  /// True while requests sit in pending_ — the PopOr wakeup predicate of
  /// workers blocked on an empty queue, so a sibling's rejected leftovers
  /// get picked up immediately instead of waiting out a poll interval.
  /// Lock-free ordering contract: release store / acquire load so a
  /// waiter woken by Kick() observes the pending_ state the setter
  /// published under mu_ before setting the flag (the waiter still
  /// re-checks pending_ under mu_ after waking — the flag is purely a
  /// wakeup hint, never the source of truth).
  std::atomic<bool> leftovers_{false};
};

/// |a ∩ b| / |a ∪ b| over two sorted, deduplicated id vectors (1 when both
/// are empty). Exposed for tests.
double JaccardSorted(const std::vector<NodeId>& a, const std::vector<NodeId>& b);

/// Sorted union of two sorted, deduplicated vectors.
std::vector<NodeId> UnionSorted(const std::vector<NodeId>& a,
                                const std::vector<NodeId>& b);

}  // namespace tfsn::serve
