#include "src/serve/workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iterator>
#include <thread>

#include "src/util/logging.h"
#include "src/util/timer.h"

namespace tfsn::serve {

ZipfTaskSampler::ZipfTaskSampler(const SkillAssignment& skills,
                                 double exponent)
    : zipf_(1, exponent) {
  by_rank_.reserve(skills.num_skills());
  for (SkillId s = 0; s < skills.num_skills(); ++s) {
    if (skills.Frequency(s) > 0) by_rank_.push_back(s);
  }
  TFSN_CHECK(!by_rank_.empty());
  std::stable_sort(by_rank_.begin(), by_rank_.end(),
                   [&skills](SkillId a, SkillId b) {
                     return skills.Frequency(a) > skills.Frequency(b);
                   });
  zipf_ = ZipfSampler(static_cast<uint32_t>(by_rank_.size()), exponent);
}

Task ZipfTaskSampler::Sample(uint32_t task_size, Rng* rng) const {
  task_size = std::min<uint32_t>(task_size, num_skills());
  std::vector<SkillId> picked;
  picked.reserve(task_size);
  while (picked.size() < task_size) {
    const SkillId s = by_rank_[zipf_.Sample(rng)];
    if (std::find(picked.begin(), picked.end(), s) == picked.end()) {
      picked.push_back(s);
    }
  }
  return Task(std::move(picked));
}

PrewarmReport PrewarmZipfHead(CompatibilityOracle* oracle,
                              const SkillAssignment& skills,
                              const PrewarmOptions& options) {
  PrewarmReport report;
  Timer timer;
  if (options.fraction <= 0) return report;

  // Rank held skills by holder count, exactly like ZipfTaskSampler.
  std::vector<SkillId> by_rank;
  by_rank.reserve(skills.num_skills());
  for (SkillId s = 0; s < skills.num_skills(); ++s) {
    if (skills.Frequency(s) > 0) by_rank.push_back(s);
  }
  std::stable_sort(by_rank.begin(), by_rank.end(),
                   [&skills](SkillId a, SkillId b) {
                     return skills.Frequency(a) > skills.Frequency(b);
                   });
  std::vector<double> weight_of_skill(skills.num_skills(), 0.0);
  for (size_t r = 0; r < by_rank.size(); ++r) {
    weight_of_skill[by_rank[r]] =
        std::pow(static_cast<double>(r + 1), -options.zipf_exponent);
  }

  // Score holders by the Zipf mass of their skills: the probability a
  // sampled task puts them in the request footprint.
  std::vector<std::pair<double, NodeId>> scored;
  for (uint32_t u = 0; u < skills.num_users(); ++u) {
    double score = 0;
    for (SkillId s : skills.SkillsOf(u)) score += weight_of_skill[s];
    if (score > 0) scored.emplace_back(score, u);
  }
  report.holders_ranked = scored.size();
  std::sort(scored.begin(), scored.end(),
            [](const std::pair<double, NodeId>& a,
               const std::pair<double, NodeId>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;  // deterministic tie-break
            });

  const size_t head = std::min(
      scored.size(),
      static_cast<size_t>(std::ceil(options.fraction *
                                    static_cast<double>(scored.size()))));
  std::vector<NodeId> sources;
  sources.reserve(head);
  for (size_t i = 0; i < head; ++i) sources.push_back(scored[i].second);

  oracle->StreamRows(
      sources, options.threads, [](size_t, const CompatRow&) {},
      std::max<size_t>(1, options.batch));
  report.rows_prewarmed = sources.size();
  report.seconds = timer.Seconds();
  return report;
}

std::vector<TeamRequest> GenerateRequests(const SkillAssignment& skills,
                                          const WorkloadOptions& options) {
  ZipfTaskSampler sampler(skills, options.zipf_exponent);
  Rng rng(options.seed);
  std::vector<TeamRequest> requests;
  requests.reserve(options.num_requests);
  for (uint32_t i = 0; i < options.num_requests; ++i) {
    TeamRequest req;
    req.id = i;
    req.task = sampler.Sample(options.task_size, &rng);
    req.rng_seed = rng.Next();
    requests.push_back(std::move(req));
  }
  return requests;
}

namespace {

void SortById(std::vector<TeamResponse>* responses) {
  std::sort(responses->begin(), responses->end(),
            [](const TeamResponse& a, const TeamResponse& b) {
              return a.id < b.id;
            });
}

// Splits the fulfilled responses into the completed / shed / unavailable
// tallies (see WorkloadResult).
void TallyResponses(WorkloadResult* result) {
  result->completed = 0;
  result->shed = 0;
  result->degraded = 0;
  result->unavailable = 0;
  for (const TeamResponse& resp : result->responses) {
    if (resp.status.ok()) {
      ++result->completed;
      if (resp.degraded) ++result->degraded;
    } else if (resp.status.IsDeadlineExceeded()) {
      ++result->shed;
    } else {
      ++result->unavailable;
    }
  }
}

}  // namespace

WorkloadResult RunOpenLoop(TeamFormationServer* server,
                           std::vector<TeamRequest> requests, double qps,
                           Rng* arrival_rng) {
  TFSN_CHECK(qps > 0);
  WorkloadResult result;
  std::vector<std::future<TeamResponse>> futures;
  futures.reserve(requests.size());
  const auto start = std::chrono::steady_clock::now();
  double offset_s = 0;
  Timer timer;
  for (TeamRequest& req : requests) {
    // Exponential inter-arrival times make the arrival process Poisson.
    offset_s += -std::log1p(-arrival_rng->NextDouble()) / qps;
    std::this_thread::sleep_until(start + std::chrono::duration_cast<
                                              std::chrono::steady_clock::duration>(
                                              std::chrono::duration<double>(
                                                  offset_s)));
    std::future<TeamResponse> fut;
    const Status admitted = server->TrySubmit(std::move(req), &fut);
    if (admitted.ok()) {
      futures.push_back(std::move(fut));
      ++result.submitted;
    } else if (admitted.IsResourceExhausted()) {
      ++result.dropped;  // queue full: classic open-loop drop
    } else {
      ++result.rejected;  // admission control said "retry later"
    }
  }
  result.responses.reserve(futures.size());
  for (std::future<TeamResponse>& fut : futures) {
    result.responses.push_back(fut.get());
  }
  result.seconds = timer.Seconds();
  TallyResponses(&result);
  SortById(&result.responses);
  return result;
}

WorkloadResult RunBurst(TeamFormationServer* server,
                        std::vector<TeamRequest> requests) {
  WorkloadResult result;
  std::vector<std::future<TeamResponse>> futures;
  futures.reserve(requests.size());
  Timer timer;
  for (TeamRequest& req : requests) {
    std::future<TeamResponse> fut;
    const Status admitted = server->Submit(std::move(req), &fut);
    if (admitted.IsUnavailable()) break;  // shut down
    if (!admitted.ok()) {
      ++result.rejected;  // infeasible deadline; the stream keeps going
      continue;
    }
    futures.push_back(std::move(fut));
    ++result.submitted;
  }
  result.responses.reserve(futures.size());
  for (std::future<TeamResponse>& fut : futures) {
    result.responses.push_back(fut.get());
  }
  result.seconds = timer.Seconds();
  TallyResponses(&result);
  SortById(&result.responses);
  return result;
}

WorkloadResult RunClosedLoop(TeamFormationServer* server,
                             std::vector<TeamRequest> requests,
                             uint32_t clients) {
  clients = std::max<uint32_t>(1, clients);
  WorkloadResult result;
  // Lock-free ordering contract: `next` hands each request index to
  // exactly one client (relaxed fetch_add — no data is published through
  // it; requests[] is read-only from the clients' perspective until the
  // claimed element is moved out by its sole owner), and `submitted` is a
  // relaxed tally. The joins below order both, plus per_client, before
  // the merge loop reads them.
  std::atomic<size_t> next{0};
  std::vector<std::vector<TeamResponse>> per_client(clients);
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> rejected{0};
  Timer timer;
  {
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (uint32_t c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= requests.size()) return;
          std::future<TeamResponse> fut;
          const Status admitted = server->Submit(std::move(requests[i]), &fut);
          if (admitted.IsUnavailable()) return;  // shut down
          if (!admitted.ok()) {
            rejected.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          submitted.fetch_add(1, std::memory_order_relaxed);
          per_client[c].push_back(fut.get());
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  result.seconds = timer.Seconds();
  result.submitted = submitted.load();
  result.rejected = rejected.load();
  for (std::vector<TeamResponse>& chunk : per_client) {
    result.responses.insert(result.responses.end(),
                            std::make_move_iterator(chunk.begin()),
                            std::make_move_iterator(chunk.end()));
  }
  TallyResponses(&result);
  SortById(&result.responses);
  return result;
}

}  // namespace tfsn::serve
