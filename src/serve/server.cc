#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/team/task_view.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace tfsn::serve {

namespace {

uint64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(to - from)
             .count()));
}

}  // namespace

TeamFormationServer::TeamFormationServer(const SignedGraph& graph,
                                         const SkillAssignment& skills,
                                         const SkillCompatibilityIndex* index,
                                         CompatKind kind,
                                         std::shared_ptr<RowCache> cache,
                                         ServerOptions options)
    : skills_(skills),
      options_(options),
      cache_(std::move(cache)),
      queue_(options.queue_capacity),
      scheduler_(skills, kind == CompatKind::kSBPH, options.batch) {
  TFSN_CHECK(cache_ != nullptr);
  options_.workers = std::max<uint32_t>(1, options_.workers);
  // The worker pool is the parallelism; nested seed threads would
  // oversubscribe. Results are identical for every setting.
  options_.greedy.seed_threads = 1;
  workers_.reserve(options_.workers);
  for (uint32_t w = 0; w < options_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->oracle = MakeOracle(graph, kind, OracleParams{}, cache_);
    worker->former = std::make_unique<GreedyTeamFormer>(
        worker->oracle.get(), skills_, index, options_.greedy);
    {
      // The worker thread does not exist yet; the lock is for the
      // analysis (batch_size_counts is guarded by worker->mu).
      MutexLock lock(&worker->mu);
      worker->batch_size_counts.assign(options_.batch.max_batch + 1, 0);
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread =
        std::thread(&TeamFormationServer::WorkerLoop, this, worker.get());
  }
}

TeamFormationServer::~TeamFormationServer() { Shutdown(); }

bool TeamFormationServer::Submit(TeamRequest request,
                                 std::future<TeamResponse>* response) {
  ScheduledRequest sr;
  sr.request = std::move(request);
  sr.admitted = std::chrono::steady_clock::now();
  std::future<TeamResponse> fut = sr.promise.get_future();
  if (!queue_.Push(std::move(sr))) return false;
  *response = std::move(fut);
  return true;
}

bool TeamFormationServer::TrySubmit(TeamRequest request,
                                    std::future<TeamResponse>* response) {
  ScheduledRequest sr;
  sr.request = std::move(request);
  sr.admitted = std::chrono::steady_clock::now();
  std::future<TeamResponse> fut = sr.promise.get_future();
  if (!queue_.TryPush(&sr)) return false;
  *response = std::move(fut);
  return true;
}

void TeamFormationServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.Close();  // workers drain every admitted request, then exit
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
  });
}

void TeamFormationServer::WorkerLoop(Worker* worker) {
  RequestBatch batch;
  while (scheduler_.NextBatch(&queue_, &batch)) {
    const uint32_t batch_size = static_cast<uint32_t>(batch.items.size());
    // One shared view (and one StreamRows cache prewarm of the union
    // holder universe) serves the whole group. nullptr — union over the
    // byte budget or graph too large for dense uint16 distances — falls
    // back to standalone Form per request, which is bit-identical.
    std::unique_ptr<TaskCompatView> view;
    if (!batch.union_task.empty()) {
      view = TaskCompatView::BuildFromUniverse(
          worker->oracle.get(), skills_, batch.union_task,
          std::move(batch.universe), options_.view_build_threads,
          options_.batch.max_view_bytes);
    }
    for (ScheduledRequest& sr : batch.items) {
      const auto service_start = std::chrono::steady_clock::now();
      Rng rng(sr.request.rng_seed);
      TeamResponse resp;
      resp.id = sr.request.id;
      resp.batch_size = batch_size;
      resp.used_shared_view = view != nullptr;
      resp.result = view != nullptr
                        ? worker->former->FormWithView(*view, sr.request.task,
                                                       &rng)
                        : worker->former->Form(sr.request.task, &rng);
      const auto done = std::chrono::steady_clock::now();
      resp.queue_us = MicrosBetween(sr.admitted, service_start);
      resp.service_us = MicrosBetween(service_start, done);
      resp.total_us = MicrosBetween(sr.admitted, done);
      {
        MutexLock lock(&worker->mu);
        ++worker->completed;
        worker->queue_us.Record(resp.queue_us);
        worker->service_us.Record(resp.service_us);
        worker->total_us.Record(resp.total_us);
      }
      sr.promise.set_value(std::move(resp));
    }
    {
      MutexLock lock(&worker->mu);
      ++worker->batches;
      if (view != nullptr) {
        ++worker->shared_view_batches;
      } else {
        ++worker->fallback_batches;
      }
      ++worker->batch_size_counts[std::min<size_t>(
          batch_size, worker->batch_size_counts.size() - 1)];
    }
  }
}

ServerMetrics TeamFormationServer::Metrics() const {
  ServerMetrics m;
  m.batch_size_counts.assign(options_.batch.max_batch + 1, 0);
  for (const auto& worker : workers_) {
    MutexLock lock(&worker->mu);
    m.completed += worker->completed;
    m.batches += worker->batches;
    m.shared_view_batches += worker->shared_view_batches;
    m.fallback_batches += worker->fallback_batches;
    m.queue_us.Merge(worker->queue_us);
    m.service_us.Merge(worker->service_us);
    m.total_us.Merge(worker->total_us);
    for (size_t b = 0; b < worker->batch_size_counts.size(); ++b) {
      m.batch_size_counts[b] += worker->batch_size_counts[b];
    }
  }
  m.cache = cache_->SnapshotCounters();
  return m;
}

}  // namespace tfsn::serve
