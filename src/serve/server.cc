#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "src/team/task_view.h"
#include "src/util/fault_injection.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace tfsn::serve {

namespace {

uint64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(to - from)
             .count()));
}

// Integer EWMA with α = 1/8. The load/store pair is deliberately not a
// CAS loop: a lost update between concurrent workers only perturbs an
// estimate, and the estimate feeds heuristics, not correctness.
void UpdateEwma(std::atomic<uint64_t>* ewma, uint64_t sample) {
  const uint64_t cur = ewma->load(std::memory_order_relaxed);
  const uint64_t next = cur == 0 ? sample : cur - cur / 8 + sample / 8;
  ewma->store(next, std::memory_order_relaxed);
}

}  // namespace

TeamFormationServer::TeamFormationServer(const SignedGraph& graph,
                                         const SkillAssignment& skills,
                                         const SkillCompatibilityIndex* index,
                                         CompatKind kind,
                                         std::shared_ptr<RowCache> cache,
                                         ServerOptions options)
    : skills_(skills),
      options_(options),
      cache_(std::move(cache)),
      queue_(options.queue_capacity),
      scheduler_(skills, kind == CompatKind::kSBPH, options.batch,
                 options.deadline) {
  TFSN_CHECK(cache_ != nullptr);
  options_.workers = std::max<uint32_t>(1, options_.workers);
  // The worker pool is the parallelism; nested seed threads would
  // oversubscribe. Results are identical for every setting.
  options_.greedy.seed_threads = 1;
  workers_.reserve(options_.workers);
  for (uint32_t w = 0; w < options_.workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->oracle = MakeOracle(graph, kind, OracleParams{}, cache_);
    worker->former = std::make_unique<GreedyTeamFormer>(
        worker->oracle.get(), skills_, index, options_.greedy);
    {
      // The worker thread does not exist yet; the lock is for the
      // analysis (batch_size_counts is guarded by worker->mu).
      MutexLock lock(&worker->mu);
      worker->batch_size_counts.assign(options_.batch.max_batch + 1, 0);
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    worker->thread =
        std::thread(&TeamFormationServer::WorkerLoop, this, worker.get());
  }
}

TeamFormationServer::~TeamFormationServer() { Shutdown(); }

ScheduledRequest TeamFormationServer::MakeScheduled(TeamRequest request) {
  ScheduledRequest sr;
  sr.admitted = std::chrono::steady_clock::now();
  if (request.deadline_us != 0) {
    sr.deadline = sr.admitted + std::chrono::microseconds(request.deadline_us);
  }
  sr.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  sr.request = std::move(request);
  return sr;
}

Status TeamFormationServer::AdmitCheck(const TeamRequest& request) const {
  if (request.deadline_us == 0 ||
      options_.deadline.shed < ShedMode::kAdmission) {
    return Status::OK();
  }
  const uint64_t expected = QueueWaitEstimateUs() + ServiceEstimateUs();
  if (expected > request.deadline_us) {
    return Status::DeadlineExceeded(
        "deadline infeasible at admission: expected latency ~" +
        std::to_string(expected) + "us exceeds budget " +
        std::to_string(request.deadline_us) + "us; retry after ~" +
        std::to_string(RetryAfterMs()) + "ms");
  }
  return Status::OK();
}

Status TeamFormationServer::Submit(TeamRequest request,
                                   std::future<TeamResponse>* response) {
  Status admit = AdmitCheck(request);
  if (!admit.ok()) return admit;
  ScheduledRequest sr = MakeScheduled(std::move(request));
  std::future<TeamResponse> fut = sr.promise.get_future();
  Status pushed = queue_.Push(std::move(sr));
  if (!pushed.ok()) return pushed;
  *response = std::move(fut);
  return Status::OK();
}

Status TeamFormationServer::TrySubmit(TeamRequest request,
                                      std::future<TeamResponse>* response) {
  Status admit = AdmitCheck(request);
  if (!admit.ok()) return admit;
  ScheduledRequest sr = MakeScheduled(std::move(request));
  std::future<TeamResponse> fut = sr.promise.get_future();
  Status pushed = queue_.TryPush(&sr);
  if (pushed.IsResourceExhausted()) {
    return Status::ResourceExhausted("admission queue full; retry after ~" +
                                     std::to_string(RetryAfterMs()) + "ms");
  }
  if (!pushed.ok()) return pushed;
  *response = std::move(fut);
  return Status::OK();
}

void TeamFormationServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.Close();  // workers drain every admitted request, then exit
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
    // Safety net: workers normally drain everything before exiting, so
    // both sweeps below are empty — but a request admitted in the races
    // around Close, or left behind by a worker that died mid-fault, must
    // not leave its future blocking forever. Fulfill whatever is still
    // admitted with a typed shutdown response.
    ScheduledRequest sr;
    while (queue_.TryPop(&sr)) {
      FulfillError(&sr, Status::Unavailable("server shut down before serving"));
    }
    std::vector<ScheduledRequest> leftover;
    scheduler_.TakePending(&leftover);
    for (ScheduledRequest& s : leftover) {
      FulfillError(&s, Status::Unavailable("server shut down before serving"));
    }
  });
}

void TeamFormationServer::ServeDegraded(Worker* worker, ScheduledRequest* sr,
                                        uint32_t batch_size) {
  const auto service_start = std::chrono::steady_clock::now();
  // Even the cheapest tier costs something. Triage only checked that the
  // deadline had not yet passed; if the remaining budget cannot fund a
  // typical degraded serve either, answering would just be late — shed
  // with the typed response instead so the accepted tail stays inside
  // the SLO.
  if (service_start >= sr->deadline ||
      MicrosBetween(service_start, sr->deadline) <
          DegradedEstimateUs() + options_.deadline.slack_us) {
    {
      MutexLock lock(&worker->mu);
      ++worker->shed;
    }
    FulfillError(
        sr, Status::DeadlineExceeded("deadline cannot be met by any tier"));
    return;
  }
  TeamResponse resp;
  resp.id = sr->request.id;
  resp.batch_size = batch_size;
  resp.used_shared_view = false;
  bool served = false;
  bool complete = false;
  auto view = TaskCompatView::BuildFromCachedRows(
      worker->oracle.get(), skills_, sr->request.task,
      HolderUniverse(skills_, sr->request.task.skills()),
      options_.batch.max_view_bytes, &complete);
  if (view != nullptr) {
    Rng rng(sr->request.rng_seed);
    TeamResult result =
        worker->former->FormWithView(*view, sr->request.task, &rng);
    // A complete cache-only view is bit-identical to the full build, so
    // even a "no team exists" verdict is the exact answer. An incomplete
    // view only counts when it actually found a team — a miss may just
    // mean the missing rows held the answer.
    if (complete || result.found) {
      resp.result = std::move(result);
      resp.degraded = !complete;
      served = true;
    }
  }
  if (!served) {
    // Cache-only could not answer. Fund the exact oracle path if the
    // remaining budget still covers a standalone formation; otherwise no
    // tier can meet the deadline.
    const auto now = std::chrono::steady_clock::now();
    if (sr->deadline > now &&
        MicrosBetween(now, sr->deadline) >=
            ServiceEstimateUs() + options_.deadline.slack_us) {
      Rng rng(sr->request.rng_seed);
      resp.result = worker->former->Form(sr->request.task, &rng);
      resp.degraded = false;
      served = true;
    }
  }
  if (!served) {
    {
      MutexLock lock(&worker->mu);
      ++worker->shed;
    }
    FulfillError(
        sr, Status::DeadlineExceeded("deadline cannot be met by any tier"));
    return;
  }
  const auto done = std::chrono::steady_clock::now();
  resp.queue_us = MicrosBetween(sr->admitted, service_start);
  resp.service_us = MicrosBetween(service_start, done);
  resp.total_us = MicrosBetween(sr->admitted, done);
  // Realized ladder cost (whichever tier answered) feeds the gate above.
  UpdateEwma(&degraded_ewma_us_, resp.service_us);
  FinishServed(worker, sr, std::move(resp));
}

void TeamFormationServer::FinishServed(Worker* worker, ScheduledRequest* sr,
                                       TeamResponse resp) {
  {
    MutexLock lock(&worker->mu);
    ++worker->completed;
    if (resp.degraded) ++worker->degraded;
    worker->queue_us.Record(resp.queue_us);
    worker->service_us.Record(resp.service_us);
    worker->total_us.Record(resp.total_us);
  }
  {
    // Feed the admission-control estimate with the realized queue wait.
    MutexLock lock(&lat_mu_);
    queue_hist_.Record(resp.queue_us);
  }
  sr->promise.set_value(std::move(resp));
}

void TeamFormationServer::WorkerLoop(Worker* worker) {
  RequestBatch batch;
  while (scheduler_.NextBatch(&queue_, &batch)) {
    const uint32_t batch_size = static_cast<uint32_t>(batch.items.size());

    // Overload triage: under ShedMode::kQueue, a member whose deadline
    // already passed is shed here (the scheduler sweeps the queue, but a
    // deadline can expire between batch formation and service), and one
    // whose remaining budget cannot fund the shared build plus its own
    // formation drops to the degradation ladder. Everyone else takes the
    // full exact path below.
    std::vector<ScheduledRequest*> full;
    full.reserve(batch.items.size());
    const bool enforce = options_.deadline.shed >= ShedMode::kQueue;
    const uint64_t est_full =
        enforce ? BuildEstimateUs() + ServiceEstimateUs() +
                      options_.deadline.slack_us
                : 0;
    for (ScheduledRequest& sr : batch.items) {
      if (!enforce ||
          sr.deadline == std::chrono::steady_clock::time_point::max()) {
        full.push_back(&sr);
        continue;
      }
      const auto now = std::chrono::steady_clock::now();
      if (sr.deadline <= now) {
        {
          MutexLock lock(&worker->mu);
          ++worker->shed;
        }
        FulfillError(&sr, Status::DeadlineExceeded(
                              "deadline expired before service"));
        continue;
      }
      if (options_.deadline.degrade &&
          MicrosBetween(now, sr.deadline) < est_full) {
        ServeDegraded(worker, &sr, batch_size);
        continue;
      }
      full.push_back(&sr);
    }

    // One shared view (and one StreamRows cache prewarm of the union
    // holder universe) serves the whole group. nullptr — union over the
    // byte budget or graph too large for dense uint16 distances — falls
    // back to standalone Form per request, which is bit-identical.
    std::unique_ptr<TaskCompatView> view;
    if (!full.empty() && !batch.union_task.empty()) {
      const auto build_start = std::chrono::steady_clock::now();
      view = TaskCompatView::BuildFromUniverse(
          worker->oracle.get(), skills_, batch.union_task,
          std::move(batch.universe), options_.view_build_threads,
          options_.batch.max_view_bytes);
      if (view != nullptr) {
        UpdateEwma(&build_ewma_us_,
                   MicrosBetween(build_start,
                                 std::chrono::steady_clock::now()));
      }
    }
    // Injected view loss after a successful build: every member silently
    // takes the standalone path, which must stay bit-identical.
    if (view != nullptr && TFSN_FAULT_POINT("serve.shared_view_drop")) {
      view.reset();
    }
    for (ScheduledRequest* sr : full) {
      const auto service_start = std::chrono::steady_clock::now();
      // Post-build re-triage: the shared build above runs on cold-start
      // estimates (the EWMAs start at zero), so early batches can burn
      // far more budget than triage predicted. A member whose deadline
      // passed during the build — or whose remainder no longer funds its
      // own formation — drops to the ladder now instead of being served
      // knowingly late.
      if (enforce &&
          sr->deadline != std::chrono::steady_clock::time_point::max()) {
        if (sr->deadline <= service_start) {
          {
            MutexLock lock(&worker->mu);
            ++worker->shed;
          }
          FulfillError(sr, Status::DeadlineExceeded(
                               "deadline expired during the view build"));
          continue;
        }
        if (options_.deadline.degrade &&
            MicrosBetween(service_start, sr->deadline) <
                ServiceEstimateUs() + options_.deadline.slack_us) {
          ServeDegraded(worker, sr, batch_size);
          continue;
        }
      }
      Rng rng(sr->request.rng_seed);
      TeamResponse resp;
      resp.id = sr->request.id;
      resp.batch_size = batch_size;
      resp.used_shared_view = view != nullptr;
      resp.result = view != nullptr
                        ? worker->former->FormWithView(*view, sr->request.task,
                                                       &rng)
                        : worker->former->Form(sr->request.task, &rng);
      const auto done = std::chrono::steady_clock::now();
      resp.queue_us = MicrosBetween(sr->admitted, service_start);
      resp.service_us = MicrosBetween(service_start, done);
      resp.total_us = MicrosBetween(sr->admitted, done);
      UpdateEwma(&service_ewma_us_, resp.service_us);
      FinishServed(worker, sr, std::move(resp));
    }
    {
      MutexLock lock(&worker->mu);
      ++worker->batches;
      if (view != nullptr) {
        ++worker->shared_view_batches;
      } else {
        ++worker->fallback_batches;
      }
      ++worker->batch_size_counts[std::min<size_t>(
          batch_size, worker->batch_size_counts.size() - 1)];
    }
  }
}

ServerMetrics TeamFormationServer::Metrics() const {
  ServerMetrics m;
  m.batch_size_counts.assign(options_.batch.max_batch + 1, 0);
  for (const auto& worker : workers_) {
    MutexLock lock(&worker->mu);
    m.completed += worker->completed;
    m.batches += worker->batches;
    m.shared_view_batches += worker->shared_view_batches;
    m.fallback_batches += worker->fallback_batches;
    m.shed += worker->shed;
    m.degraded += worker->degraded;
    m.queue_us.Merge(worker->queue_us);
    m.service_us.Merge(worker->service_us);
    m.total_us.Merge(worker->total_us);
    for (size_t b = 0; b < worker->batch_size_counts.size(); ++b) {
      m.batch_size_counts[b] += worker->batch_size_counts[b];
    }
  }
  m.shed += scheduler_.shed_count();
  m.cache = cache_->SnapshotCounters();
  return m;
}

uint64_t TeamFormationServer::QueueWaitEstimateUs() const {
  if (options_.deadline.assume_queue_us != 0) {
    return options_.deadline.assume_queue_us;
  }
  MutexLock lock(&lat_mu_);
  return queue_hist_.count() == 0 ? 0 : queue_hist_.ValueAtQuantile(0.5);
}

uint64_t TeamFormationServer::BuildEstimateUs() const {
  if (options_.deadline.assume_build_us != 0) {
    return options_.deadline.assume_build_us;
  }
  return build_ewma_us_.load(std::memory_order_relaxed);
}

uint64_t TeamFormationServer::ServiceEstimateUs() const {
  if (options_.deadline.assume_service_us != 0) {
    return options_.deadline.assume_service_us;
  }
  return service_ewma_us_.load(std::memory_order_relaxed);
}

uint64_t TeamFormationServer::DegradedEstimateUs() const {
  // No assume_* override: the ladder gate starts optimistic (0 — serve
  // and see) and adapts to the realized degraded-tier cost. Tests pin the
  // *entry* to the ladder via assume_build/assume_service instead.
  return degraded_ewma_us_.load(std::memory_order_relaxed);
}

uint64_t TeamFormationServer::RetryAfterMs() const {
  const uint64_t us = QueueWaitEstimateUs() + ServiceEstimateUs();
  return std::max<uint64_t>(1, us / 1000);
}

}  // namespace tfsn::serve
