// Workload generation for the serving layer.
//
// Tasks are sampled with Zipf-distributed skill popularity — the same
// heavy-tailed regime the paper's datasets exhibit and the regime the
// batching scheduler is built for: hot skills recur across nearby
// requests, so their holder universes overlap and one union view serves
// many requests. Two load shapes drive the server:
//
//   * Open loop (RunOpenLoop): Poisson arrivals at a fixed rate,
//     submitted with TrySubmit — a saturated server drops (and counts)
//     arrivals instead of stalling the generator, so measured latency
//     reflects the configured rate, not the service rate.
//   * Closed loop (RunClosedLoop): N client threads each keep exactly one
//     request in flight — the standard way to measure peak sustainable
//     throughput.
//
// Request streams are pre-generated and deterministic in the workload
// seed: request i carries id = i and its own derived rng_seed, so any two
// runs over the same stream — whatever the batching, worker count, or
// loop shape — produce bit-identical teams per request (the fixed-seed
// replay mode of `tfsn_cli serve` is exactly this).

#pragma once

#include <cstdint>
#include <vector>

#include "src/compat/compatibility.h"
#include "src/serve/server.h"
#include "src/serve/types.h"
#include "src/skills/skills.h"
#include "src/util/rng.h"
#include "src/util/zipf.h"

namespace tfsn::serve {

/// Samples tasks whose skills follow skill popularity: skills are ranked
/// by holder count descending and rank r is drawn ∝ (r+1)^-s, so small
/// exponents spread load over the catalog while s >= 1 concentrates it on
/// the head (maximal footprint overlap).
class ZipfTaskSampler {
 public:
  /// Only skills with at least one holder participate. `exponent` is the
  /// Zipf s parameter.
  ZipfTaskSampler(const SkillAssignment& skills, double exponent);

  /// Draws a task of `task_size` distinct skills (capped at the number of
  /// held skills) by rejection over the rank distribution.
  Task Sample(uint32_t task_size, Rng* rng) const;

  uint32_t num_skills() const { return static_cast<uint32_t>(by_rank_.size()); }

 private:
  std::vector<SkillId> by_rank_;  // held skills, holder count descending
  ZipfSampler zipf_;
};

/// Tier-2 prewarm tuning (see PrewarmZipfHead).
struct PrewarmOptions {
  /// Fraction of distinct skill holders to prewarm, hottest first
  /// (ceil(fraction * holders) rows). 0 disables the prewarm.
  double fraction = 0;
  /// Zipf exponent of the workload the ranking anticipates — pass the
  /// same value as WorkloadOptions::zipf_exponent.
  double zipf_exponent = 1.0;
  /// Worker threads for the batched row computation (0 = hardware).
  uint32_t threads = 0;
  /// Sources per GetRows batch (bounds peak pinned memory; multiples of
  /// 64 feed full blocks to the bit-parallel engine).
  size_t batch = 256;
};

/// What a prewarm pass did.
struct PrewarmReport {
  /// Distinct holders of at least one skill (the ranking universe).
  uint64_t holders_ranked = 0;
  /// Rows actually streamed into the cache (the hot head).
  uint64_t rows_prewarmed = 0;
  double seconds = 0;
};

/// Tier 2 of the tiered row store: bulk-computes the rows a Zipf workload
/// is about to ask for, before the server opens.
///
/// ZipfTaskSampler draws skill ranks ∝ (r+1)^-s over skills ordered by
/// holder count, so a holder's chance of appearing in a task footprint is
/// driven by the Zipf weight of the skills they hold. The prewarm scores
/// every holder by Σ (rank(s)+1)^-s over their held skills — the same
/// ranking, the same exponent — sorts descending (ties by id, fully
/// deterministic), and streams the top `fraction` of holders through the
/// oracle's batched API (64-way MS-BFS blocks for the batchable
/// relations). Rows land in the oracle's RowCache, compressed and
/// spillable per its tiers; an already-cached row costs one probe.
///
/// Call it on an oracle sharing the server's cache (same graph, kind, and
/// params as the workers' oracles — key fingerprints must match) before
/// accepting traffic.
PrewarmReport PrewarmZipfHead(CompatibilityOracle* oracle,
                              const SkillAssignment& skills,
                              const PrewarmOptions& options);

/// Workload shape shared by the generators and the CLI/bench front ends.
struct WorkloadOptions {
  /// Skills per task.
  uint32_t task_size = 3;
  /// Zipf exponent of the skill sampler.
  double zipf_exponent = 1.0;
  /// Seed of the request stream (tasks and per-request rng seeds).
  uint64_t seed = 1;
  /// Requests in the stream.
  uint32_t num_requests = 200;
};

/// The deterministic request stream for `options`: request i has id = i,
/// a Zipf-sampled task, and a SplitMix64-derived rng_seed.
std::vector<TeamRequest> GenerateRequests(const SkillAssignment& skills,
                                          const WorkloadOptions& options);

/// Outcome of one workload run. The accounting identity per stream:
/// every generated request is exactly one of {dropped, rejected,
/// submitted}, and every submitted request yields exactly one response —
/// completed (OK; `degraded` counts its degraded subset) or shed
/// (DeadlineExceeded) or unavailable (server shut down first).
struct WorkloadResult {
  /// Requests admitted into the server (a future exists for each).
  uint64_t submitted = 0;
  /// Open loop only: arrivals refused by a full queue (backpressure).
  uint64_t dropped = 0;
  /// Arrivals refused by admission control (deadline infeasible) — a
  /// different signal than `dropped`: the caller was told to retry later,
  /// not that the queue was full.
  uint64_t rejected = 0;
  /// Admitted requests whose response is OK (a team or an exact "no
  /// team"). completed + shed + unavailable == submitted.
  uint64_t completed = 0;
  /// Admitted requests fulfilled with DeadlineExceeded (expired in queue
  /// or unfundable by any serving tier).
  uint64_t shed = 0;
  /// Completed responses served from an incomplete cache-only view
  /// (TeamResponse::degraded) — a subset of `completed`.
  uint64_t degraded = 0;
  /// Admitted requests fulfilled with Unavailable (shutdown drain).
  uint64_t unavailable = 0;
  /// Wall clock from the first submission to the last response.
  double seconds = 0;
  /// Every fulfilled response (including shed ones), ascending by id.
  std::vector<TeamResponse> responses;
};

/// Poisson arrivals at `qps` (inter-arrival times drawn from
/// `arrival_rng`), one generator thread, TrySubmit semantics (see file
/// comment). Blocks until every accepted request completed.
WorkloadResult RunOpenLoop(TeamFormationServer* server,
                           std::vector<TeamRequest> requests, double qps,
                           Rng* arrival_rng);

/// `clients` threads each keep one request in flight until the stream is
/// exhausted. Blocks until every request completed.
WorkloadResult RunClosedLoop(TeamFormationServer* server,
                             std::vector<TeamRequest> requests,
                             uint32_t clients);

/// Saturation / replay mode: the whole stream is submitted back to back
/// from the calling thread (blocking Push — size the server's queue for
/// the stream), then every response is awaited. The admission queue stays
/// as deep as the remaining stream, so the batching scheduler sees its
/// full grouping window: this measures peak service throughput without
/// client-thread scheduling noise, and is the deterministic fixed-seed
/// replay mode of `tfsn_cli serve` (no pacing, no drops).
WorkloadResult RunBurst(TeamFormationServer* server,
                        std::vector<TeamRequest> requests);

}  // namespace tfsn::serve
