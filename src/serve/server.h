// TeamFormationServer: the online serving path from "a task arrives" to
// "a team is returned".
//
//                 Submit / TrySubmit
//                        │
//             AdmissionQueue (bounded, backpressure)
//                        │
//               BatchScheduler.NextBatch
//          (skill-footprint Jaccard grouping)
//                        │
//        worker pool — per batch, each worker:
//          1. builds ONE TaskCompatView for the batch's union task
//             (one StreamRows prewarm of the union holder universe),
//          2. runs GreedyTeamFormer::FormWithView per member request,
//          3. fulfills the promises and records latency.
//
// Teams are bit-identical to calling GreedyTeamFormer::Form directly with
// the same GreedyParams and per-request Rng(rng_seed) — batching changes
// only where the work happens, never the answer — so results are
// reproducible across worker counts, batch caps, and arrival orders.
//
// Each worker owns its own CompatibilityOracle over the one shared
// RowCache (the oracle's scalar row pinning is not thread-safe; the cache
// is), its own GreedyTeamFormer, and a private metrics block merged on
// demand by Metrics(). Latency is tracked per request with
// util/latency_histogram; cache hit rate comes from lock-free
// RowCache::StatsSnapshot deltas. The shared cache may be tiered
// (compressed rows, disk spill — see row_cache.h) and prewarmed before
// traffic with serve::PrewarmZipfHead; workers are oblivious either way
// (rows decode bit-identically), and the snapshot's tier counters
// (compressed_bytes, spill reads/writes, decode time) flow through
// Metrics() unchanged.

#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

#include "src/compat/compatibility.h"
#include "src/compat/skill_index.h"
#include "src/graph/signed_graph.h"
#include "src/serve/admission_queue.h"
#include "src/serve/batcher.h"
#include "src/serve/types.h"
#include "src/skills/skills.h"
#include "src/team/greedy.h"
#include "src/util/latency_histogram.h"

namespace tfsn::serve {

struct ServerOptions {
  /// Worker threads (>= 1). Each serves whole batches end to end.
  uint32_t workers = 1;
  /// Admission queue capacity (backpressure bound).
  size_t queue_capacity = 1024;
  /// Batching policy; max_batch = 1 is the one-task-per-view baseline.
  BatchPolicy batch;
  /// Greedy configuration every worker's former runs with. seed_threads
  /// is forced to 1 — the worker pool is the parallelism; nested seed
  /// threads would oversubscribe (results are identical either way).
  GreedyParams greedy;
  /// Workers for the per-batch StreamRows prewarm inside the view build.
  uint32_t view_build_threads = 1;
};

/// Point-in-time roll-up across workers. Histograms record microseconds.
struct ServerMetrics {
  uint64_t completed = 0;
  uint64_t batches = 0;
  /// Batches served through a shared union view / through the standalone
  /// fallback (union view over budget or graph too large for the dense
  /// representation).
  uint64_t shared_view_batches = 0;
  uint64_t fallback_batches = 0;
  LatencyHistogram queue_us;
  LatencyHistogram service_us;
  LatencyHistogram total_us;
  /// batch_size_counts[b] = batches that grouped exactly b requests
  /// (index 0 unused).
  std::vector<uint64_t> batch_size_counts;
  /// Row-cache counters at snapshot time (monotonic; subtract two
  /// snapshots for a window).
  RowCache::StatsSnapshot cache;

  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches);
  }
};

class TeamFormationServer {
 public:
  /// Workers start immediately. All referees must outlive the server;
  /// `index` is required when greedy.skill_policy == kLeastCompatible.
  /// `cache` must be non-null (it is the state batching amortizes).
  TeamFormationServer(const SignedGraph& graph, const SkillAssignment& skills,
                      const SkillCompatibilityIndex* index, CompatKind kind,
                      std::shared_ptr<RowCache> cache, ServerOptions options);
  ~TeamFormationServer();

  TeamFormationServer(const TeamFormationServer&) = delete;
  TeamFormationServer& operator=(const TeamFormationServer&) = delete;

  /// Admits a request, blocking while the queue is full (backpressure).
  /// On success *response holds the future the worker fulfills. False
  /// after Shutdown().
  bool Submit(TeamRequest request, std::future<TeamResponse>* response);

  /// Non-blocking admission: false when the queue is full or the server
  /// is shut down (the open-loop generator counts those as drops).
  bool TrySubmit(TeamRequest request, std::future<TeamResponse>* response);

  /// Stops admission, drains every queued request (all futures complete),
  /// and joins the workers. Idempotent; also run by the destructor.
  void Shutdown();

  /// Merged per-worker metrics plus a row-cache counter snapshot. Callable
  /// at any time (workers flush under a per-worker mutex).
  ServerMetrics Metrics() const;

  const ServerOptions& options() const { return options_; }
  /// Requests admitted but not yet picked up by the scheduler.
  size_t queue_depth() const { return queue_.size(); }

 private:
  /// Per-worker state: oracle + former (not thread-safe, hence owned by
  /// the worker thread and unannotated) and the metrics block it updates
  /// under its own mutex — Metrics() reads it from arbitrary threads.
  struct Worker {
    std::unique_ptr<CompatibilityOracle> oracle;
    std::unique_ptr<GreedyTeamFormer> former;
    std::thread thread;
    mutable Mutex mu;
    uint64_t completed TFSN_GUARDED_BY(mu) = 0;
    uint64_t batches TFSN_GUARDED_BY(mu) = 0;
    uint64_t shared_view_batches TFSN_GUARDED_BY(mu) = 0;
    uint64_t fallback_batches TFSN_GUARDED_BY(mu) = 0;
    LatencyHistogram queue_us TFSN_GUARDED_BY(mu);
    LatencyHistogram service_us TFSN_GUARDED_BY(mu);
    LatencyHistogram total_us TFSN_GUARDED_BY(mu);
    std::vector<uint64_t> batch_size_counts TFSN_GUARDED_BY(mu);
  };

  void WorkerLoop(Worker* worker);

  const SkillAssignment& skills_;
  ServerOptions options_;
  std::shared_ptr<RowCache> cache_;
  AdmissionQueue<ScheduledRequest> queue_;
  BatchScheduler scheduler_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::once_flag shutdown_once_;
};

}  // namespace tfsn::serve
