// TeamFormationServer: the online serving path from "a task arrives" to
// "a team is returned".
//
//                 Submit / TrySubmit
//            (typed admission: queue-full / shutting-down /
//             deadline-infeasible, with retry-after hints)
//                        │
//             AdmissionQueue (bounded, backpressure)
//                        │
//               BatchScheduler.NextBatch
//          (skill-footprint Jaccard grouping, EDF-anchored;
//           sheds requests whose deadline expired in queue)
//                        │
//        worker pool — per batch, each worker:
//          1. sheds/degrades deadline-pressed members (see below),
//          2. builds ONE TaskCompatView for the batch's union task
//             (one StreamRows prewarm of the union holder universe),
//          3. runs GreedyTeamFormer::FormWithView per member request,
//          4. fulfills the promises and records latency.
//
// Teams served through the full path are bit-identical to calling
// GreedyTeamFormer::Form directly with the same GreedyParams and
// per-request Rng(rng_seed) — batching changes only where the work
// happens, never the answer — so results are reproducible across worker
// counts, batch caps, and arrival orders.
//
// Overload control (ServerOptions::deadline): requests may carry an SLO
// budget (TeamRequest::deadline_us). Under ShedMode::kQueue the server
// keeps accepted-request latency inside that budget by shedding — typed
// DeadlineExceeded responses, never dropped promises — at three points:
// admission (infeasible deadlines, judged against the live queue-latency
// histogram), the scheduler (expired in queue), and the worker (expired
// by service time). A member whose remaining budget cannot fund the full
// view build degrades instead of missing its deadline:
//
//   full dense view  →  cache-only view  →  oracle path  →  reject
//        (exact)       (degraded unless      (exact)      (DeadlineExceeded)
//                       every row cached)
//
// Degraded responses carry TeamResponse::degraded = true and are the only
// ones that may differ from the exact answer; they are sound (every
// member pair confirmed by a real cached row) but excluded from replay
// digests.
//
// Each worker owns its own CompatibilityOracle over the one shared
// RowCache (the oracle's scalar row pinning is not thread-safe; the cache
// is), its own GreedyTeamFormer, and a private metrics block merged on
// demand by Metrics(). Latency is tracked per request with
// util/latency_histogram; cache hit rate comes from lock-free
// RowCache::StatsSnapshot deltas. The shared cache may be tiered
// (compressed rows, disk spill — see row_cache.h) and prewarmed before
// traffic with serve::PrewarmZipfHead; workers are oblivious either way
// (rows decode bit-identically), and the snapshot's tier counters
// (compressed_bytes, spill reads/writes, decode time) flow through
// Metrics() unchanged.

#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

#include "src/compat/compatibility.h"
#include "src/compat/skill_index.h"
#include "src/graph/signed_graph.h"
#include "src/serve/admission_queue.h"
#include "src/serve/batcher.h"
#include "src/serve/types.h"
#include "src/skills/skills.h"
#include "src/team/greedy.h"
#include "src/util/latency_histogram.h"
#include "src/util/status.h"

namespace tfsn::serve {

struct ServerOptions {
  /// Worker threads (>= 1). Each serves whole batches end to end.
  uint32_t workers = 1;
  /// Admission queue capacity (backpressure bound).
  size_t queue_capacity = 1024;
  /// Batching policy; max_batch = 1 is the one-task-per-view baseline.
  BatchPolicy batch;
  /// Deadline/overload policy (see types.h). Only requests that carry a
  /// deadline are ever affected, whatever the mode.
  DeadlinePolicy deadline;
  /// Greedy configuration every worker's former runs with. seed_threads
  /// is forced to 1 — the worker pool is the parallelism; nested seed
  /// threads would oversubscribe (results are identical either way).
  GreedyParams greedy;
  /// Workers for the per-batch StreamRows prewarm inside the view build.
  uint32_t view_build_threads = 1;
};

/// Point-in-time roll-up across workers. Histograms record microseconds
/// and cover served responses (exact or degraded) — shed requests appear
/// in `shed`, not in the latency distributions.
struct ServerMetrics {
  uint64_t completed = 0;
  uint64_t batches = 0;
  /// Batches served through a shared union view / through the standalone
  /// fallback (union view over budget or graph too large for the dense
  /// representation).
  uint64_t shared_view_batches = 0;
  uint64_t fallback_batches = 0;
  /// Requests fulfilled with DeadlineExceeded (expired in queue or at the
  /// worker, or unfundable by any tier).
  uint64_t shed = 0;
  /// Requests served from an incomplete cache-only view (degraded=true).
  uint64_t degraded = 0;
  LatencyHistogram queue_us;
  LatencyHistogram service_us;
  LatencyHistogram total_us;
  /// batch_size_counts[b] = batches that grouped exactly b requests
  /// (index 0 unused).
  std::vector<uint64_t> batch_size_counts;
  /// Row-cache counters at snapshot time (monotonic; subtract two
  /// snapshots for a window).
  RowCache::StatsSnapshot cache;

  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches);
  }
};

class TeamFormationServer {
 public:
  /// Workers start immediately. All referees must outlive the server;
  /// `index` is required when greedy.skill_policy == kLeastCompatible.
  /// `cache` must be non-null (it is the state batching amortizes).
  TeamFormationServer(const SignedGraph& graph, const SkillAssignment& skills,
                      const SkillCompatibilityIndex* index, CompatKind kind,
                      std::shared_ptr<RowCache> cache, ServerOptions options);
  ~TeamFormationServer();

  TeamFormationServer(const TeamFormationServer&) = delete;
  TeamFormationServer& operator=(const TeamFormationServer&) = delete;

  /// Admits a request, blocking while the queue is full (backpressure).
  /// On OK *response holds the future the worker fulfills. Fails with
  /// Unavailable after Shutdown(), or DeadlineExceeded when the request's
  /// deadline is infeasible against the live queue-latency estimate
  /// (ShedMode::kAdmission and up; the message carries a retry-after
  /// hint). On failure *response is untouched.
  Status Submit(TeamRequest request, std::future<TeamResponse>* response);

  /// Non-blocking admission: additionally fails with ResourceExhausted
  /// (plus a retry-after hint derived from the live queue-latency
  /// histogram) when the queue is full — the open-loop generator counts
  /// those as drops.
  Status TrySubmit(TeamRequest request, std::future<TeamResponse>* response);

  /// Stops admission, drains every queued request, and joins the workers.
  /// Every admitted promise is fulfilled — served normally during the
  /// drain, or with a typed Unavailable response if a worker died
  /// mid-fault — so no future ever blocks forever. Idempotent; also run
  /// by the destructor.
  void Shutdown();

  /// Merged per-worker metrics plus a row-cache counter snapshot. Callable
  /// at any time (workers flush under a per-worker mutex).
  ServerMetrics Metrics() const;

  const ServerOptions& options() const { return options_; }
  /// Requests admitted but not yet picked up by the scheduler.
  size_t queue_depth() const { return queue_.size(); }

 private:
  /// Per-worker state: oracle + former (not thread-safe, hence owned by
  /// the worker thread and unannotated) and the metrics block it updates
  /// under its own mutex — Metrics() reads it from arbitrary threads.
  struct Worker {
    std::unique_ptr<CompatibilityOracle> oracle;
    std::unique_ptr<GreedyTeamFormer> former;
    std::thread thread;
    mutable Mutex mu;
    uint64_t completed TFSN_GUARDED_BY(mu) = 0;
    uint64_t batches TFSN_GUARDED_BY(mu) = 0;
    uint64_t shared_view_batches TFSN_GUARDED_BY(mu) = 0;
    uint64_t fallback_batches TFSN_GUARDED_BY(mu) = 0;
    uint64_t shed TFSN_GUARDED_BY(mu) = 0;
    uint64_t degraded TFSN_GUARDED_BY(mu) = 0;
    LatencyHistogram queue_us TFSN_GUARDED_BY(mu);
    LatencyHistogram service_us TFSN_GUARDED_BY(mu);
    LatencyHistogram total_us TFSN_GUARDED_BY(mu);
    std::vector<uint64_t> batch_size_counts TFSN_GUARDED_BY(mu);
  };

  void WorkerLoop(Worker* worker);
  /// Serves one deadline-pressed request through the degradation ladder
  /// (cache-only view → oracle path → DeadlineExceeded).
  void ServeDegraded(Worker* worker, ScheduledRequest* sr,
                     uint32_t batch_size);
  /// Records a served response into the worker's metrics and the shared
  /// queue-latency histogram, then fulfills the promise.
  void FinishServed(Worker* worker, ScheduledRequest* sr, TeamResponse resp);

  /// Stamps admission metadata (timestamp, absolute deadline, EDF seq).
  ScheduledRequest MakeScheduled(TeamRequest request);
  /// DeadlineExceeded when the request cannot meet its deadline even if
  /// admitted now (ShedMode::kAdmission and up); OK otherwise.
  Status AdmitCheck(const TeamRequest& request) const;

  /// Live estimators (µs), each overridable via DeadlinePolicy for
  /// deterministic tests: median queue wait from the shared histogram,
  /// and EWMA view-build / per-request service costs from the workers.
  uint64_t QueueWaitEstimateUs() const TFSN_EXCLUDES(lat_mu_);
  uint64_t BuildEstimateUs() const;
  uint64_t ServiceEstimateUs() const;
  /// EWMA cost of a degraded-ladder serve; gates entry to the ladder so
  /// even the cheapest tier never knowingly answers past the deadline.
  uint64_t DegradedEstimateUs() const;
  uint64_t RetryAfterMs() const;

  const SkillAssignment& skills_;
  ServerOptions options_;
  std::shared_ptr<RowCache> cache_;
  AdmissionQueue<ScheduledRequest> queue_;
  BatchScheduler scheduler_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::once_flag shutdown_once_;

  /// Admission sequence for EDF tie-breaks (relaxed: a pure counter).
  std::atomic<uint64_t> seq_{0};
  /// Lock-free ordering contract: integer EWMAs (α = 1/8) of the shared
  /// view build cost and the per-request full-path service cost, in µs.
  /// Plain load/store with relaxed order — concurrent workers may lose an
  /// update, which only perturbs an estimate; no data is published
  /// through them.
  std::atomic<uint64_t> build_ewma_us_{0};
  std::atomic<uint64_t> service_ewma_us_{0};
  std::atomic<uint64_t> degraded_ewma_us_{0};
  /// Live queue-latency histogram feeding admission-control estimates and
  /// retry-after hints (served responses only).
  mutable Mutex lat_mu_;
  LatencyHistogram queue_hist_ TFSN_GUARDED_BY(lat_mu_);
};

}  // namespace tfsn::serve
