// Request/response types of the team-formation serving layer.
//
// A TeamRequest is one "form a team for these skills" query as it travels
// from admission through the batching scheduler to a worker; the
// TeamResponse carries the formed team back together with the request's
// latency breakdown and how much batching it benefited from.
//
// Determinism contract: a response's team depends only on (task, rng_seed)
// and the server's greedy configuration — never on arrival order, batch
// composition, worker count, or queue depth (see
// GreedyTeamFormer::FormWithView). Replaying a request stream with the
// same seeds therefore reproduces every team bit for bit. Responses
// flagged `degraded` are the one exception: they were served from an
// incomplete cache-only view under deadline pressure (see server.h) and
// are excluded from replay digests.
//
// Deadline semantics: deadline_us is a relative SLO budget measured from
// admission. What the server does with it is governed by ShedMode — from
// purely advisory (kOff) to full overload control (kQueue): typed
// rejection at the front door, expiry shedding in queue, and tier
// degradation at the worker. A request that misses its deadline is never
// silently dropped: its promise is fulfilled with a response whose
// `status` is DeadlineExceeded (or Unavailable at shutdown).

#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <utility>

#include "src/skills/skills.h"
#include "src/team/greedy.h"
#include "src/util/status.h"

namespace tfsn::serve {

/// How aggressively the server enforces request deadlines. Levels are
/// cumulative: each adds enforcement on top of the previous one.
enum class ShedMode : uint8_t {
  /// Deadlines are recorded but never enforced: nothing is rejected,
  /// shed, or degraded (requests may finish exact-but-late).
  kOff = 0,
  /// Reject deadline-infeasible requests at admission (typed Status with
  /// a retry-after hint); everything admitted is served exactly.
  kAdmission = 1,
  /// Additionally shed requests whose deadline expired in queue and let
  /// workers degrade to cheaper serving tiers when the remaining budget
  /// cannot fund the full dense-view path.
  kQueue = 2,
};

/// Deadline/overload policy of a server (ServerOptions::deadline).
struct DeadlinePolicy {
  ShedMode shed = ShedMode::kQueue;
  /// Allow the cache-only / oracle degradation ladder under kQueue; off
  /// means a request either gets the full path or is shed.
  bool degrade = true;
  /// Test overrides for the live estimators (0 = use the measured
  /// values): assumed queue wait, shared-view build cost, and per-request
  /// service cost, in µs. With these set, admission and degradation
  /// decisions are fully deterministic.
  uint64_t assume_queue_us = 0;
  uint64_t assume_build_us = 0;
  uint64_t assume_service_us = 0;
  /// SLO headroom, in µs: every serving gate requires the remaining
  /// budget to cover its cost estimate *plus* this slack before it
  /// commits to answering. Estimates are EWMAs, so a request served with
  /// zero headroom finishes past its deadline whenever the actual cost
  /// lands above the estimate — which on an EDF-ordered queue is exactly
  /// the just-in-time tail. Slack trades a little goodput at the boundary
  /// for an accepted-latency distribution that actually sits inside the
  /// budget.
  uint64_t slack_us = 0;
};

struct TeamRequest {
  /// Caller-assigned identifier, echoed in the response.
  uint64_t id = 0;
  /// The skills the team must cover.
  Task task;
  /// Seeds the per-request Rng handed to the greedy former (drives seed
  /// sampling and the RANDOM user policy).
  uint64_t rng_seed = 0;
  /// SLO budget in µs, measured from admission. 0 = no deadline.
  uint64_t deadline_us = 0;
};

struct TeamResponse {
  uint64_t id = 0;
  /// OK for a served team (degraded or not); DeadlineExceeded when the
  /// request was shed (result is empty); Unavailable when the server shut
  /// down before serving it.
  Status status;
  TeamResult result;
  /// True when the team came from a degraded tier (incomplete cache-only
  /// view): valid — every member pair was confirmed compatible — but not
  /// necessarily the team the exact path would have formed. Exact
  /// responses (full view, oracle path, or a *complete* cache-only view)
  /// never set this.
  bool degraded = false;
  /// Requests that shared this request's batch (1 = served alone).
  uint32_t batch_size = 0;
  /// True when the batch's shared dense view served this request; false
  /// when the build fell back and the former ran standalone.
  bool used_shared_view = false;
  /// Time from admission to the start of this request's formation, µs.
  uint64_t queue_us = 0;
  /// This request's own formation time, µs (the shared view build is not
  /// attributed to individual requests).
  uint64_t service_us = 0;
  /// Admission-to-completion time, µs.
  uint64_t total_us = 0;
};

/// A request as it sits in the admission queue: the payload plus the
/// promise the worker fulfills and the admission timestamp the latency
/// accounting starts from. Move-only (the promise).
struct ScheduledRequest {
  TeamRequest request;
  std::promise<TeamResponse> promise;
  std::chrono::steady_clock::time_point admitted;
  /// Absolute deadline (admitted + deadline_us); time_point::max() when
  /// the request carries none — infinitely patient under EDF ordering.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Admission sequence number: the EDF tie-break, so requests with equal
  /// deadlines (in particular, all deadline-free requests) serve FIFO.
  uint64_t seq = 0;
};

/// Fulfills `sr`'s promise with an empty, non-OK response (shed or
/// shutdown) whose latency fields span admission to now. Never throws:
/// every admitted promise is fulfilled exactly once by exactly one owner.
inline void FulfillError(ScheduledRequest* sr, Status status) {
  TeamResponse resp;
  resp.id = sr->request.id;
  resp.status = std::move(status);
  const auto now = std::chrono::steady_clock::now();
  const auto waited =
      std::chrono::duration_cast<std::chrono::microseconds>(now - sr->admitted)
          .count();
  resp.queue_us = waited < 0 ? 0 : static_cast<uint64_t>(waited);
  resp.total_us = resp.queue_us;
  sr->promise.set_value(std::move(resp));
}

}  // namespace tfsn::serve
