// Request/response types of the team-formation serving layer.
//
// A TeamRequest is one "form a team for these skills" query as it travels
// from admission through the batching scheduler to a worker; the
// TeamResponse carries the formed team back together with the request's
// latency breakdown and how much batching it benefited from.
//
// Determinism contract: a response's team depends only on (task, rng_seed)
// and the server's greedy configuration — never on arrival order, batch
// composition, worker count, or queue depth (see
// GreedyTeamFormer::FormWithView). Replaying a request stream with the
// same seeds therefore reproduces every team bit for bit.

#pragma once

#include <chrono>
#include <cstdint>
#include <future>

#include "src/skills/skills.h"
#include "src/team/greedy.h"

namespace tfsn::serve {

struct TeamRequest {
  /// Caller-assigned identifier, echoed in the response.
  uint64_t id = 0;
  /// The skills the team must cover.
  Task task;
  /// Seeds the per-request Rng handed to the greedy former (drives seed
  /// sampling and the RANDOM user policy).
  uint64_t rng_seed = 0;
};

struct TeamResponse {
  uint64_t id = 0;
  TeamResult result;
  /// Requests that shared this request's batch (1 = served alone).
  uint32_t batch_size = 0;
  /// True when the batch's shared dense view served this request; false
  /// when the build fell back and the former ran standalone.
  bool used_shared_view = false;
  /// Time from admission to the start of this request's formation, µs.
  uint64_t queue_us = 0;
  /// This request's own formation time, µs (the shared view build is not
  /// attributed to individual requests).
  uint64_t service_us = 0;
  /// Admission-to-completion time, µs.
  uint64_t total_us = 0;
};

/// A request as it sits in the admission queue: the payload plus the
/// promise the worker fulfills and the admission timestamp the latency
/// accounting starts from. Move-only (the promise).
struct ScheduledRequest {
  TeamRequest request;
  std::promise<TeamResponse> promise;
  std::chrono::steady_clock::time_point admitted;
};

}  // namespace tfsn::serve
