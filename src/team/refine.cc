#include "src/team/refine.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tfsn {

namespace {

// Task skills that only `member` provides within `team`.
std::vector<SkillId> UniqueSkills(const SkillAssignment& skills,
                                  const Task& task,
                                  const std::vector<NodeId>& team,
                                  NodeId member) {
  std::vector<SkillId> unique;
  for (SkillId s : task.skills()) {
    if (!skills.HasSkill(member, s)) continue;
    bool covered_elsewhere = false;
    for (NodeId other : team) {
      if (other != member && skills.HasSkill(other, s)) {
        covered_elsewhere = true;
        break;
      }
    }
    if (!covered_elsewhere) unique.push_back(s);
  }
  return unique;
}

bool CompatibleWithAll(CompatibilityOracle* oracle, NodeId v,
                       const std::vector<NodeId>& team, NodeId skip) {
  for (NodeId x : team) {
    if (x == skip || x == v) continue;
    if (!oracle->Compatible(x, v)) return false;
  }
  return true;
}

}  // namespace

RefinementResult RefineTeam(CompatibilityOracle* oracle,
                            const SkillAssignment& skills, const Task& task,
                            std::vector<NodeId> team,
                            const RefineOptions& options) {
  RefinementResult result;
  std::sort(team.begin(), team.end());
  team.erase(std::unique(team.begin(), team.end()), team.end());
  result.cost_before = TeamCost(oracle, team, options.cost_kind);

  // Phase 1: drop redundant members, best-improvement first.
  if (options.prune_redundant) {
    bool removed = true;
    while (removed && team.size() > 1) {
      removed = false;
      size_t best_index = team.size();
      uint64_t best_cost = TeamCost(oracle, team, options.cost_kind);
      for (size_t i = 0; i < team.size(); ++i) {
        if (!UniqueSkills(skills, task, team, team[i]).empty()) continue;
        std::vector<NodeId> smaller = team;
        smaller.erase(smaller.begin() + static_cast<int64_t>(i));
        uint64_t cost = TeamCost(oracle, smaller, options.cost_kind);
        // Removal never breaks compatibility (subset of a compatible set);
        // accept any redundant removal, preferring the cheapest result.
        if (best_index == team.size() || cost < best_cost) {
          best_index = i;
          best_cost = cost;
        }
      }
      if (best_index < team.size()) {
        team.erase(team.begin() + static_cast<int64_t>(best_index));
        ++result.members_removed;
        removed = true;
      }
    }
  }

  // Phase 2: swap local search.
  if (options.swap_members) {
    for (uint32_t pass = 0; pass < options.max_passes; ++pass) {
      bool improved = false;
      for (size_t i = 0; i < team.size(); ++i) {
        NodeId member = team[i];
        std::vector<SkillId> needed = UniqueSkills(skills, task, team, member);
        uint64_t current = TeamCost(oracle, team, options.cost_kind);
        // Candidates: holders of the rarest needed skill that hold all
        // needed skills. (Empty `needed` is handled by pruning; skip.)
        if (needed.empty()) continue;
        SkillId rarest = needed[0];
        for (SkillId s : needed) {
          if (skills.Frequency(s) < skills.Frequency(rarest)) rarest = s;
        }
        NodeId best_swap = kInvalidNode;
        uint64_t best_cost = current;
        for (NodeId v : skills.Holders(rarest)) {
          if (v == member) continue;
          if (std::find(team.begin(), team.end(), v) != team.end()) continue;
          bool holds_all = true;
          for (SkillId s : needed) {
            if (!skills.HasSkill(v, s)) {
              holds_all = false;
              break;
            }
          }
          if (!holds_all) continue;
          if (!CompatibleWithAll(oracle, v, team, member)) continue;
          std::vector<NodeId> candidate = team;
          candidate[i] = v;
          uint64_t cost = TeamCost(oracle, candidate, options.cost_kind);
          if (cost < best_cost) {
            best_cost = cost;
            best_swap = v;
          }
        }
        if (best_swap != kInvalidNode) {
          team[i] = best_swap;
          ++result.swaps_applied;
          improved = true;
        }
      }
      if (!improved) break;
    }
  }

  std::sort(team.begin(), team.end());
  result.cost_after = TeamCost(oracle, team, options.cost_kind);
  TFSN_CHECK_LE(result.cost_after, result.cost_before);
  result.members = std::move(team);
  return result;
}

}  // namespace tfsn
