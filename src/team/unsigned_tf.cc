#include "src/team/unsigned_tf.h"

#include <algorithm>

#include "src/graph/bfs.h"
#include "src/util/logging.h"

namespace tfsn {

UnsignedTeamResult RarestFirst(const SignedGraph& g,
                               const SkillAssignment& skills,
                               const Task& task) {
  UnsignedTeamResult result;
  if (task.empty()) {
    result.found = true;
    return result;
  }
  auto task_skills = task.skills();
  // Rarest skill.
  SkillId rare = task_skills[0];
  for (SkillId s : task_skills) {
    if (skills.Frequency(s) < skills.Frequency(rare)) rare = s;
  }
  if (skills.Frequency(rare) == 0) return result;

  std::vector<NodeId> best_team;
  uint32_t best_cost = kUnreachable;
  bool any = false;
  // Distance cache per team member for the diameter evaluation.
  for (NodeId seed : skills.Holders(rare)) {
    std::vector<uint32_t> from_seed = BfsDistances(g, seed);
    std::vector<NodeId> team{seed};
    bool failed = false;
    for (SkillId s : task_skills) {
      if (s == rare || skills.HasSkill(seed, s)) continue;
      NodeId closest = kInvalidNode;
      uint32_t closest_d = kUnreachable;
      for (NodeId v : skills.Holders(s)) {
        if (from_seed[v] < closest_d) {
          closest_d = from_seed[v];
          closest = v;
        }
      }
      if (closest == kInvalidNode) {
        failed = true;
        break;
      }
      if (std::find(team.begin(), team.end(), closest) == team.end()) {
        team.push_back(closest);
      }
    }
    if (failed) continue;
    // Team diameter in the unsigned graph.
    uint32_t cost = 0;
    for (size_t i = 0; i < team.size() && cost != kUnreachable; ++i) {
      std::vector<uint32_t> d = BfsDistances(g, team[i]);
      for (size_t j = i + 1; j < team.size(); ++j) {
        cost = std::max(cost, d[team[j]]);
      }
    }
    if (!any || cost < best_cost) {
      any = true;
      best_cost = cost;
      best_team = team;
    }
  }
  if (any) {
    result.found = true;
    std::sort(best_team.begin(), best_team.end());
    result.members = std::move(best_team);
    result.cost = best_cost;
  }
  return result;
}

}  // namespace tfsn
