// Algorithm 2 of the paper: generic greedy team formation with pluggable
// skill-selection and user-selection policies.
//
// The algorithm seeds a candidate team with each holder of an initial skill
// and then repeatedly (a) picks an uncovered skill by the skill policy and
// (b) adds a holder of that skill compatible with every current member,
// chosen by the user policy — until the task is covered or no compatible
// holder exists. The best-cost candidate team over all seeds is returned.
//
// Named configurations from the paper's evaluation:
//   LCMD   — least-compatible skill first, minimum-distance user.
//   LCMC   — least-compatible skill first, most-compatible user.
//   RANDOM — least-compatible skill first, uniformly random compatible user.
// plus the rarest-skill variants of [Lappas et al. 2009].

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/compat/compatibility.h"
#include "src/compat/skill_index.h"
#include "src/skills/skills.h"
#include "src/team/cost.h"
#include "src/team/task_view.h"
#include "src/util/rng.h"

namespace tfsn {

/// Policy for "Select skill" (lines 3 and 8 of Algorithm 2).
enum class SkillPolicy : uint8_t {
  /// Fewest holders first, as in the unsigned problem [9].
  kRarest,
  /// Smallest compatibility degree cd(s) first (needs a
  /// SkillCompatibilityIndex).
  kLeastCompatible,
};

/// Policy for "Select user" (line 9 of Algorithm 2).
enum class UserPolicy : uint8_t {
  /// Minimizes the maximum distance to the current team (i.e. the team
  /// diameter after insertion).
  kMinDistance,
  /// Maximizes the number of compatible users among the holders of the
  /// still-uncovered skills (greedy for feasibility).
  kMostCompatible,
  /// Uniformly random compatible holder (the paper's RANDOM baseline).
  kRandom,
};

const char* SkillPolicyName(SkillPolicy p);
const char* UserPolicyName(UserPolicy p);

/// "Select skill" (lines 3 and 8 of Algorithm 2) as a free function: the
/// first skill of `uncovered` (ascending) with the strictly smallest
/// priority — holder frequency (kRarest) or index degree
/// (kLeastCompatible; `index` must be non-null then). The sharded
/// coordinator (src/dist/) replicates the single-node skill choice through
/// this exact function; `uncovered` must be non-empty.
SkillId SelectSkillByPolicy(SkillPolicy policy, const SkillAssignment& skills,
                            const SkillCompatibilityIndex* index,
                            const std::vector<SkillId>& uncovered);

/// The seed set of Algorithm 2's outer loop: holders of `first_skill`
/// (ascending), sampled without replacement down to `max_seeds` when the
/// cap is exceeded (0 = no cap; `rng` must be non-null when sampling
/// happens — it consumes exactly one SampleWithoutReplacement draw then).
/// Shared by the single-node and sharded formers so both consume the same
/// rng stream.
std::vector<NodeId> GreedySeedSet(const SkillAssignment& skills,
                                  SkillId first_skill, uint32_t max_seeds,
                                  Rng* rng);

/// kMostCompatible's deterministic pool thinning: when `pool` (sorted,
/// deduplicated) exceeds `cap` > 0, keeps the evenly spaced subset at
/// ranks floor(i * |pool| / cap). Exposed so the sharded workers thin
/// with bit-identical arithmetic.
void ThinPoolEvenly(std::vector<NodeId>* pool, uint32_t cap);

/// How Form/FormTopK evaluate compatibility inside the seed loop.
enum class GreedyEvalPath : uint8_t {
  /// Build the task-local dense view (task_view.h) when it fits the byte
  /// budget and all distances pack into uint16; oracle otherwise.
  kAuto,
  /// Prefer the view; still falls back to the oracle when the view cannot
  /// be represented (budget or distance overflow).
  kView,
  /// Consume the oracle pair-by-pair (the pre-view reference path).
  kOracle,
};

/// Tuning for the greedy former.
struct GreedyParams {
  SkillPolicy skill_policy = SkillPolicy::kLeastCompatible;
  UserPolicy user_policy = UserPolicy::kMinDistance;
  /// Cap on seed users tried for the initial skill (0 = all holders). The
  /// paper iterates all holders; the cap keeps dense skills tractable.
  uint32_t max_seeds = 0;
  /// kMostCompatible only: cap on future-holder candidates examined per
  /// compatibility count (0 = all).
  uint32_t most_compatible_pool_cap = 256;
  /// When nonzero, Form/FormTopK first batch-prefetch the oracle rows of
  /// every holder of the task's skills (the row working set of the greedy
  /// search) with this many workers via CompatibilityOracle::GetRows —
  /// warming the shared row cache in parallel instead of computing rows
  /// one by one inside the seed loop. 0 disables prefetching; results are
  /// identical either way. On the view path the same worker count fetches
  /// the rows the view is materialized from (0 = one worker — the rows are
  /// needed regardless).
  uint32_t prefetch_threads = 0;
  /// Workers for the seed loop on the view path (each seed's greedy
  /// completion is independent and the view is immutable). 1 = serial,
  /// 0 = hardware concurrency / TFSN_THREADS. Results are bit-identical
  /// for every setting: per-seed outcomes land in per-seed slots merged in
  /// seed order, and the RANDOM policy draws from per-seed forked streams.
  /// The oracle fallback path always runs serially (one oracle instance is
  /// not thread-safe).
  uint32_t seed_threads = 1;
  /// Evaluation path selection (see GreedyEvalPath).
  GreedyEvalPath eval_path = GreedyEvalPath::kAuto;
  /// Byte budget for the task-local dense view: ~1 bit (2 for SBPH) plus
  /// 2 bytes per candidate pair. Oversized tasks fall back to the oracle.
  size_t view_max_bytes = TaskCompatView::kDefaultMaxBytes;
  /// Objective used to pick the best candidate team across seeds (the
  /// paper uses the diameter). The kMinDistance user policy always greedily
  /// bounds the diameter; this only changes the final argmin.
  CostKind cost_kind = CostKind::kDiameter;
};

/// Outcome of one team-formation run.
struct TeamResult {
  /// True when a team covering the task with all-pairs compatibility was
  /// found.
  bool found = false;
  /// Team members (sorted by id) when found.
  std::vector<NodeId> members;
  /// Cost(X): max pairwise relation distance; kUnreachable when some pair
  /// has no finite relation distance.
  uint32_t cost = 0;
  /// Value of the configured cost objective (equals `cost` for kDiameter).
  uint64_t objective = 0;
  /// Number of seed users attempted.
  uint32_t seeds_tried = 0;
  /// Seeds whose greedy completion succeeded.
  uint32_t seeds_succeeded = 0;
};

/// Greedy team former bound to one (graph, skills, relation) triple.
class GreedyTeamFormer {
 public:
  /// `index` is required when any policy is kLeastCompatible or when using
  /// MAX-bound helpers; may be nullptr otherwise. All referees must outlive
  /// the former.
  GreedyTeamFormer(CompatibilityOracle* oracle, const SkillAssignment& skills,
                   const SkillCompatibilityIndex* index, GreedyParams params);

  /// Runs Algorithm 2 on `task`. `rng` drives seed sampling and the RANDOM
  /// user policy (must be non-null when either is in play).
  TeamResult Form(const Task& task, Rng* rng);

  /// Like Form but returns up to `k` *distinct* candidate teams (one per
  /// successful seed), sorted by the configured cost objective ascending —
  /// top-k team enumeration in the spirit of Kargar & An (CIKM'11).
  std::vector<TeamResult> FormTopK(const Task& task, uint32_t k, Rng* rng);

  /// Forms a team for `task` evaluating against a caller-supplied view
  /// whose task skills are a superset of `task`'s (and that was built over
  /// this former's oracle and skills). The serving layer's batching
  /// scheduler builds one view for a group of requests with overlapping
  /// skill footprints and runs every member task against it; because the
  /// greedy loop only ever consults the view through the member task's own
  /// holder masks and pair rows — whose bits are global-graph properties,
  /// ordered by global id in every universe — the result is bit-identical
  /// to Form() on the same task for every policy and relation, including
  /// the rng stream consumed. The view's extra candidates are never
  /// touched.
  TeamResult FormWithView(const TaskCompatView& view, const Task& task,
                          Rng* rng);

  const GreedyParams& params() const { return params_; }

 private:
  /// Per-seed scratch buffers for the view path, reused across greedy
  /// steps of one seed (each worker owns its own instance).
  struct ViewScratch {
    std::vector<uint64_t> cand_mask;
    std::vector<uint64_t> pool_mask;
    std::vector<uint32_t> candidates;
    std::vector<uint32_t> pool;
  };

  /// Seed loop shared by Form/FormTopK/FormWithView. When `shared_view`
  /// is non-null it is used as-is (no build, no prefetch); its task must
  /// cover `task`'s skills.
  std::pair<uint32_t, uint32_t> EnumerateCandidates(
      const Task& task, Rng* rng, const TaskCompatView* shared_view,
      std::vector<TeamResult>* sink);

  /// Common body of Form and FormWithView.
  TeamResult FormImpl(const Task& task, Rng* rng,
                      const TaskCompatView* shared_view);

  /// Orders `skills` by the configured skill policy (ascending priority:
  /// element 0 is picked first).
  SkillId SelectSkill(const std::vector<SkillId>& uncovered) const;

  /// Picks a holder of `skill` compatible with all of `team`, or
  /// kInvalidNode. Candidates already in the team are skipped (they cannot
  /// hold the skill — it is uncovered — but guard anyway).
  NodeId SelectUser(SkillId skill, const std::vector<NodeId>& team,
                    const std::vector<SkillId>& uncovered_after, Rng* rng);

  /// View-path SelectUser over local ids; bit-identical selection.
  uint32_t SelectUserView(const TaskCompatView& view, SkillId skill,
                          const std::vector<uint32_t>& team,
                          const std::vector<SkillId>& uncovered_after,
                          Rng* rng, ViewScratch* scratch) const;

  /// kAuto cost model: true when the estimated oracle-path seed-loop work
  /// amortizes the dense-view build for this task (`universe_size` = the
  /// already-computed holder-universe size m).
  bool ViewWorthBuilding(const Task& task, size_t num_seeds,
                         size_t universe_size) const;

  /// Greedy completion of one seed against the oracle (serial reference
  /// path). Returns the evaluated candidate team or found == false.
  TeamResult CompleteSeedOracle(const Task& task, NodeId seed, Rng* rng);

  /// Greedy completion of one seed against the dense view; thread-safe
  /// (const view, const indexes, per-call scratch).
  TeamResult CompleteSeedView(const TaskCompatView& view, const Task& task,
                              uint32_t seed_local, Rng* rng) const;

  CompatibilityOracle* oracle_;
  const SkillAssignment& skills_;
  const SkillCompatibilityIndex* index_;
  GreedyParams params_;
};

/// MAX bound of Figure 2(a): true iff every pair of task skills is
/// compatible per the index — a necessary condition for any compatible
/// team (based on skills, not users; a rough upper bound). Exact only when
/// the index was built from all sources.
bool TaskSkillsCompatible(const SkillCompatibilityIndex& index,
                          const Task& task);

/// Exact MAX bound: for every pair of task skills checks directly whether
/// some compatible holder pair exists (including one user holding both).
/// Streams cached oracle rows with early exit, so solvable tasks are cheap.
bool TaskSkillsCompatibleExact(CompatibilityOracle* oracle,
                               const SkillAssignment& skills,
                               const Task& task);

/// Dense-view variant of the exact MAX bound for view.task(): the holder
/// streams become word-AND intersections of holder masks against raw-row
/// bits. Bit-identical verdict to the oracle overload.
bool TaskSkillsCompatibleExact(const TaskCompatView& view);

}  // namespace tfsn
