// Exact TFSN / TFSNC solver by branch & bound.
//
// Theorem 2.2 of the paper: even deciding whether *any* compatible skill-
// covering team exists (TFSNC) is NP-hard, so this solver is exponential
// and intended for small instances — it provides ground truth for tests
// and quantifies the greedy heuristic's optimality gap in ablations.

#pragma once

#include <cstdint>
#include <vector>

#include "src/compat/compatibility.h"
#include "src/skills/skills.h"

namespace tfsn {

/// Tuning for the exact solver.
struct ExactParams {
  /// Node-expansion budget; the search reports `exhausted` when exceeded.
  uint64_t expansion_budget = 5'000'000;
  /// When true, stop at the first feasible team (decide TFSNC) instead of
  /// minimizing cost (solve TFSN).
  bool feasibility_only = false;
};

/// Result of an exact solve.
struct ExactResult {
  bool found = false;
  std::vector<NodeId> members;  ///< optimal team (sorted) when found
  uint32_t cost = 0;            ///< its diameter under the relation distance
  bool exhausted = false;       ///< budget ran out; result may be suboptimal
  uint64_t expansions = 0;
};

/// Solves TFSN (min-cost compatible covering team) exactly: branches on the
/// uncovered skill with the fewest remaining holders, pruning on pairwise
/// compatibility and on the incumbent cost.
ExactResult SolveExact(CompatibilityOracle* oracle,
                       const SkillAssignment& skills, const Task& task,
                       ExactParams params = {});

}  // namespace tfsn
