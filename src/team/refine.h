// Post-processing for formed teams: redundancy pruning and swap-based local
// search. Algorithm 2 is greedy and can (a) keep members whose skills are
// fully covered by the rest of the team and (b) settle for a distant holder
// when a closer compatible one exists. Refinement fixes both while
// preserving the feasibility invariants (coverage + pairwise
// compatibility), so it never makes a team invalid or costlier.

#pragma once

#include <cstdint>
#include <vector>

#include "src/compat/compatibility.h"
#include "src/skills/skills.h"
#include "src/team/cost.h"

namespace tfsn {

/// What refinement did to a team.
struct RefinementResult {
  std::vector<NodeId> members;  ///< refined team, sorted
  uint64_t cost_before = 0;     ///< objective before refinement
  uint64_t cost_after = 0;      ///< objective after (never worse)
  uint32_t members_removed = 0;
  uint32_t swaps_applied = 0;
};

/// Options for RefineTeam.
struct RefineOptions {
  CostKind cost_kind = CostKind::kDiameter;
  /// Maximum local-search passes (each pass tries every member).
  uint32_t max_passes = 8;
  /// Try removing members whose task skills are covered by the rest.
  bool prune_redundant = true;
  /// Try swapping each member for an alternative holder that lowers cost.
  bool swap_members = true;
};

/// Refines `team` for `task`: (1) drops redundant members greedily (most
/// expensive first), (2) repeatedly replaces a member with a compatible
/// holder of the member's needed skills if that strictly lowers the cost
/// objective. The returned team always covers the task and stays pairwise
/// compatible; cost_after <= cost_before.
RefinementResult RefineTeam(CompatibilityOracle* oracle,
                            const SkillAssignment& skills, const Task& task,
                            std::vector<NodeId> team,
                            const RefineOptions& options = {});

}  // namespace tfsn
