// Task-local dense compatibility view.
//
// The greedy team former (Algorithm 2) only ever queries compatibility
// between holders of the task's skills — a working set of m ≪ n users. The
// oracle answers each of those queries with a striped-mutex hash lookup
// plus an n-length row dereference, which dominates the O(seeds × |team| ×
// |holders|) inner loop. TaskCompatView remaps the working set to dense
// local ids and materializes, once per task from batched oracle rows:
//
//   * an m×m bit-packed compatibility matrix (directional raw-row bits,
//     plus the symmetric closure for SBPH pair semantics),
//   * an m×m uint16 distance matrix (kUnreachable -> kDenseUnreachable),
//   * one m-bit holder mask per task skill.
//
// Build() batch-prewarms the row cache (so misses are computed in
// parallel, 64-way bit-parallel where the relation allows); the dense
// rows themselves materialize lazily on first touch, because the greedy
// MinDistance loop only ever folds the rows of *team members* — a small
// subset of the universe — so most rows are never gathered. (SBPH comp
// bits are filled eagerly: its pair semantics need the transpose.)
//
// "Compatible with the whole team" then becomes an AND-fold of 64-bit
// words over team rows, and MinDistance scoring becomes dense uint16
// loads — no oracle round-trips inside the seed loop. Pair semantics
// (reflexivity, the SBPH symmetric closure, distance mins) replicate
// CompatibilityOracle exactly, so every consumer is bit-identical to the
// oracle path.
//
// Build() returns nullptr — and callers fall back to the oracle — when the
// view would exceed its byte budget or the graph has too many nodes for
// uint16 distances. Every in-repo relation distance is a path length over
// (node, side) states, hence < 2·num_nodes; the build requires
// num_nodes < 2^15 so finite distances always fit. Custom kernels must
// respect the same bound (larger finite distances would saturate).

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/compat/compatibility.h"
#include "src/skills/skills.h"
#include "src/util/mutex.h"

namespace tfsn {

/// Sentinel local id for "no such node in the view".
inline constexpr uint32_t kNoLocalId = static_cast<uint32_t>(-1);

/// Tests bit `i` of a packed word span.
inline bool TestBit(std::span<const uint64_t> words, uint32_t i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}

/// Appends the indices of the set bits of `mask` to `out`, ascending.
void AppendSetBits(std::span<const uint64_t> mask, std::vector<uint32_t>* out);

/// Number of set bits across `mask`.
uint64_t CountSetBits(std::span<const uint64_t> mask);

/// Sorted, deduplicated union of the holders of `task_skills` — the
/// candidate universe a task's view is built over. One definition shared
/// by the view build, the greedy former, and the serving-layer batch
/// scheduler, so footprint estimates never diverge from what Build()
/// materializes.
std::vector<NodeId> HolderUniverse(const SkillAssignment& skills,
                                   std::span<const SkillId> task_skills);

class TaskCompatView {
 public:
  /// Finite distances must fit below this sentinel; the build falls back
  /// (returns nullptr) otherwise.
  static constexpr uint16_t kDenseUnreachable = 0xFFFF;

  /// Default byte budget for one view (see bytes()).
  static constexpr size_t kDefaultMaxBytes = 512ull << 20;

  /// Materializes the view for `task`: the candidate universe is the union
  /// of holders of the task's skills, rows are fetched in batches through
  /// CompatibilityOracle::GetRows with `threads` workers (so misses are
  /// computed in parallel and land in the shared row cache). Returns
  /// nullptr when the dense matrices would exceed `max_bytes` or the graph
  /// is too large for uint16 distances (see file comment) — callers then
  /// use the oracle directly. The oracle must outlive the view (lazy
  /// distance rows re-fetch cached rows through it); all accessors are
  /// safe to share across threads.
  static std::unique_ptr<TaskCompatView> Build(
      CompatibilityOracle* oracle, const SkillAssignment& skills,
      const Task& task, uint32_t threads = 1,
      size_t max_bytes = kDefaultMaxBytes);

  /// As Build, but takes the already-computed candidate universe (sorted,
  /// deduplicated union of the task's skill holders) so callers that
  /// needed it anyway — e.g. for the build-worthiness estimate — don't
  /// pay the concat/sort/dedup twice.
  static std::unique_ptr<TaskCompatView> BuildFromUniverse(
      CompatibilityOracle* oracle, const SkillAssignment& skills,
      const Task& task, std::vector<NodeId> universe, uint32_t threads = 1,
      size_t max_bytes = kDefaultMaxBytes);

  /// Degraded-tier builder for deadline-pressed serving: materializes the
  /// whole view eagerly from rows already resident in the oracle's cache
  /// memory tier (CompatibilityOracle::PeekRow) — never computes a row,
  /// never reads the spill tier, so the cost is bounded by decodes. A
  /// universe row that is not cached is filled pessimistically: no comp
  /// bits, all distances unreachable. Teams formed against such a view
  /// are *sound* (every accepted pair was confirmed by a real cached row)
  /// but may differ from the exact answer — callers must mark responses
  /// degraded unless *complete was set true (every row was cached, making
  /// the view bit-identical to the full build). Returns nullptr under the
  /// same gates as BuildFromUniverse.
  static std::unique_ptr<TaskCompatView> BuildFromCachedRows(
      CompatibilityOracle* oracle, const SkillAssignment& skills,
      const Task& task, std::vector<NodeId> universe, size_t max_bytes,
      bool* complete);

  /// Number of candidates (local ids are [0, size())).
  uint32_t size() const { return m_; }
  /// 64-bit words per bit row.
  size_t words() const { return words_; }
  /// The task the view was built for.
  const Task& task() const { return task_; }
  /// Relation the backing oracle implements.
  CompatKind kind() const { return kind_; }

  /// Local ids ascend with global ids (the universe is sorted), so scans
  /// over local ids visit candidates in the same order as oracle-path
  /// scans over sorted holder lists.
  NodeId GlobalOf(uint32_t local) const { return universe_[local]; }
  /// Local id of `global`, or kNoLocalId when not in the universe.
  uint32_t LocalOf(NodeId global) const;
  std::span<const NodeId> universe() const { return universe_; }

  /// Directional raw-row bits of `local`: bit v == (row(local).comp[v] != 0),
  /// exactly as CompatibilityOracle::GetRow exposes them (directional for
  /// SBPH). Used by kMostCompatible scoring and the exact MAX bound.
  /// Materializes on first touch (thread-safe, idempotent).
  std::span<const uint64_t> DirRow(uint32_t local) const {
    if (!dir_ready_[local].load(std::memory_order_acquire)) {
      MaterializeDirRow(local);
    }
    return {dir_bits_.get() + static_cast<size_t>(local) * words_, words_};
  }

  /// Pair-semantics bits of `local`: bit v == oracle->Compatible(local, v).
  /// Equals DirRow except for SBPH, where it is the symmetric closure
  /// (always materialized eagerly at build time).
  std::span<const uint64_t> PairRow(uint32_t local) const {
    if (pair_bits_.empty()) return DirRow(local);
    return {pair_bits_.data() + static_cast<size_t>(local) * words_, words_};
  }

  /// Directional dense distances of `local` (kDenseUnreachable sentinel).
  /// Rows materialize on first touch (thread-safe, idempotent); a touched
  /// row is a plain contiguous array thereafter.
  std::span<const uint16_t> DistRow(uint32_t local) const {
    if (!dist_ready_[local].load(std::memory_order_acquire)) {
      MaterializeDistRow(local);
    }
    return {dist_.get() + static_cast<size_t>(local) * m_, m_};
  }

  /// Same verdict as oracle->Compatible(GlobalOf(a), GlobalOf(b)).
  bool PairCompatible(uint32_t a, uint32_t b) const {
    if (a == b) return true;
    return TestBit(PairRow(a), b);
  }

  /// Same value as oracle->Distance(GlobalOf(a), GlobalOf(b)) — the uint16
  /// sentinel is widened back to kUnreachable (the mapping is
  /// order-preserving, so argmins match the oracle path bit for bit).
  uint32_t PairDistance(uint32_t a, uint32_t b) const {
    if (a == b) return 0;
    uint16_t d = DistRow(a)[b];
    if (kind_ == CompatKind::kSBPH) {
      d = std::min(d, DistRow(b)[a]);
    }
    return Widen(d);
  }

  /// Widens a dense distance cell to oracle distance semantics.
  static uint32_t Widen(uint16_t d) {
    return d == kDenseUnreachable ? kUnreachable : d;
  }

  /// Holder bits over the universe for task().skills()[task_skill_pos].
  std::span<const uint64_t> HolderMask(size_t task_skill_pos) const {
    return {holder_bits_.data() + task_skill_pos * words_, words_};
  }
  /// Holder count of that task skill (== SkillAssignment::Frequency).
  uint32_t HolderCount(size_t task_skill_pos) const {
    return holder_counts_[task_skill_pos];
  }
  /// Position of `skill` within task().skills() (which is sorted).
  size_t TaskSkillPos(SkillId skill) const;

  /// Bytes a view over `m` candidates with `num_task_skills` holder masks
  /// would allocate — the exact figure BuildFromUniverse checks against
  /// `max_bytes`, exposed so batch schedulers (src/serve) can cap a
  /// group's union footprint before paying for the build.
  static size_t EstimateBytes(size_t m, size_t num_task_skills, bool sbph);

  /// Actual footprint of the dense matrices and masks.
  size_t bytes() const;

 private:
  TaskCompatView() = default;

  /// Gather the dense comp-bit / distance row of `local` from the
  /// (cached) oracle row. Idempotent; serialized per striped lock
  /// (row_locks_[local % kLockStripes]) so concurrent seed workers never
  /// observe a half-written row. The stripe association is data-dependent,
  /// so it is outside what TFSN_GUARDED_BY can express — the protocol is
  /// documented on the members below instead.
  void MaterializeDirRow(uint32_t local) const;
  void MaterializeDistRow(uint32_t local) const;

  static constexpr size_t kLockStripes = 16;

  CompatibilityOracle* oracle_ = nullptr;  // for lazy rows
  Task task_;
  CompatKind kind_ = CompatKind::kNNE;
  uint32_t m_ = 0;
  size_t words_ = 0;
  std::vector<NodeId> universe_;     // sorted ascending
  std::vector<uint64_t> pair_bits_;  // SBPH only: dir | dir^T, eager
  /// m_ * words_ directional comp bits and m_ * m_ directional distances;
  /// row i is valid once its ready flag is set (deliberately
  /// uninitialized before that — no m^2 zeroing).
  ///
  /// Lock-free ordering contract (striped, so not TFSN-annotatable): row i
  /// of dir_bits_ / dist_ is written only by the thread holding
  /// row_locks_[i % kLockStripes], then published by a release store of
  /// 1 to the matching ready flag; readers (DirRow/DistRow) do an acquire
  /// load of the flag and touch the row bytes only after seeing 1, so the
  /// release/acquire pair makes the fully-written row visible. A reader
  /// that sees 0 falls into Materialize*, where the stripe lock serializes
  /// the double-checked recheck (relaxed load there is safe: the lock's
  /// ordering covers it).
  mutable std::unique_ptr<uint64_t[]> dir_bits_;
  mutable std::unique_ptr<uint16_t[]> dist_;
  mutable std::unique_ptr<std::atomic<uint8_t>[]> dir_ready_;
  mutable std::unique_ptr<std::atomic<uint8_t>[]> dist_ready_;
  mutable std::array<Mutex, kLockStripes> row_locks_;
  std::vector<uint64_t> holder_bits_;  // task size * words_
  std::vector<uint32_t> holder_counts_;
};

}  // namespace tfsn
