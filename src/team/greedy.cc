#include "src/team/greedy.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <span>

#include "src/graph/bfs.h"
#include "src/team/cost.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace tfsn {

namespace {

constexpr uint64_t kInfiniteCost = std::numeric_limits<uint64_t>::max();

// Maps a team diameter to the kDiameter objective exactly as TeamCost
// does, so candidate evaluation computes the pairwise sweep once and
// derives the objective from it (instead of recomputing the full diameter
// a second time through TeamCost).
uint64_t ObjectiveFromDiameter(uint32_t diameter) {
  return diameter == kUnreachable ? kInfiniteCost : diameter;
}

}  // namespace

const char* SkillPolicyName(SkillPolicy p) {
  switch (p) {
    case SkillPolicy::kRarest: return "Rarest";
    case SkillPolicy::kLeastCompatible: return "LeastCompatible";
  }
  return "?";
}

const char* UserPolicyName(UserPolicy p) {
  switch (p) {
    case UserPolicy::kMinDistance: return "MinDistance";
    case UserPolicy::kMostCompatible: return "MostCompatible";
    case UserPolicy::kRandom: return "Random";
  }
  return "?";
}

SkillId SelectSkillByPolicy(SkillPolicy policy, const SkillAssignment& skills,
                            const SkillCompatibilityIndex* index,
                            const std::vector<SkillId>& uncovered) {
  TFSN_CHECK(!uncovered.empty());
  if (policy == SkillPolicy::kLeastCompatible) TFSN_CHECK(index != nullptr);
  SkillId best = uncovered[0];
  for (SkillId s : uncovered) {
    switch (policy) {
      case SkillPolicy::kRarest:
        if (skills.Frequency(s) < skills.Frequency(best)) best = s;
        break;
      case SkillPolicy::kLeastCompatible:
        if (index->Degree(s) < index->Degree(best)) best = s;
        break;
    }
  }
  return best;
}

std::vector<NodeId> GreedySeedSet(const SkillAssignment& skills,
                                  SkillId first_skill, uint32_t max_seeds,
                                  Rng* rng) {
  auto holders = skills.Holders(first_skill);
  std::vector<NodeId> seeds(holders.begin(), holders.end());
  if (max_seeds > 0 && seeds.size() > max_seeds) {
    TFSN_CHECK(rng != nullptr);
    std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
        static_cast<uint32_t>(seeds.size()), max_seeds);
    std::sort(picks.begin(), picks.end());
    std::vector<NodeId> sampled;
    sampled.reserve(picks.size());
    for (uint32_t p : picks) sampled.push_back(seeds[p]);
    seeds.swap(sampled);
  }
  return seeds;
}

void ThinPoolEvenly(std::vector<NodeId>* pool, uint32_t cap) {
  if (cap == 0 || pool->size() <= cap) return;
  // Deterministic thinning: keep an evenly spaced subset.
  std::vector<NodeId> thin;
  thin.reserve(cap);
  double step = static_cast<double>(pool->size()) / cap;
  for (uint32_t i = 0; i < cap; ++i) {
    thin.push_back((*pool)[static_cast<size_t>(i * step)]);
  }
  pool->swap(thin);
}

GreedyTeamFormer::GreedyTeamFormer(CompatibilityOracle* oracle,
                                   const SkillAssignment& skills,
                                   const SkillCompatibilityIndex* index,
                                   GreedyParams params)
    : oracle_(oracle), skills_(skills), index_(index), params_(params) {
  TFSN_CHECK(oracle != nullptr);
  if (params_.skill_policy == SkillPolicy::kLeastCompatible) {
    TFSN_CHECK(index != nullptr);
  }
}

SkillId GreedyTeamFormer::SelectSkill(
    const std::vector<SkillId>& uncovered) const {
  return SelectSkillByPolicy(params_.skill_policy, skills_, index_, uncovered);
}

NodeId GreedyTeamFormer::SelectUser(SkillId skill,
                                    const std::vector<NodeId>& team,
                                    const std::vector<SkillId>& uncovered_after,
                                    Rng* rng) {
  auto holders = skills_.Holders(skill);
  // Collect holders compatible with the whole current team. Compatibility
  // tests stream the cached rows of the (few) team members, so this is
  // O(|team| * |holders|) row lookups.
  std::vector<NodeId> candidates;
  for (NodeId v : holders) {
    bool in_team = std::find(team.begin(), team.end(), v) != team.end();
    if (in_team) continue;
    bool ok = true;
    for (NodeId x : team) {
      if (!oracle_->Compatible(x, v)) {
        ok = false;
        break;
      }
    }
    if (ok) candidates.push_back(v);
  }
  if (candidates.empty()) return kInvalidNode;

  switch (params_.user_policy) {
    case UserPolicy::kMinDistance: {
      NodeId best = kInvalidNode;
      uint64_t best_score = ~0ULL;
      for (NodeId v : candidates) {
        uint32_t worst = 0;
        for (NodeId x : team) {
          uint32_t d = oracle_->Distance(x, v);
          worst = std::max(worst, d);
          if (worst >= best_score) break;
        }
        if (worst < best_score) {
          best_score = worst;
          best = v;
        }
      }
      return best;
    }
    case UserPolicy::kMostCompatible: {
      // Score each candidate by how many holders of the still-uncovered
      // skills it is compatible with (greedy for keeping the search alive).
      std::vector<NodeId> pool;
      for (SkillId s : uncovered_after) {
        auto hs = skills_.Holders(s);
        pool.insert(pool.end(), hs.begin(), hs.end());
      }
      std::sort(pool.begin(), pool.end());
      pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
      ThinPoolEvenly(&pool, params_.most_compatible_pool_cap);
      NodeId best = kInvalidNode;
      int64_t best_score = -1;
      for (NodeId v : candidates) {
        const auto& row = oracle_->GetRow(v);
        int64_t score = 0;
        for (NodeId w : pool) score += row.comp[w] != 0;
        if (score > best_score) {
          best_score = score;
          best = v;
        }
      }
      return best;
    }
    case UserPolicy::kRandom: {
      TFSN_CHECK(rng != nullptr);
      return candidates[rng->NextBounded(candidates.size())];
    }
  }
  return kInvalidNode;
}

uint32_t GreedyTeamFormer::SelectUserView(
    const TaskCompatView& view, SkillId skill,
    const std::vector<uint32_t>& team,
    const std::vector<SkillId>& uncovered_after, Rng* rng,
    ViewScratch* scratch) const {
  const size_t words = view.words();
  // "Compatible with the whole team" is an AND-fold of 64-bit words: the
  // holder mask of `skill` intersected with every team member's pair row,
  // minus the team itself. Bit order is global-id order, so the candidate
  // list matches the oracle path's holder scan exactly.
  auto holder_mask = view.HolderMask(view.TaskSkillPos(skill));
  scratch->cand_mask.assign(holder_mask.begin(), holder_mask.end());
  for (uint32_t x : team) {
    auto row = view.PairRow(x);
    for (size_t w = 0; w < words; ++w) scratch->cand_mask[w] &= row[w];
  }
  for (uint32_t x : team) {
    scratch->cand_mask[x >> 6] &= ~(uint64_t{1} << (x & 63));
  }
  scratch->candidates.clear();
  AppendSetBits(scratch->cand_mask, &scratch->candidates);
  if (scratch->candidates.empty()) return kNoLocalId;
  const auto& candidates = scratch->candidates;

  switch (params_.user_policy) {
    case UserPolicy::kMinDistance: {
      // Dense uint16 loads with the oracle loop's candidate-level early
      // break (a pure pruning: the partial max only ever loses a failing
      // comparison). First-strict-minimum in ascending candidate order —
      // the same winner as the oracle path.
      const bool sbph = view.kind() == CompatKind::kSBPH;
      uint32_t best = kNoLocalId;
      uint64_t best_score = ~0ULL;
      for (uint32_t v : candidates) {
        uint32_t worst = 0;
        for (uint32_t x : team) {
          const uint16_t packed =
              sbph ? std::min(view.DistRow(x)[v], view.DistRow(v)[x])
                   : view.DistRow(x)[v];
          worst = std::max(worst, TaskCompatView::Widen(packed));
          if (worst >= best_score) break;
        }
        if (worst < best_score) {
          best_score = worst;
          best = v;
        }
      }
      return best;
    }
    case UserPolicy::kMostCompatible: {
      // The future-holder pool is an OR of precomputed per-skill holder
      // masks — no per-step concatenation, sort, or dedup (the view owns
      // the holder universe). Thinning replicates the oracle path's
      // arithmetic; local-id order equals global-id order, so the thinned
      // subset is identical.
      scratch->pool_mask.assign(words, 0);
      for (SkillId t : uncovered_after) {
        auto mask = view.HolderMask(view.TaskSkillPos(t));
        for (size_t w = 0; w < words; ++w) scratch->pool_mask[w] |= mask[w];
      }
      const uint64_t pool_size = CountSetBits(scratch->pool_mask);
      if (params_.most_compatible_pool_cap > 0 &&
          pool_size > params_.most_compatible_pool_cap) {
        // Evenly spaced thinning by rank-select on the mask: the selected
        // ranks floor(i * step) are exactly the elements the oracle path
        // picks from its sorted pool vector, without materializing it.
        const uint32_t cap = params_.most_compatible_pool_cap;
        const double step = static_cast<double>(pool_size) / cap;
        scratch->pool.clear();
        uint32_t i = 0;
        uint64_t rank = 0;  // set bits before the current word
        for (size_t w = 0; w < words && i < cap; ++w) {
          uint64_t bits = scratch->pool_mask[w];
          const uint64_t count = static_cast<uint64_t>(std::popcount(bits));
          uint64_t consumed = 0;  // bits cleared from this word so far
          while (i < cap) {
            const uint64_t target = static_cast<uint64_t>(
                static_cast<uint32_t>(i) * step);
            if (target >= rank + count) break;
            // Drop set bits below the target rank, then take the lowest.
            for (; rank + consumed < target; ++consumed) bits &= bits - 1;
            scratch->pool.push_back(
                static_cast<uint32_t>(w * 64 + std::countr_zero(bits)));
            ++i;
          }
          rank += count;
        }
        std::fill(scratch->pool_mask.begin(), scratch->pool_mask.end(), 0);
        for (uint32_t v : scratch->pool) {
          scratch->pool_mask[v >> 6] |= uint64_t{1} << (v & 63);
        }
      }
      uint32_t best = kNoLocalId;
      int64_t best_score = -1;
      for (uint32_t v : candidates) {
        auto row = view.DirRow(v);
        int64_t score = 0;
        for (size_t w = 0; w < words; ++w) {
          score += std::popcount(row[w] & scratch->pool_mask[w]);
        }
        if (score > best_score) {
          best_score = score;
          best = v;
        }
      }
      return best;
    }
    case UserPolicy::kRandom: {
      TFSN_CHECK(rng != nullptr);
      return candidates[rng->NextBounded(candidates.size())];
    }
  }
  return kNoLocalId;
}

bool GreedyTeamFormer::ViewWorthBuilding(const Task& task, size_t num_seeds,
                                         size_t universe_size) const {
  // The view costs ~m row-cache probes to prewarm (m = holder-universe
  // size) plus lazy per-row gathers; the oracle seed loop costs up to
  // seeds × Σ_s |holders(s)| row lookups, each a shard-mutex hash probe
  // plus a full-row dereference — but failing seeds stop early, so the
  // upper bound overshoots small instances badly. Requiring the estimated
  // loop work to reach the quadratic regime (a constant fraction of m^2)
  // empirically separates "trivial task, oracle wins" from "dense task,
  // view wins"; either choice returns bit-identical results.
  uint64_t sum_holders = 0;
  for (SkillId s : task.skills()) sum_holders += skills_.Frequency(s);
  const uint64_t m = universe_size;
  const uint64_t est_lookups = static_cast<uint64_t>(num_seeds) * sum_holders;
  return est_lookups * 4 >= m * m;
}

TeamResult GreedyTeamFormer::CompleteSeedOracle(const Task& task, NodeId seed,
                                                Rng* rng) {
  TeamResult candidate;
  std::vector<NodeId> team{seed};
  SkillCoverage coverage(task);
  coverage.Cover(skills_.SkillsOf(seed));
  while (!coverage.AllCovered()) {
    std::vector<SkillId> uncovered = coverage.Uncovered();
    SkillId s = SelectSkill(uncovered);  // line 8
    // Skills still uncovered after s is handled; used by kMostCompatible.
    std::vector<SkillId> rest;
    for (SkillId t : uncovered) {
      if (t != s) rest.push_back(t);
    }
    NodeId v = SelectUser(s, team, rest, rng);  // lines 9-10
    if (v == kInvalidNode) return candidate;
    team.push_back(v);
    coverage.Cover(skills_.SkillsOf(v));
  }
  candidate.found = true;
  std::sort(team.begin(), team.end());
  candidate.cost = TeamDiameter(oracle_, team);
  candidate.objective = params_.cost_kind == CostKind::kDiameter
                            ? ObjectiveFromDiameter(candidate.cost)
                            : TeamCost(oracle_, team, params_.cost_kind);
  candidate.members = std::move(team);
  return candidate;
}

TeamResult GreedyTeamFormer::CompleteSeedView(const TaskCompatView& view,
                                              const Task& task,
                                              uint32_t seed_local,
                                              Rng* rng) const {
  TeamResult candidate;
  ViewScratch scratch;
  std::vector<uint32_t> team{seed_local};
  SkillCoverage coverage(task);
  coverage.Cover(skills_.SkillsOf(view.GlobalOf(seed_local)));
  while (!coverage.AllCovered()) {
    std::vector<SkillId> uncovered = coverage.Uncovered();
    SkillId s = SelectSkill(uncovered);
    std::vector<SkillId> rest;
    for (SkillId t : uncovered) {
      if (t != s) rest.push_back(t);
    }
    const uint32_t v = SelectUserView(view, s, team, rest, rng, &scratch);
    if (v == kNoLocalId) return candidate;
    team.push_back(v);
    coverage.Cover(skills_.SkillsOf(view.GlobalOf(v)));
  }
  candidate.found = true;
  // Local ids ascend with global ids, so this sort yields the same member
  // order as the oracle path's sort of global ids.
  std::sort(team.begin(), team.end());
  candidate.cost = TeamDiameter(view, team);
  candidate.objective = params_.cost_kind == CostKind::kDiameter
                            ? ObjectiveFromDiameter(candidate.cost)
                            : TeamCost(view, team, params_.cost_kind);
  candidate.members.reserve(team.size());
  for (uint32_t local : team) candidate.members.push_back(view.GlobalOf(local));
  return candidate;
}

// Runs the seed loop of Algorithm 2 and collects every successful candidate
// team into `sink` (members sorted, costs evaluated). Returns (seeds tried,
// seeds succeeded).
std::pair<uint32_t, uint32_t> GreedyTeamFormer::EnumerateCandidates(
    const Task& task, Rng* rng, const TaskCompatView* shared_view,
    std::vector<TeamResult>* sink) {
  // Initial skill (line 3) over the whole task.
  std::vector<SkillId> all_skills(task.skills().begin(), task.skills().end());
  SkillId first = SelectSkill(all_skills);

  // Seed set: holders of the initial skill, optionally capped by sampling.
  std::vector<NodeId> seeds =
      GreedySeedSet(skills_, first, params_.max_seeds, rng);

  // The task's holder universe — every candidate the seed loop can touch
  // holds one of the task's skills. Computed once and shared by the
  // build-worthiness estimate, the view build, and the oracle-path cache
  // prewarm. A caller-supplied view already paid for all of that (over a
  // possibly larger universe), so the block is skipped entirely.
  std::unique_ptr<TaskCompatView> owned_view;
  const TaskCompatView* view = shared_view;
  if (view == nullptr) {
    std::vector<NodeId> universe;
    const bool need_universe = params_.eval_path != GreedyEvalPath::kOracle ||
                               params_.prefetch_threads > 0;
    if (need_universe) {
      universe = HolderUniverse(skills_, task.skills());
    }

    // Dense fast path: materialize the task-local view once (its row fetch
    // doubles as the cache prewarm). Falls back to the oracle when disabled,
    // over budget, not worth building, or the graph is too large for uint16
    // distances. The path choice never changes the results — only how they
    // are computed — so kAuto is free to pick either.
    if (params_.eval_path == GreedyEvalPath::kView ||
        (params_.eval_path == GreedyEvalPath::kAuto &&
         ViewWorthBuilding(task, seeds.size(), universe.size()))) {
      const uint32_t build_threads =
          params_.prefetch_threads == 0 ? 1 : params_.prefetch_threads;
      // Keep our universe copy alive: a build that falls back (budget /
      // node-count gate) still wants the prewarm below.
      owned_view = TaskCompatView::BuildFromUniverse(
          oracle_, skills_, task, std::vector<NodeId>(universe), build_threads,
          params_.view_max_bytes);
      view = owned_view.get();
    }
    if (view == nullptr && params_.prefetch_threads > 0) {
      // Oracle path: warm the row cache for the whole universe so the
      // misses are computed by parallel workers instead of serially on
      // first use.
      oracle_->StreamRows(universe, params_.prefetch_threads,
                          [](size_t, const CompatibilityOracle::Row&) {});
    }
  }

  // Only the RANDOM user policy consumes randomness inside the loop. Fork
  // one stream per seed, in seed order, so results are bit-identical for
  // every seed_threads setting and for both evaluation paths. (Non-random
  // policies leave the caller's stream untouched, exactly as before.)
  std::vector<Rng> seed_rngs;
  if (params_.user_policy == UserPolicy::kRandom) {
    TFSN_CHECK(rng != nullptr);
    seed_rngs.reserve(seeds.size());
    for (size_t i = 0; i < seeds.size(); ++i) seed_rngs.push_back(rng->Fork());
  }
  auto seed_rng_at = [&](size_t i) -> Rng* {
    return seed_rngs.empty() ? nullptr : &seed_rngs[i];
  };

  // Per-seed result slots merged in seed order: a deterministic reduction
  // no matter how many workers ran the loop.
  std::vector<TeamResult> slots(seeds.size());
  if (view != nullptr) {
    const TaskCompatView& v = *view;
    TFSN_DCHECK(v.kind() == oracle_->kind());
    const uint32_t threads =
        params_.seed_threads == 1 ? 1 : ResolveThreads(params_.seed_threads);
    ParallelForEach(seeds.size(), threads, [&](uint64_t i) {
      const uint32_t seed_local = v.LocalOf(seeds[i]);
      // Every holder of a task skill is in the view universe — also when
      // the view was supplied by a caller for a superset task.
      TFSN_CHECK(seed_local != kNoLocalId);
      slots[i] = CompleteSeedView(v, task, seed_local, seed_rng_at(i));
    });
  } else {
    // One oracle instance is not thread-safe (GetRow pins rows into
    // instance-local state), so the fallback path stays serial.
    for (size_t i = 0; i < seeds.size(); ++i) {
      slots[i] = CompleteSeedOracle(task, seeds[i], seed_rng_at(i));
    }
  }

  uint32_t succeeded = 0;
  for (TeamResult& slot : slots) {
    if (!slot.found) continue;
    ++succeeded;
    sink->push_back(std::move(slot));
  }
  return {static_cast<uint32_t>(seeds.size()), succeeded};
}

TeamResult GreedyTeamFormer::Form(const Task& task, Rng* rng) {
  return FormImpl(task, rng, nullptr);
}

TeamResult GreedyTeamFormer::FormWithView(const TaskCompatView& view,
                                          const Task& task, Rng* rng) {
  return FormImpl(task, rng, &view);
}

TeamResult GreedyTeamFormer::FormImpl(const Task& task, Rng* rng,
                                      const TaskCompatView* shared_view) {
  TeamResult result;
  if (task.empty()) {
    result.found = true;
    return result;
  }
  std::vector<TeamResult> candidates;
  auto [tried, succeeded] =
      EnumerateCandidates(task, rng, shared_view, &candidates);
  result.seeds_tried = tried;
  result.seeds_succeeded = succeeded;
  const TeamResult* best = nullptr;
  for (const TeamResult& c : candidates) {
    if (best == nullptr || c.objective < best->objective ||
        (c.objective == best->objective &&
         c.members.size() < best->members.size())) {
      best = &c;
    }
  }
  if (best != nullptr) {
    result.found = true;
    result.members = best->members;
    result.cost = best->cost;
    result.objective = best->objective;
  }
  return result;
}

std::vector<TeamResult> GreedyTeamFormer::FormTopK(const Task& task,
                                                   uint32_t k, Rng* rng) {
  std::vector<TeamResult> candidates;
  if (task.empty() || k == 0) return candidates;
  EnumerateCandidates(task, rng, nullptr, &candidates);
  std::sort(candidates.begin(), candidates.end(),
            [](const TeamResult& a, const TeamResult& b) {
              if (a.objective != b.objective) return a.objective < b.objective;
              if (a.members.size() != b.members.size()) {
                return a.members.size() < b.members.size();
              }
              return a.members < b.members;
            });
  // Deduplicate identical member sets (different seeds can converge).
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const TeamResult& a, const TeamResult& b) {
                                 return a.members == b.members;
                               }),
                   candidates.end());
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

bool TaskSkillsCompatible(const SkillCompatibilityIndex& index,
                          const Task& task) {
  auto skills = task.skills();
  for (size_t i = 0; i < skills.size(); ++i) {
    for (size_t j = i + 1; j < skills.size(); ++j) {
      if (!index.SkillsCompatible(skills[i], skills[j])) return false;
    }
  }
  return true;
}

bool TaskSkillsCompatibleExact(CompatibilityOracle* oracle,
                               const SkillAssignment& skills,
                               const Task& task) {
  auto task_skills = task.skills();
  for (size_t i = 0; i < task_skills.size(); ++i) {
    for (size_t j = i + 1; j < task_skills.size(); ++j) {
      auto hs = skills.Holders(task_skills[i]);
      auto ht = skills.Holders(task_skills[j]);
      if (hs.empty() || ht.empty()) return false;
      // Fetch rows from the smaller side.
      if (ht.size() < hs.size()) std::swap(hs, ht);
      bool found = false;
      for (NodeId u : hs) {
        const auto& row = oracle->GetRow(u);
        for (NodeId v : ht) {
          // comp[u] itself covers the self-compatibility case (u == v).
          if (row.comp[v]) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) return false;
    }
  }
  return true;
}

bool TaskSkillsCompatibleExact(const TaskCompatView& view) {
  auto task_skills = view.task().skills();
  const size_t words = view.words();
  std::vector<uint32_t> side;
  for (size_t i = 0; i < task_skills.size(); ++i) {
    for (size_t j = i + 1; j < task_skills.size(); ++j) {
      size_t pi = i, pj = j;
      if (view.HolderCount(pi) == 0 || view.HolderCount(pj) == 0) return false;
      // Same smaller-side rule as the oracle overload (it decides which
      // direction the SBPH raw rows are consulted in).
      if (view.HolderCount(pj) < view.HolderCount(pi)) std::swap(pi, pj);
      auto target_mask = view.HolderMask(pj);
      side.clear();
      AppendSetBits(view.HolderMask(pi), &side);
      bool found = false;
      for (uint32_t u : side) {
        auto row = view.DirRow(u);
        for (size_t w = 0; w < words; ++w) {
          // Bit u of target_mask covers the self-compatibility case.
          if ((row[w] & target_mask[w]) != 0) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace tfsn
