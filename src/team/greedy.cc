#include "src/team/greedy.h"

#include <algorithm>
#include <span>

#include "src/graph/bfs.h"
#include "src/team/cost.h"
#include "src/util/logging.h"

namespace tfsn {

const char* SkillPolicyName(SkillPolicy p) {
  switch (p) {
    case SkillPolicy::kRarest: return "Rarest";
    case SkillPolicy::kLeastCompatible: return "LeastCompatible";
  }
  return "?";
}

const char* UserPolicyName(UserPolicy p) {
  switch (p) {
    case UserPolicy::kMinDistance: return "MinDistance";
    case UserPolicy::kMostCompatible: return "MostCompatible";
    case UserPolicy::kRandom: return "Random";
  }
  return "?";
}

GreedyTeamFormer::GreedyTeamFormer(CompatibilityOracle* oracle,
                                   const SkillAssignment& skills,
                                   const SkillCompatibilityIndex* index,
                                   GreedyParams params)
    : oracle_(oracle), skills_(skills), index_(index), params_(params) {
  TFSN_CHECK(oracle != nullptr);
  if (params_.skill_policy == SkillPolicy::kLeastCompatible) {
    TFSN_CHECK(index != nullptr);
  }
}

SkillId GreedyTeamFormer::SelectSkill(
    const std::vector<SkillId>& uncovered) const {
  TFSN_CHECK(!uncovered.empty());
  SkillId best = uncovered[0];
  for (SkillId s : uncovered) {
    switch (params_.skill_policy) {
      case SkillPolicy::kRarest:
        if (skills_.Frequency(s) < skills_.Frequency(best)) best = s;
        break;
      case SkillPolicy::kLeastCompatible:
        if (index_->Degree(s) < index_->Degree(best)) best = s;
        break;
    }
  }
  return best;
}

NodeId GreedyTeamFormer::SelectUser(SkillId skill,
                                    const std::vector<NodeId>& team,
                                    const std::vector<SkillId>& uncovered_after,
                                    Rng* rng) {
  auto holders = skills_.Holders(skill);
  // Collect holders compatible with the whole current team. Compatibility
  // tests stream the cached rows of the (few) team members, so this is
  // O(|team| * |holders|) row lookups.
  std::vector<NodeId> candidates;
  for (NodeId v : holders) {
    bool in_team = std::find(team.begin(), team.end(), v) != team.end();
    if (in_team) continue;
    bool ok = true;
    for (NodeId x : team) {
      if (!oracle_->Compatible(x, v)) {
        ok = false;
        break;
      }
    }
    if (ok) candidates.push_back(v);
  }
  if (candidates.empty()) return kInvalidNode;

  switch (params_.user_policy) {
    case UserPolicy::kMinDistance: {
      NodeId best = kInvalidNode;
      uint64_t best_score = ~0ULL;
      for (NodeId v : candidates) {
        uint32_t worst = 0;
        for (NodeId x : team) {
          uint32_t d = oracle_->Distance(x, v);
          worst = std::max(worst, d);
          if (worst >= best_score) break;
        }
        if (worst < best_score) {
          best_score = worst;
          best = v;
        }
      }
      return best;
    }
    case UserPolicy::kMostCompatible: {
      // Score each candidate by how many holders of the still-uncovered
      // skills it is compatible with (greedy for keeping the search alive).
      std::vector<NodeId> pool;
      for (SkillId s : uncovered_after) {
        auto hs = skills_.Holders(s);
        pool.insert(pool.end(), hs.begin(), hs.end());
      }
      std::sort(pool.begin(), pool.end());
      pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
      if (params_.most_compatible_pool_cap > 0 &&
          pool.size() > params_.most_compatible_pool_cap) {
        // Deterministic thinning: keep an evenly spaced subset.
        std::vector<NodeId> thin;
        thin.reserve(params_.most_compatible_pool_cap);
        double step = static_cast<double>(pool.size()) /
                      params_.most_compatible_pool_cap;
        for (uint32_t i = 0; i < params_.most_compatible_pool_cap; ++i) {
          thin.push_back(pool[static_cast<size_t>(i * step)]);
        }
        pool.swap(thin);
      }
      NodeId best = kInvalidNode;
      int64_t best_score = -1;
      for (NodeId v : candidates) {
        const auto& row = oracle_->GetRow(v);
        int64_t score = 0;
        for (NodeId w : pool) score += row.comp[w] != 0;
        if (score > best_score) {
          best_score = score;
          best = v;
        }
      }
      return best;
    }
    case UserPolicy::kRandom: {
      TFSN_CHECK(rng != nullptr);
      return candidates[rng->NextBounded(candidates.size())];
    }
  }
  return kInvalidNode;
}

// Runs the seed loop of Algorithm 2 and collects every successful candidate
// team into `sink` (members sorted, costs evaluated). Returns (seeds tried,
// seeds succeeded).
std::pair<uint32_t, uint32_t> GreedyTeamFormer::EnumerateCandidates(
    const Task& task, Rng* rng, std::vector<TeamResult>* sink) {
  // Warm the row cache for the task's whole row working set — every
  // candidate the seed loop can touch holds one of the task's skills — so
  // the misses are computed by parallel workers instead of serially on
  // first use.
  if (params_.prefetch_threads > 0) {
    std::vector<NodeId> holders;
    for (SkillId s : task.skills()) {
      auto hs = skills_.Holders(s);
      holders.insert(holders.end(), hs.begin(), hs.end());
    }
    std::sort(holders.begin(), holders.end());
    holders.erase(std::unique(holders.begin(), holders.end()), holders.end());
    // Chunked like the skill-index build: each batch's pins are dropped
    // before the next, bounding peak pinned memory at kPrefetchBatch rows
    // while the rows themselves land in the cache.
    constexpr size_t kPrefetchBatch = 128;
    for (size_t off = 0; off < holders.size(); off += kPrefetchBatch) {
      oracle_->GetRows(
          std::span<const NodeId>(holders.data() + off,
                                  std::min(kPrefetchBatch,
                                           holders.size() - off)),
          params_.prefetch_threads);
    }
  }

  // Initial skill (line 3) over the whole task.
  std::vector<SkillId> all_skills(task.skills().begin(), task.skills().end());
  SkillId first = SelectSkill(all_skills);

  // Seed set: holders of the initial skill, optionally capped by sampling.
  auto holders = skills_.Holders(first);
  std::vector<NodeId> seeds(holders.begin(), holders.end());
  if (params_.max_seeds > 0 && seeds.size() > params_.max_seeds) {
    TFSN_CHECK(rng != nullptr);
    std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
        static_cast<uint32_t>(seeds.size()), params_.max_seeds);
    std::sort(picks.begin(), picks.end());
    std::vector<NodeId> sampled;
    sampled.reserve(picks.size());
    for (uint32_t p : picks) sampled.push_back(seeds[p]);
    seeds.swap(sampled);
  }

  uint32_t tried = 0, succeeded = 0;
  for (NodeId seed : seeds) {
    ++tried;
    std::vector<NodeId> team{seed};
    SkillCoverage coverage(task);
    coverage.Cover(skills_.SkillsOf(seed));
    bool failed = false;
    while (!coverage.AllCovered()) {
      std::vector<SkillId> uncovered = coverage.Uncovered();
      SkillId s = SelectSkill(uncovered);  // line 8
      // Skills still uncovered after s is handled; used by kMostCompatible.
      std::vector<SkillId> rest;
      for (SkillId t : uncovered) {
        if (t != s) rest.push_back(t);
      }
      NodeId v = SelectUser(s, team, rest, rng);  // lines 9-10
      if (v == kInvalidNode) {
        failed = true;
        break;
      }
      team.push_back(v);
      coverage.Cover(skills_.SkillsOf(v));
    }
    if (failed) continue;
    ++succeeded;
    TeamResult candidate;
    candidate.found = true;
    std::sort(team.begin(), team.end());
    candidate.cost = TeamDiameter(oracle_, team);
    candidate.objective = TeamCost(oracle_, team, params_.cost_kind);
    candidate.members = std::move(team);
    sink->push_back(std::move(candidate));
  }
  return {tried, succeeded};
}

TeamResult GreedyTeamFormer::Form(const Task& task, Rng* rng) {
  TeamResult result;
  if (task.empty()) {
    result.found = true;
    return result;
  }
  std::vector<TeamResult> candidates;
  auto [tried, succeeded] = EnumerateCandidates(task, rng, &candidates);
  result.seeds_tried = tried;
  result.seeds_succeeded = succeeded;
  const TeamResult* best = nullptr;
  for (const TeamResult& c : candidates) {
    if (best == nullptr || c.objective < best->objective ||
        (c.objective == best->objective &&
         c.members.size() < best->members.size())) {
      best = &c;
    }
  }
  if (best != nullptr) {
    result.found = true;
    result.members = best->members;
    result.cost = best->cost;
    result.objective = best->objective;
  }
  return result;
}

std::vector<TeamResult> GreedyTeamFormer::FormTopK(const Task& task,
                                                   uint32_t k, Rng* rng) {
  std::vector<TeamResult> candidates;
  if (task.empty() || k == 0) return candidates;
  EnumerateCandidates(task, rng, &candidates);
  std::sort(candidates.begin(), candidates.end(),
            [](const TeamResult& a, const TeamResult& b) {
              if (a.objective != b.objective) return a.objective < b.objective;
              if (a.members.size() != b.members.size()) {
                return a.members.size() < b.members.size();
              }
              return a.members < b.members;
            });
  // Deduplicate identical member sets (different seeds can converge).
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const TeamResult& a, const TeamResult& b) {
                                 return a.members == b.members;
                               }),
                   candidates.end());
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

bool TaskSkillsCompatible(const SkillCompatibilityIndex& index,
                          const Task& task) {
  auto skills = task.skills();
  for (size_t i = 0; i < skills.size(); ++i) {
    for (size_t j = i + 1; j < skills.size(); ++j) {
      if (!index.SkillsCompatible(skills[i], skills[j])) return false;
    }
  }
  return true;
}

bool TaskSkillsCompatibleExact(CompatibilityOracle* oracle,
                               const SkillAssignment& skills,
                               const Task& task) {
  auto task_skills = task.skills();
  for (size_t i = 0; i < task_skills.size(); ++i) {
    for (size_t j = i + 1; j < task_skills.size(); ++j) {
      auto hs = skills.Holders(task_skills[i]);
      auto ht = skills.Holders(task_skills[j]);
      if (hs.empty() || ht.empty()) return false;
      // Fetch rows from the smaller side.
      if (ht.size() < hs.size()) std::swap(hs, ht);
      bool found = false;
      for (NodeId u : hs) {
        const auto& row = oracle->GetRow(u);
        for (NodeId v : ht) {
          // comp[u] itself covers the self-compatibility case (u == v).
          if (row.comp[v]) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) return false;
    }
  }
  return true;
}

}  // namespace tfsn
