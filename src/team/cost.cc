#include "src/team/cost.h"

#include <algorithm>
#include <limits>

#include "src/graph/bfs.h"

namespace tfsn {

uint32_t TeamDiameter(CompatibilityOracle* oracle,
                      std::span<const NodeId> team) {
  return TeamDiameterOver(team.size(), [&](size_t i, size_t j) {
    return oracle->Distance(team[i], team[j]);
  });
}

uint32_t TeamDiameter(const TaskCompatView& view,
                      std::span<const uint32_t> team_local) {
  return TeamDiameterOver(team_local.size(), [&](size_t i, size_t j) {
    return view.PairDistance(team_local[i], team_local[j]);
  });
}

const char* CostKindName(CostKind kind) {
  switch (kind) {
    case CostKind::kDiameter: return "Diameter";
    case CostKind::kSumOfPairs: return "SumOfPairs";
    case CostKind::kCenterStar: return "CenterStar";
  }
  return "?";
}

uint64_t TeamCost(CompatibilityOracle* oracle, std::span<const NodeId> team,
                  CostKind kind) {
  return TeamCostOver(team.size(), kind, [&](size_t i, size_t j) {
    return oracle->Distance(team[i], team[j]);
  });
}

uint64_t TeamCost(const TaskCompatView& view,
                  std::span<const uint32_t> team_local, CostKind kind) {
  return TeamCostOver(team_local.size(), kind, [&](size_t i, size_t j) {
    return view.PairDistance(team_local[i], team_local[j]);
  });
}

bool TeamCompatible(CompatibilityOracle* oracle,
                    std::span<const NodeId> team) {
  for (size_t i = 0; i < team.size(); ++i) {
    for (size_t j = i + 1; j < team.size(); ++j) {
      if (!oracle->Compatible(team[i], team[j])) return false;
    }
  }
  return true;
}

bool TeamCompatible(const TaskCompatView& view,
                    std::span<const uint32_t> team_local) {
  for (size_t i = 0; i < team_local.size(); ++i) {
    for (size_t j = i + 1; j < team_local.size(); ++j) {
      if (!view.PairCompatible(team_local[i], team_local[j])) return false;
    }
  }
  return true;
}

bool TeamCoversTask(const SkillAssignment& skills, const Task& task,
                    std::span<const NodeId> team) {
  SkillCoverage coverage(task);
  for (NodeId u : team) coverage.Cover(skills.SkillsOf(u));
  return coverage.AllCovered();
}

}  // namespace tfsn
