#include "src/team/cost.h"

#include <algorithm>
#include <limits>

#include "src/graph/bfs.h"

namespace tfsn {

uint32_t TeamDiameter(CompatibilityOracle* oracle,
                      std::span<const NodeId> team) {
  uint32_t diameter = 0;
  for (size_t i = 0; i < team.size(); ++i) {
    for (size_t j = i + 1; j < team.size(); ++j) {
      uint32_t d = oracle->Distance(team[i], team[j]);
      if (d == kUnreachable) return kUnreachable;
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

uint32_t TeamDiameter(const TaskCompatView& view,
                      std::span<const uint32_t> team_local) {
  uint32_t diameter = 0;
  for (size_t i = 0; i < team_local.size(); ++i) {
    for (size_t j = i + 1; j < team_local.size(); ++j) {
      const uint32_t d = view.PairDistance(team_local[i], team_local[j]);
      if (d == kUnreachable) return kUnreachable;
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

const char* CostKindName(CostKind kind) {
  switch (kind) {
    case CostKind::kDiameter: return "Diameter";
    case CostKind::kSumOfPairs: return "SumOfPairs";
    case CostKind::kCenterStar: return "CenterStar";
  }
  return "?";
}

uint64_t TeamCost(CompatibilityOracle* oracle, std::span<const NodeId> team,
                  CostKind kind) {
  constexpr uint64_t kInfinite = std::numeric_limits<uint64_t>::max();
  if (team.size() <= 1) return 0;
  switch (kind) {
    case CostKind::kDiameter: {
      uint32_t d = TeamDiameter(oracle, team);
      return d == kUnreachable ? kInfinite : d;
    }
    case CostKind::kSumOfPairs: {
      uint64_t sum = 0;
      for (size_t i = 0; i < team.size(); ++i) {
        for (size_t j = i + 1; j < team.size(); ++j) {
          uint32_t d = oracle->Distance(team[i], team[j]);
          if (d == kUnreachable) return kInfinite;
          sum += d;
        }
      }
      return sum;
    }
    case CostKind::kCenterStar: {
      uint64_t best = kInfinite;
      for (size_t c = 0; c < team.size(); ++c) {
        uint64_t star = 0;
        bool ok = true;
        for (size_t i = 0; i < team.size(); ++i) {
          if (i == c) continue;
          uint32_t d = oracle->Distance(team[c], team[i]);
          if (d == kUnreachable) {
            ok = false;
            break;
          }
          star += d;
        }
        if (ok) best = std::min(best, star);
      }
      return best;
    }
  }
  return kInfinite;
}

uint64_t TeamCost(const TaskCompatView& view,
                  std::span<const uint32_t> team_local, CostKind kind) {
  constexpr uint64_t kInfinite = std::numeric_limits<uint64_t>::max();
  if (team_local.size() <= 1) return 0;
  switch (kind) {
    case CostKind::kDiameter: {
      const uint32_t d = TeamDiameter(view, team_local);
      return d == kUnreachable ? kInfinite : d;
    }
    case CostKind::kSumOfPairs: {
      uint64_t sum = 0;
      for (size_t i = 0; i < team_local.size(); ++i) {
        for (size_t j = i + 1; j < team_local.size(); ++j) {
          const uint32_t d = view.PairDistance(team_local[i], team_local[j]);
          if (d == kUnreachable) return kInfinite;
          sum += d;
        }
      }
      return sum;
    }
    case CostKind::kCenterStar: {
      uint64_t best = kInfinite;
      for (size_t c = 0; c < team_local.size(); ++c) {
        uint64_t star = 0;
        bool ok = true;
        for (size_t i = 0; i < team_local.size(); ++i) {
          if (i == c) continue;
          const uint32_t d = view.PairDistance(team_local[c], team_local[i]);
          if (d == kUnreachable) {
            ok = false;
            break;
          }
          star += d;
        }
        if (ok) best = std::min(best, star);
      }
      return best;
    }
  }
  return kInfinite;
}

bool TeamCompatible(CompatibilityOracle* oracle,
                    std::span<const NodeId> team) {
  for (size_t i = 0; i < team.size(); ++i) {
    for (size_t j = i + 1; j < team.size(); ++j) {
      if (!oracle->Compatible(team[i], team[j])) return false;
    }
  }
  return true;
}

bool TeamCompatible(const TaskCompatView& view,
                    std::span<const uint32_t> team_local) {
  for (size_t i = 0; i < team_local.size(); ++i) {
    for (size_t j = i + 1; j < team_local.size(); ++j) {
      if (!view.PairCompatible(team_local[i], team_local[j])) return false;
    }
  }
  return true;
}

bool TeamCoversTask(const SkillAssignment& skills, const Task& task,
                    std::span<const NodeId> team) {
  SkillCoverage coverage(task);
  for (NodeId u : team) coverage.Cover(skills.SkillsOf(u));
  return coverage.AllCovered();
}

}  // namespace tfsn
