#include "src/team/task_view.h"

#include <algorithm>
#include <bit>

#include "src/util/fault_injection.h"
#include "src/util/logging.h"

namespace tfsn {

void AppendSetBits(std::span<const uint64_t> mask, std::vector<uint32_t>* out) {
  for (size_t w = 0; w < mask.size(); ++w) {
    uint64_t bits = mask[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      out->push_back(static_cast<uint32_t>(w * 64 + b));
      bits &= bits - 1;
    }
  }
}

uint64_t CountSetBits(std::span<const uint64_t> mask) {
  uint64_t count = 0;
  for (uint64_t w : mask) count += static_cast<uint64_t>(std::popcount(w));
  return count;
}

std::vector<NodeId> HolderUniverse(const SkillAssignment& skills,
                                   std::span<const SkillId> task_skills) {
  std::vector<NodeId> universe;
  for (SkillId s : task_skills) {
    auto holders = skills.Holders(s);
    universe.insert(universe.end(), holders.begin(), holders.end());
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  return universe;
}

uint32_t TaskCompatView::LocalOf(NodeId global) const {
  auto it = std::lower_bound(universe_.begin(), universe_.end(), global);
  if (it == universe_.end() || *it != global) return kNoLocalId;
  return static_cast<uint32_t>(it - universe_.begin());
}

size_t TaskCompatView::TaskSkillPos(SkillId skill) const {
  auto skills = task_.skills();
  auto it = std::lower_bound(skills.begin(), skills.end(), skill);
  TFSN_CHECK(it != skills.end() && *it == skill);
  return static_cast<size_t>(it - skills.begin());
}

size_t TaskCompatView::EstimateBytes(size_t m, size_t num_task_skills,
                                     bool sbph) {
  const size_t words = (m + 63) / 64;
  return m * sizeof(NodeId) + m * words * sizeof(uint64_t) * (sbph ? 2 : 1) +
         m * m * sizeof(uint16_t) + num_task_skills * words * sizeof(uint64_t) +
         num_task_skills * sizeof(uint32_t);
}

size_t TaskCompatView::bytes() const {
  return universe_.capacity() * sizeof(NodeId) +
         (static_cast<size_t>(m_) * words_ + pair_bits_.capacity() +
          holder_bits_.capacity()) *
             sizeof(uint64_t) +
         static_cast<size_t>(m_) * m_ * sizeof(uint16_t) +
         static_cast<size_t>(m_) * 2 * sizeof(std::atomic<uint8_t>) +
         holder_counts_.capacity() * sizeof(uint32_t);
}

void TaskCompatView::MaterializeDirRow(uint32_t local) const {
  MutexLock lock(&row_locks_[local % kLockStripes]);
  if (dir_ready_[local].load(std::memory_order_relaxed)) return;
  // Almost always a cache hit: Build() batch-prewarmed the universe. An
  // evicted row is recomputed by the kernel — pricier, but the values are
  // identical.
  std::shared_ptr<const CompatibilityOracle::Row> row =
      oracle_->GetRowShared(universe_[local]);
  uint64_t* bits = dir_bits_.get() + static_cast<size_t>(local) * words_;
  const uint8_t* comp_src = row->comp.data();
  const NodeId* uni = universe_.data();
  const size_t m = m_;
  for (size_t w = 0; w < words_; ++w) {
    const size_t j_end = std::min(m, (w + 1) * 64);
    uint64_t word = 0;
    for (size_t j = w * 64; j < j_end; ++j) {
      word |= static_cast<uint64_t>(comp_src[uni[j]] != 0) << (j & 63);
    }
    bits[w] = word;
  }
  dir_ready_[local].store(1, std::memory_order_release);
}

void TaskCompatView::MaterializeDistRow(uint32_t local) const {
  MutexLock lock(&row_locks_[local % kLockStripes]);
  if (dist_ready_[local].load(std::memory_order_relaxed)) return;
  std::shared_ptr<const CompatibilityOracle::Row> row =
      oracle_->GetRowShared(universe_[local]);
  uint16_t* dist = dist_.get() + static_cast<size_t>(local) * m_;
  const uint32_t* dist_src = row->dist.data();
  const NodeId* uni = universe_.data();
  for (size_t j = 0; j < m_; ++j) {
    // kUnreachable saturates to the sentinel; finite distances fit by the
    // Build() node-count gate.
    dist[j] = static_cast<uint16_t>(
        std::min<uint32_t>(dist_src[uni[j]], kDenseUnreachable));
  }
  dist_ready_[local].store(1, std::memory_order_release);
}

std::unique_ptr<TaskCompatView> TaskCompatView::Build(
    CompatibilityOracle* oracle, const SkillAssignment& skills,
    const Task& task, uint32_t threads, size_t max_bytes) {
  return BuildFromUniverse(oracle, skills, task,
                           HolderUniverse(skills, task.skills()), threads,
                           max_bytes);
}

std::unique_ptr<TaskCompatView> TaskCompatView::BuildFromUniverse(
    CompatibilityOracle* oracle, const SkillAssignment& skills,
    const Task& task, std::vector<NodeId> universe, uint32_t threads,
    size_t max_bytes) {
  TFSN_CHECK(oracle != nullptr);
  // Finite relation distances are path lengths over at most (node, side)
  // states, hence < 2 * num_nodes; this gate guarantees they all fit
  // under the uint16 sentinel so no per-cell overflow checks are needed.
  if (oracle->graph().num_nodes() >= kDenseUnreachable / 2) return nullptr;
  auto task_skills = task.skills();

  const size_t m = universe.size();
  const size_t words = (m + 63) / 64;
  const bool sbph = oracle->kind() == CompatKind::kSBPH;
  if (EstimateBytes(m, task_skills.size(), sbph) > max_bytes) return nullptr;

  // Injected allocation/build failure: callers already treat nullptr as
  // "use the oracle directly", which is bit-identical.
  if (TFSN_FAULT_POINT("task_view.build_fail")) return nullptr;

  std::unique_ptr<TaskCompatView> view(new TaskCompatView());
  view->oracle_ = oracle;
  view->task_ = task;
  view->kind_ = oracle->kind();
  view->m_ = static_cast<uint32_t>(m);
  view->words_ = words;
  view->universe_ = std::move(universe);
  // Dense rows are deliberately left uninitialized (no m^2 zeroing): each
  // row is gathered on first touch, gated by its ready flag.
  view->dir_bits_.reset(new uint64_t[m * words]);
  view->dist_.reset(new uint16_t[m * m]);
  view->dir_ready_.reset(new std::atomic<uint8_t>[m]);
  view->dist_ready_.reset(new std::atomic<uint8_t>[m]);
  for (size_t i = 0; i < m; ++i) {
    view->dir_ready_[i].store(sbph ? 1 : 0, std::memory_order_relaxed);
    view->dist_ready_[i].store(0, std::memory_order_relaxed);
  }

  if (!sbph) {
    // Batched cache prewarm: each chunk's misses are computed in parallel
    // — 64-way bit-parallel where the relation allows — and published to
    // the shared row cache, then the chunk's pins are dropped before the
    // next so peak memory stays at one batch of full-length rows. The
    // dense rows themselves materialize lazily from these cached rows.
    oracle->StreamRows(view->universe_, threads,
                       [](size_t, const CompatibilityOracle::Row&) {});
  } else {
    // SBPH pair semantics are the symmetric closure of the direction-
    // dependent heuristic rows (see CompatibilityOracle::Compatible),
    // which needs the transpose — so fill every dir row eagerly and
    // materialize dir | dir^T once, keeping the seed loop's AND-folds
    // plain word operations.
    const NodeId* uni = view->universe_.data();
    oracle->StreamRows(
        view->universe_, threads,
        [&](size_t i, const CompatibilityOracle::Row& row) {
          uint64_t* bits = view->dir_bits_.get() + i * words;
          const uint8_t* comp_src = row.comp.data();
          for (size_t w = 0; w < words; ++w) {
            const size_t j_end = std::min(m, (w + 1) * 64);
            uint64_t word = 0;
            for (size_t j = w * 64; j < j_end; ++j) {
              word |= static_cast<uint64_t>(comp_src[uni[j]] != 0) << (j & 63);
            }
            bits[w] = word;
          }
        });
    view->pair_bits_.assign(view->dir_bits_.get(),
                            view->dir_bits_.get() + m * words);
    for (size_t i = 0; i < m; ++i) {
      const uint64_t* row_i = view->dir_bits_.get() + i * words;
      for (size_t j = i + 1; j < m; ++j) {
        if ((row_i[j >> 6] >> (j & 63)) & 1u) {
          view->pair_bits_[j * words + (i >> 6)] |= uint64_t{1} << (i & 63);
        }
        if ((view->dir_bits_[j * words + (i >> 6)] >> (i & 63)) & 1u) {
          view->pair_bits_[i * words + (j >> 6)] |= uint64_t{1} << (j & 63);
        }
      }
    }
  }

  view->holder_bits_.assign(task_skills.size() * words, 0);
  view->holder_counts_.assign(task_skills.size(), 0);
  for (size_t p = 0; p < task_skills.size(); ++p) {
    uint64_t* mask = view->holder_bits_.data() + p * words;
    auto holders = skills.Holders(task_skills[p]);
    for (NodeId h : holders) {
      const uint32_t local = view->LocalOf(h);
      TFSN_CHECK(local != kNoLocalId);
      mask[local >> 6] |= uint64_t{1} << (local & 63);
    }
    view->holder_counts_[p] = static_cast<uint32_t>(holders.size());
  }
  return view;
}

std::unique_ptr<TaskCompatView> TaskCompatView::BuildFromCachedRows(
    CompatibilityOracle* oracle, const SkillAssignment& skills,
    const Task& task, std::vector<NodeId> universe, size_t max_bytes,
    bool* complete) {
  TFSN_CHECK(oracle != nullptr);
  TFSN_CHECK(complete != nullptr);
  *complete = false;
  if (oracle->graph().num_nodes() >= kDenseUnreachable / 2) return nullptr;
  auto task_skills = task.skills();

  const size_t m = universe.size();
  const size_t words = (m + 63) / 64;
  const bool sbph = oracle->kind() == CompatKind::kSBPH;
  if (EstimateBytes(m, task_skills.size(), sbph) > max_bytes) return nullptr;

  std::unique_ptr<TaskCompatView> view(new TaskCompatView());
  view->oracle_ = oracle;
  view->task_ = task;
  view->kind_ = oracle->kind();
  view->m_ = static_cast<uint32_t>(m);
  view->words_ = words;
  view->universe_ = std::move(universe);
  view->dir_bits_.reset(new uint64_t[m * words]);
  view->dist_.reset(new uint16_t[m * m]);
  view->dir_ready_.reset(new std::atomic<uint8_t>[m]);
  view->dist_ready_.reset(new std::atomic<uint8_t>[m]);

  // Every row fills eagerly — from its cached oracle row when resident,
  // pessimistically otherwise — and both ready sets are fully published,
  // so the lazy materializers (and hence the oracle's compute path) are
  // never reached through this view.
  const NodeId* uni = view->universe_.data();
  bool all_cached = true;
  for (size_t i = 0; i < m; ++i) {
    uint64_t* bits = view->dir_bits_.get() + i * words;
    uint16_t* dist = view->dist_.get() + i * m;
    std::shared_ptr<const CompatibilityOracle::Row> row =
        oracle->PeekRow(uni[i]);
    if (row != nullptr) {
      const uint8_t* comp_src = row->comp.data();
      const uint32_t* dist_src = row->dist.data();
      for (size_t w = 0; w < words; ++w) {
        const size_t j_end = std::min(m, (w + 1) * 64);
        uint64_t word = 0;
        for (size_t j = w * 64; j < j_end; ++j) {
          word |= static_cast<uint64_t>(comp_src[uni[j]] != 0) << (j & 63);
        }
        bits[w] = word;
      }
      for (size_t j = 0; j < m; ++j) {
        dist[j] = static_cast<uint16_t>(
            std::min<uint32_t>(dist_src[uni[j]], kDenseUnreachable));
      }
    } else {
      // Pessimistic fill: an unknown candidate admits nobody and reaches
      // nobody, so teams formed against the view only ever rely on pairs
      // a real row confirmed (sound, possibly suboptimal).
      all_cached = false;
      std::fill(bits, bits + words, uint64_t{0});
      std::fill(dist, dist + m, kDenseUnreachable);
    }
    view->dir_ready_[i].store(1, std::memory_order_relaxed);
    view->dist_ready_[i].store(1, std::memory_order_relaxed);
  }

  if (sbph) {
    // Symmetric closure over the known directional bits, exactly as the
    // eager full build computes it.
    view->pair_bits_.assign(view->dir_bits_.get(),
                            view->dir_bits_.get() + m * words);
    for (size_t i = 0; i < m; ++i) {
      const uint64_t* row_i = view->dir_bits_.get() + i * words;
      for (size_t j = i + 1; j < m; ++j) {
        if ((row_i[j >> 6] >> (j & 63)) & 1u) {
          view->pair_bits_[j * words + (i >> 6)] |= uint64_t{1} << (i & 63);
        }
        if ((view->dir_bits_[j * words + (i >> 6)] >> (i & 63)) & 1u) {
          view->pair_bits_[i * words + (j >> 6)] |= uint64_t{1} << (j & 63);
        }
      }
    }
  }

  view->holder_bits_.assign(task_skills.size() * words, 0);
  view->holder_counts_.assign(task_skills.size(), 0);
  for (size_t p = 0; p < task_skills.size(); ++p) {
    uint64_t* mask = view->holder_bits_.data() + p * words;
    auto holders = skills.Holders(task_skills[p]);
    for (NodeId h : holders) {
      const uint32_t local = view->LocalOf(h);
      TFSN_CHECK(local != kNoLocalId);
      mask[local >> 6] |= uint64_t{1} << (local & 63);
    }
    view->holder_counts_[p] = static_cast<uint32_t>(holders.size());
  }
  *complete = all_cached;
  return view;
}

}  // namespace tfsn
