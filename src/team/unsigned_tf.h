// Unsigned team formation baseline: RarestFirst of Lappas et al. (KDD'09),
// the algorithm the paper compares against in Table 3.
//
// RarestFirst ignores compatibility entirely: it picks the rarest task
// skill, and for each of its holders builds a team by adding, for every
// other task skill, the holder closest to the seed; the seed whose team has
// the smallest diameter wins. The paper runs it on two unsigned versions of
// the signed network — signs ignored, and negative edges deleted — and then
// measures how often the returned teams happen to be compatible.

#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/signed_graph.h"
#include "src/skills/skills.h"

namespace tfsn {

/// Result of a RarestFirst run.
struct UnsignedTeamResult {
  bool found = false;
  std::vector<NodeId> members;  ///< sorted when found
  uint32_t cost = 0;            ///< team diameter in the unsigned graph
};

/// Runs RarestFirst on `g` with edge signs ignored (any sign counts as a
/// connection). Fails when some task skill has no holder reachable from a
/// seed (possible on disconnected graphs, e.g. after deleting negative
/// edges).
UnsignedTeamResult RarestFirst(const SignedGraph& g,
                               const SkillAssignment& skills,
                               const Task& task);

}  // namespace tfsn
