#include "src/team/exact.h"

#include <algorithm>

#include "src/graph/bfs.h"
#include "src/team/cost.h"
#include "src/util/logging.h"

namespace tfsn {

namespace {

class Solver {
 public:
  Solver(CompatibilityOracle* oracle, const SkillAssignment& skills,
         const Task& task, const ExactParams& params)
      : oracle_(oracle), skills_(skills), task_(task), params_(params) {}

  ExactResult Run() {
    SkillCoverage coverage(task_);
    Branch(&coverage, 0);
    result_.expansions = expansions_;
    result_.exhausted = exhausted_;
    if (result_.found) std::sort(result_.members.begin(), result_.members.end());
    return result_;
  }

 private:
  // Depth-first branch & bound. `cost_so_far` is the diameter of team_.
  void Branch(SkillCoverage* coverage, uint32_t cost_so_far) {
    if (exhausted_) return;
    if (result_.found && params_.feasibility_only) return;
    if (++expansions_ > params_.expansion_budget) {
      exhausted_ = true;
      return;
    }
    if (coverage->AllCovered()) {
      if (!result_.found || cost_so_far < result_.cost) {
        result_.found = true;
        result_.cost = cost_so_far;
        result_.members = team_;
      }
      return;
    }
    if (result_.found && !params_.feasibility_only &&
        cost_so_far >= result_.cost) {
      return;  // cannot improve the incumbent
    }
    // Branch on the uncovered skill with the fewest holders.
    std::vector<SkillId> uncovered = coverage->Uncovered();
    SkillId pick = uncovered[0];
    for (SkillId s : uncovered) {
      if (skills_.Frequency(s) < skills_.Frequency(pick)) pick = s;
    }
    for (NodeId v : skills_.Holders(pick)) {
      if (std::find(team_.begin(), team_.end(), v) != team_.end()) continue;
      // Compatibility with the whole partial team, and the new diameter.
      bool ok = true;
      uint32_t new_cost = cost_so_far;
      for (NodeId x : team_) {
        if (!oracle_->Compatible(x, v)) {
          ok = false;
          break;
        }
        uint32_t d = oracle_->Distance(x, v);
        new_cost = std::max(new_cost, d);
      }
      if (!ok) continue;
      if (result_.found && !params_.feasibility_only &&
          new_cost >= result_.cost) {
        continue;
      }
      team_.push_back(v);
      SkillCoverage next = *coverage;
      next.Cover(skills_.SkillsOf(v));
      Branch(&next, new_cost);
      team_.pop_back();
      if (exhausted_) return;
      if (result_.found && params_.feasibility_only) return;
    }
  }

  CompatibilityOracle* oracle_;
  const SkillAssignment& skills_;
  const Task& task_;
  ExactParams params_;
  std::vector<NodeId> team_;
  ExactResult result_;
  uint64_t expansions_ = 0;
  bool exhausted_ = false;
};

}  // namespace

ExactResult SolveExact(CompatibilityOracle* oracle,
                       const SkillAssignment& skills, const Task& task,
                       ExactParams params) {
  TFSN_CHECK(oracle != nullptr);
  if (task.empty()) {
    ExactResult r;
    r.found = true;
    return r;
  }
  Solver solver(oracle, skills, task, params);
  return solver.Run();
}

}  // namespace tfsn
