// Team communication cost and validity checks (paper Sections 2 and 4).
//
// Cost(X) is the largest relation distance between any two team members
// (the team "diameter" under the compatibility-specific distance).

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>

#include "src/compat/compatibility.h"
#include "src/skills/skills.h"
#include "src/team/task_view.h"

namespace tfsn {

/// Cost(X): max pairwise oracle distance; 0 for teams of size <= 1;
/// kUnreachable if any pair has no finite relation distance.
uint32_t TeamDiameter(CompatibilityOracle* oracle,
                      std::span<const NodeId> team);

/// Dense-view variant: `team_local` holds view-local ids. Returns exactly
/// what the oracle overload returns for the corresponding global ids —
/// the view stores the same distances, uint16-packed.
uint32_t TeamDiameter(const TaskCompatView& view,
                      std::span<const uint32_t> team_local);

/// Alternative communication-cost objectives (the paper's future work asks
/// for "different ways to combine compatibility and communication cost").
enum class CostKind : uint8_t {
  /// Max pairwise distance — the paper's Cost(X).
  kDiameter,
  /// Sum of all pairwise distances (the SUM-DISTANCE objective of
  /// Kargar & An).
  kSumOfPairs,
  /// Min over members c of the sum of distances from c to the rest (a
  /// leader/star objective).
  kCenterStar,
};

const char* CostKindName(CostKind kind);

/// Evaluates the chosen objective; kUnreachable-valued pairs poison the
/// cost to kUnreachable (as uint64). 0 for teams of size <= 1.
uint64_t TeamCost(CompatibilityOracle* oracle, std::span<const NodeId> team,
                  CostKind kind);

/// Dense-view variant of TeamCost; bit-identical to the oracle overload.
uint64_t TeamCost(const TaskCompatView& view,
                  std::span<const uint32_t> team_local, CostKind kind);

/// Generic core of TeamDiameter over any symmetric pair-distance callable
/// `dist(i, j) -> uint32_t` (member indexes i != j; kUnreachable for
/// unreachable pairs). The oracle and view overloads are wrappers, and the
/// sharded coordinator (src/dist/) runs the same loop over its gathered
/// distance matrix — one implementation, bit-identical everywhere.
template <typename DistFn>
uint32_t TeamDiameterOver(size_t team_size, DistFn&& dist) {
  uint32_t diameter = 0;
  for (size_t i = 0; i < team_size; ++i) {
    for (size_t j = i + 1; j < team_size; ++j) {
      const uint32_t d = dist(i, j);
      if (d == kUnreachable) return kUnreachable;
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

/// Generic core of TeamCost (same callable contract as TeamDiameterOver).
template <typename DistFn>
uint64_t TeamCostOver(size_t team_size, CostKind kind, DistFn&& dist) {
  constexpr uint64_t kInfinite = std::numeric_limits<uint64_t>::max();
  if (team_size <= 1) return 0;
  switch (kind) {
    case CostKind::kDiameter: {
      const uint32_t d = TeamDiameterOver(team_size, dist);
      return d == kUnreachable ? kInfinite : d;
    }
    case CostKind::kSumOfPairs: {
      uint64_t sum = 0;
      for (size_t i = 0; i < team_size; ++i) {
        for (size_t j = i + 1; j < team_size; ++j) {
          const uint32_t d = dist(i, j);
          if (d == kUnreachable) return kInfinite;
          sum += d;
        }
      }
      return sum;
    }
    case CostKind::kCenterStar: {
      uint64_t best = kInfinite;
      for (size_t c = 0; c < team_size; ++c) {
        uint64_t star = 0;
        bool ok = true;
        for (size_t i = 0; i < team_size; ++i) {
          if (i == c) continue;
          const uint32_t d = dist(c, i);
          if (d == kUnreachable) {
            ok = false;
            break;
          }
          star += d;
        }
        if (ok) best = std::min(best, star);
      }
      return best;
    }
  }
  return kInfinite;
}

/// True iff every pair of members is compatible (requirement (2) of
/// Definition 2.1). Vacuously true for teams of size <= 1.
bool TeamCompatible(CompatibilityOracle* oracle, std::span<const NodeId> team);

/// Dense-view variant of TeamCompatible; bit-identical to the oracle
/// overload (including the SBPH symmetric closure).
bool TeamCompatible(const TaskCompatView& view,
                    std::span<const uint32_t> team_local);

/// True iff the members collectively cover the task (requirement (1)).
bool TeamCoversTask(const SkillAssignment& skills, const Task& task,
                    std::span<const NodeId> team);

}  // namespace tfsn
