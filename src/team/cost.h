// Team communication cost and validity checks (paper Sections 2 and 4).
//
// Cost(X) is the largest relation distance between any two team members
// (the team "diameter" under the compatibility-specific distance).

#pragma once

#include <cstdint>
#include <span>

#include "src/compat/compatibility.h"
#include "src/skills/skills.h"
#include "src/team/task_view.h"

namespace tfsn {

/// Cost(X): max pairwise oracle distance; 0 for teams of size <= 1;
/// kUnreachable if any pair has no finite relation distance.
uint32_t TeamDiameter(CompatibilityOracle* oracle,
                      std::span<const NodeId> team);

/// Dense-view variant: `team_local` holds view-local ids. Returns exactly
/// what the oracle overload returns for the corresponding global ids —
/// the view stores the same distances, uint16-packed.
uint32_t TeamDiameter(const TaskCompatView& view,
                      std::span<const uint32_t> team_local);

/// Alternative communication-cost objectives (the paper's future work asks
/// for "different ways to combine compatibility and communication cost").
enum class CostKind : uint8_t {
  /// Max pairwise distance — the paper's Cost(X).
  kDiameter,
  /// Sum of all pairwise distances (the SUM-DISTANCE objective of
  /// Kargar & An).
  kSumOfPairs,
  /// Min over members c of the sum of distances from c to the rest (a
  /// leader/star objective).
  kCenterStar,
};

const char* CostKindName(CostKind kind);

/// Evaluates the chosen objective; kUnreachable-valued pairs poison the
/// cost to kUnreachable (as uint64). 0 for teams of size <= 1.
uint64_t TeamCost(CompatibilityOracle* oracle, std::span<const NodeId> team,
                  CostKind kind);

/// Dense-view variant of TeamCost; bit-identical to the oracle overload.
uint64_t TeamCost(const TaskCompatView& view,
                  std::span<const uint32_t> team_local, CostKind kind);

/// True iff every pair of members is compatible (requirement (2) of
/// Definition 2.1). Vacuously true for teams of size <= 1.
bool TeamCompatible(CompatibilityOracle* oracle, std::span<const NodeId> team);

/// Dense-view variant of TeamCompatible; bit-identical to the oracle
/// overload (including the SBPH symmetric closure).
bool TeamCompatible(const TaskCompatView& view,
                    std::span<const uint32_t> team_local);

/// True iff the members collectively cover the task (requirement (1)).
bool TeamCoversTask(const SkillAssignment& skills, const Task& task,
                    std::span<const NodeId> team);

}  // namespace tfsn
